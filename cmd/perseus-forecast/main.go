// Command perseus-forecast measures what forecast uncertainty costs —
// and what rolling-horizon re-planning buys back. It characterizes a
// training job's time-energy frontier, replays the bundled 24-hour
// diurnal trace through a seeded noisy-revision forecast stream, and
// compares the perfect-foresight oracle, plan-once-on-the-first-
// forecast, MPC re-planning (point and robust-quantile), and a
// seasonal-naive model forecasting from revealed history alone. With
// -regions it adds the multi-region analogue over the phase-shifted
// pair, where every re-plan pays to migrate away from the job's
// current region.
//
// Usage:
//
//	perseus-forecast                       # bundled trace, quick scale
//	perseus-forecast -seed 5 -sigma 0.2    # harsher revision stream
//	perseus-forecast -util 0.7             # tighter deadline slack
//	perseus-forecast -regions              # add the multi-region comparison
//	perseus-forecast -drift                # show predicted-vs-realized drift
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"perseus/internal/experiments"
	"perseus/internal/forecast"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/region"
)

func main() {
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	scale := flag.String("scale", "quick", "quick | full (paper parameters; slow)")
	util := flag.Float64("util", 0.55, "target as a fraction of the deadline's T* capacity (deadline slack knob)")
	seed := flag.Int64("seed", 1, "noisy-revision stream seed")
	sigma := flag.Float64("sigma", 0.12, "per-step relative forecast innovation")
	regions := flag.Bool("regions", false, "also run the multi-region comparison (coarsened phase-shifted pair)")
	drift := flag.Bool("drift", false, "also show the MPC run's predicted-vs-realized drift table")
	flag.Parse()

	g, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	cfg := experiments.WorkloadConfig{
		Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 4,
		MicrobatchSize: 4, Microbatches: 16,
	}
	fmt.Printf("characterizing %s on %s...\n", cfg.Display, g.Name)
	sys, err := experiments.BuildSystem(cfg, g, sc)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()

	truth := grid.Diurnal24h()
	scenario := experiments.ForecastScenario{
		Truth:  truth,
		Seed:   *seed,
		Sigma:  *sigma,
		Target: math.Floor(*util * truth.Horizon() / lt.TStar()),
	}
	fmt.Printf("trace %s: %d intervals over %.0f h; target %.0f iterations; revisions seed %d, sigma %.0f%%/step\n\n",
		truth.Name, len(truth.Intervals), truth.Horizon()/3600, scenario.Target, *seed, 100**sigma)

	strategies, err := experiments.ForecastComparison(lt, scenario)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.ForecastComparisonTable(scenario, strategies).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *drift {
		if err := experiments.ForecastDriftTable(strategies[2].Outcome).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *regions {
		pair := region.PhaseShiftedPair(0)
		for i := range pair {
			pair[i].Signal = forecast.Coarsen(pair[i].Signal, 6)
		}
		target := math.Floor(0.5 * pair[0].Signal.Horizon() / lt.TStar())
		mig := region.MigrationCost{DowntimeS: 600, EnergyJ: 5e6}
		rs, err := experiments.RegionForecastComparison(lt, pair, target, mig, *seed, *sigma)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.RegionForecastComparisonTable(rs).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
