package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// managedJob records the planning request a job was managed with (the
// schedule itself pins the effective parameters; these are kept for
// re-managing and status) plus the job's last tick error.
type managedJob struct {
	target    float64
	deadline  float64
	objective string
	quantile  float64
	lastErr   string
}

// controller is the background MPC runtime: a long-lived loop that
// wakes at every grid-signal interval boundary, rolls every managed
// job's rolling-horizon schedule forward — executed prefix frozen,
// remainder re-planned on a freshly issued forecast — and bumps each
// job's schedule version so long-polling clients observe the change
// without ever calling /grid/replan themselves. Ticks and client
// replan calls share one serialized roll-forward (Server.replanMu), so
// the two can never disagree about the frozen prefix.
type controller struct {
	s *Server

	mu          sync.Mutex
	managed     map[string]managedJob
	order       []string
	running     bool
	stop        chan struct{}
	done        chan struct{}
	ticks       int
	lastTick    time.Time
	lastTickErr string // first per-job error of the last tick ("" = clean)
}

// ControllerJobStatus is one managed job's view in the controller
// status.
type ControllerJobStatus struct {
	JobID               string  `json:"job_id"`
	Version             int     `json:"version"`
	Plans               int     `json:"plans"`
	DoneIterations      float64 `json:"done_iterations"`
	RemainingIterations float64 `json:"remaining_iterations"`
	Feasible            bool    `json:"feasible"`
	LastError           string  `json:"last_error,omitempty"`

	// LastReplanUnixS is the wall-clock time of the job's last
	// successful re-plan (0 = never re-planned).
	LastReplanUnixS float64 `json:"last_replan_unix_s,omitempty"`
}

// ControllerStatus is the controller runtime's observable state.
type ControllerStatus struct {
	Running bool `json:"running"`

	// Ticks counts completed controller ticks.
	Ticks int `json:"ticks"`

	// LastTickUnixS is the wall-clock time of the last tick (0 = none).
	LastTickUnixS float64 `json:"last_tick_unix_s,omitempty"`

	// LastTickError is the first per-job error of the last tick, empty
	// when the tick advanced every managed job cleanly.
	LastTickError string `json:"last_tick_error,omitempty"`

	// NextBoundaryS is the countdown, in seconds from now, to the next
	// interval boundary the background loop would tick at (-1 without
	// a signal).
	NextBoundaryS float64 `json:"next_boundary_s"`

	// Jobs lists the managed jobs in management order.
	Jobs []ControllerJobStatus `json:"jobs"`

	// Cache reports the plan cache counters.
	Cache CacheStats `json:"cache"`
}

// ControllerJobRequest puts a job's rolling schedule under controller
// management.
type ControllerJobRequest struct {
	JobID     string  `json:"job_id"`
	Target    float64 `json:"iterations"`
	DeadlineS float64 `json:"deadline_s,omitempty"`
	Objective string  `json:"objective,omitempty"`
	Quantile  float64 `json:"quantile,omitempty"`
}

// manages reports whether the controller owns the job's schedule.
func (c *controller) manages(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.managed[id]
	return ok
}

// reset drops every managed job (the signal, and with it every rolling
// schedule, was replaced).
func (c *controller) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.managed = map[string]managedJob{}
	c.order = nil
}

// forget drops one job from management (the job was removed).
func (c *controller) forget(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.managed, id)
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// ManageJob registers a job's rolling-horizon schedule with the
// controller: the schedule is created (or rolled forward) immediately
// with plan #1, and every subsequent tick rolls it forward. Re-managing
// with different parameters restarts the schedule, exactly like a
// parameter change on GET /grid/replan; a signal re-install drops both
// the schedule and the management, and the job must be re-managed.
func (s *Server) ManageJob(id string, target, deadline float64, objective string, quantile float64) (*ReplanResponse, error) {
	return s.manageJob(context.Background(), id, target, deadline, objective, quantile)
}

func (s *Server) manageJob(ctx context.Context, id string, target, deadline float64, objective string, quantile float64) (*ReplanResponse, error) {
	resp, err := s.replan(ctx, id, target, deadline, objective, quantile)
	if err != nil {
		return nil, err
	}
	c := &s.ctrl
	c.mu.Lock()
	if _, ok := c.managed[id]; !ok {
		c.order = append(c.order, id)
	}
	c.managed[id] = managedJob{target: target, deadline: deadline, objective: objective, quantile: quantile}
	c.mu.Unlock()
	return resp, nil
}

// TickController runs one controller tick synchronously: every managed
// job's existing schedule rolls forward to now (a tick never creates
// state — only ManageJob and client replans do, so a tick racing a
// signal re-install cannot resurrect a dropped schedule). Per-job
// errors are recorded in the status rather than aborting the tick —
// one broken job must not stall the fleet's control loop.
func (s *Server) TickController() ControllerStatus {
	return s.tickController(context.Background())
}

// tickController runs the tick under a controller.tick trace span: a
// child of ctx's active span when the tick came through a traced POST
// /controller/tick, the root of a fresh trace when the background loop
// fired it. Every managed job's roll-forward stages record child spans
// below it, and the tick ends with one SLO evaluation, so burn-rate
// status (and breach events) advance at control-loop cadence even when
// nobody polls /debug/slo.
func (s *Server) tickController(ctx context.Context) ControllerStatus {
	c := &s.ctrl
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()

	ctx, root := s.obs.tracer.StartSpan(ctx, spanControllerTick)
	tickStart := time.Now()
	// Settle every job's emissions and bloat ledger at the tick
	// boundary, so the ledger and its exported series advance at
	// control-loop cadence even when nobody reads /jobs/{id}/emissions.
	s.st.settleAll(s.st.gridState())
	errs := map[string]string{}
	for _, id := range ids {
		if !c.manages(id) {
			continue // un-managed since the snapshot (signal change)
		}
		if err := s.advanceManaged(ctx, id); err != nil {
			errs[id] = err.Error()
		}
	}

	now := s.st.now()
	dur := time.Since(tickStart)
	c.mu.Lock()
	c.ticks++
	c.lastTick = now
	c.lastTickErr = ""
	for _, id := range ids {
		if msg, bad := errs[id]; bad {
			if c.lastTickErr == "" {
				c.lastTickErr = id + ": " + msg
			}
			if mj, ok := c.managed[id]; ok {
				mj.lastErr = msg
				c.managed[id] = mj
			}
		}
	}
	// Clear errors for jobs that recovered.
	for id, mj := range c.managed {
		if _, bad := errs[id]; !bad && mj.lastErr != "" {
			mj.lastErr = ""
			c.managed[id] = mj
		}
	}
	c.mu.Unlock()
	s.obs.ticks.Inc()
	s.obs.tickDur.Observe(dur.Seconds())
	s.obs.ring.Emit(now, "controller.tick", dur, traceKV(ctx,
		"jobs", strconv.Itoa(len(ids)), "errors", strconv.Itoa(len(errs)))...)
	root.SetAttr("jobs", strconv.Itoa(len(ids)))
	root.SetAttr("errors", strconv.Itoa(len(errs)))
	if len(errs) > 0 {
		root.Fail(fmt.Errorf("%d job(s) failed to roll forward", len(errs)))
	}
	root.End()
	s.evalSLOs(now)
	return s.ControllerStatus()
}

// StartController starts the background tick loop. The loop sleeps
// until the next signal-interval boundary (polling while no signal is
// installed), ticks, and repeats until StopController. Idempotent.
func (s *Server) StartController() {
	c := &s.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run(c.stop, c.done)
}

// StopController stops the background tick loop and waits for it to
// exit. Managed jobs stay managed; manual ticks keep working.
func (s *Server) StopController() {
	c := &s.ctrl
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

// noSignalPoll is how often the background loop re-checks for a signal
// when none is installed.
const noSignalPoll = 250 * time.Millisecond

func (c *controller) run(stop, done chan struct{}) {
	defer close(done)
	for {
		// Without a signal there are no boundaries: re-check shortly,
		// but do not tick — a tick would inflate the counter and take
		// the roll-forward lock for nothing. With one, sleep to the
		// next boundary (signal seconds map 1:1 to wall seconds),
		// nudged slightly past the edge so the tick lands inside the
		// new interval.
		b, ok := c.s.nextBoundary()
		d := noSignalPoll
		if ok {
			d = time.Duration(b*float64(time.Second)) + 5*time.Millisecond
		}
		timer := time.NewTimer(d)
		select {
		case <-stop:
			timer.Stop()
			return
		case <-timer.C:
			if ok {
				c.s.TickController()
			}
		}
	}
}

// nextBoundary returns the seconds until the next cyclic interval
// boundary of the installed signal.
func (s *Server) nextBoundary() (float64, bool) {
	now := s.st.now()
	s.st.mu.Lock()
	sig := s.st.signal
	start := s.st.sigStart
	s.st.mu.Unlock()
	if sig == nil || sig.Horizon() <= 0 {
		return 0, false
	}
	ts := now.Sub(start).Seconds()
	h := sig.Horizon()
	pos := math.Mod(ts, h)
	if pos < 0 {
		pos += h
	}
	for _, iv := range sig.Intervals {
		if iv.EndS > pos+1e-9 {
			return iv.EndS - pos, true
		}
	}
	return h - pos, true
}

// ControllerStatus reports the controller runtime's state.
func (s *Server) ControllerStatus() ControllerStatus {
	c := &s.ctrl
	c.mu.Lock()
	st := ControllerStatus{Running: c.running, Ticks: c.ticks, LastTickError: c.lastTickErr}
	if !c.lastTick.IsZero() {
		st.LastTickUnixS = float64(c.lastTick.UnixNano()) / 1e9
	}
	ids := append([]string(nil), c.order...)
	errs := make(map[string]string, len(c.managed))
	for id, mj := range c.managed {
		errs[id] = mj.lastErr
	}
	c.mu.Unlock()

	st.NextBoundaryS = -1
	if b, ok := s.nextBoundary(); ok {
		st.NextBoundaryS = b
	}
	for _, id := range ids {
		js := ControllerJobStatus{JobID: id, LastError: errs[id]}
		s.replanMu.Lock()
		if rs, ok := s.replans[id]; ok {
			view := replanView(id, rs)
			js.Plans = view.Plans
			js.DoneIterations = view.DoneIterations
			js.RemainingIterations = view.RemainingIterations
			js.Feasible = view.Feasible
			if !rs.lastPlanAt.IsZero() {
				js.LastReplanUnixS = float64(rs.lastPlanAt.UnixNano()) / 1e9
			}
		}
		s.replanMu.Unlock()
		if j, ok := s.st.job(id); ok {
			j.mu.Lock()
			js.Version = j.version
			j.mu.Unlock()
		}
		st.Jobs = append(st.Jobs, js)
	}
	st.Cache = s.CacheStats()
	return st
}

func (s *Server) handleController(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.ControllerStatus())
}

func (s *Server) handleControllerAction(w http.ResponseWriter, r *http.Request) {
	action := strings.TrimPrefix(r.URL.Path, "/controller/")
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	switch action {
	case "jobs":
		var req ControllerJobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.manageJob(r.Context(), req.JobID, req.Target, req.DeadlineS, req.Objective, req.Quantile)
		if err != nil {
			status := http.StatusBadRequest
			if _, ok := s.st.job(req.JobID); !ok {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, resp)
	case "start":
		s.StartController()
		writeJSON(w, s.ControllerStatus())
	case "stop":
		s.StopController()
		writeJSON(w, s.ControllerStatus())
	case "tick":
		writeJSON(w, s.tickController(r.Context()))
	default:
		http.Error(w, fmt.Sprintf("unknown controller action %q", action), http.StatusNotFound)
	}
}
