// Package gpu models a datacenter GPU whose streaming-multiprocessor (SM)
// frequency can be locked to any value on a discrete ladder, trading off
// computation time against energy.
//
// The model substitutes for the NVIDIA A100/A40 GPUs driven through NVML in
// the Perseus paper (SOSP 2024). Perseus only requires that the accelerator
// expose "multiple execution speeds that trade off computation time and
// energy" (paper §5), with three properties that this model reproduces:
//
//  1. Locked-frequency computation latency is deterministic and monotone
//     decreasing in frequency, saturating at a memory-bound floor.
//  2. Power is monotone increasing in frequency, with a static component
//     and a dynamic component that scales like C·V²·f where the voltage V
//     has a floor below a threshold frequency (real DVFS behaviour). This
//     yields an interior minimum-energy frequency: "typically not the
//     lowest frequency" (paper footnote 4).
//  3. A GPU blocking on communication busy-loops inside a NCCL kernel and
//     draws a constant power P_blocking (paper §4.1, footnote 5).
package gpu

import (
	"fmt"
	"math"
	"sort"
)

// Frequency is an SM clock frequency in MHz.
type Frequency int

// Model is an immutable description of a GPU type. All methods are pure
// functions of the model parameters, so computation latency at a locked
// frequency is exactly reproducible, mirroring the determinism that makes
// frequency locking "suitable for tightly planning and packing execution
// over time" (paper §3.1, footnote 3).
type Model struct {
	// Name identifies the preset, e.g. "A100-PCIe".
	Name string

	// FMin, FMax, FStep define the supported frequency ladder
	// [FMin, FMin+FStep, ..., FMax], mirroring nvmlDeviceGetSupportedGraphicsClocks.
	FMin, FMax, FStep Frequency

	// TDP is the board power at FMax under full load, in watts.
	TDP float64

	// IdleW is the power drawn when clocked but idle (no kernels), in watts.
	IdleW float64

	// StaticW is the non-frequency-scaled power while computing, in watts.
	StaticW float64

	// VFloorFrac is the fraction of FMax below which the core voltage can
	// no longer be lowered (the DVFS voltage floor).
	VFloorFrac float64

	// VMinFrac is the voltage at the floor as a fraction of the voltage
	// at FMax.
	VMinFrac float64

	// BlockingW is P_blocking: the power drawn while busy-waiting on
	// communication inside a collective kernel, in watts.
	BlockingW float64

	// EffFLOPS is the effective sustained compute throughput at FMax in
	// FLOP/s, used to convert model-layer FLOP counts into seconds.
	EffFLOPS float64

	// MemBoundFwd and MemBoundBwd are the fractions of forward and
	// backward computation time that do not scale with SM frequency
	// (memory-/launch-bound work).
	MemBoundFwd, MemBoundBwd float64
}

// Presets for the GPUs used in the paper's evaluation (§6.1). Parameters are
// calibrated so the model reproduces the paper's headline statistics: the
// A40's wider dynamic frequency range yields roughly 27% potential energy
// savings at minimum-energy frequencies versus roughly 16% on the A100
// (paper §2.4), and P(FMin) stays above P_blocking.
var (
	// A100PCIe models the NVIDIA A100-80G PCIe (evaluation testbed §6.1):
	// 210-1410 MHz in 15 MHz steps, 300 W TDP.
	A100PCIe = &Model{
		Name:        "A100-PCIe",
		FMin:        210,
		FMax:        1410,
		FStep:       15,
		TDP:         300,
		IdleW:       55,
		StaticW:     105,
		VFloorFrac:  0.78,
		VMinFrac:    0.80,
		BlockingW:   75,
		EffFLOPS:    30e12,
		MemBoundFwd: 0.28,
		MemBoundBwd: 0.30,
	}

	// A100SXM models the A100 SXM used for large-scale emulation (§6.3).
	A100SXM = &Model{
		Name:        "A100-SXM",
		FMin:        210,
		FMax:        1410,
		FStep:       15,
		TDP:         400,
		IdleW:       60,
		StaticW:     140,
		VFloorFrac:  0.78,
		VMinFrac:    0.80,
		BlockingW:   90,
		EffFLOPS:    42e12,
		MemBoundFwd: 0.28,
		MemBoundBwd: 0.30,
	}

	// H100SXM models the NVIDIA H100 SXM, the paper's §6.2 forward-looking
	// case: a higher maximum frequency (1980 MHz) and TDP (700 W) widen
	// the dynamic range, so percentage savings exceed both A100 and A40.
	// Speculative calibration — the paper only cites the spec sheet.
	H100SXM = &Model{
		Name:        "H100-SXM",
		FMin:        210,
		FMax:        1980,
		FStep:       15,
		TDP:         700,
		IdleW:       70,
		StaticW:     170,
		VFloorFrac:  0.62,
		VMinFrac:    0.62,
		BlockingW:   120,
		EffFLOPS:    180e12,
		MemBoundFwd: 0.22,
		MemBoundBwd: 0.24,
	}

	// A40 models the NVIDIA A40-48G (evaluation testbed §6.1):
	// 210-1740 MHz in 15 MHz steps, 300 W TDP. Its wider frequency range
	// yields deeper energy savings than the A100 (paper §6.2).
	A40 = &Model{
		Name:        "A40",
		FMin:        210,
		FMax:        1740,
		FStep:       15,
		TDP:         300,
		IdleW:       40,
		StaticW:     85,
		VFloorFrac:  0.70,
		VMinFrac:    0.66,
		BlockingW:   66,
		EffFLOPS:    25e12,
		MemBoundFwd: 0.22,
		MemBoundBwd: 0.24,
	}
)

// ByName returns the preset with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range []*Model{A100PCIe, A100SXM, A40, H100SXM} {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("gpu: unknown model %q", name)
}

// Frequencies returns the supported frequency ladder in descending order
// (highest first), matching the profiling order in paper §5.
func (m *Model) Frequencies() []Frequency {
	var fs []Frequency
	for f := m.FMax; f >= m.FMin; f -= m.FStep {
		fs = append(fs, f)
	}
	return fs
}

// Clamp returns the nearest supported frequency that is greater than or
// equal to f (so a computation planned at frequency f never runs slower),
// clamped to the ladder bounds.
func (m *Model) Clamp(f Frequency) Frequency {
	if f <= m.FMin {
		return m.FMin
	}
	if f >= m.FMax {
		return m.FMax
	}
	// Round up to the next step on the ladder.
	steps := (f - m.FMin + m.FStep - 1) / m.FStep
	return m.FMin + steps*m.FStep
}

// voltage returns the relative core voltage at frequency f, as a fraction of
// the voltage at FMax. Below the voltage floor the voltage is constant.
func (m *Model) voltage(f Frequency) float64 {
	x := float64(f) / float64(m.FMax)
	if x <= m.VFloorFrac {
		return m.VMinFrac
	}
	return m.VMinFrac + (1-m.VMinFrac)*(x-m.VFloorFrac)/(1-m.VFloorFrac)
}

// Power returns the board power in watts while running compute kernels at
// frequency f. The dynamic component scales as V(f)²·f (classic DVFS), and
// the total is normalized so Power(FMax) == TDP.
func (m *Model) Power(f Frequency) float64 {
	x := float64(f) / float64(m.FMax)
	v := m.voltage(f)
	dyn := (m.TDP - m.StaticW) * v * v * x
	return m.StaticW + dyn
}

// Time returns the execution time in seconds of a computation whose time at
// FMax is refSec, when run at frequency f. A memBound fraction of the work
// does not scale with frequency.
func (m *Model) Time(refSec float64, f Frequency, memBound float64) float64 {
	x := float64(f) / float64(m.FMax)
	return refSec * (memBound + (1-memBound)/x)
}

// Energy returns the energy in joules consumed by a computation whose time
// at FMax is refSec, when run at frequency f.
func (m *Model) Energy(refSec float64, f Frequency, memBound float64) float64 {
	return m.Power(f) * m.Time(refSec, f, memBound)
}

// PowerLimitFrequency returns the highest supported frequency whose
// sustained compute power does not exceed limitW. It models the GPU's
// power-limit knob used by the Zeus baselines (§6.4): under a power cap the
// clock settles at the highest frequency that respects the cap.
func (m *Model) PowerLimitFrequency(limitW float64) Frequency {
	for f := m.FMax; f >= m.FMin; f -= m.FStep {
		if m.Power(f) <= limitW {
			return f
		}
	}
	return m.FMin
}

// MinEnergyFrequency returns the frequency minimizing adjusted energy
// e(f) − pBlocking·t(f) for a computation with the given memory-bound
// fraction. This is the slowest frequency Perseus will ever plan: past it,
// slowing down increases energy (paper §3.1, Figure 3c).
func (m *Model) MinEnergyFrequency(memBound, pBlocking float64) Frequency {
	best := m.FMax
	bestE := math.Inf(1)
	for f := m.FMax; f >= m.FMin; f -= m.FStep {
		t := m.Time(1, f, memBound)
		e := m.Power(f)*t - pBlocking*t
		if e < bestE {
			bestE = e
			best = f
		}
	}
	return best
}

// Device is a single simulated GPU instance with NVML-like controls: the
// frequency can be locked, and an energy counter accumulates consumption.
// It is the accelerator handle used by the Perseus client's asynchronous
// frequency controller.
type Device struct {
	Model *Model

	// ID identifies the device within a cluster (e.g. "p0s2" for
	// pipeline 0, stage 2).
	ID string

	freq    Frequency
	energyJ float64
}

// NewDevice returns a device locked to the maximum frequency, the default
// mode of operation in production clusters (paper Figure 9 caption).
func NewDevice(m *Model, id string) *Device {
	return &Device{Model: m, ID: id, freq: m.FMax}
}

// SetFrequency locks the SM frequency to the nearest supported value that
// is not below f and returns the applied value. It mirrors
// nvmlDeviceSetGpuLockedClocks.
func (d *Device) SetFrequency(f Frequency) Frequency {
	d.freq = d.Model.Clamp(f)
	return d.freq
}

// Frequency returns the currently locked SM frequency.
func (d *Device) Frequency() Frequency { return d.freq }

// Run executes a computation whose reference time at FMax is refSec at the
// currently locked frequency, accumulating energy, and returns the elapsed
// time and consumed energy.
func (d *Device) Run(refSec, memBound float64) (sec, joules float64) {
	sec = d.Model.Time(refSec, d.freq, memBound)
	joules = d.Model.Power(d.freq) * sec
	d.energyJ += joules
	return sec, joules
}

// Block accounts for sec seconds spent blocking on communication at
// P_blocking and returns the consumed energy.
func (d *Device) Block(sec float64) (joules float64) {
	joules = d.Model.BlockingW * sec
	d.energyJ += joules
	return joules
}

// EnergyCounter returns total accumulated energy in joules, mirroring
// nvmlDeviceGetTotalEnergyConsumption.
func (d *Device) EnergyCounter() float64 { return d.energyJ }

// ResetEnergyCounter zeroes the accumulated energy counter.
func (d *Device) ResetEnergyCounter() { d.energyJ = 0 }

// ParetoPoints returns the Pareto-optimal (time, adjusted energy) choices
// for a computation with reference time refSec, sweeping all supported
// frequencies, sorted by increasing time. Adjusted energy subtracts
// pBlocking·t per paper Eq. 4. Frequencies that are slower and no cheaper
// than another choice are pruned, mirroring the profiler's early stop
// (paper §5: "After a certain frequency, lower frequencies result in both
// more time and energy consumed").
func (m *Model) ParetoPoints(refSec, memBound, pBlocking float64) []Point {
	var pts []Point
	for f := m.FMax; f >= m.FMin; f -= m.FStep {
		t := m.Time(refSec, f, memBound)
		e := m.Energy(refSec, f, memBound) - pBlocking*t
		pts = append(pts, Point{Freq: f, Time: t, Energy: e})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	out := pts[:0]
	minE := math.Inf(1)
	for _, p := range pts {
		if p.Energy < minE {
			out = append(out, p)
			minE = p.Energy
		}
	}
	return append([]Point(nil), out...)
}

// Point is one (frequency, time, energy) measurement.
type Point struct {
	Freq   Frequency
	Time   float64 // seconds
	Energy float64 // joules (possibly adjusted by −P_blocking·t)
}
