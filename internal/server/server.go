// Package server implements the Perseus server (paper §3.2, Figure 4): a
// framework- and accelerator-agnostic, cluster-wide singleton that
// receives each job's computation DAG and online profiling results,
// asynchronously characterizes the time-energy frontier, caches energy
// schedules in a lookup table, and serves the schedule for
// T_opt = min(T*, T') — updating it when the training infrastructure
// reports a straggler via set_straggler (Table 2).
//
// The server is organized as resource-oriented modules sharing one
// concurrency-safe store (store.go):
//
//   - jobs.go      job registry, profiling, deployed schedules (with
//     ETag/long-poll version fetching), stragglers, frontiers
//   - fleet.go     facility power cap and the fleet allocator
//   - grid.go      grid signal install, cached temporal planning,
//     emissions accounting
//   - regions.go   datacenter regions, placement, joint planning
//   - forecast.go  forecast issuing and rolling-horizon re-planning
//   - controller.go the background MPC controller runtime: a loop that
//     ticks at signal-interval boundaries, re-plans every managed job
//     with the executed prefix frozen, and bumps schedule versions
//   - cache.go     the single-flight plan cache keyed by
//     (plan epoch, frontier hash, request params)
//   - obs.go       the observability surface: the internal/obs metric
//     registry and event ring, the HTTP instrumentation middleware,
//     and the /metrics, /healthz, and /debug/events endpoints
//   - ledger.go    the online energy-bloat ledger wiring: per-span
//     decomposition at every settlement (obs.Ledger), the per-job and
//     fleet bloat series, migration-overhead charging, and
//     GET /debug/ledger
//
// The grid and region planning endpoints drive the shared
// internal/plan planners (grid.Planner, region.Planner); the fleet
// recompute and the controller's incremental roll-forward use the same
// layers through their native entry points (fleet.Allocate and
// grid.Optimize over forecast windows — the controller is the
// deployable, prefix-freezing counterpart of forecast.Planner).
package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	pln "perseus/internal/plan"
)

// Server is the Perseus server. Create with New and expose via Handler.
type Server struct {
	st    *store
	cache *planCache

	// hub is the notification fabric long-poll fan-out rides on: every
	// schedule version bump and plan-epoch advance is one O(1)
	// broadcast that wakes all parked waiters of the topic (hub.go).
	hub *hub

	// fleetMu serializes whole fleet recomputations (read cap →
	// allocate → deploy floors), so concurrent recomputes cannot
	// interleave their write-backs and deploy floors for a stale cap.
	fleetMu sync.Mutex

	// replanMu serializes rolling-horizon re-planning (read state →
	// freeze → plan → write back) across client calls and controller
	// ticks; replans holds per-job rolling-horizon state.
	replanMu sync.Mutex
	replans  map[string]*replanState

	// ctrl is the background MPC controller runtime.
	ctrl controller

	// obs is the observability surface every module records into.
	obs *serverObs

	// planWrap, when set, wraps every planner the server constructs
	// before instrumentation — the test seam fault-injection tests use
	// to force solver errors. Set before serving traffic; never mutated
	// concurrently with requests.
	planWrap func(pln.Planner) pln.Planner
}

// wrapPlanner applies the planWrap seam (identity when unset).
func (s *Server) wrapPlanner(p pln.Planner) pln.Planner {
	if s.planWrap != nil {
		return s.planWrap(p)
	}
	return p
}

// New returns an empty server.
func New() *Server {
	s := &Server{
		st:      newStore(),
		obs:     newServerObs(),
		replans: map[string]*replanState{},
	}
	s.hub = newHub(s.obs)
	s.cache = newPlanCache(s.obs)
	s.ctrl.s = s
	s.ctrl.managed = map[string]managedJob{}
	return s
}

// SetPlanCacheBackend swaps the plan cache's storage backend — the
// seam a multi-replica deployment uses to share solved plans (the
// cache key embeds the plan epoch and the frontier's content hash, so
// entries are location-independent). The default is the in-memory
// backend. Call before serving traffic; the single-flight solve
// de-duplication always stays replica-local.
func (s *Server) SetPlanCacheBackend(b PlanCacheBackend) {
	s.cache.setBackend(b)
}

// SetClock replaces the server's wall clock — the hook fake-clock
// tests and compressed-timescale demos drive the controller with. The
// tracer shares the clock, so spans carry the same timeline as events.
func (s *Server) SetClock(fn func() time.Time) {
	s.st.mu.Lock()
	s.st.clock = fn
	s.st.mu.Unlock()
	s.obs.tracer.SetClock(fn)
}

// Handler returns the HTTP API:
//
//	POST /jobs                      register a job
//	POST /jobs/{id}/profile        upload profiling results
//	GET  /jobs/{id}/schedule       fetch the deployed energy schedule
//	                               (ETag; If-None-Match + ?wait long-polls)
//	POST /jobs/{id}/straggler      set_straggler notification
//	GET  /jobs/{id}/frontier       fetch the characterized frontier
//	GET  /jobs/{id}/table          fetch the full energy-schedule lookup table
//	GET  /jobs/{id}/allocation     fetch the job's fleet allocation
//	GET  /jobs/{id}/emissions      fetch the job's cumulative emissions
//	GET  /jobs/{id}/rollout        fetch the job's rolling-horizon schedule
//	                               state without triggering a re-plan
//	POST /fleet/cap                set the fleet power cap
//	GET  /fleet/status             fetch the fleet-wide allocation
//	POST /grid/signal              install a grid signal (carbon/price/cap trace)
//	GET  /grid/signal              fetch the installed grid signal
//	GET  /grid/plan/{id}           plan a job's temporal schedule over the signal
//	                               (cached; identical concurrent requests solve once)
//	POST /grid/forecast            install a forecast issuer and issue a forecast
//	GET  /grid/forecast            fetch the latest issued forecast
//	GET  /grid/replan/{id}         roll a job's schedule forward: freeze the executed
//	                               prefix, re-plan the rest on the latest forecast
//	POST /regions                  register a datacenter region (capacity + signal)
//	GET  /regions                  list the registered regions
//	GET  /regions/plan             plan all jobs' spatio-temporal schedules across regions
//	POST /jobs/{id}/placement      place (or migrate) a job into a region
//	GET  /jobs/{id}/placement      fetch a job's placement and history
//	GET  /controller               fetch the controller runtime status
//	POST /controller/jobs          put a job's rolling schedule under controller management
//	POST /controller/start         start the background tick loop
//	POST /controller/stop          stop the background tick loop
//	POST /controller/tick          run one controller tick synchronously
//	GET  /metrics                  Prometheus text exposition of every metric
//	GET  /healthz                  liveness + readiness with per-SLO status
//	GET  /debug/events             recent structured event ring as JSON
//	                               (?n= limit, ?since= Seq cursor)
//	GET  /debug/traces             assembled trace span trees, newest first
//	                               (?n= limit, ?min_ms= floor, ?op= span filter)
//	GET  /debug/slo                every SLO rule evaluated now
//	GET  /debug/ledger             per-job + fleet energy-bloat ledger
//	                               (?job= one job, ?n= entry cap, ?format=json|csv)
//	DELETE /jobs/{id}              unregister a job: final span settled,
//	                               per-job metric series deleted
//
// Every endpoint is instrumented (request count/status/latency, an
// in-flight gauge, and a root trace span continuing any incoming W3C
// traceparent) by the observability middleware in obs.go.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/fleet/cap", s.handleFleetCap)
	mux.HandleFunc("/fleet/status", s.handleFleetStatus)
	mux.HandleFunc("/grid/signal", s.handleGridSignal)
	mux.HandleFunc("/grid/plan/", s.handleGridPlan)
	mux.HandleFunc("/grid/forecast", s.handleGridForecast)
	mux.HandleFunc("/grid/replan/", s.handleGridReplan)
	mux.HandleFunc("/regions", s.handleRegions)
	mux.HandleFunc("/regions/plan", s.handleRegionsPlan)
	mux.HandleFunc("/controller", s.handleController)
	mux.HandleFunc("/controller/", s.handleControllerAction)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/events", s.handleDebugEvents)
	mux.HandleFunc("/debug/traces", s.handleDebugTraces)
	mux.HandleFunc("/debug/slo", s.handleDebugSLO)
	mux.HandleFunc("/debug/ledger", s.handleDebugLedger)
	return s.obs.middleware(mux)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
