package plan

import "math"

// BloatSpan is one settled accounting interval decomposed into the
// paper's energy-bloat categories. Realized totals (the embedded
// Account) split into a frontier-optimal floor, migration overhead,
// and residual bloat; two baselines place the realized numbers against
// what signal-blind operation would have cost at equal work; and the
// forecast fields carry realized-vs-predicted drift. Two conservation
// identities hold by construction — the residuals are computed as the
// exact difference, never independently:
//
//	EnergyJ  = FloorJ + MigrationJ + ResidualJ
//	CarbonG  = FloorC + MigrationC + ResidualC
//
// plus the baseline identity TminJ + MigrationJ = EnergyJ + RemovedJ
// (intrinsic bloat removed compares work energy against the always-Tmin
// grid.Fixed(0) baseline at equal iterations, excluding migration).
type BloatSpan struct {
	// Realized totals for the span (energy_j, carbon_g, cost_usd).
	Account

	// Iterations is the training work the span covers (pipeline
	// iterations; 0 for pure-overhead entries such as migrations).
	Iterations float64 `json:"iterations"`

	// FloorJ is the frontier-optimal energy floor: the same work at the
	// frontier's minimum energy-per-iteration point T*.
	FloorJ float64 `json:"floor_j"`

	// MigrationJ is migration overhead charged inside the span.
	MigrationJ float64 `json:"migration_j"`

	// ResidualJ is realized minus floor minus migration: bloat still
	// present after Perseus's scheduling (straggler slack, cap floors).
	ResidualJ float64 `json:"residual_j"`

	// TminJ is the always-Tmin baseline (grid.Fixed(0)): the same work
	// run flat-out at the frontier's fastest point.
	TminJ float64 `json:"tmin_j"`

	// RemovedJ is intrinsic bloat removed versus the always-Tmin
	// baseline: TminJ − (EnergyJ − MigrationJ). Negative only when a
	// span ran above T* (an extreme straggler burning more than
	// flat-out would).
	RemovedJ float64 `json:"removed_j"`

	// Carbon split of the realized CarbonG at the span's mean realized
	// intensity r = CarbonG/EnergyJ.
	FloorC     float64 `json:"floor_c"`
	MigrationC float64 `json:"migration_c"`
	ResidualC  float64 `json:"residual_c"`

	// BlindC prices the floor energy at the signal cycle's
	// duration-weighted mean intensity — the best any signal-blind
	// grid.Fixed baseline can do on carbon timing, since a fixed
	// operating point cannot choose when to draw. TemporalSavedC is
	// BlindC − FloorC: carbon saved (negative: lost) purely by when the
	// span's energy was drawn.
	BlindC         float64 `json:"blind_c"`
	TemporalSavedC float64 `json:"temporal_saved_c"`

	// Forecast drift: PredC is the carbon the forecast in force priced
	// the span at, PredRealC the realized carbon over exactly the
	// forecast-covered part, and DriftC = PredRealC − PredC (positive:
	// the grid ran dirtier than forecast). All zero when the span was
	// not forecast-covered.
	PredC     float64 `json:"pred_c"`
	PredRealC float64 `json:"pred_real_c"`
	DriftC    float64 `json:"drift_c"`
}

// SpanInputs are the raw measurements DecomposeSpan splits.
type SpanInputs struct {
	// Realized is the span's settled accounting (grid.Accrue output
	// plus any migration charge folded in).
	Realized Account

	// Iterations is the work the span covers.
	Iterations float64

	// FloorJ and TminJ are the frontier baselines at equal work:
	// Iterations × pipelines × energy-per-iteration at T* (floor) and
	// at Tmin (always-fast baseline).
	FloorJ float64
	TminJ  float64

	// MigrationJ is the migration overhead included in Realized.EnergyJ.
	MigrationJ float64

	// MeanGPerJ is the duration-weighted mean carbon intensity of the
	// governing signal's cycle, in grams per joule (0 without a signal).
	MeanGPerJ float64

	// PredC and PredRealC are the forecast-predicted and the
	// forecast-covered realized carbon for the span (both 0 when the
	// span was not forecast-covered).
	PredC     float64
	PredRealC float64
}

// DecomposeSpan splits one settled interval into the bloat categories.
// The residual components are computed as exact differences, so the
// conservation identities hold bit-for-bit, not just to tolerance.
func DecomposeSpan(in SpanInputs) BloatSpan {
	b := BloatSpan{
		Account:    in.Realized,
		Iterations: in.Iterations,
		FloorJ:     in.FloorJ,
		MigrationJ: in.MigrationJ,
		TminJ:      in.TminJ,
		PredC:      in.PredC,
		PredRealC:  in.PredRealC,
	}
	b.ResidualJ = b.EnergyJ - b.FloorJ - b.MigrationJ
	b.RemovedJ = b.TminJ - (b.EnergyJ - b.MigrationJ)
	var r float64 // mean realized intensity of the span, g/J
	if b.EnergyJ > 0 {
		r = b.CarbonG / b.EnergyJ
	}
	b.FloorC = b.FloorJ * r
	b.MigrationC = b.MigrationJ * r
	b.ResidualC = b.CarbonG - b.FloorC - b.MigrationC
	b.BlindC = b.FloorJ * in.MeanGPerJ
	b.TemporalSavedC = b.BlindC - b.FloorC
	b.DriftC = b.PredRealC - b.PredC
	return b
}

// Accumulate adds o into b field-wise. Sums of conserving spans
// conserve, so cumulative ledgers satisfy the same identities.
func (b *BloatSpan) Accumulate(o BloatSpan) {
	b.Account.Accumulate(o.Account)
	b.Iterations += o.Iterations
	b.FloorJ += o.FloorJ
	b.MigrationJ += o.MigrationJ
	b.ResidualJ += o.ResidualJ
	b.TminJ += o.TminJ
	b.RemovedJ += o.RemovedJ
	b.FloorC += o.FloorC
	b.MigrationC += o.MigrationC
	b.ResidualC += o.ResidualC
	b.BlindC += o.BlindC
	b.TemporalSavedC += o.TemporalSavedC
	b.PredC += o.PredC
	b.PredRealC += o.PredRealC
	b.DriftC += o.DriftC
}

// Conserved verifies the conservation identities within eps relative
// tolerance (absolute for magnitudes below 1): energy and carbon
// components sum to realized, and the Tmin-baseline identity holds.
func (b BloatSpan) Conserved(eps float64) bool {
	close := func(got, want float64) bool {
		scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
		return math.Abs(got-want) <= eps*scale
	}
	return close(b.FloorJ+b.MigrationJ+b.ResidualJ, b.EnergyJ) &&
		close(b.FloorC+b.MigrationC+b.ResidualC, b.CarbonG) &&
		close(b.TminJ+b.MigrationJ, b.EnergyJ+b.RemovedJ) &&
		close(b.DriftC, b.PredRealC-b.PredC) &&
		close(b.TemporalSavedC, b.BlindC-b.FloorC)
}
