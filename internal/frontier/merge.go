package frontier

// MergeInput is one characterized job entering a fleet-level merge.
type MergeInput struct {
	// Table is the job's characterized frontier.
	Table *LookupTable

	// PowerScale multiplies the table's per-point average power, e.g.
	// the number of data-parallel pipeline replicas executing the same
	// plan. Zero or negative means 1.
	PowerScale float64

	// LossWeight converts one second of this job's slowdown into units
	// of fleet loss; merged steps are ordered by watts saved per unit of
	// loss. Zero or negative means 1 (loss measured in plain seconds).
	LossWeight float64

	// Start is the point index the job descends from (e.g. the
	// T_opt = min(T*, T') floor under a straggler). Points before Start
	// are excluded from the merge.
	Start int
}

// MergeStep is one step of a merged fleet descent: table Table moved
// from point Point-1 to Point, lowering total fleet power to Power.
type MergeStep struct {
	// Table indexes the MergeInput whose job slowed down.
	Table int

	// Point is the job's new operating-point index.
	Point int

	// Power is the total scaled fleet power after the step, in watts.
	Power float64

	// Loss is the step's weighted slowdown cost (LossWeight × Δtime).
	Loss float64

	// Slope is the step's marginal rate: watts saved per unit of loss.
	Slope float64
}

// Merge merges N characterized frontiers into a single fleet-level
// descent: the ordered sequence of one-point slowdowns, steepest
// watts-saved-per-loss slope first, from every job at its Start point
// down to every job at its T* point. It returns the starting total
// power and the steps.
//
// Each job's average power strictly decreases along its own frontier,
// so every step saves power; a fleet allocator meets a power cap by
// taking the step prefix that first brings Power under the cap. When
// every frontier is convex (power savings per second of slowdown
// non-increasing along the table), each job's slope sequence is
// non-increasing and the greedy prefix is loss-optimal for the power it
// achieves — the discrete marginal-analysis argument tested in
// internal/fleet.
func Merge(inputs []MergeInput) (startPower float64, steps []MergeStep) {
	type jobState struct {
		lt     *LookupTable
		scale  float64
		weight float64
		cur    int
	}
	js := make([]jobState, len(inputs))
	for i, in := range inputs {
		s := jobState{lt: in.Table, scale: in.PowerScale, weight: in.LossWeight, cur: in.Start}
		if s.scale <= 0 {
			s.scale = 1
		}
		if s.weight <= 0 {
			s.weight = 1
		}
		if s.cur < 0 {
			s.cur = 0
		}
		if n := len(s.lt.Points); n == 0 {
			s.cur = 0 // empty table: draws no power, never advances
		} else {
			if s.cur >= n {
				s.cur = n - 1
			}
			startPower += s.scale * s.lt.AvgPower(s.cur)
		}
		js[i] = s
	}

	power := startPower
	for {
		best, bestSlope := -1, 0.0
		var bestDP, bestLoss float64
		for i := range js {
			s := &js[i]
			if s.cur+1 >= len(s.lt.Points) {
				continue
			}
			dp := s.scale * (s.lt.AvgPower(s.cur) - s.lt.AvgPower(s.cur+1))
			loss := s.weight * (s.lt.PointTime(s.cur+1) - s.lt.PointTime(s.cur))
			slope := dp / loss
			if best < 0 || slope > bestSlope {
				best, bestSlope, bestDP, bestLoss = i, slope, dp, loss
			}
		}
		if best < 0 {
			return startPower, steps
		}
		js[best].cur++
		power -= bestDP
		steps = append(steps, MergeStep{
			Table: best,
			Point: js[best].cur,
			Power: power,
			Loss:  bestLoss,
			Slope: bestSlope,
		})
	}
}
