package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perseus/internal/sched"
)

// randomGraph builds a random pipeline DAG with random durations.
func randomGraph(seed int64) (*Graph, *rand.Rand, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(3)
	m := 1 + rng.Intn(6)
	var s *sched.Schedule
	var err error
	switch rng.Intn(3) {
	case 0:
		s, err = sched.OneFOneB(n, m)
	case 1:
		s, err = sched.GPipe(n, m)
	default:
		s, err = sched.EarlyRecompute1F1B(n, m)
	}
	if err != nil {
		return nil, nil, err
	}
	g, err := Build(s, func(op sched.Op) int64 { return 1 + int64(rng.Intn(9)) })
	return g, rng, err
}

// TestPropertyMakespanEqualsPathEnumeration checks the longest-path
// makespan against exhaustive DFS path enumeration on small random DAGs.
func TestPropertyMakespanEqualsPathEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		g, _, err := randomGraph(seed)
		if err != nil {
			return false
		}
		if len(g.Dur) > 40 {
			return true // too large to enumerate; covered by other cases
		}
		var dfs func(v int) int64
		memo := make(map[int]int64)
		dfs = func(v int) int64 {
			if got, ok := memo[v]; ok {
				return got
			}
			var best int64
			for _, w := range g.Succ[v] {
				if l := dfs(int(w)); l > best {
					best = l
				}
			}
			memo[v] = best + g.Dur[v]
			return memo[v]
		}
		return g.Makespan() == dfs(g.Source)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMakespanMonotone checks that growing any single duration
// never decreases the makespan, and never grows it by more than the
// increment.
func TestPropertyMakespanMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g, rng, err := randomGraph(seed)
		if err != nil {
			return false
		}
		before := g.Makespan()
		idx := rng.Intn(g.NumReal())
		delta := int64(1 + rng.Intn(5))
		g.Dur[idx] += delta
		after := g.Makespan()
		return after >= before && after <= before+delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySlackSemantics checks zero slack == critical, and that
// growing a node within its slack preserves the makespan exactly.
func TestPropertySlackSemantics(t *testing.T) {
	f := func(seed int64) bool {
		g, rng, err := randomGraph(seed)
		if err != nil {
			return false
		}
		slack := g.Slack()
		crit, mk := g.Critical()
		for v := range slack {
			if (slack[v] == 0) != crit[v] {
				return false
			}
		}
		// Pick a random node with positive slack and grow within it.
		var candidates []int
		for v := 0; v < g.NumReal(); v++ {
			if slack[v] > 0 {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return true
		}
		v := candidates[rng.Intn(len(candidates))]
		g.Dur[v] += slack[v]
		return g.Makespan() == mk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCriticalPathCoversMakespan checks that shrinking every
// critical computation by one unit reduces the makespan (the premise of
// the paper's cut-based reduction: all critical paths must shorten).
func TestPropertyCriticalPathCoversMakespan(t *testing.T) {
	f := func(seed int64) bool {
		g, _, err := randomGraph(seed)
		if err != nil {
			return false
		}
		crit, mk := g.Critical()
		for v := 0; v < g.NumReal(); v++ {
			if crit[v] && g.Dur[v] > 1 {
				g.Dur[v]--
			}
		}
		// Shrinking every critical computation (where possible) must not
		// increase the makespan; it strictly decreases it unless some
		// critical path is pinned at unit durations.
		return g.Makespan() <= mk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
