package frontier

import (
	"bytes"
	"strings"
	"testing"

	"perseus/internal/gpu"
)

func TestTableMatchesFrontierLookup(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f := characterize(t, g, p, opts)
	lt := f.Table()
	if lt.Tmin() != f.Tmin() || lt.TStar() != f.TStar() {
		t.Fatalf("table bounds (%v, %v) != frontier (%v, %v)", lt.Tmin(), lt.TStar(), f.Tmin(), f.TStar())
	}
	for _, factor := range []float64{0.5, 1.0, 1.02, 1.1, 1.25, 2.0} {
		tPrime := f.Tmin() * factor
		want := f.Lookup(tPrime)
		got := lt.Lookup(tPrime)
		if got.TimeUnits != want.TimeUnits {
			t.Fatalf("factor %v: table %d units, frontier %d", factor, got.TimeUnits, want.TimeUnits)
		}
		wantPlan := want.Plan()
		for i := range wantPlan {
			if got.Freqs[i] != wantPlan[i] {
				t.Fatalf("factor %v: plan mismatch at op %d", factor, i)
			}
		}
	}
}

func TestTableSaveLoadRoundTrip(t *testing.T) {
	g, p, opts := buildCase(t, "bert-1.3b", gpu.A40, 2, 4, 8, "1f1b")
	f := characterize(t, g, p, opts)
	lt := f.Table()
	var buf bytes.Buffer
	if err := lt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Unit != lt.Unit || len(got.Points) != len(lt.Points) {
		t.Fatalf("round trip mismatch: %v/%d vs %v/%d", got.Unit, len(got.Points), lt.Unit, len(lt.Points))
	}
	probe := f.Tmin() * 1.07
	a, b := lt.Lookup(probe), got.Lookup(probe)
	if a.TimeUnits != b.TimeUnits || a.Energy != b.Energy {
		t.Fatalf("loaded table lookup differs: %+v vs %+v", b, a)
	}
	for i := range a.Freqs {
		if a.Freqs[i] != b.Freqs[i] {
			t.Fatalf("loaded plan differs at op %d", i)
		}
	}
}

func TestLoadTableValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"garbage", "{"},
		{"no points", `{"unit_s":0.001,"tmin_units":1,"tstar_units":2,"points":[]}`},
		{"bad unit", `{"unit_s":0,"tmin_units":1,"tstar_units":2,"points":[{"time_units":1,"energy_j":1,"freqs_mhz":[100]}]}`},
		{"non-increasing", `{"unit_s":0.001,"tmin_units":1,"tstar_units":2,"points":[
			{"time_units":2,"energy_j":1,"freqs_mhz":[100]},
			{"time_units":2,"energy_j":1,"freqs_mhz":[100]}]}`},
		{"ragged freqs", `{"unit_s":0.001,"tmin_units":1,"tstar_units":2,"points":[
			{"time_units":1,"energy_j":1,"freqs_mhz":[100]},
			{"time_units":2,"energy_j":1,"freqs_mhz":[100,200]}]}`},
		{"bad endpoints", `{"unit_s":0.001,"tmin_units":5,"tstar_units":9,"points":[
			{"time_units":1,"energy_j":1,"freqs_mhz":[100]},
			{"time_units":2,"energy_j":1,"freqs_mhz":[100]}]}`},
	}
	for _, c := range cases {
		if _, err := LoadTable(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: LoadTable accepted invalid input", c.name)
		}
	}
}
