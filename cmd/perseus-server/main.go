// Command perseus-server runs the Perseus server (paper §3.2, Figure 4):
// a cluster-wide singleton that registers training jobs, receives online
// profiling results, characterizes time-energy frontiers asynchronously,
// and serves energy schedules over HTTP — including straggler reactions
// via POST /jobs/{id}/straggler.
package main

import (
	"flag"
	"log"
	"net/http"

	"perseus/internal/server"
)

func main() {
	addr := flag.String("addr", ":7787", "listen address")
	flag.Parse()
	log.Printf("perseus server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New().Handler()))
}
