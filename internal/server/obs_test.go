package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/obs"
)

// TestObservabilityEndpoints drives one end-to-end planning flow and
// checks that /metrics, /healthz, and /debug/events report it: the
// core series carry the expected counts, the health view reflects the
// installed state, and the event ring recorded the lifecycle.
func TestObservabilityEndpoints(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	// One miss, one hit.
	if _, err := cl.FetchGridPlan(id, 50, 0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchGridPlan(id, 50, 0, ""); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	text, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE perseus_http_requests_total counter",
		`perseus_http_requests_total{route="/grid/plan/{id}",method="GET",code="200"} 2`,
		`perseus_http_requests_total{route="/grid/signal",method="POST",code="200"} 1`,
		"perseus_plan_cache_hits_total 1",
		"perseus_plan_cache_misses_total 1",
		"perseus_jobs_registered_total 1",
		`perseus_characterizations_total{outcome="ok"} 1`,
		`perseus_planner_plan_duration_seconds_count{planner="grid",objective="carbon"} 1`,
		"# TYPE perseus_http_request_duration_seconds histogram",
		"perseus_controller_ticks_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	h, err := cl.FetchHealth()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 1 || !h.SignalInstalled || h.ForecastInstalled || h.ControllerRunning {
		t.Fatalf("health view %+v", h)
	}

	events, err := cl.FetchEvents(0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, e := range events {
		byName[e.Name]++
		if i > 0 && e.Seq <= events[i-1].Seq {
			t.Fatalf("event seq not increasing: %d after %d", e.Seq, events[i-1].Seq)
		}
	}
	if byName["job.register"] != 1 || byName["job.characterize"] != 1 || byName["signal.install"] != 1 {
		t.Fatalf("event counts %v", byName)
	}
	// A limited fetch returns the newest suffix.
	last, err := cl.FetchEvents(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 1 || last[0].Seq != events[len(events)-1].Seq {
		t.Fatalf("limited fetch %v, want newest %v", last, events[len(events)-1])
	}
}

// TestControllerTickMetrics pins the controller instrumentation under a
// fake clock: the tick counter, the tick-duration histogram count, and
// the event ring's controller.tick spans all match the number of ticks
// driven exactly, the replan counter matches the job's plan count, and
// the new GET /controller fields surface the last replan time.
func TestControllerTickMetrics(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(11, 0.2, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	if _, err := cl.ManageJob(id, target, 14400, "", 0); err != nil {
		t.Fatal(err)
	}

	const ticks = 3
	var last client.ControllerStatus
	for i := 0; i < ticks; i++ {
		clock.Advance(time.Hour)
		if last, err = cl.TickController(); err != nil {
			t.Fatal(err)
		}
	}

	if got := srv.obs.ticks.Value(); got != ticks {
		t.Fatalf("tick counter %v, want %d", got, ticks)
	}
	if got := srv.obs.tickDur.Count(); got != ticks {
		t.Fatalf("tick duration histogram count %d, want %d", got, ticks)
	}
	plans := last.Jobs[0].Plans
	if plans < 2 {
		t.Fatalf("expected re-plans beyond the initial one, got %d", plans)
	}
	if got := srv.obs.replans.Value(); got != float64(plans) {
		t.Fatalf("replan counter %v, want %d (the job's plan count)", got, plans)
	}
	if got := srv.obs.replanFails.Value(); got != 0 {
		t.Fatalf("replan failure counter %v, want 0", got)
	}
	if last.LastTickError != "" {
		t.Fatalf("clean ticks reported error %q", last.LastTickError)
	}
	wantAt := float64(clock.Now().UnixNano()) / 1e9
	if last.Jobs[0].LastReplanUnixS != wantAt {
		t.Fatalf("last replan at %v, want %v", last.Jobs[0].LastReplanUnixS, wantAt)
	}

	var tickEvents, replanEvents []obs.Event
	for _, e := range srv.Events(0).Events {
		switch e.Name {
		case "controller.tick":
			tickEvents = append(tickEvents, e)
		case "controller.replan":
			replanEvents = append(replanEvents, e)
		}
	}
	if len(tickEvents) != ticks {
		t.Fatalf("%d controller.tick events, want %d", len(tickEvents), ticks)
	}
	if len(replanEvents) != plans {
		t.Fatalf("%d controller.replan events, want %d", len(replanEvents), plans)
	}
	// Event timestamps come from the server clock, so under the fake
	// clock each tick span lands exactly on its driven instant.
	base := float64(time.Unix(1_700_000_000, 0).UnixNano()) / 1e9
	for i, e := range tickEvents {
		if want := base + float64(i+1)*3600; e.AtUnixS != want {
			t.Fatalf("tick %d at %v, want %v", i, e.AtUnixS, want)
		}
		if e.Labels["jobs"] != "1" || e.Labels["errors"] != "0" {
			t.Fatalf("tick %d labels %v", i, e.Labels)
		}
	}
}

// TestControllerLastTickErrorSurfaced pins the failure side: a managed
// job whose roll-forward fails leaves the tick counted, the failure
// counted, and the error surfaced in GET /controller.
func TestControllerLastTickErrorSurfaced(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ManageJob(id, 1e9, 14400, "", 0); err != nil {
		t.Fatal(err)
	}
	// Force the managed state to need a re-plan it cannot have: drop the
	// rolling schedule out from under the management record.
	srv.replanMu.Lock()
	delete(srv.replans, id)
	srv.replanMu.Unlock()

	clock.Advance(time.Hour)
	st, err := cl.TickController()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastTickError == "" || !strings.Contains(st.LastTickError, id) {
		t.Fatalf("last tick error %q, want one mentioning %s", st.LastTickError, id)
	}
	if st.Jobs[0].LastError == "" {
		t.Fatal("per-job last error not set")
	}
	if got := srv.obs.ticks.Value(); got != 1 {
		t.Fatalf("tick counter %v, want 1", got)
	}
}

// TestObsConcurrentHammer drives one registry from every direction at
// once — HTTP plan and schedule handlers, synchronous controller ticks,
// and metric scrapes — and relies on -race to catch unsynchronized
// access. The final scrape must still parse as a sane exposition.
func TestObsConcurrentHammer(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(7, 0.1, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ManageJob(id, 1e6, 14400, "", 0); err != nil {
		t.Fatal(err)
	}

	const iters = 30
	var wg sync.WaitGroup
	run := func(fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fn(i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	run(func(i int) error { // plan fetches: hits, misses, single-flight
		_, err := cl.FetchGridPlan(id, float64(50+i%3), 0, "")
		return err
	})
	run(func(i int) error { // schedule fetches through the middleware
		_, err := cl.FetchSchedule(id)
		return err
	})
	run(func(i int) error { // controller ticks under an advancing clock
		clock.Advance(time.Minute)
		_, err := cl.TickController()
		return err
	})
	run(func(i int) error { // metric scrapes concurrent with writes
		_, err := cl.FetchMetrics()
		return err
	})
	run(func(i int) error { // event snapshots concurrent with emits
		_, err := cl.FetchEvents(16)
		return err
	})
	wg.Wait()

	text, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "perseus_controller_ticks_total 30") {
		t.Fatalf("final scrape lost ticks:\n%s", text)
	}
	if got := srv.obs.httpInFlight.Value(); got != 0 {
		t.Fatalf("in-flight gauge %v after quiescence, want 0", got)
	}
}
