// Straggler reaction: when one data-parallel pipeline is throttled, all
// other pipelines would block on gradient synchronization anyway —
// extrinsic energy bloat (paper §2.3, Figure 2). Perseus slows the
// non-straggler pipelines to T_opt = min(T*, T'), saving energy without
// delaying the iteration.
package main

import (
	"fmt"
	"log"

	"perseus"
)

func main() {
	sys, err := perseus.Characterize(perseus.Workload{
		Model:          "bloom-3b",
		GPU:            "A40",
		Stages:         4,
		MicrobatchSize: 4,
		Microbatches:   16,
		DataParallel:   4,
		TargetSteps:    600,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pipeline 0 is throttled to 1.25x by the datacenter's power manager,
	// which notifies Perseus (paper Table 2: set_straggler).
	const degree = 1.25
	straggler := []perseus.Straggler{{Pipeline: 0, Factor: degree}}
	base, err := sys.Simulate(sys.MaxFrequencyPlan(), straggler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-max with straggler:      %.3fs, %.0f J\n", base.IterTime, base.Energy)

	// Intrinsic-only reaction: everyone keeps the Tmin schedule.
	fast := sys.PlanFor(0)
	intr, err := sys.Simulate(fast, straggler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perseus, intrinsic only:     %.3fs, %.0f J (%.1f%% saving)\n",
		intr.IterTime, intr.Energy, 100*(1-intr.Energy/base.Energy))

	// Full reaction: non-stragglers move to the T' schedule.
	tPrime := sys.Baseline().IterTime * degree
	slow := sys.PlanFor(tPrime)
	full, err := sys.SimulatePerPipeline(func(p int) perseus.Plan {
		if p == 0 {
			return fast // the straggler keeps its own pace
		}
		return slow
	}, straggler)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("perseus, intrinsic+extrinsic: %.3fs, %.0f J (%.1f%% saving)\n",
		full.IterTime, full.Energy, 100*(1-full.Energy/base.Energy))
	if full.IterTime > base.IterTime*1.001 {
		log.Fatalf("BUG: extrinsic reaction delayed the iteration")
	}
	fmt.Println("\niteration time unchanged: the straggler set the pace either way.")
}
