// Package maxflow implements the Edmonds-Karp maximum-flow algorithm and
// the maximum-flow-with-lower-bounds extension the Perseus optimizer uses
// to find minimum cuts on the Capacity DAG (paper §4.3, Appendix E.2,
// Algorithm 3). Capacities are float64 energy values (joules); edges whose
// computation cannot change speed carry effectively infinite capacity.
package maxflow

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no flow can satisfy the lower bounds.
var ErrInfeasible = errors.New("maxflow: no feasible flow satisfies the lower bounds")

const eps = 1e-9

// Graph is a flow network over nodes 0..n-1.
type Graph struct {
	n    int
	to   []int32
	cap  []float64
	head [][]int32 // per-node incident edge ids (both directions)
	flow []float64
}

// New returns an empty flow network with n nodes.
func New(n int) *Graph {
	return &Graph{n: n, head: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns its
// edge id. A reverse edge with zero capacity is added implicitly.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge %d->%d out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %v on %d->%d", capacity, u, v))
	}
	id := len(g.to)
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.flow = append(g.flow, 0, 0)
	g.head[u] = append(g.head[u], int32(id))
	g.head[v] = append(g.head[v], int32(id+1))
	return id
}

// residual returns the residual capacity of edge id.
func (g *Graph) residual(id int32) float64 { return g.cap[id] - g.flow[id] }

// Flow returns the current flow on the edge with the given id.
func (g *Graph) Flow(id int) float64 { return g.flow[id] }

// MaxFlow pushes the maximum flow from s to t using Edmonds-Karp (BFS
// augmenting paths, Edmonds & Karp 1972) and returns the flow value.
// It may be called once per graph.
func (g *Graph) MaxFlow(s, t int) float64 {
	var total float64
	prev := make([]int32, g.n)
	queue := make([]int32, 0, g.n)
	for {
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = -2
		queue = append(queue[:0], int32(s))
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.head[u] {
				v := g.to[id]
				if prev[v] == -1 && g.residual(id) > eps {
					prev[v] = id
					if int(v) == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return total
		}
		// Find the bottleneck along the path.
		bottleneck := math.Inf(1)
		for v := int32(t); v != int32(s); {
			id := prev[v]
			if r := g.residual(id); r < bottleneck {
				bottleneck = r
			}
			v = g.to[id^1]
		}
		for v := int32(t); v != int32(s); {
			id := prev[v]
			g.flow[id] += bottleneck
			g.flow[id^1] -= bottleneck
			v = g.to[id^1]
		}
		total += bottleneck
	}
}

// MinCutSide returns, after MaxFlow, the set of nodes reachable from s in
// the residual graph: the S side of a minimum s-t cut.
func (g *Graph) MinCutSide(s int) []bool {
	side := make([]bool, g.n)
	side[s] = true
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.head[u] {
			v := g.to[id]
			if !side[v] && g.residual(id) > eps {
				side[v] = true
				queue = append(queue, v)
			}
		}
	}
	return side
}

// BoundedEdge is a directed edge with a flow lower and upper bound.
// Upper may be math.Inf(1) for edges that must never be cut.
type BoundedEdge struct {
	From, To     int
	Lower, Upper float64
}

// CutResult describes a minimum s-t cut of a network with lower bounds.
type CutResult struct {
	// SSide[v] reports whether node v is on the source side of the cut.
	SSide []bool

	// Value is the cut capacity Σ_{S→T} upper − Σ_{T→S} lower. Infinite
	// when every cut crosses an uncuttable edge.
	Value float64

	// Flow holds the feasible maximum flow per input edge.
	Flow []float64
}

// MinCutWithBounds computes a minimum s-t cut of a DAG whose edges carry
// flow lower bounds, following paper Algorithm 3: a super source/sink
// construction reduces the problem to two plain max-flow runs, after which
// the residual reachability from s yields the cut. The Max-Flow Min-Cut
// theorem holds with non-zero lower bounds (Ford & Fulkerson, ch. 1 §9).
// It uses the paper's Edmonds-Karp solver.
func MinCutWithBounds(n int, edges []BoundedEdge, s, t int) (*CutResult, error) {
	return MinCutWithBoundsUsing(EdmondsKarp, n, edges, s, t)
}

// MinCutWithBoundsUsing is MinCutWithBounds with an explicit max-flow
// solver.
func MinCutWithBoundsUsing(solver Solver, n int, edges []BoundedEdge, s, t int) (*CutResult, error) {
	if s == t {
		return nil, fmt.Errorf("maxflow: source equals sink (%d)", s)
	}
	// Effectively-infinite capacity: beyond the sum of all finite
	// capacities, so it is never part of a finite cut. Computed per call
	// to preserve float64 precision.
	var sumFinite float64
	for _, e := range edges {
		if e.Lower < -eps {
			return nil, fmt.Errorf("maxflow: negative lower bound on %d->%d", e.From, e.To)
		}
		if !math.IsInf(e.Upper, 1) {
			if e.Upper < e.Lower-eps {
				return nil, fmt.Errorf("maxflow: upper %v < lower %v on %d->%d", e.Upper, e.Lower, e.From, e.To)
			}
			sumFinite += e.Upper
		}
		sumFinite += e.Lower
	}
	big := 2*sumFinite + 1e6

	upper := func(e BoundedEdge) float64 {
		if math.IsInf(e.Upper, 1) {
			return big
		}
		return e.Upper
	}

	// Step 1: G' with super source/sink. Nodes: 0..n-1, s'=n, t'=n+1.
	sp, tp := n, n+1
	gp := New(n + 2)
	ids := make([]int, len(edges))
	inLower := make([]float64, n)
	outLower := make([]float64, n)
	for i, e := range edges {
		ids[i] = gp.AddEdge(e.From, e.To, upper(e)-e.Lower)
		inLower[e.To] += e.Lower
		outLower[e.From] += e.Lower
	}
	var demand float64
	for v := 0; v < n; v++ {
		if inLower[v] > 0 {
			gp.AddEdge(sp, v, inLower[v])
			demand += inLower[v]
		}
		if outLower[v] > 0 {
			gp.AddEdge(v, tp, outLower[v])
		}
	}
	tsID := gp.AddEdge(t, s, big)

	// Step 2: saturate the super edges; otherwise no feasible flow.
	got := gp.maxFlow(solver, sp, tp)
	if got < demand-1e-6*(1+demand) {
		return nil, fmt.Errorf("%w: satisfied %v of %v", ErrInfeasible, got, demand)
	}

	// Steps 3-4: recover f on G, then continue augmenting s→t on the
	// residual. Rather than rebuilding, reuse gp: neutralize the super
	// edges and the t→s back edge, then run max flow from s to t. The
	// flows already on real edges stay; residual capacities of real
	// edges are already u−l−f' forward and f' backward, and the backward
	// residual correctly allows reducing flow down to the lower bound.
	gp.cap[tsID] = gp.flow[tsID] // freeze circulation edge
	// Freeze every super edge (both s' and t' incident) at its saturated
	// flow so no augmenting path can route through them.
	for _, id := range gp.head[sp] {
		e := id &^ 1
		gp.cap[e] = gp.flow[e]
	}
	for _, id := range gp.head[tp] {
		e := id &^ 1
		gp.cap[e] = gp.flow[e]
	}
	gp.maxFlow(solver, s, t)

	side := gp.MinCutSide(s)
	res := &CutResult{SSide: side[:n], Flow: make([]float64, len(edges))}
	for i := range edges {
		res.Flow[i] = gp.flow[ids[i]] + edges[i].Lower
	}
	// Cut value from the definition, detecting "infinite" cuts.
	var val float64
	infinite := false
	for _, e := range edges {
		switch {
		case res.SSide[e.From] && !sideAt(res.SSide, e.To):
			if math.IsInf(e.Upper, 1) {
				infinite = true
			}
			val += upper(e)
		case !res.SSide[e.From] && sideAt(res.SSide, e.To):
			val -= e.Lower
		}
	}
	if infinite || val >= big/2 {
		res.Value = math.Inf(1)
	} else {
		res.Value = val
	}
	return res, nil
}

func sideAt(side []bool, v int) bool { return side[v] }
