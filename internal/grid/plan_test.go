package grid

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"perseus/internal/frontier"
)

// convexTable hand-builds a lookup table whose energy curve is
// E(t) = a + b/t on a unit grid from tmin to tstar units — the same
// convex family internal/fleet verifies its allocator on. Per-interval
// plan cost is the perspective function of E, so convex E makes the
// planner's per-interval marginal sequence non-decreasing.
func convexTable(unit float64, tminU, tstarU int64, a, b float64) *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: unit, TminUnits: tminU, TStarUnits: tstarU}
	for u := tminU; u <= tstarU; u++ {
		t := float64(u) * unit
		lt.Points = append(lt.Points, frontier.TablePoint{TimeUnits: u, Energy: a + b/t})
	}
	return lt
}

// bruteForce enumerates every per-interval choice — idle or one allowed
// frontier point, full-interval occupancy — and returns the minimum
// objective cost covering the target, or ok=false when none does.
// bruteForceContinuous extends it with time-sharing.
func bruteForce(lt *frontier.LookupTable, sig *Signal, opts Options) (best float64, ok bool) {
	scale := opts.PowerScale
	if scale <= 0 {
		scale = 1
	}
	obj := opts.Objective
	if obj == "" {
		obj = ObjectiveCarbon
	}
	d := opts.DeadlineS
	if d <= 0 {
		d = sig.Horizon()
	}
	win := sig.Truncate(d)
	best = math.Inf(1)
	n := len(lt.Points)
	var walk func(k int, cover, cost float64)
	walk = func(k int, cover, cost float64) {
		if k == len(win.Intervals) {
			if cover >= opts.Target-1e-9 && cost < best {
				best, ok = cost, true
			}
			return
		}
		iv := win.Intervals[k]
		d := iv.Duration()
		lo := 0
		if iv.CapW > 0 {
			lo = lt.FirstUnderPower(iv.CapW / scale)
		}
		if !opts.NoIdle || lo < 0 {
			walk(k+1, cover, cost) // idle
		}
		if lo >= 0 {
			for p := lo; p < n; p++ {
				walk(k+1, cover+d/lt.PointTime(p),
					cost+PerJoule(obj, iv)*scale*lt.AvgPower(p)*d)
			}
		}
	}
	walk(0, 0, 0)
	return best, ok
}

// bruteForceContinuous enumerates the continuous (time-sharing)
// optimum exactly: every combination of whole per-interval choices,
// plus — for each interval and each adjacent state pair along its
// marginal chain (idle → minimum-energy point → … → fastest allowed) —
// the unique fraction that completes the target exactly while the
// other intervals hold whole choices. For separable convex allocation
// the optimum has at most one time-shared interval between adjacent
// states, so this enumeration contains it.
func bruteForceContinuous(lt *frontier.LookupTable, sig *Signal, opts Options) (best float64, ok bool) {
	scale := opts.PowerScale
	if scale <= 0 {
		scale = 1
	}
	obj := opts.Objective
	if obj == "" {
		obj = ObjectiveCarbon
	}
	d := opts.DeadlineS
	if d <= 0 {
		d = sig.Horizon()
	}
	win := sig.Truncate(d)
	best, ok = bruteForce(lt, sig, opts)
	n := len(lt.Points)
	K := len(win.Intervals)

	// states per interval: -1 (idle) then n-1 down to lo.
	lo := make([]int, K)
	for k, iv := range win.Intervals {
		lo[k] = 0
		if iv.CapW > 0 {
			lo[k] = lt.FirstUnderPower(iv.CapW / scale)
		}
	}
	wc := func(k, p int) (w, c float64) { // whole-interval occupancy of point p
		if p < 0 {
			return 0, 0
		}
		dur := win.Intervals[k].Duration()
		return dur / lt.PointTime(p), PerJoule(obj, win.Intervals[k]) * scale * lt.AvgPower(p) * dur
	}
	// For each fractional (interval fk, from, to): enumerate the other
	// intervals' whole choices and solve the fraction.
	for fk := 0; fk < K; fk++ {
		if lo[fk] < 0 {
			continue
		}
		var pairs [][2]int
		pairs = append(pairs, [2]int{-1, n - 1})
		for p := n - 1; p > lo[fk]; p-- {
			pairs = append(pairs, [2]int{p, p - 1})
		}
		for _, pr := range pairs {
			wFrom, cFrom := wc(fk, pr[0])
			wTo, cTo := wc(fk, pr[1])
			var walk func(k int, cover, cost float64)
			walk = func(k int, cover, cost float64) {
				if k == fk {
					walk(k+1, cover, cost)
					return
				}
				if k >= K {
					// Solve f so cover + (1-f)·wFrom + f·wTo == target.
					need := opts.Target - cover
					if wTo == wFrom {
						return
					}
					f := (need - wFrom) / (wTo - wFrom)
					if f < -1e-12 || f > 1+1e-12 {
						return
					}
					total := cost + (1-f)*cFrom + f*cTo
					if total < best {
						best, ok = total, true
					}
					return
				}
				iv := win.Intervals[k]
				if !opts.NoIdle || lo[k] < 0 {
					walk(k+1, cover, cost)
				}
				if lo[k] >= 0 {
					dur := iv.Duration()
					for p := lo[k]; p < n; p++ {
						walk(k+1, cover+dur/lt.PointTime(p),
							cost+PerJoule(obj, iv)*scale*lt.AvgPower(p)*dur)
					}
				}
			}
			walk(0, 0, 0)
		}
	}
	return best, ok
}

// randomInstance builds a small random signal and convex table.
func randomInstance(rng *rand.Rand, withCaps bool) (*frontier.LookupTable, *Signal) {
	tmin := int64(40 + rng.Intn(60))
	lt := convexTable(0.01, tmin, tmin+int64(3+rng.Intn(3)),
		1000+4000*rng.Float64(), 50+400*rng.Float64())
	nIv := 3 + rng.Intn(2)
	sig := &Signal{}
	for k := 0; k < nIv; k++ {
		iv := Interval{
			StartS:         float64(k) * 600,
			EndS:           float64(k+1) * 600,
			CarbonGPerKWh:  100 + 500*rng.Float64(),
			PriceUSDPerKWh: 0.03 + 0.2*rng.Float64(),
		}
		if withCaps && rng.Intn(3) == 0 {
			// A cap somewhere between the T* and Tmin power draws, or
			// occasionally below everything (forced idle).
			span := lt.AvgPower(0) - lt.AvgPower(len(lt.Points)-1)
			iv.CapW = lt.AvgPower(len(lt.Points)-1) + span*(rng.Float64()*1.4-0.3)
			if iv.CapW < 0 {
				iv.CapW = lt.AvgPower(len(lt.Points)-1) * 0.5
			}
		}
		sig.Intervals = append(sig.Intervals, iv)
	}
	return lt, sig
}

// TestPlannerMatchesBruteForce is the acceptance-criteria check: on
// small randomized instances the discrete greedy descent matches
// brute-force enumeration over per-interval frontier points exactly at
// every coverage breakpoint of its own descent (every exactly
// attainable target), and for arbitrary deadline-feasible targets it is
// never better than the optimum and worse by less than one step's cost.
func TestPlannerMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		lt, sig := randomInstance(rng, seed%3 == 0)
		for _, obj := range []Objective{ObjectiveCarbon, ObjectiveCost, ObjectiveEnergy} {
			base := Options{Objective: obj, PowerScale: float64(1 + rng.Intn(2))}

			// Breakpoint targets: probe the instance's max coverage,
			// then run the full descent to collect every step.
			probe := base
			probe.Target = 1e15
			pre, err := solve(lt, sig, probe)
			if err != nil {
				t.Fatal(err)
			}
			full := base
			full.Target = pre.maxCover
			sol, err := solve(lt, sig, full)
			if err != nil {
				t.Fatal(err)
			}
			// The attainable coverage breakpoints are the prefix sums of
			// the steps in slope order.
			var breaks []float64
			cover := 0.0
			type sw struct{ slope, dw float64 }
			var sws []sw
			for _, st := range sol.stacks {
				for _, s := range st {
					sws = append(sws, sw{s.dc / s.dw, s.dw})
				}
			}
			for i := range sws {
				for j := i + 1; j < len(sws); j++ {
					if sws[j].slope < sws[i].slope {
						sws[i], sws[j] = sws[j], sws[i]
					}
				}
			}
			for _, s := range sws {
				cover += s.dw
				breaks = append(breaks, cover)
			}
			if len(breaks) == 0 {
				t.Fatalf("seed %d: degenerate instance, no steps", seed)
			}

			for _, target := range breaks {
				o := base
				o.Target = target
				got, err := solve(lt, sig, o)
				if err != nil {
					t.Fatal(err)
				}
				want, feasible := bruteForce(lt, sig, o)
				if !feasible || !got.feasible {
					t.Fatalf("seed %d %s target %.4f: unexpectedly infeasible", seed, obj, target)
				}
				if math.Abs(got.cost-want) > 1e-9*(1+want) {
					t.Fatalf("seed %d %s breakpoint target %.4f: greedy cost %.9f != brute force %.9f",
						seed, obj, target, got.cost, want)
				}
			}

			// Arbitrary targets between 0 and max coverage.
			for i := 0; i < 12; i++ {
				o := base
				o.Target = sol.maxCover * (0.05 + 0.93*rng.Float64())
				got, err := solve(lt, sig, o)
				if err != nil {
					t.Fatal(err)
				}
				want, feasible := bruteForce(lt, sig, o)
				if got.feasible != feasible {
					t.Fatalf("seed %d %s target %.4f: feasible=%v, brute force %v",
						seed, obj, o.Target, got.feasible, feasible)
				}
				if !feasible {
					continue
				}
				if got.coverage < o.Target-1e-9 {
					t.Fatalf("seed %d %s: coverage %.6f under target %.6f", seed, obj, got.coverage, o.Target)
				}
				if got.cost > want+1e-9*(1+want) {
					t.Fatalf("seed %d %s target %.4f: greedy %.9f above whole-point brute force %.9f",
						seed, obj, o.Target, got.cost, want)
				}
				// Exactness: the solver matches the continuous optimum
				// (whole-point enumeration extended with every single
				// time-shared interval).
				contWant, contOK := bruteForceContinuous(lt, sig, o)
				if !contOK {
					t.Fatalf("seed %d %s target %.4f: continuous brute force infeasible", seed, obj, o.Target)
				}
				if math.Abs(got.cost-contWant) > 1e-9*(1+contWant) {
					t.Fatalf("seed %d %s target %.4f: greedy %.9f != continuous optimum %.9f",
						seed, obj, o.Target, got.cost, contWant)
				}

				// The public plan completes the target exactly at the
				// solver's cost.
				plan, err := Optimize(lt, sig, o)
				if err != nil {
					t.Fatal(err)
				}
				if !plan.Feasible {
					t.Fatalf("seed %d: plan infeasible where solver feasible", seed)
				}
				if math.Abs(plan.Iterations-o.Target) > 1e-6*(1+o.Target) {
					t.Fatalf("seed %d %s: plan completes %.9f iterations, want exactly %.9f",
						seed, obj, plan.Iterations, o.Target)
				}
				cost := planCost(plan)
				if cost > got.cost+1e-9*(1+got.cost) {
					t.Fatalf("seed %d %s: plan cost %.9f above solver cost %.9f",
						seed, obj, cost, got.cost)
				}
			}
		}
	}
}

// planCost reads the plan total matching its objective.
func planCost(p *Plan) float64 {
	switch p.Objective {
	case ObjectiveCost:
		return p.CostUSD
	case ObjectiveEnergy:
		return p.EnergyJ
	default:
		return p.CarbonG
	}
}

// TestBundledTraceBeatsBaselines is the acceptance-criteria demo check:
// on the bundled 24 h trace, with deadline slack, the grid-aware plan's
// total carbon is strictly below both the always-T_min and the static
// min-energy baselines at equal iterations completed.
func TestBundledTraceBeatsBaselines(t *testing.T) {
	lt := convexTable(0.01, 80, 110, 3000, 120)
	sig := Diurnal24h()
	// Target: the static min-energy baseline needs ~60% of the day, so
	// there is real slack to shift into the solar valley.
	target := math.Floor(0.6 * 86400 / lt.TStar())
	opts := Options{Target: target, Objective: ObjectiveCarbon}

	plan, err := Optimize(lt, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	alwaysFast, err := Fixed(lt, 0, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	minEnergy, err := Fixed(lt, len(lt.Points)-1, sig, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Plan{plan, alwaysFast, minEnergy} {
		if !p.Feasible {
			t.Fatalf("plan unexpectedly infeasible: %+v", p)
		}
		if math.Abs(p.Iterations-target) > 1e-6*target {
			t.Fatalf("unequal iterations: got %.3f, want %.3f", p.Iterations, target)
		}
	}
	if !(plan.CarbonG < alwaysFast.CarbonG) {
		t.Fatalf("grid-aware carbon %.1f g not strictly below always-Tmin %.1f g",
			plan.CarbonG, alwaysFast.CarbonG)
	}
	if !(plan.CarbonG < minEnergy.CarbonG) {
		t.Fatalf("grid-aware carbon %.1f g not strictly below static min-energy %.1f g",
			plan.CarbonG, minEnergy.CarbonG)
	}
	if plan.FinishS > plan.DeadlineS+1e-9 {
		t.Fatalf("plan finishes at %v, after the deadline %v", plan.FinishS, plan.DeadlineS)
	}
	// The shift is temporal: the plan must idle somewhere dirty and run
	// during the midday valley.
	valley := plan.Intervals[13] // 13:00, carbon minimum neighborhood
	if valley.Iterations == 0 {
		t.Fatal("plan does not run during the solar valley")
	}
	peak := plan.Intervals[20] // 20:00, evening ramp peak
	if peak.EnergyJ >= valley.EnergyJ {
		t.Fatalf("plan spends as much energy at the evening peak (%v J) as in the valley (%v J)",
			peak.EnergyJ, valley.EnergyJ)
	}
}

// TestPlanCapsAndNoIdle exercises the remaining planner behaviors:
// interval caps bound the chosen points' power, idle-only intervals,
// NoIdle overshoot, infeasible targets, and cost-objective planning.
func TestPlanCapsAndNoIdle(t *testing.T) {
	lt := convexTable(0.01, 80, 100, 3000, 120)
	minP, maxP := lt.AvgPower(len(lt.Points)-1), lt.AvgPower(0)
	sig := &Signal{Intervals: []Interval{
		{StartS: 0, EndS: 600, CarbonGPerKWh: 400, PriceUSDPerKWh: 0.1, CapW: (minP + maxP) / 2},
		{StartS: 600, EndS: 1200, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.2},
		{StartS: 1200, EndS: 1800, CarbonGPerKWh: 300, PriceUSDPerKWh: 0.02, CapW: minP * 0.5},
	}}

	// A target just under max coverage forces fast points where allowed.
	maxCover := 600/lt.PointTime(lt.FirstUnderPower((minP+maxP)/2)) + 600/lt.Tmin()
	plan, err := Optimize(lt, sig, Options{Target: maxCover * 0.98})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("near-max target should be feasible")
	}
	for _, ip := range plan.Intervals {
		cap := sig.Intervals[ip.Index].CapW
		for _, sl := range ip.Slices {
			if cap > 0 && lt.AvgPower(sl.Point) > cap+1e-9 {
				t.Fatalf("interval %d runs point %d above its cap %v W", ip.Index, sl.Point, cap)
			}
		}
	}
	// The third interval's cap excludes every point: forced idle.
	if last := plan.Intervals[2]; len(last.Slices) != 0 || last.Iterations != 0 {
		t.Fatalf("cap-excluded interval should idle, got %+v", last)
	}

	// Infeasible: target above max coverage returns best effort.
	plan, err = Optimize(lt, sig, Options{Target: maxCover * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatal("target above max coverage cannot be feasible")
	}
	if math.Abs(plan.Iterations-maxCover) > 1e-6*maxCover {
		t.Fatalf("best effort covers %.4f, want max %.4f", plan.Iterations, maxCover)
	}
	if plan.FinishS != -1 {
		t.Fatalf("infeasible plan finish %v, want -1", plan.FinishS)
	}
	// Infeasible plans must survive JSON encoding (the server returns
	// them over HTTP).
	if _, err := json.Marshal(plan); err != nil {
		t.Fatalf("infeasible plan does not marshal: %v", err)
	}

	// NoIdle: every cap-allowing interval runs, and the plan may
	// overshoot a tiny target.
	plan, err = Optimize(lt, sig, Options{Target: 1, NoIdle: true})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Iterations <= 1 {
		t.Fatalf("NoIdle with slack should overshoot, got %.3f iterations", plan.Iterations)
	}
	for _, ip := range plan.Intervals[:2] {
		if len(ip.Slices) == 0 || ip.IdleS > 1e-9 {
			t.Fatalf("NoIdle interval %d idles: %+v", ip.Index, ip)
		}
	}

	// Cost objective prefers the cheap third interval... which is
	// capped out; between the first two it prefers the cheaper first.
	costPlan, err := Optimize(lt, sig, Options{Target: 5, Objective: ObjectiveCost})
	if err != nil {
		t.Fatal(err)
	}
	if costPlan.Intervals[1].EnergyJ > 0 && costPlan.Intervals[0].EnergyJ == 0 {
		t.Fatal("cost objective ran the expensive interval before the cheap one")
	}

	// Deadline shorter than the horizon truncates the window.
	short, err := Optimize(lt, sig, Options{Target: 5, DeadlineS: 700})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(short.Intervals); n != 2 || short.Intervals[1].EndS != 700 {
		t.Fatalf("deadline truncation: %d intervals, last ends %v", n, short.Intervals[n-1].EndS)
	}

	// Error paths.
	if _, err := Optimize(lt, sig, Options{Target: -1}); err == nil {
		t.Fatal("negative target should error")
	}
	if _, err := Optimize(lt, sig, Options{Target: 1, DeadlineS: 1e9}); err == nil {
		t.Fatal("deadline beyond horizon should error")
	}
	if _, err := Optimize(lt, sig, Options{Target: 1, DeadlineS: -5}); err == nil {
		t.Fatal("negative deadline should error")
	}
	if _, err := Optimize(lt, sig, Options{Target: 1, DeadlineS: math.NaN()}); err == nil {
		t.Fatal("NaN deadline should error")
	}
	if _, err := Fixed(lt, 0, sig, Options{Target: 1, DeadlineS: 1e9}); err == nil {
		t.Fatal("Fixed with deadline beyond horizon should error")
	}
	if _, err := Optimize(lt, sig, Options{Target: 1, Objective: "vibes"}); err == nil {
		t.Fatal("unknown objective should error")
	}
	if _, err := Optimize(nil, sig, Options{Target: 1}); err == nil {
		t.Fatal("nil table should error")
	}
	if _, err := Optimize(lt, nil, Options{Target: 1}); err == nil {
		t.Fatal("nil signal should error")
	}
	if _, err := Fixed(lt, 99, sig, Options{Target: 1}); err == nil {
		t.Fatal("out-of-range baseline point should error")
	}
}

// TestFixedBaseline pins the always-fast baseline's accounting.
func TestFixedBaseline(t *testing.T) {
	lt := convexTable(0.01, 100, 110, 3000, 120) // Tmin = 1 s
	sig := &Signal{Intervals: []Interval{
		{StartS: 0, EndS: 100, CarbonGPerKWh: 360},
		{StartS: 100, EndS: 200, CarbonGPerKWh: 720},
	}}
	plan, err := Fixed(lt, 0, sig, Options{Target: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.FinishS != 150 {
		t.Fatalf("feasible %v finish %v, want true and 150", plan.Feasible, plan.FinishS)
	}
	if math.Abs(plan.Iterations-150) > 1e-9 {
		t.Fatalf("iterations %v, want 150", plan.Iterations)
	}
	p := lt.AvgPower(0)
	wantCarbon := 100*p/JoulesPerKWh*360 + 50*p/JoulesPerKWh*720
	if math.Abs(plan.CarbonG-wantCarbon) > 1e-9*wantCarbon {
		t.Fatalf("carbon %v, want %v", plan.CarbonG, wantCarbon)
	}
	// A deadline too tight for the point marks the baseline infeasible.
	tight, err := Fixed(lt, len(lt.Points)-1, sig, Options{Target: 150, DeadlineS: 120})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Feasible {
		t.Fatal("slow baseline cannot meet the tight deadline")
	}
	if tight.FinishS != -1 {
		t.Fatalf("infeasible baseline finish %v, want -1 (same contract as Optimize)", tight.FinishS)
	}
	// Its accounting covers only what fits before the deadline.
	if tight.Iterations >= 150 {
		t.Fatalf("infeasible baseline claims %v iterations, target 150 cannot fit", tight.Iterations)
	}
}
