// Pipeline schedules: Perseus optimizes any schedule expressible as a
// computation DAG (paper §4.4) — 1F1B, GPipe, interleaved 1F1B, and
// early-recomputation 1F1B — without modification. This example compares
// their frontiers on the same model.
package main

import (
	"fmt"
	"log"

	"perseus"
)

func main() {
	fmt.Println("schedule                 Tmin(s)  T*(s)   intrinsic savings  slowdown")
	for _, schedule := range []string{"1f1b", "gpipe", "interleaved-1f1b", "early-recompute-1f1b"} {
		chunks := 1
		if schedule == "interleaved-1f1b" {
			chunks = 2 // two model chunks per stage: eight virtual stages
		}
		sys, err := perseus.Characterize(perseus.Workload{
			Model:          "bert-1.3b",
			GPU:            "A40",
			Stages:         4,
			MicrobatchSize: 8,
			Microbatches:   16,
			Schedule:       schedule,
			Chunks:         chunks,
			TargetSteps:    500,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Simulate(sys.PlanFor(0), nil)
		if err != nil {
			log.Fatal(err)
		}
		saving, slowdown := sys.Savings(res)
		fmt.Printf("%-24s %-8.3f %-7.3f %-18s %.2f%%\n",
			schedule, sys.Tmin(), sys.TStar(),
			fmt.Sprintf("%.1f%%", 100*saving), 100*slowdown)
	}
	fmt.Println("\nany stage imbalance gives every schedule intrinsic bloat (paper §4.4)")
}
