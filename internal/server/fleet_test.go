package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"perseus/internal/gpu"
)

// registerCharacterized registers and characterizes a job, returning
// its id.
func registerCharacterized(t *testing.T, srv *Server, req JobRequest, mbSize int) string {
	t.Helper()
	id, err := srv.Register(req)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.ByName(req.GPU)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UploadProfile(id, buildUpload(t, g, req.Stages, mbSize)); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitCharacterized(id); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestFleetCapConstrainsSchedules(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := []string{
		registerCharacterized(t, srv, JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3}, 4),
		registerCharacterized(t, srv, JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 3, GPU: "A100-PCIe", Unit: 5e-3, DataParallel: 2}, 4),
	}

	// Uncapped: every job deploys its Tmin schedule and the status
	// reports zero loss.
	var st FleetStatusResponse
	get(t, ts.URL+"/fleet/status", &st)
	if st.CapW != 0 || !st.Feasible || st.Loss != 0 {
		t.Fatalf("uncapped status %+v", st)
	}
	if len(st.Jobs) != 2 || !st.Jobs[0].Ready || !st.Jobs[1].Ready {
		t.Fatalf("status jobs %+v", st.Jobs)
	}
	uncapped := st.PowerW
	before, err := srv.Schedule(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if before.Time > before.Tmin+1e-9 {
		t.Fatalf("uncapped deployed time %v above Tmin %v", before.Time, before.Tmin)
	}

	// A cap at 92% forces at least one job off Tmin, and its deployed
	// schedule honors the allocated floor.
	resp := postJSON(t, ts.URL+"/fleet/cap", FleetCapRequest{CapW: 0.92 * uncapped})
	var capped FleetStatusResponse
	decode(t, resp, &capped)
	if !capped.Feasible || capped.PowerW > 0.92*uncapped+1e-9 {
		t.Fatalf("capped status %+v", capped)
	}
	if capped.Loss <= 0 {
		t.Fatal("a 92% cap should cost some throughput")
	}
	slowed := false
	for i, id := range ids {
		sr, err := srv.Schedule(id)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Time < capped.Jobs[i].Time-1e-9 {
			t.Fatalf("job %s deploys %v, faster than its allocation %v", id, sr.Time, capped.Jobs[i].Time)
		}
		if sr.Time > sr.Tmin+1e-9 {
			slowed = true
		}
		var ja JobAllocationResponse
		get(t, ts.URL+"/jobs/"+id+"/allocation", &ja)
		if !ja.Ready || ja.Time != capped.Jobs[i].Time {
			t.Fatalf("allocation endpoint %+v != status %+v", ja, capped.Jobs[i])
		}
	}
	if !slowed {
		t.Fatal("cap constrained no schedule")
	}

	// A straggler on job 0 raises its free floor; the freed power must
	// not increase fleet loss.
	if err := srv.SetStraggler(ids[0], StragglerNotice{ID: "x", Degree: 1.2}); err != nil {
		t.Fatal(err)
	}
	get(t, ts.URL+"/fleet/status", &st)
	if st.Loss > capped.Loss+1e-9 {
		t.Fatalf("straggler raised fleet loss: %v -> %v", capped.Loss, st.Loss)
	}
	if st.Jobs[0].FloorTime <= capped.Jobs[0].FloorTime {
		t.Fatalf("straggler floor %v not above %v", st.Jobs[0].FloorTime, capped.Jobs[0].FloorTime)
	}

	// Uncapping restores Tmin deployment.
	resp = postJSON(t, ts.URL+"/fleet/cap", FleetCapRequest{CapW: 0})
	decode(t, resp, &st)
	if err := srv.SetStraggler(ids[0], StragglerNotice{ID: "x", Degree: 1}); err != nil {
		t.Fatal(err)
	}
	after, err := srv.Schedule(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Time != before.Time {
		t.Fatalf("after uncap, time %v != original %v", after.Time, before.Time)
	}
}

func TestFleetEndpointErrors(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Wrong methods.
	resp, err := http.Get(ts.URL + "/fleet/cap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /fleet/cap status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/fleet/status", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /fleet/status status %d", resp.StatusCode)
	}
	// Negative cap.
	resp = postJSON(t, ts.URL+"/fleet/cap", FleetCapRequest{CapW: -10})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative cap status %d", resp.StatusCode)
	}
	// Status with no jobs is an empty, feasible fleet.
	var st FleetStatusResponse
	get(t, ts.URL+"/fleet/status", &st)
	if !st.Feasible || st.PowerW != 0 || len(st.Jobs) != 0 {
		t.Errorf("empty fleet status %+v", st)
	}
	// Allocation of an unknown job.
	resp, err = http.Get(ts.URL + "/jobs/job-9/allocation")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("allocation of unknown job should not be 200")
	}
}

// TestUncharacterizedJobInFleet checks a registered-but-unprofiled job
// shows up in the fleet status as not ready and draws no planned power.
func TestUncharacterizedJobInFleet(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 2, GPU: "A40"})
	if err != nil {
		t.Fatal(err)
	}
	st := srv.FleetStatus()
	if len(st.Jobs) != 1 || st.Jobs[0].Ready || st.Jobs[0].JobID != id {
		t.Fatalf("status %+v", st)
	}
	if st.PowerW != 0 {
		t.Fatalf("unready job draws planned power %v", st.PowerW)
	}
	ja, err := srv.AllocationOf(id)
	if err != nil {
		t.Fatal(err)
	}
	if ja.Ready {
		t.Fatal("uncharacterized job has an allocation")
	}
}

// TestConcurrentJobAndFleetAccess hammers one server from many
// goroutines — profile uploads, schedule lookups, straggler flips, cap
// changes, fleet status — to be run under -race: characterization is
// asynchronous and the fleet recompute walks every job.
func TestConcurrentJobAndFleetAccess(t *testing.T) {
	srv := New()
	const jobs = 3
	ids := make([]string, jobs)
	for i := range ids {
		id, err := srv.Register(JobRequest{
			Schedule: "1f1b", Stages: 2, Microbatches: 2 + i, GPU: "A100-PCIe", Unit: 5e-3,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	up := buildUpload(t, gpu.A100PCIe, 2, 4)

	var wg sync.WaitGroup
	for _, id := range ids {
		// Concurrent uploads: exactly one per job wins, the others are
		// rejected, never racing characterization.
		for k := 0; k < 3; k++ {
			wg.Add(1)
			go func(id string) {
				defer wg.Done()
				_ = srv.UploadProfile(id, up)
			}(id)
		}
		// Concurrent schedule polls while characterization runs.
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if _, err := srv.Schedule(id); err != nil {
					t.Errorf("schedule %s: %v", id, err)
					return
				}
			}
		}(id)
		// Concurrent straggler flips (legitimately fail until
		// characterized).
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				_ = srv.SetStraggler(id, StragglerNotice{ID: "x", Degree: 1.1 + float64(k%3)/10})
			}
		}(id)
	}
	// Concurrent cap changes and status reads over the whole fleet.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < 20; k++ {
			if _, err := srv.SetFleetCap(float64(1000 + 100*k)); err != nil {
				t.Errorf("set cap: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 20; k++ {
			srv.FleetStatus()
		}
	}()
	wg.Wait()

	for _, id := range ids {
		if err := srv.WaitCharacterized(id); err != nil {
			t.Fatal(err)
		}
		sr, err := srv.Schedule(id)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Ready {
			t.Fatalf("job %s not ready after the storm", id)
		}
	}
	if _, err := srv.SetFleetCap(0); err != nil {
		t.Fatal(err)
	}
	st := srv.FleetStatus()
	if len(st.Jobs) != jobs || !st.Feasible {
		t.Fatalf("final status %+v", st)
	}
}

func decode(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
