// Package server implements the Perseus server (paper §3.2, Figure 4): a
// framework- and accelerator-agnostic, cluster-wide singleton that
// receives each job's computation DAG and online profiling results,
// asynchronously characterizes the time-energy frontier, caches energy
// schedules in a lookup table, and serves the schedule for
// T_opt = min(T*, T') — updating it when the training infrastructure
// reports a straggler via set_straggler (Table 2).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"perseus/internal/dag"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// JobRequest registers a training job: its pipeline schedule (from which
// the server reconstructs the computation DAG) and accelerator type.
type JobRequest struct {
	Schedule     string  `json:"schedule"` // "1f1b", "gpipe", ...
	Stages       int     `json:"stages"`
	Microbatches int     `json:"microbatches"`
	Chunks       int     `json:"chunks,omitempty"`
	GPU          string  `json:"gpu"`            // gpu preset name
	Unit         float64 `json:"unit,omitempty"` // optimizer τ seconds
}

// JobResponse returns the job handle.
type JobResponse struct {
	JobID string `json:"job_id"`
}

// MeasurementJSON is one profiler observation (client → server).
type MeasurementJSON struct {
	Virtual int     `json:"virtual"`
	Kind    string  `json:"kind"` // "forward" | "backward"
	Freq    int     `json:"freq_mhz"`
	Time    float64 `json:"time_s"`
	Energy  float64 `json:"energy_j"`
}

// ProfileUpload carries a job's complete online profile.
type ProfileUpload struct {
	PBlocking    float64           `json:"p_blocking_w"`
	Measurements []MeasurementJSON `json:"measurements"`
}

// StragglerNotice is the set_straggler payload (paper Table 2): the
// infrastructure anticipates accelerator id becoming Degree times slower
// after Delay seconds. Degree 1 communicates a recovery.
type StragglerNotice struct {
	ID     string  `json:"id"`
	Delay  float64 `json:"delay_s"`
	Degree float64 `json:"degree"`
}

// ScheduleResponse is the energy schedule for the current T_opt.
type ScheduleResponse struct {
	Ready bool `json:"ready"`
	// Time is the planned iteration time of the deployed schedule.
	Time float64 `json:"time_s"`
	// Tmin and TStar bound the frontier.
	Tmin  float64 `json:"tmin_s"`
	TStar float64 `json:"tstar_s"`
	// Freqs is the per-op frequency plan, indexed by schedule op id.
	Freqs []int `json:"freqs_mhz"`
	// Version increments whenever the deployed schedule changes, so
	// clients can poll cheaply.
	Version int `json:"version"`
}

// FrontierResponse lists the characterized frontier.
type FrontierResponse struct {
	Ready  bool      `json:"ready"`
	Time   []float64 `json:"time_s"`
	Energy []float64 `json:"energy_j"`
}

type job struct {
	id    string
	req   JobRequest
	gpu   *gpu.Model
	sched *sched.Schedule

	mu             sync.Mutex
	characterizing bool
	charErr        error
	front          *frontier.Frontier
	tPrime         float64 // anticipated straggler iteration time; 0 = none
	version        int
	pending        *time.Timer   // armed delayed straggler switch, if any
	done           chan struct{} // closed when characterization finishes
}

// Server is the Perseus server. Create with New and expose via Handler.
type Server struct {
	mu   sync.Mutex
	jobs map[string]*job
	next int
}

// New returns an empty server.
func New() *Server {
	return &Server{jobs: map[string]*job{}}
}

// Handler returns the HTTP API:
//
//	POST /jobs                      register a job
//	POST /jobs/{id}/profile        upload profiling results
//	GET  /jobs/{id}/schedule       fetch the deployed energy schedule
//	POST /jobs/{id}/straggler      set_straggler notification
//	GET  /jobs/{id}/frontier       fetch the characterized frontier
//	GET  /jobs/{id}/table          fetch the full energy-schedule lookup table
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.Register(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, JobResponse{JobID: j})
}

// Register creates a job and returns its id (the non-HTTP entry point).
func (s *Server) Register(req JobRequest) (string, error) {
	g, err := gpu.ByName(req.GPU)
	if err != nil {
		return "", err
	}
	if req.Chunks == 0 {
		req.Chunks = 1
	}
	sc, err := sched.ByName(req.Schedule, req.Stages, req.Microbatches, req.Chunks)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("job-%d", s.next)
	s.jobs[id] = &job{id: id, req: req, gpu: g, sched: sc, done: make(chan struct{})}
	return id, nil
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 {
		http.NotFound(w, r)
		return
	}
	j, ok := s.job(parts[0])
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch parts[1] {
	case "profile":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var up ProfileUpload
		if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.UploadProfile(j.id, up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case "schedule":
		resp, err := s.Schedule(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "straggler":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var n StragglerNotice
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.SetStraggler(j.id, n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	case "frontier":
		writeJSON(w, s.FrontierOf(j.id))
	case "table":
		lt, err := s.Table(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, lt)
	default:
		http.NotFound(w, r)
	}
}

// UploadProfile stores a job's profiling results and kicks off
// asynchronous frontier characterization (paper §3.2 step 2): training
// continues while the server optimizes.
func (s *Server) UploadProfile(id string, up ProfileUpload) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	var ms []profile.Measurement
	for _, m := range up.Measurements {
		kind, err := parseKind(m.Kind)
		if err != nil {
			return err
		}
		ms = append(ms, profile.Measurement{
			Virtual: m.Virtual, Kind: kind,
			Freq: gpu.Frequency(m.Freq), Time: m.Time, Energy: m.Energy,
		})
	}
	prof, err := profile.Assemble(j.gpu, up.PBlocking, ms)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.characterizing || j.front != nil {
		j.mu.Unlock()
		return fmt.Errorf("server: job %s already profiled", id)
	}
	j.characterizing = true
	j.mu.Unlock()

	go func() {
		graph, err := dag.Build(j.sched, func(op sched.Op) int64 { return 1 })
		var front *frontier.Frontier
		if err == nil {
			front, err = frontier.Characterize(graph, prof, frontier.Options{Unit: j.req.Unit})
		}
		j.mu.Lock()
		j.front, j.charErr = front, err
		j.characterizing = false
		j.version++
		j.mu.Unlock()
		close(j.done)
	}()
	return nil
}

// WaitCharacterized blocks until the job's frontier is ready (test hook
// and CLI convenience).
func (s *Server) WaitCharacterized(id string) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.charErr
}

// SetStraggler records a straggler notification and moves the deployed
// schedule to T_opt = min(T*, T') (paper §3.2 steps 4-5). Degree <= 1
// clears the straggler. A positive Delay defers the switch: the
// infrastructure anticipates the straggler Delay seconds ahead (Table 2),
// so the server arms a timer and flips the deployed schedule when it
// fires.
func (s *Server) SetStraggler(id string, n StragglerNotice) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	if n.Degree <= 0 {
		return fmt.Errorf("server: straggler degree must be positive, got %v", n.Degree)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.front == nil {
		return fmt.Errorf("server: job %s not characterized yet", id)
	}
	apply := func() {
		if n.Degree <= 1 {
			j.tPrime = 0
		} else {
			j.tPrime = j.front.Tmin() * n.Degree
		}
		j.version++
	}
	if n.Delay <= 0 {
		apply()
		return nil
	}
	if j.pending != nil {
		j.pending.Stop()
	}
	j.pending = time.AfterFunc(time.Duration(n.Delay*float64(time.Second)), func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		apply()
	})
	return nil
}

// Schedule returns the currently deployed energy schedule: the Tmin
// schedule in normal operation, or the T_opt schedule under a straggler.
func (s *Server) Schedule(id string) (ScheduleResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return ScheduleResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.charErr != nil {
		return ScheduleResponse{}, j.charErr
	}
	if j.front == nil {
		return ScheduleResponse{Ready: false}, nil
	}
	t := j.tPrime
	if t <= 0 {
		t = j.front.Tmin()
	}
	pt := j.front.Lookup(t)
	plan := pt.Plan()
	freqs := make([]int, len(plan))
	for i, f := range plan {
		freqs[i] = int(f)
	}
	return ScheduleResponse{
		Ready:   true,
		Time:    pt.Time,
		Tmin:    j.front.Tmin(),
		TStar:   j.front.TStar(),
		Freqs:   freqs,
		Version: j.version,
	}, nil
}

// Table returns the job's serializable energy-schedule lookup table
// (paper §3.2), for persistence or external consumption.
func (s *Server) Table(id string) (*frontier.LookupTable, error) {
	j, ok := s.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.front == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	return j.front.Table(), nil
}

// FrontierOf returns the characterized frontier's (time, energy) points.
func (s *Server) FrontierOf(id string) FrontierResponse {
	j, ok := s.job(id)
	if !ok {
		return FrontierResponse{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.front == nil {
		return FrontierResponse{}
	}
	resp := FrontierResponse{Ready: true}
	for _, pt := range j.front.Points() {
		resp.Time = append(resp.Time, pt.Time)
		resp.Energy = append(resp.Energy, pt.Energy)
	}
	return resp
}

func parseKind(s string) (sched.Kind, error) {
	switch strings.ToLower(s) {
	case "forward", "f":
		return sched.Forward, nil
	case "backward", "b":
		return sched.Backward, nil
	}
	return 0, fmt.Errorf("server: unknown computation kind %q (want forward or backward)", s)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
