// Package plan defines the common contract every planning layer in the
// repository implements: the grid temporal planner, the multi-region
// spatio-temporal planner, the forecast-driven MPC controllers, and the
// fleet power-cap allocator all accept a plan.Request and produce a
// plan.Result through a plan.Planner. The package also owns the types
// those layers used to re-declare independently — the planning
// objective, the deadline-resolution rules, and the energy/carbon/cost
// accounting — so a server (or experiment harness) can treat any
// planning layer as a pluggable component and cache or compare results
// uniformly.
//
// plan is a leaf package: it imports nothing from the planning layers,
// and they all import it.
package plan

import (
	"fmt"
	"math"
)

// Objective selects what a plan minimizes. It was historically declared
// by the grid package; grid.Objective is now an alias of this type, so
// every layer shares one vocabulary.
type Objective string

const (
	// ObjectiveCarbon minimizes total gCO₂ emitted.
	ObjectiveCarbon Objective = "carbon"

	// ObjectiveCost minimizes total electricity cost in $.
	ObjectiveCost Objective = "cost"

	// ObjectiveEnergy minimizes total energy in joules, ignoring the
	// signal's rates (useful as a signal-blind control).
	ObjectiveEnergy Objective = "energy"
)

// ParseObjective maps a string to an Objective ("" means carbon).
func ParseObjective(s string) (Objective, error) {
	switch Objective(s) {
	case "":
		return ObjectiveCarbon, nil
	case ObjectiveCarbon, ObjectiveCost, ObjectiveEnergy:
		return Objective(s), nil
	}
	return "", fmt.Errorf("plan: unknown objective %q (want carbon, cost, or energy)", s)
}

// Request is a planner-agnostic planning request. Not every planner
// consumes every field — the fleet allocator ignores Target and
// DeadlineS, the grid planner ignores CapW and Quantile — but the
// validation and defaulting rules are shared, so the layers cannot
// drift apart on what "deadline 0" or "quantile 0" means.
type Request struct {
	// Target is the number of iterations to complete; must be positive
	// for planners that consume it.
	Target float64 `json:"target_iterations,omitempty"`

	// DeadlineS is the completion deadline in signal seconds; 0 means
	// the planning horizon (resolved by ResolveDeadline).
	DeadlineS float64 `json:"deadline_s,omitempty"`

	// Objective selects what to minimize; "" means carbon.
	Objective Objective `json:"objective,omitempty"`

	// PowerScale multiplies a job's per-point average power (e.g.
	// data-parallel pipeline replicas); <= 0 means 1.
	PowerScale float64 `json:"power_scale,omitempty"`

	// Quantile is the forecast quantile a forecast-driven planner sees:
	// 0 or 0.5 plans on the point forecast, higher values plan robustly
	// against the pessimistic band. Must be in [0, 1).
	Quantile float64 `json:"quantile,omitempty"`

	// CapW is the facility power cap in watts for capacity planners
	// (the fleet allocator); 0 means uncapped.
	CapW float64 `json:"cap_w,omitempty"`
}

// Validate checks the request invariants shared by every layer: a
// positive finite target, a non-negative non-NaN deadline, a known
// objective, a quantile in [0, 1), and a finite non-negative cap.
func (r Request) Validate() error {
	if !(r.Target > 0) || math.IsInf(r.Target, 0) {
		return fmt.Errorf("plan: target iterations must be positive and finite, got %v", r.Target)
	}
	if math.IsNaN(r.DeadlineS) || math.IsInf(r.DeadlineS, 0) || r.DeadlineS < 0 {
		return fmt.Errorf("plan: deadline must be finite and non-negative, got %v", r.DeadlineS)
	}
	if _, err := ParseObjective(string(r.Objective)); err != nil {
		return err
	}
	if math.IsNaN(r.Quantile) || r.Quantile < 0 || r.Quantile >= 1 {
		return fmt.Errorf("plan: quantile must be in [0, 1), got %v", r.Quantile)
	}
	if math.IsNaN(r.CapW) || math.IsInf(r.CapW, 0) || r.CapW < 0 {
		return fmt.Errorf("plan: power cap must be a finite non-negative number of watts, got %v", r.CapW)
	}
	return nil
}

// ResolveDeadline applies the shared deadline rule: 0 means the
// planning horizon, and the deadline may not exceed it (beyond a small
// tolerance for float accumulation in horizon arithmetic).
func (r Request) ResolveDeadline(horizonS float64) (float64, error) {
	d := r.DeadlineS
	if math.IsNaN(d) || d < 0 {
		return 0, fmt.Errorf("plan: deadline must be non-negative, got %v", d)
	}
	if d == 0 {
		d = horizonS
	}
	if d > horizonS+1e-9 {
		return 0, fmt.Errorf("plan: deadline %v beyond planning horizon %v", d, horizonS)
	}
	return d, nil
}

// Scale resolves PowerScale's default: values <= 0 mean 1.
func (r Request) Scale() float64 {
	if r.PowerScale <= 0 {
		return 1
	}
	return r.PowerScale
}

// PlanQuantile resolves Quantile's default: 0 means the point forecast
// (the 0.5 quantile).
func (r Request) PlanQuantile() float64 {
	if r.Quantile == 0 {
		return 0.5
	}
	return r.Quantile
}

// Account is the realized (or planned) accounting every layer totals:
// energy consumed, carbon emitted, money spent. Result types embed it
// so the JSON field names stay identical across layers.
type Account struct {
	EnergyJ float64 `json:"energy_j"`
	CarbonG float64 `json:"carbon_g"`
	CostUSD float64 `json:"cost_usd"`
}

// Accumulate adds b into a.
func (a *Account) Accumulate(b Account) {
	a.EnergyJ += b.EnergyJ
	a.CarbonG += b.CarbonG
	a.CostUSD += b.CostUSD
}

// Total reads the component matching the objective.
func (a Account) Total(obj Objective) float64 {
	switch obj {
	case ObjectiveCost:
		return a.CostUSD
	case ObjectiveEnergy:
		return a.EnergyJ
	default:
		return a.CarbonG
	}
}

// Predicted is the forecast-side twin of Account: what the forecasts
// in force at planning time predicted the same execution would emit
// and cost. The gap between Predicted and Account is reconciliation
// drift.
type Predicted struct {
	PredCarbonG float64 `json:"pred_carbon_g"`
	PredCostUSD float64 `json:"pred_cost_usd"`
}

// Accumulate adds b into p.
func (p *Predicted) Accumulate(b Predicted) {
	p.PredCarbonG += b.PredCarbonG
	p.PredCostUSD += b.PredCostUSD
}

// Summary is the common surface of a planning result: the accounting,
// the work covered, and whether the request was satisfiable. Fields a
// layer cannot express stay zero (the fleet allocator has no
// iterations; a single temporal plan has exactly one Plans).
type Summary struct {
	Account

	// Iterations is the work the plan covers (0 when not applicable).
	Iterations float64 `json:"iterations,omitempty"`

	// PowerW is the allocated power draw for capacity planners.
	PowerW float64 `json:"power_w,omitempty"`

	// Plans counts planner invocations behind the result (rolling-
	// horizon controllers re-plan many times; one-shot planners report 1).
	Plans int `json:"plans,omitempty"`

	// Feasible reports whether the request was fully satisfied.
	Feasible bool `json:"feasible"`
}

// Result is what every planning layer produces: anything that can
// summarize itself into the common surface.
type Result interface {
	Summarize() Summary
}

// Planner is the common planning contract. Implementations are
// adapters over each layer's native entry point (grid.Optimize,
// region.Optimize, forecast.Replan, fleet.Allocate) carrying the
// layer-specific inputs — tables, signals, providers, job sets — as
// struct fields, so a Request stays layer-agnostic.
type Planner interface {
	// Name identifies the planning layer (e.g. "grid", "region",
	// "forecast-mpc", "fleet").
	Name() string

	// Plan solves the request.
	Plan(req Request) (Result, error)
}
