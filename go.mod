module perseus

go 1.24
