package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"perseus/internal/frontier"
	"perseus/internal/region"
)

// regionTestTable hand-builds a convex lookup table.
func regionTestTable() *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: 0.01, TminUnits: 80, TStarUnits: 110}
	for u := int64(80); u <= 110; u++ {
		t := float64(u) * 0.01
		lt.Points = append(lt.Points, frontier.TablePoint{TimeUnits: u, Energy: 3000 + 120/t})
	}
	return lt
}

func TestRegionComparison(t *testing.T) {
	lt := regionTestTable()
	regions := region.PhaseShiftedPair(8)
	target := math.Floor(0.6 * 86400 / lt.TStar())
	mig := region.MigrationCost{DowntimeS: 600, EnergyJ: 1e6}

	strategies, err := RegionComparison(lt, regions, target, 0, mig)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: fixed @ west, fixed @ east, no-migration, planner.
	if len(strategies) != 4 {
		t.Fatalf("got %d strategies, want 4", len(strategies))
	}
	planner := strategies[len(strategies)-1].Plan
	for _, st := range strategies {
		if !st.Plan.Feasible {
			t.Fatalf("%s infeasible", st.Name)
		}
		if st.Plan != planner && !(planner.CarbonG < st.Plan.CarbonG) {
			t.Fatalf("planner carbon %v not strictly below %s (%v)",
				planner.CarbonG, st.Name, st.Plan.CarbonG)
		}
	}

	var buf bytes.Buffer
	if err := RegionComparisonTable(strategies).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fixed @ west", "no-migration", "region planner", "Carbon vs fixed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := RegionPlanTable(regions, planner, 0).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "migrate") {
		t.Fatalf("plan table shows no migration:\n%s", out)
	}
	if !strings.Contains(out, "migration(s)") {
		t.Fatalf("plan table missing migration note:\n%s", out)
	}
}
