package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every metric kind, label
// sorting, and the exposition escaping rules. Observed values are
// binary-exact floats so the rendered sums are stable across platforms.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.").Add(3)

	cv := r.CounterVec("test_cache_ops_total", "Cache operations.", "op")
	cv.With("miss").Inc()
	cv.With("hit").Add(5) // registered after "miss": output must still sort hit first

	r.Gauge("test_in_flight", "In-flight requests.").Set(2)

	gv := r.GaugeVec("test_weird_labels", "Escaping: backslash \\ and\nnewline.", "path")
	gv.With("a\\b\"c\nd").Set(1)

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.0078125, 0.0625, 0.5, 4} {
		h.Observe(v)
	}

	hv := r.HistogramVec("test_op_seconds", "Per-op latency.", []float64{1}, "op")
	hv.With("plan").Observe(0.5)
	return r
}

// TestWritePrometheusGolden pins the full exposition output — family
// and series ordering, histogram bucket/sum/count layout, HELP and
// label escaping — against testdata/exposition.golden.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionDeterministic re-renders the same registry and demands
// byte-identical output — scrapes must be stable under map iteration.
func TestExpositionDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of one registry differ")
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	a.Add(2)
	if got := r.Counter("x_total", "x").Value(); got != 2 {
		t.Errorf("re-registration returned a fresh counter: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of an empty histogram should be NaN")
	}
	// 10 observations in (1,2]: cumulative crosses anywhere inside that
	// bucket, interpolated linearly from 1 to 2.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("p50 = %v, want 1.5 (midpoint of the (1,2] bucket)", got)
	}
	// Push 10 more into (2,4]: p99 lands near that bucket's top.
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	p99 := h.Quantile(0.99)
	if p99 < 2 || p99 > 4 {
		t.Errorf("p99 = %v, want inside (2,4]", p99)
	}
	// Beyond the last finite bound: saturates at it.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("q1 with an overflow observation = %v, want the last bound 4", got)
	}
}

func TestCounterRejectsDecrease(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Add(math.NaN())
	if c.Value() != 5 {
		t.Errorf("counter after negative/NaN adds = %v, want 5", c.Value())
	}
}

// TestRegistryRace hammers one registry from concurrent writers and
// scrapers; run under -race (CI does) it proves the registry is safe
// to share between HTTP handlers, controller ticks, and /metrics
// scrapes.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "race")
	g := r.Gauge("race_gauge", "race")
	cv := r.CounterVec("race_vec_total", "race", "who")
	h := r.Histogram("race_seconds", "race", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w))
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				cv.With(who).Inc()
				h.Observe(float64(i) / 1000)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8*500 {
		t.Errorf("racing counter = %v, want %d", got, 8*500)
	}
	if got := h.Count(); got != 8*500 {
		t.Errorf("racing histogram count = %v, want %d", got, 8*500)
	}
}
