package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// findSpans returns the trace's spans with the given name.
func findSpans(tr client.Trace, name string) []client.Span {
	var out []client.Span
	for _, sp := range tr.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// spanByID indexes a trace's spans for parent-chain assertions.
func spanByID(tr client.Trace) map[string]client.Span {
	m := make(map[string]client.Span, len(tr.Spans))
	for _, sp := range tr.Spans {
		m[sp.SpanID] = sp
	}
	return m
}

// TestPlanRequestTraceSpans pins the request-path span tree: a cache
// miss through GET /grid/plan yields http → store.snapshot +
// cache.lookup → planner.solve (at least four spans, correctly
// parented), and the following hit yields a cache.lookup with
// hit=true and no solve.
func TestPlanRequestTraceSpans(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // miss, then hit
		if _, err := cl.FetchGridPlan(id, 50, 0, ""); err != nil {
			t.Fatal(err)
		}
	}

	traces, err := cl.FetchTraces(0, 0, spanCacheLookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("%d traces with a cache lookup, want 2", len(traces))
	}
	hit, miss := traces[0], traces[1] // newest first

	if miss.Root != "http /grid/plan/{id}" {
		t.Fatalf("miss trace root %q", miss.Root)
	}
	if len(miss.Spans) < 4 {
		t.Fatalf("miss trace has %d spans, want >= 4: %+v", len(miss.Spans), miss.Spans)
	}
	byID := spanByID(miss)
	var rootID string
	for _, sp := range miss.Spans {
		if sp.ParentID == "" {
			rootID = sp.SpanID
		}
	}
	snaps := findSpans(miss, spanStoreSnapshot)
	if len(snaps) != 1 || snaps[0].ParentID != rootID || snaps[0].Attrs["job"] != id {
		t.Fatalf("store.snapshot spans %+v (root %s)", snaps, rootID)
	}
	looks := findSpans(miss, spanCacheLookup)
	if len(looks) != 1 || looks[0].ParentID != rootID {
		t.Fatalf("cache.lookup spans %+v (root %s)", looks, rootID)
	}
	if looks[0].Attrs["hit"] != "false" || looks[0].Attrs["coalesced"] != "false" {
		t.Fatalf("miss lookup attrs %v", looks[0].Attrs)
	}
	solves := findSpans(miss, obs.SpanPlannerSolve)
	if len(solves) != 1 {
		t.Fatalf("planner.solve spans %+v", solves)
	}
	if parent, ok := byID[solves[0].ParentID]; !ok || parent.Name != spanCacheLookup {
		t.Fatalf("planner.solve parented under %q, want %s", solves[0].ParentID, spanCacheLookup)
	}
	if solves[0].Attrs["planner"] != "grid" || solves[0].Attrs["objective"] != "carbon" {
		t.Fatalf("planner.solve attrs %v", solves[0].Attrs)
	}

	looks = findSpans(hit, spanCacheLookup)
	if len(looks) != 1 || looks[0].Attrs["hit"] != "true" || looks[0].Attrs["coalesced"] != "false" {
		t.Fatalf("hit lookup spans %+v", looks)
	}
	if got := findSpans(hit, obs.SpanPlannerSolve); len(got) != 0 {
		t.Fatalf("cache hit still solved: %+v", got)
	}
}

// TestTraceparentJoinsTrace pins context propagation end to end: a
// client with a fixed traceparent sees every request's server-side
// spans land in its own trace, the response echoes the trace in
// X-Trace-Id, and a malformed header starts a fresh trace instead.
func TestTraceparentJoinsTrace(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := client.NewTracedServerClient(ts.URL)
	if cl.TraceID() == "" {
		t.Fatal("traced client minted no trace ID")
	}
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchGridPlan(id, 50, 0, ""); err != nil {
		t.Fatal(err)
	}

	var joined client.Trace
	traces, err := cl.FetchTraces(0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if tr.TraceID == cl.TraceID() {
			joined = tr
		}
	}
	if joined.TraceID == "" {
		t.Fatalf("no trace with the client's ID %s", cl.TraceID())
	}
	// The signal install and the plan fetch both joined: multiple http
	// roots share the one client trace, with the solve nested inside.
	var httpSpans, solves int
	for _, sp := range joined.Spans {
		if strings.HasPrefix(sp.Name, "http ") {
			httpSpans++
		}
		if sp.Name == obs.SpanPlannerSolve {
			solves++
		}
	}
	if httpSpans < 2 || solves != 1 {
		t.Fatalf("joined trace: %d http spans, %d solves: %+v", httpSpans, solves, joined.Spans)
	}

	// The response surfaces the trace: X-Trace-Id matches the inbound
	// traceparent's trace ID.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("Traceparent", cl.Traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != cl.TraceID() {
		t.Fatalf("X-Trace-Id %q, want %q", got, cl.TraceID())
	}

	// Malformed traceparent: fresh trace, not an error.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("Traceparent", "garbage-header")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed traceparent rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Trace-Id"); got == "" || got == cl.TraceID() {
		t.Fatalf("malformed traceparent did not start a fresh trace: %q", got)
	}
}

// TestTickTraceStageSpans pins the controller-tick span tree under a
// fake clock: one controller.tick root with exactly one child span per
// roll-forward stage (inputs, freeze, forecast, solve, bump) and the
// planner.solve grandchild nested under the solve stage.
func TestTickTraceStageSpans(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(11, 0.2, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	if _, err := cl.ManageJob(id, target, 14400, "", 0); err != nil {
		t.Fatal(err)
	}

	clock.Advance(time.Hour)
	if st := srv.TickController(); st.LastTickError != "" {
		t.Fatalf("tick error %q", st.LastTickError)
	}

	traces := srv.Traces(1, 0, spanControllerTick)
	if len(traces) != 1 {
		t.Fatalf("%d tick traces, want 1", len(traces))
	}
	tick := traces[0]
	if tick.Root != spanControllerTick {
		t.Fatalf("tick trace root %q", tick.Root)
	}
	var rootID string
	byID := map[string]string{} // span ID -> name
	for _, sp := range tick.Spans {
		byID[sp.SpanID] = sp.Name
		if sp.ParentID == "" {
			rootID = sp.SpanID
			if sp.Attrs["jobs"] != "1" || sp.Attrs["errors"] != "0" {
				t.Fatalf("tick root attrs %v", sp.Attrs)
			}
		}
	}
	// Exactly one direct child per stage, in the stage taxonomy.
	stages := map[string]int{}
	for _, sp := range tick.Spans {
		if sp.ParentID == rootID {
			stages[sp.Name]++
		}
	}
	for _, stage := range []string{spanReplanInputs, spanReplanFreeze, spanReplanFcast, spanReplanSolve, spanReplanBump} {
		if stages[stage] != 1 {
			t.Fatalf("stage %s appears %d times as a tick child, want 1 (%v)", stage, stages[stage], stages)
		}
	}
	// The MPC solve nests the instrumented planner's span below it, and
	// the bump stage records the version it deployed.
	var solveNested, bumpVersioned bool
	for _, sp := range tick.Spans {
		if sp.Name == obs.SpanPlannerSolve && byID[sp.ParentID] == spanReplanSolve {
			if sp.Attrs["planner"] != "forecast-mpc" {
				t.Fatalf("tick solve planner attr %v", sp.Attrs)
			}
			solveNested = true
		}
		if sp.Name == spanReplanBump && sp.Attrs["version"] != "" {
			bumpVersioned = true
		}
	}
	if !solveNested {
		t.Fatalf("no planner.solve nested under %s: %+v", spanReplanSolve, tick.Spans)
	}
	if !bumpVersioned {
		t.Fatalf("bump span carries no version: %+v", tick.Spans)
	}
}

// gatedPlanner blocks grid solves until released — the seam the
// coalescing test uses to hold a solve in flight.
type gatedPlanner struct {
	inner   pln.Planner
	entered chan struct{}
	release chan struct{}
}

func (g *gatedPlanner) Name() string { return g.inner.Name() }

func (g *gatedPlanner) Plan(req pln.Request) (pln.Result, error) {
	g.entered <- struct{}{}
	<-g.release
	return g.inner.Plan(req)
}

// TestCoalescedLookupTraceAttr pins the single-flight trace attr: a
// follower that parks on another request's in-flight solve records its
// cache.lookup span with coalesced=true.
func TestCoalescedLookupTraceAttr(t *testing.T) {
	srv := New()
	gate := &gatedPlanner{entered: make(chan struct{}, 1), release: make(chan struct{})}
	// Gate only the grid planner: the fleet recompute that follows
	// characterization must pass through untouched.
	srv.planWrap = func(p pln.Planner) pln.Planner {
		if p.Name() != "grid" {
			return p
		}
		gate.inner = p
		return gate
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fetch := func() {
		defer wg.Done()
		if _, err := cl.FetchGridPlan(id, 50, 0, ""); err != nil {
			t.Error(err)
		}
	}
	wg.Add(2)
	go fetch()
	<-gate.entered // the leader is inside the solve
	go fetch()
	deadline := time.Now().Add(5 * time.Second)
	for srv.CacheStats().Coalesced != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()

	var misses, coalesced int
	for _, tr := range srv.Traces(0, 0, spanCacheLookup) {
		for _, sp := range tr.Spans {
			if sp.Name != spanCacheLookup {
				continue
			}
			switch {
			case sp.Attrs["hit"] == "false":
				misses++
			case sp.Attrs["hit"] == "true" && sp.Attrs["coalesced"] == "true":
				coalesced++
			}
		}
	}
	if misses != 1 || coalesced != 1 {
		t.Fatalf("lookup spans: %d misses, %d coalesced followers; want 1 and 1", misses, coalesced)
	}
}

// failingGridPlanner fails every solve — the injected fault that trips
// the replan-failure SLO.
type failingGridPlanner struct{ inner pln.Planner }

func (f failingGridPlanner) Name() string { return f.inner.Name() }

func (f failingGridPlanner) Plan(pln.Request) (pln.Result, error) {
	return nil, fmt.Errorf("injected solver failure")
}

// TestReplanFailureBreachesSLO drives the whole self-monitoring loop
// under a fake clock: a forced planner error marks the replan.solve
// span failed, trips the replan-failure-ratio SLO to breach, flips
// /healthz readiness, mirrors the level into the status metrics, and
// emits an slo.breach event carrying the offending trace ID.
func TestReplanFailureBreachesSLO(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	srv.planWrap = func(p pln.Planner) pln.Planner {
		if p.Name() != "grid" {
			return p
		}
		return failingGridPlanner{inner: p}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ManageJob(id, 1e6, 14400, "", 0); err == nil {
		t.Fatal("managed job planned through the injected failure")
	}
	if got := srv.obs.replanFails.Value(); got != 1 {
		t.Fatalf("replan failure counter %v, want 1", got)
	}

	// The errored solve's trace is retained and marked.
	solved := srv.Traces(1, 0, spanReplanSolve)
	if len(solved) != 1 || !solved[0].Err {
		t.Fatalf("errored replan trace %+v", solved)
	}
	wantTrace := solved[0].TraceID

	h, err := cl.FetchHealth()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "breach" || h.Ready {
		t.Fatalf("health after forced failure: status=%q ready=%v", h.Status, h.Ready)
	}
	var ratio client.SLOStatus
	for _, st := range h.SLOs {
		if st.Name == "replan-failure-ratio" {
			ratio = st
		}
	}
	if ratio.Status != "breach" || ratio.Value != 1 || ratio.WorstTraceID != wantTrace {
		t.Fatalf("replan-failure-ratio status %+v, want breach at 1.0 blaming %s", ratio, wantTrace)
	}
	if ratio.BurnRate < 9.9 || ratio.BurnRate > 10.1 { // 1.0 against a 0.10 budget
		t.Fatalf("burn rate %v, want ~10", ratio.BurnRate)
	}

	// /debug/slo agrees, and the other rules are unaffected.
	slos, err := cl.FetchSLOs()
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 4 {
		t.Fatalf("%d SLO rules, want 4", len(slos))
	}
	for _, st := range slos {
		want := "ok"
		if st.Name == "replan-failure-ratio" {
			want = "breach"
		}
		if st.Status != want {
			t.Fatalf("SLO %s status %q, want %q", st.Name, st.Status, want)
		}
	}

	// The breach transition was mirrored into metrics and the event ring.
	text, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`perseus_slo_status{slo="replan-failure-ratio"} 2`,
		`perseus_slo_status{slo="plan-latency-p99"} 0`,
		`perseus_slo_breaches_total{slo="replan-failure-ratio"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	var breach *obs.Event
	for _, e := range srv.Events(0).Events {
		if e.Name == "slo.breach" {
			ev := e
			breach = &ev
		}
	}
	if breach == nil {
		t.Fatal("no slo.breach event emitted")
	}
	if breach.Labels["slo"] != "replan-failure-ratio" || breach.Labels["from"] != "ok" ||
		breach.Labels["to"] != "breach" || breach.Labels["trace_id"] != wantTrace {
		t.Fatalf("slo.breach labels %v, want trace %s", breach.Labels, wantTrace)
	}
}

// TestLongPollWakeAccounting parks N concurrent long-pollers on one
// job's version, bumps it once, and pins the accounting exactly: every
// poller wakes with the new schedule, the waiters gauge returns to
// zero, the wake histogram counts exactly the woken waiters, and each
// park recorded a woken=true span.
func TestLongPollWakeAccounting(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	sched, err := cl.FetchSchedule(id)
	if err != nil {
		t.Fatal(err)
	}

	const pollers = 8
	var wg sync.WaitGroup
	for w := 0; w < pollers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s2, changed, err := cl.FetchScheduleIfChanged(id, sched.Version, 10*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			if !changed || s2.Version <= sched.Version {
				t.Errorf("poller missed the bump: version %d changed=%v", s2.Version, changed)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.obs.waiters.Value() != pollers {
		if time.Now().After(deadline) {
			t.Fatalf("waiters gauge %v, want %d parked", srv.obs.waiters.Value(), pollers)
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.SetStraggler(id, StragglerNotice{ID: "x", Degree: 1.3}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got := srv.obs.waiters.Value(); got != 0 {
		t.Fatalf("waiters gauge %v after wake, want 0", got)
	}
	if got := srv.obs.wakeDur.Count(); got != pollers {
		t.Fatalf("wake histogram count %d, want exactly %d woken waiters", got, pollers)
	}
	var woken int
	for _, tr := range srv.Traces(0, 0, spanLongpollPark) {
		for _, sp := range tr.Spans {
			if sp.Name == spanLongpollPark && sp.Attrs["woken"] == "true" {
				if sp.Attrs["job"] != id {
					t.Fatalf("park span attrs %v", sp.Attrs)
				}
				woken++
			}
		}
	}
	if woken != pollers {
		t.Fatalf("%d woken park spans, want %d", woken, pollers)
	}
}

// TestDebugEndpointValidation pins the debug endpoints' parameter
// contract: malformed n, since, and min_ms values answer 400 instead
// of being silently ignored.
func TestDebugEndpointValidation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/debug/events?n=abc",
		"/debug/events?n=-1",
		"/debug/events?since=abc",
		"/debug/events?since=-3",
		"/debug/traces?n=abc",
		"/debug/traces?n=-1",
		"/debug/traces?min_ms=abc",
		"/debug/traces?min_ms=-1",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %s, want 400", path, resp.Status)
		}
	}
}

// TestEventsSinceCursor pins the /debug/events cursor contract: a
// client that passes the last seen Seq back gets only newer events,
// oldest first, capped at n.
func TestEventsSinceCursor(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	all, err := cl.FetchEvents(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Fatalf("need >= 3 seed events, got %d", len(all))
	}
	cursor := all[0].Seq

	rest, err := cl.FetchEventsSince(cursor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(all)-1 || rest[0].Seq != all[1].Seq {
		t.Fatalf("cursor fetch returned %d events, want the %d after seq %d",
			len(rest), len(all)-1, cursor)
	}
	// The cap keeps the OLDEST qualifying events: a poller pages forward
	// without gaps.
	capped, err := cl.FetchEventsSince(cursor, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 || capped[0].Seq != all[1].Seq {
		t.Fatalf("capped cursor fetch %+v, want oldest-after %d", capped, cursor)
	}
	// Past the end: empty, not an error.
	tail, err := cl.FetchEventsSince(all[len(all)-1].Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 0 {
		t.Fatalf("fetch past the newest seq returned %d events", len(tail))
	}
	// A new emission is picked up by the same cursor.
	if err := srv.SetStraggler(id, StragglerNotice{ID: "x", Degree: 1.2}); err != nil {
		t.Fatal(err)
	}
	fresh, err := cl.FetchEventsSince(all[len(all)-1].Seq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Name != "job.straggler" {
		t.Fatalf("cursor missed the new event: %+v", fresh)
	}
}
