package region

import (
	"fmt"
	"math"

	"perseus/internal/grid"
	pln "perseus/internal/plan"
)

// Options parameterizes the multi-region planner.
type Options struct {
	// Objective selects what to minimize; "" means carbon.
	Objective grid.Objective

	// Migration is the fixed pause-cost of moving a job between
	// regions; the zero value makes moves free.
	Migration MigrationCost

	// Rounds is the number of Gauss-Seidel improvement rounds after the
	// first sequential pass: each round re-plans every job against the
	// others' committed placements. 0 means 2.
	Rounds int

	// Workers bounds the planner's evaluation parallelism: independent
	// candidate placements are solved across a worker pool and reduced
	// in a fixed deterministic order, so the plan is identical for any
	// value. 0 means runtime.GOMAXPROCS(0); 1 forces sequential
	// evaluation (determinism_test.go pins the equality).
	Workers int

	// Seeds optionally warm-starts each job's descent from a prior
	// placement, keyed by job ID. A seed is one extra starting
	// candidate beside the usual single-region and rate-envelope
	// starts, and descent accepts it only on strict improvement — so a
	// stale or infeasible seed changes nothing, while a near-optimal
	// one (the previous MPC tick's plan) lets descent converge in a
	// move or two.
	Seeds map[string][]SeedSpan
}

// SeedSpan pins one stretch of a warm-start seed placement: run in
// Region over [StartS, EndS) seconds ("" or an unknown name pauses).
// Spans are expressed in time rather than cell indices because the
// common cell grid generally shifts between MPC ticks.
type SeedSpan struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Region string  `json:"region"`
}

func (o Options) rounds() int {
	if o.Rounds <= 0 {
		return 2
	}
	return o.Rounds
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return DefaultWorkers()
	}
	return o.Workers
}

// Assignment is one cell of a job's placement sequence.
type Assignment struct {
	// Cell indexes Plan.Cells.
	Cell int `json:"cell"`

	// StartS and EndS bound the cell.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	// Region indexes Plan.Regions; -1 means the job is paused.
	Region int `json:"region"`

	// Migrate marks the cell at whose start the job arrives from a
	// different region (checkpoint transfer downtime and energy are
	// charged here).
	Migrate bool `json:"migrate,omitempty"`
}

// JobPlan is one job's spatio-temporal schedule.
type JobPlan struct {
	// JobID names the job.
	JobID string `json:"job_id"`

	// Assignments is the per-cell placement in time order.
	Assignments []Assignment `json:"assignments"`

	// Temporal is the job's inner temporal plan over the composite
	// signal its placement induces (grid.Optimize output; slices index
	// the job's lookup table).
	Temporal *grid.Plan `json:"temporal"`

	// Migrations counts region changes; the downtime and transfer
	// energy totals follow, with the energy priced at each arrival
	// cell's rates.
	Migrations         int     `json:"migrations"`
	MigrationDowntimeS float64 `json:"migration_downtime_s"`
	MigrationEnergyJ   float64 `json:"migration_energy_j"`
	MigrationCarbonG   float64 `json:"migration_carbon_g"`
	MigrationCostUSD   float64 `json:"migration_cost_usd"`

	// The embedded plan.Account totals the job including migration.
	pln.Account

	// Feasible reports whether the job completes its target by its
	// deadline under the placement.
	Feasible bool `json:"feasible"`
}

// Plan is a joint multi-region schedule for a set of jobs.
type Plan struct {
	// Objective is what the plan minimizes.
	Objective grid.Objective `json:"objective"`

	// HorizonS is the planning horizon in seconds.
	HorizonS float64 `json:"horizon_s"`

	// Regions lists the region names; Assignment.Region indexes it.
	Regions []string `json:"regions"`

	// Cells is the common planning grid (union of all regions' signal
	// boundaries).
	Cells []Cell `json:"cells"`

	// Jobs holds the per-job schedules in input order.
	Jobs []JobPlan `json:"jobs"`

	// The embedded plan.Account totals the plan including migration.
	pln.Account

	// Feasible reports whether every job meets its target and deadline.
	Feasible bool `json:"feasible"`
}

// Total reads the plan total matching its objective.
func (p *Plan) Total() float64 { return p.Account.Total(p.Objective) }

// Summarize implements plan.Result.
func (p *Plan) Summarize() pln.Summary {
	s := pln.Summary{Account: p.Account, Plans: 1, Feasible: p.Feasible}
	for i := range p.Jobs {
		if p.Jobs[i].Temporal != nil {
			s.Iterations += p.Jobs[i].Temporal.Iterations
		}
	}
	return s
}

// Planner adapts the joint spatio-temporal planner to the shared
// plan.Planner contract: a fixed fleet of regions and jobs, with the
// request supplying the objective and per-job target/deadline defaults
// (jobs carrying their own keep them).
type Planner struct {
	Regions   []Region
	Jobs      []Job
	Migration MigrationCost
	Rounds    int
}

// Name implements plan.Planner.
func (p *Planner) Name() string { return "region" }

// Plan implements plan.Planner.
func (p *Planner) Plan(req pln.Request) (pln.Result, error) {
	jobs := append([]Job(nil), p.Jobs...)
	for i := range jobs {
		if jobs[i].Target <= 0 {
			jobs[i].Target = req.Target
		}
		if jobs[i].DeadlineS <= 0 {
			jobs[i].DeadlineS = req.DeadlineS
		}
		if jobs[i].PowerScale <= 0 && req.PowerScale > 0 {
			jobs[i].PowerScale = req.PowerScale
		}
	}
	return Optimize(p.Regions, jobs, Options{
		Objective: req.Objective,
		Migration: p.Migration,
		Rounds:    p.Rounds,
	})
}

// eval is one evaluated placement candidate for one job.
type eval struct {
	placement []int
	plan      *grid.Plan
	mig       migSummary
	cellOf    []int
	cost      float64 // objective incl. migration; only valid when feasible
	coverage  float64
	feasible  bool
}

// better reports whether a strictly improves on b: feasibility first,
// then objective cost, then (both infeasible) coverage.
func (a *eval) better(b *eval) bool {
	if b == nil || b.placement == nil {
		return true
	}
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.feasible {
		return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
	}
	if math.Abs(a.coverage-b.coverage) > 1e-9*(1+b.coverage) {
		return a.coverage > b.coverage
	}
	return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
}

// usage tracks the capacity and power other jobs consume per
// (region, cell), so sequential planning respects shared limits.
type usage struct {
	gpus  [][]int     // [region][cell]
	peakW [][]float64 // [region][cell] peak planned power
}

func newUsage(nRegions, nCells int) *usage {
	u := &usage{gpus: make([][]int, nRegions), peakW: make([][]float64, nRegions)}
	for r := range u.gpus {
		u.gpus[r] = make([]int, nCells)
		u.peakW[r] = make([]float64, nCells)
	}
	return u
}

// apply commits (sign +1) or releases (sign -1) a job's evaluated
// placement.
func (u *usage) apply(j *Job, ev *eval, sign int) {
	if ev == nil || ev.placement == nil {
		return
	}
	for k, r := range ev.placement {
		if r >= 0 {
			u.gpus[r][k] += sign * j.gpus()
		}
	}
	if ev.plan == nil {
		return
	}
	// Peak slice power per cell, via the composite-interval → cell map.
	for i, ip := range ev.plan.Intervals {
		k := ev.cellOf[i]
		r := ev.placement[k]
		if r < 0 {
			continue
		}
		var peak float64
		for _, sl := range ip.Slices {
			if p := j.scale() * j.Table.AvgPower(sl.Point); p > peak {
				peak = p
			}
		}
		u.peakW[r][k] += float64(sign) * peak
	}
}

// planner bundles the planning context: the immutable instance
// (regions, cells, options, precomputed rates) plus the mutable solve
// state — committed usage, per-worker evaluation scratch, and the
// per-job candidate memo. Tests build bare planners with just the
// first five fields; every method tolerates the zero values of the
// rest (nil rates fall back to Region.rates, zero workers run inline).
type planner struct {
	regions []Region
	cells   []Cell
	horizon float64
	opts    Options
	usage   *usage

	workers int
	rates   [][]cellRates // nil on bare test planners
	scratch []evalScratch // one per worker
	memo    jobMemo
	cands   []int32 // current batch, entry indices in generation order
	pending []int32 // entries awaiting evaluation this batch
	curPl   []int   // descent incumbent placement
	tmpPl   []int   // candidate construction buffer
}

// newPlanner validates the instance and builds a ready planner:
// normalized objective, common cell grid, rate table, and worker
// scratch. The shared front half of every planning entry point
// (Optimize, Fixed, BestFixed, NoMigration), hoisted so BestFixed pays
// it once rather than once per region.
func newPlanner(regions []Region, jobs []Job, opts Options) (*planner, error) {
	if err := validate(regions, jobs, opts); err != nil {
		return nil, err
	}
	obj, err := grid.ParseObjective(string(opts.Objective))
	if err != nil {
		return nil, err
	}
	opts.Objective = obj

	horizon := 0.0
	maxSig := 0.0
	for i := range regions {
		if h := regions[i].Signal.Horizon(); h > maxSig {
			maxSig = h
		}
	}
	for i := range jobs {
		d := jobs[i].DeadlineS
		if d <= 0 {
			d = maxSig
		}
		if d > horizon {
			horizon = d
		}
	}
	cells := commonGrid(regions, horizon)
	p := &planner{
		regions: regions,
		cells:   cells,
		horizon: horizon,
		opts:    opts,
		workers: opts.workers(),
		rates:   rateTable(regions, cells),
	}
	p.scratch = make([]evalScratch, p.workers)
	return p, nil
}

// fork clones the planner's immutable context for an independent solve
// (BestFixed runs one per region concurrently): shared regions, cells,
// and rates; private usage, scratch, and memo. Forks run their inner
// evaluations sequentially — the fan-out is across forks.
func (p *planner) fork() *planner {
	return &planner{
		regions: p.regions,
		cells:   p.cells,
		horizon: p.horizon,
		opts:    p.opts,
		workers: 1,
		rates:   p.rates,
		scratch: make([]evalScratch, 1),
	}
}

// allowed reports whether the job fits region r's GPU capacity in cell
// k given the other jobs' committed placements.
func (p *planner) allowed(j *Job, r, k int) bool {
	if p.regions[r].GPUs > 0 && p.usage.gpus[r][k]+j.gpus() > p.regions[r].GPUs {
		return false
	}
	return true
}

// capOverride returns the cap left for one more job in (r, k): the
// region's effective cap minus the power other jobs' plans already
// draw there (0 = uncapped).
func (p *planner) capOverride(r, k int) float64 {
	var capW float64
	if p.rates != nil {
		capW = p.rates[r][k].capW
	} else {
		_, _, capW = p.regions[r].rates(p.cells[k])
	}
	if capW <= 0 {
		return 0
	}
	rem := capW - p.usage.peakW[r][k]
	if rem < forceIdleCapW {
		rem = forceIdleCapW
	}
	return rem
}

// cellRate reads region r's (carbon, price) over cell k, through the
// precomputed table when present.
func (p *planner) cellRate(r, k int) (carbon, price float64) {
	if p.rates != nil {
		rc := p.rates[r][k]
		return rc.carbon, rc.price
	}
	carbon, price, _ = p.regions[r].rates(p.cells[k])
	return carbon, price
}

// origin resolves the job's Origin region name to an index (Paused
// when unset; validate guarantees a set name resolves).
func (p *planner) origin(j *Job) int {
	if j.Origin == "" {
		return Paused
	}
	for i := range p.regions {
		if p.regions[i].Name == j.Origin {
			return i
		}
	}
	return Paused
}

// gridOptions maps a job to its inner temporal-planner options.
func (p *planner) gridOptions(j *Job) grid.Options {
	return grid.Options{
		Target:     j.Target,
		DeadlineS:  j.DeadlineS,
		Objective:  p.opts.Objective,
		PowerScale: j.scale(),
	}
}

// evaluate compiles a placement into a composite signal and solves the
// inner temporal subproblem exactly with grid.Optimize. The
// allocate-everything path, kept for bare test planners; hot paths use
// evaluateFull/evaluateLight below.
func (p *planner) evaluate(j *Job, placement []int) (*eval, error) {
	sig, mig, cellOf := compile(p.regions, p.cells, placement, p.origin(j), p.opts.Migration, p.capOverride)
	plan, err := grid.Optimize(j.Table, sig, p.gridOptions(j))
	if err != nil {
		return nil, err
	}
	ev := &eval{
		placement: placement,
		plan:      plan,
		mig:       mig,
		cellOf:    cellOf,
		coverage:  plan.Iterations,
		feasible:  plan.Feasible,
		cost:      objectiveTotal(plan) + mig.objective(plan.Objective),
	}
	return ev, nil
}

// evaluateFull evaluates a placement and materializes the full eval —
// temporal plan and cell map included — for commit paths (usage
// accounting, assembly). Compile runs in the scratch's buffers; the
// returned eval retains only fresh state (the plan and a copied cell
// map), never the scratch.
func (p *planner) evaluateFull(s *evalScratch, j *Job, placement []int) (*eval, error) {
	sig, mig, cellOf := compileInto(&s.compileScratch, p.regions, p.cells, placement, p.origin(j), p.opts.Migration, p.capOverride, p.rates)
	plan, err := s.solver.Optimize(j.Table, sig, p.gridOptions(j))
	if err != nil {
		return nil, err
	}
	return &eval{
		placement: placement,
		plan:      plan,
		mig:       mig,
		cellOf:    append([]int(nil), cellOf...),
		coverage:  plan.Iterations,
		feasible:  plan.Feasible,
		cost:      objectiveTotal(plan) + mig.objective(plan.Objective),
	}, nil
}

// evaluateLight evaluates a placement to its comparison outcome only —
// no plan, no allocations in steady state. grid.Solver.Evaluate totals
// with arithmetic bit-identical to Optimize's, so light and full
// evaluations of the same placement always agree; descent compares
// candidates light and re-solves only committed winners full.
func (p *planner) evaluateLight(s *evalScratch, j *Job, placement []int) (outcome, error) {
	sig, mig, _ := compileInto(&s.compileScratch, p.regions, p.cells, placement, p.origin(j), p.opts.Migration, p.capOverride, p.rates)
	ev, err := s.solver.Evaluate(j.Table, sig, p.gridOptions(j))
	if err != nil {
		return outcome{}, err
	}
	return outcome{
		cost:     ev.Total(p.opts.Objective) + mig.objective(p.opts.Objective),
		coverage: ev.Iterations,
		feasible: ev.Feasible,
	}, nil
}

// beginBatch starts collecting one batch of candidate placements.
func (p *planner) beginBatch() { p.cands = p.cands[:0] }

// addCand records a candidate in generation order, interning it in the
// job memo (duplicates and already-solved placements share entries).
func (p *planner) addCand(pl []int) { p.cands = append(p.cands, p.memo.intern(pl)) }

// runBatch solves every not-yet-solved candidate in the current batch,
// fanned across the worker pool. Each pending entry is written by
// exactly one worker and the memo's headers are untouched while
// workers run, so the pass is race-free; results are then read back
// sequentially in generation order, which keeps the reduction — and
// therefore the whole planner — bit-identical for any worker count.
func (p *planner) runBatch(j *Job) error {
	p.pending = p.pending[:0]
	for _, e := range p.cands {
		ent := &p.memo.entries[e]
		if !ent.solved {
			ent.solved = true // batches can repeat an entry; queue it once
			p.pending = append(p.pending, e)
		}
	}
	parallelFor(p.workers, len(p.pending), func(w, i int) {
		e := p.pending[i]
		ent := &p.memo.entries[e]
		ent.out, ent.err = p.evaluateLight(&p.scratch[w], j, p.memo.placement(e))
	})
	for _, e := range p.pending {
		if err := p.memo.entries[e].err; err != nil {
			return err
		}
	}
	return nil
}

// regionIndex resolves a region name to its index, -1 when unknown.
func (p *planner) regionIndex(name string) int {
	for i := range p.regions {
		if p.regions[i].Name == name {
			return i
		}
	}
	return -1
}

// seedPlacement converts the job's warm-start seed spans to a
// placement on the current cell grid: each cell takes the region of
// the span covering its midpoint, clamped to Paused past the deadline,
// where the region is unknown, or where capacity is already committed.
// Returns nil when the job has no seed or the seed places nothing.
func (p *planner) seedPlacement(j *Job, kEnd int) []int {
	spans := p.opts.Seeds[j.ID]
	if len(spans) == 0 {
		return nil
	}
	pl := make([]int, len(p.cells))
	any := false
	for k, c := range p.cells {
		pl[k] = Paused
		if k >= kEnd {
			continue
		}
		mid := (c.StartS + c.EndS) / 2
		for _, sp := range spans {
			if mid < sp.StartS || mid >= sp.EndS {
				continue
			}
			if r := p.regionIndex(sp.Region); r >= 0 && p.allowed(j, r, k) {
				pl[k] = r
				any = true
			}
			break
		}
	}
	if !any {
		return nil
	}
	return pl
}

// kEnd returns the first cell index at or beyond the job's deadline;
// cells from there on are forced to Paused (they cannot contribute).
func (p *planner) kEnd(j *Job) int {
	d := j.DeadlineS
	if d <= 0 {
		d = p.horizon
	}
	for k, c := range p.cells {
		if c.StartS >= d {
			return k
		}
	}
	return len(p.cells)
}

// starts builds the candidate starting placements: each single region
// (capacity permitting, Paused where blocked) and the per-cell
// rate-envelope placement (the allowed region with the lowest
// objective rate — optimal when migration is free).
func (p *planner) starts(j *Job) [][]int {
	kEnd := p.kEnd(j)
	K := len(p.cells)
	var out [][]int
	for r := range p.regions {
		pl := make([]int, K)
		for k := range pl {
			pl[k] = Paused
			if k < kEnd && p.allowed(j, r, k) {
				pl[k] = r
			}
		}
		out = append(out, pl)
	}
	env := make([]int, K)
	for k := range env {
		env[k] = Paused
		if k >= kEnd {
			continue
		}
		best, bestRate := Paused, math.Inf(1)
		for r := range p.regions {
			if !p.allowed(j, r, k) {
				continue
			}
			carbon, price := p.cellRate(r, k)
			rate := carbon
			if p.opts.Objective == grid.ObjectiveCost {
				rate = price
			}
			if rate < bestRate {
				best, bestRate = r, rate
			}
		}
		env[k] = best
	}
	out = append(out, env)
	return out
}

// planJob finds one job's placement by steepest descent over
// contiguous segment moves, starting from the best candidate start:
// every move re-assigns one cell range [i, j] to one region (or to
// Paused) and is evaluated exactly via the inner temporal planner, so
// the descent only accepts moves whose full spatio-temporal cost —
// migration pause-costs included — strictly improves.
//
// Mechanically each descent sweep is batched: candidates are generated
// in canonical (i, k, t) order, deduplicated through the job memo,
// evaluated light across the worker pool, and reduced sequentially in
// generation order with the same strict comparisons the sequential
// planner makes — so the chosen move, and hence the whole descent, is
// bit-identical for any Options.Workers.
func (p *planner) planJob(j *Job) (*eval, error) {
	p.memo.reset()
	kEnd := p.kEnd(j)

	p.beginBatch()
	starts := p.starts(j)
	if seed := p.seedPlacement(j, kEnd); seed != nil {
		starts = append(starts, seed)
	}
	for _, pl := range starts {
		p.addCand(pl)
	}
	if err := p.runBatch(j); err != nil {
		return nil, err
	}
	var cur outcome
	haveCur := false
	for _, e := range p.cands {
		if out := p.memo.entries[e].out; betterOutcome(out, cur, haveCur) {
			cur, haveCur = out, true
			p.curPl = append(p.curPl[:0], p.memo.placement(e)...)
		}
	}

	// Each accepted move strictly improves, so this bound only cuts off
	// pathological slow convergence; observed descents take well under
	// a tenth of it.
	const maxMoves = 64
	for move := 0; move < maxMoves; move++ {
		p.beginBatch()
		for i := 0; i < kEnd; i++ {
			for k := i; k < kEnd; k++ {
				for t := Paused; t < len(p.regions); t++ {
					ok, changed := true, false
					for c := i; c <= k; c++ {
						if t >= 0 && !p.allowed(j, t, c) {
							ok = false
							break
						}
						if p.curPl[c] != t {
							changed = true
						}
					}
					if !ok || !changed {
						continue
					}
					cand := append(p.tmpPl[:0], p.curPl...)
					for c := i; c <= k; c++ {
						cand[c] = t
					}
					p.tmpPl = cand
					p.addCand(cand)
				}
			}
		}
		if err := p.runBatch(j); err != nil {
			return nil, err
		}
		bestE := int32(-1)
		var best outcome
		for _, e := range p.cands {
			out := p.memo.entries[e].out
			if betterOutcome(out, cur, true) && betterOutcome(out, best, bestE >= 0) {
				best, bestE = out, e
			}
		}
		if bestE < 0 {
			break
		}
		cur = best
		p.curPl = append(p.curPl[:0], p.memo.placement(bestE)...)
	}
	// Materialize the winner once, full: the descent itself never
	// builds a temporal plan.
	return p.evaluateFull(&p.scratch[0], j, append([]int(nil), p.curPl...))
}

// Optimize plans the joint spatio-temporal schedule: for every job a
// per-cell (region | pause) placement with migration pause-costs, and
// within it the exact optimal temporal frequency plan, minimizing the
// total objective subject to each job's target and deadline, each
// region's GPU capacity, and each region's facility and interval power
// caps (shared across the jobs placed there).
//
// Jobs are planned sequentially in input order against the committed
// usage of earlier jobs, then refined with opts.Rounds Gauss-Seidel
// rounds (each job re-planned against all others). Per job the search
// is steepest descent over contiguous segment moves from the best of
// the single-region and rate-envelope starts (plus any warm-start
// seed); every candidate is evaluated exactly by the inner temporal
// solver on the placement's composite signal, so temporal shifting,
// pausing, and migration trade off in one objective. Candidate
// evaluations fan out across an Options.Workers pool with a
// deterministic sequential reduction, so the plan is identical for any
// worker count. brute_test.go cross-checks the result against
// exhaustive placement enumeration on small instances.
func Optimize(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	return plan(regions, jobs, opts, nil, true)
}

// Fixed plans the single-datacenter baseline: every job runs in the
// named region for the whole horizon (pausing only via its temporal
// plan), with the same capacity and cap accounting as Optimize, so the
// two are directly comparable at equal iterations completed.
func Fixed(regions []Region, jobs []Job, name string, opts Options) (*Plan, error) {
	p, err := newPlanner(regions, jobs, opts)
	if err != nil {
		return nil, err
	}
	idx := p.regionIndex(name)
	if idx < 0 {
		return nil, fmt.Errorf("region: unknown region %q", name)
	}
	return p.solveAll(jobs, fixedCandidates(idx), false)
}

// fixedCandidates restricts a solve to the single-region start idx.
func fixedCandidates(idx int) func(*planner, *Job) ([][]int, error) {
	return func(p *planner, j *Job) ([][]int, error) {
		return [][]int{p.starts(j)[idx]}, nil
	}
}

// BestFixed plans Fixed for every region and returns the best plan
// (feasible first, then lowest objective) — the strongest baseline
// that never moves a job after choosing one datacenter for the fleet.
// Validation and the common cell grid are built once and shared; the
// per-region solves are independent, so they run concurrently on
// planner forks and reduce in region order.
func BestFixed(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	p, err := newPlanner(regions, jobs, opts)
	if err != nil {
		return nil, err
	}
	plans := make([]*Plan, len(regions))
	errs := make([]error, len(regions))
	parallelFor(p.workers, len(regions), func(_, i int) {
		plans[i], errs[i] = p.fork().solveAll(jobs, fixedCandidates(i), false)
	})
	var best *Plan
	for i := range plans {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pl := plans[i]
		if best == nil || (pl.Feasible && !best.Feasible) ||
			(pl.Feasible == best.Feasible && pl.Total() < best.Total()) {
			best = pl
		}
	}
	return best, nil
}

// NoMigration plans the placement-without-moves baseline: each job
// independently picks its single best region (sequentially, capacity
// respected) and stays there — spatial choice without the temporal
// freedom to chase another region's clean hours.
func NoMigration(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	return plan(regions, jobs, opts, func(p *planner, j *Job) ([][]int, error) {
		return p.starts(j)[:len(p.regions)], nil
	}, false)
}

// plan is the shared orchestration: build the planner, then solve.
func plan(regions []Region, jobs []Job, opts Options, candidates func(*planner, *Job) ([][]int, error), descend bool) (*Plan, error) {
	p, err := newPlanner(regions, jobs, opts)
	if err != nil {
		return nil, err
	}
	return p.solveAll(jobs, candidates, descend)
}

// solveAll plans the jobs sequentially with committed usage, optional
// candidate restriction (baselines), and optional descent +
// improvement rounds (the full planner).
func (p *planner) solveAll(jobs []Job, candidates func(*planner, *Job) ([][]int, error), descend bool) (*Plan, error) {
	solve := func(i int) (*eval, error) {
		j := &jobs[i]
		if descend {
			return p.planJob(j)
		}
		cands, err := candidates(p, j)
		if err != nil {
			return nil, err
		}
		var best *eval
		for _, pl := range cands {
			ev, err := p.evaluateFull(&p.scratch[0], j, pl)
			if err != nil {
				return nil, err
			}
			if ev.better(best) {
				best = ev
			}
		}
		return best, nil
	}

	// run plans the jobs sequentially in the given order (with fresh
	// usage), then refines with Gauss-Seidel rounds.
	run := func(order []int) ([]*eval, error) {
		p.usage = newUsage(len(p.regions), len(p.cells))
		evals := make([]*eval, len(jobs))
		for _, i := range order {
			ev, err := solve(i)
			if err != nil {
				return nil, err
			}
			evals[i] = ev
			p.usage.apply(&jobs[i], ev, +1)
		}
		if !descend {
			return evals, nil
		}
		gaussSeidel := func() (bool, error) {
			improved := false
			for _, i := range order {
				p.usage.apply(&jobs[i], evals[i], -1)
				// Re-evaluate the incumbent against the others' current
				// placements: its stored cost may be stale.
				cur, err := p.evaluateFull(&p.scratch[0], &jobs[i], evals[i].placement)
				if err != nil {
					return false, err
				}
				ev, err := solve(i)
				if err != nil {
					return false, err
				}
				if ev.better(cur) {
					cur = ev
					improved = true
				}
				evals[i] = cur
				p.usage.apply(&jobs[i], evals[i], +1)
			}
			return improved, nil
		}
		for round := 0; round < p.opts.rounds(); round++ {
			gs, err := gaussSeidel()
			if err != nil {
				return nil, err
			}
			sw, err := p.swapRefine(jobs, evals)
			if err != nil {
				return nil, err
			}
			if !gs && !sw {
				break
			}
		}
		return evals, nil
	}

	// Sequential planning is order-dependent under capacity contention:
	// the full planner tries every job order on small fleets (rotations
	// on larger ones) and keeps the best joint outcome; baselines keep
	// input order, matching their "first come, first placed" story.
	var best []*eval
	for _, order := range orders(len(jobs), descend) {
		evals, err := run(order)
		if err != nil {
			return nil, err
		}
		if best == nil || jointBetter(evals, best) {
			best = evals
		}
	}
	return assemble(p, jobs, best), nil
}

// placementFits reports whether a placement fits every cell's GPU
// capacity against the usage currently committed.
func (p *planner) placementFits(j *Job, placement []int) bool {
	for k, r := range placement {
		if r >= 0 && !p.allowed(j, r, k) {
			return false
		}
	}
	return true
}

// swapRefine runs pairwise segment-swap descent: for every job pair
// and every contiguous cell range, exchange the two jobs' placements
// over the range and keep the swap when the joint outcome improves.
// This is the move capacity contention demands — two jobs wanting the
// same region's clean hours must trade them, which no single-job
// re-plan can express — and it returns whether anything improved.
func (p *planner) swapRefine(jobs []Job, evals []*eval) (bool, error) {
	if len(jobs) < 2 {
		return false, nil
	}
	K := len(p.cells)
	improved := false
	for a := 0; a < len(jobs); a++ {
		for b := a + 1; b < len(jobs); b++ {
			for i := 0; i < K; i++ {
				for k := i; k < K; k++ {
					pa := append([]int(nil), evals[a].placement...)
					pb := append([]int(nil), evals[b].placement...)
					changed := false
					for c := i; c <= k; c++ {
						if pa[c] != pb[c] {
							changed = true
						}
						pa[c], pb[c] = pb[c], pa[c]
					}
					if !changed {
						continue
					}
					p.usage.apply(&jobs[a], evals[a], -1)
					p.usage.apply(&jobs[b], evals[b], -1)
					var evA, evB *eval
					var err error
					if p.placementFits(&jobs[b], pb) {
						evB, err = p.evaluateFull(&p.scratch[0], &jobs[b], pb)
						if err == nil {
							p.usage.apply(&jobs[b], evB, +1)
							if p.placementFits(&jobs[a], pa) {
								evA, err = p.evaluateFull(&p.scratch[0], &jobs[a], pa)
							}
							p.usage.apply(&jobs[b], evB, -1)
						}
					}
					p.usage.apply(&jobs[a], evals[a], +1)
					p.usage.apply(&jobs[b], evals[b], +1)
					if err != nil {
						return false, err
					}
					if evA == nil || evB == nil {
						continue
					}
					if jointBetter([]*eval{evA, evB}, []*eval{evals[a], evals[b]}) {
						p.usage.apply(&jobs[a], evals[a], -1)
						p.usage.apply(&jobs[b], evals[b], -1)
						evals[a], evals[b] = evA, evB
						p.usage.apply(&jobs[a], evals[a], +1)
						p.usage.apply(&jobs[b], evals[b], +1)
						improved = true
					}
				}
			}
		}
	}
	return improved, nil
}

// orders lists the job orders to try: input order for baselines, all
// permutations up to 3 jobs (rotations beyond, so the order count
// stays linear in fleet size) for the planner.
func orders(n int, descend bool) [][]int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	if !descend || n == 1 {
		return [][]int{id}
	}
	if n <= 3 {
		var out [][]int
		var permute func(rest, acc []int)
		permute = func(rest, acc []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), acc...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				permute(next, append(acc, rest[i]))
			}
		}
		permute(id, nil)
		return out
	}
	out := make([][]int, n)
	for s := 0; s < n; s++ {
		rot := make([]int, n)
		for i := range rot {
			rot[i] = id[(i+s)%n]
		}
		out[s] = rot
	}
	return out
}

// jointBetter compares two joint outcomes: fewer infeasible jobs wins,
// then the lower total objective (migration included).
func jointBetter(a, b []*eval) bool {
	infeas := func(evs []*eval) (n int, cost float64) {
		for _, ev := range evs {
			if !ev.feasible {
				n++
			}
			cost += ev.cost
		}
		return n, cost
	}
	an, ac := infeas(a)
	bn, bc := infeas(b)
	if an != bn {
		return an < bn
	}
	return ac < bc-1e-9*(1+math.Abs(bc))
}

// assemble turns the per-job evaluations into the public Plan.
func assemble(p *planner, jobs []Job, evals []*eval) *Plan {
	out := &Plan{
		Objective: p.opts.Objective,
		HorizonS:  p.horizon,
		Cells:     p.cells,
		Feasible:  true,
	}
	for i := range p.regions {
		out.Regions = append(out.Regions, p.regions[i].Name)
	}
	for i := range jobs {
		ev := evals[i]
		arrivals := map[int]bool{}
		for _, m := range migrations(p.origin(&jobs[i]), ev.placement) {
			arrivals[m] = true
		}
		jp := JobPlan{
			JobID:              jobs[i].ID,
			Temporal:           ev.plan,
			Migrations:         ev.mig.count,
			MigrationDowntimeS: ev.mig.downtimeS,
			MigrationEnergyJ:   ev.mig.energyJ,
			MigrationCarbonG:   ev.mig.carbonG,
			MigrationCostUSD:   ev.mig.costUSD,
			Account: pln.Account{
				EnergyJ: ev.plan.EnergyJ + ev.mig.energyJ,
				CarbonG: ev.plan.CarbonG + ev.mig.carbonG,
				CostUSD: ev.plan.CostUSD + ev.mig.costUSD,
			},
			Feasible: ev.feasible,
		}
		for k, c := range p.cells {
			jp.Assignments = append(jp.Assignments, Assignment{
				Cell: k, StartS: c.StartS, EndS: c.EndS,
				Region: ev.placement[k], Migrate: arrivals[k],
			})
		}
		if !ev.feasible {
			out.Feasible = false
		}
		out.EnergyJ += jp.EnergyJ
		out.CarbonG += jp.CarbonG
		out.CostUSD += jp.CostUSD
		out.Jobs = append(out.Jobs, jp)
	}
	return out
}
