#!/usr/bin/env bash
# Profiles one benchmark from the planning-stack suite and prints the
# flat-top CPU and allocation summaries — the loop that produced the
# PR10 planner speedups (heap greedy, evaluation memo, scratch reuse).
# Raw pprof files land in a temp dir (printed at the end) for deeper
# digging with `go tool pprof`.
#
# Usage: scripts/profile.sh [bench-regexp] [benchtime]
#   scripts/profile.sh                                # RegionPlan/jobs-2
#   scripts/profile.sh 'BenchmarkGridOptimize/intervals-288' 5s
set -euo pipefail
cd "$(dirname "$0")/.."

bench="${1:-BenchmarkRegionPlan/jobs-2}"
benchtime="${2:-5s}"
dir="$(mktemp -d "${TMPDIR:-/tmp}/perseus-profile.XXXXXX")"

go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem \
  -cpuprofile "$dir/cpu.out" -memprofile "$dir/mem.out" -o "$dir/bench.test" .

echo
echo "=== CPU, flat top 15 ==="
go tool pprof -top -nodecount=15 "$dir/bench.test" "$dir/cpu.out"

echo
echo "=== Allocated space, flat top 15 ==="
go tool pprof -top -nodecount=15 -sample_index=alloc_space "$dir/bench.test" "$dir/mem.out"

echo
echo "=== Allocated objects, flat top 15 ==="
go tool pprof -top -nodecount=15 -sample_index=alloc_objects "$dir/bench.test" "$dir/mem.out"

echo
echo "profiles kept in $dir (cpu.out, mem.out, bench.test)"
