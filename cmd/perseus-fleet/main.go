// Command perseus-fleet replays a datacenter-scale multi-job scenario
// through the fleet orchestrator (internal/fleet): three concurrent
// training jobs arrive, a facility power cap forces the marginal-cost
// allocator to trade iteration time across their frontiers, a straggler
// frees power for the healthy jobs, and a departure returns headroom.
//
// Usage:
//
//	perseus-fleet                       # bundled scenario, quick scale
//	perseus-fleet -cap-frac 0.85        # tighter facility envelope
//	perseus-fleet -gpu A40 -scale full  # paper-fidelity frontiers
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"perseus/internal/experiments"
	"perseus/internal/fleet"
	"perseus/internal/gpu"
)

func main() {
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	capFrac := flag.Float64("cap-frac", 0.9, "power cap as a fraction of the fleet's uncapped draw")
	scale := flag.String("scale", "quick", "quick | full (paper parameters; slow)")
	flag.Parse()

	g, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	fmt.Printf("characterizing %d fleet workloads on %s...\n", len(experiments.FleetWorkloads()), g.Name)
	built, err := experiments.BuildFleetScenario(g, sc, *capFrac)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncapped fleet draw %.0f W; cap %.0f W (%.0f%%)\n\n",
		built.UncappedW, built.CapW, 100**capFrac)

	fmt.Println("scenario trace:")
	for _, e := range built.Scenario.Events {
		switch e.Kind {
		case fleet.EventArrive:
			fmt.Printf("  t=%4.0fs  %-9s %s\n", e.At, e.Kind, e.Job.ID)
		case fleet.EventDepart:
			fmt.Printf("  t=%4.0fs  %-9s %s\n", e.At, e.Kind, e.JobID)
		case fleet.EventStraggler:
			fmt.Printf("  t=%4.0fs  %-9s %s (%.2fx)\n", e.At, e.Kind, e.JobID, e.Factor)
		case fleet.EventSetCap:
			fmt.Printf("  t=%4.0fs  %-9s %.0f W\n", e.At, e.Kind, e.CapW)
		}
	}
	fmt.Println()

	series, err := fleet.Replay(built.Scenario)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []*experiments.Table{
		experiments.FleetTimelineTable(series),
		experiments.FleetJobsTable(series),
		experiments.FleetSummaryTable(series),
	} {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
