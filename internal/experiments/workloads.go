// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, Appendices A/H): workload definitions from Tables 8-10,
// the strong-scaling emulation grid of Table 5, and drivers producing the
// same rows and series the paper reports. The drivers are shared by
// cmd/perseus-tables, the repository benchmarks, and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"

	"perseus/internal/cluster"
	"perseus/internal/dag"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// WorkloadConfig is one evaluation workload (paper Tables 8-10).
type WorkloadConfig struct {
	// Display is the paper's name for the workload, e.g. "GPT-3 1.3B".
	Display string

	// Model is the model-zoo variant name.
	Model string

	// Stages is the pipeline-parallel degree.
	Stages int

	// MicrobatchSize and Microbatches follow the paper's tables; the
	// global batch size is their product times DataParallel.
	MicrobatchSize, Microbatches int

	// DataParallel and TensorParallel degrees (1 unless 3D parallelism).
	DataParallel, TensorParallel int

	// Schedule names the pipeline schedule; default "1f1b".
	Schedule string

	// Chunks is the number of model chunks per stage for interleaved
	// schedules; 0 means 1.
	Chunks int
}

// A100Workloads returns the four-stage pipeline workloads run on A100
// PCIe GPUs (paper Table 10).
func A100Workloads() []WorkloadConfig {
	return []WorkloadConfig{
		{Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 4, MicrobatchSize: 4, Microbatches: 128},
		{Display: "BERT 1.3B", Model: "bert-1.3b", Stages: 4, MicrobatchSize: 8, Microbatches: 32},
		{Display: "T5 3B", Model: "t5-3b", Stages: 4, MicrobatchSize: 4, Microbatches: 32},
		{Display: "Bloom 3B", Model: "bloom-3b", Stages: 4, MicrobatchSize: 4, Microbatches: 128},
		{Display: "Wide-ResNet 1.5B", Model: "wide-resnet101", Stages: 4, MicrobatchSize: 64, Microbatches: 24},
	}
}

// A40Workloads returns the eight-stage pipeline workloads run on A40 GPUs
// (paper Table 9).
func A40Workloads() []WorkloadConfig {
	return []WorkloadConfig{
		{Display: "GPT-3 2.7B", Model: "gpt3-2.7b", Stages: 8, MicrobatchSize: 4, Microbatches: 256},
		{Display: "BERT 1.3B", Model: "bert-1.3b", Stages: 8, MicrobatchSize: 8, Microbatches: 32},
		{Display: "T5 3B", Model: "t5-3b", Stages: 8, MicrobatchSize: 4, Microbatches: 32},
		{Display: "Bloom 3B", Model: "bloom-3b", Stages: 8, MicrobatchSize: 4, Microbatches: 128},
		{Display: "Wide-ResNet 1.5B", Model: "wide-resnet101", Stages: 8, MicrobatchSize: 32, Microbatches: 48},
	}
}

// ThreeDWorkload returns the 3D-parallelism workload (paper Table 8):
// GPT-3 6.7B with data-parallel 2, tensor-parallel 2, pipeline-parallel 4
// on A40s.
func ThreeDWorkload() WorkloadConfig {
	return WorkloadConfig{
		Display: "GPT-3 6.7B (DP2 TP2 PP4)", Model: "gpt3-6.7b",
		Stages: 4, MicrobatchSize: 4, Microbatches: 128,
		DataParallel: 2, TensorParallel: 2,
	}
}

// Scale trades experiment fidelity for runtime.
type Scale struct {
	// MaxMicrobatches caps the per-pipeline microbatch count (0 = paper
	// value). Intrinsic savings depend on the warm-up/steady-state ratio
	// (paper §6.3), so capping changes absolute numbers slightly while
	// preserving ordering and shape.
	MaxMicrobatches int

	// TargetSteps controls the optimizer's unit time τ: τ is chosen so
	// the frontier has about this many points (at least the paper's
	// 1 ms). 0 means 1500.
	TargetSteps int
}

// Full runs experiments at the paper's parameters.
var Full = Scale{}

// Quick is the reduced fidelity used by tests and benchmarks.
var Quick = Scale{MaxMicrobatches: 12, TargetSteps: 300}

func (sc Scale) microbatches(m int) int {
	if sc.MaxMicrobatches > 0 && m > sc.MaxMicrobatches {
		return sc.MaxMicrobatches
	}
	return m
}

func (sc Scale) targetSteps() int {
	if sc.TargetSteps <= 0 {
		return 1500
	}
	return sc.TargetSteps
}

// System bundles one workload's runnable state: the cluster spec, the
// computation DAG, and the characterized time-energy frontier.
type System struct {
	Config   WorkloadConfig
	GPU      *gpu.Model
	Spec     cluster.Spec
	Frontier *frontier.Frontier

	// Base is the all-max-frequency simulation without stragglers: the
	// default mode of operation every savings number is relative to.
	Base cluster.Result
}

// BuildSystem assembles and characterizes a workload on a GPU model.
func BuildSystem(cfg WorkloadConfig, g *gpu.Model, sc Scale) (*System, error) {
	m, err := model.ByName(cfg.Model)
	if err != nil {
		return nil, err
	}
	schedName := cfg.Schedule
	if schedName == "" {
		schedName = "1f1b"
	}
	chunks := cfg.Chunks
	if chunks == 0 {
		chunks = 1
	}
	part, err := partition.MinImbalance(m.LayerCosts(), cfg.Stages*chunks)
	if err != nil {
		return nil, err
	}
	tp := cfg.TensorParallel
	if tp == 0 {
		tp = 1
	}
	prof, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: cfg.Stages, Chunks: chunks,
		Partition: part.Boundaries, MicrobatchSize: cfg.MicrobatchSize,
		TensorParallel: tp,
	})
	if err != nil {
		return nil, err
	}
	micro := sc.microbatches(cfg.Microbatches)
	s, err := sched.ByName(schedName, cfg.Stages, micro, chunks)
	if err != nil {
		return nil, err
	}
	spec := cluster.Spec{
		Schedule:       s,
		Profile:        prof,
		DataParallel:   cfg.DataParallel,
		TensorParallel: tp,
	}

	unit := autoUnit(s, prof, sc.targetSteps())
	// Initial durations are placeholders; Characterize resets every
	// computation to its minimum-energy duration (Algorithm 1 line 1).
	graph, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		return nil, err
	}
	f, err := frontier.Characterize(graph, prof, frontier.Options{Unit: unit})
	if err != nil {
		return nil, err
	}
	base, err := cluster.Simulate(spec, cluster.PlanAllMax(s, g), nil)
	if err != nil {
		return nil, err
	}
	return &System{Config: cfg, GPU: g, Spec: spec, Frontier: f, Base: base}, nil
}

// autoUnit picks τ so the frontier spans roughly targetSteps points,
// never finer than the paper's 1 ms.
func autoUnit(s *sched.Schedule, prof *profile.Profile, targetSteps int) float64 {
	span := func(slow bool) float64 {
		g, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
		if err != nil {
			return 0
		}
		est := make([]float64, len(g.Dur))
		for _, v := range g.Topo() {
			var dv float64
			if int(v) < len(g.Ops) {
				tp, err := prof.For(g.Ops[v])
				if err == nil {
					if slow {
						dv = tp.MaxTime()
					} else {
						dv = tp.MinTime()
					}
				}
			}
			for _, w := range g.Succ[v] {
				if t := est[v] + dv; t > est[w] {
					est[w] = t
				}
			}
		}
		return est[g.Sink]
	}
	delta := span(true) - span(false)
	unit := delta / float64(targetSteps)
	// Quantization must stay fine relative to individual computations,
	// or rounding planned durations dominates the schedule: cap τ at an
	// eighth of the fastest computation.
	minComp := math.Inf(1)
	for _, tp := range prof.Types {
		if t := tp.MinTime(); t < minComp {
			minComp = t
		}
	}
	if cap := minComp / 8; unit > cap {
		unit = cap
	}
	if unit < 1e-3 {
		unit = 1e-3
	}
	return unit
}

// PerseusPlan returns the frequency plan for an anticipated straggler
// iteration time tPrime (Eq. 2: T_opt = min(T*, T')); pass the frontier's
// Tmin (or 0) for the no-straggler schedule.
func (sys *System) PerseusPlan(tPrime float64) cluster.Plan {
	if tPrime <= 0 {
		tPrime = sys.Frontier.Tmin()
	}
	return cluster.Plan(sys.Frontier.Lookup(tPrime).Plan())
}

// SimulatePlan runs the workload under one shared plan without stragglers.
func (sys *System) SimulatePlan(plan cluster.Plan) (cluster.Result, error) {
	return cluster.Simulate(sys.Spec, plan, nil)
}

// MinEnergyPlan returns the plan where every computation runs at its
// minimum-energy frequency: the upper bound for savings (paper §2.4).
func (sys *System) MinEnergyPlan() (cluster.Plan, error) {
	plan := make(cluster.Plan, len(sys.Spec.Schedule.Ops))
	for i, op := range sys.Spec.Schedule.Ops {
		if op.Kind == sched.Constant {
			continue
		}
		tp, err := sys.Spec.Profile.For(op)
		if err != nil {
			return nil, err
		}
		plan[i] = tp.Points[len(tp.Points)-1].Freq
	}
	return plan, nil
}

func pct(x float64) string { return fmt.Sprintf("%.1f", 100*x) }
