// Grid: shift a training job's work into the day's clean hours.
//
// A characterized frontier gives the marginal energy cost of running at
// any speed between T_min and T*. When the grid's carbon intensity
// swings over the day, that frontier becomes a temporal control
// surface: with deadline slack, the planner runs during the midday
// solar valley, sprints when it must, and idles through the evening
// ramp peak — at provably minimal total carbon for the iterations
// completed.
package main

import (
	"fmt"
	"log"

	"perseus/internal/experiments"
	"perseus/internal/gpu"
	"perseus/internal/grid"
)

func main() {
	sys, err := experiments.BuildSystem(experiments.WorkloadConfig{
		Display: "gpt3-1.3b", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 8,
	}, gpu.A100PCIe, experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()
	sig := grid.Diurnal24h()

	// Finish 55% of a full day's T* capacity by midnight.
	target := 0.55 * sig.Horizon() / lt.TStar()
	plan, err := grid.Optimize(lt, sig, grid.Options{Target: target})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := grid.Fixed(lt, 0, sig, grid.Options{Target: target})
	if err != nil {
		log.Fatal(err)
	}
	slow, err := grid.Fixed(lt, len(lt.Points)-1, sig, grid.Options{Target: target})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target: %.0f iterations by hour 24 (deadline slack: T* needs only %.1f h)\n\n",
		target, target*lt.TStar()/3600)
	fmt.Println("hour  gCO2/kWh  plan")
	for _, ip := range plan.Intervals {
		bar := "idle"
		if len(ip.Slices) > 0 {
			bar = fmt.Sprintf("run %4.0f min at T=%.3fs", (ip.EndS-ip.StartS-ip.IdleS)/60, lt.PointTime(ip.Slices[0].Point))
		}
		fmt.Printf("%4.0f  %8.0f  %s\n", ip.StartS/3600, ip.CarbonGPerKWh, bar)
	}
	fmt.Printf("\n%-22s %10s %12s\n", "strategy", "carbon(kg)", "vs fast")
	for _, row := range []struct {
		name string
		p    *grid.Plan
	}{{"always-Tmin", fast}, {"static min-energy", slow}, {"grid-aware", plan}} {
		fmt.Printf("%-22s %10.3f %+11.1f%%\n", row.name, row.p.CarbonG/1e3,
			100*(row.p.CarbonG-fast.CarbonG)/fast.CarbonG)
	}
}
