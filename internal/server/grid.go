package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// GridSignalRequest installs a grid trace and (optionally) the default
// temporal-planning objective.
type GridSignalRequest struct {
	Signal    grid.Signal `json:"signal"`
	Objective string      `json:"objective,omitempty"`
}

// GridSignalResponse summarizes the installed signal.
type GridSignalResponse struct {
	Name      string  `json:"name"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
	Objective string  `json:"objective"`
}

// EmissionsResponse is a job's cumulative emissions accounting since
// characterization: deployed-schedule energy integrated against the
// grid signal (cyclically beyond its horizon).
type EmissionsResponse struct {
	JobID string `json:"job_id"`

	// Ready is false until the job is characterized and drawing power.
	Ready bool `json:"ready"`

	// SinceS is the accounted wall-clock span in seconds.
	SinceS float64 `json:"since_s"`

	// EnergyJ, CarbonG, and CostUSD are the cumulative totals. Carbon
	// and cost stay zero while no signal is installed.
	EnergyJ float64 `json:"energy_j"`
	CarbonG float64 `json:"carbon_g"`
	CostUSD float64 `json:"cost_usd"`

	// PredCarbonG and PredCostUSD accrue the same draw at the latest
	// issued forecast's rates (zero until POST /grid/forecast; global
	// signal only — a placed job accrues at its region's rates, which
	// the forecast does not cover). DriftCarbonG is realized minus
	// predicted over exactly the forecast-covered spans: positive means
	// the grid ran dirtier than forecast.
	PredCarbonG  float64 `json:"pred_carbon_g"`
	PredCostUSD  float64 `json:"pred_cost_usd"`
	DriftCarbonG float64 `json:"drift_carbon_g"`
}

func (s *Server) handleGridSignal(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req GridSignalRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.setGridSignal(r.Context(), req.Signal, req.Objective)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	case http.MethodGet:
		s.st.mu.Lock()
		sig := s.st.signal
		s.st.mu.Unlock()
		if sig == nil {
			http.Error(w, "no grid signal installed", http.StatusNotFound)
			return
		}
		writeJSON(w, sig)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// SetGridSignal validates and installs a grid trace, anchoring its
// time 0 at the current wall clock, and sets the default planning
// objective ("" keeps carbon). Emissions accrued so far are settled
// against the previous signal first, and all forecast and
// rolling-horizon re-planning state is dropped: a forecast of the old
// trace priced on the new one — or a frozen schedule prefix measured
// against the old anchor — would silently corrupt every predicted
// account downstream. Operators re-POST /grid/forecast after a signal
// change. The plan-cache epoch advances, so every cached plan of the
// old signal is invalidated.
func (s *Server) SetGridSignal(sig grid.Signal, objective string) (GridSignalResponse, error) {
	return s.setGridSignal(context.Background(), sig, objective)
}

func (s *Server) setGridSignal(ctx context.Context, sig grid.Signal, objective string) (GridSignalResponse, error) {
	obj, err := grid.ParseObjective(objective)
	if err != nil {
		return GridSignalResponse{}, err
	}
	if err := sig.Validate(); err != nil {
		return GridSignalResponse{}, err
	}
	// Settle every job's accounting under the old signal before the
	// rates change.
	gs := s.st.gridState()
	s.st.settleAll(gs)
	st := s.st
	st.mu.Lock()
	st.signal = &sig
	st.sigStart = gs.now
	st.meanG = sig.MeanCarbonGPerKWh() / grid.JoulesPerKWh
	st.objective = obj
	st.fspec = nil
	st.fcast = nil
	st.fcastAt = time.Time{}
	st.epoch++
	st.mu.Unlock()
	s.cache.clear()
	s.hub.bump(topicPlanEpoch)
	s.replanMu.Lock()
	s.replans = map[string]*replanState{}
	s.replanMu.Unlock()
	s.ctrl.reset()
	s.obs.ring.Emit(gs.now, "signal.install", 0, traceKV(ctx,
		"name", sig.Name, "intervals", strconv.Itoa(len(sig.Intervals)),
		"objective", string(obj))...)
	return GridSignalResponse{
		Name:      sig.Name,
		Intervals: len(sig.Intervals),
		HorizonS:  sig.Horizon(),
		Objective: string(obj),
	}, nil
}

func (s *Server) handleGridPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/grid/plan/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	target, err := parse("iterations")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad iterations: %v", err), http.StatusBadRequest)
		return
	}
	deadline, err := parse("deadline")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad deadline: %v", err), http.StatusBadRequest)
		return
	}
	objective := q.Get("objective")
	wait, ok := parseWait(w, r)
	if !ok {
		return
	}
	fail := func(err error) {
		status := http.StatusBadRequest
		if _, ok := s.st.job(id); !ok {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
	}
	pb, err := s.planProblem(r.Context(), id, target, deadline, objective)
	if err != nil {
		fail(err)
		return
	}
	// Conditional fetch: the ETag names the plan's cache key — epoch,
	// frontier hash, and request params — so it changes exactly when the
	// plan the request resolves to would. If the client's validator still
	// matches, park (?wait=) on the two topics whose bumps can change the
	// key: the plan-input epoch and the job's own topic (its frontier may
	// be re-characterized).
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		until := time.Now().Add(wait)
		for etagMatch(inm, planETag(pb.key)) {
			wEpoch := s.hub.watch(topicPlanEpoch)
			wSched := s.hub.watch(topicSchedule(id))
			// Re-snapshot after subscribing: a bump between the first
			// snapshot and the watch calls would otherwise be lost.
			next, err := s.planProblem(r.Context(), id, target, deadline, objective)
			if err != nil {
				fail(err)
				return
			}
			if next.key != pb.key {
				pb = next
				continue
			}
			switch s.parkWaiter(r.Context(), id, until, wEpoch, wSched) {
			case wakeBumped:
				if pb, err = s.planProblem(r.Context(), id, target, deadline, objective); err != nil {
					fail(err)
					return
				}
			case wakeTimeout:
				w.Header().Set("ETag", planETag(pb.key))
				w.WriteHeader(http.StatusNotModified)
				return
			case wakeCancelled:
				return // client gone: write nothing
			}
		}
	}
	plan, err := s.solvePlan(r.Context(), pb)
	if err != nil {
		fail(err)
		return
	}
	w.Header().Set("ETag", planETag(pb.key))
	writeJSON(w, plan)
}

// planETag renders a plan cache key as an HTTP entity tag: a 64-bit
// FNV-1a hash of the key's canonical form, quoted per RFC 9110. Two
// requests that resolve to the same cache entry always carry the same
// tag, and any epoch bump or re-characterization changes it.
func planETag(key PlanKey) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key.Canonical()))
	return fmt.Sprintf("%q", "p"+strconv.FormatUint(h.Sum64(), 16))
}

// GridPlan plans a job's temporal schedule over the installed signal:
// complete target iterations by the deadline (seconds in signal time;
// 0 means the signal horizon) minimizing the objective ("" uses the
// server default). The job must be characterized and a signal
// installed.
//
// Results are cached by (plan epoch, frontier hash, request params)
// with single-flight de-duplication: identical concurrent requests
// solve once and share the plan; any signal re-install, forecast
// revision, or frontier re-characterization changes the key.
func (s *Server) GridPlan(id string, target, deadline float64, objective string) (*grid.Plan, error) {
	return s.gridPlan(context.Background(), id, target, deadline, objective)
}

// gridPlan is GridPlan with context: under a traced request it records
// store.snapshot (lock acquisition + state reads), cache.lookup, and
// planner.solve child spans; from an untraced context every span site
// is a nil-check no-op, which is what keeps the cached-plan hot path
// at its PR 6 cost.
func (s *Server) gridPlan(ctx context.Context, id string, target, deadline float64, objective string) (*grid.Plan, error) {
	pb, err := s.planProblem(ctx, id, target, deadline, objective)
	if err != nil {
		return nil, err
	}
	return s.solvePlan(ctx, pb)
}

// planProblem is one snapshotted planning problem: the cache key it
// resolves to plus the inputs a cache miss solves it from.
type planProblem struct {
	key   PlanKey
	table *frontier.LookupTable
	sig   *grid.Signal
}

// planProblem snapshots the state a grid-plan request resolves against
// right now — the plan epoch, the job's frontier table and its hash,
// the signal, and the normalized parameters — without solving
// anything. The conditional fetch path calls it alone to price an
// If-None-Match comparison at snapshot cost.
func (s *Server) planProblem(ctx context.Context, id string, target, deadline float64, objective string) (planProblem, error) {
	_, snap := obs.Child(ctx, spanStoreSnapshot)
	defer snap.End()
	snap.SetAttr("job", id)
	j, ok := s.st.job(id)
	if !ok {
		return planProblem{}, fmt.Errorf("server: unknown job %s", id)
	}
	s.st.mu.Lock()
	sig := s.st.signal
	obj := s.st.objective
	epoch := s.st.epoch
	s.st.mu.Unlock()
	if sig == nil {
		return planProblem{}, fmt.Errorf("server: no grid signal installed")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			return planProblem{}, err
		}
	}
	j.mu.Lock()
	table := j.table
	tableHash := j.tableHash
	pipes := j.req.DataParallel
	j.mu.Unlock()
	if table == nil {
		return planProblem{}, fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	return planProblem{
		key: PlanKey{
			Epoch:     epoch,
			Table:     tableHash,
			Target:    target,
			Deadline:  deadline,
			Objective: obj,
			Scale:     pipes,
		},
		table: table,
		sig:   sig,
	}, nil
}

// solvePlan resolves a snapshotted problem through the plan cache,
// solving at most once per key however many callers arrive.
func (s *Server) solvePlan(ctx context.Context, pb planProblem) (*grid.Plan, error) {
	return s.cache.do(ctx, pb.key, func(ctx context.Context) (*grid.Plan, error) {
		p := obs.InstrumentPlanner(ctx, s.wrapPlanner(&grid.Planner{Table: pb.table, Signal: pb.sig}),
			"grid", s.obs.planLatency, s.obs.planErrors)
		res, err := p.Plan(pln.Request{
			Target:     pb.key.Target,
			DeadlineS:  pb.key.Deadline,
			Objective:  pb.key.Objective,
			PowerScale: float64(pb.key.Scale),
		})
		if err != nil {
			return nil, err
		}
		return res.(*grid.Plan), nil
	})
}

// Emissions settles and returns a job's cumulative emissions
// accounting.
func (s *Server) Emissions(id string) (EmissionsResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return EmissionsResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	gs := s.st.gridState()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.accrueLocked(gs)
	resp := EmissionsResponse{JobID: id}
	if !j.accSince.IsZero() {
		resp.Ready = true
		resp.SinceS = j.accAt.Sub(j.accSince).Seconds()
		resp.EnergyJ = j.energyAccJ
		resp.CarbonG = j.carbonAccG
		resp.CostUSD = j.costAccUSD
		resp.PredCarbonG = j.predCarbonG
		resp.PredCostUSD = j.predCostUSD
		resp.DriftCarbonG = j.predRealCarbonG - j.predCarbonG
	}
	return resp, nil
}
