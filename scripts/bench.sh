#!/usr/bin/env bash
# Runs the planning-stack benchmark suite and writes a JSON trajectory
# record (BENCH_PR7.json by default). Each PR that touches the planning
# or serving hot paths appends a new BENCH_PR<N>.json so regressions
# show up as a diff, not an anecdote; scripts/bench_compare.sh diffs
# two records.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
pattern='^(BenchmarkGridOptimize|BenchmarkRegionPlan|BenchmarkRegionPlanWarm|BenchmarkFleetAllocate|BenchmarkServerPlanCold|BenchmarkServerPlanCached|BenchmarkLedgerSettle)$'

raw=$(go test -run '^$' -bench "$pattern" -benchmem .)
echo "$raw" >&2

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%d)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "benchmarks": [\n'
  echo "$raw" | awk -v procs="${GOMAXPROCS:-$(nproc)}" '
    /^Benchmark/ && /ns\/op/ {
      name = $1
      # Strip the -GOMAXPROCS suffix (absent when it is 1) without
      # eating a sub-benchmark size that happens to end in a number.
      if (procs != 1) sub("-" procs "$", "", name)
      ns = ""; bytes = ""; allocs = ""
      for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, ns, (bytes == "" ? 0 : bytes), (allocs == "" ? 0 : allocs)
    }
    END { printf "\n" }
  '
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out" >&2
