package forecast

import (
	"fmt"
	"math"
	"sort"

	"perseus/internal/grid"
)

// Model forecasts one per-interval series (carbon or price) from its
// revealed history. Models are deliberately simple and deterministic:
// the point of the package is measuring how planning degrades under
// forecast error and recovers under re-planning, not squeezing the last
// percent out of the predictor.
type Model interface {
	Name() string

	// Predict forecasts h values following the history (one value per
	// signal interval, oldest first, most recent last) given the
	// series' seasonal period in intervals. It returns the point
	// forecasts and the per-lead half-width of the residual-quantile
	// band at the given level — the empirical level-quantile of the
	// model's own in-sample absolute residuals, widened with lead where
	// the model's error accumulates.
	Predict(history []float64, period, h int, level float64) (point, spread []float64)
}

// ModelByName maps a model name to a zero-configured instance.
func ModelByName(name string) (Model, error) {
	switch name {
	case "persistence":
		return &Persistence{}, nil
	case "seasonal":
		return &SeasonalNaive{}, nil
	case "smoothed":
		return &Smoothed{}, nil
	}
	return nil, fmt.Errorf("forecast: unknown model %q (want persistence, seasonal, or smoothed)", name)
}

// Persistence forecasts every future value as the last observed one —
// the canonical no-skill baseline every other model must beat. Its
// bands widen with the square root of the lead, scaled by the quantile
// of observed step-to-step changes.
type Persistence struct{}

// Name implements Model.
func (*Persistence) Name() string { return "persistence" }

// Predict implements Model.
func (*Persistence) Predict(history []float64, period, h int, level float64) (point, spread []float64) {
	point = make([]float64, h)
	spread = make([]float64, h)
	if len(history) == 0 {
		return point, spread
	}
	last := history[len(history)-1]
	var res []float64
	for t := 1; t < len(history); t++ {
		res = append(res, math.Abs(history[t]-history[t-1]))
	}
	base := quantile(res, level)
	for k := 0; k < h; k++ {
		point[k] = last
		spread[k] = base * math.Sqrt(float64(k+1))
	}
	return point, spread
}

// SeasonalNaive forecasts each future value as the observed value one
// seasonal period earlier — the diurnal decomposition of a 24 h grid
// trace. Its residuals (this hour vs. the same hour yesterday) do not
// accumulate with lead, so its bands stay flat. With less than one
// period of history it degrades to persistence.
type SeasonalNaive struct{}

// Name implements Model.
func (*SeasonalNaive) Name() string { return "seasonal" }

// Predict implements Model.
func (*SeasonalNaive) Predict(history []float64, period, h int, level float64) (point, spread []float64) {
	n := len(history)
	if period <= 0 || n < period {
		return (&Persistence{}).Predict(history, period, h, level)
	}
	point = make([]float64, h)
	spread = make([]float64, h)
	var res []float64
	for t := period; t < n; t++ {
		res = append(res, math.Abs(history[t]-history[t-period]))
	}
	base := quantile(res, level)
	for k := 0; k < h; k++ {
		point[k] = history[n-period+((k)%period)]
		spread[k] = base
	}
	return point, spread
}

// Smoothed is the exponential-smoothing / AR(1) hybrid: it removes the
// seasonal component (per-phase means of the revealed history), tracks
// the current deseasonalized anomaly with an exponentially smoothed
// level, and decays that anomaly into the future at a fitted (or
// fixed) AR(1) coefficient. Bands grow with the accumulated AR
// innovation variance, scaled by the quantile of one-step residuals.
type Smoothed struct {
	// Alpha is the smoothing factor in (0, 1]; 0 means 0.5.
	Alpha float64

	// Phi is the AR(1) decay in [0, 1); 0 means fit from the history's
	// lag-1 autocorrelation (clamped to [0, 0.95]).
	Phi float64
}

// Name implements Model.
func (*Smoothed) Name() string { return "smoothed" }

// Predict implements Model.
func (m *Smoothed) Predict(history []float64, period, h int, level float64) (point, spread []float64) {
	n := len(history)
	point = make([]float64, h)
	spread = make([]float64, h)
	if n == 0 {
		return point, spread
	}
	alpha := m.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}

	// Seasonal component: per-phase means over whole periods (falling
	// back to the overall mean with less than one period of history).
	season := make([]float64, max(period, 1))
	if period > 0 && n >= period {
		count := make([]int, period)
		for t := 0; t < n; t++ {
			season[t%period] += history[t]
			count[t%period]++
		}
		for p := range season {
			if count[p] > 0 {
				season[p] /= float64(count[p])
			}
		}
	} else {
		var mean float64
		for _, v := range history {
			mean += v
		}
		mean /= float64(n)
		for p := range season {
			season[p] = mean
		}
	}
	at := func(t int) float64 { return season[t%len(season)] }

	// Deseasonalized anomalies, their smoothed level, and the fitted
	// AR(1) coefficient.
	anom := make([]float64, n)
	for t := 0; t < n; t++ {
		anom[t] = history[t] - at(t)
	}
	phi := m.Phi
	if phi <= 0 || phi >= 1 {
		var num, den float64
		for t := 1; t < n; t++ {
			num += anom[t] * anom[t-1]
			den += anom[t-1] * anom[t-1]
		}
		phi = 0.8
		if den > 0 {
			phi = math.Min(0.95, math.Max(0, num/den))
		}
	}
	level_ := anom[0]
	var res []float64
	for t := 1; t < n; t++ {
		pred := phi * level_
		res = append(res, math.Abs(anom[t]-pred))
		level_ = alpha*anom[t] + (1-alpha)*level_
	}
	base := quantile(res, level)

	acc := 0.0
	decay := phi
	for k := 0; k < h; k++ {
		point[k] = at(n+k) + decay*level_
		acc += decay * decay
		spread[k] = base * math.Sqrt(1+acc)
		decay *= phi
	}
	return point, spread
}

// quantile returns the empirical level-quantile of the values by
// nearest rank (0 for an empty set).
func quantile(vals []float64, level float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(math.Ceil(level*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// FromHistory is the model-driven provider: it reveals the truth trace
// up to the issue time (the operator meters the current interval's
// actual rates) and forecasts the remainder with a Model, one series
// each for carbon and price, with residual-quantile bands. The truth's
// own interval grid, repeated cyclically, is the forecast step grid,
// and the truth's intervals-per-cycle is the seasonal period.
type FromHistory struct {
	// Truth is the actual trace the revealed history is read from.
	Truth *grid.Signal

	// Model forecasts both series; nil means SeasonalNaive.
	Model Model

	// HorizonS is the forecast coverage in seconds; 0 means the truth
	// horizon.
	HorizonS float64

	// Level is the band quantile level; 0 means 0.9.
	Level float64
}

// Name implements Provider.
func (p *FromHistory) Name() string {
	if p.Model == nil {
		return "seasonal"
	}
	return p.Model.Name()
}

// At implements Provider.
func (p *FromHistory) At(t float64) (*Forecast, error) {
	if err := checkIssueTime(p.Truth, t); err != nil {
		return nil, err
	}
	model := p.Model
	if model == nil {
		model = &SeasonalNaive{}
	}
	level := p.Level
	if level == 0 {
		level = 0.9
	}
	if !(level > 0.5) || level >= 1 {
		return nil, fmt.Errorf("forecast: band level must be in (0.5, 1), got %v", level)
	}
	steps := ExtendCyclic(p.Truth, horizonOr(p.HorizonS, p.Truth))
	k := revealedSteps(steps, t)
	histC := make([]float64, k)
	histP := make([]float64, k)
	for i := 0; i < k; i++ {
		histC[i] = steps.Intervals[i].CarbonGPerKWh
		histP[i] = steps.Intervals[i].PriceUSDPerKWh
	}
	h := len(steps.Intervals) - k
	period := len(p.Truth.Intervals)
	pc, sc := model.Predict(histC, period, h, level)
	pp, sp := model.Predict(histP, period, h, level)

	f := &Forecast{IssuedS: t, Level: level,
		Signal: &grid.Signal{Name: steps.Name + "/" + model.Name()}}
	for i, iv := range steps.Intervals {
		if i >= k {
			j := i - k
			iv.CarbonGPerKWh = math.Max(0, pc[j])
			iv.PriceUSDPerKWh = math.Max(0, pp[j])
			f.Carbon = append(f.Carbon, Band{
				Lo: math.Max(0, iv.CarbonGPerKWh-sc[j]), Hi: iv.CarbonGPerKWh + sc[j]})
			f.Price = append(f.Price, Band{
				Lo: math.Max(0, iv.PriceUSDPerKWh-sp[j]), Hi: iv.PriceUSDPerKWh + sp[j]})
		} else {
			f.Carbon = append(f.Carbon, Band{Lo: iv.CarbonGPerKWh, Hi: iv.CarbonGPerKWh})
			f.Price = append(f.Price, Band{Lo: iv.PriceUSDPerKWh, Hi: iv.PriceUSDPerKWh})
		}
		f.Signal.Intervals = append(f.Signal.Intervals, iv)
	}
	return f, nil
}

// revealedSteps counts the prefix of steps already revealed at time t:
// every interval that has started (the operator sees the current
// interval's actual rates as they are metered).
func revealedSteps(steps *grid.Signal, t float64) int {
	k := 0
	for _, iv := range steps.Intervals {
		if iv.StartS > t {
			break
		}
		k++
	}
	return k
}
