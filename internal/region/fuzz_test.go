package region

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzPlan fuzzes the joint spatio-temporal planner on random
// instances (reusing the brute-force test's generator) and asserts its
// structural invariants, matching internal/grid's FuzzOptimize:
//
//  1. GPU feasibility per (region, cell): the jobs placed in a region
//     during a cell never exceed its capacity;
//  2. slices only run where the job is placed — paused cells and
//     migration-downtime spans never execute work;
//  3. accounting identities: each job's totals equal its temporal plan
//     plus its migration charges, migration counts match the marked
//     arrival cells, and the plan totals are the per-job sums;
//  4. on capacity-unconstrained instances the planner is never worse
//     than BestFixed — every single-region placement is one of its
//     descent starts, so losing to one would break the construction.
func FuzzPlan(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(seed%3), uint8(seed%2), uint8(seed%3), seed%2 == 0)
	}
	f.Fuzz(func(t *testing.T, seed int64, nr, nj, nc uint8, contended bool) {
		rng := rand.New(rand.NewSource(seed))
		nRegions := 2 + int(nr)%2
		nJobs := 1 + int(nj)%2
		nCells := 2 + int(nc)%3
		capacity := 0
		if contended {
			capacity = 1
		}
		inst := randomBruteInstance(rng, nRegions, nJobs, nCells, capacity)
		plan, err := Optimize(inst.regions, inst.jobs, inst.opts)
		if err != nil {
			t.Fatalf("optimize failed on valid instance: %v", err)
		}

		// (1) GPU feasibility per (region, cell).
		for k := range plan.Cells {
			used := make([]int, len(inst.regions))
			for ji, jp := range plan.Jobs {
				if r := jp.Assignments[k].Region; r >= 0 {
					used[r] += inst.jobs[ji].gpus()
				}
			}
			for r := range inst.regions {
				if cap := inst.regions[r].GPUs; cap > 0 && used[r] > cap {
					t.Fatalf("cell %d region %s: %d GPUs used, capacity %d", k, inst.regions[r].Name, used[r], cap)
				}
			}
		}

		var sumEnergy, sumCarbon, sumCost float64
		for _, jp := range plan.Jobs {
			// (2) slices only run in placed cells, outside downtime.
			arrivalDowntime := map[int]float64{} // cell -> downtime end
			for _, a := range jp.Assignments {
				if a.Migrate {
					arrivalDowntime[a.Cell] = a.StartS + inst.opts.Migration.DowntimeS
				}
			}
			cellAt := func(t float64) *Assignment {
				for i := range jp.Assignments {
					a := &jp.Assignments[i]
					if t >= a.StartS-1e-9 && t < a.EndS-1e-9 {
						return a
					}
				}
				return nil
			}
			for _, ip := range jp.Temporal.Intervals {
				run := 0.0
				for _, sl := range ip.Slices {
					run += sl.Seconds
				}
				if run <= 1e-9 {
					continue
				}
				a := cellAt(ip.StartS)
				if a == nil || a.Region < 0 {
					t.Fatalf("job %s runs %v s at t=%v outside any placed cell", jp.JobID, run, ip.StartS)
				}
				// Slices run back-to-back from the interval start, so an
				// interval overlapping a downtime prefix must not start
				// inside it.
				if end, ok := arrivalDowntime[a.Cell]; ok && ip.StartS < end-1e-9 && run > 1e-9 {
					t.Fatalf("job %s runs during migration downtime [%v, %v) at t=%v",
						jp.JobID, a.StartS, end, ip.StartS)
				}
			}

			// (3) accounting identities.
			if jp.Migrations != len(migrations(Paused, placementOf(jp))) {
				t.Fatalf("job %s migration count %d does not match its placement", jp.JobID, jp.Migrations)
			}
			marked := 0
			for _, a := range jp.Assignments {
				if a.Migrate {
					marked++
				}
			}
			if marked != jp.Migrations {
				t.Fatalf("job %s marks %d arrival cells but counts %d migrations", jp.JobID, marked, jp.Migrations)
			}
			if math.Abs(jp.EnergyJ-(jp.Temporal.EnergyJ+jp.MigrationEnergyJ)) > 1e-6*(1+jp.EnergyJ) ||
				math.Abs(jp.CarbonG-(jp.Temporal.CarbonG+jp.MigrationCarbonG)) > 1e-6*(1+jp.CarbonG) ||
				math.Abs(jp.CostUSD-(jp.Temporal.CostUSD+jp.MigrationCostUSD)) > 1e-9*(1+jp.CostUSD) {
				t.Fatalf("job %s totals do not decompose into temporal + migration: %+v", jp.JobID, jp)
			}
			if want := float64(jp.Migrations) * inst.opts.Migration.DowntimeS; math.Abs(jp.MigrationDowntimeS-want) > 1e-9 {
				t.Fatalf("job %s downtime %v, want %v", jp.JobID, jp.MigrationDowntimeS, want)
			}
			sumEnergy += jp.EnergyJ
			sumCarbon += jp.CarbonG
			sumCost += jp.CostUSD
		}
		if math.Abs(sumEnergy-plan.EnergyJ) > 1e-6*(1+plan.EnergyJ) ||
			math.Abs(sumCarbon-plan.CarbonG) > 1e-6*(1+plan.CarbonG) ||
			math.Abs(sumCost-plan.CostUSD) > 1e-9*(1+plan.CostUSD) {
			t.Fatalf("plan totals are not the per-job sums")
		}

		// (4) never worse than BestFixed on uncontended instances.
		if capacity == 0 && plan.Feasible {
			bestFixed, err := BestFixed(inst.regions, inst.jobs, inst.opts)
			if err != nil {
				t.Fatal(err)
			}
			if bestFixed.Feasible && plan.Total() > bestFixed.Total()+1e-6*(1+bestFixed.Total()) {
				t.Fatalf("planner %v above BestFixed %v", plan.Total(), bestFixed.Total())
			}
		}
	})
}

// placementOf reconstructs a job's placement sequence from its
// assignments.
func placementOf(jp JobPlan) []int {
	out := make([]int, len(jp.Assignments))
	for i, a := range jp.Assignments {
		out[i] = a.Region
	}
	return out
}
