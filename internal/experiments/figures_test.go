package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"perseus/internal/gpu"
)

func TestFigure1Renders(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1(&buf, "gpt3-1.3b", Quick); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "S1 |") != 2 {
		t.Errorf("want two timelines (all-max and Perseus):\n%s", out)
	}
	if !strings.Contains(out, "energy saving") {
		t.Errorf("missing savings annotation")
	}
}

func TestFigure11FitQuality(t *testing.T) {
	tab, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows, want 8 (4 stages x fwd/bwd)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		rmse, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rmse > 5 {
			t.Errorf("stage %s %s: fit RMSE %v%% too large — the exponential should fit naturally", row[0], row[1], rmse)
		}
	}
}

func TestFigure9Summaries(t *testing.T) {
	// Only the first (smallest) panel at quick scale; the full driver is
	// exercised by cmd/perseus-tables and the benchmarks.
	panel := Figure9Configs()[0]
	sys, err := BuildSystem(panel.Config, panel.GPU, Quick)
	if err != nil {
		t.Fatal(err)
	}
	series, err := FrontierComparison(sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	tab := FrontierSummary("test", series)
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows[1:] {
		if row[3] != "yes" {
			t.Errorf("%s not dominated by Perseus", row[0])
		}
	}
}

func TestRealizedPotential(t *testing.T) {
	tab, err := RealizedPotential(gpu.A40, A40Workloads()[:1], Quick)
	if err != nil {
		t.Fatal(err)
	}
	realized, err := strconv.ParseFloat(tab.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 74% (A100) to 89% (A40) of potential realized; accept a
	// broad band but require a substantial fraction.
	if realized < 50 || realized > 101 {
		t.Errorf("realized %v%% of potential outside [50, 101]", realized)
	}
}

func TestAblationGreedy(t *testing.T) {
	tab, err := AblationGreedy(A100Workloads()[0], gpu.A100PCIe, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][2] != "yes" {
		t.Error("min-cut stepper did not reach Tmin")
	}
	minCutPts, _ := strconv.Atoi(tab.Rows[0][1])
	greedyPts, _ := strconv.Atoi(tab.Rows[1][1])
	if greedyPts > minCutPts {
		t.Errorf("greedy covered more frontier (%d) than min-cut (%d)", greedyPts, minCutPts)
	}
}

func TestAblationFit(t *testing.T) {
	tab, err := AblationFit(A100Workloads()[0], gpu.A100PCIe, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Both reach a similar T* energy (same minimum-energy durations).
	e1, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	e2, _ := strconv.ParseFloat(tab.Rows[1][3], 64)
	if e1 == 0 || e2 == 0 {
		t.Fatal("zero energies")
	}
	if diff := (e1 - e2) / e1; diff > 0.02 || diff < -0.02 {
		t.Errorf("T* energies diverge: %v vs %v", e1, e2)
	}
}

func TestAblationTau(t *testing.T) {
	tab, err := AblationTau(WorkloadConfig{
		Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 4,
	}, gpu.A100PCIe, []float64{20e-3, 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	coarse, _ := strconv.Atoi(tab.Rows[0][1])
	fine, _ := strconv.Atoi(tab.Rows[1][1])
	if fine <= coarse {
		t.Errorf("finer τ should yield more frontier points: %d vs %d", fine, coarse)
	}
}
