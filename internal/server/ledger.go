package server

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"perseus/internal/grid"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// This file wires the online energy-bloat ledger (obs.Ledger) into the
// server: per-span decomposition at every emissions settlement, the
// per-job and fleet Prometheus series, and GET /debug/ledger. All
// ledger work happens at settle points (controller ticks, emissions
// reads, operating-point changes) — never on the cached-plan hot path.

// jobLedgerSeries caches one job's per-job metric handles, created
// once at characterization so settlement never renders label blocks
// (the registry's With does a map lookup plus string build; Settle
// must stay allocation-free).
type jobLedgerSeries struct {
	realized  *obs.Counter
	floor     *obs.Counter
	residual  *obs.Counter
	migration *obs.Counter
	removed   *obs.Gauge // signed: an extreme straggler can run above Tmin's burn
	drift     *obs.Gauge
}

// ledgerComponents are the component label values of the per-job and
// fleet energy/carbon families.
var ledgerComponents = []string{"realized", "floor", "residual_bloat", "migration"}

// jobSeries materializes (or refetches) a job's per-job ledger series.
func (o *serverObs) jobSeries(id string) *jobLedgerSeries {
	return &jobLedgerSeries{
		realized:  o.jobEnergy.With(id, "realized"),
		floor:     o.jobEnergy.With(id, "floor"),
		residual:  o.jobEnergy.With(id, "residual_bloat"),
		migration: o.jobEnergy.With(id, "migration"),
		removed:   o.jobRemoved.With(id),
		drift:     o.driftG.With(id),
	}
}

// dropJobSeries deletes every per-job labeled series of a removed job,
// so the exposition's cardinality stays bounded as jobs churn.
func (o *serverObs) dropJobSeries(id string) {
	for _, comp := range ledgerComponents {
		o.jobEnergy.Delete(id, comp)
	}
	o.jobRemoved.Delete(id)
	o.driftG.Delete(id)
}

// settleLedger books one settled entry: into the ledger (ring + job +
// fleet totals) and into the exported series. The per-job handles are
// passed in pre-rendered; a nil series (job removed mid-settle) skips
// only the per-job counters.
func (o *serverObs) settleLedger(id string, series *jobLedgerSeries, e obs.LedgerEntry) {
	o.ledger.Settle(id, e)
	if series != nil {
		series.realized.Add(e.EnergyJ)
		series.floor.Add(e.FloorJ)
		series.residual.Add(e.ResidualJ)
		series.migration.Add(e.MigrationJ)
		series.removed.Add(e.RemovedJ)
	}
	o.fleetRealizedJ.Add(e.EnergyJ)
	o.fleetFloorJ.Add(e.FloorJ)
	o.fleetResidualJ.Add(e.ResidualJ)
	o.fleetMigrationJ.Add(e.MigrationJ)
	o.fleetRemovedJ.Add(e.RemovedJ)
	o.fleetRealizedC.Add(e.CarbonG)
	o.fleetFloorC.Add(e.FloorC)
	o.fleetResidualC.Add(e.ResidualC)
	o.fleetMigrationC.Add(e.MigrationC)
	o.fleetTemporalC.Add(e.TemporalSavedC)
	o.fleetDriftAbsC.Add(math.Abs(e.DriftC))
	o.fleetCoveredC.Add(e.PredRealC)
}

// settleSpanLocked decomposes the span just settled by accrueLocked
// into the bloat ledger. realized carries exactly the floats added to
// the emissions accumulators, so ledger totals and GET /jobs/{id}/
// emissions reconcile bit-for-bit. Work baselines are taken at equal
// work: the span's iterations priced at the frontier's T* point
// (floor) and Tmin point (always-fast baseline). Callers hold j.mu.
func (j *job) settleSpanLocked(gs gridState, spanStart time.Time, realized pln.Account, predC, predRealC, meanG float64) {
	if j.obs == nil || j.table == nil || len(j.table.Points) == 0 {
		return
	}
	lt := j.table
	pipes := float64(j.req.DataParallel)
	if pipes < 1 {
		pipes = 1
	}
	tdep := j.deployedTimeLocked(lt.Tmin())
	var iters float64
	if tdep > 0 {
		iters = gs.now.Sub(spanStart).Seconds() / tdep
	}
	last := len(lt.Points) - 1
	entry := obs.LedgerEntry{
		StartUnixS: float64(spanStart.UnixNano()) / 1e9,
		EndUnixS:   float64(gs.now.UnixNano()) / 1e9,
		Kind:       obs.LedgerKindSpan,
		BloatSpan: pln.DecomposeSpan(pln.SpanInputs{
			Realized:   realized,
			Iterations: iters,
			FloorJ:     iters * pipes * lt.Points[last].Energy,
			TminJ:      iters * pipes * lt.Points[0].Energy,
			MeanGPerJ:  meanG,
			PredC:      predC,
			PredRealC:  predRealC,
		}),
	}
	j.obs.settleLedger(j.id, j.series, entry)
}

// chargeMigrationLocked books a migration's energy overhead at the
// destination's instantaneous rates into both accounts — the emissions
// accumulators and a zero-width "migration" ledger entry — so the two
// stay reconciled and the overhead is attributed, not smeared into a
// training span. Charged only once accounting has started (an
// uncharacterized job draws no deployed power to migrate). Callers
// hold j.mu; the caller settles the preceding span first.
func (j *job) chargeMigrationLocked(gs gridState, migrationJ float64, dest *serverRegion) {
	if migrationJ <= 0 || j.accAt.IsZero() || j.obs == nil {
		return
	}
	sig, start, meanG := gs.sig, gs.start, gs.meanG
	if dest != nil {
		sig, start, meanG = dest.sig, dest.anchor, dest.meanG
	}
	var mc, musd float64
	if sig != nil {
		if iv, ok := sig.AtCyclic(gs.now.Sub(start).Seconds()); ok {
			mc = migrationJ / grid.JoulesPerKWh * iv.CarbonGPerKWh
			musd = migrationJ / grid.JoulesPerKWh * iv.PriceUSDPerKWh
		}
	}
	j.energyAccJ += migrationJ
	j.carbonAccG += mc
	j.costAccUSD += musd
	at := float64(gs.now.UnixNano()) / 1e9
	entry := obs.LedgerEntry{
		StartUnixS: at,
		EndUnixS:   at,
		Kind:       obs.LedgerKindMigration,
		BloatSpan: pln.DecomposeSpan(pln.SpanInputs{
			Realized:   pln.Account{EnergyJ: migrationJ, CarbonG: mc, CostUSD: musd},
			MigrationJ: migrationJ,
			MeanGPerJ:  meanG,
		}),
	}
	j.obs.settleLedger(j.id, j.series, entry)
}

// LedgerResponse is the GET /debug/ledger view: fleet-wide cumulative
// totals plus per-job views (registration order; one job with ?job=).
type LedgerResponse struct {
	Fleet obs.LedgerTotals    `json:"fleet"`
	Jobs  []obs.JobLedgerView `json:"jobs"`
}

// Ledger settles every job at now and returns the energy-bloat ledger:
// all jobs with entries (jobID == "") or one job's view. n caps the
// retained entries returned per job (<= 0: all). Settling first means
// the totals are current to the call, exactly like Emissions.
func (s *Server) Ledger(jobID string, n int) (LedgerResponse, error) {
	s.st.settleAll(s.st.gridState())
	resp := LedgerResponse{Fleet: s.obs.ledger.Fleet()}
	if jobID != "" {
		if _, ok := s.st.job(jobID); !ok {
			return LedgerResponse{}, fmt.Errorf("server: unknown job %s", jobID)
		}
		view, _ := s.obs.ledger.Job(jobID, n)
		resp.Jobs = []obs.JobLedgerView{view}
		return resp, nil
	}
	for _, j := range s.st.jobsInOrder() {
		if view, ok := s.obs.ledger.Job(j.id, n); ok {
			resp.Jobs = append(resp.Jobs, view)
		}
	}
	return resp, nil
}

// ledgerCSVHeader is the /debug/ledger?format=csv schema, one row per
// retained entry (documented in README's "Energy-bloat ledger").
var ledgerCSVHeader = []string{
	"job", "kind", "start_unix_s", "end_unix_s", "iterations",
	"energy_j", "carbon_g", "cost_usd",
	"floor_j", "migration_j", "residual_j", "tmin_j", "removed_j",
	"floor_c", "migration_c", "residual_c",
	"blind_c", "temporal_saved_c",
	"pred_c", "pred_real_c", "drift_c",
}

// writeLedgerCSV renders the response's entries as CSV.
func writeLedgerCSV(w io.Writer, resp LedgerResponse) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ledgerCSVHeader); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, jv := range resp.Jobs {
		for _, e := range jv.Entries {
			row := []string{
				jv.JobID, e.Kind, g(e.StartUnixS), g(e.EndUnixS), g(e.Iterations),
				g(e.EnergyJ), g(e.CarbonG), g(e.CostUSD),
				g(e.FloorJ), g(e.MigrationJ), g(e.ResidualJ), g(e.TminJ), g(e.RemovedJ),
				g(e.FloorC), g(e.MigrationC), g(e.ResidualC),
				g(e.BlindC), g(e.TemporalSavedC),
				g(e.PredC), g(e.PredRealC), g(e.DriftC),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func (s *Server) handleDebugLedger(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	n := 0
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			http.Error(w, "bad n: "+v, http.StatusBadRequest)
			return
		}
		n = parsed
	}
	format := q.Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "csv" {
		http.Error(w, "bad format: "+format+" (want json or csv)", http.StatusBadRequest)
		return
	}
	resp, err := s.Ledger(q.Get("job"), n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_ = writeLedgerCSV(w, resp)
		return
	}
	writeJSON(w, resp)
}
