package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO status levels, worst last.
const (
	StatusOK     = "ok"
	StatusWarn   = "warn"
	StatusBreach = "breach"
)

// SLO is one declarative service-level objective evaluated from the
// live Registry. Exactly one rule form must be set:
//
//   - quantile rule: Metric names a histogram family and the rule is
//     "the Quantile of observations must stay at or below Max" (e.g.
//     p99 planner solve latency < 1 s). All series of a labeled family
//     aggregate into one distribution.
//   - ratio rule: BadMetric and GoodMetric name counter families and
//     the rule is "bad / (bad + good) must stay at or below Max" (e.g.
//     re-plan failure ratio < 10%).
//
// Evaluation is multi-window: the engine retains snapshots of the
// underlying counters/buckets and computes each rule over both a short
// and a long trailing window. A rule violated in both windows is a
// breach (sustained burn); violated in exactly one, a warning (an
// emerging spike or a recovering burn); in neither, ok. Windows of 0
// default to DefaultShortWindow and DefaultLongWindow.
type SLO struct {
	// Name identifies the rule (label value on the status metrics and
	// key in /debug/slo).
	Name string `json:"name"`

	// Objective is the human-readable statement of the rule.
	Objective string `json:"objective,omitempty"`

	// Quantile rule.
	Metric   string  `json:"metric,omitempty"`
	Quantile float64 `json:"quantile,omitempty"`

	// Ratio rule.
	BadMetric  string `json:"bad_metric,omitempty"`
	GoodMetric string `json:"good_metric,omitempty"`

	// Max is the threshold: seconds for quantile rules, a fraction in
	// [0, 1] for ratio rules.
	Max float64 `json:"max"`

	// SpanName names the trace span kind whose worst instance within
	// the long window identifies the offending trace on a violation
	// (longest for quantile rules, most recent errored for ratio
	// rules). "" skips the lookup.
	SpanName string `json:"span_name,omitempty"`

	// Detail, when set, is called while the rule is violated and its
	// result is carried on the status (SLOStatus.Detail) and the
	// transition events — the hook a rule uses to name the worst
	// offender behind an aggregate (e.g. the job burning the drift
	// budget). It must not call back into the engine.
	Detail func() string `json:"-"`

	ShortWindow time.Duration `json:"-"`
	LongWindow  time.Duration `json:"-"`
}

// Default evaluation windows.
const (
	DefaultShortWindow = 5 * time.Minute
	DefaultLongWindow  = 30 * time.Minute
)

func (s SLO) windows() (short, long time.Duration) {
	short, long = s.ShortWindow, s.LongWindow
	if short <= 0 {
		short = DefaultShortWindow
	}
	if long <= 0 {
		long = DefaultLongWindow
	}
	if long < short {
		long = short
	}
	return short, long
}

func (s SLO) ratio() bool { return s.BadMetric != "" }

// validate rejects rules that are neither form (a misconfigured rule
// silently reporting ok forever is worse than a startup panic).
func (s SLO) validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("obs: SLO with empty name")
	case s.ratio() && (s.Metric != "" || s.GoodMetric == ""):
		return fmt.Errorf("obs: SLO %s: ratio rules need BadMetric+GoodMetric and no Metric", s.Name)
	case !s.ratio() && (s.Metric == "" || !(s.Quantile > 0) || s.Quantile >= 1):
		return fmt.Errorf("obs: SLO %s: quantile rules need Metric and Quantile in (0, 1)", s.Name)
	case math.IsNaN(s.Max) || s.Max < 0:
		return fmt.Errorf("obs: SLO %s: Max must be non-negative", s.Name)
	}
	return nil
}

// SLOStatus is one rule's evaluated state.
type SLOStatus struct {
	Name      string `json:"name"`
	Objective string `json:"objective,omitempty"`

	// Status is ok, warn, or breach.
	Status string `json:"status"`

	// Value and ShortValue are the rule's measured value over the long
	// and short windows (0 when the window holds no observations —
	// no traffic cannot violate an SLO).
	Value      float64 `json:"value"`
	ShortValue float64 `json:"short_value"`

	// Threshold echoes the rule's Max; BurnRate is Value/Threshold
	// (how many times over budget the long window is burning).
	Threshold float64 `json:"threshold"`
	BurnRate  float64 `json:"burn_rate"`

	// WorstTraceID identifies the offending trace while the rule is
	// violated ("" when ok or no matching span is retained).
	WorstTraceID string `json:"worst_trace_id,omitempty"`

	// Detail names the worst offender behind the violation, from the
	// rule's Detail hook ("" when ok or the rule has no hook).
	Detail string `json:"detail,omitempty"`

	// SinceUnixS is when the current status level began.
	SinceUnixS float64 `json:"since_unix_s"`
}

// sloSample is one snapshot of a rule's inputs.
type sloSample struct {
	at        time.Time
	counts    []uint64 // histogram rules: non-cumulative per-bucket totals
	count     uint64
	bad, good float64 // ratio rules
}

// sloState is a rule's evaluation memory.
type sloState struct {
	samples []sloSample
	status  string
	since   time.Time
}

// SLOEngine evaluates a fixed rule set against a Registry, retaining
// the per-rule snapshot history the multi-window evaluation needs.
// Evaluate is driven by the owner (the server runs it at controller
// ticks and on the /debug/slo and /healthz endpoints); the engine has
// no goroutine of its own. Safe for concurrent use.
type SLOEngine struct {
	mu     sync.Mutex
	reg    *Registry
	tracer *Tracer
	rules  []SLO
	state  map[string]*sloState

	// onTransition, when set, fires (inside Evaluate) for every status
	// level change — the server's hook for emitting breach/recovery
	// events. from is the previous level ("" on the first evaluation).
	onTransition func(rule SLO, from, to string, st SLOStatus)
}

// NewSLOEngine builds an engine over the registry (and tracer, which
// may be nil to skip worst-trace lookup). Invalid rules panic: a rule
// set is program configuration, not runtime input.
func NewSLOEngine(reg *Registry, tracer *Tracer, rules []SLO) *SLOEngine {
	state := make(map[string]*sloState, len(rules))
	for _, r := range rules {
		if err := r.validate(); err != nil {
			panic(err)
		}
		if _, dup := state[r.Name]; dup {
			panic(fmt.Sprintf("obs: duplicate SLO %s", r.Name))
		}
		state[r.Name] = &sloState{status: StatusOK}
	}
	return &SLOEngine{reg: reg, tracer: tracer, rules: rules, state: state}
}

// OnTransition registers the status-change hook (replacing any prior).
func (e *SLOEngine) OnTransition(fn func(rule SLO, from, to string, st SLOStatus)) {
	e.mu.Lock()
	e.onTransition = fn
	e.mu.Unlock()
}

// Rules returns the engine's rule set.
func (e *SLOEngine) Rules() []SLO {
	return append([]SLO(nil), e.rules...)
}

// sample reads a rule's current inputs from the registry.
func (e *SLOEngine) sample(r SLO, now time.Time) sloSample {
	s := sloSample{at: now}
	if r.ratio() {
		s.bad, _ = e.reg.counterFamilyTotal(r.BadMetric)
		s.good, _ = e.reg.counterFamilyTotal(r.GoodMetric)
		return s
	}
	_, s.counts, s.count, _ = e.reg.histogramFamilySnapshot(r.Metric)
	return s
}

// value computes the rule's measured value over the window cur−base.
// NaN means the window holds no observations.
func (e *SLOEngine) value(r SLO, cur, base sloSample) float64 {
	if r.ratio() {
		bad := cur.bad - base.bad
		good := cur.good - base.good
		if bad+good <= 0 {
			return math.NaN()
		}
		return bad / (bad + good)
	}
	upper, _, _, ok := e.reg.histogramFamilySnapshot(r.Metric)
	if !ok || cur.counts == nil {
		return math.NaN()
	}
	counts := make([]uint64, len(cur.counts))
	count := cur.count
	copy(counts, cur.counts)
	if base.counts != nil {
		for i := range counts {
			counts[i] -= base.counts[i]
		}
		count -= base.count
	}
	return bucketQuantile(upper, counts, count, r.Quantile)
}

// baseline returns the newest retained sample at or before cutoff (a
// zero sample — process start — when none is old enough).
func baseline(samples []sloSample, cutoff time.Time) sloSample {
	var base sloSample
	for _, s := range samples {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	return base
}

// Evaluate samples every rule at now and returns the statuses in rule
// order. Status transitions fire the OnTransition hook before Evaluate
// returns.
func (e *SLOEngine) Evaluate(now time.Time) []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.state[r.Name]
		short, long := r.windows()
		cur := e.sample(r, now)

		shortVal := e.value(r, cur, baseline(st.samples, now.Add(-short)))
		longVal := e.value(r, cur, baseline(st.samples, now.Add(-long)))
		shortViol := !math.IsNaN(shortVal) && shortVal > r.Max
		longViol := !math.IsNaN(longVal) && longVal > r.Max

		status := StatusOK
		switch {
		case shortViol && longViol:
			status = StatusBreach
		case shortViol || longViol:
			status = StatusWarn
		}

		// Commit the sample and prune history beyond the long window
		// (keeping one older sample as the long baseline).
		st.samples = append(st.samples, cur)
		cut := now.Add(-long)
		drop := 0
		for drop+1 < len(st.samples) && !st.samples[drop+1].at.After(cut) {
			drop++
		}
		st.samples = st.samples[drop:]

		if st.since.IsZero() {
			st.since = now
		}
		view := SLOStatus{
			Name:      r.Name,
			Objective: r.Objective,
			Status:    status,
			Threshold: r.Max,
		}
		if !math.IsNaN(longVal) {
			view.Value = longVal
			if r.Max > 0 {
				view.BurnRate = longVal / r.Max
			}
		}
		if !math.IsNaN(shortVal) {
			view.ShortValue = shortVal
		}
		if status != StatusOK && e.tracer != nil && r.SpanName != "" {
			view.WorstTraceID = e.tracer.WorstSpan(r.SpanName, now.Add(-long), r.ratio())
		}
		if status != StatusOK && r.Detail != nil {
			view.Detail = r.Detail()
		}
		if status != st.status {
			from := st.status
			st.status = status
			st.since = now
			view.SinceUnixS = float64(now.UnixNano()) / 1e9
			if e.onTransition != nil {
				e.onTransition(r, from, status, view)
			}
		} else {
			view.SinceUnixS = float64(st.since.UnixNano()) / 1e9
		}
		out = append(out, view)
	}
	return out
}
