// Command perseus-load is the schedule fan-out load harness: it parks
// tens of thousands of concurrent long-pollers on one job's schedule
// endpoint, drives controller ticks that bump the schedule version, and
// measures how the notification hub fans each bump out to every parked
// waiter. It is the scaling rehearsal for the paper's deployment shape —
// one cluster-wide server, a million trainers each holding a cheap
// blocked GET — shrunk to one process so CI can run it.
//
// The pollers speak real HTTP (If-None-Match + ?wait against
// GET /jobs/{id}/schedule) but dispatch in-process through the server's
// handler, so neither sockets nor file descriptors bound the poller
// count. Each round waits until every poller is parked (the
// perseus_longpoll_waiters gauge), advances the fake clock one signal
// interval, and ticks the controller synchronously; the re-plan bumps
// the schedule version and one hub broadcast wakes the whole fleet.
//
// The harness exits non-zero unless every round woke every poller and
// the waiters gauge drained to zero after the final cancellation — the
// leak invariant the long-poll lifecycle fixes are about. It reports
// p50/p99/max park-to-wake latency from perseus_longpoll_wake_seconds
// and the hub broadcast counters.
//
// Usage:
//
//	perseus-load [-pollers 10000] [-ticks 5] [-wait 30]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perseus/internal/client"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

// inprocTransport dispatches the setup client's requests straight into
// the server's handler — no listener, no connection pool.
type inprocTransport struct{ h http.Handler }

func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// pollRW is the cheapest possible ResponseWriter: it keeps the status
// and headers (the poller reads the version from the ETag) and discards
// the body. Ten thousand pollers re-issuing requests every round must
// not each buffer a schedule JSON they never parse.
type pollRW struct {
	hdr    http.Header
	status int
}

func (w *pollRW) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}

func (w *pollRW) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return len(p), nil
}

func (w *pollRW) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
}

// fakeClock is the controller's clock: pollers park in real time while
// planning time advances only when the harness ticks.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// buildProfile synthesizes the measurements a client-side profiler
// would report (the same construction the demos and server tests use).
func buildProfile(g *gpu.Model, stages, mbSize int) ([]profile.Measurement, float64, error) {
	m, err := model.GPT3("1.3b")
	if err != nil {
		return nil, 0, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		return nil, 0, err
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		return nil, 0, err
	}
	var ms []profile.Measurement
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			ms = append(ms,
				profile.Measurement{Virtual: v, Kind: sched.Forward, Freq: f,
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				profile.Measurement{Virtual: v, Kind: sched.Backward, Freq: f,
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	return ms, profile.MeasurePBlocking(g), nil
}

// etagVersion extracts N from a `"vN"` schedule entity tag (-1 when
// the tag is absent or malformed).
func etagVersion(tag string) int {
	tag = strings.TrimSuffix(strings.TrimPrefix(tag, `"`), `"`)
	if !strings.HasPrefix(tag, "v") {
		return -1
	}
	n, err := strconv.Atoi(tag[1:])
	if err != nil {
		return -1
	}
	return n
}

func main() {
	pollers := flag.Int("pollers", 10000, "concurrent long-pollers to park")
	ticks := flag.Int("ticks", 5, "controller ticks (each bumps the schedule version once)")
	waitS := flag.Float64("wait", 30, "per-request long-poll wait seconds")
	flag.Parse()

	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := server.New()
	srv.SetClock(clock.Now)
	handler := srv.Handler()
	cl := client.NewServerClient("http://perseus-load")
	cl.HTTP = &http.Client{Transport: inprocTransport{handler}}

	// One managed job under a revising forecast: every tick at a signal
	// interval boundary re-plans it and bumps the schedule version.
	id, err := cl.RegisterJob(client.JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := gpu.ByName("A100-PCIe")
	if err != nil {
		log.Fatal(err)
	}
	ms, pBlocking, err := buildProfile(g, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.UploadProfile(id, pBlocking, ms); err != nil {
		log.Fatal(err)
	}
	dep, err := cl.WaitSchedule(id, 200, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	sig := grid.Diurnal24h()
	if _, err := cl.UploadGridSignal(*sig, "carbon"); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(11, 0.2, 0, 0, 0); err != nil {
		log.Fatal(err)
	}
	interval := sig.Intervals[0].EndS - sig.Intervals[0].StartS
	// Deadline past the last tick so every tick still re-plans.
	deadline := float64(*ticks+2) * interval
	target := math.Floor(0.8 * deadline / dep.Tmin)
	if _, err := cl.ManageJob(id, target, deadline, "", 0); err != nil {
		log.Fatal(err)
	}
	first, err := cl.FetchSchedule(id)
	if err != nil {
		log.Fatal(err)
	}

	reg := srv.Metrics()
	waiters := func() int {
		v, _ := reg.GaugeValue("perseus_longpoll_waiters")
		return int(v)
	}
	// settle blocks until the waiters gauge reaches want — the barrier
	// between rounds that makes "one tick wakes everyone" exact.
	settle := func(want int, what string) {
		deadline := time.Now().Add(2 * time.Minute)
		for waiters() != want {
			if time.Now().After(deadline) {
				log.Fatalf("perseus-load: %s: waiters stuck at %d, want %d", what, waiters(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// The poller fleet. Each poller is a real conditional long-poll
	// loop: park with the version it holds, wake on a bump, read the
	// new version from the ETag, park again. ctx cancellation is the
	// client hanging up mid-park — the last round exercises the
	// disconnect path at full fleet width.
	ctx, cancel := context.WithCancel(context.Background())
	path := "/jobs/" + id + "/schedule?wait=" + strconv.FormatFloat(*waitS, 'g', -1, 64)
	var wakes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(*pollers)
	for i := 0; i < *pollers; i++ {
		go func() {
			defer wg.Done()
			ver := first.Version
			for {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
				if err != nil {
					log.Fatal(err)
				}
				req.Header.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.Itoa(ver)))
				rw := &pollRW{}
				handler.ServeHTTP(rw, req)
				if ctx.Err() != nil {
					return
				}
				switch rw.status {
				case http.StatusOK:
					if v := etagVersion(rw.Header().Get("ETag")); v > ver {
						ver = v
						wakes.Add(1)
					}
				case http.StatusNotModified:
					// Wait expired with no bump: park again.
				default:
					log.Fatalf("perseus-load: poller got status %d", rw.status)
				}
			}
		}()
	}

	start := time.Now()
	for round := 1; round <= *ticks; round++ {
		settle(*pollers, fmt.Sprintf("round %d park", round))
		t0 := time.Now()
		clock.Advance(time.Duration(interval * float64(time.Second)))
		st, err := cl.TickController()
		if err != nil {
			log.Fatal(err)
		}
		if len(st.Jobs) != 1 || st.Jobs[0].LastError != "" {
			log.Fatalf("perseus-load: tick %d: %+v", round, st)
		}
		cur, err := cl.FetchSchedule(id)
		if err != nil {
			log.Fatal(err)
		}
		// The round is done when the whole fleet woke, fetched, and
		// re-parked on the new version. The waiters gauge alone is not a
		// barrier here — right after the bump it still reads N for the
		// about-to-wake parks — so first wait until every poller
		// confirmed its wake (it read the new version from the ETag),
		// then wait for the gauge to show them all re-parked.
		wantWakes := int64(*pollers) * int64(round)
		for to := time.Now().Add(2 * time.Minute); wakes.Load() < wantWakes; {
			if time.Now().After(to) {
				log.Fatalf("perseus-load: round %d: %d/%d wakes confirmed", round, wakes.Load(), wantWakes)
			}
			time.Sleep(2 * time.Millisecond)
		}
		settle(*pollers, fmt.Sprintf("round %d re-park", round))
		fmt.Printf("round %d: %d pollers woken and re-parked in %v (version %d)\n",
			round, *pollers, time.Since(t0).Round(time.Millisecond), cur.Version)
	}
	elapsed := time.Since(start)

	// Hang up the entire fleet mid-park and verify the server forgets
	// every waiter.
	cancel()
	wg.Wait()
	settle(0, "post-cancel drain")

	wakeCount, _ := reg.HistogramCount("perseus_longpoll_wake_seconds")
	p50, _ := reg.HistogramQuantile("perseus_longpoll_wake_seconds", 0.50)
	p99, _ := reg.HistogramQuantile("perseus_longpoll_wake_seconds", 0.99)
	broadcasts, _ := reg.CounterValue("perseus_hub_broadcasts_total")
	cancelled, _ := reg.CounterValue("perseus_longpoll_cancelled_total")
	topics, _ := reg.GaugeValue("perseus_hub_topics")

	want := int64(*pollers) * int64(*ticks)
	fmt.Printf("perseus-load: %d pollers x %d ticks in %v\n", *pollers, *ticks, elapsed.Round(time.Millisecond))
	fmt.Printf("  park-to-wake: count=%d p50=%.6fs p99=%.6fs\n", wakeCount, p50, p99)
	fmt.Printf("  hub: broadcasts=%.0f live_topics=%.0f cancelled=%.0f\n", broadcasts, topics, cancelled)

	fail := false
	if got := wakes.Load(); got != want {
		fmt.Fprintf(os.Stderr, "perseus-load: FAIL: %d wakes observed by pollers, want %d\n", got, want)
		fail = true
	}
	if int64(wakeCount) < want {
		fmt.Fprintf(os.Stderr, "perseus-load: FAIL: wake histogram holds %d observations, want >= %d\n", wakeCount, want)
		fail = true
	}
	if w := waiters(); w != 0 {
		fmt.Fprintf(os.Stderr, "perseus-load: FAIL: %d waiters leaked after cancellation\n", w)
		fail = true
	}
	if cancelled < float64(*pollers) {
		fmt.Fprintf(os.Stderr, "perseus-load: FAIL: cancelled counter %.0f, want >= %d (whole fleet hung up parked)\n", cancelled, *pollers)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("perseus-load ok")
}
