package experiments

import (
	"strings"
	"testing"

	"perseus/internal/fleet"
	"perseus/internal/gpu"
)

func TestFleetScenarioEndToEnd(t *testing.T) {
	built, err := BuildFleetScenario(gpu.A100PCIe, Quick, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if built.CapW >= built.UncappedW {
		t.Fatalf("cap %v not below uncapped draw %v", built.CapW, built.UncappedW)
	}
	series, err := fleet.Replay(built.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Segments) == 0 || len(series.Totals) != len(FleetWorkloads()) {
		t.Fatalf("replay produced %d segments, %d totals", len(series.Segments), len(series.Totals))
	}

	// Every capped segment keeps the allocator's budget under the cap.
	capped := 0
	for _, seg := range series.Segments {
		if seg.CapW > 0 {
			capped++
			if !seg.Feasible {
				t.Fatalf("segment [%v,%v] infeasible under cap %v", seg.Start, seg.End, seg.CapW)
			}
			if seg.AllocPowerW > seg.CapW+1e-9 {
				t.Fatalf("segment [%v,%v] allocates %v W over cap %v", seg.Start, seg.End, seg.AllocPowerW, seg.CapW)
			}
		}
	}
	if capped == 0 {
		t.Fatal("scenario never engaged the cap")
	}

	// The straggler segment frees power: the healthy jobs run no slower
	// than in the preceding capped segment.
	var pre, during *fleet.Segment
	for i := range series.Segments {
		seg := &series.Segments[i]
		straggling := false
		for _, j := range seg.Jobs {
			if j.StragglerFactor > 1 {
				straggling = true
			}
		}
		if straggling && during == nil {
			during = seg
			pre = &series.Segments[i-1]
		}
	}
	if during == nil {
		t.Fatal("scenario has no straggler segment")
	}
	for k, j := range during.Jobs {
		if j.StragglerFactor > 1 {
			continue
		}
		if j.Point > pre.Jobs[k].Point {
			t.Fatalf("healthy job %s slowed during the straggler: point %d -> %d",
				j.ID, pre.Jobs[k].Point, j.Point)
		}
	}

	// The tables render.
	for _, tbl := range []*Table{
		FleetTimelineTable(series),
		FleetJobsTable(series),
		FleetSummaryTable(series),
	} {
		var b strings.Builder
		if err := tbl.Render(&b); err != nil {
			t.Fatal(err)
		}
		if len(b.String()) == 0 {
			t.Fatalf("table %q rendered empty", tbl.Title)
		}
	}
}
