package obs

import (
	"sync"
	"testing"
	"time"
)

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(3)
	base := time.Unix(1_700_000_000, 0)
	for i := 0; i < 5; i++ {
		r.Emit(base.Add(time.Duration(i)*time.Second), "e", 0, "i", string(rune('0'+i)))
	}
	if r.Len() != 3 {
		t.Fatalf("ring retained %d events, want 3", r.Len())
	}
	got := r.Snapshot(0)
	if len(got) != 3 {
		t.Fatalf("snapshot returned %d events, want 3", len(got))
	}
	// Oldest retained is event #3 (seq numbering starts at 1).
	for i, e := range got {
		if want := uint64(3 + i); e.Seq != want {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got[0].Labels["i"] != "2" {
		t.Errorf("oldest retained label = %q, want \"2\"", got[0].Labels["i"])
	}
}

func TestRingSnapshotLimit(t *testing.T) {
	r := NewRing(10)
	at := time.Unix(1_700_000_000, 0)
	for i := 0; i < 6; i++ {
		r.Emit(at, "e", time.Duration(i)*time.Millisecond)
	}
	got := r.Snapshot(2)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("limited snapshot = %+v, want the two newest (seq 5, 6)", got)
	}
	if r.Snapshot(100); len(r.Snapshot(100)) != 6 {
		t.Error("limit beyond retention should return everything")
	}
}

func TestRingTimestampAndDuration(t *testing.T) {
	r := NewRing(0) // default capacity
	at := time.Unix(1_700_000_000, 500_000_000)
	r.Emit(at, "tick", 250*time.Millisecond, "jobs", "3")
	e := r.Snapshot(0)[0]
	if e.AtUnixS != 1_700_000_000.5 {
		t.Errorf("AtUnixS = %v", e.AtUnixS)
	}
	if e.DurS != 0.25 {
		t.Errorf("DurS = %v", e.DurS)
	}
	if e.Name != "tick" || e.Labels["jobs"] != "3" {
		t.Errorf("event = %+v", e)
	}
}

// TestRingSnapshotSince pins the cursor read: only events with
// Seq > since come back, oldest first, and the limit keeps the OLDEST
// qualifying events so a poller pages forward without gaps (unlike
// Snapshot, whose limit keeps the newest).
func TestRingSnapshotSince(t *testing.T) {
	r := NewRing(10)
	at := time.Unix(1_700_000_000, 0)
	for i := 0; i < 6; i++ { // seq 1..6
		r.Emit(at.Add(time.Duration(i)*time.Second), "e", 0)
	}

	got := r.SnapshotSince(0, 0)
	if len(got) != 6 || got[0].Seq != 1 {
		t.Fatalf("since=0 returned %d events from seq %d, want all 6", len(got), got[0].Seq)
	}
	got = r.SnapshotSince(4, 0)
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("since=4 = %+v, want seq 5, 6", got)
	}
	got = r.SnapshotSince(2, 2)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("since=2 limit=2 = %+v, want the oldest qualifying (seq 3, 4)", got)
	}
	if got = r.SnapshotSince(6, 0); len(got) != 0 {
		t.Fatalf("since=newest returned %+v, want none", got)
	}
	if got = r.SnapshotSince(100, 0); len(got) != 0 {
		t.Fatalf("since beyond newest returned %+v, want none", got)
	}

	// After overwrite, the cursor picks up from the retained window.
	small := NewRing(3)
	for i := 0; i < 5; i++ { // retains seq 3..5
		small.Emit(at, "e", 0)
	}
	got = small.SnapshotSince(1, 0)
	if len(got) != 3 || got[0].Seq != 3 {
		t.Fatalf("overwritten ring since=1 = %+v, want seq 3..5", got)
	}
}

func TestRingRace(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(time.Unix(int64(i), 0), "e", 0)
				_ = r.Snapshot(10)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("ring retained %d, want full capacity 64", r.Len())
	}
}
