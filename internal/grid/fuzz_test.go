package grid

import (
	"math"
	"math/rand"
	"testing"

	"perseus/internal/frontier"
)

// fuzzInstance derives a random planning instance from fuzzed inputs:
// a convex lookup table, a signal with optional per-interval caps, and
// normalized target/deadline fractions.
func fuzzInstance(seed int64, targetFrac, deadlineFrac float64) (*frontier.LookupTable, *Signal, Options, bool) {
	rng := rand.New(rand.NewSource(seed))
	lt, sig := randomInstance(rng, seed%2 == 0)
	if math.IsNaN(targetFrac) || math.IsInf(targetFrac, 0) {
		return nil, nil, Options{}, false
	}
	if math.IsNaN(deadlineFrac) || math.IsInf(deadlineFrac, 0) {
		return nil, nil, Options{}, false
	}
	// Clamp the fuzzed fractions into meaningful planning ranges.
	targetFrac = math.Mod(math.Abs(targetFrac), 1.4) // may exceed max coverage
	deadlineFrac = 0.3 + math.Mod(math.Abs(deadlineFrac), 0.7)
	opts := Options{
		Objective:  []Objective{ObjectiveCarbon, ObjectiveCost, ObjectiveEnergy}[rng.Intn(3)],
		PowerScale: float64(1 + rng.Intn(2)),
		DeadlineS:  deadlineFrac * sig.Horizon(),
	}
	// Max coverage under the deadline and caps (the fastest allowed
	// point per interval, idle where the cap excludes every point).
	var maxCover float64
	for _, iv := range sig.Truncate(opts.DeadlineS).Intervals {
		lo := 0
		if iv.CapW > 0 {
			lo = lt.FirstUnderPower(iv.CapW / opts.PowerScale)
		}
		if lo >= 0 {
			maxCover += iv.Duration() / lt.PointTime(lo)
		}
	}
	if maxCover == 0 {
		return nil, nil, Options{}, false
	}
	opts.Target = targetFrac * maxCover
	if !(opts.Target > 0) {
		return nil, nil, Options{}, false
	}
	return lt, sig, opts, true
}

// FuzzOptimize fuzzes signal, frontier, target, and deadline inputs
// and asserts the temporal planner's invariants on every instance:
//
//  1. feasibility is decided correctly — the plan is feasible exactly
//     when the target fits under the deadline at the fastest allowed
//     points, and a feasible plan completes the target by the deadline;
//  2. per-interval facility caps are respected by every planned slice;
//  3. slice time fits its interval and the accounting identities hold
//     (energy = Σ seconds × scale × power; carbon/cost = energy ×
//     interval rate);
//  4. the plan's accrued objective never exceeds either signal-blind
//     Fixed baseline (always-Tmin and static min-energy): both
//     baselines are feasible points of the continuous time-sharing
//     space the greedy fill solves exactly (see Optimize), so losing
//     to either at all would break exactness.
func FuzzOptimize(f *testing.F) {
	for seed := int64(1); seed <= 10; seed++ {
		f.Add(seed, 0.6, 0.9)
	}
	f.Add(int64(3), 1.2, 0.5)  // infeasible target
	f.Add(int64(4), 0.05, 0.4) // tiny target
	f.Fuzz(func(t *testing.T, seed int64, targetFrac, deadlineFrac float64) {
		lt, sig, opts, ok := fuzzInstance(seed, targetFrac, deadlineFrac)
		if !ok {
			t.Skip()
		}
		plan, err := Optimize(lt, sig, opts)
		if err != nil {
			t.Fatalf("optimize failed on valid instance: %v", err)
		}

		// (1) Feasibility decided correctly.
		var maxCover float64
		for _, iv := range sig.Truncate(opts.DeadlineS).Intervals {
			lo := 0
			if iv.CapW > 0 {
				lo = lt.FirstUnderPower(iv.CapW / opts.PowerScale)
			}
			if lo >= 0 {
				maxCover += iv.Duration() / lt.PointTime(lo)
			}
		}
		wantFeasible := maxCover >= opts.Target-1e-9
		if plan.Feasible != wantFeasible {
			t.Fatalf("feasible=%v, want %v (target %v, max coverage %v)",
				plan.Feasible, wantFeasible, opts.Target, maxCover)
		}
		if plan.Feasible {
			if plan.Iterations < opts.Target-1e-6*(1+opts.Target) {
				t.Fatalf("feasible plan covers %v < target %v", plan.Iterations, opts.Target)
			}
			if plan.FinishS < 0 || plan.FinishS > plan.DeadlineS+1e-9 {
				t.Fatalf("finish %v outside [0, deadline %v]", plan.FinishS, plan.DeadlineS)
			}
		} else if plan.FinishS != -1 {
			t.Fatalf("infeasible plan finish %v, want -1", plan.FinishS)
		}

		// (2) + (3) per-interval invariants.
		var totalIter, totalEnergy, totalCarbon, totalCost float64
		for _, ip := range plan.Intervals {
			iv := sig.Intervals[ip.Index]
			var run, energy, iters float64
			for _, sl := range ip.Slices {
				if sl.Point < 0 || sl.Point >= len(lt.Points) {
					t.Fatalf("interval %d slice point %d out of range", ip.Index, sl.Point)
				}
				if sl.Seconds < -1e-9 {
					t.Fatalf("interval %d negative slice %v", ip.Index, sl.Seconds)
				}
				if iv.CapW > 0 && opts.PowerScale*lt.AvgPower(sl.Point) > iv.CapW+1e-9 {
					t.Fatalf("interval %d runs point %d above cap %v W", ip.Index, sl.Point, iv.CapW)
				}
				run += sl.Seconds
				energy += sl.Seconds * opts.PowerScale * lt.AvgPower(sl.Point)
				iters += sl.Seconds / lt.PointTime(sl.Point)
			}
			dur := ip.EndS - ip.StartS
			if run > dur+1e-6*(1+dur) {
				t.Fatalf("interval %d runs %v s in a %v s window", ip.Index, run, dur)
			}
			if math.Abs(ip.IdleS-(dur-run)) > 1e-6*(1+dur) {
				t.Fatalf("interval %d idle %v, want %v", ip.Index, ip.IdleS, dur-run)
			}
			if math.Abs(ip.EnergyJ-energy) > 1e-6*(1+energy) {
				t.Fatalf("interval %d energy %v, want %v", ip.Index, ip.EnergyJ, energy)
			}
			wantCarbon := energy / JoulesPerKWh * iv.CarbonGPerKWh
			if math.Abs(ip.CarbonG-wantCarbon) > 1e-6*(1+wantCarbon) {
				t.Fatalf("interval %d carbon %v, want %v", ip.Index, ip.CarbonG, wantCarbon)
			}
			totalIter += iters
			totalEnergy += ip.EnergyJ
			totalCarbon += ip.CarbonG
			totalCost += ip.CostUSD
		}
		if math.Abs(totalIter-plan.Iterations) > 1e-6*(1+plan.Iterations) ||
			math.Abs(totalEnergy-plan.EnergyJ) > 1e-6*(1+plan.EnergyJ) ||
			math.Abs(totalCarbon-plan.CarbonG) > 1e-6*(1+plan.CarbonG) ||
			math.Abs(totalCost-plan.CostUSD) > 1e-6*(1+plan.CostUSD) {
			t.Fatalf("totals do not add up: %+v", plan)
		}

		// (4) never above a feasible Fixed baseline. Fixed ignores
		// interval caps (it models a signal-blind operator), so the
		// comparison only binds when the baseline's point fits under
		// every cap in the planning window — otherwise the baseline has
		// freedom the planner is denied.
		if plan.Feasible {
			for _, point := range []int{0, len(lt.Points) - 1} {
				capped := false
				for _, iv := range sig.Truncate(opts.DeadlineS).Intervals {
					if iv.CapW > 0 && opts.PowerScale*lt.AvgPower(point) > iv.CapW {
						capped = true
					}
				}
				if capped {
					continue
				}
				base, err := Fixed(lt, point, sig, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !base.Feasible {
					continue
				}
				got, want := planCost(plan), planCost(base)
				if got > want+1e-6*(1+want) {
					t.Fatalf("plan %s %v above fixed-point-%d baseline %v",
						plan.Objective, got, point, want)
				}
			}
		}
	})
}
