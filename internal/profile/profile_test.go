package profile

import (
	"math"
	"math/rand"
	"testing"

	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/sched"
)

func testWorkload(t *testing.T) Workload {
	t.Helper()
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return Workload{
		Model:          m,
		GPU:            gpu.A100PCIe,
		Stages:         4,
		Chunks:         1,
		Partition:      part.Boundaries,
		MicrobatchSize: 4,
		TensorParallel: 1,
	}
}

func TestMeasurePBlocking(t *testing.T) {
	for _, g := range []*gpu.Model{gpu.A100PCIe, gpu.A40} {
		if got := MeasurePBlocking(g); math.Abs(got-g.BlockingW) > 1e-9 {
			t.Errorf("%s: measured P_blocking %v, want %v", g.Name, got, g.BlockingW)
		}
	}
}

func TestFromWorkloadShapes(t *testing.T) {
	p, err := FromWorkload(testWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Types) != 8 {
		t.Fatalf("%d type profiles, want 8 (4 stages x fwd/bwd)", len(p.Types))
	}
	for key, tp := range p.Types {
		if len(tp.Points) < 5 {
			t.Errorf("%v: only %d Pareto points", key, len(tp.Points))
		}
		if tp.MinTime() >= tp.MaxTime() {
			t.Errorf("%v: MinTime %v >= MaxTime %v", key, tp.MinTime(), tp.MaxTime())
		}
		// Backward is slower than forward on the same stage.
		if key.Kind == sched.Backward {
			fwd := p.Types[TypeKey{key.Virtual, sched.Forward}]
			if tp.MinTime() <= fwd.MinTime() {
				t.Errorf("stage %d: backward MinTime %v <= forward %v", key.Virtual, tp.MinTime(), fwd.MinTime())
			}
		}
	}
}

func TestStageTimesScaleWithMicrobatch(t *testing.T) {
	w := testWorkload(t)
	r1, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	w.MicrobatchSize = 8
	r2, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if math.Abs(r2[i]-2*r1[i]) > 1e-12*r1[i] {
			t.Errorf("stage %d: doubling microbatch size should double time (%v vs %v)", i, r1[i], r2[i])
		}
	}
	// Tensor parallelism divides per-GPU time (paper §4.4).
	w.TensorParallel = 2
	r4, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if math.Abs(r4[i]-r1[i]) > 1e-12*r1[i] {
			t.Errorf("stage %d: TP=2 with 2x microbatch should equal baseline (%v vs %v)", i, r1[i], r4[i])
		}
	}
}

func TestStageTimesPlausible(t *testing.T) {
	// GPT-3 1.3B on A100 PCIe, microbatch size 4: per-stage forward
	// should be in the O(100 ms) regime so that the Figure 1 iteration
	// (4 stages, 6 microbatches) lands in seconds, as the paper's
	// timeline shows 3.83 s.
	w := testWorkload(t)
	refs, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range refs {
		if r < 0.02 || r > 1.0 {
			t.Errorf("stage %d forward ref %v s outside plausible [0.02, 1.0]", i, r)
		}
	}
}

func TestForDuration(t *testing.T) {
	p, err := FromWorkload(testWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Types[TypeKey{0, sched.Forward}]
	// Exactly the fastest time: returns the max-frequency point.
	pt, _ := tp.ForDuration(tp.MinTime())
	if pt.Freq != p.GPU.FMax {
		t.Errorf("ForDuration(MinTime) freq = %d, want FMax", pt.Freq)
	}
	// Slightly below the fastest: still the fastest point (never slower
	// than planned is impossible, so clamp to fastest).
	pt, _ = tp.ForDuration(tp.MinTime() * 0.9)
	if pt.Freq != p.GPU.FMax {
		t.Errorf("ForDuration(below MinTime) freq = %d, want FMax", pt.Freq)
	}
	// Beyond the slowest: the minimum-energy point.
	pt, _ = tp.ForDuration(tp.MaxTime() * 2)
	if pt.Freq != tp.Points[len(tp.Points)-1].Freq {
		t.Errorf("ForDuration(beyond MaxTime) freq = %d, want min-energy freq", pt.Freq)
	}
	// In between: realized time never exceeds the plan.
	mid := (tp.MinTime() + tp.MaxTime()) / 2
	pt, _ = tp.ForDuration(mid)
	if pt.Time > mid {
		t.Errorf("ForDuration(%v) realized time %v exceeds plan", mid, pt.Time)
	}
}

func TestForRecomputeUsesForwardProfile(t *testing.T) {
	p, err := FromWorkload(testWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	op := sched.Op{Stage: 1, Virtual: 1, Microbatch: 0, Kind: sched.Recompute}
	tp, err := p.For(op)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Key.Kind != sched.Forward || tp.Key.Virtual != 1 {
		t.Errorf("recompute mapped to %v, want stage 1 forward", tp.Key)
	}
}

func TestForUnknownType(t *testing.T) {
	p, err := FromWorkload(testWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.For(sched.Op{Virtual: 99, Kind: sched.Forward}); err == nil {
		t.Error("unknown type should error")
	}
}

func TestAddConstant(t *testing.T) {
	p, err := FromWorkload(testWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	p.AddConstant(0, 0.05, 10)
	tp, err := p.For(sched.Op{Virtual: 0, Kind: sched.Constant})
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Constant || len(tp.Points) != 1 {
		t.Fatalf("constant profile malformed: %+v", tp)
	}
	if math.Abs(tp.Points[0].Energy-(10-p.PBlocking*0.05)) > 1e-9 {
		t.Errorf("constant adjusted energy = %v", tp.Points[0].Energy)
	}
}

func TestAssembleMatchesAnalytic(t *testing.T) {
	// Feed Assemble the measurements the analytic path would produce and
	// check the profiles agree.
	g := gpu.A100PCIe
	const ref = 0.1
	pb := MeasurePBlocking(g)
	var ms []Measurement
	for _, f := range g.Frequencies() {
		tt := g.Time(ref, f, g.MemBoundFwd)
		e := g.Energy(ref, f, g.MemBoundFwd)
		// Five repetitions, as the paper's profiler does (§5).
		for rep := 0; rep < 5; rep++ {
			ms = append(ms, Measurement{Virtual: 0, Kind: sched.Forward, Freq: f, Time: tt, Energy: e})
		}
	}
	p, err := Assemble(g, pb, ms)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Types[TypeKey{0, sched.Forward}]
	want := g.ParetoPoints(ref, g.MemBoundFwd, pb)
	if len(tp.Points) != len(want) {
		t.Fatalf("assembled %d Pareto points, want %d", len(tp.Points), len(want))
	}
	for i := range want {
		if tp.Points[i].Freq != want[i].Freq {
			t.Errorf("point %d freq %d, want %d", i, tp.Points[i].Freq, want[i].Freq)
		}
		if math.Abs(tp.Points[i].Energy-want[i].Energy) > 1e-6 {
			t.Errorf("point %d energy %v, want %v", i, tp.Points[i].Energy, want[i].Energy)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble(gpu.A40, 60, nil); err == nil {
		t.Error("empty measurements should error")
	}
	// Too few distinct frequencies to fit.
	ms := []Measurement{
		{Virtual: 0, Kind: sched.Forward, Freq: 1410, Time: 1, Energy: 300},
		{Virtual: 0, Kind: sched.Forward, Freq: 1200, Time: 1.1, Energy: 280},
	}
	if _, err := Assemble(gpu.A100PCIe, 75, ms); err == nil {
		t.Error("2-frequency profile should error")
	}
}

func TestWorkloadValidation(t *testing.T) {
	w := testWorkload(t)
	w.Partition = []int{0, 25}
	if _, err := FromWorkload(w); err == nil {
		t.Error("wrong boundary count should error")
	}
	w = testWorkload(t)
	w.MicrobatchSize = 0
	if _, err := FromWorkload(w); err == nil {
		t.Error("zero microbatch size should error")
	}
	if _, err := FromStageTimes(gpu.A40, nil, 2); err == nil {
		t.Error("no stages should error")
	}
	if _, err := FromStageTimes(gpu.A40, []float64{0.1}, 0); err == nil {
		t.Error("zero bwd factor should error")
	}
	if _, err := FromStageTimes(gpu.A40, []float64{-0.1}, 2); err == nil {
		t.Error("negative stage time should error")
	}
}

func TestAssembleNoisyMeasurements(t *testing.T) {
	// The in-vivo profiler sees small run-to-run jitter; assembly must
	// still produce a valid Pareto profile (paper §5 relies on locked
	// frequencies being *mostly* stable).
	g := gpu.A40
	const ref = 0.08
	pb := MeasurePBlocking(g)
	rng := rand.New(rand.NewSource(99))
	var ms []Measurement
	for _, f := range g.Frequencies() {
		for rep := 0; rep < 5; rep++ {
			jt := 1 + 0.01*rng.NormFloat64()
			je := 1 + 0.01*rng.NormFloat64()
			ms = append(ms, Measurement{
				Virtual: 0, Kind: sched.Forward, Freq: f,
				Time:   g.Time(ref, f, g.MemBoundFwd) * jt,
				Energy: g.Energy(ref, f, g.MemBoundFwd) * je,
			})
		}
	}
	p, err := Assemble(g, pb, ms)
	if err != nil {
		t.Fatal(err)
	}
	tp := p.Types[TypeKey{0, sched.Forward}]
	if len(tp.Points) < 5 {
		t.Fatalf("noisy assembly kept only %d Pareto points", len(tp.Points))
	}
	for i := 1; i < len(tp.Points); i++ {
		if tp.Points[i].Time <= tp.Points[i-1].Time || tp.Points[i].Energy >= tp.Points[i-1].Energy {
			t.Fatalf("noisy Pareto set not strictly ordered at %d", i)
		}
	}
	// The fit should still track the clean curve within a few percent.
	clean := g.ParetoPoints(ref, g.MemBoundFwd, pb)
	for _, pt := range clean[:len(clean)/2] {
		got := tp.Curve.Eval(pt.Time)
		if rel := math.Abs(got-pt.Energy) / math.Abs(pt.Energy); rel > 0.08 {
			t.Errorf("fit at t=%v off by %.1f%%", pt.Time, 100*rel)
		}
	}
}
