package frontier

import (
	"math"
	"math/rand"
	"testing"
)

// fuzzMergeInputs derives a random fleet of convex lookup tables
// (E(t) = a + b/t, the convexity premise of the merge's optimality
// claim) with random scales, weights, and start points from one seed.
func fuzzMergeInputs(seed int64) []MergeInput {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(4)
	inputs := make([]MergeInput, n)
	for i := range inputs {
		tmin := int64(30 + rng.Intn(120))
		span := int64(2 + rng.Intn(20))
		a := 500 + 5000*rng.Float64()
		b := 20 + 500*rng.Float64()
		lt := &LookupTable{Unit: 0.002 + 0.02*rng.Float64(), TminUnits: tmin, TStarUnits: tmin + span}
		for u := tmin; u <= tmin+span; u++ {
			t := float64(u) * lt.Unit
			lt.Points = append(lt.Points, TablePoint{TimeUnits: u, Energy: a + b/t})
		}
		inputs[i] = MergeInput{
			Table:      lt,
			PowerScale: float64(1 + rng.Intn(3)),
			LossWeight: 0.5 + rng.Float64(),
			Start:      rng.Intn(len(lt.Points)),
		}
	}
	return inputs
}

// FuzzMerge checks the structural invariants of a merged fleet descent
// on seed-derived random convex fleets:
//
//  1. the start power is the sum of the scaled start-point powers;
//  2. cumulative power is strictly decreasing across steps and never
//     dips below the sum of the min-point (T*) powers, which the final
//     step reaches exactly;
//  3. steps are sorted by non-decreasing marginal cost — the
//     watts-saved-per-loss slope never increases (each job's slope
//     sequence is non-increasing under convexity, and the merge always
//     takes the global steepest next step);
//  4. every job descends its own frontier one point at a time from its
//     start to its last point.
func FuzzMerge(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		inputs := fuzzMergeInputs(seed)
		startPower, steps := Merge(inputs)

		var wantStart, minSum float64
		wantSteps := 0
		for _, in := range inputs {
			lt := in.Table
			wantStart += in.PowerScale * lt.AvgPower(in.Start)
			minSum += in.PowerScale * lt.AvgPower(len(lt.Points)-1)
			wantSteps += len(lt.Points) - 1 - in.Start
		}
		tol := 1e-9 * (1 + math.Abs(wantStart))
		if math.Abs(startPower-wantStart) > tol {
			t.Fatalf("start power %v, want sum of start points %v", startPower, wantStart)
		}
		if len(steps) != wantSteps {
			t.Fatalf("got %d steps, want every one-point slowdown: %d", len(steps), wantSteps)
		}

		cur := make([]int, len(inputs))
		for i, in := range inputs {
			cur[i] = in.Start
		}
		prevPower := startPower
		prevSlope := math.Inf(1)
		for i, st := range steps {
			if st.Table < 0 || st.Table >= len(inputs) {
				t.Fatalf("step %d targets table %d of %d", i, st.Table, len(inputs))
			}
			if st.Point != cur[st.Table]+1 {
				t.Fatalf("step %d jumps table %d from point %d to %d", i, st.Table, cur[st.Table], st.Point)
			}
			cur[st.Table] = st.Point
			if st.Power >= prevPower-0 {
				t.Fatalf("step %d power %v does not decrease from %v", i, st.Power, prevPower)
			}
			if st.Power < minSum-tol {
				t.Fatalf("step %d power %v dips below the min-point sum %v", i, st.Power, minSum)
			}
			if st.Slope > prevSlope*(1+1e-9)+1e-9 {
				t.Fatalf("step %d slope %v exceeds previous %v: steps not sorted by marginal cost", i, st.Slope, prevSlope)
			}
			if st.Loss <= 0 || st.Slope <= 0 {
				t.Fatalf("step %d has non-positive loss %v or slope %v", i, st.Loss, st.Slope)
			}
			prevPower, prevSlope = st.Power, st.Slope
		}
		if len(steps) > 0 {
			final := steps[len(steps)-1].Power
			if math.Abs(final-minSum) > tol {
				t.Fatalf("final power %v, want min-point sum %v", final, minSum)
			}
		}
		for i, in := range inputs {
			if cur[i] != len(in.Table.Points)-1 {
				t.Fatalf("table %d ends at point %d, want last point %d", i, cur[i], len(in.Table.Points)-1)
			}
		}
	})
}
