package obs

import (
	"strings"
	"testing"
)

func exposition(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestVecDeleteShrinksExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_job_energy_total", "Per-job energy.", "job", "component")
	cv.With("job-1", "realized").Add(5)
	cv.With("job-2", "realized").Add(7)
	gv := r.GaugeVec("test_job_drift", "Per-job drift.", "job")
	gv.With("job-1").Set(3)

	out := exposition(t, r)
	for _, want := range []string{`job="job-1"`, `job="job-2"`, "test_job_drift"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	if !cv.Delete("job-1", "realized") {
		t.Fatal("Delete(job-1) = false, want true")
	}
	if cv.Delete("job-1", "realized") {
		t.Fatal("second Delete(job-1) = true, want false")
	}
	if !gv.Delete("job-1") {
		t.Fatal("gauge Delete(job-1) = false, want true")
	}

	out = exposition(t, r)
	if strings.Contains(out, `job="job-1"`) {
		t.Fatalf("exposition still carries deleted job-1 series:\n%s", out)
	}
	if !strings.Contains(out, `job="job-2"`) {
		t.Fatalf("Delete removed the wrong series:\n%s", out)
	}
	// A fully-emptied family disappears from the exposition entirely.
	if strings.Contains(out, "test_job_drift") {
		t.Fatalf("empty family still rendered:\n%s", out)
	}

	// With after Delete re-creates the series from zero.
	if v := cv.With("job-1", "realized").Value(); v != 0 {
		t.Fatalf("re-created series starts at %v, want 0", v)
	}
}

func TestVecDeleteArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_arity_total", "Arity check.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("Delete with wrong arity must panic")
		}
	}()
	cv.Delete("only-one")
}

func TestHistogramVecDelete(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_hist_seconds", "Hist.", []float64{1}, "op")
	hv.With("plan").Observe(0.5)
	if !hv.Delete("plan") {
		t.Fatal("histogram Delete = false, want true")
	}
	if strings.Contains(exposition(t, r), "test_hist_seconds_count") {
		t.Fatal("deleted histogram series still rendered")
	}
}
