// Command perseus-smoke is the CI observability smoke test: it boots
// the server in-process, drives one end-to-end planning flow over HTTP
// (register → profile → signal → plan ×2 → controller tick), then
// scrapes /metrics and /healthz and exits non-zero unless every core
// series is present with a sane value. It guards the contract dashboards
// and alerting would be built on: the exposition endpoint keeps serving
// the documented metric catalog after real traffic.
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strings"
	"time"

	"perseus/internal/client"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

// buildProfile synthesizes the measurements a client-side profiler
// would report (the same construction the demos and server tests use).
func buildProfile(g *gpu.Model, stages, mbSize int) ([]profile.Measurement, float64, error) {
	m, err := model.GPT3("1.3b")
	if err != nil {
		return nil, 0, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		return nil, 0, err
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		return nil, 0, err
	}
	var ms []profile.Measurement
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			ms = append(ms,
				profile.Measurement{Virtual: v, Kind: sched.Forward, Freq: f,
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				profile.Measurement{Virtual: v, Kind: sched.Backward, Freq: f,
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	return ms, profile.MeasurePBlocking(g), nil
}

func main() {
	srv := server.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	cl := client.NewServerClient("http://" + ln.Addr().String())

	// Drive the flow the metrics should record.
	id, err := cl.RegisterJob(client.JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := gpu.ByName("A100-PCIe")
	if err != nil {
		log.Fatal(err)
	}
	ms, pBlocking, err := buildProfile(g, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.UploadProfile(id, pBlocking, ms); err != nil {
		log.Fatal(err)
	}
	dep, err := cl.WaitSchedule(id, 200, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	sig := grid.Diurnal24h()
	if _, err := cl.UploadGridSignal(*sig, "carbon"); err != nil {
		log.Fatal(err)
	}
	target := math.Floor(0.5 * sig.Horizon() / dep.Tmin)
	// Twice: one cache miss, one hit.
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.TickController(); err != nil {
		log.Fatal(err)
	}

	// Scrape and assert.
	h, err := cl.FetchHealth()
	if err != nil {
		log.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 1 || !h.SignalInstalled || !h.Ready {
		log.Fatalf("smoke: bad health view %+v", h)
	}
	if len(h.SLOs) == 0 {
		log.Fatalf("smoke: /healthz reports no SLO statuses: %+v", h)
	}
	for _, slo := range h.SLOs {
		if slo.Status != "ok" {
			log.Fatalf("smoke: SLO %s is %s after a clean flow (%+v)", slo.Name, slo.Status, slo)
		}
	}

	// The plan request left a complete trace: the cache-miss request's
	// span tree must hold at least the four documented layers
	// (HTTP root → store snapshot + cache lookup → planner solve).
	traces, err := cl.FetchTraces(0, 0, "planner.solve")
	if err != nil {
		log.Fatal(err)
	}
	var planTrace *client.Trace
	for i := range traces {
		for _, sp := range traces[i].Spans {
			if sp.Name == "cache.lookup" {
				planTrace = &traces[i]
			}
		}
	}
	if planTrace == nil {
		log.Fatalf("smoke: no plan-request trace retained (got %d traces)", len(traces))
	}
	if len(planTrace.Spans) < 4 {
		log.Fatalf("smoke: plan trace has %d spans, want >= 4: %+v", len(planTrace.Spans), planTrace.Spans)
	}
	for _, want := range []string{"http /grid/plan/{id}", "store.snapshot", "cache.lookup", "planner.solve"} {
		found := false
		for _, sp := range planTrace.Spans {
			if sp.Name == want {
				found = true
			}
		}
		if !found {
			log.Fatalf("smoke: plan trace missing span %q: %+v", want, planTrace.Spans)
		}
	}
	text, err := cl.FetchMetrics()
	if err != nil {
		log.Fatal(err)
	}
	core := []string{
		`perseus_http_requests_total{route="/grid/plan/{id}",method="GET",code="200"} 2`,
		"perseus_plan_cache_hits_total 1",
		"perseus_plan_cache_misses_total 1",
		"perseus_controller_ticks_total 1",
		"perseus_jobs_registered_total 1",
		`perseus_characterizations_total{outcome="ok"} 1`,
		`perseus_planner_plan_duration_seconds_count{planner="grid",objective="carbon"} 1`,
		`perseus_trace_spans_total{span="cache.lookup"} 2`,
		`perseus_slo_status{slo="plan-latency-p99"} 0`,
		`perseus_slo_status{slo="replan-failure-ratio"} 0`,
		`perseus_slo_status{slo="longpoll-wake-p99"} 0`,
	}
	var missing []string
	for _, want := range core {
		if !strings.Contains(text, want) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("smoke: /metrics missing core series:\n  %s\nfull exposition:\n%s",
			strings.Join(missing, "\n  "), text)
	}
	events, err := cl.FetchEvents(0)
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("smoke: /debug/events returned no events after the flow")
	}
	fmt.Printf("smoke ok: %d core series present, %d events recorded, %d-span plan trace, %d SLOs ok, uptime %.2fs\n",
		len(core), len(events), len(planTrace.Spans), len(h.SLOs), h.UptimeS)
}
