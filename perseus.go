// Package perseus is a Go implementation of Perseus ("Reducing Energy
// Bloat in Large Model Training", SOSP 2024): a software-only energy
// optimization system for large model training that removes intrinsic
// energy bloat (non-critical computations in an imbalanced pipeline
// running needlessly fast) and extrinsic energy bloat (whole pipelines
// running needlessly fast while a straggler holds up gradient sync).
//
// The package characterizes a training job's complete iteration
// time-energy Pareto frontier with an efficient graph cut-based algorithm
// and serves, for any anticipated straggler iteration time T', the energy
// schedule for T_opt = min(T*, T').
//
// Because this repository targets environments without GPUs, every
// hardware dependency is substituted with a calibrated simulation (see
// DESIGN.md): an analytical DVFS GPU model, a deterministic
// pipeline-cluster simulator, and an analytic model zoo. The optimization
// system itself — profiles, frontier characterization, server, client —
// is implemented as in the paper.
//
// Quick start:
//
//	sys, err := perseus.Characterize(perseus.Workload{
//		Model: "gpt3-1.3b", GPU: "A100-PCIe",
//		Stages: 4, MicrobatchSize: 4, Microbatches: 32,
//	})
//	...
//	plan := sys.PlanFor(0)            // remove intrinsic bloat
//	res, err := sys.Simulate(plan, nil)
package perseus

import (
	"fmt"
	"io"
	"net/http"

	"perseus/internal/baselines"
	"perseus/internal/cluster"
	"perseus/internal/experiments"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/server"
	"perseus/internal/viz"
)

// Workload describes a training job to optimize.
type Workload struct {
	// Model is a model-zoo variant name; see ModelNames.
	Model string

	// GPU is a GPU preset name; see GPUNames.
	GPU string

	// Stages is the pipeline-parallel degree.
	Stages int

	// MicrobatchSize and Microbatches define the per-pipeline batch.
	MicrobatchSize, Microbatches int

	// DataParallel and TensorParallel degrees; 0 means 1.
	DataParallel, TensorParallel int

	// Schedule is the pipeline schedule name ("1f1b", "gpipe",
	// "interleaved-1f1b", "early-recompute-1f1b"); empty means 1F1B.
	Schedule string

	// Chunks is the number of model chunks per stage for interleaved
	// 1F1B (paper §4.4); 0 means 1.
	Chunks int

	// TargetSteps tunes the optimizer's unit time so the frontier has
	// about this many schedules; 0 means 1500.
	TargetSteps int
}

// System is a characterized workload: its frontier and simulator.
type System struct {
	sys *experiments.System
}

// Plan assigns a locked SM frequency (MHz) to every pipeline instruction.
type Plan = cluster.Plan

// Straggler marks one data-parallel pipeline as slowed by Factor.
type Straggler = cluster.Straggler

// Result is one simulated training iteration's time and energy.
type Result = cluster.Result

// FrontierPoint is one energy schedule on the time-energy frontier.
type FrontierPoint struct {
	// Time is the planned iteration time in seconds.
	Time float64
	// Energy is the schedule's computation energy in joules (adjusted
	// for blocking power, paper Eq. 4).
	Energy float64
}

// Characterize profiles the workload and characterizes its time-energy
// frontier (paper Algorithm 1).
func Characterize(w Workload) (*System, error) {
	g, err := gpu.ByName(w.GPU)
	if err != nil {
		return nil, err
	}
	cfg := experiments.WorkloadConfig{
		Display:        w.Model,
		Model:          w.Model,
		Stages:         w.Stages,
		MicrobatchSize: w.MicrobatchSize,
		Microbatches:   w.Microbatches,
		DataParallel:   w.DataParallel,
		TensorParallel: w.TensorParallel,
		Schedule:       w.Schedule,
		Chunks:         w.Chunks,
	}
	sys, err := experiments.BuildSystem(cfg, g, experiments.Scale{TargetSteps: w.TargetSteps})
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Tmin returns the fastest iteration time on the frontier in seconds: the
// iteration time of running every computation at maximum speed.
func (s *System) Tmin() float64 { return s.sys.Frontier.Tmin() }

// TStar returns the minimum-energy iteration time in seconds; slowing
// beyond it increases energy (paper §3.1).
func (s *System) TStar() float64 { return s.sys.Frontier.TStar() }

// Frontier returns the characterized frontier points by increasing time.
func (s *System) Frontier() []FrontierPoint {
	pts := s.sys.Frontier.Points()
	out := make([]FrontierPoint, len(pts))
	for i, p := range pts {
		out[i] = FrontierPoint{Time: p.Time, Energy: p.Energy}
	}
	return out
}

// PlanFor returns the energy schedule for an anticipated straggler
// iteration time tPrime, applying T_opt = min(T*, T') (paper Eq. 2).
// tPrime <= 0 returns the no-straggler schedule at Tmin, which removes
// intrinsic bloat only.
func (s *System) PlanFor(tPrime float64) Plan { return s.sys.PerseusPlan(tPrime) }

// MaxFrequencyPlan returns the default mode of operation: every
// computation at maximum frequency.
func (s *System) MaxFrequencyPlan() Plan {
	return cluster.PlanAllMax(s.sys.Spec.Schedule, s.sys.GPU)
}

// MinEnergyPlan returns the §2.4 upper-bound plan: every computation at
// its minimum-energy frequency, regardless of slowdown.
func (s *System) MinEnergyPlan() (Plan, error) { return s.sys.MinEnergyPlan() }

// EnvPipePlan returns the EnvPipe baseline's plan (paper §6.2).
func (s *System) EnvPipePlan() (Plan, error) { return baselines.EnvPipe(s.sys.Spec) }

// BaselineFrontier returns a Zeus-derived baseline's time-energy sweep:
// name is "zeus-global" or "zeus-per-stage" (paper §6.4).
func (s *System) BaselineFrontier(name string) ([]FrontierPoint, error) {
	var pts []baselines.PlanPoint
	var err error
	switch name {
	case "zeus-global":
		pts, err = baselines.ZeusGlobal(s.sys.Spec)
	case "zeus-per-stage":
		pts, err = baselines.ZeusPerStage(s.sys.Spec)
	default:
		return nil, fmt.Errorf("perseus: unknown baseline %q", name)
	}
	if err != nil {
		return nil, err
	}
	out := make([]FrontierPoint, len(pts))
	for i, p := range pts {
		out[i] = FrontierPoint{Time: p.Time, Energy: p.Energy}
	}
	return out, nil
}

// Simulate runs one training iteration with every pipeline on the same
// plan, under the given stragglers, and returns time and energy.
func (s *System) Simulate(plan Plan, stragglers []Straggler) (Result, error) {
	return cluster.Simulate(s.sys.Spec, plan, stragglers)
}

// SimulatePerPipeline runs one iteration with per-pipeline plans — how
// Perseus deploys schedules when a straggler is present.
func (s *System) SimulatePerPipeline(planFor func(pipeline int) Plan, stragglers []Straggler) (Result, error) {
	return cluster.SimulateMulti(s.sys.Spec, planFor, stragglers)
}

// Baseline returns the all-max-frequency iteration result without
// stragglers.
func (s *System) Baseline() Result { return s.sys.Base }

// Savings returns the energy saving fraction of a result against the
// all-max baseline, plus the iteration slowdown fraction.
func (s *System) Savings(r Result) (saving, slowdown float64) {
	return 1 - r.Energy/s.sys.Base.Energy, r.IterTime/s.sys.Base.IterTime - 1
}

// RenderTimeline writes the pipeline execution timeline under the plan
// (paper Figures 1/10) as ASCII art.
func (s *System) RenderTimeline(w io.Writer, plan Plan, width int) error {
	spans, err := cluster.Timeline(s.sys.Spec, plan)
	if err != nil {
		return err
	}
	return viz.Timeline(w, spans, width)
}

// SaveLookupTable writes the characterized energy-schedule lookup table
// as JSON (paper §3.2's server-side cache), loadable with
// frontier.LoadTable.
func (s *System) SaveLookupTable(w io.Writer) error {
	return s.sys.Frontier.Table().Save(w)
}

// LookupPoint exposes the frontier's raw lookup for advanced callers.
func (s *System) LookupPoint(tPrime float64) frontier.Point {
	return s.sys.Frontier.Lookup(tPrime)
}

// ModelNames lists the model zoo variants (paper Table 1).
func ModelNames() []string { return model.Names() }

// GPUNames lists the GPU presets.
func GPUNames() []string {
	return []string{gpu.A100PCIe.Name, gpu.A100SXM.Name, gpu.A40.Name, gpu.H100SXM.Name}
}

// NewServerHandler returns an http.Handler serving the Perseus server API
// (paper §3.2): job registration, profile upload, schedule lookup, and
// set_straggler.
func NewServerHandler() http.Handler { return server.New().Handler() }
