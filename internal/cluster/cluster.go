// Package cluster simulates the execution of one training iteration on a
// cluster of GPUs: data-parallel pipeline replicas running a pipeline
// schedule under a frequency plan, with gradient synchronization at the
// end of the iteration and optional straggler pipelines.
//
// It substitutes for the Merak training framework + real GPU testbed of
// paper §5-6. The simulator is deterministic and exact with respect to the
// model of Eq. 3: total energy is computation energy plus P_blocking times
// all non-computing GPU time, including both intra-pipeline communication
// gaps and the tail wait for the straggler pipeline to finish gradient
// sync.
package cluster

import (
	"fmt"
	"math"

	"perseus/internal/dag"
	"perseus/internal/gpu"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// Spec describes one data-parallel training job.
type Spec struct {
	// Schedule is the per-pipeline instruction schedule.
	Schedule *sched.Schedule

	// Profile provides per-computation time/energy at each frequency.
	Profile *profile.Profile

	// DataParallel is the number of pipeline replicas (paper §2.1); all
	// replicas run the same schedule and synchronize gradients at the
	// end of the iteration. Default 1.
	DataParallel int

	// TensorParallel is the number of GPUs per virtual stage performing
	// identical split work (paper §4.4). Per-GPU computation times in
	// Profile already reflect the split; this multiplies energy
	// accounting. Default 1.
	TensorParallel int

	// CommLatency is a fixed latency added to cross-stage dependencies
	// (P2P activation/gradient transfers). The sending and receiving
	// GPUs block at P_blocking for its duration.
	CommLatency float64
}

func (s Spec) dp() int {
	if s.DataParallel <= 0 {
		return 1
	}
	return s.DataParallel
}

func (s Spec) tp() int {
	if s.TensorParallel <= 0 {
		return 1
	}
	return s.TensorParallel
}

// GPUs returns the total number of GPUs the job occupies.
func (s Spec) GPUs() int { return s.dp() * s.tp() * s.Schedule.Stages }

// Plan assigns a frequency to every schedule op (indexed by op id).
// Frequency 0 denotes a constant-time op. PlanAllMax returns the default
// mode of operation: everything at maximum frequency.
type Plan []gpu.Frequency

// PlanAllMax builds the all-maximum-frequency plan for a spec.
func PlanAllMax(s *sched.Schedule, g *gpu.Model) Plan {
	plan := make(Plan, len(s.Ops))
	for i, op := range s.Ops {
		if op.Kind == sched.Constant {
			continue
		}
		plan[i] = g.FMax
	}
	return plan
}

// Straggler marks one pipeline replica as slowed by Factor: every
// computation on it takes Factor times longer (e.g. thermal or power
// throttling, paper §2.3).
type Straggler struct {
	Pipeline int
	Factor   float64
}

// PipelineResult is the outcome of one pipeline replica.
type PipelineResult struct {
	// Time is the pipeline's own makespan (before waiting for sync).
	Time float64

	// ComputeJ is computation energy over the pipeline's GPUs.
	ComputeJ float64

	// BlockJ is blocking energy (gaps + tail sync wait) over the
	// pipeline's GPUs, up to the global iteration end.
	BlockJ float64
}

// Result is the outcome of one training iteration.
type Result struct {
	// IterTime is the end-to-end iteration time: the slowest pipeline's
	// makespan (every pipeline must wait for gradient sync, §2.1).
	IterTime float64

	// Energy is the total energy over all GPUs: ComputeJ + BlockJ.
	Energy float64

	// ComputeJ and BlockJ decompose Energy per Eq. 3.
	ComputeJ, BlockJ float64

	// AvgPowerW is the cluster's average power draw: Energy divided by
	// iteration time and GPU count. Because Perseus saves energy without
	// slowdown, it reduces average power draw by the same fraction — the
	// paper's datacenter power-delivery motivation (§1).
	AvgPowerW float64

	// PerPipeline holds each replica's breakdown.
	PerPipeline []PipelineResult
}

// TotalPowerW returns the whole cluster's average power draw over the
// iteration — Energy over iteration time, summed across every
// pipeline's GPUs (unlike AvgPowerW, which is per GPU). This is the
// rate segment-level accounting integrates: energy, carbon, and cost
// over a constant-state interval are TotalPowerW × duration × rate.
func (r *Result) TotalPowerW() float64 {
	if r.IterTime <= 0 {
		return 0
	}
	return r.Energy / r.IterTime
}

// OpSpan is one computation's realized execution interval, for timeline
// rendering (paper Figures 1 and 10).
type OpSpan struct {
	Op    sched.Op
	Start float64
	Dur   float64
	Freq  gpu.Frequency
	Power float64
}

// engine precomputes the schedule topology for repeated simulations.
type engine struct {
	spec Spec
	g    *dag.Graph
}

func newEngine(spec Spec) (*engine, error) {
	if spec.Schedule == nil || spec.Profile == nil {
		return nil, fmt.Errorf("cluster: spec needs schedule and profile")
	}
	g, err := dag.Build(spec.Schedule, func(op sched.Op) int64 { return 1 })
	if err != nil {
		return nil, err
	}
	return &engine{spec: spec, g: g}, nil
}

// realize returns each op's realized duration and raw energy under the
// plan, scaled by the straggler factor.
func (e *engine) realize(plan Plan, factor float64) (durs, energy []float64, err error) {
	ops := e.g.Ops
	durs = make([]float64, len(ops))
	energy = make([]float64, len(ops))
	for i, op := range ops {
		tp, err := e.spec.Profile.For(op)
		if err != nil {
			return nil, nil, err
		}
		var pt gpu.Point
		var raw float64
		if tp.Constant || plan[i] == 0 {
			pt, raw = tp.Points[0], tp.Raw[0]
		} else {
			found := false
			for j := range tp.Points {
				if tp.Points[j].Freq == plan[i] {
					pt, raw = tp.Points[j], tp.Raw[j]
					found = true
					break
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("cluster: op %d plan frequency %d not in profile for %v", i, plan[i], op)
			}
		}
		// A throttled straggler runs longer; we model its computation
		// power as unchanged, so energy scales with the factor.
		durs[i] = pt.Time * factor
		energy[i] = raw * factor
	}
	return durs, energy, nil
}

// startsOf computes earliest start times under float durations, adding
// CommLatency on cross-stage dependency edges.
func (e *engine) startsOf(durs []float64) ([]float64, float64) {
	g := e.g
	est := make([]float64, len(g.Dur))
	for _, v := range g.Topo() {
		var dv float64
		if int(v) < len(durs) {
			dv = durs[v]
		}
		for _, w := range g.Succ[v] {
			lat := 0.0
			if e.spec.CommLatency > 0 && int(v) < len(g.Ops) && int(w) < len(g.Ops) &&
				g.Ops[v].Stage != g.Ops[w].Stage {
				lat = e.spec.CommLatency
			}
			if t := est[v] + dv + lat; t > est[w] {
				est[w] = t
			}
		}
	}
	return est, est[g.Sink]
}

// Simulate runs one training iteration with every pipeline executing the
// same frequency plan and returns its timing and energy.
func Simulate(spec Spec, plan Plan, stragglers []Straggler) (Result, error) {
	return SimulateMulti(spec, func(int) Plan { return plan }, stragglers)
}

// SimulateMulti runs one training iteration with a per-pipeline frequency
// plan: planFor(p) returns pipeline p's plan. This is how Perseus deploys
// energy schedules — the straggler keeps its own pace while non-straggler
// pipelines receive the T_opt schedule (paper §3.2 step 5).
func SimulateMulti(spec Spec, planFor func(pipeline int) Plan, stragglers []Straggler) (Result, error) {
	e, err := newEngine(spec)
	if err != nil {
		return Result{}, err
	}
	factors := make([]float64, spec.dp())
	for i := range factors {
		factors[i] = 1
	}
	for _, st := range stragglers {
		if st.Pipeline < 0 || st.Pipeline >= spec.dp() {
			return Result{}, fmt.Errorf("cluster: straggler pipeline %d out of range [0,%d)", st.Pipeline, spec.dp())
		}
		if st.Factor < 1 {
			return Result{}, fmt.Errorf("cluster: straggler factor %v < 1", st.Factor)
		}
		factors[st.Pipeline] = st.Factor
	}

	type pipeState struct {
		time float64
		comp float64   // compute energy (one GPU per stage)
		busy []float64 // per physical stage busy seconds
	}
	states := make([]pipeState, spec.dp())
	for pi := range states {
		plan := planFor(pi)
		if len(plan) != len(spec.Schedule.Ops) {
			return Result{}, fmt.Errorf("cluster: pipeline %d plan has %d entries for %d ops",
				pi, len(plan), len(spec.Schedule.Ops))
		}
		durs, energies, err := e.realize(plan, factors[pi])
		if err != nil {
			return Result{}, err
		}
		_, mk := e.startsOf(durs)
		ps := pipeState{time: mk, busy: make([]float64, spec.Schedule.Stages)}
		for i, op := range e.g.Ops {
			ps.comp += energies[i]
			ps.busy[op.Stage] += durs[i]
		}
		states[pi] = ps
	}

	var res Result
	for _, ps := range states {
		if ps.time > res.IterTime {
			res.IterTime = ps.time
		}
	}
	pb := spec.Profile.PBlocking
	tp := float64(spec.tp())
	for _, ps := range states {
		pr := PipelineResult{Time: ps.time, ComputeJ: ps.comp * tp}
		for _, busy := range ps.busy {
			idle := res.IterTime - busy
			if idle < -1e-9 {
				return Result{}, fmt.Errorf("cluster: stage busy %v exceeds iteration time %v", busy, res.IterTime)
			}
			pr.BlockJ += math.Max(idle, 0) * pb * tp
		}
		res.PerPipeline = append(res.PerPipeline, pr)
		res.ComputeJ += pr.ComputeJ
		res.BlockJ += pr.BlockJ
	}
	res.Energy = res.ComputeJ + res.BlockJ
	if res.IterTime > 0 {
		res.AvgPowerW = res.Energy / res.IterTime / float64(spec.GPUs())
	}
	return res, nil
}

// Timeline returns the realized execution spans of one (non-straggler)
// pipeline under the plan, for visualization.
func Timeline(spec Spec, plan Plan) ([]OpSpan, error) {
	e, err := newEngine(spec)
	if err != nil {
		return nil, err
	}
	if len(plan) != len(spec.Schedule.Ops) {
		return nil, fmt.Errorf("cluster: plan has %d entries for %d ops", len(plan), len(spec.Schedule.Ops))
	}
	durs, energies, err := e.realize(plan, 1)
	if err != nil {
		return nil, err
	}
	starts, _ := e.startsOf(durs)
	spans := make([]OpSpan, len(e.g.Ops))
	for i, op := range e.g.Ops {
		power := 0.0
		if durs[i] > 0 {
			power = energies[i] / durs[i]
		}
		spans[i] = OpSpan{Op: op, Start: starts[i], Dur: durs[i], Freq: plan[i], Power: power}
	}
	return spans, nil
}
