package server

import (
	"context"
	"sync"
	"time"

	"perseus/internal/obs"
)

// hub is the server's notification fabric for long-poll fan-out: named
// topics whose watchers all wake on one O(1) broadcast. A topic holds
// one channel; bump closes it (releasing every parked watcher at once,
// however many there are) and installs a fresh one for the next
// generation. Subscribing is O(1), broadcasting is O(1), and no
// per-waiter state is ever registered — the design that lets one
// version bump wake 10⁵ parked trainers without the server touching
// each of them.
//
// Topics are strings so every layer shares one hub: deployed-schedule
// versions use topicSchedule(jobID), and the plan-input generation
// (the epoch every cached grid plan is keyed by) uses topicPlanEpoch.
// Watchers that need either of two events (a conditional /grid/plan
// poll cares about both the epoch and the job's frontier) park on two
// channels at once.
type hub struct {
	mu     sync.Mutex
	topics map[string]chan struct{}
	obs    *serverObs // broadcast/topic metrics (nil in bare unit tests)
}

func newHub(o *serverObs) *hub {
	return &hub{topics: map[string]chan struct{}{}, obs: o}
}

// topicSchedule names a job's deployed-schedule version topic, bumped
// by every j.bumpLocked.
func topicSchedule(jobID string) string { return "sched:" + jobID }

// topicPlanEpoch is the plan-input generation topic, bumped whenever
// the store's epoch advances (signal re-install, forecast revision) —
// the event that invalidates every cached grid plan at once.
const topicPlanEpoch = "epoch"

// watch returns the channel that closes at the topic's next bump.
// Callers must re-check the condition they are watching after
// subscribing: a bump between reading the state and calling watch is
// otherwise lost.
func (h *hub) watch(topic string) <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.topics[topic]
	if !ok {
		ch = make(chan struct{})
		h.topics[topic] = ch
		if h.obs != nil {
			h.obs.hubTopics.Set(float64(len(h.topics)))
		}
	}
	return ch
}

// bump wakes every watcher of topic in one broadcast. A topic nobody
// has watched yet has no channel and the bump is a cheap no-op — the
// hub never allocates for quiet topics.
func (h *hub) bump(topic string) {
	h.mu.Lock()
	ch, ok := h.topics[topic]
	if ok {
		delete(h.topics, topic)
	}
	if h.obs != nil && ok {
		h.obs.hubBroadcasts.Inc()
		h.obs.hubTopics.Set(float64(len(h.topics)))
	}
	h.mu.Unlock()
	if ok {
		close(ch)
	}
}

// wakeReason says how a parked waiter was released.
type wakeReason int

const (
	wakeBumped    wakeReason = iota // a watched topic broadcast
	wakeTimeout                     // the wait deadline passed
	wakeCancelled                   // the client disconnected
)

// parkWaiter parks the calling request until one of the watch channels
// closes, the deadline passes, or ctx is cancelled (the client hung
// up). It owns the whole waiter lifecycle: the waiters gauge, the
// park-to-wake histogram on a broadcast wake, the cancellation
// counter, and the longpoll.park trace span. w2 may be nil (a nil
// channel never receives, so the select arm is inert).
func (s *Server) parkWaiter(ctx context.Context, job string, deadline time.Time, w1, w2 <-chan struct{}) wakeReason {
	remain := time.Until(deadline)
	if remain <= 0 {
		return wakeTimeout
	}
	t := time.NewTimer(remain)
	defer t.Stop()
	s.obs.waiters.Add(1)
	defer s.obs.waiters.Add(-1)
	parked := time.Now()
	// Each park records a longpoll.park child span of the request's
	// trace, marked woken=true when a broadcast (not the wait timeout
	// or a disconnect) released it.
	_, park := obs.Child(ctx, spanLongpollPark)
	park.SetAttr("job", job)
	defer park.End()
	woken := func() wakeReason {
		s.obs.wakeDur.Observe(time.Since(parked).Seconds())
		park.SetAttr("woken", "true")
		return wakeBumped
	}
	select {
	case <-w1:
		return woken()
	case <-w2:
		return woken()
	case <-t.C:
		park.SetAttr("woken", "false")
		return wakeTimeout
	case <-ctx.Done():
		park.SetAttr("woken", "false")
		park.SetAttr("cancelled", "true")
		s.obs.cancelled.Inc()
		return wakeCancelled
	}
}
