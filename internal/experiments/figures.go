package experiments

import (
	"fmt"
	"io"
	"math"

	"perseus/internal/cluster"
	"perseus/internal/fit"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/viz"
)

// Figure1 renders paper Figure 1 (and the Figure 10 panels): one training
// iteration of a model with 4 stages and 6 microbatches on A100 PCIe,
// drawn to scale — first at all-maximum frequency, then under Perseus's
// Tmin energy schedule that removes intrinsic bloat without lengthening
// the iteration.
func Figure1(w io.Writer, modelName string, sc Scale) error {
	cfg := WorkloadConfig{
		Display: modelName, Model: modelName,
		Stages: 4, MicrobatchSize: 4, Microbatches: 6,
	}
	sys, err := BuildSystem(cfg, gpu.A100PCIe, sc)
	if err != nil {
		return err
	}
	maxPlan := cluster.PlanAllMax(sys.Spec.Schedule, sys.GPU)
	spans, err := cluster.Timeline(sys.Spec, maxPlan)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "-- %s, all maximum frequency (iteration %.2fs) --\n", modelName, sys.Base.IterTime)
	if err := viz.Timeline(w, spans, 100); err != nil {
		return err
	}
	plan := sys.PerseusPlan(0)
	res, err := sys.SimulatePlan(plan)
	if err != nil {
		return err
	}
	spans, err = cluster.Timeline(sys.Spec, plan)
	if err != nil {
		return err
	}
	saving, slowdown := 1-res.Energy/sys.Base.Energy, res.IterTime/sys.Base.IterTime-1
	fmt.Fprintf(w, "-- %s, Perseus Tmin schedule (iteration %.2fs, %.1f%% energy saving, %.1f%% slowdown) --\n",
		modelName, res.IterTime, 100*saving, 100*slowdown)
	return viz.Timeline(w, spans, 100)
}

// Figure9Configs are the three parallelization configurations of paper
// Figure 9.
func Figure9Configs() []struct {
	Config WorkloadConfig
	GPU    *gpu.Model
} {
	return []struct {
		Config WorkloadConfig
		GPU    *gpu.Model
	}{
		{WorkloadConfig{Display: "GPT-3 1.3B PP4", Model: "gpt3-1.3b", Stages: 4,
			MicrobatchSize: 4, Microbatches: 128}, gpu.A100PCIe},
		{WorkloadConfig{Display: "GPT-3 2.7B PP8", Model: "gpt3-2.7b", Stages: 8,
			MicrobatchSize: 4, Microbatches: 256}, gpu.A40},
		{ThreeDWorkload(), gpu.A40},
	}
}

// FrontierSummary condenses one frontier-comparison panel into a table:
// the span of each system's curve and whether Perseus Pareto-dominates it
// (the paper's headline for Figures 9/12/13).
func FrontierSummary(title string, series []FrontierSeries) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"System", "Time span (s)", "Energy span (J)", "Dominated by Perseus"},
	}
	per := series[0]
	for i, s := range series {
		tmin, tmax := math.Inf(1), math.Inf(-1)
		emin, emax := math.Inf(1), math.Inf(-1)
		for j := range s.Time {
			tmin, tmax = math.Min(tmin, s.Time[j]), math.Max(tmax, s.Time[j])
			emin, emax = math.Min(emin, s.Energy[j]), math.Max(emax, s.Energy[j])
		}
		dom := "-"
		if i > 0 {
			if ParetoDominates(per, s, 0.01) {
				dom = "yes"
			} else {
				dom = "no"
			}
		}
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.2f - %.2f", tmin, tmax),
			fmt.Sprintf("%.0f - %.0f", emin, emax),
			dom,
		})
	}
	return t
}

// Figure9 reproduces paper Figure 9: Perseus versus the Zeus-derived
// baselines on three GPT-3 parallelization configurations. It returns one
// summary table per panel and optionally streams the full CSV series.
func Figure9(csv io.Writer, sc Scale) ([]*Table, error) {
	var tables []*Table
	for _, panel := range Figure9Configs() {
		sys, err := BuildSystem(panel.Config, panel.GPU, sc)
		if err != nil {
			return nil, err
		}
		series, err := FrontierComparison(sys, 40)
		if err != nil {
			return nil, err
		}
		title := fmt.Sprintf("Figure 9: %s on %s", panel.Config.Display, panel.GPU.Name)
		tables = append(tables, FrontierSummary(title, series))
		if csv != nil {
			for _, s := range series {
				if err := viz.Series(csv, title+" / "+s.Name, s.Time, s.Energy); err != nil {
					return nil, err
				}
			}
		}
	}
	return tables, nil
}

// Figure12And13 reproduces Appendix H: frontier comparisons for the
// remaining workloads — Figure 12 (eight-stage A40) and Figure 13
// (four-stage A100 PCIe).
func Figure12And13(csv io.Writer, sc Scale) ([]*Table, error) {
	var tables []*Table
	panels := []struct {
		cfgs []WorkloadConfig
		g    *gpu.Model
		fig  string
	}{
		{A40Workloads()[1:], gpu.A40, "Figure 12"}, // BERT, T5, Bloom, WRN
		{A100Workloads()[1:], gpu.A100PCIe, "Figure 13"},
	}
	for _, p := range panels {
		for _, cfg := range p.cfgs {
			sys, err := BuildSystem(cfg, p.g, sc)
			if err != nil {
				return nil, err
			}
			series, err := FrontierComparison(sys, 30)
			if err != nil {
				return nil, err
			}
			title := fmt.Sprintf("%s: %s on %s", p.fig, cfg.Display, p.g.Name)
			tables = append(tables, FrontierSummary(title, series))
			if csv != nil {
				for _, s := range series {
					if err := viz.Series(csv, title+" / "+s.Name, s.Time, s.Energy); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return tables, nil
}

// Figure11 reproduces Appendix D Figure 11: the quality of the exponential
// fit to each stage's Pareto-optimal (time, energy) measurements, for
// GPT-3 0.3B with four stages on A40.
func Figure11() (*Table, error) {
	m, err := model.GPT3("0.3b")
	if err != nil {
		return nil, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), 4)
	if err != nil {
		return nil, err
	}
	prof, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: gpu.A40, Stages: 4, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 11: exponential fit quality per stage (GPT-3 0.3B, A40)",
		Header: []string{"Stage", "Kind", "Pareto points", "Fit rel. RMSE (%)"},
		Notes:  []string{"the exponential a*exp(b*t)+c is a natural fit to Pareto measurements (Appendix D)"},
	}
	for v := 0; v < 4; v++ {
		for _, kind := range []sched.Kind{sched.Forward, sched.Backward} {
			tp := prof.Types[profile.TypeKey{Virtual: v, Kind: kind}]
			var ts, es []float64
			var mean float64
			for _, pt := range tp.Points {
				ts = append(ts, pt.Time)
				es = append(es, pt.Energy)
				mean += pt.Energy
			}
			mean /= float64(len(es))
			rmse := fit.RMSE(tp.Curve, ts, es)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(v), kind.String(), fmt.Sprint(len(tp.Points)),
				fmt.Sprintf("%.2f", 100*rmse/math.Abs(mean)),
			})
		}
	}
	return t, nil
}

// RealizedPotential reproduces §6.2.3: the fraction of the §2.4 potential
// savings Perseus realizes without stragglers (paper: 74% on A100, 89% on
// A40 on average).
func RealizedPotential(g *gpu.Model, cfgs []WorkloadConfig, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("§6.2.3 realized fraction of potential savings on %s", g.Name),
		Header: []string{"Workload", "Perseus (%)", "Potential (%)", "Realized (%)"},
	}
	var sum float64
	for _, cfg := range cfgs {
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		pres, err := sys.SimulatePlan(sys.PerseusPlan(0))
		if err != nil {
			return nil, err
		}
		minPlan, err := sys.MinEnergyPlan()
		if err != nil {
			return nil, err
		}
		mres, err := sys.SimulatePlan(minPlan)
		if err != nil {
			return nil, err
		}
		perseus := 1 - pres.Energy/sys.Base.Energy
		potential := 1 - mres.Energy/sys.Base.Energy
		realized := perseus / potential
		sum += realized
		t.Rows = append(t.Rows, []string{cfg.Display, pct(perseus), pct(potential), pct(realized)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average realized %.0f%% (paper: 74%% A100, 89%% A40)",
		100*sum/float64(len(cfgs))))
	return t, nil
}
