package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"perseus/internal/fleet"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// FleetCapRequest sets the facility power cap (watts); 0 uncaps.
type FleetCapRequest struct {
	CapW float64 `json:"cap_w"`
}

// JobAllocationResponse is one job's fleet allocation.
type JobAllocationResponse struct {
	JobID string `json:"job_id"`

	// Ready is false until the job is characterized; an unready job
	// draws no planned power and takes no part in the allocation.
	Ready bool `json:"ready"`

	// Time is the allocated planned iteration time; the job's deployed
	// schedule never runs faster while a cap is in force.
	Time float64 `json:"time_s"`

	// PowerW is the job's allocated power draw (all pipelines).
	PowerW float64 `json:"power_w"`

	// FloorTime and Loss mirror fleet.JobAlloc.
	FloorTime float64 `json:"floor_s"`
	Loss      float64 `json:"loss"`
}

// FleetStatusResponse is the fleet-wide allocation.
type FleetStatusResponse struct {
	CapW     float64                 `json:"cap_w"`
	PowerW   float64                 `json:"power_w"`
	Loss     float64                 `json:"loss"`
	Feasible bool                    `json:"feasible"`
	Jobs     []JobAllocationResponse `json:"jobs"`
}

func (s *Server) handleFleetCap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req FleetCapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.setFleetCap(r.Context(), req.CapW)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.recomputeFleet(r.Context()))
}

// SetFleetCap sets the facility power cap and re-divides it across the
// characterized jobs; capW = 0 uncaps the fleet. NaN, infinite, or
// negative watts are rejected (HTTP 400 at the POST /fleet/cap layer) —
// a malformed cap must not silently lift the facility envelope.
func (s *Server) SetFleetCap(capW float64) (FleetStatusResponse, error) {
	return s.setFleetCap(context.Background(), capW)
}

func (s *Server) setFleetCap(ctx context.Context, capW float64) (FleetStatusResponse, error) {
	if math.IsNaN(capW) || math.IsInf(capW, 0) || capW < 0 {
		return FleetStatusResponse{}, fmt.Errorf("server: fleet cap must be a finite non-negative number of watts, got %v", capW)
	}
	s.st.mu.Lock()
	s.st.capW = capW
	s.st.mu.Unlock()
	return s.recomputeFleet(ctx), nil
}

// FleetStatus recomputes and returns the fleet-wide allocation under
// the current cap.
func (s *Server) FleetStatus() FleetStatusResponse {
	return s.recomputeFleet(context.Background())
}

// AllocationOf returns a job's latest fleet allocation.
func (s *Server) AllocationOf(id string) (JobAllocationResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return JobAllocationResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.alloc == nil {
		return JobAllocationResponse{JobID: id}, nil
	}
	return JobAllocationResponse{
		JobID:     id,
		Ready:     true,
		Time:      j.alloc.Time,
		PowerW:    j.alloc.PowerW,
		FloorTime: j.alloc.FloorTime,
		Loss:      j.alloc.Loss,
	}, nil
}

// recomputeFleet runs the fleet allocator over every characterized job
// under the current cap, deploys each job's allocated iteration-time
// floor (bumping its schedule version when it changes), and returns the
// fleet-wide view. Jobs still characterizing appear with Ready false.
// The whole recomputation is serialized: the deployed floors always
// reflect one allocation of the cap current when it ran.
func (s *Server) recomputeFleet(ctx context.Context) FleetStatusResponse {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	gs := s.st.gridState()
	s.st.mu.Lock()
	capW := s.st.capW
	s.st.mu.Unlock()
	jobs := s.st.jobsInOrder()

	var fjobs []fleet.Job
	var ready []int // indices into jobs, aligned with fjobs
	for i, j := range jobs {
		j.mu.Lock()
		if j.table != nil {
			fjobs = append(fjobs, fleet.Job{
				ID:        j.id,
				Table:     j.table,
				Pipelines: j.req.DataParallel,
				Weight:    j.req.Weight,
				TPrime:    j.tPrime,
			})
			ready = append(ready, i)
		}
		j.mu.Unlock()
	}
	// The allocation runs through the instrumented fleet planner so the
	// capacity layer reports planning latency like the temporal and
	// spatial layers. The cap was validated at the API boundary, but a
	// planner error must still not crash the recompute: fall back to an
	// empty (infeasible) allocation.
	p := obs.InstrumentPlanner(ctx, s.wrapPlanner(&fleet.Planner{Jobs: fjobs}),
		"fleet", s.obs.planLatency, s.obs.planErrors)
	var alloc fleet.Allocation
	if res, err := p.Plan(pln.Request{CapW: capW}); err == nil {
		alloc = *res.(*fleet.Allocation)
	}

	st := FleetStatusResponse{
		CapW:     alloc.CapW,
		PowerW:   alloc.PowerW,
		Loss:     alloc.Loss,
		Feasible: alloc.Feasible,
	}
	byID := map[string]JobAllocationResponse{}
	for k, ja := range alloc.Jobs {
		j := jobs[ready[k]]
		// Only an actual cap constrains deployment; uncapped allocations
		// sit at the job's own floor, which Schedule derives itself.
		var capTime float64
		if capW > 0 {
			capTime = ja.Time
		}
		j.mu.Lock()
		if j.capTime != capTime {
			// The fleet floor moves the deployed operating point: settle
			// emissions at the old point first.
			j.accrueLocked(gs)
			j.capTime = capTime
			j.bumpLocked()
		}
		a := ja
		j.alloc = &a
		j.mu.Unlock()
		byID[j.id] = JobAllocationResponse{
			JobID:     j.id,
			Ready:     true,
			Time:      ja.Time,
			PowerW:    ja.PowerW,
			FloorTime: ja.FloorTime,
			Loss:      ja.Loss,
		}
	}
	for _, j := range jobs {
		if resp, ok := byID[j.id]; ok {
			st.Jobs = append(st.Jobs, resp)
		} else {
			st.Jobs = append(st.Jobs, JobAllocationResponse{JobID: j.id})
		}
	}
	return st
}
