package client

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

func newTrainer(t *testing.T, stages, micro int) *Trainer {
	t.Helper()
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	w := profile.Workload{
		Model: m, GPU: gpu.A100PCIe, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.OneFOneB(stages, micro)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(s, gpu.A100PCIe, refs, m.BwdFactor)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

func TestProfilerMeasuresDevice(t *testing.T) {
	dev := gpu.NewDevice(gpu.A40, "test")
	p := NewProfiler(dev)
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	sec, joules := dev.Run(0.1, 0.25)
	p.Advance(sec)
	if err := p.End(3, sched.Forward); err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != 1 {
		t.Fatalf("%d records", len(p.Records))
	}
	m := p.Records[0]
	if m.Virtual != 3 || m.Kind != sched.Forward || m.Freq != gpu.A40.FMax {
		t.Errorf("bad measurement %+v", m)
	}
	if math.Abs(m.Time-sec) > 1e-12 || math.Abs(m.Energy-joules) > 1e-9 {
		t.Errorf("measured (%v, %v), want (%v, %v)", m.Time, m.Energy, sec, joules)
	}
	// Begin twice is an error; End without Begin is an error.
	if err := p.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := p.Begin(); err == nil {
		t.Error("double Begin should fail")
	}
	if err := p.End(0, sched.Forward); err != nil {
		t.Fatal(err)
	}
	if err := p.End(0, sched.Forward); err == nil {
		t.Error("End without Begin should fail")
	}
}

func TestControllerAsyncApply(t *testing.T) {
	dev := gpu.NewDevice(gpu.A100PCIe, "test")
	c := NewController(dev)
	defer c.Close()
	c.SetSpeed(1005)
	c.Sync()
	if dev.Frequency() != 1005 {
		t.Errorf("frequency %d after Sync, want 1005", dev.Frequency())
	}
	// Zero is a no-op.
	c.SetSpeed(0)
	c.Sync()
	if dev.Frequency() != 1005 {
		t.Errorf("frequency changed by zero request")
	}
}

func TestRunIterationDeterministic(t *testing.T) {
	tr := newTrainer(t, 2, 4)
	tr.LockFrequency(tr.GPU.FMax)
	t1, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("iteration times differ: %v vs %v", t1, t2)
	}
	if t1 <= 0 {
		t.Errorf("iteration time %v", t1)
	}
	// Lower frequency extends the iteration.
	tr.LockFrequency(800)
	t3, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if t3 <= t1 {
		t.Errorf("800 MHz iteration %v not slower than max %v", t3, t1)
	}
}

func TestProfileSweepEarlyStop(t *testing.T) {
	tr := newTrainer(t, 2, 2)
	ms, err := tr.ProfileSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	// Early termination: the sweep must not cover the full ladder all
	// the way down to FMin (paper §5).
	minFreq := tr.GPU.FMax
	for _, m := range ms {
		if m.Freq < minFreq {
			minFreq = m.Freq
		}
	}
	if minFreq == tr.GPU.FMin {
		t.Error("profiling swept the entire ladder; early stop did not trigger")
	}
	// It must cover at least past the minimum-adjusted-energy frequency.
	minE := tr.GPU.MinEnergyFrequency(tr.GPU.MemBoundFwd, tr.GPU.BlockingW)
	if minFreq > minE {
		t.Errorf("profiling stopped at %d, before the min-energy frequency %d", minFreq, minE)
	}
}

func TestEndToEndClientServer(t *testing.T) {
	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := NewServerClient(ts.URL)

	const stages, micro = 2, 3
	tr := newTrainer(t, stages, micro)

	jobID, err := sc.RegisterJob(JobRequest{
		Schedule: "1f1b", Stages: stages, Microbatches: micro,
		GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		t.Fatal(err)
	}

	// In-vivo profiling during the first iterations, then upload.
	ms, err := tr.ProfileSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.UploadProfile(jobID, tr.PBlocking(), ms); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitCharacterized(jobID); err != nil {
		t.Fatal(err)
	}
	schedResp, err := sc.WaitSchedule(jobID, 50, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !schedResp.Ready || len(schedResp.Freqs) != stages*micro*2 {
		t.Fatalf("bad schedule %+v", schedResp)
	}

	// Deploy and run: iteration time must stay within quantization slack
	// of the all-max iteration.
	tr.LockFrequency(tr.GPU.FMax)
	baseTime, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	baseEnergy := deviceEnergy(tr)
	if err := tr.Deploy(schedResp.Freqs); err != nil {
		t.Fatal(err)
	}
	resetEnergy(tr)
	optTime, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	optEnergy := deviceEnergy(tr)
	if optTime > baseTime*1.03 {
		t.Errorf("deployed schedule slowed iteration: %v vs %v", optTime, baseTime)
	}
	if optEnergy >= baseEnergy {
		t.Errorf("deployed schedule saved no computation energy: %v vs %v", optEnergy, baseEnergy)
	}

	// Straggler notification: the schedule version advances and the new
	// plan slows the pipeline toward T'.
	if err := sc.SetStraggler(jobID, "p0s0", 0, 1.3); err != nil {
		t.Fatal(err)
	}
	slowResp, err := sc.FetchSchedule(jobID)
	if err != nil {
		t.Fatal(err)
	}
	if slowResp.Version <= schedResp.Version {
		t.Error("schedule version did not advance")
	}
	if err := tr.Deploy(slowResp.Freqs); err != nil {
		t.Fatal(err)
	}
	resetEnergy(tr)
	slowTime, err := tr.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	slowEnergy := deviceEnergy(tr)
	if slowTime <= optTime {
		t.Errorf("straggler schedule did not slow the pipeline: %v vs %v", slowTime, optTime)
	}
	if slowTime > baseTime*1.3+1e-9 {
		t.Errorf("straggler schedule time %v exceeds T' %v", slowTime, baseTime*1.3)
	}
	if slowEnergy >= optEnergy {
		t.Errorf("straggler schedule energy %v >= normal %v", slowEnergy, optEnergy)
	}
}

func deviceEnergy(tr *Trainer) float64 {
	var e float64
	for _, d := range tr.Devices {
		e += d.EnergyCounter()
	}
	return e
}

func resetEnergy(tr *Trainer) {
	for _, d := range tr.Devices {
		d.ResetEnergyCounter()
	}
}

func TestTrainerValidation(t *testing.T) {
	s, err := sched.OneFOneB(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(s, gpu.A40, []float64{0.1}, 2); err == nil {
		t.Error("wrong ref count should fail")
	}
	tr := newTrainer(t, 2, 2)
	if err := tr.Deploy([]int{1}); err == nil {
		t.Error("short plan should fail")
	}
	if err := tr.Deploy(nil); err != nil {
		t.Errorf("nil deploy should clear plan: %v", err)
	}
}
