package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/dag"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// JobRequest registers a training job: its pipeline schedule (from which
// the server reconstructs the computation DAG) and accelerator type.
type JobRequest struct {
	Schedule     string  `json:"schedule"` // "1f1b", "gpipe", ...
	Stages       int     `json:"stages"`
	Microbatches int     `json:"microbatches"`
	Chunks       int     `json:"chunks,omitempty"`
	GPU          string  `json:"gpu"`            // gpu preset name
	Unit         float64 `json:"unit,omitempty"` // optimizer τ seconds

	// DataParallel is the number of pipeline replicas; the fleet
	// allocator scales the job's power draw by it. 0 means 1.
	DataParallel int `json:"data_parallel,omitempty"`

	// Weight scales the job's throughput loss in the fleet objective
	// (fleet.Job.Weight). 0 means 1.
	Weight float64 `json:"weight,omitempty"`
}

// JobResponse returns the job handle.
type JobResponse struct {
	JobID string `json:"job_id"`
}

// MeasurementJSON is one profiler observation (client → server).
type MeasurementJSON struct {
	Virtual int     `json:"virtual"`
	Kind    string  `json:"kind"` // "forward" | "backward"
	Freq    int     `json:"freq_mhz"`
	Time    float64 `json:"time_s"`
	Energy  float64 `json:"energy_j"`
}

// ProfileUpload carries a job's complete online profile.
type ProfileUpload struct {
	PBlocking    float64           `json:"p_blocking_w"`
	Measurements []MeasurementJSON `json:"measurements"`
}

// StragglerNotice is the set_straggler payload (paper Table 2): the
// infrastructure anticipates accelerator id becoming Degree times slower
// after Delay seconds. Degree 1 communicates a recovery.
type StragglerNotice struct {
	ID     string  `json:"id"`
	Delay  float64 `json:"delay_s"`
	Degree float64 `json:"degree"`
}

// ScheduleResponse is the energy schedule for the current T_opt.
type ScheduleResponse struct {
	Ready bool `json:"ready"`
	// Time is the planned iteration time of the deployed schedule.
	Time float64 `json:"time_s"`
	// Tmin and TStar bound the frontier.
	Tmin  float64 `json:"tmin_s"`
	TStar float64 `json:"tstar_s"`
	// Freqs is the per-op frequency plan, indexed by schedule op id.
	Freqs []int `json:"freqs_mhz"`
	// Version increments whenever the deployed schedule changes — on
	// characterization, stragglers, fleet floors, and controller
	// re-plans — so clients can poll cheaply or long-poll via
	// If-None-Match.
	Version int `json:"version"`
}

// FrontierResponse lists the characterized frontier.
type FrontierResponse struct {
	Ready  bool      `json:"ready"`
	Time   []float64 `json:"time_s"`
	Energy []float64 `json:"energy_j"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.register(r.Context(), req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, JobResponse{JobID: j})
}

// Register creates a job and returns its id (the non-HTTP entry point).
func (s *Server) Register(req JobRequest) (string, error) {
	return s.register(context.Background(), req)
}

func (s *Server) register(ctx context.Context, req JobRequest) (string, error) {
	g, err := gpu.ByName(req.GPU)
	if err != nil {
		return "", err
	}
	if req.Chunks == 0 {
		req.Chunks = 1
	}
	sc, err := sched.ByName(req.Schedule, req.Stages, req.Microbatches, req.Chunks)
	if err != nil {
		return "", err
	}
	st := s.st
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	id := fmt.Sprintf("job-%d", st.next)
	st.jobs[id] = &job{id: id, req: req, gpu: g, sched: sc, obs: s.obs, hub: s.hub, done: make(chan struct{})}
	st.ord = append(st.ord, id)
	s.obs.jobsRegistered.Inc()
	s.obs.ring.Emit(st.clock(), "job.register", 0, traceKV(ctx,
		"job", id, "schedule", req.Schedule, "gpu", req.GPU)...)
	return id, nil
}

// RemoveJob unregisters a job (DELETE /jobs/{id}): its final span is
// settled into the emissions account and the bloat ledger, every
// per-job labeled metric series is deleted (bounding exposition
// cardinality as jobs churn), the ledger drops its per-job state
// (fleet totals retain the contribution), and the controller, replan,
// and fleet state forget it.
func (s *Server) RemoveJob(id string) error {
	return s.removeJob(context.Background(), id)
}

func (s *Server) removeJob(ctx context.Context, id string) error {
	j, ok := s.st.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	gs := s.st.gridState()
	j.mu.Lock()
	j.accrueLocked(gs) // settle the final span before the job disappears
	if j.pending != nil {
		j.pending.Stop()
		j.pending = nil
	}
	j.mu.Unlock()

	st := s.st
	st.mu.Lock()
	delete(st.jobs, id)
	for i, v := range st.ord {
		if v == id {
			st.ord = append(st.ord[:i], st.ord[i+1:]...)
			break
		}
	}
	st.mu.Unlock()

	s.ctrl.forget(id)
	s.replanMu.Lock()
	delete(s.replans, id)
	s.replanMu.Unlock()
	s.obs.dropJobSeries(id)
	s.obs.ledger.Remove(id)
	// Wake any long-pollers parked on the job's schedule topic; their
	// re-read serves against the snapshot they hold.
	s.hub.bump(topicSchedule(id))
	s.obs.ring.Emit(gs.now, "job.remove", 0, traceKV(ctx, "job", id)...)
	// The fleet lost a member: under a cap, power must be re-divided.
	s.recomputeFleet(ctx)
	return nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	j, ok := s.st.job(parts[0])
	if !ok {
		http.NotFound(w, r)
		return
	}
	if len(parts) == 1 {
		if r.Method != http.MethodDelete {
			http.Error(w, "DELETE only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.removeJob(r.Context(), j.id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	switch parts[1] {
	case "profile":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var up ProfileUpload
		if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.uploadProfile(r.Context(), j.id, up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case "schedule":
		s.handleSchedule(w, r, j)
	case "straggler":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var n StragglerNotice
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.setStraggler(r.Context(), j.id, n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	case "frontier":
		writeJSON(w, s.FrontierOf(j.id))
	case "table":
		lt, err := s.Table(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, lt)
	case "allocation":
		resp, err := s.AllocationOf(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "emissions":
		resp, err := s.Emissions(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "rollout":
		resp, err := s.Rollout(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, resp)
	case "placement":
		switch r.Method {
		case http.MethodPost:
			var req PlacementRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp, err := s.placeJob(r.Context(), j.id, req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, resp)
		case http.MethodGet:
			resp, err := s.PlacementOf(j.id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, resp)
		default:
			http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
		}
	default:
		http.NotFound(w, r)
	}
}

// maxScheduleWait caps how long a schedule long-poll may block.
const maxScheduleWait = 30 * time.Second

// parseWait reads a ?wait=<seconds> query parameter, capped at
// maxScheduleWait. ok is false (after writing a 400) on a malformed
// value.
func parseWait(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	v := r.URL.Query().Get("wait")
	if v == "" {
		return 0, true
	}
	sec, err := strconv.ParseFloat(v, 64)
	if err != nil || sec < 0 {
		http.Error(w, fmt.Sprintf("bad wait: %q", v), http.StatusBadRequest)
		return 0, false
	}
	wait := time.Duration(sec * float64(time.Second))
	if wait > maxScheduleWait {
		wait = maxScheduleWait
	}
	return wait, true
}

// handleSchedule serves the deployed schedule with version
// concurrency-control: every response carries an ETag `"v<version>"`;
// a request whose If-None-Match matches the current version (RFC 9110
// list and weak forms included) with a positive ?wait=<seconds> parks
// on the job's hub topic (in real time, bounded by maxScheduleWait)
// until a version bump broadcasts, and answers 304 Not Modified if
// none does — so trainers observe controller version bumps without
// polling or ever issuing replan calls themselves. A client that
// disconnects while parked releases its waiter immediately (nothing is
// written; the connection is gone) instead of holding the goroutine
// and a timer until the wait expires.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request, j *job) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	inm := r.Header.Get("If-None-Match")
	wait, ok := parseWait(w, r)
	if !ok {
		return
	}
	deadline := time.Now().Add(wait)
	for {
		j.mu.Lock()
		ver := j.version
		j.mu.Unlock()
		if inm == "" || !etagMatch(inm, etag(ver)) {
			break // version moved past the client's (or unconditional): serve it
		}
		// Subscribe, then re-check: a bump between the version read
		// and the subscription must not strand the waiter.
		watch := s.hub.watch(topicSchedule(j.id))
		j.mu.Lock()
		moved := j.version != ver
		j.mu.Unlock()
		if moved {
			continue
		}
		switch s.parkWaiter(r.Context(), j.id, deadline, watch, nil) {
		case wakeBumped:
			continue // re-read the version; loop serves or re-parks
		case wakeTimeout:
			w.Header().Set("ETag", etag(ver))
			w.WriteHeader(http.StatusNotModified)
			return
		case wakeCancelled:
			return // client gone: write nothing
		}
	}
	resp, err := s.Schedule(j.id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("ETag", etag(resp.Version))
	writeJSON(w, resp)
}

// etag renders a schedule version as an entity tag.
func etag(version int) string { return fmt.Sprintf("%q", "v"+strconv.Itoa(version)) }

// UploadProfile stores a job's profiling results and kicks off
// asynchronous frontier characterization (paper §3.2 step 2): training
// continues while the server optimizes.
func (s *Server) UploadProfile(id string, up ProfileUpload) error {
	return s.uploadProfile(context.Background(), id, up)
}

func (s *Server) uploadProfile(ctx context.Context, id string, up ProfileUpload) error {
	j, ok := s.st.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	var ms []profile.Measurement
	for _, m := range up.Measurements {
		kind, err := parseKind(m.Kind)
		if err != nil {
			return err
		}
		ms = append(ms, profile.Measurement{
			Virtual: m.Virtual, Kind: kind,
			Freq: gpu.Frequency(m.Freq), Time: m.Time, Energy: m.Energy,
		})
	}
	prof, err := profile.Assemble(j.gpu, up.PBlocking, ms)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.characterizing || j.front != nil {
		j.mu.Unlock()
		return fmt.Errorf("server: job %s already profiled", id)
	}
	// A failed characterization is retryable: the retry gets a fresh
	// done channel (the previous attempt already closed the old one —
	// re-closing it would panic) and a cleared error, so
	// WaitCharacterized callers block on this attempt's outcome.
	if j.charErr != nil {
		j.charErr = nil
		j.done = make(chan struct{})
	}
	j.characterizing = true
	done := j.done
	j.mu.Unlock()

	go func() {
		charStart := time.Now()
		graph, err := dag.Build(j.sched, func(op sched.Op) int64 { return 1 })
		var front *frontier.Frontier
		if err == nil {
			front, err = frontier.Characterize(graph, prof, frontier.Options{Unit: j.req.Unit})
		}
		now := s.st.now()
		j.mu.Lock()
		j.front, j.charErr = front, err
		if front != nil {
			j.table = front.Table()
			j.tableHash = hashTable(j.table)
			// The job now has a deployed schedule drawing power:
			// emissions accounting starts here. Render the per-job
			// ledger series once, so every later settle is alloc-free.
			j.accSince, j.accAt = now, now
			j.series = s.obs.jobSeries(j.id)
		}
		j.characterizing = false
		j.bumpLocked()
		j.mu.Unlock()
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		s.obs.characterized.With(outcome).Inc()
		// ctx outlives the HTTP request here only as a label source:
		// context values stay readable after cancellation, so the
		// characterize event still carries the registering trace's ID.
		s.obs.ring.Emit(now, "job.characterize", time.Since(charStart), traceKV(ctx,
			"job", j.id, "outcome", outcome)...)
		close(done)
		// The fleet gained a characterized member: under a cap, power
		// must be re-divided.
		s.recomputeFleet(ctx)
	}()
	return nil
}

// WaitCharacterized blocks until the job's current characterization
// attempt finishes and returns its outcome (test hook and CLI
// convenience). The done channel is read under the job lock: a retried
// characterization installs a fresh channel, and waiters must observe
// the attempt in flight, not a closed channel from a failed past one.
func (s *Server) WaitCharacterized(id string) error {
	j, ok := s.st.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	done := j.done
	j.mu.Unlock()
	<-done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.charErr
}

// SetStraggler records a straggler notification and moves the deployed
// schedule to T_opt = min(T*, T') (paper §3.2 steps 4-5). Degree <= 1
// clears the straggler. A positive Delay defers the switch: the
// infrastructure anticipates the straggler Delay seconds ahead (Table 2),
// so the server arms a timer and flips the deployed schedule when it
// fires.
func (s *Server) SetStraggler(id string, n StragglerNotice) error {
	return s.setStraggler(context.Background(), id, n)
}

func (s *Server) setStraggler(ctx context.Context, id string, n StragglerNotice) error {
	j, ok := s.st.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	if n.Degree <= 0 {
		return fmt.Errorf("server: straggler degree must be positive, got %v", n.Degree)
	}
	gs := s.st.gridState()
	j.mu.Lock()
	if j.front == nil {
		j.mu.Unlock()
		return fmt.Errorf("server: job %s not characterized yet", id)
	}
	// The deployed operating point (and so the power draw) is about to
	// move: settle emissions at the old point first.
	apply := func(gs gridState) {
		j.accrueLocked(gs)
		if n.Degree <= 1 {
			j.tPrime = 0
		} else {
			j.tPrime = j.front.Tmin() * n.Degree
		}
		j.bumpLocked()
		s.obs.ring.Emit(gs.now, "job.straggler", 0, traceKV(ctx,
			"job", j.id, "degree", strconv.FormatFloat(n.Degree, 'g', -1, 64))...)
	}
	if n.Delay <= 0 {
		apply(gs)
		j.mu.Unlock()
		// A straggler moves the job's T_opt floor, freeing (or taking)
		// fleet power; re-divide it.
		s.recomputeFleet(ctx)
		return nil
	}
	if j.pending != nil {
		j.pending.Stop()
	}
	j.pending = time.AfterFunc(time.Duration(n.Delay*float64(time.Second)), func() {
		gs := s.st.gridState()
		j.mu.Lock()
		apply(gs)
		j.mu.Unlock()
		s.recomputeFleet(ctx)
	})
	j.mu.Unlock()
	return nil
}

// Schedule returns the currently deployed energy schedule: the Tmin
// schedule in normal operation, or the T_opt schedule under a straggler.
func (s *Server) Schedule(id string) (ScheduleResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return ScheduleResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.charErr != nil {
		return ScheduleResponse{}, j.charErr
	}
	if j.front == nil {
		return ScheduleResponse{Ready: false, Version: j.version}, nil
	}
	pt := j.front.Lookup(j.deployedTimeLocked(j.front.Tmin()))
	plan := pt.Plan()
	freqs := make([]int, len(plan))
	for i, f := range plan {
		freqs[i] = int(f)
	}
	return ScheduleResponse{
		Ready:   true,
		Time:    pt.Time,
		Tmin:    j.front.Tmin(),
		TStar:   j.front.TStar(),
		Freqs:   freqs,
		Version: j.version,
	}, nil
}

// Table returns the job's serializable energy-schedule lookup table
// (paper §3.2), for persistence or external consumption.
func (s *Server) Table(id string) (*frontier.LookupTable, error) {
	j, ok := s.st.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	return j.table, nil
}

// FrontierOf returns the characterized frontier's (time, energy) points.
func (s *Server) FrontierOf(id string) FrontierResponse {
	j, ok := s.st.job(id)
	if !ok {
		return FrontierResponse{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.front == nil {
		return FrontierResponse{}
	}
	resp := FrontierResponse{Ready: true}
	for _, pt := range j.front.Points() {
		resp.Time = append(resp.Time, pt.Time)
		resp.Energy = append(resp.Energy, pt.Energy)
	}
	return resp
}

func parseKind(s string) (sched.Kind, error) {
	switch strings.ToLower(s) {
	case "forward", "f":
		return sched.Forward, nil
	case "backward", "b":
		return sched.Backward, nil
	}
	return 0, fmt.Errorf("server: unknown computation kind %q (want forward or backward)", s)
}
