package obs

import (
	"sync"
	"time"
)

// Event is one structured trace record: a timestamped span (duration 0
// for point events) with free-form string labels. The control stack
// emits them for controller ticks, re-plans, migrations, signal
// installs, and forecast revisions; GET /debug/events serves the
// recent window as JSON.
type Event struct {
	// Seq is a monotonically increasing sequence number, so consumers
	// can detect drops between snapshots of the bounded ring.
	Seq uint64 `json:"seq"`

	// AtUnixS is the event time in Unix seconds (the emitter's clock —
	// the server's replaceable wall clock, so fake-clock tests line
	// events up with the ticks that produced them).
	AtUnixS float64 `json:"at_unix_s"`

	// Name identifies the event kind (e.g. "controller.tick", "replan",
	// "migrate").
	Name string `json:"name"`

	// DurS is the span duration in seconds; 0 for point events.
	DurS float64 `json:"dur_s,omitempty"`

	// Labels carry the event's dimensions (job id, region, counts...).
	Labels map[string]string `json:"labels,omitempty"`
}

// DefaultRingCapacity bounds a Ring constructed with capacity <= 0.
const DefaultRingCapacity = 512

// Ring is a bounded in-memory event buffer: appends never allocate
// beyond the fixed capacity, the oldest events are overwritten first,
// and Snapshot returns a copy in emission order. Safe for concurrent
// use.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	head int // next write position
	n    int // filled entries
	seq  uint64
}

// NewRing returns a ring holding up to capacity events
// (DefaultRingCapacity if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit appends one event. kv lists labels as alternating key, value
// pairs; a trailing key without a value is dropped.
func (r *Ring) Emit(at time.Time, name string, dur time.Duration, kv ...string) {
	var labels map[string]string
	if len(kv) >= 2 {
		labels = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			labels[kv[i]] = kv[i+1]
		}
	}
	r.mu.Lock()
	r.seq++
	r.buf[r.head] = Event{
		Seq:     r.seq,
		AtUnixS: float64(at.UnixNano()) / 1e9,
		Name:    name,
		DurS:    dur.Seconds(),
		Labels:  labels,
	}
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot copies the most recent events, oldest first. limit <= 0 (or
// beyond the retained window) returns everything retained.
func (r *Ring) Snapshot(limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Event, n)
	// The newest event sits at head-1; walk back n entries.
	start := r.head - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// SnapshotSince copies the retained events with Seq > since, oldest
// first, capped at limit (limit <= 0 returns all of them) — the cursor
// read GET /debug/events?since= serves. Unlike Snapshot's limit (which
// keeps the newest events), the cap here keeps the OLDEST qualifying
// events, so a poller advancing its cursor by the last Seq it received
// reads the stream contiguously and re-reads nothing. A since at or
// beyond the newest retained Seq returns an empty slice; a since older
// than the retained window returns the whole window (the gap is
// detectable from the first returned Seq exceeding since+1).
func (r *Ring) SnapshotSince(since uint64, limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Seqs are assigned contiguously, so the count of retained events
	// newer than since is computable without scanning: the retained
	// Seqs are (r.seq-r.n, r.seq].
	n := r.n
	if since >= r.seq {
		n = 0
	} else if avail := r.seq - since; uint64(n) > avail {
		n = int(avail)
	}
	// The n qualifying events end at head-1; keep the oldest limit.
	start := r.head - n
	if start < 0 {
		start += len(r.buf)
	}
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// Len reports how many events are currently retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
