package server

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"perseus/internal/fleet"
	"perseus/internal/forecast"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	pln "perseus/internal/plan"
	"perseus/internal/sched"
)

// store is the concurrency-safe state every resource module of the
// server shares: the job registry, the grid signal and its anchor, the
// installed forecast issuer, the datacenter regions, and the wall
// clock. One mutex guards it all; per-job mutable state lives behind
// each job's own lock so accrual never holds the store lock.
type store struct {
	mu   sync.Mutex
	jobs map[string]*job
	ord  []string // registration order, for deterministic fleet output
	next int
	capW float64 // fleet power cap; 0 = uncapped

	// signal is the current grid trace (nil until uploaded); sigStart
	// anchors its time 0 to the wall clock, objective is the default
	// temporal-planning objective, and meanG caches the signal cycle's
	// duration-weighted mean intensity in g/J — the ledger's
	// signal-blind carbon baseline, computed once per install.
	signal    *grid.Signal
	sigStart  time.Time
	objective grid.Objective
	meanG     float64

	// epoch counts plan-input generations: it bumps whenever the signal
	// is re-installed or a forecast is (re-)issued, and the plan cache
	// keys on it, so stale plans can never be served after the inputs
	// they were solved against changed.
	epoch int

	// Forecast state: the installed issuer (nil until POST
	// /grid/forecast), the latest issued forecast (signal time, anchored
	// like the signal itself), the default robust planning quantile, and
	// frev counting forecast revisions (installs), which rolling
	// schedules use to decide whether a fresh re-plan is warranted.
	fspec   *forecastSpec
	fcast   *forecast.Forecast
	fcastAt time.Time
	frev    int

	// regions are the registered datacenter regions, by name and in
	// registration order.
	regions map[string]*serverRegion
	regOrd  []string

	// clock supplies wall-clock time (replaceable via Server.SetClock).
	clock func() time.Time
}

func newStore() *store {
	return &store{
		jobs:      map[string]*job{},
		regions:   map[string]*serverRegion{},
		objective: grid.ObjectiveCarbon,
		clock:     time.Now,
	}
}

// now reads the wall clock. The function pointer is fetched under the
// lock so SetClock can race a running controller loop safely.
func (st *store) now() time.Time {
	st.mu.Lock()
	fn := st.clock
	st.mu.Unlock()
	return fn()
}

func (st *store) job(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// jobsInOrder snapshots the job list in registration order.
func (st *store) jobsInOrder() []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	jobs := make([]*job, 0, len(st.ord))
	for _, id := range st.ord {
		jobs = append(jobs, st.jobs[id])
	}
	return jobs
}

// settleAll accrues every job's emissions at the given snapshot —
// called before any change to the rates (signal or forecast install)
// so each span is charged at the rates that actually applied.
func (st *store) settleAll(gs gridState) {
	for _, j := range st.jobsInOrder() {
		j.mu.Lock()
		j.accrueLocked(gs)
		j.mu.Unlock()
	}
}

// job is one registered training job and its per-job mutable state.
type job struct {
	id    string
	req   JobRequest
	gpu   *gpu.Model
	sched *sched.Schedule
	obs   *serverObs // the owning server's observability surface

	// hub is the owning server's notification hub; every version bump
	// broadcasts on the job's schedule topic through it.
	hub *hub

	// series caches the job's per-job ledger metric handles, created at
	// characterization so Settle never renders label blocks (obs.go).
	series *jobLedgerSeries

	mu             sync.Mutex
	characterizing bool
	charErr        error
	front          *frontier.Frontier
	table          *frontier.LookupTable // cached front.Table() for the fleet
	tableHash      uint64                // content hash of table, for the plan cache
	tPrime         float64               // anticipated straggler iteration time; 0 = none
	capTime        float64               // fleet-allocated iteration-time floor; 0 = none
	alloc          *fleet.JobAlloc       // latest fleet allocation, if any
	version        int
	pending        *time.Timer // armed delayed straggler switch, if any
	// done closes when the current characterization attempt finishes.
	// A failed attempt is retryable: the retry installs a fresh
	// channel, so readers must fetch it under mu (see
	// WaitCharacterized) rather than caching it across attempts.
	done chan struct{}

	// Emissions accounting: the deployed schedule's power draw is
	// integrated against the grid signal from characterization on.
	// When a forecast is installed, the same draw is also integrated
	// against the forecast's rates (while the job is unplaced), so
	// predicted and realized accrual reconcile.
	accSince    time.Time // accounting start (characterization time)
	accAt       time.Time // last accrual
	energyAccJ  float64
	carbonAccG  float64
	costAccUSD  float64
	predCarbonG float64
	predCostUSD float64
	// predRealCarbonG is the realized carbon over exactly the spans the
	// predicted account covers, so drift compares like with like even
	// when the forecast predicted zero.
	predRealCarbonG float64

	// Placement: the datacenter region the job currently runs in ("" =
	// unplaced; emissions then accrue against the global signal) and
	// the placement history.
	region     string
	placements []placementEvent
}

// bumpLocked advances the job's schedule version and broadcasts on the
// job's schedule topic, waking every parked long-poller in O(1).
// Callers hold j.mu; the hub takes only its own lock, so the nesting
// is always j.mu → hub.mu.
func (j *job) bumpLocked() {
	j.version++
	if j.hub != nil {
		j.hub.bump(topicSchedule(j.id))
	}
	if j.obs != nil {
		j.obs.versionBumps.Inc()
	}
}

// placementEvent is one entry of a job's placement history.
type placementEvent struct {
	region string
	at     time.Time
}

// serverRegion is one registered datacenter region: its capacity, cap,
// and grid signal, with the signal's time 0 anchored at registration
// and the signal cycle's mean intensity (g/J) cached for the ledger.
type serverRegion struct {
	name   string
	gpus   int
	capW   float64
	sig    *grid.Signal
	anchor time.Time
	meanG  float64
}

// gridState is a consistent snapshot of the grid signal, the region
// signals, and the clock, taken (under st.mu) before a job's j.mu so
// accrual never nests the two locks.
type gridState struct {
	sig     *grid.Signal
	fsig    *grid.Signal // latest issued point forecast (signal time, same anchor)
	start   time.Time
	now     time.Time
	meanG   float64 // signal cycle mean intensity, g/J (ledger baseline)
	regions map[string]*serverRegion
}

func (st *store) gridState() gridState {
	now := st.now()
	st.mu.Lock()
	defer st.mu.Unlock()
	// Copy the map: the snapshot outlives st.mu, and concurrent region
	// registrations mutate st.regions (entries themselves are immutable).
	regions := make(map[string]*serverRegion, len(st.regions))
	for name, r := range st.regions {
		regions[name] = r
	}
	gs := gridState{sig: st.signal, start: st.sigStart, now: now, meanG: st.meanG, regions: regions}
	if st.fcast != nil {
		gs.fsig = st.fcast.Signal
	}
	return gs
}

// deployedTimeLocked returns the anticipated iteration time the
// deployed schedule is selected for: T' under a straggler (Tmin
// otherwise), floored by the fleet-allocated capTime — a power-capped
// job may not run faster than its share of the facility envelope
// allows. Shared by Schedule and the emissions accrual so the two can
// never charge different operating points. Callers hold j.mu.
func (j *job) deployedTimeLocked(tmin float64) float64 {
	t := j.tPrime
	if t <= 0 {
		t = tmin
	}
	if j.capTime > t {
		t = j.capTime
	}
	return t
}

// deployedPowerLocked returns the power draw of the job's currently
// deployed schedule (all pipelines). Callers hold j.mu.
func (j *job) deployedPowerLocked() float64 {
	if j.table == nil || len(j.table.Points) == 0 {
		return 0
	}
	t := j.deployedTimeLocked(j.table.Tmin())
	pipes := j.req.DataParallel
	if pipes <= 0 {
		pipes = 1
	}
	return float64(pipes) * j.table.AvgPower(j.table.LookupIndex(t))
}

// accrueLocked integrates the deployed schedule's power draw since the
// last accrual into the job's emissions accumulators: at the placed
// region's rates when the job has a placement, at the global signal's
// otherwise (energy only before either exists). Callers hold j.mu and
// must call it before any change to the deployed operating point or
// placement, so each span is charged at the rates that actually
// applied.
func (j *job) accrueLocked(gs gridState) {
	if j.accAt.IsZero() || !gs.now.After(j.accAt) {
		return
	}
	spanStart := j.accAt
	power := j.deployedPowerLocked()
	sig, start, meanG := gs.sig, gs.start, gs.meanG
	if j.region != "" {
		if r, ok := gs.regions[j.region]; ok {
			sig, start, meanG = r.sig, r.anchor, r.meanG
		}
	}
	var t0, t1 float64
	if sig != nil {
		t0 = j.accAt.Sub(start).Seconds()
		t1 = gs.now.Sub(start).Seconds()
	} else {
		t1 = gs.now.Sub(j.accAt).Seconds()
	}
	e, c, usd := grid.Accrue(sig, t0, t1, power)
	j.energyAccJ += e
	j.carbonAccG += c
	j.costAccUSD += usd
	// Predicted accrual: the same draw priced at the latest issued
	// forecast's rates. Only meaningful against the global signal, so
	// placed jobs (accruing at a region's rates) are skipped.
	var pc, predReal float64
	if gs.fsig != nil && j.region == "" && gs.sig != nil {
		var pusd float64
		_, pc, pusd = grid.Accrue(gs.fsig, j.accAt.Sub(gs.start).Seconds(), gs.now.Sub(gs.start).Seconds(), power)
		predReal = c
		j.predCarbonG += pc
		j.predCostUSD += pusd
		j.predRealCarbonG += c
		if j.series != nil {
			// Realized-vs-predicted drift over exactly the forecast-
			// covered spans, refreshed at every settle point.
			j.series.drift.Set(j.predRealCarbonG - j.predCarbonG)
		}
	}
	j.accAt = gs.now
	// Decompose the settled span into the energy-bloat ledger. The
	// exact same floats just added to the emissions accumulators flow
	// into the ledger totals, so the two accounts reconcile bit-for-bit.
	j.settleSpanLocked(gs, spanStart, pln.Account{EnergyJ: e, CarbonG: c, CostUSD: usd}, pc, predReal, meanG)
}

// hashTable content-hashes a characterized lookup table so the plan
// cache can key on the frontier a plan was solved against: any
// re-characterization yields a different key.
func hashTable(lt *frontier.LookupTable) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	put(math.Float64bits(lt.Unit))
	put(uint64(lt.TminUnits))
	put(uint64(lt.TStarUnits))
	for _, pt := range lt.Points {
		put(uint64(pt.TimeUnits))
		put(math.Float64bits(pt.Energy))
		for _, f := range pt.Freqs {
			put(uint64(f))
		}
	}
	return h.Sum64()
}
