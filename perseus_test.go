package perseus

import (
	"bytes"
	"strings"
	"testing"

	"perseus/internal/frontier"
)

func characterizeQuick(t *testing.T) *System {
	t.Helper()
	sys, err := Characterize(Workload{
		Model: "gpt3-1.3b", GPU: "A100-PCIe",
		Stages: 4, MicrobatchSize: 4, Microbatches: 8, TargetSteps: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeQuickstart(t *testing.T) {
	sys := characterizeQuick(t)
	if sys.Tmin() <= 0 || sys.TStar() <= sys.Tmin() {
		t.Fatalf("bad frontier bounds: Tmin=%v T*=%v", sys.Tmin(), sys.TStar())
	}
	pts := sys.Frontier()
	if len(pts) < 10 {
		t.Fatalf("frontier has %d points", len(pts))
	}
	res, err := sys.Simulate(sys.PlanFor(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	saving, slowdown := sys.Savings(res)
	if saving <= 0.03 {
		t.Errorf("intrinsic saving %.3f too small", saving)
	}
	if slowdown > 0.03 {
		t.Errorf("slowdown %.3f not negligible", slowdown)
	}
}

func TestFacadeStragglerScenario(t *testing.T) {
	sys := characterizeQuick(t)
	base := sys.Baseline()
	fast := sys.PlanFor(0)
	tPrime := base.IterTime * 1.25
	slow := sys.PlanFor(tPrime)
	res, err := sys.SimulatePerPipeline(func(p int) Plan {
		if p == 0 {
			return fast
		}
		return slow
	}, []Straggler{{Pipeline: 0, Factor: 1.25}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime > base.IterTime*1.25*1.01 {
		t.Errorf("iteration %v exceeds straggler bound %v", res.IterTime, base.IterTime*1.25)
	}
	saving, _ := sys.Savings(res)
	// The baseline here also waits for the straggler, so compare against
	// the simulated all-max-with-straggler case instead.
	maxRes, err := sys.Simulate(sys.MaxFrequencyPlan(), []Straggler{{Pipeline: 0, Factor: 1.25}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= maxRes.Energy {
		t.Errorf("straggler-aware plan saved nothing: %v vs %v", res.Energy, maxRes.Energy)
	}
	_ = saving
}

func TestFacadeBaselines(t *testing.T) {
	sys := characterizeQuick(t)
	ep, err := sys.EnvPipePlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Simulate(ep, nil)
	if err != nil {
		t.Fatal(err)
	}
	saving, _ := sys.Savings(res)
	if saving <= 0 {
		t.Error("EnvPipe saved nothing")
	}
	for _, name := range []string{"zeus-global", "zeus-per-stage"} {
		pts, err := sys.BaselineFrontier(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) < 3 {
			t.Errorf("%s: %d points", name, len(pts))
		}
	}
	if _, err := sys.BaselineFrontier("alexnet"); err == nil {
		t.Error("unknown baseline should fail")
	}
}

func TestFacadeTimeline(t *testing.T) {
	sys := characterizeQuick(t)
	var buf bytes.Buffer
	if err := sys.RenderTimeline(&buf, sys.PlanFor(0), 100); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "S1") || !strings.Contains(out, "S4") {
		t.Errorf("timeline missing stage rows:\n%s", out)
	}
	if !strings.Contains(out, "F") || !strings.Contains(out, "B") {
		t.Errorf("timeline missing op markers:\n%s", out)
	}
}

func TestFacadeCatalogs(t *testing.T) {
	if len(ModelNames()) != 16 {
		t.Errorf("ModelNames: %d, want 16", len(ModelNames()))
	}
	if len(GPUNames()) != 4 {
		t.Errorf("GPUNames: %d, want 4", len(GPUNames()))
	}
	if NewServerHandler() == nil {
		t.Error("nil server handler")
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Characterize(Workload{Model: "nope", GPU: "A40", Stages: 2, MicrobatchSize: 1, Microbatches: 2}); err == nil {
		t.Error("unknown model should fail")
	}
	if _, err := Characterize(Workload{Model: "gpt3-1.3b", GPU: "H200", Stages: 2, MicrobatchSize: 1, Microbatches: 2}); err == nil {
		t.Error("unknown GPU should fail")
	}
}

func TestFacadeLookupMonotone(t *testing.T) {
	sys := characterizeQuick(t)
	prev := 0.0
	for _, f := range []float64{0.5, 1.0, 1.1, 1.2, 1.5, 3.0} {
		pt := sys.LookupPoint(sys.Tmin() * f)
		if pt.Time < prev {
			t.Errorf("lookup not monotone at factor %v", f)
		}
		prev = pt.Time
	}
}

func TestFacadeSaveLookupTable(t *testing.T) {
	sys := characterizeQuick(t)
	var buf bytes.Buffer
	if err := sys.SaveLookupTable(&buf); err != nil {
		t.Fatal(err)
	}
	lt, err := frontier.LoadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lt.Tmin() != sys.Tmin() || lt.TStar() != sys.TStar() {
		t.Errorf("saved table bounds (%v, %v) != system (%v, %v)",
			lt.Tmin(), lt.TStar(), sys.Tmin(), sys.TStar())
	}
}
