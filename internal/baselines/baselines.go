// Package baselines implements the prior-work systems Perseus is compared
// against in the paper's evaluation:
//
//   - EnvPipe (Choi et al., ATC'23): intrinsic-bloat-only point solution
//     that pins the (assumed heaviest) last pipeline stage at maximum
//     frequency and stretches other stages' computations into the bubbles
//     that follow them on the same GPU (§6.2).
//   - ZeusGlobal (derived from Zeus, NSDI'23): scans one global power
//     limit for all stages (§6.4).
//   - ZeusPerStage: finds per-stage power limits that balance forward
//     computation time across stages (§6.4).
package baselines

import (
	"fmt"
	"math"
	"sort"

	"perseus/internal/cluster"
	"perseus/internal/dag"
	"perseus/internal/gpu"
	"perseus/internal/sched"
)

// PlanPoint is one (time, energy) operating point of a baseline sweep.
type PlanPoint struct {
	// Time is the simulated iteration time in seconds.
	Time float64
	// Energy is the simulated total energy in joules (computation plus
	// blocking, per Eq. 3).
	Energy float64
	// Plan realizes the point.
	Plan cluster.Plan
}

// EnvPipe builds EnvPipe's frequency plan for a pipeline. Following the
// paper's characterization (§6.2 and §7): the last stage — assumed to be
// the heaviest — runs at maximum frequency, forming the "envelope"; every
// other computation is stretched into the idle gap that follows it on its
// own GPU under the all-max timeline. The stretch decision is local to
// each GPU's timeline, so when the gap was actually pipeline slack needed
// elsewhere, downstream computations are delayed — the source of EnvPipe's
// occasional iteration time degradation.
func EnvPipe(spec cluster.Spec) (cluster.Plan, error) {
	s := spec.Schedule
	g, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		return nil, err
	}
	// All-max realized durations; these are the working durations the
	// stretch passes mutate.
	durs := make([]float64, len(s.Ops))
	plan := make(cluster.Plan, len(s.Ops))
	for i, op := range s.Ops {
		tp, err := spec.Profile.For(op)
		if err != nil {
			return nil, err
		}
		durs[i] = tp.MinTime()
		if op.Kind != sched.Constant {
			plan[i] = tp.Points[0].Freq
		}
	}
	// SRP-style stretching with the envelope fixed: the last stage is
	// assumed to bound the iteration and never slows down; every other
	// computation greedily absorbs its own slack (latest start minus
	// earliest start against the all-max deadline), one op at a time in
	// topological order with slack recomputed after each stretch. This
	// reproduces EnvPipe's strength (deep slowdown of warm-up and drain
	// computations) and its two documented weaknesses: zero savings on
	// the pinned last stage even when it is not the heaviest (correct
	// with probability 1/N, paper §6.2), and greedy first-come slack
	// consumption instead of a globally energy-optimal distribution.
	deadline := floatStarts(g, durs)[g.Sink]
	last := s.Stages - 1
	est := make([]float64, len(g.Dur))
	lst := make([]float64, len(g.Dur))
	for _, v := range g.Topo() {
		id := int(v)
		if id >= len(s.Ops) {
			continue
		}
		op := s.Ops[id]
		if op.Stage == last || op.Kind == sched.Constant {
			continue
		}
		slackStretch(g, durs, deadline, est, lst)
		slack := lst[id] - est[id]
		if slack <= 0 {
			continue
		}
		tp, err := spec.Profile.For(op)
		if err != nil {
			return nil, err
		}
		pt, _ := tp.ForDuration(durs[id] + slack)
		if pt.Time > durs[id] {
			durs[id] = pt.Time
			plan[id] = pt.Freq
		}
	}
	return plan, nil
}

// ZeusGlobal sweeps a single global power limit applied to every GPU
// (paper §6.4) and returns the resulting iteration time-energy points,
// sorted by time. Each limit maps to the highest frequency whose compute
// power respects it; every computation in every stage runs there.
func ZeusGlobal(spec cluster.Spec) ([]PlanPoint, error) {
	g := spec.Profile.GPU
	seen := map[gpu.Frequency]bool{}
	var pts []PlanPoint
	// Sweep limits from TDP down in 5% steps, mirroring Zeus's power
	// limit exploration.
	for frac := 1.0; frac >= 0.4; frac -= 0.05 {
		f := g.PowerLimitFrequency(g.TDP * frac)
		if seen[f] {
			continue
		}
		seen[f] = true
		plan := make(cluster.Plan, len(spec.Schedule.Ops))
		for i, op := range spec.Schedule.Ops {
			tp, err := spec.Profile.For(op)
			if err != nil {
				return nil, err
			}
			if op.Kind == sched.Constant {
				continue
			}
			pt, _ := tp.AtOrAbove(f)
			plan[i] = pt.Freq
		}
		res, err := cluster.Simulate(spec, plan, nil)
		if err != nil {
			return nil, err
		}
		pts = appendPoint(pts, PlanPoint{Time: res.IterTime, Energy: res.Energy, Plan: plan})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	return pts, nil
}

// appendPoint adds a sweep point unless one with the same realized time is
// already present (clamping at the slowest Pareto choices makes deep power
// limits collapse onto the same plan).
func appendPoint(pts []PlanPoint, p PlanPoint) []PlanPoint {
	for _, q := range pts {
		if math.Abs(q.Time-p.Time) < 1e-12 {
			return pts
		}
	}
	return append(pts, p)
}

// ZeusPerStage sweeps a per-stage power limit assignment that balances
// forward computation time (paper §6.4): for each target forward latency,
// every stage picks the lowest frequency that still meets the target, and
// all of the stage's computations run there. Because the choice ignores
// the critical path and backward computations, the resulting frontier can
// be non-monotone (paper Appendix H).
func ZeusPerStage(spec cluster.Spec) ([]PlanPoint, error) {
	s := spec.Schedule
	virtual := s.VirtualStages()
	// Candidate targets: every stage's achievable forward times.
	targetSet := map[float64]bool{}
	for v := 0; v < virtual; v++ {
		tp, err := spec.Profile.For(sched.Op{Virtual: v, Kind: sched.Forward})
		if err != nil {
			return nil, err
		}
		for _, pt := range tp.Points {
			targetSet[pt.Time] = true
		}
	}
	targets := make([]float64, 0, len(targetSet))
	for t := range targetSet {
		targets = append(targets, t)
	}
	sort.Float64s(targets)
	// The smallest feasible target is the slowest stage's fastest time.
	var feasibleFrom float64
	for v := 0; v < virtual; v++ {
		tp, err := spec.Profile.For(sched.Op{Virtual: v, Kind: sched.Forward})
		if err != nil {
			return nil, err
		}
		if mt := tp.MinTime(); mt > feasibleFrom {
			feasibleFrom = mt
		}
	}

	var pts []PlanPoint
	for _, target := range targets {
		if target < feasibleFrom-1e-12 {
			continue
		}
		// Per virtual stage: the lowest frequency meeting the target.
		stageFreq := make([]gpu.Frequency, virtual)
		for v := 0; v < virtual; v++ {
			tp, err := spec.Profile.For(sched.Op{Virtual: v, Kind: sched.Forward})
			if err != nil {
				return nil, err
			}
			pt, _ := tp.ForDuration(target)
			stageFreq[v] = pt.Freq
		}
		plan := make(cluster.Plan, len(s.Ops))
		for i, op := range s.Ops {
			if op.Kind == sched.Constant {
				continue
			}
			tp, err := spec.Profile.For(op)
			if err != nil {
				return nil, err
			}
			pt, _ := tp.AtOrAbove(stageFreq[op.Virtual])
			plan[i] = pt.Freq
		}
		res, err := cluster.Simulate(spec, plan, nil)
		if err != nil {
			return nil, err
		}
		pts = appendPoint(pts, PlanPoint{Time: res.IterTime, Energy: res.Energy, Plan: plan})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("baselines: no feasible per-stage balance target")
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
	return pts, nil
}

// slackStretch fills est and lst with earliest and latest start times for
// the current durations against the given deadline.
func slackStretch(g *dag.Graph, durs []float64, deadline float64, est, lst []float64) {
	topo := g.Topo()
	for i := range est {
		est[i] = 0
		lst[i] = deadline
	}
	for _, v := range topo {
		var dv float64
		if int(v) < len(durs) {
			dv = durs[v]
		}
		for _, w := range g.Succ[v] {
			if t := est[v] + dv; t > est[w] {
				est[w] = t
			}
		}
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		var dv float64
		if int(v) < len(durs) {
			dv = durs[v]
		}
		min := deadline
		if len(g.Succ[v]) > 0 {
			for _, w := range g.Succ[v] {
				if lst[w] < min {
					min = lst[w]
				}
			}
		}
		lst[v] = min - dv
	}
}

// floatStarts computes earliest start times with float durations over a
// unit-built dag.Graph topology.
func floatStarts(g *dag.Graph, durs []float64) []float64 {
	est := make([]float64, len(g.Dur))
	for _, v := range g.Topo() {
		var dv float64
		if int(v) < len(durs) {
			dv = durs[v]
		}
		for _, w := range g.Succ[v] {
			if t := est[v] + dv; t > est[w] {
				est[w] = t
			}
		}
	}
	return est
}
