package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"perseus/internal/forecast"
	"perseus/internal/grid"
	"perseus/internal/region"
)

func forecastTestScenario() ForecastScenario {
	truth := grid.Diurnal24h()
	lt := regionTestTable()
	return ForecastScenario{
		Truth:  truth,
		Seed:   1,
		Sigma:  0.12,
		Target: math.Floor(0.55 * truth.Horizon() / lt.TStar()),
	}
}

// TestForecastComparison is the acceptance check for the bundled
// noisy-revision scenarios: MPC re-planning achieves strictly lower
// realized carbon than plan-once-on-the-first-forecast at equal
// iterations completed, its regret vs the perfect-foresight oracle is
// reported, and seeded runs are deterministic.
func TestForecastComparison(t *testing.T) {
	lt := regionTestTable()
	sc := forecastTestScenario()
	for seed := int64(1); seed <= 3; seed++ {
		sc.Seed = seed
		strategies, err := ForecastComparison(lt, sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(strategies) != 5 {
			t.Fatalf("got %d strategies", len(strategies))
		}
		oracle, once, mpc := strategies[0].Outcome, strategies[1].Outcome, strategies[2].Outcome
		for _, st := range strategies {
			if !st.Outcome.Feasible {
				t.Fatalf("seed %d: %s infeasible", seed, st.Name)
			}
			if math.Abs(st.Outcome.Iterations-sc.Target) > 1e-6*(1+sc.Target) {
				t.Fatalf("seed %d: %s completes %v iterations, want %v", seed, st.Name, st.Outcome.Iterations, sc.Target)
			}
		}
		if !(mpc.CarbonG < once.CarbonG) {
			t.Fatalf("seed %d: MPC carbon %v not strictly below plan-once %v", seed, mpc.CarbonG, once.CarbonG)
		}
		if mpc.CarbonG < oracle.CarbonG-1e-6*(1+oracle.CarbonG) {
			t.Fatalf("seed %d: MPC beats the oracle — oracle broken", seed)
		}

		// Determinism: the same scenario replays identically.
		again, err := ForecastComparison(lt, sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range strategies {
			if strategies[i].Outcome.CarbonG != again[i].Outcome.CarbonG {
				t.Fatalf("seed %d: %s not deterministic", seed, strategies[i].Name)
			}
		}
	}
}

func TestForecastComparisonTableRenders(t *testing.T) {
	lt := regionTestTable()
	sc := forecastTestScenario()
	strategies, err := ForecastComparison(lt, sc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ForecastComparisonTable(sc, strategies).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"oracle", "plan-once", "MPC re-planning", "Regret vs oracle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	// The oracle row's regret column is "-"; the MPC row carries a
	// signed percentage.
	if !strings.Contains(out, "+") {
		t.Fatalf("no signed regret rendered:\n%s", out)
	}

	buf.Reset()
	if err := ForecastDriftTable(strategies[2].Outcome).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Drift") {
		t.Fatalf("drift table missing drift column:\n%s", buf.String())
	}
}

func TestRegionForecastComparison(t *testing.T) {
	lt := regionTestTable()
	pair := region.PhaseShiftedPair(0)
	for i := range pair {
		pair[i].Signal = forecast.Coarsen(pair[i].Signal, 6)
	}
	target := math.Floor(0.5 * pair[0].Signal.Horizon() / lt.TStar())
	mig := region.MigrationCost{DowntimeS: 600, EnergyJ: 5e6}
	strategies, err := RegionForecastComparison(lt, pair, target, mig, 2, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(strategies) != 4 {
		t.Fatalf("got %d strategies", len(strategies))
	}
	for _, st := range strategies {
		if !st.Outcome.Feasible {
			t.Fatalf("%s infeasible", st.Name)
		}
	}
	var buf bytes.Buffer
	if err := RegionForecastComparisonTable(strategies).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Migrations") {
		t.Fatalf("region table missing migrations:\n%s", buf.String())
	}
}
