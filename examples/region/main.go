// Region: chase clean power across datacenters.
//
// PR 2's temporal planner runs a flexible job in the day's clean hours
// and idles through the dirty ones — inside a single grid region. But
// two datacenters whose carbon curves are hours out of phase offer
// more clean hours than either has alone: with a characterized
// frontier and deadline slack, the multi-region planner works the west
// coast's midday solar valley, checkpoints, migrates, and works the
// east's — paying a fixed pause-cost per move only when the phase
// offset earns it back.
package main

import (
	"fmt"
	"log"

	"perseus/internal/experiments"
	"perseus/internal/gpu"
	"perseus/internal/region"
)

func main() {
	sys, err := experiments.BuildSystem(experiments.WorkloadConfig{
		Display: "gpt3-1.3b", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 8,
	}, gpu.A100PCIe, experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()
	regions := region.PhaseShiftedPair(8)

	// Finish 60% of one region's daily T* capacity by midnight; a
	// migration costs a 10-minute checkpoint transfer.
	target := 0.6 * 86400 / lt.TStar()
	jobs := []region.Job{{ID: "train", Table: lt, Target: target}}
	opts := region.Options{Migration: region.MigrationCost{DowntimeS: 600, EnergyJ: 1e6}}

	plan, err := region.Optimize(regions, jobs, opts)
	if err != nil {
		log.Fatal(err)
	}
	noMig, err := region.NoMigration(regions, jobs, opts)
	if err != nil {
		log.Fatal(err)
	}
	bestFixed, err := region.BestFixed(regions, jobs, opts)
	if err != nil {
		log.Fatal(err)
	}

	jp := plan.Jobs[0]
	fmt.Printf("target: %.0f iterations by hour 24 across %v\n\n", target, plan.Regions)
	fmt.Println("hour  placement")
	for _, a := range jp.Assignments {
		place := "paused"
		if a.Region >= 0 {
			place = plan.Regions[a.Region]
		}
		if a.Migrate {
			place += "  <- migrate (checkpoint transfer)"
		}
		fmt.Printf("%4.0f  %s\n", a.StartS/3600, place)
	}
	fmt.Printf("\n%-28s %10s %12s\n", "strategy", "carbon(kg)", "vs planner")
	for _, row := range []struct {
		name string
		p    *region.Plan
	}{{"best fixed placement", bestFixed}, {"no-migration", noMig}, {"region planner", plan}} {
		fmt.Printf("%-28s %10.3f %+11.1f%%\n", row.name, row.p.CarbonG/1e3,
			100*(row.p.CarbonG-plan.CarbonG)/plan.CarbonG)
	}
	fmt.Printf("\nplanner migrated %d time(s), paying %.0f s downtime and %.0f g CO2 in transfer energy\n",
		jp.Migrations, jp.MigrationDowntimeS, jp.MigrationCarbonG)
}
