package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
)

// buildUpload produces a realistic profile upload for a workload.
func buildUpload(t *testing.T, g *gpu.Model, stages, mbSize int) ProfileUpload {
	t.Helper()
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		t.Fatal(err)
	}
	up := ProfileUpload{PBlocking: profile.MeasurePBlocking(g)}
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			up.Measurements = append(up.Measurements,
				MeasurementJSON{Virtual: v, Kind: "forward", Freq: int(f),
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				MeasurementJSON{Virtual: v, Kind: "backward", Freq: int(f),
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	return up
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEndToEndWorkflow(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 1. Register the job.
	resp := postJSON(t, ts.URL+"/jobs", JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jr.JobID == "" {
		t.Fatal("empty job id")
	}

	// 2. Before profiling, the schedule is not ready.
	var sr ScheduleResponse
	get(t, ts.URL+"/jobs/"+jr.JobID+"/schedule", &sr)
	if sr.Ready {
		t.Fatal("schedule ready before profiling")
	}

	// 3. Upload the profile; characterization starts asynchronously.
	up := buildUpload(t, gpu.A100PCIe, 2, 4)
	r := postJSON(t, ts.URL+"/jobs/"+jr.JobID+"/profile", up)
	r.Body.Close()
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("profile upload status %d", r.StatusCode)
	}
	if err := srv.WaitCharacterized(jr.JobID); err != nil {
		t.Fatal(err)
	}

	// 4. The deployed schedule is the Tmin schedule.
	get(t, ts.URL+"/jobs/"+jr.JobID+"/schedule", &sr)
	if !sr.Ready {
		t.Fatal("schedule not ready after characterization")
	}
	if len(sr.Freqs) != 2*4*2 {
		t.Fatalf("plan has %d frequencies, want 16", len(sr.Freqs))
	}
	if sr.Time > sr.Tmin+1e-9 {
		t.Errorf("deployed time %v should be Tmin %v without stragglers", sr.Time, sr.Tmin)
	}
	baseVersion := sr.Version

	// 5. A straggler notification moves the schedule to T_opt.
	r = postJSON(t, ts.URL+"/jobs/"+jr.JobID+"/straggler",
		StragglerNotice{ID: "p1s0", Delay: 0, Degree: 1.2})
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("straggler status %d", r.StatusCode)
	}
	var sr2 ScheduleResponse
	get(t, ts.URL+"/jobs/"+jr.JobID+"/schedule", &sr2)
	if sr2.Version <= baseVersion {
		t.Error("version did not advance after straggler")
	}
	if sr2.Time <= sr.Time {
		t.Errorf("straggler schedule time %v should exceed normal %v", sr2.Time, sr.Time)
	}
	want := 1.2 * sr.Tmin
	if sr2.TStar < want && sr2.Time != 0 && sr2.Time > sr2.TStar+1e-9 {
		t.Errorf("schedule time %v exceeds T* %v", sr2.Time, sr2.TStar)
	}
	if sr2.Time > want+1e-9 && sr2.Time > sr2.TStar+1e-9 {
		t.Errorf("schedule time %v exceeds T_opt=min(T*, %v)", sr2.Time, want)
	}

	// 6. A recovery (degree 1) returns to the Tmin schedule.
	r = postJSON(t, ts.URL+"/jobs/"+jr.JobID+"/straggler",
		StragglerNotice{ID: "p1s0", Degree: 1})
	r.Body.Close()
	var sr3 ScheduleResponse
	get(t, ts.URL+"/jobs/"+jr.JobID+"/schedule", &sr3)
	if sr3.Time != sr.Time {
		t.Errorf("after recovery, time %v != original %v", sr3.Time, sr.Time)
	}

	// 7. The frontier endpoint lists monotone points.
	var fr FrontierResponse
	get(t, ts.URL+"/jobs/"+jr.JobID+"/frontier", &fr)
	if !fr.Ready || len(fr.Time) < 5 {
		t.Fatalf("frontier not ready or too small: %+v", fr.Ready)
	}
	for i := 1; i < len(fr.Time); i++ {
		if fr.Time[i] <= fr.Time[i-1] {
			t.Fatalf("frontier times not increasing at %d", i)
		}
	}
}

func get(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := New()
	if _, err := srv.Register(JobRequest{Schedule: "nope", Stages: 2, Microbatches: 2, GPU: "A40"}); err == nil {
		t.Error("unknown schedule should fail")
	}
	if _, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 2, GPU: "H100"}); err == nil {
		t.Error("unknown GPU should fail")
	}
}

func TestStragglerBeforeCharacterization(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 2, GPU: "A40"})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetStraggler(id, StragglerNotice{Degree: 1.5}); err == nil {
		t.Error("straggler before characterization should fail")
	}
	if err := srv.SetStraggler("job-99", StragglerNotice{Degree: 1.5}); err == nil {
		t.Error("unknown job should fail")
	}
}

func TestDoubleProfileRejected(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 2, GPU: "A100-PCIe", Unit: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	up := buildUpload(t, gpu.A100PCIe, 2, 4)
	if err := srv.UploadProfile(id, up); err != nil {
		t.Fatal(err)
	}
	if err := srv.UploadProfile(id, up); err == nil {
		t.Error("second profile upload should be rejected")
	}
	if err := srv.WaitCharacterized(id); err != nil {
		t.Fatal(err)
	}
}

func TestBadKind(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 2, GPU: "A40"})
	if err != nil {
		t.Fatal(err)
	}
	err = srv.UploadProfile(id, ProfileUpload{
		PBlocking:    60,
		Measurements: []MeasurementJSON{{Virtual: 0, Kind: "sideways", Freq: 1000, Time: 1, Energy: 1}},
	})
	if err == nil {
		t.Error("bad kind should be rejected")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Wrong method.
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /jobs status %d", resp.StatusCode)
	}
	// Unknown job.
	resp, err = http.Get(ts.URL + "/jobs/job-77/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d", resp.StatusCode)
	}
	// Malformed body.
	r, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", r.StatusCode)
	}
}

func TestDelayedStraggler(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 3, GPU: "A100-PCIe", Unit: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.UploadProfile(id, buildUpload(t, gpu.A100PCIe, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitCharacterized(id); err != nil {
		t.Fatal(err)
	}
	before, err := srv.Schedule(id)
	if err != nil {
		t.Fatal(err)
	}
	// Anticipated 30 ms ahead: the deployed schedule must not change yet.
	if err := srv.SetStraggler(id, StragglerNotice{ID: "x", Delay: 0.03, Degree: 1.3}); err != nil {
		t.Fatal(err)
	}
	now, err := srv.Schedule(id)
	if err != nil {
		t.Fatal(err)
	}
	if now.Version != before.Version {
		t.Fatal("delayed straggler applied immediately")
	}
	// After the delay, the schedule flips.
	deadline := time.Now().Add(2 * time.Second)
	for {
		later, err := srv.Schedule(id)
		if err != nil {
			t.Fatal(err)
		}
		if later.Version > before.Version {
			if later.Time <= before.Time {
				t.Fatalf("delayed straggler schedule %v not slower than %v", later.Time, before.Time)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delayed straggler never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTableEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 3, GPU: "A100-PCIe", Unit: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Before characterization: conflict.
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("table before characterization: status %d", resp.StatusCode)
	}
	if err := srv.UploadProfile(id, buildUpload(t, gpu.A100PCIe, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitCharacterized(id); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/jobs/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lt, err := frontier.LoadTable(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Points) < 5 {
		t.Fatalf("served table has %d points", len(lt.Points))
	}
	if len(lt.Points[0].Freqs) != 2*3*2 {
		t.Fatalf("served plan has %d frequencies", len(lt.Points[0].Freqs))
	}
}
