// Package dag represents one training iteration as a directed acyclic
// graph of forward and backward computations (paper §3.2): nodes are
// pipeline instructions, edges are dependencies — both cross-stage
// activation/gradient flows and same-GPU program order. It provides the
// critical-path analysis (earliest/latest start times, slack) that the
// Perseus optimizer uses to find and remove non-critical computations
// (paper Algorithm 2, steps 2-3).
//
// Durations are integers in units of the optimizer's unit time τ
// (paper §4.2), making critical-path arithmetic exact.
package dag

import (
	"fmt"

	"perseus/internal/sched"
)

// Graph is a computation DAG with mutable integer durations. The first
// len(Ops) nodes are real computations; two virtual zero-duration nodes,
// Source and Sink, bracket the iteration.
type Graph struct {
	// Ops are the pipeline instructions, copied from the schedule.
	// Node i (for i < len(Ops)) executes Ops[i].
	Ops []sched.Op

	// Dur is the planned duration of each node in τ units. Virtual
	// nodes have duration 0. The Perseus optimizer mutates real nodes'
	// durations as it walks the frontier.
	Dur []int64

	// Succ and Pred are adjacency lists over all nodes including the
	// virtual ones.
	Succ, Pred [][]int32

	// Source and Sink are the virtual boundary nodes.
	Source, Sink int

	topo []int32 // cached topological order
}

// Build constructs the DAG for a schedule. Edges are the schedule's
// cross-stage dependencies plus same-stage program order (consecutive
// instructions on one GPU execute serially). dur gives each op's initial
// duration in τ units and must be positive for real computations.
func Build(s *sched.Schedule, dur func(op sched.Op) int64) (*Graph, error) {
	n := len(s.Ops)
	g := &Graph{
		Ops:    append([]sched.Op(nil), s.Ops...),
		Dur:    make([]int64, n+2),
		Succ:   make([][]int32, n+2),
		Pred:   make([][]int32, n+2),
		Source: n,
		Sink:   n + 1,
	}
	for i, op := range s.Ops {
		d := dur(op)
		if d <= 0 {
			return nil, fmt.Errorf("dag: op %v has non-positive duration %d", op, d)
		}
		g.Dur[i] = d
	}
	addEdge := func(from, to int) {
		g.Succ[from] = append(g.Succ[from], int32(to))
		g.Pred[to] = append(g.Pred[to], int32(from))
	}
	for _, ids := range s.PerStage {
		for i := 1; i < len(ids); i++ {
			addEdge(ids[i-1], ids[i])
		}
	}
	for _, e := range s.Deps {
		addEdge(e[0], e[1])
	}
	for i := 0; i < n; i++ {
		if len(g.Pred[i]) == 0 {
			addEdge(g.Source, i)
		}
		if len(g.Succ[i]) == 0 {
			addEdge(i, g.Sink)
		}
	}
	if err := g.computeTopo(); err != nil {
		return nil, err
	}
	return g, nil
}

// computeTopo caches a topological order via Kahn's algorithm and reports
// cycles (which indicate an invalid schedule: program order inconsistent
// with dataflow).
func (g *Graph) computeTopo() error {
	n := len(g.Dur)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.Pred[v])
	}
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, int32(v))
		}
	}
	order := make([]int32, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.Succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("dag: schedule graph has a cycle (%d of %d nodes ordered)", len(order), n)
	}
	g.topo = order
	return nil
}

// Topo returns the cached topological order over all nodes.
func (g *Graph) Topo() []int32 { return g.topo }

// EarliestStarts returns each node's earliest start time under the current
// durations: the time the node begins when every computation starts as
// soon as its dependencies complete. This equals the execution timeline of
// the schedule, because same-GPU serialization is encoded as edges.
func (g *Graph) EarliestStarts() []int64 {
	est := make([]int64, len(g.Dur))
	for _, v := range g.topo {
		for _, w := range g.Succ[v] {
			if t := est[v] + g.Dur[v]; t > est[w] {
				est[w] = t
			}
		}
	}
	return est
}

// Makespan returns the iteration time in τ units under the current
// durations: the length of the longest Source→Sink path.
func (g *Graph) Makespan() int64 {
	est := g.EarliestStarts()
	return est[g.Sink]
}

// LatestStarts returns each node's latest start time that keeps the given
// makespan, computed by a reverse pass.
func (g *Graph) LatestStarts(makespan int64) []int64 {
	lst := make([]int64, len(g.Dur))
	for i := range lst {
		lst[i] = makespan
	}
	for i := len(g.topo) - 1; i >= 0; i-- {
		v := g.topo[i]
		if len(g.Succ[v]) == 0 {
			lst[v] = makespan - g.Dur[v]
			continue
		}
		min := makespan
		for _, w := range g.Succ[v] {
			if lst[w] < min {
				min = lst[w]
			}
		}
		lst[v] = min - g.Dur[v]
	}
	return lst
}

// Critical returns, for each node, whether it lies on a critical path:
// its earliest and latest start coincide (zero slack). Paper Algorithm 2,
// lines 2-5. It also returns the makespan.
func (g *Graph) Critical() (critical []bool, makespan int64) {
	est := g.EarliestStarts()
	makespan = est[g.Sink]
	lst := g.LatestStarts(makespan)
	critical = make([]bool, len(g.Dur))
	for v := range critical {
		critical[v] = est[v] == lst[v]
	}
	return critical, makespan
}

// Slack returns each node's total float: latest start − earliest start.
func (g *Graph) Slack() []int64 {
	est := g.EarliestStarts()
	lst := g.LatestStarts(est[g.Sink])
	sl := make([]int64, len(g.Dur))
	for v := range sl {
		sl[v] = lst[v] - est[v]
	}
	return sl
}

// CriticalSubgraph returns the node set of the Critical DAG: every node
// with zero slack (paper Algorithm 2 step 3 / Figure 6 step 3). The
// virtual Source and Sink always belong to it.
func (g *Graph) CriticalSubgraph() []bool {
	critical, _ := g.Critical()
	critical[g.Source] = true
	critical[g.Sink] = true
	return critical
}

// NumReal returns the number of real (non-virtual) computations.
func (g *Graph) NumReal() int { return len(g.Ops) }

// Clone returns a deep copy sharing no mutable state.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Ops:    g.Ops,
		Dur:    append([]int64(nil), g.Dur...),
		Succ:   g.Succ,
		Pred:   g.Pred,
		Source: g.Source,
		Sink:   g.Sink,
		topo:   g.topo,
	}
	return c
}
