package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func allModels() []*Model { return []*Model{A100PCIe, A100SXM, A40, H100SXM} }

func TestFrequencyLadder(t *testing.T) {
	fs := A100PCIe.Frequencies()
	if fs[0] != 1410 || fs[len(fs)-1] != 210 {
		t.Fatalf("A100 ladder endpoints = %d..%d, want 1410..210", fs[0], fs[len(fs)-1])
	}
	if len(fs) != 81 {
		t.Fatalf("A100 ladder has %d frequencies, want 81", len(fs))
	}
	fs = A40.Frequencies()
	if fs[0] != 1740 || len(fs) != 103 {
		t.Fatalf("A40 ladder: first=%d len=%d, want 1740, 103", fs[0], len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1]-fs[i] != A40.FStep {
			t.Fatalf("ladder step %d -> %d != FStep", fs[i-1], fs[i])
		}
	}
}

func TestClamp(t *testing.T) {
	m := A100PCIe
	cases := []struct{ in, want Frequency }{
		{0, 210}, {210, 210}, {211, 225}, {224, 225}, {225, 225},
		{1409, 1410}, {1410, 1410}, {9999, 1410},
	}
	for _, c := range cases {
		if got := m.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClampNeverSlower(t *testing.T) {
	// The clamped frequency must never be below the requested one (a
	// planned computation may run slightly faster but never slower,
	// paper §4.3).
	f := func(raw int16) bool {
		m := A40
		in := Frequency(raw)
		got := m.Clamp(in)
		if got < m.FMin || got > m.FMax {
			return false
		}
		if in >= m.FMin && in <= m.FMax && got < in {
			return false
		}
		return (got-m.FMin)%m.FStep == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeMonotoneDecreasingInFrequency(t *testing.T) {
	for _, m := range allModels() {
		prev := math.Inf(1)
		for _, f := range m.Frequencies() {
			// Frequencies are descending, so time must ascend as we walk.
			tt := m.Time(1.0, f, m.MemBoundFwd)
			if tt <= 0 {
				t.Fatalf("%s: Time(%d) = %v <= 0", m.Name, f, tt)
			}
			_ = prev
		}
		// Walk ascending and check strictly decreasing.
		fs := m.Frequencies()
		for i := len(fs) - 1; i > 0; i-- {
			lo, hi := fs[i], fs[i-1]
			if m.Time(1, hi, 0.3) >= m.Time(1, lo, 0.3) {
				t.Fatalf("%s: Time not decreasing between %d and %d", m.Name, lo, hi)
			}
		}
	}
}

func TestTimeAtMaxEqualsRef(t *testing.T) {
	for _, m := range allModels() {
		if got := m.Time(2.5, m.FMax, 0.3); math.Abs(got-2.5) > 1e-12 {
			t.Errorf("%s: Time(ref=2.5, FMax) = %v, want 2.5", m.Name, got)
		}
	}
}

func TestPowerMonotoneIncreasing(t *testing.T) {
	for _, m := range allModels() {
		fs := m.Frequencies()
		for i := len(fs) - 1; i > 0; i-- {
			lo, hi := fs[i], fs[i-1]
			if m.Power(hi) <= m.Power(lo) {
				t.Fatalf("%s: Power not increasing between %d and %d", m.Name, lo, hi)
			}
		}
		if got := m.Power(m.FMax); math.Abs(got-m.TDP) > 1e-9 {
			t.Errorf("%s: Power(FMax) = %v, want TDP %v", m.Name, got, m.TDP)
		}
	}
}

func TestPowerAboveBlockingEverywhere(t *testing.T) {
	// A GPU that is computing must draw more than a GPU busy-waiting on
	// NCCL; otherwise adjusted energy (Eq. 4) would be negative-slope
	// everywhere and T* would degenerate to the lowest frequency.
	for _, m := range allModels() {
		if p := m.Power(m.FMin); p <= m.BlockingW {
			t.Errorf("%s: Power(FMin)=%v <= BlockingW=%v", m.Name, p, m.BlockingW)
		}
	}
}

func TestInteriorMinimumEnergyFrequency(t *testing.T) {
	// Paper footnote 4: the minimum-energy frequency is "typically not
	// the lowest frequency".
	for _, m := range allModels() {
		for _, mem := range []float64{m.MemBoundFwd, m.MemBoundBwd} {
			f := m.MinEnergyFrequency(mem, m.BlockingW)
			if f <= m.FMin {
				t.Errorf("%s: min-energy frequency is FMin; want interior", m.Name)
			}
			if f >= m.FMax {
				t.Errorf("%s: min-energy frequency is FMax; no tradeoff exists", m.Name)
			}
		}
	}
}

func TestCalibrationPotentialSavings(t *testing.T) {
	// Paper §2.4: running every computation at its minimum-energy
	// frequency yields about 16% savings on A100 and 27% on A40 on
	// average. Check the per-computation raw-energy savings are in a
	// band around those (the pipeline-level numbers in the paper include
	// blocking effects; the per-computation number must be in the same
	// regime for the pipeline result to land).
	check := func(m *Model, lo, hi float64) {
		t.Helper()
		mem := m.MemBoundFwd
		f := m.MinEnergyFrequency(mem, m.BlockingW)
		save := 1 - m.Energy(1, f, mem)/m.Energy(1, m.FMax, mem)
		if save < lo || save > hi {
			t.Errorf("%s: per-computation potential saving %.1f%%, want in [%.0f%%, %.0f%%] (minE freq %d)",
				m.Name, 100*save, 100*lo, 100*hi, f)
		}
	}
	check(A100PCIe, 0.12, 0.26)
	check(A40, 0.22, 0.40)
}

func TestCalibrationMinEnergySlowdown(t *testing.T) {
	// §6.2.3: stragglers with slowdown ~1.1-1.15 let Perseus fully
	// realize potential savings, implying the per-computation
	// minimum-adjusted-energy point sits at a modest slowdown. Allow a
	// generous band but reject degenerate (>2x) slowdowns.
	for _, m := range allModels() {
		f := m.MinEnergyFrequency(m.MemBoundFwd, m.BlockingW)
		slow := m.Time(1, f, m.MemBoundFwd)
		if slow < 1.05 || slow > 1.8 {
			t.Errorf("%s: min-adjusted-energy slowdown %.2fx out of [1.05, 1.8] (freq %d)", m.Name, slow, f)
		}
	}
}

func TestA40DeeperSavingsThanA100(t *testing.T) {
	// Paper §6.2: "A40 demonstrates more energy savings compared to A100"
	// due to its wider dynamic frequency range, and "we expect the more
	// recent GPUs to have better percentage savings due to higher maximum
	// frequency (e.g., 1980 MHz for H100 SXM)".
	sav := func(m *Model) float64 {
		f := m.MinEnergyFrequency(m.MemBoundFwd, m.BlockingW)
		return 1 - m.Energy(1, f, m.MemBoundFwd)/m.Energy(1, m.FMax, m.MemBoundFwd)
	}
	if sav(A40) <= sav(A100PCIe) {
		t.Errorf("A40 potential saving %.3f should exceed A100's %.3f", sav(A40), sav(A100PCIe))
	}
	if sav(H100SXM) <= sav(A40) {
		t.Errorf("H100 potential saving %.3f should exceed A40's %.3f (§6.2)", sav(H100SXM), sav(A40))
	}
}

func TestPowerLimitFrequency(t *testing.T) {
	m := A100PCIe
	if f := m.PowerLimitFrequency(m.TDP); f != m.FMax {
		t.Errorf("PowerLimitFrequency(TDP) = %d, want FMax", f)
	}
	if f := m.PowerLimitFrequency(0); f != m.FMin {
		t.Errorf("PowerLimitFrequency(0) = %d, want FMin", f)
	}
	// The returned frequency's power respects the cap, and one step up
	// violates it (or is FMax).
	for _, lim := range []float64{150, 200, 250, 280} {
		f := m.PowerLimitFrequency(lim)
		if m.Power(f) > lim {
			t.Errorf("Power(%d)=%.1f exceeds limit %.0f", f, m.Power(f), lim)
		}
		if f < m.FMax && m.Power(f+m.FStep) <= lim {
			t.Errorf("limit %.0f: %d is not the highest admissible frequency", lim, f)
		}
	}
}

func TestDeviceSemantics(t *testing.T) {
	d := NewDevice(A100PCIe, "p0s0")
	if d.Frequency() != A100PCIe.FMax {
		t.Fatalf("new device frequency = %d, want FMax", d.Frequency())
	}
	applied := d.SetFrequency(1000)
	if applied != 1005 {
		t.Fatalf("SetFrequency(1000) applied %d, want 1005 (next step up)", applied)
	}
	sec, j := d.Run(0.1, 0.3)
	wantSec := A100PCIe.Time(0.1, 1005, 0.3)
	if math.Abs(sec-wantSec) > 1e-12 {
		t.Errorf("Run time = %v, want %v", sec, wantSec)
	}
	if math.Abs(j-A100PCIe.Power(1005)*wantSec) > 1e-9 {
		t.Errorf("Run energy = %v, want P*t", j)
	}
	jb := d.Block(2.0)
	if math.Abs(jb-2*A100PCIe.BlockingW) > 1e-9 {
		t.Errorf("Block energy = %v, want %v", jb, 2*A100PCIe.BlockingW)
	}
	if math.Abs(d.EnergyCounter()-(j+jb)) > 1e-9 {
		t.Errorf("EnergyCounter = %v, want %v", d.EnergyCounter(), j+jb)
	}
	d.ResetEnergyCounter()
	if d.EnergyCounter() != 0 {
		t.Errorf("EnergyCounter after reset = %v", d.EnergyCounter())
	}
}

func TestParetoPoints(t *testing.T) {
	m := A40
	pts := m.ParetoPoints(0.2, m.MemBoundFwd, m.BlockingW)
	if len(pts) < 5 {
		t.Fatalf("expected a nontrivial Pareto set, got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Fatalf("Pareto times not strictly increasing at %d", i)
		}
		if pts[i].Energy >= pts[i-1].Energy {
			t.Fatalf("Pareto energies not strictly decreasing at %d", i)
		}
	}
	// The fastest point is FMax; the slowest is the min-adjusted-energy
	// frequency, not FMin.
	if pts[0].Freq != m.FMax {
		t.Errorf("fastest Pareto point freq = %d, want FMax", pts[0].Freq)
	}
	last := pts[len(pts)-1]
	if last.Freq != m.MinEnergyFrequency(m.MemBoundFwd, m.BlockingW) {
		t.Errorf("slowest Pareto point freq = %d, want min-energy freq %d",
			last.Freq, m.MinEnergyFrequency(m.MemBoundFwd, m.BlockingW))
	}
}

func TestByName(t *testing.T) {
	for _, m := range allModels() {
		got, err := ByName(m.Name)
		if err != nil || got != m {
			t.Errorf("ByName(%q) = %v, %v", m.Name, got, err)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("ByName(H100) should fail")
	}
}

func TestEnergyConvexAlongLadder(t *testing.T) {
	// Adjusted energy as a function of time should be decreasing up to
	// the minimum and increasing after: exactly one sign change in the
	// finite differences.
	for _, m := range allModels() {
		fs := m.Frequencies()
		var es []float64
		for _, f := range fs {
			tt := m.Time(1, f, m.MemBoundFwd)
			es = append(es, m.Power(f)*tt-m.BlockingW*tt)
		}
		changes := 0
		for i := 2; i < len(es); i++ {
			d0 := es[i-1] - es[i-2]
			d1 := es[i] - es[i-1]
			if (d0 < 0) != (d1 < 0) {
				changes++
			}
		}
		if changes > 1 {
			t.Errorf("%s: adjusted energy has %d direction changes along ladder, want <= 1", m.Name, changes)
		}
	}
}
