// Quickstart: characterize the time-energy frontier of GPT-3 1.3B
// four-stage pipeline training on A100 GPUs, then remove intrinsic energy
// bloat — the paper's Figure 1 scenario.
package main

import (
	"fmt"
	"log"
	"os"

	"perseus"
)

func main() {
	sys, err := perseus.Characterize(perseus.Workload{
		Model:          "gpt3-1.3b",
		GPU:            "A100-PCIe",
		Stages:         4,
		MicrobatchSize: 4,
		Microbatches:   24,
		TargetSteps:    600,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("frontier: Tmin=%.3fs .. T*=%.3fs (%d energy schedules)\n",
		sys.Tmin(), sys.TStar(), len(sys.Frontier()))

	// Default mode of operation: every GPU at maximum frequency.
	base := sys.Baseline()
	fmt.Printf("all-max baseline: %.3fs, %.0f J\n", base.IterTime, base.Energy)

	// Perseus's Tmin schedule: slow down only non-critical computations.
	res, err := sys.Simulate(sys.PlanFor(0), nil)
	if err != nil {
		log.Fatal(err)
	}
	saving, slowdown := sys.Savings(res)
	fmt.Printf("perseus Tmin:     %.3fs, %.0f J  ->  %.1f%% energy saving, %.2f%% slowdown\n",
		res.IterTime, res.Energy, 100*saving, 100*slowdown)

	fmt.Println("\npipeline timeline under the Perseus schedule (F/B markers, shade = power):")
	if err := sys.RenderTimeline(os.Stdout, sys.PlanFor(0), 110); err != nil {
		log.Fatal(err)
	}
}
