package server

import (
	"encoding/csv"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/obs"
)

// ledgerTestServer builds a server on a fake clock with the test
// signal installed, so every settled span is deterministic.
func ledgerTestServer(t *testing.T) (*Server, *fakeClock) {
	t.Helper()
	srv := New()
	clk := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv.SetClock(clk.Now)
	if _, err := srv.SetGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	return srv, clk
}

const ledgerEps = 1e-9

func TestLedgerConservationAndReconciliation(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3, DataParallel: 2,
	}, 4)

	// Span 1: 20 minutes in the dirty hour, no forecast.
	clk.Advance(20 * time.Minute)
	if _, err := srv.Emissions(id); err != nil {
		t.Fatal(err)
	}
	// Install a forecast: later spans are forecast-covered.
	if _, err := srv.SetForecast(ForecastRequest{Model: "persistence"}); err != nil {
		t.Fatal(err)
	}
	// Span 2: 50 minutes crossing into the clean hour.
	clk.Advance(50 * time.Minute)
	if err := srv.SetStraggler(id, StragglerNotice{ID: "gpu-3", Degree: 1.5}); err != nil {
		t.Fatal(err)
	}
	// Span 3: 30 minutes at the slowed straggler operating point.
	clk.Advance(30 * time.Minute)

	resp, err := srv.Ledger("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 1 || resp.Jobs[0].JobID != id {
		t.Fatalf("ledger jobs = %+v", resp.Jobs)
	}
	view := resp.Jobs[0]
	if len(view.Entries) < 3 {
		t.Fatalf("retained %d entries, want >= 3", len(view.Entries))
	}
	for i, e := range view.Entries {
		if e.Kind != obs.LedgerKindSpan {
			t.Fatalf("entry %d kind %q", i, e.Kind)
		}
		if e.EndUnixS < e.StartUnixS {
			t.Fatalf("entry %d runs backwards: %+v", i, e)
		}
		if !e.Conserved(ledgerEps) {
			t.Fatalf("entry %d violates conservation: %+v", i, e.BloatSpan)
		}
		// The frontier floor never exceeds what was actually burned on
		// training work (LookupIndex floors to a point at least as fast
		// as the deployed one; power strictly decreases along the
		// frontier).
		if e.ResidualJ < -ledgerEps*math.Max(1, e.EnergyJ) {
			t.Fatalf("entry %d floor above realized: %+v", i, e.BloatSpan)
		}
	}
	if !view.Totals.Conserved(ledgerEps) {
		t.Fatalf("job totals violate conservation: %+v", view.Totals.BloatSpan)
	}
	if !resp.Fleet.Conserved(ledgerEps) {
		t.Fatalf("fleet totals violate conservation: %+v", resp.Fleet.BloatSpan)
	}
	// One job: fleet rollup is exactly the job's totals.
	if resp.Fleet.EnergyJ != view.Totals.EnergyJ || resp.Fleet.Entries != view.Totals.Entries {
		t.Fatalf("fleet %+v != job totals %+v", resp.Fleet, view.Totals)
	}

	// The first span ran at Tmin: the always-Tmin baseline IS the
	// realized draw, so no intrinsic bloat was removed.
	first := view.Entries[0]
	if math.Abs(first.RemovedJ) > 1e-6*first.EnergyJ {
		t.Fatalf("pre-straggler span removed %v J vs %v realized, want ~0", first.RemovedJ, first.EnergyJ)
	}
	// The last span ran slowed under the straggler: running flat-out at
	// Tmin would have burned more at equal work.
	last := view.Entries[len(view.Entries)-1]
	if last.RemovedJ <= 0 {
		t.Fatalf("straggler span removed %v J, want > 0 (%+v)", last.RemovedJ, last.BloatSpan)
	}
	if last.Iterations <= 0 || last.FloorJ <= 0 {
		t.Fatalf("straggler span carries no work: %+v", last.BloatSpan)
	}

	// Ledger totals reconcile with the emissions account bit-for-bit:
	// the same floats flow into both.
	em, err := srv.Emissions(id)
	if err != nil {
		t.Fatal(err)
	}
	if em.EnergyJ != view.Totals.EnergyJ {
		t.Fatalf("energy: emissions %v != ledger %v", em.EnergyJ, view.Totals.EnergyJ)
	}
	if em.CarbonG != view.Totals.CarbonG {
		t.Fatalf("carbon: emissions %v != ledger %v", em.CarbonG, view.Totals.CarbonG)
	}
	if em.CostUSD != view.Totals.CostUSD {
		t.Fatalf("cost: emissions %v != ledger %v", em.CostUSD, view.Totals.CostUSD)
	}
	if em.PredCarbonG != view.Totals.PredC {
		t.Fatalf("predicted: emissions %v != ledger %v", em.PredCarbonG, view.Totals.PredC)
	}
	if math.Abs(em.DriftCarbonG-view.Totals.DriftC) > ledgerEps*math.Max(1, math.Abs(em.DriftCarbonG)) {
		t.Fatalf("drift: emissions %v != ledger %v", em.DriftCarbonG, view.Totals.DriftC)
	}
	// Forecast-covered spans accrued: predicted-realized carbon is real.
	if view.Totals.PredRealC <= 0 {
		t.Fatalf("no forecast-covered realized carbon: %+v", view.Totals.BloatSpan)
	}
}

func TestLedgerTickByTickConservation(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	// 24 ten-minute controller ticks: every tick settles a span; the
	// running totals must conserve at every step, not just at the end.
	var prevEntries int
	for i := 0; i < 24; i++ {
		clk.Advance(10 * time.Minute)
		srv.TickController()
		resp, err := srv.Ledger(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		tot := resp.Jobs[0].Totals
		if tot.Entries <= prevEntries {
			t.Fatalf("tick %d settled nothing: %d entries", i, tot.Entries)
		}
		prevEntries = tot.Entries
		if !tot.Conserved(ledgerEps) {
			t.Fatalf("tick %d totals violate conservation: %+v", i, tot.BloatSpan)
		}
		em, err := srv.Emissions(id)
		if err != nil {
			t.Fatal(err)
		}
		if em.EnergyJ != tot.EnergyJ || em.CarbonG != tot.CarbonG {
			t.Fatalf("tick %d: emissions (%v J, %v g) != ledger (%v J, %v g)",
				i, em.EnergyJ, em.CarbonG, tot.EnergyJ, tot.CarbonG)
		}
	}
}

func TestLedgerMigrationEntry(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	clean := testSignal()
	for i := range clean.Intervals {
		clean.Intervals[i].CarbonGPerKWh = 50
	}
	if _, err := srv.RegisterRegion(RegionRequest{Name: "green", GPUs: 64, Signal: clean}); err != nil {
		t.Fatal(err)
	}

	clk.Advance(15 * time.Minute)
	const m = 5e5
	if _, err := srv.PlaceJobMigrating(id, "green", math.NaN()); err == nil {
		t.Fatal("NaN migration energy must be rejected")
	}
	if _, err := srv.PlaceJobMigrating(id, "green", -1); err == nil {
		t.Fatal("negative migration energy must be rejected")
	}
	if _, err := srv.PlaceJobMigrating(id, "green", m); err != nil {
		t.Fatal(err)
	}

	resp, err := srv.Ledger(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	view := resp.Jobs[0]
	var mig *obs.LedgerEntry
	for i := range view.Entries {
		if view.Entries[i].Kind == obs.LedgerKindMigration {
			if mig != nil {
				t.Fatal("more than one migration entry")
			}
			mig = &view.Entries[i]
		}
	}
	if mig == nil {
		t.Fatalf("no migration entry in %+v", view.Entries)
	}
	if mig.EnergyJ != m || mig.MigrationJ != m {
		t.Fatalf("migration entry charges %v/%v J, want %v", mig.EnergyJ, mig.MigrationJ, m)
	}
	if mig.Iterations != 0 || mig.FloorJ != 0 || mig.RemovedJ != 0 {
		t.Fatalf("migration entry carries work: %+v", mig.BloatSpan)
	}
	if mig.StartUnixS != mig.EndUnixS {
		t.Fatalf("migration entry has width: %+v", mig)
	}
	if !mig.Conserved(0) {
		t.Fatalf("migration entry violates conservation: %+v", mig.BloatSpan)
	}
	// Charged at the clean destination's rate: 5e5 J at 50 g/kWh.
	wantC := m / 3.6e6 * 50
	if math.Abs(mig.CarbonG-wantC) > 1e-9 {
		t.Fatalf("migration carbon %v, want %v", mig.CarbonG, wantC)
	}
	if view.Totals.MigrationJ != m {
		t.Fatalf("totals migration %v, want %v", view.Totals.MigrationJ, m)
	}
	// The charge landed in the emissions account too, and the two still
	// reconcile exactly.
	em, err := srv.Emissions(id)
	if err != nil {
		t.Fatal(err)
	}
	if em.EnergyJ != view.Totals.EnergyJ || em.CarbonG != view.Totals.CarbonG {
		t.Fatalf("emissions (%v J, %v g) != ledger (%v J, %v g)",
			em.EnergyJ, em.CarbonG, view.Totals.EnergyJ, view.Totals.CarbonG)
	}
	// Placing into the current region charges nothing.
	before := view.Totals.EnergyJ
	if _, err := srv.PlaceJobMigrating(id, "green", m); err != nil {
		t.Fatal(err)
	}
	resp, _ = srv.Ledger(id, 0)
	if got := resp.Jobs[0].Totals.EnergyJ; got != before {
		t.Fatalf("same-region placement charged energy: %v -> %v", before, got)
	}
}

func TestLedgerDriftSLOBreach(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	// A deliberately terrible forecast: the seeded revisions issuer with
	// a huge per-step innovation, so predicted rates diverge far from
	// the realized signal and the drift ratio blows through 25%.
	if _, err := srv.SetForecast(ForecastRequest{Model: "revisions", Seed: 6, Sigma: 2}); err != nil {
		t.Fatal(err)
	}
	// 10-minute ticks to the signal's 2-hour mark: each tick settles a
	// forecast-covered span, and the revision noise diverges hardest
	// over the trailing spans the SLO windows measure.
	for i := 0; i < 12; i++ {
		clk.Advance(10 * time.Minute)
		srv.TickController()
	}
	resp, err := srv.Ledger(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	tot := resp.Jobs[0].Totals
	ratio := tot.AbsDriftC / (tot.AbsDriftC + tot.PredRealC)
	if !(ratio > 0.25) {
		t.Fatalf("fixture drift ratio %v not above the 0.25 SLO threshold (abs %v, covered %v); pick a worse seed",
			ratio, tot.AbsDriftC, tot.PredRealC)
	}

	var drift *obs.SLOStatus
	for _, st := range srv.SLOs() {
		if st.Name == "carbon-drift-ratio" {
			drift = &st
			break
		}
	}
	if drift == nil {
		t.Fatal("carbon-drift-ratio rule missing")
	}
	if drift.Status != obs.StatusBreach {
		t.Fatalf("drift SLO status %q (value %v), want breach", drift.Status, drift.Value)
	}
	if !(drift.Value > 0.25) {
		t.Fatalf("windowed drift value %v not above threshold", drift.Value)
	}
	// The breach names the worst-drifting job.
	if !strings.Contains(drift.Detail, id) {
		t.Fatalf("breach detail %q does not name %s", drift.Detail, id)
	}
	worst, worstRatio := srv.obs.ledger.WorstDriftJob()
	if worst != id || math.Abs(worstRatio-ratio) > 1e-9 {
		t.Fatalf("WorstDriftJob = %q/%v, want %q/%v", worst, worstRatio, id, ratio)
	}
	// Readiness drops and the transition event carries the offender.
	if h := srv.Health(); h.Ready {
		t.Fatalf("health still ready during drift breach: %+v", h)
	}
	var sawBreach bool
	for _, e := range srv.Events(0).Events {
		if e.Name == "slo.breach" && e.Labels["slo"] == "carbon-drift-ratio" {
			sawBreach = true
			if !strings.Contains(e.Labels["worst"], id) {
				t.Fatalf("breach event worst %q does not name %s", e.Labels["worst"], id)
			}
		}
	}
	if !sawBreach {
		t.Fatal("no slo.breach event for carbon-drift-ratio")
	}
}

func TestRemoveJobDropsSeriesAndLedger(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id1 := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	id2 := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 3, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	clk.Advance(30 * time.Minute)
	if _, err := srv.Ledger("", 0); err != nil {
		t.Fatal(err)
	}

	metrics, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"perseus_job_energy_joules_total", "perseus_fleet_bloat_energy_joules_total",
		`job="` + id1 + `"`, `job="` + id2 + `"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
	fleetBefore, err := cl.FetchLedger("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleetBefore.Jobs) != 2 {
		t.Fatalf("ledger lists %d jobs, want 2", len(fleetBefore.Jobs))
	}

	if err := cl.RemoveJob(id1); err != nil {
		t.Fatal(err)
	}
	if err := cl.RemoveJob(id1); err == nil {
		t.Fatal("second remove must 404")
	}

	// Cardinality actually shrinks: no per-job series for id1 remain.
	metrics, err = cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(metrics, `job="`+id1+`"`) {
		t.Fatalf("metrics still carry series for removed %s", id1)
	}
	if !strings.Contains(metrics, `job="`+id2+`"`) {
		t.Fatal("remove deleted the surviving job's series")
	}

	after, err := cl.FetchLedger("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Jobs) != 1 || after.Jobs[0].JobID != id2 {
		t.Fatalf("ledger jobs after remove = %+v", after.Jobs)
	}
	// Fleet history does not rewrite itself when a job leaves.
	if after.Fleet.EnergyJ != fleetBefore.Fleet.EnergyJ || after.Fleet.Entries != fleetBefore.Fleet.Entries {
		t.Fatalf("fleet totals changed on remove: %+v -> %+v", fleetBefore.Fleet, after.Fleet)
	}
	// The removed job's ledger endpoint 404s.
	resp, err := http.Get(ts.URL + "/debug/ledger?job=" + id1)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed job ledger status %d, want 404", resp.StatusCode)
	}
}

func TestDebugLedgerEndpoint(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	for i := 0; i < 3; i++ {
		clk.Advance(10 * time.Minute)
		if _, err := srv.Ledger("", 0); err != nil {
			t.Fatal(err)
		}
	}

	for path, want := range map[string]int{
		"/debug/ledger?n=x":           http.StatusBadRequest,
		"/debug/ledger?n=-1":          http.StatusBadRequest,
		"/debug/ledger?format=xml":    http.StatusBadRequest,
		"/debug/ledger?job=none":      http.StatusNotFound,
		"/debug/ledger":               http.StatusOK,
		"/debug/ledger?format=csv":    http.StatusOK,
		"/debug/ledger?job=" + id:     http.StatusOK,
		"/debug/ledger?n=1&job=" + id: http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(ts.URL+"/debug/ledger", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/ledger = %d, want 405", resp.StatusCode)
	}

	// CSV round-trip: the rendered rows parse back to exactly the JSON
	// entries.
	led, err := cl.FetchLedger(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := cl.FetchLedgerCSV(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatalf("ledger CSV does not parse: %v", err)
	}
	if len(rows) != len(led.Jobs[0].Entries)+1 {
		t.Fatalf("CSV has %d rows, want header + %d entries", len(rows), len(led.Jobs[0].Entries))
	}
	wantHeader := []string{
		"job", "kind", "start_unix_s", "end_unix_s", "iterations",
		"energy_j", "carbon_g", "cost_usd",
		"floor_j", "migration_j", "residual_j", "tmin_j", "removed_j",
		"floor_c", "migration_c", "residual_c",
		"blind_c", "temporal_saved_c",
		"pred_c", "pred_real_c", "drift_c",
	}
	if strings.Join(rows[0], ",") != strings.Join(wantHeader, ",") {
		t.Fatalf("CSV header = %v", rows[0])
	}
	for i, e := range led.Jobs[0].Entries {
		row := rows[i+1]
		if row[0] != id || row[1] != e.Kind {
			t.Fatalf("row %d = %v", i, row)
		}
		for col, want := range map[int]float64{5: e.EnergyJ, 6: e.CarbonG, 8: e.FloorJ, 20: e.DriftC} {
			got, err := strconv.ParseFloat(row[col], 64)
			if err != nil || got != want {
				t.Fatalf("row %d col %d = %q, want %v (%v)", i, col, row[col], want, err)
			}
		}
	}

	// n=1 caps the returned entries; totals still cover everything.
	led1, err := cl.FetchLedger(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(led1.Jobs[0].Entries) != 1 {
		t.Fatalf("n=1 returned %d entries", len(led1.Jobs[0].Entries))
	}
	if led1.Jobs[0].Totals.Entries != led.Jobs[0].Totals.Entries {
		t.Fatal("n must cap entries, not totals")
	}
}

// TestLedgerHammer scrapes /metrics, /debug/ledger (JSON and CSV),
// emissions, and health concurrently with clock advances, controller
// ticks, straggler flips, and a job removal — the -race proof that
// settlement and export never tear.
func TestLedgerHammer(t *testing.T) {
	srv, clk := ledgerTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id1 := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	id2 := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 3, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := srv.SetForecast(ForecastRequest{Model: "persistence"}); err != nil {
		t.Fatal(err)
	}

	const iters = 40
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fn(i)
			}
		}()
	}
	run(func(i int) {
		clk.Advance(time.Minute)
		srv.TickController()
	})
	run(func(i int) {
		_ = srv.SetStraggler(id1, StragglerNotice{ID: "gpu-0", Degree: 1 + float64(i%3)})
	})
	run(func(i int) { _, _ = cl.FetchMetrics() })
	run(func(i int) { _, _ = cl.FetchLedger("", 0) })
	run(func(i int) { _, _ = cl.FetchLedgerCSV("", 2) })
	run(func(i int) { _, _ = cl.FetchEmissions(id2) })
	run(func(i int) { _, _ = cl.FetchHealth() })
	run(func(i int) {
		if i == iters/2 {
			_ = srv.RemoveJob(id2)
		}
	})
	wg.Wait()

	// The surviving state is still coherent and conserving.
	resp, err := srv.Ledger(id1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Jobs[0].Totals.Conserved(1e-6) {
		t.Fatalf("post-hammer totals violate conservation: %+v", resp.Jobs[0].Totals.BloatSpan)
	}
	if !resp.Fleet.Conserved(1e-6) {
		t.Fatalf("post-hammer fleet violates conservation: %+v", resp.Fleet.BloatSpan)
	}
}
