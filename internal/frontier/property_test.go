package frontier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perseus/internal/dag"
	"perseus/internal/gpu"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// randomWorkload builds a random small pipeline and its profile.
func randomWorkload(seed int64) (*dag.Graph, *profile.Profile, Options, error) {
	rng := rand.New(rand.NewSource(seed))
	g := gpu.A100PCIe
	if rng.Intn(2) == 0 {
		g = gpu.A40
	}
	stages := 2 + rng.Intn(2)
	micro := 2 + rng.Intn(4)
	refs := make([]float64, stages)
	for i := range refs {
		refs[i] = 0.05 + rng.Float64()*0.15
	}
	prof, err := profile.FromStageTimes(g, refs, 1.5+rng.Float64())
	if err != nil {
		return nil, nil, Options{}, err
	}
	s, err := sched.OneFOneB(stages, micro)
	if err != nil {
		return nil, nil, Options{}, err
	}
	opts := Options{Unit: 4e-3}
	graph, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	return graph, prof, opts, err
}

// TestPropertyFrontierInvariants checks, for random workloads, the three
// structural invariants of a characterized frontier: consecutive time
// units from Tmin to T*, non-increasing relaxed energy with time, and
// plan feasibility at every sampled point.
func TestPropertyFrontierInvariants(t *testing.T) {
	f := func(seed int64) bool {
		graph, prof, opts, err := randomWorkload(seed)
		if err != nil {
			return false
		}
		fr, err := Characterize(graph, prof, opts)
		if err != nil {
			return false
		}
		pts := fr.Points()
		if pts[0].TimeUnits != fr.tminUnits || pts[len(pts)-1].TimeUnits != fr.tstarUnits {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].TimeUnits != pts[i-1].TimeUnits+1 {
				return false
			}
			if pts[i].EnergyRelaxed > pts[i-1].EnergyRelaxed+1e-9 {
				return false
			}
		}
		// Sampled plans must realize their planned makespan: set realized
		// durations and check the realized longest path does not exceed
		// the planned time (plus the half-unit rounding of minU).
		for _, idx := range []int{0, len(pts) / 2, len(pts) - 1} {
			pt := pts[idx]
			durs := pt.Durations()
			for i := range graph.Ops {
				graph.Dur[i] = durs[i]
			}
			if graph.Makespan() != pt.TimeUnits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLookupTotal checks Lookup over random query times: results
// are clamped to [Tmin, T*], never exceed min(T*, T'), and are monotone.
func TestPropertyLookupTotal(t *testing.T) {
	graph, prof, opts, err := randomWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := Characterize(graph, prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		tPrime := fr.Tmin() * (0.5 + float64(raw)/20000) // 0.5x .. ~3.8x
		pt := fr.Lookup(tPrime)
		if pt.Time < fr.Tmin()-1e-9 || pt.Time > fr.TStar()+1e-9 {
			return false
		}
		if tPrime >= fr.Tmin() && pt.Time > tPrime+1e-9 && pt.TimeUnits != fr.tminUnits {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
