// Command perseus-tables regenerates the tables and figures of the
// Perseus paper's evaluation (§6, Appendices A/D/H). Each experiment
// prints the same rows or series the paper reports; EXPERIMENTS.md records
// the paper-versus-measured comparison.
//
// Usage:
//
//	perseus-tables -experiment all -scale quick
//	perseus-tables -experiment table3 -scale full
//	perseus-tables -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"perseus/internal/experiments"
	"perseus/internal/gpu"
)

type runner func(sc experiments.Scale, out *os.File) error

var runners = map[string]runner{
	"table1": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Table1()
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"table7": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Table7()
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"potential": func(sc experiments.Scale, out *os.File) error {
		for _, c := range []struct {
			g    *gpu.Model
			cfgs []experiments.WorkloadConfig
		}{
			{gpu.A100PCIe, experiments.A100Workloads()},
			{gpu.A40, experiments.A40Workloads()},
		} {
			t, err := experiments.PotentialSavings(c.g, c.cfgs, sc)
			if err != nil {
				return err
			}
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"table3": func(sc experiments.Scale, out *os.File) error {
		for _, c := range []struct {
			g    *gpu.Model
			cfgs []experiments.WorkloadConfig
		}{
			{gpu.A100PCIe, experiments.A100Workloads()},
			{gpu.A40, experiments.A40Workloads()},
		} {
			t, err := experiments.Table3(c.g, c.cfgs, sc)
			if err != nil {
				return err
			}
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"table4": func(sc experiments.Scale, out *os.File) error {
		for _, c := range []struct {
			g    *gpu.Model
			cfgs []experiments.WorkloadConfig
		}{
			{gpu.A100PCIe, experiments.A100Workloads()},
			{gpu.A40, experiments.A40Workloads()},
		} {
			t, err := experiments.Table4(c.g, c.cfgs, sc)
			if err != nil {
				return err
			}
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"table6": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Table6(sc)
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"fig1": func(sc experiments.Scale, out *os.File) error {
		for _, m := range []string{"gpt3-1.3b", "bert-1.3b", "t5-3b", "bloom-3b", "wide-resnet101"} {
			if err := experiments.Figure1(out, m, sc); err != nil {
				return err
			}
		}
		return nil
	},
	"fig7": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Figure7(sc)
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"fig8": func(sc experiments.Scale, out *os.File) error {
		for _, em := range experiments.EmulationModels {
			for _, g := range experiments.EmulationGPUs {
				t, err := experiments.Figure8(em.Model, em.Display, g, sc)
				if err != nil {
					return err
				}
				if err := t.Render(out); err != nil {
					return err
				}
			}
		}
		return nil
	},
	"fig9": func(sc experiments.Scale, out *os.File) error {
		tables, err := experiments.Figure9(nil, sc)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"fig11": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Figure11()
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"fig12-13": func(sc experiments.Scale, out *os.File) error {
		tables, err := experiments.Figure12And13(nil, sc)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"realized": func(sc experiments.Scale, out *os.File) error {
		for _, c := range []struct {
			g    *gpu.Model
			cfgs []experiments.WorkloadConfig
		}{
			{gpu.A100PCIe, experiments.A100Workloads()},
			{gpu.A40, experiments.A40Workloads()},
		} {
			t, err := experiments.RealizedPotential(c.g, c.cfgs, sc)
			if err != nil {
				return err
			}
			if err := t.Render(out); err != nil {
				return err
			}
		}
		return nil
	},
	"scaling": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.WeakVsStrongScaling("bloom-176b", "Bloom 176B", gpu.A100SXM, sc)
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"overhead": func(sc experiments.Scale, out *os.File) error {
		t, err := experiments.Overhead(gpu.A100PCIe, experiments.A100Workloads(), sc)
		if err != nil {
			return err
		}
		return t.Render(out)
	},
	"ablation": func(sc experiments.Scale, out *os.File) error {
		cfg := experiments.A100Workloads()[0]
		t, err := experiments.AblationGreedy(cfg, gpu.A100PCIe, sc)
		if err != nil {
			return err
		}
		if err := t.Render(out); err != nil {
			return err
		}
		t, err = experiments.AblationFit(cfg, gpu.A100PCIe, sc)
		if err != nil {
			return err
		}
		if err := t.Render(out); err != nil {
			return err
		}
		t, err = experiments.AblationTau(cfg, gpu.A100PCIe, []float64{20e-3, 10e-3, 5e-3, 1e-3})
		if err != nil {
			return err
		}
		return t.Render(out)
	},
}

// order fixes the presentation sequence for -experiment all.
var order = []string{
	"table1", "table7", "fig1", "potential", "table3", "table4", "realized",
	"table6", "fig7", "fig8", "fig9", "fig11", "fig12-13", "scaling",
	"overhead", "ablation",
}

func main() {
	exp := flag.String("experiment", "all", "experiment id, or 'all'")
	scale := flag.String("scale", "quick", "quick | medium | full (paper parameters; slow)")
	list := flag.Bool("list", false, "list experiment ids, then exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(order, "\n"))
		return
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Scale{MaxMicrobatches: 16, TargetSteps: 400}
	case "medium":
		sc = experiments.Scale{MaxMicrobatches: 48, TargetSteps: 800}
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	ids := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			log.Fatalf("unknown experiment %q (use -list)", *exp)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		if err := runners[id](sc, os.Stdout); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}
}
