package experiments

import (
	"bytes"
	"strings"
	"testing"

	"perseus/internal/gpu"
	"perseus/internal/grid"
)

// TestGridComparisonOnBundledTrace is the end-to-end acceptance check
// on a real characterized workload: over the bundled 24 h diurnal
// trace, at equal iterations completed, the grid-aware plan's total
// carbon is strictly below both signal-blind baselines.
func TestGridComparisonOnBundledTrace(t *testing.T) {
	sys, err := BuildSystem(WorkloadConfig{
		Display: "gpt3-1.3b", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 4,
	}, gpu.A100PCIe, Quick)
	if err != nil {
		t.Fatal(err)
	}
	lt := sys.Frontier.Table()
	sig := grid.Diurnal24h()
	// 55% utilization at T*: enough slack to shift around the evening
	// peak, tight enough that the planner must run most of the day.
	target := 0.55 * sig.Horizon() / lt.TStar()

	strategies, err := GridComparison(lt, sig, target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(strategies) != 4 {
		t.Fatalf("got %d strategies", len(strategies))
	}
	byName := map[string]*grid.Plan{}
	for _, st := range strategies {
		if !st.Plan.Feasible {
			t.Fatalf("%s infeasible", st.Name)
		}
		if d := st.Plan.Iterations - target; d < -1e-6*target || d > 1e-6*target {
			t.Fatalf("%s completes %.1f iterations, want %.1f", st.Name, st.Plan.Iterations, target)
		}
		byName[st.Name] = st.Plan
	}
	aware := byName["grid-aware (carbon)"]
	if !(aware.CarbonG < byName["always-Tmin"].CarbonG) {
		t.Fatalf("grid-aware carbon %.0f g not strictly below always-Tmin %.0f g",
			aware.CarbonG, byName["always-Tmin"].CarbonG)
	}
	if !(aware.CarbonG < byName["static min-energy"].CarbonG) {
		t.Fatalf("grid-aware carbon %.0f g not strictly below static min-energy %.0f g",
			aware.CarbonG, byName["static min-energy"].CarbonG)
	}
	if cost := byName["grid-aware (cost)"]; cost.CostUSD > aware.CostUSD+1e-9 {
		t.Fatalf("cost-objective plan costs %.4f$, more than the carbon plan %.4f$",
			cost.CostUSD, aware.CostUSD)
	}

	// The tables render every strategy and the per-interval plan.
	var buf bytes.Buffer
	if err := GridComparisonTable(sig, strategies).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"always-Tmin", "static min-energy", "grid-aware (carbon)", "Carbon vs fast"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := GridPlanTable(lt, aware).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "idle") {
		t.Fatalf("plan table should show idle hours:\n%s", buf.String())
	}
}
