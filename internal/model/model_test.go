package model

import (
	"strings"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog has %d models, want 16 (paper Table 1 + 1.3B/13B variants)", len(cat))
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if m == nil {
			t.Fatal("nil model in catalog")
		}
		if seen[m.Name] {
			t.Fatalf("duplicate model %s", m.Name)
		}
		seen[m.Name] = true
	}
}

// TestLayerCounts pins the partitionable-unit counts to paper Table 7:
// each transformer model has its layer count plus one head unit;
// Wide-ResNet has stem + bottlenecks + head.
func TestLayerCounts(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"gpt3-1.3b", 25},
		{"gpt3-2.7b", 33},
		{"gpt3-6.7b", 33},
		{"gpt3-13b", 41},
		{"gpt3-175b", 97},
		{"bloom-3b", 31},
		{"bloom-7b", 31},
		{"bloom-176b", 71},
		{"bert-0.1b", 13},
		{"bert-0.3b", 25},
		{"bert-1.3b", 25},
		{"t5-0.2b", 25},
		{"t5-0.7b", 49},
		{"t5-3b", 49},
		{"wide-resnet50", 18},
		{"wide-resnet101", 35},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Layers) != c.want {
			t.Errorf("%s: %d layers, want %d", c.name, len(m.Layers), c.want)
		}
	}
}

func TestParamCountsApproximate(t *testing.T) {
	// Parameter counts should land within 30% of the nominal size label
	// (labels are approximate in the papers too).
	cases := []struct {
		name   string
		approx float64 // billions
	}{
		{"gpt3-1.3b", 1.3},
		{"gpt3-2.7b", 2.7},
		{"gpt3-6.7b", 6.7},
		{"gpt3-13b", 13},
		{"gpt3-175b", 175},
		{"bloom-176b", 176},
		{"bert-1.3b", 1.3},
		{"wide-resnet101", 1.5},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.Params()) / 1e9
		if got < c.approx*0.7 || got > c.approx*1.3 {
			t.Errorf("%s: %.2fB params, want ~%.1fB", c.name, got, c.approx)
		}
	}
}

func TestPositiveCosts(t *testing.T) {
	for _, m := range Catalog() {
		for _, l := range m.Layers {
			if l.FwdCost <= 0 {
				t.Errorf("%s/%s: non-positive cost %v", m.Name, l.Name, l.FwdCost)
			}
		}
		if m.BwdFactor < 1 {
			t.Errorf("%s: BwdFactor %v < 1", m.Name, m.BwdFactor)
		}
	}
}

func TestHeadIsFinalLayer(t *testing.T) {
	for _, m := range Catalog() {
		last := m.Layers[len(m.Layers)-1].Name
		if last != "lm-head" && last != "fc" {
			t.Errorf("%s: final layer is %q, want a head", m.Name, last)
		}
	}
}

func TestT5DecoderHeavierThanEncoder(t *testing.T) {
	// Paper Appendix B.1: T5 decoder layers have an extra cross-attention
	// and are computationally heavier.
	m, err := T5("3b")
	if err != nil {
		t.Fatal(err)
	}
	var enc, dec float64
	for _, l := range m.Layers {
		switch {
		case strings.HasPrefix(l.Name, "encoder"):
			enc = l.FwdCost
		case strings.HasPrefix(l.Name, "decoder"):
			dec = l.FwdCost
		}
	}
	if dec <= enc {
		t.Fatalf("decoder cost %v <= encoder cost %v", dec, enc)
	}
	if r := dec / enc; r < 1.2 || r > 1.6 {
		t.Errorf("decoder/encoder ratio %v outside plausible [1.2, 1.6]", r)
	}
}

func TestBloomHeadLarge(t *testing.T) {
	// Bloom's 251k vocabulary makes its head far heavier than GPT-3's
	// relative to a transformer layer (Appendix B.1).
	bl, err := Bloom("3b")
	if err != nil {
		t.Fatal(err)
	}
	gp, err := GPT3("2.7b")
	if err != nil {
		t.Fatal(err)
	}
	rel := func(m *Model) float64 {
		head := m.Layers[len(m.Layers)-1].FwdCost
		return head / m.Layers[0].FwdCost
	}
	if rel(bl) <= rel(gp) {
		t.Errorf("bloom head/layer %.2f should exceed gpt-3's %.2f", rel(bl), rel(gp))
	}
	if r := rel(bl); r < 2 || r > 4 {
		t.Errorf("bloom-3b head is %.2f layer units; calibration targets [2, 4] (Table 7)", r)
	}
}

func TestStageCostsValidation(t *testing.T) {
	m, err := GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.StageCosts([]int{0, 5, 25}); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	for _, bad := range [][]int{
		{0, 25},        // fine actually: one stage
		{1, 5, 25},     // does not start at 0
		{0, 5, 24},     // does not end at L
		{0, 5, 5, 25},  // empty stage
		{0, 25, 5, 25}, // decreasing
	} {
		_, err := m.StageCosts(bad)
		valid := bad[0] == 0 && bad[len(bad)-1] == len(m.Layers)
		if valid {
			for i := 1; i < len(bad); i++ {
				if bad[i] <= bad[i-1] {
					valid = false
				}
			}
		}
		if valid && err != nil {
			t.Errorf("partition %v rejected: %v", bad, err)
		}
		if !valid && err == nil {
			t.Errorf("partition %v accepted", bad)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("llama-70b"); err == nil {
		t.Error("ByName should fail for unknown model")
	}
	if _, err := GPT3("4b"); err == nil {
		t.Error("GPT3(4b) should fail")
	}
	if _, err := Bloom("1b"); err == nil {
		t.Error("Bloom(1b) should fail")
	}
	if _, err := BERT("9b"); err == nil {
		t.Error("BERT(9b) should fail")
	}
	if _, err := T5("11b"); err == nil {
		t.Error("T5(11b) should fail")
	}
	if _, err := WideResNet("152"); err == nil {
		t.Error("WideResNet(152) should fail")
	}
}

func TestNamesSorted(t *testing.T) {
	ns := Names()
	if len(ns) != 16 {
		t.Fatalf("Names() returned %d entries", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] < ns[i-1] {
			t.Fatalf("Names() not sorted at %d: %s < %s", i, ns[i], ns[i-1])
		}
	}
}
