package plan

import (
	"math"
	"testing"
)

func TestDecomposeSpanIdentities(t *testing.T) {
	in := SpanInputs{
		Realized:   Account{EnergyJ: 1.8e6, CarbonG: 250, CostUSD: 0.1},
		Iterations: 60,
		FloorJ:     1.5e6,
		TminJ:      1.7e6,
		MigrationJ: 0.05e6,
		MeanGPerJ:  1.4e-4,
		PredC:      240,
		PredRealC:  251,
	}
	b := DecomposeSpan(in)
	if !b.Conserved(0) {
		t.Fatalf("residual-as-difference decomposition must conserve exactly: %+v", b)
	}
	if got := b.FloorJ + b.MigrationJ + b.ResidualJ; got != b.EnergyJ {
		t.Fatalf("energy identity: %v != %v", got, b.EnergyJ)
	}
	if got := b.FloorC + b.MigrationC + b.ResidualC; got != b.CarbonG {
		t.Fatalf("carbon identity: %v != %v", got, b.CarbonG)
	}
	if got := b.TminJ + b.MigrationJ - b.EnergyJ; got != b.RemovedJ {
		t.Fatalf("removed identity: %v != %v", got, b.RemovedJ)
	}
	if b.DriftC != in.PredRealC-in.PredC {
		t.Fatalf("drift = %v, want %v", b.DriftC, in.PredRealC-in.PredC)
	}
	// Carbon splits at the span's mean realized intensity.
	r := in.Realized.CarbonG / in.Realized.EnergyJ
	if math.Abs(b.FloorC-in.FloorJ*r) > 1e-12 {
		t.Fatalf("FloorC = %v, want %v", b.FloorC, in.FloorJ*r)
	}
	if math.Abs(b.TemporalSavedC-(in.FloorJ*in.MeanGPerJ-b.FloorC)) > 1e-12 {
		t.Fatalf("TemporalSavedC = %v", b.TemporalSavedC)
	}
}

func TestDecomposeSpanZeroEnergy(t *testing.T) {
	b := DecomposeSpan(SpanInputs{Realized: Account{EnergyJ: 0, CarbonG: 0}})
	if !b.Conserved(0) {
		t.Fatalf("zero span must conserve: %+v", b)
	}
	if b.FloorC != 0 || b.MigrationC != 0 || b.ResidualC != 0 {
		t.Fatalf("zero-energy span must not invent carbon: %+v", b)
	}
}

func TestDecomposeSpanMigrationEntry(t *testing.T) {
	// A migration entry: pure overhead, zero work, m charged as both
	// realized and migration energy.
	m := 2.4e5
	b := DecomposeSpan(SpanInputs{
		Realized:   Account{EnergyJ: m, CarbonG: 30, CostUSD: 0.01},
		MigrationJ: m,
		MeanGPerJ:  1.2e-4,
	})
	if !b.Conserved(0) {
		t.Fatalf("migration entry must conserve: %+v", b)
	}
	if b.FloorJ != 0 || b.ResidualJ != 0 || b.RemovedJ != 0 {
		t.Fatalf("migration entry must attribute everything to migration: %+v", b)
	}
	if b.MigrationC != b.CarbonG {
		t.Fatalf("migration carbon = %v, want all of %v", b.MigrationC, b.CarbonG)
	}
}

func TestAccumulateConserves(t *testing.T) {
	spans := []BloatSpan{
		DecomposeSpan(SpanInputs{
			Realized: Account{EnergyJ: 1e6, CarbonG: 100, CostUSD: 0.05},
			FloorJ:   0.8e6, TminJ: 0.95e6, Iterations: 10, MeanGPerJ: 9e-5,
			PredC: 95, PredRealC: 101,
		}),
		DecomposeSpan(SpanInputs{
			Realized: Account{EnergyJ: 2e6, CarbonG: 180, CostUSD: 0.08},
			FloorJ:   1.7e6, TminJ: 1.9e6, MigrationJ: 0.1e6, Iterations: 20,
			MeanGPerJ: 9e-5,
		}),
		DecomposeSpan(SpanInputs{
			Realized:   Account{EnergyJ: 5e5, CarbonG: 20, CostUSD: 0.01},
			MigrationJ: 5e5, MeanGPerJ: 9e-5,
		}),
	}
	var total BloatSpan
	for _, s := range spans {
		total.Accumulate(s)
	}
	if !total.Conserved(1e-12) {
		t.Fatalf("sum of conserving spans must conserve: %+v", total)
	}
	wantE := spans[0].EnergyJ + spans[1].EnergyJ + spans[2].EnergyJ
	if total.EnergyJ != wantE {
		t.Fatalf("EnergyJ = %v, want %v", total.EnergyJ, wantE)
	}
	if total.Iterations != 30 {
		t.Fatalf("Iterations = %v, want 30", total.Iterations)
	}
}
