package forecast

import (
	"math"
	"testing"

	"perseus/internal/grid"
	"perseus/internal/region"
)

// coarsePair is the bundled multi-region MPC scenario: the
// PhaseShiftedPair truth traces coarsened to 6 four-hour cells each,
// keeping every re-plan's joint placement search tractable.
func coarsePair() []region.Region {
	pair := region.PhaseShiftedPair(0)
	for i := range pair {
		pair[i].Signal = Coarsen(pair[i].Signal, 6)
	}
	return pair
}

func regionTestSetup() ([]region.Region, []region.Job, RegionOptions) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	pair := coarsePair()
	jobs := []region.Job{{
		ID: "train", Table: lt,
		Target: 0.5 * pair[0].Signal.Horizon() / lt.TStar(),
	}}
	opts := RegionOptions{
		Objective: grid.ObjectiveCarbon,
		Migration: region.MigrationCost{DowntimeS: 600, EnergyJ: 5e6},
	}
	return pair, jobs, opts
}

func TestRegionOracleChasesValleys(t *testing.T) {
	pair, jobs, opts := regionTestSetup()
	oracle, err := OracleRegions(pair, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Feasible {
		t.Fatal("oracle infeasible")
	}
	if oracle.Plans != 1 {
		t.Fatalf("oracle plans %d, want 1", oracle.Plans)
	}
	// Perfect foresight on the phase-shifted pair: predicted equals
	// realized.
	if math.Abs(oracle.PredCarbonG-oracle.CarbonG) > 1e-6*(1+oracle.CarbonG) {
		t.Fatalf("oracle predicted %v != realized %v", oracle.PredCarbonG, oracle.CarbonG)
	}
}

func TestRegionMPCUnderRevisions(t *testing.T) {
	pair, jobs, opts := regionTestSetup()
	oracle, err := OracleRegions(pair, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) []ForecastRegion {
		regs := make([]ForecastRegion, len(pair))
		for i, r := range pair {
			regs[i] = ForecastRegion{Region: r, Provider: &Revisions{
				Truth: r.Signal, Seed: seed + int64(i)*100, Sigma: 0.15,
			}}
		}
		return regs
	}
	// Unlike the single-signal controller, per-seed dominance over
	// plan-once is not guaranteed here: migration is a switching cost,
	// so a re-planner can rationally decline a move a lucky plan-once
	// committed to early. The bundled claim is aggregate: across the
	// bundled seeds MPC realizes strictly less carbon, and each run
	// stays within a bounded regret of the perfect-foresight joint plan
	// (the outer placement search carries its own documented 10% bound
	// on top of forecast-error regret).
	var sumOnce, sumMPC float64
	for seed := int64(1); seed <= 6; seed++ {
		regs := mk(seed)
		once, err := PlanOnceRegions(regs, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		mpc, err := ReplanRegions(regs, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !once.Feasible || !mpc.Feasible {
			t.Fatalf("seed %d: plan-once feasible=%v, mpc feasible=%v", seed, once.Feasible, mpc.Feasible)
		}
		// Equal iterations completed.
		if math.Abs(once.Jobs[0].Iterations-mpc.Jobs[0].Iterations) > 1e-6*(1+jobs[0].Target) {
			t.Fatalf("seed %d: iterations differ: %v vs %v", seed, once.Jobs[0].Iterations, mpc.Jobs[0].Iterations)
		}
		if mpc.CarbonG > 1.25*oracle.CarbonG {
			t.Fatalf("seed %d: regret too large: mpc %v vs oracle %v", seed, mpc.CarbonG, oracle.CarbonG)
		}
		sumOnce += once.CarbonG
		sumMPC += mpc.CarbonG
		// Determinism.
		again, err := ReplanRegions(regs, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.CarbonG != mpc.CarbonG || again.Plans != mpc.Plans {
			t.Fatalf("seed %d: replay differs", seed)
		}
	}
	if !(sumMPC < sumOnce) {
		t.Fatalf("MPC aggregate carbon %v not strictly below plan-once %v", sumMPC, sumOnce)
	}
}

// TestRegionMPCHysteresisMargin pins the switching-cost-aware rule the
// ROADMAP asked for: the raw rolling-horizon controller hesitates — at
// each re-plan the shrinking remaining window understates a move's
// value, so it can decline a migration a lucky plan-once committed to
// early and lose to it per-seed (up to ~7% on the bundled pair). With
// the hysteresis margin scaling the re-planner's view of migration
// cost (0.5: savings need only clear half the real cost, counteracting
// the myopia) plus the robust 0.7-quantile, every bundled seed is at
// parity with plan-once (within 0.5%) or strictly better, and the
// aggregate is strictly better — while execution still charges the
// real migration cost and idles the real transfer window.
func TestRegionMPCHysteresisMargin(t *testing.T) {
	pair, jobs, opts := regionTestSetup()
	mk := func(seed int64) []ForecastRegion {
		regs := make([]ForecastRegion, len(pair))
		for i, r := range pair {
			regs[i] = ForecastRegion{Region: r, Provider: &Revisions{
				Truth: r.Signal, Seed: seed + int64(i)*100, Sigma: 0.15,
			}}
		}
		return regs
	}
	damped := opts
	damped.HysteresisMargin = 0.5
	damped.PlanQuantile = 0.7

	var sumOnce, sumMPC float64
	hesitated := false
	for seed := int64(1); seed <= 6; seed++ {
		regs := mk(seed)
		once, err := PlanOnceRegions(regs, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		mpc, err := ReplanRegions(regs, jobs, damped)
		if err != nil {
			t.Fatal(err)
		}
		if !once.Feasible || !mpc.Feasible {
			t.Fatalf("seed %d: plan-once feasible=%v, damped mpc feasible=%v", seed, once.Feasible, mpc.Feasible)
		}
		// Equal iterations completed: the margin is a planning-time
		// view only, execution still pays real downtime and energy.
		if math.Abs(once.Jobs[0].Iterations-mpc.Jobs[0].Iterations) > 1e-6*(1+jobs[0].Target) {
			t.Fatalf("seed %d: iterations differ: %v vs %v", seed, once.Jobs[0].Iterations, mpc.Jobs[0].Iterations)
		}
		// Per-seed parity or better.
		if mpc.CarbonG > once.CarbonG*1.005 {
			t.Fatalf("seed %d: damped MPC %v g loses to plan-once %v g beyond the parity band",
				seed, mpc.CarbonG, once.CarbonG)
		}
		sumOnce += once.CarbonG
		sumMPC += mpc.CarbonG

		// Document the pathology the margin fixes: wherever the raw
		// controller declined every migration and realized more carbon,
		// the damped controller moved.
		raw, err := ReplanRegions(regs, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if raw.Jobs[0].Migrations == 0 && mpc.Jobs[0].Migrations > 0 && raw.CarbonG > mpc.CarbonG {
			hesitated = true
		}
	}
	if !(sumMPC < sumOnce) {
		t.Fatalf("damped MPC aggregate %v not strictly below plan-once %v", sumMPC, sumOnce)
	}
	if !hesitated {
		t.Fatal("no seed exhibited the hesitation the margin exists to fix — the scenario no longer exercises it")
	}
}

func TestRegionMPCChargesMigrationFromOrigin(t *testing.T) {
	pair, jobs, opts := regionTestSetup()
	// Start the job in the region whose valley comes second: a planner
	// that moves it must be charged for the move.
	jobs[0].Origin = pair[1].Name
	regs := make([]ForecastRegion, len(pair))
	for i, r := range pair {
		regs[i] = ForecastRegion{Region: r, Provider: &Perfect{Truth: r.Signal}}
	}
	out, err := ReplanRegions(regs, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("infeasible")
	}
	moved := false
	for _, p := range out.Jobs[0].Path {
		if p != "" && p != pair[1].Name {
			moved = true
		}
	}
	if moved && out.Jobs[0].Migrations == 0 {
		t.Fatal("job left its origin region without a charged migration")
	}
	if out.Jobs[0].Migrations > 0 && out.Jobs[0].TransferJ <= 0 {
		t.Fatalf("migrations %d charged no transfer energy", out.Jobs[0].Migrations)
	}
}

// TestRegionMPCDowntimeSurvivesReplan pins the carry-over rule: a
// checkpoint transfer longer than the decision interval keeps the job
// paused across the re-plan boundary — the fresh plan only knows the
// new Origin, so execution must keep idling through the residue.
func TestRegionMPCDowntimeSurvivesReplan(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	flat := func(name string, carbon float64) *grid.Signal {
		s := &grid.Signal{Name: name}
		for k := 0; k < 6; k++ {
			s.Intervals = append(s.Intervals, grid.Interval{
				StartS: float64(k) * 300, EndS: float64(k+1) * 300,
				CarbonGPerKWh: carbon, PriceUSDPerKWh: 0.1,
			})
		}
		return s
	}
	regions := []region.Region{
		// The origin region's cap excludes every point: the job must
		// migrate to make any progress at all.
		{Name: "dead", Signal: flat("dead", 500), CapW: 1e-9},
		{Name: "live", Signal: flat("live", 100)},
	}
	regs := make([]ForecastRegion, len(regions))
	for i, r := range regions {
		regs[i] = ForecastRegion{Region: r, Provider: &Perfect{Truth: r.Signal}}
	}
	horizon := 1800.0
	downtime := 600.0 // spans two 300 s decision intervals
	jobs := []region.Job{{
		ID: "train", Table: lt, Origin: "dead",
		// More work than fits after the transfer: honest execution must
		// come up short.
		Target: 1600,
	}}
	out, err := ReplanRegions(regs, jobs, RegionOptions{
		Objective: grid.ObjectiveCarbon,
		Migration: region.MigrationCost{DowntimeS: downtime, EnergyJ: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Jobs[0].Migrations < 1 {
		t.Fatal("job never escaped the dead region")
	}
	// Physical bound: at most (horizon − downtime)/Tmin iterations can
	// really run; executing during the transfer residue would exceed it.
	bound := (horizon - downtime) / lt.Tmin()
	if out.Jobs[0].Iterations > bound+1e-6*bound {
		t.Fatalf("realized %v iterations > physical bound %v: job worked during its checkpoint transfer",
			out.Jobs[0].Iterations, bound)
	}
	if out.Feasible {
		t.Fatal("target beyond the post-transfer capacity cannot be feasible")
	}
}

// TestRegionMPCWarmStartSeeds pins the multi-region warm path: with
// perfect foresight every re-plan sees unchanged forecasts, so each
// tick after the first seeds descent from the previous tick's
// placement — counted in WarmStarts — while noisy revisions never take
// the warm path.
func TestRegionMPCWarmStartSeeds(t *testing.T) {
	pair, jobs, opts := regionTestSetup()
	regs := make([]ForecastRegion, len(pair))
	for i, r := range pair {
		regs[i] = ForecastRegion{Region: r, Provider: &Perfect{Truth: r.Signal}}
	}
	out, err := ReplanRegions(regs, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("perfect-foresight region MPC infeasible")
	}
	if out.WarmStarts != out.Plans-1 {
		t.Fatalf("warm starts %d, want every re-plan after the first (%d)", out.WarmStarts, out.Plans-1)
	}
	// Replay determinism with seeds in play.
	again, err := ReplanRegions(regs, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.CarbonG != out.CarbonG || again.WarmStarts != out.WarmStarts {
		t.Fatal("seeded replay differs")
	}

	// Noisy revisions change the window every tick: never warm.
	for i, r := range pair {
		regs[i] = ForecastRegion{Region: r, Provider: &Revisions{
			Truth: r.Signal, Seed: 1 + int64(i)*100, Sigma: 0.15,
		}}
	}
	noisy, err := ReplanRegions(regs, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.WarmStarts != 0 {
		t.Fatalf("noisy revisions took %d warm starts", noisy.WarmStarts)
	}
}
