// Fleet: share a facility power envelope across two training jobs.
// Each job's characterized frontier gives the marginal cost of slowing
// it down; the fleet allocator descends the merged frontiers so the cap
// is met at minimum total throughput loss — extrinsic energy bloat,
// generalized from one straggling pipeline to a whole datacenter.
package main

import (
	"fmt"
	"log"

	"perseus/internal/experiments"
	"perseus/internal/fleet"
	"perseus/internal/gpu"
)

func main() {
	cfgs := []experiments.WorkloadConfig{
		{Display: "gpt3-1.3b", Model: "gpt3-1.3b", Stages: 4, MicrobatchSize: 4, Microbatches: 16},
		{Display: "bert-1.3b", Model: "bert-1.3b", Stages: 4, MicrobatchSize: 8, Microbatches: 16},
	}
	var jobs []fleet.Job
	for _, cfg := range cfgs {
		sys, err := experiments.BuildSystem(cfg, gpu.A100PCIe, experiments.Quick)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, fleet.Job{ID: cfg.Display, Table: sys.Frontier.Table()})
	}

	uncapped := fleet.Allocate(jobs, 0)
	fmt.Printf("uncapped: %.0f W, both jobs at Tmin\n\n", uncapped.PowerW)

	fmt.Println("cap (W)  loss (%)  per-job iteration times (s)")
	for _, frac := range []float64{1.0, 0.95, 0.9, 0.85, 0.8} {
		capW := frac * uncapped.PowerW
		alloc := fleet.Allocate(jobs, capW)
		fmt.Printf("%7.0f  %8.2f ", capW, 100*alloc.Loss)
		for _, ja := range alloc.Jobs {
			fmt.Printf("  %s=%.3f", ja.ID, ja.Time)
		}
		if !alloc.Feasible {
			fmt.Print("  (infeasible: fleet at minimum power)")
		}
		fmt.Println()
	}

	// A straggler on one job raises its free floor: the other job gets
	// the released power back.
	capW := 0.9 * uncapped.PowerW
	if err := fleetWithStraggler(jobs, capW); err != nil {
		log.Fatal(err)
	}
}

func fleetWithStraggler(jobs []fleet.Job, capW float64) error {
	fmt.Printf("\nwith a 1.3x straggler on %s under a %.0f W cap:\n", jobs[0].ID, capW)
	jobs[0].TPrime = 1.3 * jobs[0].Table.Tmin()
	alloc := fleet.Allocate(jobs, capW)
	for _, ja := range alloc.Jobs {
		fmt.Printf("  %s: %.3fs (floor %.3fs, %.0f W)\n", ja.ID, ja.Time, ja.FloorTime, ja.PowerW)
	}
	fmt.Printf("  fleet loss %.2f%% — the straggler's freed power spares the healthy job\n", 100*alloc.Loss)
	return nil
}
