// Package forecast closes the gap between internal/grid's
// perfect-foresight planning and what a real grid operator actually
// sees: *predicted* carbon-intensity and price curves that revise as
// the horizon approaches. internal/grid and internal/region plan as if
// the trace were known exactly; this package supplies (1) forecast
// models — persistence, seasonal-naive, and an exponential-smoothing /
// AR(1) hybrid — that emit point forecasts plus residual-quantile
// uncertainty bands from revealed history, (2) a seeded noisy-revision
// provider that simulates an external forecast feed over a known truth
// trace, and (3) a rolling-horizon MPC controller that re-plans at
// every interval boundary against the latest forecast with the
// already-executed prefix frozen, optionally against a pessimistic
// quantile (robust mode). The controller's realized outcome is always
// accrued against the truth trace, never the forecast, so regret
// against the perfect-foresight oracle and against plan-once-on-the-
// first-forecast is measured exactly.
package forecast

import (
	"fmt"
	"math"

	"perseus/internal/grid"
)

// Band bounds one interval's forecast value at the forecast's quantile
// level: [Lo, Hi] around the point forecast. Revealed intervals carry
// Lo == Hi == the actual value.
type Band struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Forecast is one issued forecast of a grid signal: the point-forecast
// signal over [0, horizon) — past intervals revealed exactly, future
// ones predicted — plus per-interval uncertainty bands for carbon and
// price at the Level quantile (e.g. 0.9 means Hi is the 90th
// percentile and Lo the 10th).
type Forecast struct {
	// IssuedS is the decision time the forecast was issued at, in
	// signal seconds; intervals starting at or before it are revealed.
	IssuedS float64 `json:"issued_s"`

	// Level is the band quantile level in (0.5, 1).
	Level float64 `json:"level"`

	// Signal is the point forecast (q = 0.5).
	Signal *grid.Signal `json:"signal"`

	// Carbon and Price band the corresponding interval values; both are
	// indexed like Signal.Intervals.
	Carbon []Band `json:"carbon"`
	Price  []Band `json:"price"`
}

// At returns the forecast signal at quantile q: 0.5 (or 0, the zero
// value) is the point forecast, Level maps to the Hi band and
// 1 − Level to Lo, with linear interpolation between and clamping
// beyond. Planning carbon against q > 0.5 is pessimistic — distant
// hours that merely *look* clean are discounted by their uncertainty —
// which is what the MPC controller's robust mode uses.
func (f *Forecast) At(q float64) *grid.Signal {
	if q == 0 {
		q = 0.5
	}
	out := &grid.Signal{Name: f.Signal.Name}
	frac := 0.0
	if f.Level > 0.5 {
		frac = (q - 0.5) / (f.Level - 0.5)
	}
	if frac > 1 {
		frac = 1
	}
	if frac < -1 {
		frac = -1
	}
	for i, iv := range f.Signal.Intervals {
		if i < len(f.Carbon) {
			iv.CarbonGPerKWh = lerpBand(iv.CarbonGPerKWh, f.Carbon[i], frac)
		}
		if i < len(f.Price) {
			iv.PriceUSDPerKWh = lerpBand(iv.PriceUSDPerKWh, f.Price[i], frac)
		}
		out.Intervals = append(out.Intervals, iv)
	}
	return out
}

// lerpBand interpolates from the point value toward Hi (frac > 0) or
// Lo (frac < 0), never below zero.
func lerpBand(point float64, b Band, frac float64) float64 {
	v := point
	if frac > 0 {
		v = point + frac*(b.Hi-point)
	} else if frac < 0 {
		v = point + frac*(point-b.Lo)
	}
	return math.Max(0, v)
}

// Validate checks the forecast's structural invariants.
func (f *Forecast) Validate() error {
	if f.Signal == nil {
		return fmt.Errorf("forecast: forecast has no signal")
	}
	if err := f.Signal.Validate(); err != nil {
		return err
	}
	if !(f.Level > 0.5) || f.Level >= 1 {
		return fmt.Errorf("forecast: band level must be in (0.5, 1), got %v", f.Level)
	}
	n := len(f.Signal.Intervals)
	if len(f.Carbon) != n || len(f.Price) != n {
		return fmt.Errorf("forecast: %d intervals but %d carbon / %d price bands",
			n, len(f.Carbon), len(f.Price))
	}
	return nil
}

// Provider supplies forecasts issued at arbitrary decision times. The
// contract consumed by the MPC controller: successive calls with
// non-decreasing t describe the same underlying future, revealed
// further and (typically) predicted better.
type Provider interface {
	Name() string

	// At returns the forecast issued at signal time t, covering
	// [0, horizon) with everything starting at or before t revealed.
	At(t float64) (*Forecast, error)
}

// Perfect is the perfect-foresight provider: every forecast is the
// truth itself with zero-width bands — the oracle the MPC controller's
// regret is measured against.
type Perfect struct {
	// Truth is the actual trace, repeated cyclically.
	Truth *grid.Signal

	// HorizonS is the forecast coverage in seconds; 0 means the truth
	// horizon.
	HorizonS float64
}

// Name implements Provider.
func (p *Perfect) Name() string { return "oracle" }

// At implements Provider.
func (p *Perfect) At(t float64) (*Forecast, error) {
	if err := checkIssueTime(p.Truth, t); err != nil {
		return nil, err
	}
	sig := ExtendCyclic(p.Truth, horizonOr(p.HorizonS, p.Truth))
	f := &Forecast{IssuedS: t, Level: 0.9, Signal: sig}
	for _, iv := range sig.Intervals {
		f.Carbon = append(f.Carbon, Band{Lo: iv.CarbonGPerKWh, Hi: iv.CarbonGPerKWh})
		f.Price = append(f.Price, Band{Lo: iv.PriceUSDPerKWh, Hi: iv.PriceUSDPerKWh})
	}
	return f, nil
}

// horizonOr resolves a forecast horizon: h when positive, the signal's
// own horizon otherwise.
func horizonOr(h float64, sig *grid.Signal) float64 {
	if h > 0 {
		return h
	}
	return sig.Horizon()
}

// checkIssueTime validates the shared provider preconditions.
func checkIssueTime(truth *grid.Signal, t float64) error {
	if truth == nil || truth.Horizon() <= 0 {
		return fmt.Errorf("forecast: provider needs a non-empty truth signal")
	}
	if err := truth.Validate(); err != nil {
		return err
	}
	if math.IsNaN(t) || t < 0 {
		return fmt.Errorf("forecast: issue time must be non-negative, got %v", t)
	}
	return nil
}

// ExtendCyclic materializes a signal's cyclic repetition as concrete
// intervals out to upTo seconds (the straddling interval cut there), so
// planners that need an explicit trace can consume a horizon beyond the
// signal's own.
func ExtendCyclic(sig *grid.Signal, upTo float64) *grid.Signal {
	out := &grid.Signal{Name: sig.Name}
	h := sig.Horizon()
	if h <= 0 || upTo <= 0 {
		return out
	}
	for base := 0.0; base < upTo; base += h {
		for _, iv := range sig.Intervals {
			iv.StartS += base
			iv.EndS += base
			if iv.StartS >= upTo {
				break
			}
			if iv.EndS > upTo {
				iv.EndS = upTo
			}
			out.Intervals = append(out.Intervals, iv)
		}
	}
	return out
}

// Window returns the sub-signal covering [from, to) shifted to start at
// time 0 — the remaining planning problem a rolling-horizon controller
// hands to grid.Optimize at decision time `from`. The straddling first
// and last intervals are cut at the window edges.
func Window(sig *grid.Signal, from, to float64) *grid.Signal {
	out := &grid.Signal{Name: sig.Name}
	for _, iv := range sig.Intervals {
		if iv.EndS <= from || iv.StartS >= to {
			continue
		}
		if iv.StartS < from {
			iv.StartS = from
		}
		if iv.EndS > to {
			iv.EndS = to
		}
		iv.StartS -= from
		iv.EndS -= from
		out.Intervals = append(out.Intervals, iv)
	}
	return out
}

// Coarsen merges consecutive intervals into n equal-duration steps,
// each carrying the duration-weighted mean of its constituents' rates
// and the tightest cap in force — a coarse view of a fine trace, used
// to keep multi-region rolling-horizon experiments tractable.
func Coarsen(sig *grid.Signal, n int) *grid.Signal {
	h := sig.Horizon()
	if n <= 0 || h <= 0 {
		return &grid.Signal{Name: sig.Name}
	}
	out := &grid.Signal{Name: sig.Name}
	step := h / float64(n)
	for k := 0; k < n; k++ {
		start, end := float64(k)*step, float64(k+1)*step
		var carbon, price, capW, dur float64
		for t := start; t < end-1e-9; {
			iv, ok := sig.At(t)
			if !ok {
				break
			}
			sub := math.Min(iv.EndS, end) - t
			carbon += iv.CarbonGPerKWh * sub
			price += iv.PriceUSDPerKWh * sub
			if iv.CapW > 0 && (capW == 0 || iv.CapW < capW) {
				capW = iv.CapW
			}
			dur += sub
			t += sub
		}
		if dur > 0 {
			carbon /= dur
			price /= dur
		}
		out.Intervals = append(out.Intervals, grid.Interval{
			StartS: start, EndS: end,
			CarbonGPerKWh: carbon, PriceUSDPerKWh: price, CapW: capW,
		})
	}
	return out
}
