package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/obs"
)

// serverObs bundles the server's observability surface: one metric
// registry and one event ring (internal/obs), plus the typed handles
// every resource module records into. All handles are registered once
// at construction, so hot paths never touch the registry map.
//
// The metric catalog (all names prefixed perseus_) is documented in
// README.md's Observability section; the golden exposition test and
// the CI smoke scrape both pin the core series.
type serverObs struct {
	reg     *obs.Registry
	ring    *obs.Ring
	started time.Time // real wall clock, for /healthz uptime

	// HTTP middleware.
	httpRequests *obs.CounterVec   // route, method, code
	httpLatency  *obs.HistogramVec // route
	httpInFlight *obs.Gauge

	// Plan cache (cache.go).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge

	// Controller runtime (controller.go).
	ticks       *obs.Counter
	tickDur     *obs.Histogram
	replans     *obs.Counter
	replanFails *obs.Counter

	// Job registry and deployment (jobs.go, store.go).
	jobsRegistered *obs.Counter
	characterized  *obs.CounterVec // outcome
	versionBumps   *obs.Counter

	// Long-poll schedule fetching (jobs.go).
	waiters *obs.Gauge
	wakeDur *obs.Histogram

	// Planning layers, via the obs.InstrumentPlanner decorator.
	planLatency *obs.HistogramVec // planner, objective
	planErrors  *obs.CounterVec   // planner

	// Per-job realized-minus-predicted carbon drift (store.go).
	driftG *obs.GaugeVec // job
}

func newServerObs() *serverObs {
	r := obs.NewRegistry()
	return &serverObs{
		reg:     r,
		ring:    obs.NewRing(0),
		started: time.Now(),

		httpRequests: r.CounterVec("perseus_http_requests_total",
			"HTTP requests served, by normalized route, method, and status code.",
			"route", "method", "code"),
		httpLatency: r.HistogramVec("perseus_http_request_duration_seconds",
			"HTTP request latency by normalized route.", nil, "route"),
		httpInFlight: r.Gauge("perseus_http_in_flight_requests",
			"HTTP requests currently being served."),

		cacheHits: r.Counter("perseus_plan_cache_hits_total",
			"Plan-cache lookups answered from a cached or in-flight solve."),
		cacheMisses: r.Counter("perseus_plan_cache_misses_total",
			"Plan-cache lookups that started a fresh solve."),
		cacheCoalesced: r.Counter("perseus_plan_cache_coalesced_total",
			"Plan-cache hits that waited on an in-flight solve (single-flight followers)."),
		cacheEvictions: r.Counter("perseus_plan_cache_evictions_total",
			"Plan-cache entries dropped by epoch invalidation or the size-cap flush."),
		cacheEntries: r.Gauge("perseus_plan_cache_entries",
			"Plan-cache entries currently resident."),

		ticks: r.Counter("perseus_controller_ticks_total",
			"Completed controller ticks (background loop and synchronous)."),
		tickDur: r.Histogram("perseus_controller_tick_duration_seconds",
			"Wall-clock duration of one controller tick across every managed job.", nil),
		replans: r.Counter("perseus_controller_replans_total",
			"Successful rolling-horizon re-plans (client replans, ManageJob, and controller ticks)."),
		replanFails: r.Counter("perseus_controller_replan_failures_total",
			"Rolling-horizon roll-forwards that failed (forecast issue or solve error)."),

		jobsRegistered: r.Counter("perseus_jobs_registered_total",
			"Training jobs registered."),
		characterized: r.CounterVec("perseus_characterizations_total",
			"Frontier characterizations finished, by outcome.", "outcome"),
		versionBumps: r.Counter("perseus_schedule_version_bumps_total",
			"Deployed-schedule version bumps across all jobs (each wakes that job's long-pollers)."),

		waiters: r.Gauge("perseus_longpoll_waiters",
			"Schedule long-poll requests currently parked on a version watch."),
		wakeDur: r.Histogram("perseus_longpoll_wake_seconds",
			"Time a schedule long-poller waited before a version bump woke it.", nil),

		planLatency: r.HistogramVec("perseus_planner_plan_duration_seconds",
			"Planning latency through the plan.Planner contract, by layer and objective.",
			nil, "planner", "objective"),
		planErrors: r.CounterVec("perseus_planner_plan_errors_total",
			"Failed Plan calls by layer.", "planner"),

		driftG: r.GaugeVec("perseus_job_carbon_drift_g",
			"Realized minus forecast-predicted carbon over the forecast-covered spans, per job.",
			"job"),
	}
}

// routePattern normalizes a request path to a bounded label set, so
// per-job and per-action paths cannot explode metric cardinality.
func routePattern(path string) string {
	switch path {
	case "/jobs", "/fleet/cap", "/fleet/status", "/grid/signal", "/grid/forecast",
		"/regions", "/regions/plan", "/controller",
		"/metrics", "/healthz", "/debug/events":
		return path
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	switch {
	case parts[0] == "jobs" && len(parts) == 3:
		switch parts[2] {
		case "profile", "schedule", "straggler", "frontier", "table",
			"allocation", "emissions", "rollout", "placement":
			return "/jobs/{id}/" + parts[2]
		}
	case parts[0] == "grid" && len(parts) == 3 && parts[1] == "plan":
		return "/grid/plan/{id}"
	case parts[0] == "grid" && len(parts) == 3 && parts[1] == "replan":
		return "/grid/replan/{id}"
	case parts[0] == "controller" && len(parts) == 2:
		switch parts[1] {
		case "jobs", "start", "stop", "tick":
			return "/controller/" + parts[1]
		}
	}
	return "other"
}

// statusRecorder captures the response status code for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// middleware instruments every endpoint: request count by
// (route, method, code), latency by route, and an in-flight gauge.
func (o *serverObs) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routePattern(r.URL.Path)
		o.httpInFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		o.httpInFlight.Add(-1)
		o.httpLatency.With(route).Observe(time.Since(start).Seconds())
		o.httpRequests.With(route, r.Method, strconv.Itoa(rec.code)).Inc()
	})
}

// HealthResponse is the GET /healthz liveness view.
type HealthResponse struct {
	Status            string  `json:"status"`
	UptimeS           float64 `json:"uptime_s"`
	Jobs              int     `json:"jobs"`
	Regions           int     `json:"regions"`
	SignalInstalled   bool    `json:"signal_installed"`
	ForecastInstalled bool    `json:"forecast_installed"`
	ControllerRunning bool    `json:"controller_running"`
}

// Health reports the server's liveness summary.
func (s *Server) Health() HealthResponse {
	s.st.mu.Lock()
	jobs := len(s.st.jobs)
	regions := len(s.st.regions)
	sig := s.st.signal != nil
	fc := s.st.fspec != nil
	s.st.mu.Unlock()
	s.ctrl.mu.Lock()
	running := s.ctrl.running
	s.ctrl.mu.Unlock()
	return HealthResponse{
		Status:            "ok",
		UptimeS:           time.Since(s.obs.started).Seconds(),
		Jobs:              jobs,
		Regions:           regions,
		SignalInstalled:   sig,
		ForecastInstalled: fc,
		ControllerRunning: running,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Health())
}

// handleMetrics serves the registry in Prometheus text exposition
// format (hand-rolled — the module has zero external dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// EventsResponse is the GET /debug/events view: the most recent
// structured events, oldest first.
type EventsResponse struct {
	Events []obs.Event `json:"events"`
}

// Events returns the most recent events (limit <= 0 returns the whole
// retained window).
func (s *Server) Events(limit int) EventsResponse {
	return EventsResponse{Events: s.obs.ring.Snapshot(limit)}
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n: "+v, http.StatusBadRequest)
			return
		}
		limit = n
	}
	resp := s.Events(limit)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// Metrics exposes the server's registry (test and embedding hook).
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }
