package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// randomSignal draws a small random signal with irregular interval
// lengths, optional caps, and full-precision float rates.
func randomSignal(rng *rand.Rand) *Signal {
	s := &Signal{Name: fmt.Sprintf("prop-%d", rng.Intn(1000))}
	t := 0.0
	n := 1 + rng.Intn(6)
	for k := 0; k < n; k++ {
		end := t + 60 + 7200*rng.Float64()
		iv := Interval{
			StartS:         t,
			EndS:           end,
			CarbonGPerKWh:  600 * rng.Float64(),
			PriceUSDPerKWh: 0.3 * rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			iv.CapW = 10000 * rng.Float64()
		}
		s.Intervals = append(s.Intervals, iv)
		t = end
	}
	return s
}

// naiveAccrue integrates the signal by brute-force sub-stepping, as an
// independent oracle for Accrue's closed-form interval walk.
func naiveAccrue(sig *Signal, t0, t1, powerW float64, steps int) (e, c, usd float64) {
	if t1 <= t0 {
		return 0, 0, 0
	}
	dt := (t1 - t0) / float64(steps)
	for i := 0; i < steps; i++ {
		mid := t0 + (float64(i)+0.5)*dt
		de := powerW * dt
		e += de
		if iv, ok := sig.AtCyclic(mid); ok {
			c += de / JoulesPerKWh * iv.CarbonGPerKWh
			usd += de / JoulesPerKWh * iv.PriceUSDPerKWh
		}
	}
	return e, c, usd
}

// TestAccrueProperties checks the cyclic integrator's algebraic
// properties on random signals and windows: additivity over a split
// point, exact periodicity (a window of n whole periods accrues
// exactly n times one period), shift invariance of whole-period
// windows, zero-length windows, and linearity in power.
func TestAccrueProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sig := randomSignal(rng)
		h := sig.Horizon()
		p := 100 + 5000*rng.Float64()

		// Additivity: [t0, t1) == [t0, tm) + [tm, t1), windows chosen to
		// wrap the horizon several times.
		t0 := rng.Float64() * 2 * h
		t1 := t0 + rng.Float64()*3*h
		tm := t0 + rng.Float64()*(t1-t0)
		e, c, usd := Accrue(sig, t0, t1, p)
		e1, c1, u1 := Accrue(sig, t0, tm, p)
		e2, c2, u2 := Accrue(sig, tm, t1, p)
		if math.Abs(e-(e1+e2)) > 1e-6*(1+e) ||
			math.Abs(c-(c1+c2)) > 1e-6*(1+c) ||
			math.Abs(usd-(u1+u2)) > 1e-9*(1+usd) {
			t.Fatalf("trial %d: accrual not additive at split %v: (%v,%v,%v) != (%v,%v,%v)+(%v,%v,%v)",
				trial, tm, e, c, usd, e1, c1, u1, e2, c2, u2)
		}

		// Periodicity: n whole periods == n × one period.
		n := 1 + rng.Intn(4)
		eN, cN, uN := Accrue(sig, 0, float64(n)*h, p)
		e1, c1, u1 = Accrue(sig, 0, h, p)
		if math.Abs(eN-float64(n)*e1) > 1e-6*(1+eN) ||
			math.Abs(cN-float64(n)*c1) > 1e-6*(1+cN) ||
			math.Abs(uN-float64(n)*u1) > 1e-9*(1+uN) {
			t.Fatalf("trial %d: %d periods != %d × one period", trial, n, n)
		}

		// Shift invariance: any whole-period window accrues the same as
		// [0, h).
		shift := rng.Float64() * 2 * h
		eS, cS, uS := Accrue(sig, shift, shift+h, p)
		if math.Abs(eS-e1) > 1e-6*(1+e1) || math.Abs(cS-c1) > 1e-6*(1+c1) || math.Abs(uS-u1) > 1e-9*(1+u1) {
			t.Fatalf("trial %d: whole-period window at %v differs from [0, h)", trial, shift)
		}

		// Zero-length and inverted windows accrue nothing.
		x := rng.Float64() * h
		if e, c, usd := Accrue(sig, x, x, p); e != 0 || c != 0 || usd != 0 {
			t.Fatalf("trial %d: zero-length window accrued (%v,%v,%v)", trial, e, c, usd)
		}
		if e, _, _ := Accrue(sig, x, x-1, p); e != 0 {
			t.Fatalf("trial %d: inverted window accrued energy", trial)
		}

		// Linearity in power.
		e2x, c2x, _ := Accrue(sig, t0, t1, 2*p)
		if math.Abs(e2x-2*e) > 1e-6*(1+e2x) || math.Abs(c2x-2*c) > 1e-6*(1+c2x) {
			t.Fatalf("trial %d: doubling power does not double accrual", trial)
		}

		// Against the brute-force oracle on a wrap-around window.
		if trial%20 == 0 {
			we, wc, wu := naiveAccrue(sig, t0, t1, p, 200000)
			if math.Abs(e-we) > 1e-3*(1+we) || math.Abs(c-wc) > 1e-3*(1+wc) || math.Abs(usd-wu) > 1e-3*(1+wu) {
				t.Fatalf("trial %d: closed form (%v,%v,%v) vs oracle (%v,%v,%v)", trial, e, c, usd, we, wc, wu)
			}
		}
	}
}

// writeCSV renders a signal in the ParseCSV column format with
// full-precision floats.
func writeCSV(s *Signal) string {
	var buf bytes.Buffer
	buf.WriteString("start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh,cap_w\n")
	for _, iv := range s.Intervals {
		for i, v := range []float64{iv.StartS, iv.EndS, iv.CarbonGPerKWh, iv.PriceUSDPerKWh, iv.CapW} {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestSignalParseRoundTrip checks that random signals survive both
// serialization paths bit-exactly: JSON encode → ParseJSON and CSV
// render → ParseCSV (shortest-round-trip float formatting).
func TestSignalParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		orig := randomSignal(rng)

		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(orig); err != nil {
			t.Fatal(err)
		}
		viaJSON, err := ParseJSON(&buf)
		if err != nil {
			t.Fatalf("trial %d: JSON round trip: %v", trial, err)
		}
		if viaJSON.Name != orig.Name {
			t.Fatalf("trial %d: JSON lost name", trial)
		}
		viaCSV, err := ParseCSV(bytes.NewReader([]byte(writeCSV(orig))))
		if err != nil {
			t.Fatalf("trial %d: CSV round trip: %v", trial, err)
		}
		for _, got := range []*Signal{viaJSON, viaCSV} {
			if len(got.Intervals) != len(orig.Intervals) {
				t.Fatalf("trial %d: %d intervals, want %d", trial, len(got.Intervals), len(orig.Intervals))
			}
			for i := range orig.Intervals {
				if got.Intervals[i] != orig.Intervals[i] {
					t.Fatalf("trial %d interval %d: %+v != %+v", trial, i, got.Intervals[i], orig.Intervals[i])
				}
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d: parsed signal invalid: %v", trial, err)
			}
		}
	}
}
