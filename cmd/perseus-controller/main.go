// Command perseus-controller demonstrates the server's background MPC
// controller runtime end to end on a compressed timescale: a training
// job is registered and profiled over HTTP, a seconds-scale diurnal
// grid signal and a seeded noisy-revision forecast feed are installed,
// and the job's rolling-horizon schedule is put under controller
// management. The controller loop then ticks at every signal-interval
// boundary on its own — freezing the executed prefix, re-planning the
// remainder on the freshly issued forecast, and bumping the schedule
// version — while the client only ever long-polls the schedule with
// If-None-Match and reads the rollout view: it never calls
// /grid/replan. The demo closes by comparing the controller's realized
// account against the offline rolling-horizon MPC on the same seed and
// by timing a cold versus cached /grid/plan solve.
//
// Usage:
//
//	perseus-controller                 # 32 s compressed day, seed 11
//	perseus-controller -seed 3 -sigma 0.25
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"time"

	"perseus/internal/client"
	"perseus/internal/experiments"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

// compressedDay scales the bundled 24-hour diurnal carbon shape onto a
// seconds-scale cycle so the real-time controller loop finishes in
// seconds: n intervals of secsPer seconds each, carrying every (24/n)th
// hour's rates.
func compressedDay(n int, secsPer float64) grid.Signal {
	day := grid.Diurnal24h()
	sig := grid.Signal{Name: "diurnal-compressed"}
	for k := 0; k < n; k++ {
		src := day.Intervals[k*len(day.Intervals)/n]
		sig.Intervals = append(sig.Intervals, grid.Interval{
			StartS: float64(k) * secsPer, EndS: float64(k+1) * secsPer,
			CarbonGPerKWh: src.CarbonGPerKWh, PriceUSDPerKWh: src.PriceUSDPerKWh,
		})
	}
	return sig
}

// buildUpload synthesizes the profile a client-side profiler would
// measure for the workload (the same construction the trainer demo and
// server tests use).
func buildUpload(g *gpu.Model, stages, mbSize int) ([]profile.Measurement, float64, error) {
	m, err := model.GPT3("1.3b")
	if err != nil {
		return nil, 0, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		return nil, 0, err
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		return nil, 0, err
	}
	var ms []profile.Measurement
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			ms = append(ms,
				profile.Measurement{Virtual: v, Kind: sched.Forward, Freq: f,
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				profile.Measurement{Virtual: v, Kind: sched.Backward, Freq: f,
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	return ms, profile.MeasurePBlocking(g), nil
}

func main() {
	seed := flag.Int64("seed", 11, "revision stream seed")
	sigma := flag.Float64("sigma", 0.2, "per-step relative forecast innovation")
	intervals := flag.Int("intervals", 8, "compressed-day intervals")
	secsPer := flag.Float64("secs", 4, "real seconds per interval")
	flag.Parse()

	srv := server.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	cl := client.NewServerClient("http://" + ln.Addr().String())

	// 1. Register and profile the job over HTTP, exactly as a trainer
	// integration would.
	id, err := cl.RegisterJob(client.JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := gpu.ByName("A100-PCIe")
	if err != nil {
		log.Fatal(err)
	}
	ms, pBlocking, err := buildUpload(g, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.UploadProfile(id, pBlocking, ms); err != nil {
		log.Fatal(err)
	}
	sched0, err := cl.WaitSchedule(id, 200, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s characterized: Tmin %.3f s, T* %.3f s\n", id, sched0.Tmin, sched0.TStar)

	// 2. Install the compressed-day signal and the revising forecast
	// feed, then put the job under controller management.
	sig := compressedDay(*intervals, *secsPer)
	if _, err := cl.UploadGridSignal(sig, "carbon"); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(*seed, *sigma, 0, 0, 0); err != nil {
		log.Fatal(err)
	}
	deadline := sig.Horizon()
	target := math.Floor(0.6 * deadline / sched0.Tmin)
	first, err := cl.ManageJob(id, target, deadline, "", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("managed: %.0f iterations by t=%.1fs over %d intervals (plan #%d)\n",
		target, deadline, *intervals, first.Plans)
	if _, err := cl.StartController(); err != nil {
		log.Fatal(err)
	}

	// 3. The trainer side: long-poll the schedule version; every bump is
	// a server-side re-plan observed without a single replan call.
	version := sched0.Version
	if s, err := cl.FetchSchedule(id); err == nil {
		version = s.Version
	}
	bumps := 0
	end := time.Now().Add(time.Duration((deadline + *secsPer) * float64(time.Second)))
	for time.Now().Before(end) {
		wait := time.Until(end)
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		s, changed, err := cl.FetchScheduleIfChanged(id, version, wait)
		if err != nil {
			log.Fatal(err)
		}
		if !changed {
			continue
		}
		version = s.Version
		bumps++
		roll, err := cl.FetchRollout(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  version %d: plan #%d, done %.1f / %.0f iters, frozen %.1f g realized (%.1f g predicted)\n",
			version, roll.Plans, roll.DoneIterations, target, roll.CarbonG, roll.PredCarbonG)
	}
	if _, err := cl.StopController(); err != nil {
		log.Fatal(err)
	}
	status, err := cl.FetchControllerStatus()
	if err != nil {
		log.Fatal(err)
	}
	// One final manual tick settles the tail in case the loop stopped
	// just before the last boundary.
	if _, err := cl.TickController(); err != nil {
		log.Fatal(err)
	}
	roll, err := cl.FetchRollout(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontroller: %d ticks, client observed %d version bumps via long-poll\n", status.Ticks, bumps)
	fmt.Printf("realized: %.1f g carbon, %.0f J over %d frozen spans (drift %+.1f g vs forecasts)\n",
		roll.CarbonG, roll.EnergyJ, len(roll.Frozen), roll.CarbonG-roll.PredCarbonG)

	// 4. The same scenario replayed offline: the controller closed the
	// rolling-horizon loop the experiments run in-process. (Real-clock
	// ticks land ~ms after each boundary, so totals track the offline
	// MPC row closely; the fake-clock server test pins exact equality.)
	tbl := frontierTable(cl, id)
	if tbl != nil {
		strategies, err := experiments.ForecastComparison(tbl, experiments.ForecastScenario{
			Truth: &sig, Seed: *seed, Sigma: *sigma, Target: target, DeadlineS: deadline,
		})
		if err == nil {
			for _, st := range strategies {
				if st.Name == "MPC re-planning" {
					fmt.Printf("offline MPC row (same seed): %.1f g realized over %d plans\n",
						st.Outcome.CarbonG, st.Outcome.Plans)
				}
			}
		}
	}

	// 5. The plan cache: identical /grid/plan requests solve once.
	t0 := time.Now()
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	cold := time.Since(t0)
	t0 = time.Now()
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	cached := time.Since(t0)
	st := srv.CacheStats()
	fmt.Printf("plan cache: cold %v, cached %v (hits %d, misses %d)\n", cold, cached, st.Hits, st.Misses)
}

// frontierTable fetches the job's characterized lookup table.
func frontierTable(cl *client.ServerClient, id string) *frontier.LookupTable {
	resp, err := http.Get(cl.BaseURL + "/jobs/" + id + "/table")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	lt, err := frontier.LoadTable(resp.Body)
	if err != nil {
		return nil
	}
	return lt
}
