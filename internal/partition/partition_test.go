package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"perseus/internal/model"
)

func TestUniformCostsPerfectBalance(t *testing.T) {
	costs := make([]float64, 12)
	for i := range costs {
		costs[i] = 1
	}
	r, err := MinImbalance(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio-1.0) > 1e-12 {
		t.Fatalf("uniform costs ratio = %v, want 1.0", r.Ratio)
	}
	for _, c := range r.StageCosts {
		if c != 3 {
			t.Fatalf("stage costs %v, want all 3", r.StageCosts)
		}
	}
}

func TestSingleStage(t *testing.T) {
	r, err := MinImbalance([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio != 1 || len(r.StageCosts) != 1 || r.StageCosts[0] != 6 {
		t.Fatalf("single stage: %+v", r)
	}
}

func TestStagesEqualLayers(t *testing.T) {
	costs := []float64{5, 1, 2, 8}
	r, err := MinImbalance(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio != 8 {
		t.Fatalf("ratio = %v, want 8 (each layer its own stage)", r.Ratio)
	}
}

func TestErrors(t *testing.T) {
	if _, err := MinImbalance([]float64{1, 2}, 3); err == nil {
		t.Error("want error: more stages than layers")
	}
	if _, err := MinImbalance([]float64{1, 2}, 0); err == nil {
		t.Error("want error: zero stages")
	}
	if _, err := MinImbalance([]float64{1, -2, 3}, 2); err == nil {
		t.Error("want error: negative cost")
	}
}

func TestMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		l := 3 + rng.Intn(10)
		n := 2 + rng.Intn(3)
		if n > l {
			n = l
		}
		costs := make([]float64, l)
		for i := range costs {
			costs[i] = 0.1 + rng.Float64()*5
		}
		got, err := MinImbalance(costs, n)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(costs, n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ratio > want.Ratio+1e-9 {
			t.Fatalf("trial %d: MinImbalance ratio %v > brute force %v (costs %v, n=%d)",
				trial, got.Ratio, want.Ratio, costs, n)
		}
	}
}

func TestQuickNeverWorseThanEqualSplit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 8 + rng.Intn(8)
		costs := make([]float64, l)
		for i := range costs {
			costs[i] = 0.5 + rng.Float64()
		}
		r, err := MinImbalance(costs, 4)
		if err != nil {
			return false
		}
		// An equal-count split is one feasible partition; the optimum
		// cannot be worse.
		eq := []int{0, l / 4, l / 2, 3 * l / 4, l}
		mx, mn := 0.0, math.Inf(1)
		for s := 0; s < 4; s++ {
			var c float64
			for i := eq[s]; i < eq[s+1]; i++ {
				c += costs[i]
			}
			mx = math.Max(mx, c)
			mn = math.Min(mn, c)
		}
		return r.Ratio <= mx/mn+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundariesWellFormed(t *testing.T) {
	m, err := model.GPT3("13b")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		r, err := MinImbalance(m.LayerCosts(), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Boundaries) != n+1 || r.Boundaries[0] != 0 || r.Boundaries[n] != len(m.Layers) {
			t.Fatalf("n=%d: bad boundaries %v", n, r.Boundaries)
		}
		for i := 1; i <= n; i++ {
			if r.Boundaries[i] <= r.Boundaries[i-1] {
				t.Fatalf("n=%d: non-increasing boundaries %v", n, r.Boundaries)
			}
		}
	}
}

// TestPaperTable1Ratios checks that the minimum imbalance ratios of the
// synthetic cost models land near the measured A100 values of paper
// Table 1. Tolerances are loose (these substitute analytic FLOPs for
// measured latency) but tight enough to pin the shape: which models are
// balanced, which are not, and how imbalance grows with stage count.
func TestPaperTable1Ratios(t *testing.T) {
	cases := []struct {
		model  string
		stages int
		paper  float64
		tol    float64 // absolute tolerance on the ratio
	}{
		{"gpt3-1.3b", 4, 1.17, 0.04},
		{"gpt3-1.3b", 8, 1.33, 0.06},
		{"gpt3-2.7b", 4, 1.13, 0.04},
		{"gpt3-2.7b", 8, 1.25, 0.06},
		{"gpt3-6.7b", 4, 1.11, 0.04},
		{"gpt3-13b", 4, 1.08, 0.04},
		{"gpt3-175b", 4, 1.02, 0.02},
		{"gpt3-175b", 8, 1.03, 0.02},
		{"bloom-3b", 4, 1.13, 0.05},
		{"bloom-3b", 8, 1.25, 0.08},
		{"bloom-176b", 4, 1.05, 0.03},
		{"bert-0.1b", 4, 1.33, 0.12},
		{"bert-0.3b", 4, 1.17, 0.07},
		{"bert-1.3b", 4, 1.17, 0.05},
		{"t5-3b", 4, 1.06, 0.06},
		{"wide-resnet50", 4, 1.23, 0.15},
		{"wide-resnet101", 4, 1.09, 0.08},
	}
	for _, c := range cases {
		m, err := model.ByName(c.model)
		if err != nil {
			t.Fatal(err)
		}
		r, err := MinImbalance(m.LayerCosts(), c.stages)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Ratio-c.paper) > c.tol {
			t.Errorf("%s %d stages: ratio %.3f, paper %.2f (tol %.2f), partition %v",
				c.model, c.stages, r.Ratio, c.paper, c.tol, r.Boundaries)
		}
	}
}

// TestImbalanceGrowsWithStages verifies Appendix B's observation that more
// pipeline stages generally increase imbalance (layers are coarse-grained
// relative to per-stage work).
func TestImbalanceGrowsWithStages(t *testing.T) {
	for _, name := range []string{"gpt3-1.3b", "gpt3-2.7b", "bloom-3b", "bert-1.3b"} {
		m, err := model.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := MinImbalance(m.LayerCosts(), 4)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := MinImbalance(m.LayerCosts(), 8)
		if err != nil {
			t.Fatal(err)
		}
		if r8.Ratio < r4.Ratio-1e-9 {
			t.Errorf("%s: 8-stage ratio %.3f < 4-stage ratio %.3f", name, r8.Ratio, r4.Ratio)
		}
	}
}

func TestBalanced(t *testing.T) {
	costs := []float64{4, 3, 2, 6, 1, 1, 1}
	r, err := Balanced(costs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal min-max is 7: {4,3} {2,6}?? no: {4,3}=7 {2,6}=8 — try
	// {4,3}=7, {2,6}=8... the optimum is max 8? Check against brute
	// force for min-max.
	best := math.Inf(1)
	for i := 1; i < len(costs); i++ {
		for j := i + 1; j < len(costs); j++ {
			sum := func(a, b int) float64 {
				var s float64
				for k := a; k < b; k++ {
					s += costs[k]
				}
				return s
			}
			m := math.Max(sum(0, i), math.Max(sum(i, j), sum(j, len(costs))))
			if m < best {
				best = m
			}
		}
	}
	mx := 0.0
	for _, c := range r.StageCosts {
		mx = math.Max(mx, c)
	}
	if math.Abs(mx-best) > 1e-9 {
		t.Fatalf("Balanced max stage cost %v, want %v", mx, best)
	}
}

func TestStageCostsMatchModel(t *testing.T) {
	m, err := model.Bloom("3b")
	if err != nil {
		t.Fatal(err)
	}
	r, err := MinImbalance(m.LayerCosts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.StageCosts(r.Boundaries)
	if err != nil {
		t.Fatal(err)
	}
	for s := range got {
		if math.Abs(got[s]-r.StageCosts[s]) > 1e-6*got[s] {
			t.Fatalf("stage %d: model says %v, partition says %v", s, got[s], r.StageCosts[s])
		}
	}
}
