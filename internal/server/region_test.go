package server

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/grid"
	"perseus/internal/region"
)

// flatSignal builds a constant-rate region trace.
func flatSignal(name string, dur, carbon, price float64) grid.Signal {
	return grid.Signal{Name: name, Intervals: []grid.Interval{
		{StartS: 0, EndS: dur, CarbonGPerKWh: carbon, PriceUSDPerKWh: price},
	}}
}

func TestRegionEndpoints(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	// Empty listing before any registration.
	regions, err := cl.FetchRegions()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 0 {
		t.Fatalf("fresh server lists %d regions", len(regions))
	}

	info, err := cl.RegisterRegion("west", 16, 50000, flatSignal("west", 7200, 400, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "west" || info.GPUs != 16 || info.CapW != 50000 || info.Intervals != 1 || info.HorizonS != 7200 {
		t.Fatalf("registration ack %+v", info)
	}
	if _, err := cl.RegisterRegion("east", 8, 0, flatSignal("east", 7200, 100, 0.05)); err != nil {
		t.Fatal(err)
	}
	regions, err = cl.FetchRegions()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 || regions[0].Name != "west" || regions[1].Name != "east" {
		t.Fatalf("regions %+v", regions)
	}

	// Duplicate and malformed registrations are 400s.
	if _, err := cl.RegisterRegion("west", 4, 0, flatSignal("w", 100, 1, 1)); err == nil {
		t.Fatal("duplicate region should fail")
	}
	for name, body := range map[string]string{
		"unnamed":      `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":1}]}}`,
		"empty signal": `{"name":"x","signal":{"intervals":[]}}`,
		"negative cap": `{"name":"x","cap_w":-5,"signal":{"intervals":[{"start_s":0,"end_s":10}]}}`,
		"negative gpu": `{"name":"x","gpus":-1,"signal":{"intervals":[{"start_s":0,"end_s":10}]}}`,
	} {
		resp, err := http.Post(ts.URL+"/regions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// Placement: unknown region and unknown job fail; a real placement
	// round-trips with history.
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.PlaceJob(id, "nowhere"); err == nil {
		t.Fatal("placement into unknown region should fail")
	}
	if _, err := cl.PlaceJob("nope", "west"); err == nil {
		t.Fatal("placement of unknown job should fail")
	}
	p, err := cl.PlaceJob(id, "west")
	if err != nil {
		t.Fatal(err)
	}
	if p.Region != "west" || p.Migrations != 0 || len(p.History) != 1 {
		t.Fatalf("placement %+v", p)
	}
	// Re-placing in place is a no-op; moving is a migration.
	if p, err = cl.PlaceJob(id, "west"); err != nil || p.Migrations != 0 || len(p.History) != 1 {
		t.Fatalf("no-op placement %+v (%v)", p, err)
	}
	if p, err = cl.PlaceJob(id, "east"); err != nil || p.Migrations != 1 || len(p.History) != 2 {
		t.Fatalf("migration placement %+v (%v)", p, err)
	}
	got, err := cl.FetchPlacement(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Region != "east" || got.Migrations != 1 {
		t.Fatalf("fetched placement %+v", got)
	}
}

func TestRegionsPlanEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)

	// Planning without regions fails.
	if _, err := cl.FetchRegionsPlan(10, 0, "", 0, 0); err == nil {
		t.Fatal("planning without regions should fail")
	}
	if _, err := cl.RegisterRegion("dirty", 0, 0, flatSignal("dirty", 7200, 500, 0.2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RegisterRegion("clean", 0, 0, flatSignal("clean", 7200, 100, 0.05)); err != nil {
		t.Fatal(err)
	}

	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.5 * 7200 / tbl.TStar())
	plan, err := cl.FetchRegionsPlan(target, 0, "", 300, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || len(plan.Jobs) != 1 || plan.Jobs[0].JobID != id {
		t.Fatalf("plan %+v", plan)
	}
	// All work must land in the clean region (index 1).
	for _, a := range plan.Jobs[0].Assignments {
		if a.Region == 0 {
			t.Fatalf("planner placed work in the dirty region: %+v", a)
		}
	}
	if got := plan.Jobs[0].Temporal.Iterations; math.Abs(got-target) > 1e-6*target {
		t.Fatalf("plan completes %v iterations, want %v", got, target)
	}

	// Bad parameters 400; an uncharacterized-only server errors.
	for name, q := range map[string]string{
		"bad iterations": "?iterations=banana",
		"bad objective":  "?iterations=10&objective=vibes",
		"bad downtime":   "?iterations=10&downtime=x",
	} {
		resp, err := http.Get(ts.URL + "/regions/plan" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	empty := New()
	if _, err := empty.RegionsPlan(10, 0, "", region.MigrationCost{}); err == nil {
		t.Fatal("planning with no regions should fail")
	}
}

// TestRegionConcurrency hammers region registration, listing, placement,
// and plan reads from many goroutines; run under -race it verifies the
// server's locking around the region registry and placement state.
func TestRegionConcurrency(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.RegisterRegion("seed", 0, 0, flatSignal("seed", 7200, 300, 0.1)); err != nil {
		t.Fatal(err)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, 4*n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("region-%d", i)
			if _, err := cl.RegisterRegion(name, i, float64(1000*i), flatSignal(name, 3600, 200, 0.1)); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.FetchRegions(); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.FetchRegionsPlan(5, 0, "", 0, 0); err != nil {
				errs <- err
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Bounce the job between the seed region and a racing one;
			// both placements and reads must stay consistent.
			if _, err := cl.PlaceJob(id, "seed"); err != nil {
				errs <- err
			}
			if _, err := cl.FetchPlacement(id); err != nil {
				errs <- err
			}
			if _, err := cl.FetchEmissions(id); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	regions, err := cl.FetchRegions()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != n+1 {
		t.Fatalf("got %d regions, want %d", len(regions), n+1)
	}
}

// TestEmissionsAcrossMigration is the fake-clock accounting check: a
// job accrues at its placed region's rates, and a migration boundary
// splits the account exactly — the pre-move span at the old region's
// rates, the post-move span at the new one's.
func TestEmissionsAcrossMigration(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	power := tbl.AvgPower(0) // deployed at Tmin, one pipeline

	// Regions registered now: their signals anchor at this instant.
	if _, err := cl.RegisterRegion("dirty", 0, 0, flatSignal("dirty", 7200, 500, 0.2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RegisterRegion("clean", 0, 0, flatSignal("clean", 7200, 100, 0.05)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.PlaceJob(id, "dirty"); err != nil {
		t.Fatal(err)
	}

	// One hour in the dirty region.
	clock.Advance(time.Hour)
	e1, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantC := power * 3600 / grid.JoulesPerKWh * 500
	if math.Abs(e1.CarbonG-wantC) > 1e-6*wantC {
		t.Fatalf("dirty-hour carbon %v, want %v", e1.CarbonG, wantC)
	}

	// Migrate, then spend an hour in the clean region. The boundary
	// must settle the first span at 500 g/kWh and charge the second at
	// 100 g/kWh even though no emissions read happened in between.
	if _, err := cl.PlaceJob(id, "clean"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	e2, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantC += power * 3600 / grid.JoulesPerKWh * 100
	if math.Abs(e2.CarbonG-wantC) > 1e-6*wantC {
		t.Fatalf("post-migration carbon %v, want %v", e2.CarbonG, wantC)
	}
	wantUSD := power*3600/grid.JoulesPerKWh*0.2 + power*3600/grid.JoulesPerKWh*0.05
	if math.Abs(e2.CostUSD-wantUSD) > 1e-6*wantUSD {
		t.Fatalf("post-migration cost %v, want %v", e2.CostUSD, wantUSD)
	}
	// Energy is rate-independent: two hours at the deployed power.
	wantE := power * 7200
	if math.Abs(e2.EnergyJ-wantE) > 1e-6*wantE {
		t.Fatalf("energy %v, want %v", e2.EnergyJ, wantE)
	}
}
