package frontier

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"perseus/internal/gpu"
)

// LookupTable is the serializable form of a characterized frontier: the
// energy-schedule cache the Perseus server keeps per job, "saved in a
// lookup table indexed by T'" (paper §3.2). Unlike Frontier it carries
// fully materialized frequency plans and no profile state, so it can be
// persisted across server restarts and served without recomputation.
type LookupTable struct {
	// Unit is the optimizer's τ in seconds.
	Unit float64 `json:"unit_s"`

	// TminUnits and TStarUnits bound the frontier in τ units.
	TminUnits  int64 `json:"tmin_units"`
	TStarUnits int64 `json:"tstar_units"`

	// Points are the cached energy schedules by increasing time.
	Points []TablePoint `json:"points"`
}

// TablePoint is one cached energy schedule.
type TablePoint struct {
	// TimeUnits is the planned iteration time in τ units.
	TimeUnits int64 `json:"time_units"`

	// Energy is the discrete adjusted computation energy in joules.
	Energy float64 `json:"energy_j"`

	// Freqs is the realized per-computation frequency plan (MHz),
	// indexed by schedule op id; 0 marks constant-time operations.
	Freqs []gpu.Frequency `json:"freqs_mhz"`
}

// Time returns the planned iteration time in seconds under the table's τ.
func (lt *LookupTable) time(units int64) float64 { return float64(units) * lt.Unit }

// Table materializes the frontier into a serializable lookup table.
// Memory is points × computations; for very fine frontiers consider
// sampling with stride before persisting.
func (f *Frontier) Table() *LookupTable {
	lt := &LookupTable{
		Unit:       f.Unit,
		TminUnits:  f.tminUnits,
		TStarUnits: f.tstarUnits,
	}
	for _, pt := range f.points {
		lt.Points = append(lt.Points, TablePoint{
			TimeUnits: pt.TimeUnits,
			Energy:    pt.Energy,
			Freqs:     pt.Plan(),
		})
	}
	return lt
}

// Lookup returns the energy schedule for an anticipated straggler
// iteration time tPrime, with the same T_opt = min(T*, T') semantics as
// Frontier.Lookup (paper Eq. 2). The lookup is a binary search:
// "instantaneous" per paper §6.5. An empty table (never produced by
// Table or LoadTable, but possible for hand-built values) returns the
// zero TablePoint.
func (lt *LookupTable) Lookup(tPrime float64) TablePoint {
	if len(lt.Points) == 0 {
		return TablePoint{}
	}
	return lt.Points[lt.LookupIndex(tPrime)]
}

// PointTime returns the planned iteration time of point i in seconds.
func (lt *LookupTable) PointTime(i int) float64 { return lt.time(lt.Points[i].TimeUnits) }

// AvgPower returns the average power draw of point i in watts: the
// point's adjusted computation energy divided by its planned iteration
// time. Along the table, time strictly rises while energy falls, so
// average power strictly decreases from the Tmin point to the T* point —
// this is the knob a fleet-level allocator trades across jobs to meet a
// datacenter power envelope.
func (lt *LookupTable) AvgPower(i int) float64 {
	pt := lt.Points[i]
	return pt.Energy / lt.time(pt.TimeUnits)
}

// FirstUnderPower returns the index of the fastest point whose average
// power is at most maxW, or -1 when even the T* point draws more.
// Average power strictly decreases along the table, so this is the
// operating floor a per-interval facility cap imposes on a job.
func (lt *LookupTable) FirstUnderPower(maxW float64) int {
	n := len(lt.Points)
	i := sort.Search(n, func(i int) bool { return lt.AvgPower(i) <= maxW })
	if i == n {
		return -1
	}
	return i
}

// LookupIndex returns the index of the point Lookup(tPrime) would
// return, for callers that track operating points by position.
func (lt *LookupTable) LookupIndex(tPrime float64) int {
	if len(lt.Points) == 0 {
		return -1
	}
	tstar := lt.time(lt.TStarUnits)
	topt := math.Min(tPrime, tstar)
	units := int64(math.Floor(topt/lt.Unit + 1e-9))
	if units <= lt.Points[0].TimeUnits {
		return 0
	}
	return sort.Search(len(lt.Points), func(i int) bool {
		return lt.Points[i].TimeUnits > units
	}) - 1
}

// Tmin returns the fastest cached iteration time in seconds.
func (lt *LookupTable) Tmin() float64 { return lt.time(lt.TminUnits) }

// TStar returns the minimum-energy iteration time in seconds.
func (lt *LookupTable) TStar() float64 { return lt.time(lt.TStarUnits) }

// Save writes the table as JSON.
func (lt *LookupTable) Save(w io.Writer) error {
	return json.NewEncoder(w).Encode(lt)
}

// LoadTable reads and validates a table written by Save.
func LoadTable(r io.Reader) (*LookupTable, error) {
	var lt LookupTable
	if err := json.NewDecoder(r).Decode(&lt); err != nil {
		return nil, fmt.Errorf("frontier: decoding lookup table: %w", err)
	}
	if lt.Unit <= 0 {
		return nil, fmt.Errorf("frontier: lookup table has non-positive unit %v", lt.Unit)
	}
	if len(lt.Points) == 0 {
		return nil, fmt.Errorf("frontier: lookup table has no points")
	}
	nComps := len(lt.Points[0].Freqs)
	for i, pt := range lt.Points {
		if i > 0 && pt.TimeUnits <= lt.Points[i-1].TimeUnits {
			return nil, fmt.Errorf("frontier: lookup table times not increasing at point %d", i)
		}
		if len(pt.Freqs) != nComps {
			return nil, fmt.Errorf("frontier: point %d has %d frequencies, want %d", i, len(pt.Freqs), nComps)
		}
	}
	if lt.Points[0].TimeUnits != lt.TminUnits || lt.Points[len(lt.Points)-1].TimeUnits != lt.TStarUnits {
		return nil, fmt.Errorf("frontier: lookup table endpoints do not match Tmin/T*")
	}
	return &lt, nil
}
