package maxflow

import "math"

// MaxFlowDinic pushes the maximum flow from s to t using Dinic's
// algorithm: BFS level graphs with blocking flows found by DFS. On the
// Capacity DAGs the Perseus optimizer builds (thousands of nodes, unit-ish
// path structure) it is substantially faster than Edmonds-Karp while
// computing the same flow value; the paper uses Edmonds-Karp (§4.3), so
// that remains the default solver.
func (g *Graph) MaxFlowDinic(s, t int) float64 {
	level := make([]int32, g.n)
	iter := make([]int32, g.n)
	queue := make([]int32, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.head[u] {
				v := g.to[id]
				if level[v] < 0 && g.residual(id) > eps {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int32, limit float64) float64
	dfs = func(u int32, limit float64) float64 {
		if int(u) == t {
			return limit
		}
		for ; iter[u] < int32(len(g.head[u])); iter[u]++ {
			id := g.head[u][iter[u]]
			v := g.to[id]
			if level[v] != level[u]+1 {
				continue
			}
			r := g.residual(id)
			if r <= eps {
				continue
			}
			pushed := dfs(v, math.Min(limit, r))
			if pushed > 0 {
				g.flow[id] += pushed
				g.flow[id^1] -= pushed
				return pushed
			}
		}
		return 0
	}

	var total float64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(int32(s), math.Inf(1))
			if pushed <= 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// Solver selects the maximum-flow algorithm used by MinCutWithBounds.
type Solver int

const (
	// EdmondsKarp is the paper's solver (§4.3): BFS augmenting paths.
	EdmondsKarp Solver = iota
	// Dinic is the faster level-graph solver; identical cuts.
	Dinic
)

// maxFlow dispatches on the solver.
func (g *Graph) maxFlow(solver Solver, s, t int) float64 {
	if solver == Dinic {
		return g.MaxFlowDinic(s, t)
	}
	return g.MaxFlow(s, t)
}
