package dag

import (
	"math/rand"
	"testing"

	"perseus/internal/sched"
)

func unitDur(op sched.Op) int64 { return 1 }

func build(t *testing.T, s *sched.Schedule, dur func(sched.Op) int64) *Graph {
	t.Helper()
	g, err := Build(s, dur)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllSchedulesAcyclic(t *testing.T) {
	mk := func(name string, n, m, c int) *sched.Schedule {
		s, err := sched.ByName(name, n, m, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return s
	}
	cases := []*sched.Schedule{
		mk("1f1b", 4, 6, 1),
		mk("1f1b", 8, 32, 1),
		mk("1f1b", 4, 2, 1), // fewer microbatches than stages
		mk("gpipe", 4, 6, 1),
		mk("interleaved-1f1b", 4, 8, 2),
		mk("interleaved-1f1b", 2, 6, 3),
		mk("early-recompute-1f1b", 4, 6, 1),
	}
	for _, s := range cases {
		g := build(t, s, unitDur)
		if got := len(g.Topo()); got != len(s.Ops)+2 {
			t.Errorf("%s: topo covers %d of %d nodes", s.Name, got, len(s.Ops)+2)
		}
	}
}

func TestMakespanBalanced1F1B(t *testing.T) {
	// With perfectly balanced unit-duration stages and forward ==
	// backward time, 1F1B's makespan is (M + N - 1) * (tf + tb):
	// pipeline fill of N-1 slots plus M steady slots.
	for _, c := range []struct{ n, m int }{{2, 2}, {2, 4}, {4, 6}, {4, 8}, {8, 32}} {
		s, err := sched.OneFOneB(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		g := build(t, s, unitDur)
		want := int64((c.m + c.n - 1) * 2)
		if got := g.Makespan(); got != want {
			t.Errorf("1f1b %dx%d makespan = %d, want %d", c.n, c.m, got, want)
		}
	}
}

func TestMakespanBalancedGPipe(t *testing.T) {
	// GPipe with unit durations: (M + N - 1) forwards then (M + N - 1)
	// backwards.
	for _, c := range []struct{ n, m int }{{2, 2}, {3, 4}, {4, 8}} {
		s, err := sched.GPipe(c.n, c.m)
		if err != nil {
			t.Fatal(err)
		}
		g := build(t, s, unitDur)
		want := int64(2 * (c.m + c.n - 1))
		if got := g.Makespan(); got != want {
			t.Errorf("gpipe %dx%d makespan = %d, want %d", c.n, c.m, got, want)
		}
	}
}

func TestFigure1Timing(t *testing.T) {
	// Paper Figure 1a geometry: with backward = 2x forward and balanced
	// stages, the 1F1B makespan is (N-1)*tf (fill) + M*(tf+tb) (steady
	// on the last stage) + (N-1)*tb (drain).
	const n, m = 4, 6
	s, err := sched.OneFOneB(n, m)
	if err != nil {
		t.Fatal(err)
	}
	g := build(t, s, func(op sched.Op) int64 {
		if op.Kind == sched.Backward {
			return 2
		}
		return 1
	})
	want := int64((n-1)*1 + m*3 + (n-1)*2)
	if got := g.Makespan(); got != want {
		t.Errorf("makespan = %d, want %d", got, want)
	}
}

func TestImbalancedStageDominates(t *testing.T) {
	// One stage 3x heavier: in steady state the heavy stage is busy
	// back-to-back and the makespan is governed by it.
	const n, m = 4, 16
	heavy := 2 // stage index
	s, err := sched.OneFOneB(n, m)
	if err != nil {
		t.Fatal(err)
	}
	g := build(t, s, func(op sched.Op) int64 {
		d := int64(1)
		if op.Kind == sched.Backward {
			d = 2
		}
		if op.Stage == heavy {
			d *= 3
		}
		return d
	})
	// Lower bound: heavy stage busy time = M*(3+6)=144 plus at least the
	// fill before it and drain after it.
	if got := g.Makespan(); got < int64(m*9) {
		t.Errorf("makespan %d < heavy stage busy time %d", got, m*9)
	}
	// The heavy stage must have zero-slack computations in steady state.
	crit, _ := g.Critical()
	heavyCrit := 0
	for i, op := range g.Ops {
		if op.Stage == heavy && crit[i] {
			heavyCrit++
		}
	}
	if heavyCrit < m {
		t.Errorf("heavy stage has %d critical ops, want >= %d", heavyCrit, m)
	}
}

func TestCriticalPathProperties(t *testing.T) {
	s, err := sched.OneFOneB(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	g := build(t, s, func(op sched.Op) int64 { return 1 + int64(rng.Intn(5)) })
	est := g.EarliestStarts()
	mk := est[g.Sink]
	lst := g.LatestStarts(mk)
	for v := range est {
		if lst[v] < est[v] {
			t.Fatalf("node %d: latest start %d < earliest %d", v, lst[v], est[v])
		}
	}
	// Edge feasibility: est[w] >= est[v]+dur[v] for every edge.
	for v := range g.Succ {
		for _, w := range g.Succ[v] {
			if est[w] < est[v]+g.Dur[v] {
				t.Fatalf("edge %d->%d violates earliest-start recurrence", v, w)
			}
		}
	}
	// There is at least one critical path: walk greedily from Source.
	crit, _ := g.Critical()
	if !crit[g.Source] || !crit[g.Sink] {
		t.Fatal("source/sink must be critical")
	}
	v := g.Source
	steps := 0
	for v != g.Sink {
		next := -1
		for _, w := range g.Succ[v] {
			if crit[w] && est[w] == est[v]+g.Dur[v] {
				next = int(w)
				break
			}
		}
		if next == -1 {
			t.Fatalf("critical path dead-ends at node %d", v)
		}
		v = next
		if steps++; steps > len(g.Dur) {
			t.Fatal("critical path walk did not terminate")
		}
	}
}

func TestSlackConsistency(t *testing.T) {
	s, err := sched.GPipe(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	g := build(t, s, func(op sched.Op) int64 { return 1 + int64(rng.Intn(4)) })
	slack := g.Slack()
	crit, _ := g.Critical()
	for v := range slack {
		if (slack[v] == 0) != crit[v] {
			t.Fatalf("node %d: slack %d vs critical %v", v, slack[v], crit[v])
		}
		if slack[v] < 0 {
			t.Fatalf("node %d: negative slack", v)
		}
	}
}

func TestGrowingDurationGrowsMakespan(t *testing.T) {
	s, err := sched.OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := build(t, s, unitDur)
	before := g.Makespan()
	// Grow a critical node: makespan must grow by the same amount.
	crit, _ := g.Critical()
	for i := range g.Ops {
		if crit[i] {
			g.Dur[i] += 5
			break
		}
	}
	if got := g.Makespan(); got != before+5 {
		t.Errorf("makespan after critical +5: %d, want %d", got, before+5)
	}
}

func TestNonCriticalSlackAbsorbs(t *testing.T) {
	s, err := sched.OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Make stage 0 light so its mid-pipeline ops have slack.
	g := build(t, s, func(op sched.Op) int64 {
		if op.Stage == 0 {
			return 1
		}
		return 4
	})
	before := g.Makespan()
	slack := g.Slack()
	grew := false
	for i := range g.Ops {
		if slack[i] >= 2 {
			g.Dur[i]++ // grow within slack
			grew = true
			break
		}
	}
	if !grew {
		t.Skip("no slack found in this configuration")
	}
	if got := g.Makespan(); got != before {
		t.Errorf("makespan changed from %d to %d despite slack", before, got)
	}
}

func TestBuildRejectsNonPositiveDuration(t *testing.T) {
	s, err := sched.OneFOneB(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(s, func(op sched.Op) int64 { return 0 }); err == nil {
		t.Fatal("zero duration should be rejected")
	}
}

func TestClone(t *testing.T) {
	s, err := sched.OneFOneB(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := build(t, s, unitDur)
	c := g.Clone()
	c.Dur[0] = 99
	if g.Dur[0] == 99 {
		t.Fatal("clone shares duration storage")
	}
	if c.Makespan() == g.Makespan() {
		t.Fatal("mutated clone should differ in makespan")
	}
}

func TestCriticalSubgraphIncludesBoundary(t *testing.T) {
	s, err := sched.OneFOneB(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := build(t, s, unitDur)
	sub := g.CriticalSubgraph()
	if !sub[g.Source] || !sub[g.Sink] {
		t.Fatal("critical subgraph must include source and sink")
	}
}
