// Package sched generates pipeline-parallel training schedules: the
// per-stage instruction streams and cross-stage dependencies of one
// training iteration. Supported schedules are 1F1B, GPipe, interleaved
// 1F1B, and early-recomputation 1F1B — the four families named in paper
// §4.4 ("Other Pipeline Schedules"). Any of them can be handed to the
// Perseus optimizer unmodified because they are all expressed as the same
// computation DAG.
package sched

import "fmt"

// Kind classifies a pipeline instruction.
type Kind int

const (
	// Forward is the forward computation of one microbatch on one stage.
	Forward Kind = iota
	// Backward is the backward computation of one microbatch on one stage.
	Backward
	// Recompute is the activation-recomputation forward replay that
	// early-recomputation schedules run just before a backward.
	Recompute
	// Constant is a constant-time operation with a single speed choice,
	// e.g. loading inputs into VRAM (paper §4.4 "Constant-Time
	// Operations").
	Constant
)

// String returns the single-letter mnemonic used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Forward:
		return "F"
	case Backward:
		return "B"
	case Recompute:
		return "R"
	case Constant:
		return "C"
	}
	return "?"
}

// Op is one pipeline instruction.
type Op struct {
	// Stage is the physical pipeline stage (GPU) executing the op.
	Stage int
	// Virtual is the virtual stage for interleaved schedules; equal to
	// Stage otherwise. Cross-stage dependencies follow virtual stages.
	Virtual int
	// Microbatch indexes the microbatch the op processes.
	Microbatch int
	// Kind is the instruction type.
	Kind Kind
}

func (o Op) String() string {
	return fmt.Sprintf("s%d:%s%d", o.Stage, o.Kind, o.Microbatch+1)
}

// Schedule is one training iteration's instruction streams plus the
// cross-stage dependencies between them.
type Schedule struct {
	// Name identifies the schedule family, e.g. "1f1b".
	Name string

	// Stages and Microbatches are the pipeline dimensions (N and M in
	// the paper).
	Stages, Microbatches int

	// Chunks is the number of model chunks per stage (interleaved
	// schedules); 1 otherwise.
	Chunks int

	// Ops lists every instruction; an op's ID is its index here.
	Ops []Op

	// PerStage lists op IDs in program order for each physical stage.
	// Consecutive ops on a stage execute serially on the same GPU.
	PerStage [][]int

	// Deps lists cross-stage dependency edges (from, to) as op IDs:
	// forward activations flowing down the pipeline, backward gradients
	// flowing up, and the forward→backward turnaround on the last
	// virtual stage.
	Deps [][2]int
}

// VirtualStages returns the total number of virtual stages.
func (s *Schedule) VirtualStages() int { return s.Stages * s.Chunks }

type opKey struct {
	virtual, microbatch int
	kind                Kind
}

// buildDeps derives the cross-stage dependency edges from the op list
// using the standard pipeline-parallel rules over virtual stages:
//
//	F(v, m) ← F(v-1, m)
//	B(v, m) ← B(v+1, m)
//	B(V-1, m) ← F(V-1, m)
//	R(v, m) is a same-stage op ordered by program order only.
func (s *Schedule) buildDeps() error {
	idx := make(map[opKey]int, len(s.Ops))
	for id, op := range s.Ops {
		k := opKey{op.Virtual, op.Microbatch, op.Kind}
		if _, dup := idx[k]; dup {
			return fmt.Errorf("sched: duplicate op %v", op)
		}
		idx[k] = id
	}
	vmax := s.VirtualStages() - 1
	for id, op := range s.Ops {
		switch op.Kind {
		case Forward:
			if op.Virtual > 0 {
				from, ok := idx[opKey{op.Virtual - 1, op.Microbatch, Forward}]
				if !ok {
					return fmt.Errorf("sched: missing producer for %v", op)
				}
				s.Deps = append(s.Deps, [2]int{from, id})
			}
		case Backward:
			if op.Virtual < vmax {
				from, ok := idx[opKey{op.Virtual + 1, op.Microbatch, Backward}]
				if !ok {
					return fmt.Errorf("sched: missing producer for %v", op)
				}
				s.Deps = append(s.Deps, [2]int{from, id})
			} else {
				from, ok := idx[opKey{op.Virtual, op.Microbatch, Forward}]
				if !ok {
					return fmt.Errorf("sched: missing forward for %v", op)
				}
				s.Deps = append(s.Deps, [2]int{from, id})
			}
		}
	}
	return nil
}

func (s *Schedule) push(stage int, op Op) {
	s.Ops = append(s.Ops, op)
	s.PerStage[stage] = append(s.PerStage[stage], len(s.Ops)-1)
}

func validateDims(n, m int) error {
	if n <= 0 || m <= 0 {
		return fmt.Errorf("sched: need positive stages and microbatches, got %d, %d", n, m)
	}
	return nil
}

// OneFOneB builds the 1F1B schedule (Narayanan et al., paper §2.2 Figure 1):
// each stage runs min(N-s-1, M) warm-up forwards, alternates one forward
// and one backward in steady state, and drains with the remaining
// backwards.
func OneFOneB(n, m int) (*Schedule, error) {
	if err := validateDims(n, m); err != nil {
		return nil, err
	}
	s := &Schedule{Name: "1f1b", Stages: n, Microbatches: m, Chunks: 1,
		PerStage: make([][]int, n)}
	for st := 0; st < n; st++ {
		warmup := n - st - 1
		if warmup > m {
			warmup = m
		}
		for i := 0; i < warmup; i++ {
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: i, Kind: Forward})
		}
		for i := 0; i < m-warmup; i++ {
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: warmup + i, Kind: Forward})
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: i, Kind: Backward})
		}
		for i := m - warmup; i < m; i++ {
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: i, Kind: Backward})
		}
	}
	if err := s.buildDeps(); err != nil {
		return nil, err
	}
	return s, nil
}

// GPipe builds the GPipe schedule (Huang et al.): every stage runs all M
// forwards, then all M backwards in reverse microbatch order.
func GPipe(n, m int) (*Schedule, error) {
	if err := validateDims(n, m); err != nil {
		return nil, err
	}
	s := &Schedule{Name: "gpipe", Stages: n, Microbatches: m, Chunks: 1,
		PerStage: make([][]int, n)}
	for st := 0; st < n; st++ {
		for i := 0; i < m; i++ {
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: i, Kind: Forward})
		}
		for i := m - 1; i >= 0; i-- {
			s.push(st, Op{Stage: st, Virtual: st, Microbatch: i, Kind: Backward})
		}
	}
	if err := s.buildDeps(); err != nil {
		return nil, err
	}
	return s, nil
}

// Interleaved1F1B builds the interleaved 1F1B schedule (Narayanan et al.,
// Megatron-LM): each physical stage hosts `chunks` model chunks, so
// virtual stage v = chunk·N + s runs on physical stage s. The number of
// microbatches must be a multiple of the number of stages.
func Interleaved1F1B(n, m, chunks int) (*Schedule, error) {
	if err := validateDims(n, m); err != nil {
		return nil, err
	}
	if chunks <= 0 {
		return nil, fmt.Errorf("sched: need positive chunks, got %d", chunks)
	}
	if chunks == 1 {
		return OneFOneB(n, m)
	}
	if m%n != 0 {
		return nil, fmt.Errorf("sched: interleaved 1F1B requires microbatches (%d) divisible by stages (%d)", m, n)
	}
	s := &Schedule{Name: "interleaved-1f1b", Stages: n, Microbatches: m, Chunks: chunks,
		PerStage: make([][]int, n)}
	total := m * chunks
	// Virtual microbatch index k on a device walks chunk-major within
	// groups of n·chunks (Megatron's get_model_chunk_id).
	fwdOp := func(st, k int) Op {
		group := k / (n * chunks)
		within := k % (n * chunks)
		chunk := within / n
		mb := group*n + within%n
		return Op{Stage: st, Virtual: chunk*n + st, Microbatch: mb, Kind: Forward}
	}
	bwdOp := func(st, k int) Op {
		group := k / (n * chunks)
		within := k % (n * chunks)
		chunk := chunks - 1 - within/n
		mb := group*n + within%n
		return Op{Stage: st, Virtual: chunk*n + st, Microbatch: mb, Kind: Backward}
	}
	for st := 0; st < n; st++ {
		warmup := (n-st-1)*2 + (chunks-1)*n
		if warmup > total {
			warmup = total
		}
		for k := 0; k < warmup; k++ {
			s.push(st, fwdOp(st, k))
		}
		for i := 0; i < total-warmup; i++ {
			s.push(st, fwdOp(st, warmup+i))
			s.push(st, bwdOp(st, i))
		}
		for i := total - warmup; i < total; i++ {
			s.push(st, bwdOp(st, i))
		}
	}
	if err := s.buildDeps(); err != nil {
		return nil, err
	}
	return s, nil
}

// EarlyRecompute1F1B builds a 1F1B schedule with explicit activation
// recomputation: each backward is preceded by a Recompute op on the same
// stage that replays the forward (paper §4.4 cites early recomputation
// 1F1B; Merak enables activation recomputation, §5).
func EarlyRecompute1F1B(n, m int) (*Schedule, error) {
	base, err := OneFOneB(n, m)
	if err != nil {
		return nil, err
	}
	s := &Schedule{Name: "early-recompute-1f1b", Stages: n, Microbatches: m, Chunks: 1,
		PerStage: make([][]int, n)}
	for st, ids := range base.PerStage {
		for _, id := range ids {
			op := base.Ops[id]
			if op.Kind == Backward {
				s.push(st, Op{Stage: st, Virtual: st, Microbatch: op.Microbatch, Kind: Recompute})
			}
			s.push(st, op)
		}
	}
	if err := s.buildDeps(); err != nil {
		return nil, err
	}
	return s, nil
}

// ByName builds the named schedule. Chunks is only used by
// "interleaved-1f1b".
func ByName(name string, n, m, chunks int) (*Schedule, error) {
	switch name {
	case "1f1b":
		return OneFOneB(n, m)
	case "gpipe":
		return GPipe(n, m)
	case "interleaved-1f1b":
		return Interleaved1F1B(n, m, chunks)
	case "early-recompute-1f1b":
		return EarlyRecompute1F1B(n, m)
	}
	return nil, fmt.Errorf("sched: unknown schedule %q", name)
}
