// Command perseus-server runs the Perseus server (paper §3.2, Figure 4):
// a cluster-wide singleton that registers training jobs, receives online
// profiling results, characterizes time-energy frontiers asynchronously,
// and serves energy schedules over HTTP — including straggler reactions
// via POST /jobs/{id}/straggler. Metrics, health, and recent events are
// served at /metrics, /healthz, and /debug/events; -pprof additionally
// mounts net/http/pprof under /debug/pprof/.
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"

	"perseus/internal/server"
)

func main() {
	addr := flag.String("addr", ":7787", "listen address")
	withPprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	handler := server.New().Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	log.Printf("perseus server listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
