package obs

import (
	"context"
	"time"

	"perseus/internal/plan"
)

// InstrumentPlanner wraps a plan.Planner so every Plan call is timed
// into latency — labeled (planner, objective) — and failures counted
// into errors (labeled planner). All four planning layers (grid,
// region, forecast-MPC, fleet) report through this one decorator, so
// per-objective planning latency is comparable across them without any
// layer knowing about metrics. as overrides the reported planner label
// ("" uses p.Name()) — the server labels the rolling-horizon re-plan
// solve "forecast-mpc" even though the inner solver is the grid
// planner. Either metric may be nil to skip that side.
//
// The decorator is also span-aware: when ctx carries an active trace
// span (the HTTP middleware's or the controller tick's), each Plan
// call records a "planner.solve" child span with planner/objective
// attrs, marked failed on error. With no active span the tracing side
// costs one nil check — instrumented solves reached outside a traced
// request (benchmarks, direct library use) stay at PR 6 overhead.
// Instances are constructed per request, so capturing ctx at
// construction is exact.
func InstrumentPlanner(ctx context.Context, p plan.Planner, as string, latency *HistogramVec, errors *CounterVec) plan.Planner {
	name := as
	if name == "" {
		name = p.Name()
	}
	return &instrumentedPlanner{ctx: ctx, inner: p, name: name, latency: latency, errors: errors}
}

type instrumentedPlanner struct {
	ctx     context.Context
	inner   plan.Planner
	name    string
	latency *HistogramVec
	errors  *CounterVec
}

// Name implements plan.Planner, reporting the instrumented label.
func (p *instrumentedPlanner) Name() string { return p.name }

// SpanPlannerSolve is the span name the decorator records solves under.
const SpanPlannerSolve = "planner.solve"

// Plan implements plan.Planner.
func (p *instrumentedPlanner) Plan(req plan.Request) (plan.Result, error) {
	obj, objErr := plan.ParseObjective(string(req.Objective))
	if objErr != nil {
		obj = req.Objective // surfaced as-is; the inner planner rejects it
	}
	var sp *ActiveSpan
	if p.ctx != nil {
		_, sp = Child(p.ctx, SpanPlannerSolve)
		sp.SetAttr("planner", p.name)
		sp.SetAttr("objective", string(obj))
	}
	start := time.Now()
	res, err := p.inner.Plan(req)
	if p.latency != nil {
		p.latency.With(p.name, string(obj)).Observe(time.Since(start).Seconds())
	}
	if err != nil && p.errors != nil {
		p.errors.With(p.name).Inc()
	}
	sp.Fail(err)
	sp.End()
	return res, err
}
