#!/usr/bin/env bash
# Diffs two BENCH_*.json trajectory records (written by scripts/bench.sh)
# and prints per-benchmark ns/op deltas. Exits 1 when any benchmark in
# the guarded hot-path series — the cached-plan serving path and the
# grid-optimize solver — regresses by more than the threshold (default
# 25%); all other series are report-only (coarser solver benchmarks are
# too machine-sensitive to gate on).
#
# Usage: scripts/bench_compare.sh [--report-only] old.json new.json
set -euo pipefail

threshold="${BENCH_REGRESSION_THRESHOLD:-25}"
gate=1
if [[ "${1:-}" == "--report-only" ]]; then
  gate=0
  shift
fi
if [[ $# -ne 2 ]]; then
  echo "usage: $0 [--report-only] old.json new.json" >&2
  exit 2
fi
old="$1" new="$2"
for f in "$old" "$new"; do
  [[ -r "$f" ]] || { echo "bench_compare: cannot read $f" >&2; exit 2; }
done

python3 - "$old" "$new" "$threshold" "$gate" <<'EOF'
import json, sys

old_path, new_path, threshold, gate = sys.argv[1], sys.argv[2], float(sys.argv[3]), sys.argv[4] == "1"
old = json.load(open(old_path))
new = json.load(open(new_path))
old_by = {b["name"]: b for b in old["benchmarks"]}
new_by = {b["name"]: b for b in new["benchmarks"]}

# Hot paths gated against regression; everything else is report-only.
GUARDED_PREFIXES = ("BenchmarkServerPlanCached", "BenchmarkGridOptimize", "BenchmarkRegionPlan")

print(f"old: {old_path} (commit {old.get('commit', '?')}, {old.get('date', '?')})")
print(f"new: {new_path} (commit {new.get('commit', '?')}, {new.get('date', '?')})")
print(f"{'benchmark':<42} {'old ns/op':>14} {'new ns/op':>14} {'delta':>9}")

failed = []
for name in sorted(set(old_by) | set(new_by)):
    o, n = old_by.get(name), new_by.get(name)
    if o is None or n is None:
        which = "new only" if o is None else "removed"
        print(f"{name:<42} {'-':>14} {'-':>14} {which:>9}")
        continue
    delta = (n["ns_per_op"] - o["ns_per_op"]) / o["ns_per_op"] * 100
    guarded = name.startswith(GUARDED_PREFIXES)
    mark = ""
    if guarded and delta > threshold:
        failed.append((name, delta))
        mark = "  << regression"
    print(f"{name:<42} {o['ns_per_op']:>14} {n['ns_per_op']:>14} {delta:>+8.1f}%{mark}")

if failed:
    print(f"\n{len(failed)} guarded benchmark(s) regressed beyond {threshold:.0f}%:", file=sys.stderr)
    for name, delta in failed:
        print(f"  {name}: {delta:+.1f}%", file=sys.stderr)
    if gate:
        sys.exit(1)
    print("(report-only mode: not failing)", file=sys.stderr)
EOF
