// Large-scale emulation: GPT-3 175B and Bloom 176B with 8 pipeline stages
// and tensor-parallel degree 8, following the strong-scaling grid of paper
// Table 5 — the paper §6.3 evaluation that no physical testbed could run.
package main

import (
	"fmt"
	"log"

	"perseus"
)

func main() {
	for _, m := range []string{"gpt3-175b", "bloom-176b"} {
		fmt.Printf("== %s, 16 pipelines x (TP8 x PP8) = 1024 GPUs ==\n", m)
		sys, err := perseus.Characterize(perseus.Workload{
			Model:          m,
			GPU:            "A100-SXM",
			Stages:         8,
			MicrobatchSize: 1,
			Microbatches:   24, // Table 5 row: 64 pipelines use 24 microbatches
			DataParallel:   16,
			TensorParallel: 8,
			TargetSteps:    400,
		})
		if err != nil {
			log.Fatal(err)
		}
		base := sys.Baseline()
		fmt.Printf("iteration %.2fs at all-max; frontier Tmin=%.2fs T*=%.2fs\n",
			base.IterTime, sys.Tmin(), sys.TStar())

		res, err := sys.Simulate(sys.PlanFor(0), nil)
		if err != nil {
			log.Fatal(err)
		}
		saving, slowdown := sys.Savings(res)
		fmt.Printf("intrinsic savings: %.1f%% (slowdown %.2f%%)\n", 100*saving, 100*slowdown)

		// One pipeline throttles to 1.2x (paper Figure 7's setting).
		straggler := []perseus.Straggler{{Pipeline: 0, Factor: 1.2}}
		maxRes, err := sys.Simulate(sys.MaxFrequencyPlan(), straggler)
		if err != nil {
			log.Fatal(err)
		}
		fast := sys.PlanFor(0)
		slow := sys.PlanFor(base.IterTime * 1.2)
		full, err := sys.SimulatePerPipeline(func(p int) perseus.Plan {
			if p == 0 {
				return fast
			}
			return slow
		}, straggler)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("with 1.2x straggler: %.1f%% cluster-wide savings\n\n",
			100*(1-full.Energy/maxRes.Energy))
	}
}
