package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/gpu"
	"perseus/internal/grid"
)

// TestETagMatch pins the RFC 9110 §13.1.2 weak-comparison contract the
// conditional endpoints share: weak validators (W/ prefix) compare
// equal to their strong form, If-None-Match may carry a comma-
// separated list, and "*" matches anything. The pre-PR parser rejected
// weak and list forms, so a proxy-weakened validator made every
// long-poll return immediately instead of parking.
func TestETagMatch(t *testing.T) {
	cases := []struct {
		header, current string
		want            bool
	}{
		{`"v3"`, `"v3"`, true},
		{`"v3"`, `"v4"`, false},
		{`W/"v3"`, `"v3"`, true}, // weak validator, strong current
		{`w/"v3"`, `"v3"`, true}, // scheme is case-insensitive
		{`W/"v3"`, `W/"v3"`, true},
		{`"v2", "v3"`, `"v3"`, true},
		{`"v1", "v2"`, `"v3"`, false},
		{`"v2", W/"v3", "v4"`, `"v3"`, true},
		{` "v3" `, `"v3"`, true}, // surrounding whitespace
		{`*`, `"v3"`, true},
		{`*`, `"anything"`, true},
		{``, `"v3"`, false},
		{`v3`, `"v3"`, true}, // unquoted degenerate form still compares
	}
	for _, c := range cases {
		if got := etagMatch(c.header, c.current); got != c.want {
			t.Errorf("etagMatch(%q, %q) = %v, want %v", c.header, c.current, got, c.want)
		}
	}
}

// TestHubWatchBump pins the hub's broadcast semantics: all watchers of
// a generation share one channel, a bump closes exactly that channel
// (waking every watcher in one O(1) operation), the next watch starts
// a fresh generation, and bumping a quiet topic is a no-op.
func TestHubWatchBump(t *testing.T) {
	h := newHub(nil)
	h.bump("quiet") // no watchers: must not panic or allocate a topic
	if len(h.topics) != 0 {
		t.Fatalf("bump of a quiet topic left %d topics", len(h.topics))
	}

	w1 := h.watch("a")
	w2 := h.watch("a")
	if w1 != w2 {
		t.Fatal("watchers of one generation must share a channel")
	}
	other := h.watch("b")
	h.bump("a")
	select {
	case <-w1:
	default:
		t.Fatal("bump did not close the topic channel")
	}
	select {
	case <-other:
		t.Fatal("bump of topic a closed topic b")
	default:
	}
	w3 := h.watch("a")
	if w3 == w1 {
		t.Fatal("watch after bump returned the spent channel")
	}
	select {
	case <-w3:
		t.Fatal("fresh generation channel is already closed")
	default:
	}
}

// TestOneBumpWakesAllWaiters is the fan-out contract at the server
// layer: N parked long-pollers, one version bump, one hub broadcast —
// and the wake histogram gains exactly N observations, one per waiter.
func TestOneBumpWakesAllWaiters(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	cl := client.NewServerClient(ts.URL)
	dep, err := cl.FetchSchedule(id)
	if err != nil {
		t.Fatal(err)
	}
	reg := srv.Metrics()
	base, _ := reg.HistogramCount("perseus_longpoll_wake_seconds")
	baseB, _ := reg.CounterValue("perseus_hub_broadcasts_total")

	const waiters = 16
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			s2, changed, err := cl.FetchScheduleIfChanged(id, dep.Version, 10*time.Second)
			if err != nil || !changed || s2.Version <= dep.Version {
				t.Errorf("waiter: changed=%v version=%d err=%v", changed, s2.Version, err)
			}
		}()
	}
	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", waiters)
	if err := srv.SetStraggler(id, StragglerNotice{Degree: 1.5}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if n, _ := reg.HistogramCount("perseus_longpoll_wake_seconds"); n-base != waiters {
		t.Fatalf("wake histogram grew by %d, want %d", n-base, waiters)
	}
	if b, _ := reg.CounterValue("perseus_hub_broadcasts_total"); b-baseB != 1 {
		t.Fatalf("broadcasts grew by %v, want 1 (one bump wakes everyone)", b-baseB)
	}
	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", 0)
}

// waitGaugeEquals polls the named gauge until it reaches want.
func waitGaugeEquals(t *testing.T, srv *Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, _ := srv.Metrics().GaugeValue(name)
		if v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %v, want %v", name, v, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// sinkRW records whether a handler wrote anything at all — the
// disconnect regression needs to distinguish "no response" from any
// written status.
type sinkRW struct {
	mu     sync.Mutex
	hdr    http.Header
	wrote  bool
	status int
}

func (w *sinkRW) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}

func (w *sinkRW) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wrote = true
	return len(p), nil
}

func (w *sinkRW) WriteHeader(code int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.wrote = true
	w.status = code
}

func (w *sinkRW) snapshot() (bool, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wrote, w.status
}

// TestScheduleDisconnectWhileParked is the regression for the parked
// long-poll ignoring client disconnects: a waiter whose connection
// goes away must be released immediately — the waiters gauge returns
// to zero, the cancellation counter ticks, and the handler writes no
// response (pre-PR the park held the goroutine and its timer until the
// full wait expired, so 10⁵ churned clients would each pin a waiter
// for up to 30 s).
func TestScheduleDisconnectWhileParked(t *testing.T) {
	srv := New()
	handler := srv.Handler()
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	dep, err := srv.Schedule(id)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/jobs/"+id+"/schedule?wait=20", nil).WithContext(ctx)
	req.Header.Set("If-None-Match", etag(dep.Version))
	rw := &sinkRW{}
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		handler.ServeHTTP(rw, req)
	}()

	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", 1)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler still parked 10s after the client disconnected")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("park outlived the disconnect: %v", elapsed)
	}
	// The middleware records its response headers (trace id) before the
	// park, but the schedule handler itself must write neither a status
	// nor a body to the dead connection.
	if wrote, status := rw.snapshot(); wrote {
		t.Fatalf("handler wrote status %d to a disconnected client", status)
	}
	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", 0)
	if c, _ := srv.Metrics().CounterValue("perseus_longpoll_cancelled_total"); c != 1 {
		t.Fatalf("cancelled counter %v, want 1", c)
	}
}

// TestCharacterizeFailThenRetry is the regression for the double-close
// panic: a failed characterization left the job's done channel closed,
// and a retried profile upload re-ran close(j.done) — crashing the
// server. A failed attempt must be retryable: the retry installs a
// fresh done channel and the second upload characterizes cleanly.
func TestCharacterizeFailThenRetry(t *testing.T) {
	srv := New()
	id, err := srv.Register(JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := gpu.ByName("A100-PCIe")
	if err != nil {
		t.Fatal(err)
	}
	full := buildUpload(t, g, 2, 4)

	// Only stage 0's measurements: the upload assembles, but the
	// asynchronous characterization fails on the missing stage-1 op
	// profiles.
	partial := ProfileUpload{PBlocking: full.PBlocking}
	for _, m := range full.Measurements {
		if m.Virtual == 0 {
			partial.Measurements = append(partial.Measurements, m)
		}
	}
	if err := srv.UploadProfile(id, partial); err != nil {
		t.Fatalf("partial upload rejected synchronously: %v", err)
	}
	if err := srv.WaitCharacterized(id); err == nil {
		t.Fatal("partial profile characterized successfully; want failure")
	}

	// The retry: pre-PR this passed the "already profiled" guard and
	// panicked on the double close. Now it must run a fresh attempt.
	if err := srv.UploadProfile(id, full); err != nil {
		t.Fatalf("retry rejected: %v", err)
	}
	if err := srv.WaitCharacterized(id); err != nil {
		t.Fatalf("retry failed to characterize: %v", err)
	}
	dep, err := srv.Schedule(id)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Ready {
		t.Fatalf("schedule not ready after successful retry: %+v", dep)
	}

	// A third upload after success hits the already-profiled guard.
	if err := srv.UploadProfile(id, full); err == nil || !strings.Contains(err.Error(), "already profiled") {
		t.Fatalf("upload after success: %v, want already-profiled error", err)
	}
}

// TestScheduleConditionalWeakAndList drives the RFC 9110 forms through
// the HTTP endpoint: a weak validator and a list containing the
// current version must both be treated as a match (304, not an
// immediate 200).
func TestScheduleConditionalWeakAndList(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	dep, err := srv.Schedule(id)
	if err != nil {
		t.Fatal(err)
	}
	cur := etag(dep.Version)

	for _, inm := range []string{
		"W/" + cur,
		`"v-stale", ` + cur,
		`"v-stale", W/` + cur + `, "v-other"`,
		"*",
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id+"/schedule", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if got := resp.Header.Get("ETag"); got != cur {
			t.Errorf("If-None-Match %q: ETag %q, want %q", inm, got, cur)
		}
	}
}

// TestGridPlanConditional pins the new conditional contract on
// GET /grid/plan: responses carry an ETag naming the plan's cache key,
// a matching If-None-Match answers 304 without solving, and a parked
// ?wait poll wakes when a forecast revision advances the plan epoch.
func TestGridPlanConditional(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)
	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	// Unconditional fetch: a plan and its validator.
	p1, tag, changed, err := cl.FetchGridPlanIfChanged(id, 50, 0, "", "", 0)
	if err != nil || !changed || tag == "" {
		t.Fatalf("first fetch: changed=%v tag=%q err=%v", changed, tag, err)
	}
	if p1.Iterations < 50 {
		t.Fatalf("plan target not met: %+v", p1)
	}
	misses := srv.CacheStats().Misses

	// Same problem, matching validator: 304, no solve, same tag.
	_, tag2, changed, err := cl.FetchGridPlanIfChanged(id, 50, 0, "", tag, 0)
	if err != nil || changed {
		t.Fatalf("conditional refetch: changed=%v err=%v", changed, err)
	}
	if tag2 != tag {
		t.Fatalf("304 carried tag %q, want %q", tag2, tag)
	}
	if got := srv.CacheStats().Misses; got != misses {
		t.Fatalf("a 304 ran the solver: misses %d -> %d", misses, got)
	}

	// Weak form through the shared parser.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/grid/plan/"+id+"?iterations=50&deadline=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", "W/"+tag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("weak validator: status %d, want 304", resp.StatusCode)
	}

	// Different parameters resolve to a different key: immediate 200.
	_, tagOther, changed, err := cl.FetchGridPlanIfChanged(id, 60, 0, "", tag, 0)
	if err != nil || !changed || tagOther == tag {
		t.Fatalf("different params: changed=%v tag=%q err=%v", changed, tagOther, err)
	}

	// Park a waiter on the current plan, then revise the forecast: the
	// epoch advances, the hub wakes the poll, and the fresh plan
	// arrives with a new validator.
	type result struct {
		plan    grid.Plan
		tag     string
		changed bool
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		p, newTag, changed, err := cl.FetchGridPlanIfChanged(id, 50, 0, "", tag, 10*time.Second)
		ch <- result{p, newTag, changed, err}
	}()
	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", 1)
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-ch:
		if r.err != nil || !r.changed {
			t.Fatalf("parked plan poll: changed=%v err=%v", r.changed, r.err)
		}
		if r.tag == tag {
			t.Fatalf("epoch advanced but tag stayed %q", r.tag)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("plan poll still parked after the epoch bump")
	}
	waitGaugeEquals(t, srv, "perseus_longpoll_waiters", 0)
}

// countingBackend wraps the in-memory backend with call counters — the
// injection seam test's probe.
type countingBackend struct {
	inner     PlanCacheBackend
	mu        sync.Mutex
	gets, hit int
	puts      int
}

func (b *countingBackend) Get(key PlanKey) (*grid.Plan, bool) {
	p, ok := b.inner.Get(key)
	b.mu.Lock()
	b.gets++
	if ok {
		b.hit++
	}
	b.mu.Unlock()
	return p, ok
}

func (b *countingBackend) Put(key PlanKey, p *grid.Plan) {
	b.mu.Lock()
	b.puts++
	b.mu.Unlock()
	b.inner.Put(key, p)
}

func (b *countingBackend) Clear()   { b.inner.Clear() }
func (b *countingBackend) Len() int { return b.inner.Len() }

// TestPlanCacheBackendInjection pins the PlanCacheBackend seam: a
// swapped-in backend sees the canonical Get-miss → Put → Get-hit
// sequence, the stats stay coherent, and the served plans are
// identical either way.
func TestPlanCacheBackendInjection(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)
	backend := &countingBackend{inner: NewMemoryPlanCache()}
	srv.SetPlanCacheBackend(backend)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	p1, err := cl.FetchGridPlan(id, 50, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cl.FetchGridPlan(id, 50, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if p1.CarbonG != p2.CarbonG {
		t.Fatalf("backend-cached plan differs: %v vs %v", p1.CarbonG, p2.CarbonG)
	}
	backend.mu.Lock()
	gets, hits, puts := backend.gets, backend.hit, backend.puts
	backend.mu.Unlock()
	if puts != 1 {
		t.Fatalf("backend saw %d puts, want 1", puts)
	}
	if gets < 2 || hits != 1 {
		t.Fatalf("backend saw %d gets / %d hits, want >=2 / 1", gets, hits)
	}
	st := srv.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// Epoch invalidation clears the injected backend too.
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if backend.Len() != 0 {
		t.Fatalf("signal re-install left %d entries in the injected backend", backend.Len())
	}
	if st := srv.CacheStats(); st.Entries != 0 {
		t.Fatalf("stats report %d entries after clear", st.Entries)
	}

	// PlanKey.Canonical is the cross-replica serialization: distinct
	// problems must canonicalize distinctly.
	a := PlanKey{Epoch: 1, Table: 42, Target: 10, Objective: grid.ObjectiveCarbon, Scale: 1}
	b := a
	b.Target = 20
	if a.Canonical() == b.Canonical() {
		t.Fatalf("distinct keys share canonical form %q", a.Canonical())
	}
}
