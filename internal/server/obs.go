package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/obs"
	"perseus/internal/region"
)

// serverObs bundles the server's observability surface: one metric
// registry, one event ring, and one tracer (internal/obs), plus the
// typed handles every resource module records into. All handles are
// registered once at construction, so hot paths never touch the
// registry map.
//
// The metric catalog (all names prefixed perseus_) is documented in
// README.md's Observability section; the golden exposition test and
// the CI smoke scrape both pin the core series.
type serverObs struct {
	reg     *obs.Registry
	ring    *obs.Ring
	tracer  *obs.Tracer
	slo     *obs.SLOEngine
	started time.Time // real wall clock, for /healthz uptime

	// HTTP middleware.
	httpRequests *obs.CounterVec   // route, method, code
	httpLatency  *obs.HistogramVec // route
	httpInFlight *obs.Gauge

	// Plan cache (cache.go).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge

	// Controller runtime (controller.go).
	ticks       *obs.Counter
	tickDur     *obs.Histogram
	replans     *obs.Counter
	replanFails *obs.Counter
	warmStarts  *obs.Counter
	planWorkers *obs.Gauge

	// Job registry and deployment (jobs.go, store.go).
	jobsRegistered *obs.Counter
	characterized  *obs.CounterVec // outcome
	versionBumps   *obs.Counter

	// Long-poll fan-out (hub.go, jobs.go, grid.go).
	waiters       *obs.Gauge
	wakeDur       *obs.Histogram
	cancelled     *obs.Counter
	hubBroadcasts *obs.Counter
	hubTopics     *obs.Gauge

	// Planning layers, via the obs.InstrumentPlanner decorator.
	planLatency *obs.HistogramVec // planner, objective
	planErrors  *obs.CounterVec   // planner

	// Per-job realized-minus-predicted carbon drift (store.go).
	driftG *obs.GaugeVec // job

	// Energy-bloat ledger (ledger.go): the ledger itself, the per-job
	// decomposition families, and the fleet rollup's cached handles.
	ledger                                                       *obs.Ledger
	jobEnergy                                                    *obs.CounterVec // job, component
	jobRemoved                                                   *obs.GaugeVec   // job
	fleetRealizedJ, fleetFloorJ, fleetResidualJ, fleetMigrationJ *obs.Counter
	fleetRemovedJ                                                *obs.Gauge
	fleetRealizedC, fleetFloorC, fleetResidualC, fleetMigrationC *obs.Counter
	fleetTemporalC                                               *obs.Gauge
	fleetDriftAbsC, fleetCoveredC                                *obs.Counter

	// Tracing and SLO self-monitoring (this file).
	traceSpans  *obs.CounterVec // span
	traceDrops  *obs.Gauge
	sloStatus   *obs.GaugeVec   // slo: 0 ok, 1 warn, 2 breach
	sloBreaches *obs.CounterVec // slo
}

// Span names the server records (the full taxonomy is documented in
// README.md's "Tracing & SLOs" section). obs.SpanPlannerSolve covers
// the planner layer.
const (
	spanStoreSnapshot  = "store.snapshot"
	spanCacheLookup    = "cache.lookup"
	spanReplanInputs   = "replan.inputs"
	spanReplanFreeze   = "replan.freeze"
	spanReplanFcast    = "replan.forecast"
	spanReplanSolve    = "replan.solve"
	spanReplanBump     = "replan.bump"
	spanControllerTick = "controller.tick"
	spanLongpollPark   = "longpoll.park"
)

// Default server SLO rules. Thresholds are sized to the repo's
// simulated workloads: a synchronous grid solve runs in milliseconds
// (1 s p99 is pathological), a replan failure ratio above 10% means
// the control loop is degrading schedules, a long-poller should
// always wake before the 30 s maxScheduleWait cap (25 s p99 leaves
// headroom for slow ticks), and forecast drift above 25% of
// drift-plus-realized carbon (|drift| > realized/3) means schedules
// are being planned against a forecast the grid no longer resembles.
// The drift rule reads the ledger's fleet counters and names the
// worst-drifting job on a violation.
func defaultSLOs(led *obs.Ledger) []obs.SLO {
	return []obs.SLO{{
		Name:      "plan-latency-p99",
		Objective: "p99 planner solve latency stays at or below 1s",
		Metric:    "perseus_planner_plan_duration_seconds",
		Quantile:  0.99,
		Max:       1.0,
		SpanName:  obs.SpanPlannerSolve,
	}, {
		Name:       "replan-failure-ratio",
		Objective:  "rolling-horizon re-plan failures stay at or below 10% of roll-forwards",
		BadMetric:  "perseus_controller_replan_failures_total",
		GoodMetric: "perseus_controller_replans_total",
		Max:        0.10,
		SpanName:   spanReplanSolve,
	}, {
		Name:      "longpoll-wake-p99",
		Objective: "p99 long-poll park-to-wake stays at or below 25s",
		Metric:    "perseus_longpoll_wake_seconds",
		Quantile:  0.99,
		Max:       25.0,
		SpanName:  spanLongpollPark,
	}, {
		Name:       "carbon-drift-ratio",
		Objective:  "forecast carbon drift stays at or below 25% of drift-plus-realized carbon over forecast-covered spans",
		BadMetric:  "perseus_fleet_bloat_drift_abs_carbon_g_total",
		GoodMetric: "perseus_fleet_bloat_forecast_covered_carbon_g_total",
		Max:        0.25,
		Detail: func() string {
			job, ratio := led.WorstDriftJob()
			if job == "" {
				return ""
			}
			return job + " (ratio " + strconv.FormatFloat(ratio, 'g', 3, 64) + ")"
		},
	}}
}

func newServerObs() *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{
		reg:     r,
		ring:    obs.NewRing(0),
		tracer:  obs.NewTracer(0),
		started: time.Now(),

		httpRequests: r.CounterVec("perseus_http_requests_total",
			"HTTP requests served, by normalized route, method, and status code.",
			"route", "method", "code"),
		httpLatency: r.HistogramVec("perseus_http_request_duration_seconds",
			"HTTP request latency by normalized route.", nil, "route"),
		httpInFlight: r.Gauge("perseus_http_in_flight_requests",
			"HTTP requests currently being served."),

		cacheHits: r.Counter("perseus_plan_cache_hits_total",
			"Plan-cache lookups answered from a cached or in-flight solve."),
		cacheMisses: r.Counter("perseus_plan_cache_misses_total",
			"Plan-cache lookups that started a fresh solve."),
		cacheCoalesced: r.Counter("perseus_plan_cache_coalesced_total",
			"Plan-cache hits that waited on an in-flight solve (single-flight followers)."),
		cacheEvictions: r.Counter("perseus_plan_cache_evictions_total",
			"Plan-cache entries dropped by epoch invalidation or the size-cap flush."),
		cacheEntries: r.Gauge("perseus_plan_cache_entries",
			"Plan-cache entries currently resident."),

		ticks: r.Counter("perseus_controller_ticks_total",
			"Completed controller ticks (background loop and synchronous)."),
		tickDur: r.Histogram("perseus_controller_tick_duration_seconds",
			"Wall-clock duration of one controller tick across every managed job.", nil),
		replans: r.Counter("perseus_controller_replans_total",
			"Successful rolling-horizon re-plans (client replans, ManageJob, and controller ticks)."),
		replanFails: r.Counter("perseus_controller_replan_failures_total",
			"Rolling-horizon roll-forwards that failed (forecast issue or solve error)."),
		warmStarts: r.Counter("perseus_planner_warm_starts_total",
			"Roll-forwards that reused the running plan because the forecast revision left the remaining window unchanged."),
		planWorkers: r.Gauge("perseus_planner_workers",
			"Worker-pool size the region planner fans candidate evaluations across (GOMAXPROCS)."),

		jobsRegistered: r.Counter("perseus_jobs_registered_total",
			"Training jobs registered."),
		characterized: r.CounterVec("perseus_characterizations_total",
			"Frontier characterizations finished, by outcome.", "outcome"),
		versionBumps: r.Counter("perseus_schedule_version_bumps_total",
			"Deployed-schedule version bumps across all jobs (each wakes that job's long-pollers)."),

		waiters: r.Gauge("perseus_longpoll_waiters",
			"Long-poll requests currently parked on a hub watch."),
		wakeDur: r.Histogram("perseus_longpoll_wake_seconds",
			"Time a long-poller waited before a hub broadcast woke it.", nil),
		cancelled: r.Counter("perseus_longpoll_cancelled_total",
			"Long-poll requests whose client disconnected while parked."),
		hubBroadcasts: r.Counter("perseus_hub_broadcasts_total",
			"Notification-hub topic broadcasts (each wakes every watcher of the topic at once)."),
		hubTopics: r.Gauge("perseus_hub_topics",
			"Notification-hub topics with a live watch channel."),

		planLatency: r.HistogramVec("perseus_planner_plan_duration_seconds",
			"Planning latency through the plan.Planner contract, by layer and objective.",
			nil, "planner", "objective"),
		planErrors: r.CounterVec("perseus_planner_plan_errors_total",
			"Failed Plan calls by layer.", "planner"),

		driftG: r.GaugeVec("perseus_job_carbon_drift_g",
			"Realized minus forecast-predicted carbon over the forecast-covered spans, per job.",
			"job"),

		ledger: obs.NewLedger(0),
		jobEnergy: r.CounterVec("perseus_job_energy_joules_total",
			"Per-job settled energy decomposed by the bloat ledger: realized, frontier-optimal floor, residual_bloat, migration overhead.",
			"job", "component"),
		jobRemoved: r.GaugeVec("perseus_job_energy_intrinsic_removed_joules",
			"Per-job intrinsic bloat removed vs the always-Tmin baseline at equal work (signed: a span run above T* burns more than flat-out).",
			"job"),
		fleetRemovedJ: r.Gauge("perseus_fleet_bloat_intrinsic_removed_joules",
			"Fleet-wide intrinsic bloat removed vs the always-Tmin baseline at equal work (signed)."),
		fleetTemporalC: r.Gauge("perseus_fleet_bloat_temporal_saved_carbon_g",
			"Fleet-wide carbon saved by when energy was drawn, vs the best signal-blind fixed baseline (signed: negative means timing lost carbon)."),
		fleetDriftAbsC: r.Counter("perseus_fleet_bloat_drift_abs_carbon_g_total",
			"Fleet-wide absolute realized-minus-forecast carbon drift over forecast-covered spans (drift-SLO numerator)."),
		fleetCoveredC: r.Counter("perseus_fleet_bloat_forecast_covered_carbon_g_total",
			"Fleet-wide realized carbon over exactly the forecast-covered spans (drift-SLO denominator complement)."),

		traceSpans: r.CounterVec("perseus_trace_spans_total",
			"Finished trace spans committed to the span ring, by span name.", "span"),
		traceDrops: r.Gauge("perseus_trace_spans_dropped_total",
			"Finished spans the bounded span ring has overwritten."),
		sloStatus: r.GaugeVec("perseus_slo_status",
			"Per-SLO multi-window burn-rate status: 0 ok, 1 warn, 2 breach.", "slo"),
		sloBreaches: r.CounterVec("perseus_slo_breaches_total",
			"Transitions of an SLO into breach.", "slo"),
	}
	// The planner worker-pool gauge is static per process: the region
	// planner sizes its candidate-evaluation pool to GOMAXPROCS.
	o.planWorkers.Set(float64(region.DefaultWorkers()))
	// Fleet rollup families, with component handles pre-rendered so
	// settlement never touches the registry map.
	fleetEnergy := r.CounterVec("perseus_fleet_bloat_energy_joules_total",
		"Fleet-wide settled energy decomposed by the bloat ledger: realized, frontier-optimal floor, residual_bloat, migration overhead.",
		"component")
	o.fleetRealizedJ = fleetEnergy.With("realized")
	o.fleetFloorJ = fleetEnergy.With("floor")
	o.fleetResidualJ = fleetEnergy.With("residual_bloat")
	o.fleetMigrationJ = fleetEnergy.With("migration")
	fleetCarbon := r.CounterVec("perseus_fleet_bloat_carbon_g_total",
		"Fleet-wide settled carbon decomposed by the bloat ledger at each span's mean realized intensity.",
		"component")
	o.fleetRealizedC = fleetCarbon.With("realized")
	o.fleetFloorC = fleetCarbon.With("floor")
	o.fleetResidualC = fleetCarbon.With("residual_bloat")
	o.fleetMigrationC = fleetCarbon.With("migration")

	o.tracer.OnPush(func(sp obs.Span) {
		o.traceSpans.With(sp.Name).Inc()
		o.traceDrops.Set(float64(o.tracer.Drops()))
	})
	o.slo = obs.NewSLOEngine(r, o.tracer, defaultSLOs(o.ledger))
	o.slo.OnTransition(func(rule obs.SLO, from, to string, st obs.SLOStatus) {
		if to == obs.StatusBreach {
			o.sloBreaches.With(rule.Name).Inc()
		}
		kv := []string{
			"slo", rule.Name, "from", from, "to", to,
			"value", strconv.FormatFloat(st.Value, 'g', 4, 64),
			"threshold", strconv.FormatFloat(st.Threshold, 'g', 4, 64),
		}
		if st.WorstTraceID != "" {
			kv = append(kv, "trace_id", st.WorstTraceID)
		}
		if st.Detail != "" {
			kv = append(kv, "worst", st.Detail)
		}
		o.ring.Emit(time.Unix(0, int64(st.SinceUnixS*1e9)), "slo."+to, 0, kv...)
	})
	return o
}

// traceKV appends a trace_id label to an event's key-value pairs when
// ctx carries an active trace — the breach-to-trace cross-link every
// emit site inside a traced request uses. A nil ctx passes through.
func traceKV(ctx context.Context, kv ...string) []string {
	if ctx == nil {
		return kv
	}
	if tid := obs.TraceIDFromContext(ctx); tid != "" {
		return append(kv, "trace_id", tid)
	}
	return kv
}

// sloLevel maps a status string to the perseus_slo_status gauge value.
func sloLevel(status string) float64 {
	switch status {
	case obs.StatusWarn:
		return 1
	case obs.StatusBreach:
		return 2
	}
	return 0
}

// evalSLOs runs one SLO evaluation at now, mirrors each rule's level
// into the status gauge, and returns the statuses. Transitions fire
// the engine hook (breach counter + slo.* events) inside the call.
// Driven by the controller tick and the /debug/slo and /healthz
// endpoints — the engine has no goroutine of its own.
func (s *Server) evalSLOs(now time.Time) []obs.SLOStatus {
	sts := s.obs.slo.Evaluate(now)
	for _, st := range sts {
		s.obs.sloStatus.With(st.Name).Set(sloLevel(st.Status))
	}
	return sts
}

// SLOs evaluates the server's SLO rules now and returns the per-rule
// statuses (the non-HTTP entry point behind GET /debug/slo).
func (s *Server) SLOs() []obs.SLOStatus {
	return s.evalSLOs(s.st.now())
}

// Traces returns the assembled span trees, newest first (the non-HTTP
// entry point behind GET /debug/traces). limit <= 0 returns every
// retained trace; minDur and op filter like the endpoint parameters.
func (s *Server) Traces(limit int, minDur time.Duration, op string) []obs.Trace {
	return s.obs.tracer.Traces(limit, minDur, op)
}

// routePattern normalizes a request path to a bounded label set, so
// per-job and per-action paths cannot explode metric cardinality.
func routePattern(path string) string {
	switch path {
	case "/jobs", "/fleet/cap", "/fleet/status", "/grid/signal", "/grid/forecast",
		"/regions", "/regions/plan", "/controller",
		"/metrics", "/healthz", "/debug/events", "/debug/traces", "/debug/slo",
		"/debug/ledger":
		return path
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	switch {
	case parts[0] == "jobs" && len(parts) == 2 && parts[1] != "":
		return "/jobs/{id}"
	case parts[0] == "jobs" && len(parts) == 3:
		switch parts[2] {
		case "profile", "schedule", "straggler", "frontier", "table",
			"allocation", "emissions", "rollout", "placement":
			return "/jobs/{id}/" + parts[2]
		}
	case parts[0] == "grid" && len(parts) == 3 && parts[1] == "plan":
		return "/grid/plan/{id}"
	case parts[0] == "grid" && len(parts) == 3 && parts[1] == "replan":
		return "/grid/replan/{id}"
	case parts[0] == "controller" && len(parts) == 2:
		switch parts[1] {
		case "jobs", "start", "stop", "tick":
			return "/controller/" + parts[1]
		}
	}
	return "other"
}

// statusRecorder captures the response status code for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// middleware instruments every endpoint: request count by
// (route, method, code), latency by route, an in-flight gauge, and a
// root trace span. An incoming W3C traceparent header joins the
// request to the caller's trace (so client-side calls and the server's
// spans share one trace ID); absent or malformed headers start a fresh
// trace. The response carries X-Trace-Id and a traceparent of the root
// span, so callers can fetch the assembled tree from /debug/traces.
func (o *serverObs) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routePattern(r.URL.Path)
		o.httpInFlight.Add(1)
		start := time.Now()
		traceID, parentID, _ := obs.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, span := o.tracer.StartRemote(r.Context(), "http "+route, traceID, parentID)
		span.SetAttr("method", r.Method)
		span.SetAttr("route", route)
		w.Header().Set("X-Trace-Id", span.TraceID())
		w.Header().Set("Traceparent", obs.FormatTraceparent(span.TraceID(), span.SpanID()))
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))
		o.httpInFlight.Add(-1)
		o.httpLatency.With(route).Observe(time.Since(start).Seconds())
		o.httpRequests.With(route, r.Method, strconv.Itoa(rec.code)).Inc()
		span.SetAttr("code", strconv.Itoa(rec.code))
		if rec.code >= http.StatusInternalServerError {
			span.Fail(fmt.Errorf("HTTP %d", rec.code))
		}
		span.End()
	})
}

// HealthResponse is the GET /healthz liveness and readiness view.
type HealthResponse struct {
	// Status is the worst per-SLO status: ok, warn, or breach.
	Status string `json:"status"`

	// Ready is false while any SLO is in breach — the load-balancer
	// readiness signal.
	Ready bool `json:"ready"`

	UptimeS           float64 `json:"uptime_s"`
	Jobs              int     `json:"jobs"`
	Regions           int     `json:"regions"`
	SignalInstalled   bool    `json:"signal_installed"`
	ForecastInstalled bool    `json:"forecast_installed"`
	ControllerRunning bool    `json:"controller_running"`

	// SLOs carries every rule's current multi-window status.
	SLOs []obs.SLOStatus `json:"slos"`
}

// Health reports the server's liveness summary plus per-SLO status:
// Status is the worst rule's level and Ready is false only on a
// sustained (both-window) breach.
func (s *Server) Health() HealthResponse {
	s.st.mu.Lock()
	jobs := len(s.st.jobs)
	regions := len(s.st.regions)
	sig := s.st.signal != nil
	fc := s.st.fspec != nil
	s.st.mu.Unlock()
	s.ctrl.mu.Lock()
	running := s.ctrl.running
	s.ctrl.mu.Unlock()
	slos := s.evalSLOs(s.st.now())
	worst := obs.StatusOK
	for _, st := range slos {
		if sloLevel(st.Status) > sloLevel(worst) {
			worst = st.Status
		}
	}
	return HealthResponse{
		Status:            worst,
		Ready:             worst != obs.StatusBreach,
		UptimeS:           time.Since(s.obs.started).Seconds(),
		Jobs:              jobs,
		Regions:           regions,
		SignalInstalled:   sig,
		ForecastInstalled: fc,
		ControllerRunning: running,
		SLOs:              slos,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.Health())
}

// handleMetrics serves the registry in Prometheus text exposition
// format (hand-rolled — the module has zero external dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

// EventsResponse is the GET /debug/events view: structured events,
// oldest first.
type EventsResponse struct {
	Events []obs.Event `json:"events"`
}

// Events returns the most recent events (limit <= 0 returns the whole
// retained window).
func (s *Server) Events(limit int) EventsResponse {
	return EventsResponse{Events: s.obs.ring.Snapshot(limit)}
}

// EventsSince returns the retained events with Seq > since, oldest
// first, capped at limit — the cursor read a poller advances with (see
// Ring.SnapshotSince for the cap and gap semantics).
func (s *Server) EventsSince(since uint64, limit int) EventsResponse {
	return EventsResponse{Events: s.obs.ring.SnapshotSince(since, limit)}
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n: "+v, http.StatusBadRequest)
			return
		}
		limit = n
	}
	var resp EventsResponse
	if v := r.URL.Query().Get("since"); v != "" {
		since, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+v, http.StatusBadRequest)
			return
		}
		resp = s.EventsSince(since, limit)
	} else {
		resp = s.Events(limit)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// TracesResponse is the GET /debug/traces view: assembled span trees,
// newest first.
type TracesResponse struct {
	Traces []obs.Trace `json:"traces"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	limit := 0
	if v := q.Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n: "+v, http.StatusBadRequest)
			return
		}
		limit = n
	}
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			http.Error(w, "bad min_ms: "+v, http.StatusBadRequest)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	writeJSON(w, TracesResponse{Traces: s.Traces(limit, minDur, q.Get("op"))})
}

// SLOResponse is the GET /debug/slo view: every rule evaluated now.
type SLOResponse struct {
	SLOs []obs.SLOStatus `json:"slos"`
}

func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, SLOResponse{SLOs: s.SLOs()})
}

// Metrics exposes the server's registry (test and embedding hook).
func (s *Server) Metrics() *obs.Registry { return s.obs.reg }
