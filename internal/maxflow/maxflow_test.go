package maxflow

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMaxFlowClassic(t *testing.T) {
	// CLRS figure: max flow 23.
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); math.Abs(got-23) > 1e-9 {
		t.Fatalf("max flow = %v, want 23", got)
	}
	side := g.MinCutSide(0)
	if !side[0] || side[5] {
		t.Fatal("cut does not separate source from sink")
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Fatalf("disconnected max flow = %v, want 0", got)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 3, 3)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 4)
	if got := g.MaxFlow(0, 3); math.Abs(got-7) > 1e-9 {
		t.Fatalf("max flow = %v, want 7", got)
	}
}

func TestMinCutValueEqualsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(6)
		g := New(n)
		type e struct {
			u, v int
			c    float64
		}
		var es []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					c := rng.Float64() * 10
					g.AddEdge(u, v, c)
					es = append(es, e{u, v, c})
				}
			}
		}
		flow := g.MaxFlow(0, n-1)
		side := g.MinCutSide(0)
		var cut float64
		for _, ed := range es {
			if side[ed.u] && !side[ed.v] {
				cut += ed.c
			}
		}
		if math.Abs(flow-cut) > 1e-6 {
			t.Fatalf("trial %d: flow %v != cut %v", trial, flow, cut)
		}
	}
}

func TestBoundedSimpleChain(t *testing.T) {
	// s(0) -> a(1) -> t(2); both edges cuttable with small uppers.
	edges := []BoundedEdge{
		{From: 0, To: 1, Lower: 0, Upper: 5},
		{From: 1, To: 2, Lower: 0, Upper: 3},
	}
	res, err := MinCutWithBounds(3, edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-3) > 1e-9 {
		t.Fatalf("cut value = %v, want 3", res.Value)
	}
	if !res.SSide[0] || res.SSide[2] {
		t.Fatal("cut does not separate s from t")
	}
}

func TestBoundedLowerRewardsBackEdge(t *testing.T) {
	// Diamond where one forward edge is uncuttable (upper=inf, lower=2):
	//   s -> a (upper 10), a -> t (inf, lower 2)
	//   s -> b (upper 4),  b -> t (upper 6)
	// plus a cross edge b -> a with lower 1, upper 9.
	// Any finite cut must avoid a->t. Candidate cuts:
	//   {s}: 10+4 = 14
	//   {s,b}: 10+6 = 16 (b->a becomes S->T: +9) = 25
	//   {s,a}: inf (a->t)
	// So min cut is {s} with 14? But lower bounds subtract for T->S
	// edges: cut {s} has no T->S edges. Check the algorithm agrees.
	inf := math.Inf(1)
	edges := []BoundedEdge{
		{0, 1, 0, 10},
		{1, 3, 2, inf},
		{0, 2, 0, 4},
		{2, 3, 0, 6},
		{2, 1, 1, 9},
	}
	res, err := MinCutWithBounds(4, edges, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-14) > 1e-6 {
		t.Fatalf("cut value = %v, want 14 (S side %v)", res.Value, res.SSide)
	}
}

func TestBoundedInfiniteCut(t *testing.T) {
	// Single uncuttable chain: every s-t cut crosses an infinite edge.
	inf := math.Inf(1)
	edges := []BoundedEdge{
		{0, 1, 0, inf},
		{1, 2, 1, inf},
	}
	res, err := MinCutWithBounds(3, edges, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Value, 1) {
		t.Fatalf("cut value = %v, want +inf", res.Value)
	}
}

func TestBoundedInfeasible(t *testing.T) {
	// Lower bound 5 on an edge whose only continuation has upper 1:
	// no feasible flow.
	edges := []BoundedEdge{
		{0, 1, 5, 10},
		{1, 2, 0, 1},
	}
	_, err := MinCutWithBounds(3, edges, 0, 2)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBoundedRejectsBadBounds(t *testing.T) {
	if _, err := MinCutWithBounds(2, []BoundedEdge{{0, 1, 5, 2}}, 0, 1); err == nil {
		t.Error("upper < lower should error")
	}
	if _, err := MinCutWithBounds(2, []BoundedEdge{{0, 1, -1, 2}}, 0, 1); err == nil {
		t.Error("negative lower should error")
	}
	if _, err := MinCutWithBounds(2, nil, 1, 1); err == nil {
		t.Error("s == t should error")
	}
}

func TestBoundedFlowRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		n := 4 + rng.Intn(4)
		var edges []BoundedEdge
		// Random DAG (edges only forward) so feasibility is plausible;
		// layer it s=0 ... t=n-1. Give generous uppers.
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.6 {
					lo := 0.0
					if rng.Float64() < 0.3 {
						lo = rng.Float64() * 2
					}
					up := lo + 5 + rng.Float64()*10
					if rng.Float64() < 0.2 {
						up = math.Inf(1)
					}
					edges = append(edges, BoundedEdge{u, v, lo, up})
				}
			}
		}
		// Ensure a backbone path exists.
		for u := 0; u < n-1; u++ {
			edges = append(edges, BoundedEdge{u, u + 1, 0, 20})
		}
		res, err := MinCutWithBounds(n, edges, 0, n-1)
		if errors.Is(err, ErrInfeasible) {
			continue // random lower bounds may be unsatisfiable
		}
		if err != nil {
			t.Fatal(err)
		}
		// Bounds respected.
		for i, e := range edges {
			f := res.Flow[i]
			if f < e.Lower-1e-6 {
				t.Fatalf("trial %d: edge %d flow %v below lower %v", trial, i, f, e.Lower)
			}
			if !math.IsInf(e.Upper, 1) && f > e.Upper+1e-6 {
				t.Fatalf("trial %d: edge %d flow %v above upper %v", trial, i, f, e.Upper)
			}
		}
		// Conservation at interior nodes.
		net := make([]float64, n)
		for i, e := range edges {
			net[e.From] -= res.Flow[i]
			net[e.To] += res.Flow[i]
		}
		for v := 1; v < n-1; v++ {
			if math.Abs(net[v]) > 1e-6 {
				t.Fatalf("trial %d: node %d violates conservation by %v", trial, v, net[v])
			}
		}
		// Cut optimality: the returned value must not exceed any
		// enumerated cut (for small n).
		if n <= 8 {
			best := math.Inf(1)
			for mask := 0; mask < 1<<n; mask++ {
				if mask&1 == 0 || mask&(1<<(n-1)) != 0 {
					continue
				}
				var val float64
				ok := true
				for _, e := range edges {
					sIn := mask&(1<<e.From) != 0
					tIn := mask&(1<<e.To) != 0
					if sIn && !tIn {
						if math.IsInf(e.Upper, 1) {
							ok = false
							break
						}
						val += e.Upper
					} else if !sIn && tIn {
						val -= e.Lower
					}
				}
				if ok && val < best {
					best = val
				}
			}
			if res.Value > best+1e-6 {
				t.Fatalf("trial %d: cut value %v exceeds enumerated best %v", trial, res.Value, best)
			}
		}
	}
}

// TestDinicMatchesEdmondsKarp checks both solvers compute identical max
// flows on random graphs.
func TestDinicMatchesEdmondsKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(8)
		type e struct {
			u, v int
			c    float64
		}
		var es []e
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.35 {
					es = append(es, e{u, v, rng.Float64() * 10})
				}
			}
		}
		g1, g2 := New(n), New(n)
		for _, ed := range es {
			g1.AddEdge(ed.u, ed.v, ed.c)
			g2.AddEdge(ed.u, ed.v, ed.c)
		}
		f1 := g1.MaxFlow(0, n-1)
		f2 := g2.MaxFlowDinic(0, n-1)
		if math.Abs(f1-f2) > 1e-6 {
			t.Fatalf("trial %d: Edmonds-Karp %v != Dinic %v", trial, f1, f2)
		}
	}
}

// TestBoundedCutSolverEquivalence checks both solvers produce equal-value
// cuts through the lower-bounds reduction.
func TestBoundedCutSolverEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4)
		var edges []BoundedEdge
		for u := 0; u < n-1; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.55 {
					lo := 0.0
					if rng.Float64() < 0.3 {
						lo = rng.Float64()
					}
					edges = append(edges, BoundedEdge{u, v, lo, lo + 3 + rng.Float64()*8})
				}
			}
		}
		for u := 0; u < n-1; u++ {
			edges = append(edges, BoundedEdge{u, u + 1, 0, 15})
		}
		r1, err1 := MinCutWithBoundsUsing(EdmondsKarp, n, edges, 0, n-1)
		r2, err2 := MinCutWithBoundsUsing(Dinic, n, edges, 0, n-1)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: feasibility disagreement: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(r1.Value-r2.Value) > 1e-6 {
			t.Fatalf("trial %d: cut values differ: %v vs %v", trial, r1.Value, r2.Value)
		}
	}
}
