package cluster

import (
	"math"
	"testing"

	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

func testSpec(t *testing.T, g *gpu.Model, stages, micro, dp int) Spec {
	t.Helper()
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.OneFOneB(stages, micro)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{Schedule: s, Profile: p, DataParallel: dp, TensorParallel: 1}
}

func TestIterTimeMatchesProfile(t *testing.T) {
	// At all-max frequencies with balanced-ish stages, the simulated
	// iteration time must equal the DAG longest path over per-op
	// max-frequency times.
	spec := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	res, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: the heaviest stage's busy time.
	var heaviest float64
	for st := 0; st < 4; st++ {
		var busy float64
		for _, op := range spec.Schedule.Ops {
			if op.Stage != st {
				continue
			}
			tp, err := spec.Profile.For(op)
			if err != nil {
				t.Fatal(err)
			}
			busy += tp.MinTime()
		}
		heaviest = math.Max(heaviest, busy)
	}
	if res.IterTime < heaviest {
		t.Errorf("iteration time %v below heaviest stage busy %v", res.IterTime, heaviest)
	}
	if res.IterTime > heaviest*2 {
		t.Errorf("iteration time %v implausibly above heaviest stage busy %v", res.IterTime, heaviest)
	}
}

func TestEnergyDecomposition(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	res, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Energy-(res.ComputeJ+res.BlockJ)) > 1e-6 {
		t.Errorf("Energy %v != ComputeJ %v + BlockJ %v", res.Energy, res.ComputeJ, res.BlockJ)
	}
	// Eq. 3 identity: BlockJ = P_blocking * (N*T - sum of busy time).
	var busy float64
	for _, op := range spec.Schedule.Ops {
		tp, err := spec.Profile.For(op)
		if err != nil {
			t.Fatal(err)
		}
		busy += tp.MinTime()
	}
	wantBlock := spec.Profile.PBlocking * (4*res.IterTime - busy)
	if math.Abs(res.BlockJ-wantBlock) > 1e-6*wantBlock {
		t.Errorf("BlockJ = %v, want %v per Eq. 3", res.BlockJ, wantBlock)
	}
	if res.ComputeJ <= 0 || res.BlockJ <= 0 {
		t.Errorf("degenerate energy split: %+v", res)
	}
}

func TestDataParallelReplication(t *testing.T) {
	spec1 := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec1.Schedule, gpu.A100PCIe)
	r1, err := Simulate(spec1, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec4 := spec1
	spec4.DataParallel = 4
	r4, err := Simulate(spec4, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r4.IterTime-r1.IterTime) > 1e-12 {
		t.Errorf("DP should not change iteration time without stragglers: %v vs %v", r4.IterTime, r1.IterTime)
	}
	if math.Abs(r4.Energy-4*r1.Energy) > 1e-6*r1.Energy {
		t.Errorf("DP=4 energy %v, want 4x %v", r4.Energy, r1.Energy)
	}
	if len(r4.PerPipeline) != 4 {
		t.Fatalf("expected 4 pipeline results")
	}
}

func TestTensorParallelScalesEnergyOnly(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	r1, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.TensorParallel = 8
	r8, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r8.IterTime-r1.IterTime) > 1e-12 {
		t.Errorf("TP must not change time: %v vs %v", r8.IterTime, r1.IterTime)
	}
	if math.Abs(r8.Energy-8*r1.Energy) > 1e-6*r1.Energy {
		t.Errorf("TP=8 energy %v, want 8x %v", r8.Energy, r1.Energy)
	}
	if spec.GPUs() != 4*8 {
		t.Errorf("GPUs() = %d, want 32", spec.GPUs())
	}
}

func TestStragglerStretchesIteration(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 4, 8, 4)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	base, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(spec, plan, []Straggler{{Pipeline: 2, Factor: 1.3}})
	if err != nil {
		t.Fatal(err)
	}
	want := base.IterTime * 1.3
	if math.Abs(res.IterTime-want) > 1e-9*want {
		t.Errorf("straggler iteration time %v, want %v", res.IterTime, want)
	}
	// Non-straggler pipelines burn more blocking energy while waiting.
	if res.PerPipeline[0].BlockJ <= base.PerPipeline[0].BlockJ {
		t.Errorf("non-straggler blocking energy should grow: %v vs %v",
			res.PerPipeline[0].BlockJ, base.PerPipeline[0].BlockJ)
	}
	// The straggler's own computation energy grows with the factor.
	if res.PerPipeline[2].ComputeJ <= base.PerPipeline[2].ComputeJ {
		t.Errorf("straggler compute energy should grow")
	}
}

func TestExtrinsicBloatReducedBySlowingDown(t *testing.T) {
	// Figure 2: with a straggler, slowing the non-straggler pipelines to
	// the straggler's pace must save energy without delaying sync.
	spec := testSpec(t, gpu.A100PCIe, 4, 8, 2)
	fast := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	straggle := []Straggler{{Pipeline: 0, Factor: 1.25}}
	base, err := Simulate(spec, fast, straggle)
	if err != nil {
		t.Fatal(err)
	}
	// Slow every computation of both pipelines one step down the Pareto
	// frontier (a crude stand-in for a frontier schedule).
	slow := make(Plan, len(fast))
	for i, op := range spec.Schedule.Ops {
		tp, err := spec.Profile.For(op)
		if err != nil {
			t.Fatal(err)
		}
		k := len(tp.Points) / 2
		slow[i] = tp.Points[k].Freq
	}
	// Perseus deploys the slow plan to the non-straggler only; the
	// straggler keeps running as it is.
	res, err := SimulateMulti(spec, func(p int) Plan {
		if p == 0 {
			return fast
		}
		return slow
	}, straggle)
	if err != nil {
		t.Fatal(err)
	}
	if res.IterTime > base.IterTime+1e-9 {
		t.Fatalf("slowing non-critical pipelines must not extend iteration: %v vs %v (pipeline time %v)",
			res.IterTime, base.IterTime, res.PerPipeline[1].Time)
	}
	if res.Energy >= base.Energy {
		t.Errorf("slowed plan energy %v >= all-max %v: no extrinsic savings", res.Energy, base.Energy)
	}
}

func TestCommLatency(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	r0, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.CommLatency = 0.01
	r1, err := Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IterTime <= r0.IterTime {
		t.Errorf("comm latency should extend iteration: %v vs %v", r1.IterTime, r0.IterTime)
	}
}

func TestValidation(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 2, 2, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	if _, err := Simulate(Spec{}, plan, nil); err == nil {
		t.Error("nil schedule should error")
	}
	if _, err := Simulate(spec, plan[:1], nil); err == nil {
		t.Error("short plan should error")
	}
	if _, err := Simulate(spec, plan, []Straggler{{Pipeline: 9, Factor: 1.5}}); err == nil {
		t.Error("out-of-range straggler should error")
	}
	if _, err := Simulate(spec, plan, []Straggler{{Pipeline: 0, Factor: 0.5}}); err == nil {
		t.Error("speed-up straggler should error")
	}
	bad := append(Plan(nil), plan...)
	bad[0] = 123 // not on the ladder
	if _, err := Simulate(spec, bad, nil); err == nil {
		t.Error("off-profile frequency should error")
	}
}

func TestTimeline(t *testing.T) {
	spec := testSpec(t, gpu.A100PCIe, 4, 6, 1)
	plan := PlanAllMax(spec.Schedule, gpu.A100PCIe)
	spans, err := Timeline(spec, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != len(spec.Schedule.Ops) {
		t.Fatalf("%d spans for %d ops", len(spans), len(spec.Schedule.Ops))
	}
	// Spans on one stage must not overlap, and starts respect deps.
	byStage := map[int][]OpSpan{}
	for _, sp := range spans {
		if sp.Dur <= 0 || sp.Start < 0 {
			t.Fatalf("bad span %+v", sp)
		}
		if sp.Power <= 0 {
			t.Fatalf("span power %v", sp.Power)
		}
		byStage[sp.Op.Stage] = append(byStage[sp.Op.Stage], sp)
	}
	for st, list := range byStage {
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].Start+list[i-1].Dur-1e-9 {
				t.Fatalf("stage %d: spans overlap: %+v then %+v", st, list[i-1], list[i])
			}
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	spec := testSpec(t, gpu.A40, 4, 8, 2)
	plan := PlanAllMax(spec.Schedule, gpu.A40)
	r1, err := Simulate(spec, plan, []Straggler{{Pipeline: 1, Factor: 1.2}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(spec, plan, []Straggler{{Pipeline: 1, Factor: 1.2}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.IterTime != r2.IterTime {
		t.Errorf("simulation not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestAveragePowerDraw(t *testing.T) {
	// Paper §1/§8: saving energy at unchanged iteration time reduces
	// average power draw by the same fraction.
	spec := testSpec(t, gpu.A100PCIe, 4, 8, 1)
	base, err := Simulate(spec, PlanAllMax(spec.Schedule, gpu.A100PCIe), nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.AvgPowerW <= gpu.A100PCIe.BlockingW || base.AvgPowerW > gpu.A100PCIe.TDP {
		t.Errorf("baseline average power %v W outside (P_blocking, TDP]", base.AvgPowerW)
	}
	want := base.Energy / base.IterTime / float64(spec.GPUs())
	if math.Abs(base.AvgPowerW-want) > 1e-9 {
		t.Errorf("AvgPowerW = %v, want %v", base.AvgPowerW, want)
	}
}
