package experiments

import (
	"fmt"

	"perseus/internal/grid"
	"perseus/internal/plan"
)

// BloatAttributionTable renders an energy-bloat ledger rollup
// (plan.BloatSpan cumulative totals — one job's or the fleet's) as the
// paper-style attribution table: where every realized joule and gram
// went, split into the frontier-optimal floor, migration overhead, and
// residual bloat, with the counterfactual rows (intrinsic bloat
// removed vs always-T_min, temporal carbon saved vs a signal-blind
// baseline, forecast drift) underneath.
func BloatAttributionTable(title string, t plan.BloatSpan) *Table {
	tab := &Table{
		Title:  fmt.Sprintf("Energy-bloat attribution: %s", title),
		Header: []string{"Component", "Energy (kWh)", "Carbon (kg)", "Share of realized (%)"},
	}
	share := func(j float64) string {
		if t.EnergyJ <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", 100*j/t.EnergyJ)
	}
	kwh := func(j float64) string { return fmt.Sprintf("%.3f", j/grid.JoulesPerKWh) }
	kg := func(g float64) string { return fmt.Sprintf("%.3f", g/1e3) }
	tab.Rows = append(tab.Rows,
		[]string{"realized", kwh(t.EnergyJ), kg(t.CarbonG), share(t.EnergyJ)},
		[]string{"  frontier floor", kwh(t.FloorJ), kg(t.FloorC), share(t.FloorJ)},
		[]string{"  migration overhead", kwh(t.MigrationJ), kg(t.MigrationC), share(t.MigrationJ)},
		[]string{"  residual bloat", kwh(t.ResidualJ), kg(t.ResidualC), share(t.ResidualJ)},
		[]string{"intrinsic removed vs always-Tmin", kwh(t.RemovedJ), "-", "-"},
		[]string{"temporal saved vs signal-blind", "-", kg(t.TemporalSavedC), "-"},
		[]string{"forecast drift (realized - predicted)", "-", kg(t.DriftC), "-"},
	)
	tab.Notes = append(tab.Notes,
		"realized = floor + migration + residual by construction (conservation identity).",
		fmt.Sprintf("%.0f equal-work iterations settled; drift is signed (negative = forecast over-predicted).", t.Iterations))
	return tab
}
