// Package fleet is the datacenter-scale layer above per-job Perseus: a
// multi-job energy orchestrator that trades iteration time across N
// concurrent training jobs under a shared facility power envelope.
//
// Perseus (the rest of this repository) characterizes one job's
// iteration time-energy Pareto frontier and serves the schedule for
// T_opt = min(T*, T') — removing that job's intrinsic and extrinsic
// bloat. Real clusters run many jobs at once, and the highest-leverage
// datacenter knob is a fleet power cap: once every job exposes its
// frontier, a global allocator can pick each job's operating point so
// the fleet meets the cap at minimum total throughput loss. This
// generalizes extrinsic bloat from one pipeline held up by a straggler
// to a whole datacenter held down by a power envelope.
//
// The package has three parts: a fleet state model (this file), a
// marginal-cost waterfilling allocator over merged frontiers (alloc.go),
// and an event-driven multi-job simulator that replays scenario traces
// of arrivals, departures, stragglers, and cap changes (sim.go).
package fleet

import (
	"fmt"
	"math"
	"sync"

	"perseus/internal/frontier"
)

// Job is one registered training job in the fleet state model.
type Job struct {
	// ID names the job; unique within a Fleet.
	ID string

	// Table is the job's characterized time-energy frontier.
	Table *frontier.LookupTable

	// Pipelines is the number of data-parallel pipeline replicas, each
	// executing the deployed plan; it scales the job's power draw.
	// Zero means 1.
	Pipelines int

	// Weight scales the job's throughput loss in the fleet objective:
	// an allocator slows a weight-2 job half as eagerly as a weight-1
	// job for the same watts. Zero means 1.
	Weight float64

	// TPrime is the anticipated straggler iteration time in seconds;
	// 0 means no straggler. Per Perseus Eq. 2 the job gains nothing by
	// running faster than T_opt = min(T*, T'), so the allocator treats
	// T_opt as the job's free operating floor: slowing down to it costs
	// the fleet no throughput, and the power it frees can be spent on
	// other jobs.
	TPrime float64
}

func (j *Job) pipelines() int {
	if j.Pipelines <= 0 {
		return 1
	}
	return j.Pipelines
}

func (j *Job) weight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// floorIndex returns the index of the job's operating floor: the
// T_opt = min(T*, T') point under a straggler, the Tmin point otherwise.
func (j *Job) floorIndex() int {
	if j.TPrime <= 0 {
		return 0
	}
	return j.Table.LookupIndex(j.TPrime)
}

// Fleet is the mutable fleet state: registered jobs and the facility
// power cap. Safe for concurrent use.
type Fleet struct {
	mu   sync.Mutex
	jobs map[string]*Job
	ord  []string // registration order, for deterministic allocation output
	capW float64  // 0 = uncapped
}

// New returns an empty fleet with no power cap.
func New() *Fleet {
	return &Fleet{jobs: map[string]*Job{}}
}

// Add registers a job. The job's Table must be non-nil and non-empty.
func (f *Fleet) Add(j Job) error {
	if j.ID == "" {
		return fmt.Errorf("fleet: job needs an id")
	}
	if j.Table == nil || len(j.Table.Points) == 0 {
		return fmt.Errorf("fleet: job %s needs a characterized frontier table", j.ID)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.jobs[j.ID]; ok {
		return fmt.Errorf("fleet: job %s already registered", j.ID)
	}
	f.jobs[j.ID] = &j
	f.ord = append(f.ord, j.ID)
	return nil
}

// Remove deregisters a job; removing an unknown id is a no-op.
func (f *Fleet) Remove(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.jobs[id]; !ok {
		return
	}
	delete(f.jobs, id)
	for i, jid := range f.ord {
		if jid == id {
			f.ord = append(f.ord[:i], f.ord[i+1:]...)
			break
		}
	}
}

// SetStraggler records a job's anticipated straggler iteration time;
// tPrime <= 0 clears it (recovery).
func (f *Fleet) SetStraggler(id string, tPrime float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return fmt.Errorf("fleet: unknown job %s", id)
	}
	if tPrime <= 0 {
		j.TPrime = 0
	} else {
		j.TPrime = tPrime
	}
	return nil
}

// SetCap sets the fleet power cap in watts; 0 uncaps. NaN, infinite,
// or negative watts are rejected and leave the cap unchanged — a
// malformed cap silently clamped to "uncapped" would quietly lift the
// facility envelope.
func (f *Fleet) SetCap(watts float64) error {
	if math.IsNaN(watts) || math.IsInf(watts, 0) || watts < 0 {
		return fmt.Errorf("fleet: power cap must be a finite non-negative number of watts, got %v", watts)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.capW = watts
	return nil
}

// Cap returns the current fleet power cap (0 = uncapped).
func (f *Fleet) Cap() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.capW
}

// Len returns the number of registered jobs.
func (f *Fleet) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.jobs)
}

// Snapshot returns the registered jobs in registration order.
func (f *Fleet) Snapshot() []Job {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Job, 0, len(f.ord))
	for _, id := range f.ord {
		out = append(out, *f.jobs[id])
	}
	return out
}

// Allocate runs the power-budget allocator over the current fleet state
// under the current cap.
func (f *Fleet) Allocate() Allocation {
	f.mu.Lock()
	jobs := make([]Job, 0, len(f.ord))
	for _, id := range f.ord {
		jobs = append(jobs, *f.jobs[id])
	}
	capW := f.capW
	f.mu.Unlock()
	return Allocate(jobs, capW)
}
