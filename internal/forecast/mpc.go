package forecast

import (
	"fmt"
	"math"

	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/plan"
)

// Options parameterizes a rolling-horizon controller run. It is the
// shared planning request: Target iterations by DeadlineS (0 = the
// provider's forecast horizon, which it may not exceed) minimizing
// Objective at PowerScale, with Quantile selecting the forecast
// quantile the planner sees — 0 or 0.5 plans on the point forecast,
// higher values plan robustly against the pessimistic band (distant
// hours that merely look clean are discounted by their uncertainty).
type Options = plan.Request

// ExecutedInterval is one decision-grid interval the controller
// actually ran: the slices it executed, what the forecast in force
// predicted they would emit, and what they really did under the truth.
type ExecutedInterval struct {
	// StartS and EndS bound the interval in absolute signal seconds.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	// Slices are the executed frontier-point runs, back-to-back from
	// the interval start; IdleS is the remaining pause time.
	Slices []grid.Slice `json:"slices,omitempty"`
	IdleS  float64      `json:"idle_s"`

	// Iterations are exact (they do not depend on rates), as is the
	// account's EnergyJ; CarbonG and CostUSD are realized at the truth
	// signal's rates.
	Iterations float64 `json:"iterations"`
	plan.Account

	// The embedded plan.Predicted is what the forecast in force at
	// planning time predicted for the same slices; the gap between it
	// and the account is the per-interval reconciliation drift.
	plan.Predicted

	// Replanned marks the first interval executed after a fresh plan.
	Replanned bool `json:"replanned,omitempty"`
}

// Outcome is a controller run's realized result, accrued against the
// truth trace (never the forecast).
type Outcome struct {
	// Strategy names the run (provider + mode) for tables.
	Strategy string `json:"strategy"`

	// Target and DeadlineS echo the inputs (deadline resolved).
	Target    float64 `json:"target_iterations"`
	DeadlineS float64 `json:"deadline_s"`

	// Plans counts planner invocations (plan-once runs have exactly 1).
	Plans int `json:"plans"`

	// WarmStarts counts decision ticks that skipped re-optimization
	// because the forecast was unchanged across the remaining window —
	// the previous plan's suffix is still optimal and keeps executing.
	WarmStarts int `json:"warm_starts,omitempty"`

	// Feasible reports whether the target was actually completed by the
	// deadline under the truth.
	Feasible bool `json:"feasible"`

	// FinishS is the time the target was reached (-1 when it never was).
	FinishS float64 `json:"finish_s"`

	// Iterations and the embedded plan.Account total the realized run;
	// the embedded plan.Predicted totals what the forecasts in force
	// predicted for the executed slices.
	Iterations float64 `json:"iterations"`
	plan.Account
	plan.Predicted

	// Intervals holds the executed intervals in time order.
	Intervals []ExecutedInterval `json:"intervals"`
}

// Summarize implements plan.Result.
func (o *Outcome) Summarize() plan.Summary {
	return plan.Summary{
		Account:    o.Account,
		Iterations: o.Iterations,
		Plans:      o.Plans,
		Feasible:   o.Feasible,
	}
}

// PlanOnce plans on the provider's first forecast (issued at t = 0) and
// executes that plan to the end, come what may — the baseline every
// operational deployment starts from, and the one MPC must beat.
func PlanOnce(lt *frontier.LookupTable, prov Provider, truth *grid.Signal, opts Options) (*Outcome, error) {
	return run(lt, prov, truth, opts, false)
}

// Replan is the rolling-horizon MPC controller: at every interval
// boundary of the forecast grid it fetches the latest forecast,
// freezes everything already executed, and re-runs grid.Optimize over
// the remaining window with the remaining target — so the schedule
// continuously absorbs forecast revisions instead of compounding the
// first forecast's error. With PlanQuantile > 0.5 every re-plan is
// robust: it plans against the pessimistic quantile band.
func Replan(lt *frontier.LookupTable, prov Provider, truth *grid.Signal, opts Options) (*Outcome, error) {
	return run(lt, prov, truth, opts, true)
}

// Oracle runs the perfect-foresight baseline through the same
// executor: plan once on the truth itself. Its realized objective is
// the regret reference for every forecast-driven run.
func Oracle(lt *frontier.LookupTable, truth *grid.Signal, opts Options) (*Outcome, error) {
	out, err := run(lt, &Perfect{Truth: truth, HorizonS: opts.DeadlineS}, truth, opts, false)
	if err != nil {
		return nil, err
	}
	out.Strategy = "oracle"
	return out, nil
}

// run is the shared executor. Forecast intervals must align with the
// truth's cyclic interval grid (all bundled providers guarantee this);
// execution clips slices at decision boundaries regardless, so a
// misaligned provider degrades accounting resolution, not correctness.
func run(lt *frontier.LookupTable, prov Provider, truth *grid.Signal, opts Options, replanEvery bool) (*Outcome, error) {
	if prov == nil {
		return nil, fmt.Errorf("forecast: controller needs a provider")
	}
	if truth == nil || truth.Horizon() <= 0 {
		return nil, fmt.Errorf("forecast: controller needs a truth signal")
	}
	if err := truth.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	scale := opts.Scale()
	q := opts.PlanQuantile()

	fc, err := prov.At(0)
	if err != nil {
		return nil, err
	}
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	deadline, err := opts.ResolveDeadline(fc.Signal.Horizon())
	if err != nil {
		return nil, err
	}
	if deadline <= 0 {
		return nil, fmt.Errorf("forecast: deadline must be positive, got %v", opts.DeadlineS)
	}

	// Decision times: t = 0, then (under re-planning) every forecast-
	// grid interval boundary before the deadline.
	decisions := []float64{0}
	if replanEvery {
		for _, iv := range fc.Signal.Intervals {
			if iv.EndS < deadline {
				decisions = append(decisions, iv.EndS)
			}
		}
	}

	mode := "plan-once"
	if replanEvery {
		mode = "mpc"
		if q > 0.5 {
			mode = fmt.Sprintf("mpc@q%.2f", q)
		}
	}
	out := &Outcome{
		Strategy:  prov.Name() + "/" + mode,
		Target:    opts.Target,
		DeadlineS: deadline,
		FinishS:   -1,
	}
	remaining := opts.Target
	var plan *grid.Plan
	var planView *grid.Signal // the q-view the current plan was built on (absolute time)
	planAt := 0.0
	for di, d := range decisions {
		if remaining <= 1e-9*(1+opts.Target) {
			break
		}
		if di > 0 {
			if fc, err = prov.At(d); err != nil {
				return nil, err
			}
			if err := fc.Validate(); err != nil {
				return nil, err
			}
		}
		view := fc.At(q)
		if plan != nil && SignalEqualWithin(planView, view, d, deadline) {
			// Warm start: the revision left every interval in the
			// remaining window untouched (only already-executed or
			// beyond-deadline intervals changed), so the running plan's
			// suffix is still the optimum for the remaining target —
			// keep executing it instead of re-solving.
			out.WarmStarts++
		} else {
			suffix := Window(view, d, deadline)
			plan, err = grid.Optimize(lt, suffix, grid.Options{
				Target:     remaining,
				Objective:  opts.Objective,
				PowerScale: scale,
			})
			if err != nil {
				return nil, err
			}
			out.Plans++
			planAt = d
			planView = view
		}

		// Execute the plan up to the next decision time (or, for the
		// final plan, to the deadline).
		end := deadline
		if di+1 < len(decisions) {
			end = decisions[di+1]
		}
		for _, ip := range plan.Intervals {
			absStart, absEnd := planAt+ip.StartS, planAt+ip.EndS
			if absEnd <= d+1e-9 {
				continue // already executed in an earlier span (warm start keeps the old plan)
			}
			slices := ip.Slices
			if absStart < d {
				// A warm-started plan interval straddling the decision
				// time: the part before d already ran (and was recorded
				// by the previous span, idle tail included) — resume the
				// remainder from d.
				slices, _ = clipPaused(slices, absStart, d)
				absStart = d
			}
			if absStart >= end-1e-9 {
				break
			}
			if absEnd > end {
				absEnd = end
			}
			ei := ExecuteSlices(lt, truth, fc.Signal, scale, absStart, absEnd, slices)
			ei.Replanned = len(out.Intervals) == 0 || out.Intervals[len(out.Intervals)-1].EndS <= planAt
			if out.FinishS < 0 && out.Iterations+ei.Iterations >= opts.Target-1e-9 {
				need := opts.Target - out.Iterations
				at := ei.StartS
				for _, sl := range ei.Slices {
					rate := 1 / lt.PointTime(sl.Point)
					if got := sl.Seconds * rate; got < need {
						need -= got
						at += sl.Seconds
					} else {
						at += need / rate
						break
					}
				}
				out.FinishS = at
			}
			remaining -= ei.Iterations
			out.Iterations += ei.Iterations
			out.EnergyJ += ei.EnergyJ
			out.CarbonG += ei.CarbonG
			out.CostUSD += ei.CostUSD
			out.PredCarbonG += ei.PredCarbonG
			out.PredCostUSD += ei.PredCostUSD
			out.Intervals = append(out.Intervals, ei)
		}
	}
	out.Feasible = out.Iterations >= opts.Target-1e-6*(1+opts.Target)
	return out, nil
}

// Planner adapts the forecast-driven controllers to the shared
// plan.Planner contract: one job's table executed against a truth
// trace under a forecast provider, with Replan selecting rolling-
// horizon MPC (true) or plan-once (false). The request's Quantile
// flows through as the robust planning quantile.
type Planner struct {
	Table    *frontier.LookupTable
	Provider Provider
	Truth    *grid.Signal
	Replan   bool
}

// Name implements plan.Planner.
func (p *Planner) Name() string {
	if p.Replan {
		return "forecast-mpc"
	}
	return "forecast-plan-once"
}

// Plan implements plan.Planner.
func (p *Planner) Plan(req plan.Request) (plan.Result, error) {
	if p.Replan {
		return Replan(p.Table, p.Provider, p.Truth, req)
	}
	return PlanOnce(p.Table, p.Provider, p.Truth, req)
}

// SignalEqualWithin reports whether two absolute-time signals agree
// exactly (same boundaries, rates, and caps) on every interval
// overlapping (from, to) — the warm-start test: a forecast revision
// that only touched intervals outside the remaining planning window
// leaves the plan built on the old signal optimal. Exact float
// equality is deliberate: anything less re-plans, which is always
// correct, just colder.
func SignalEqualWithin(a, b *grid.Signal, from, to float64) bool {
	if a == nil || b == nil {
		return false
	}
	overlapFrom := func(ivs []grid.Interval, k int) int {
		for k < len(ivs) && ivs[k].EndS <= from+1e-9 {
			k++
		}
		return k
	}
	i, j := 0, 0
	for {
		i, j = overlapFrom(a.Intervals, i), overlapFrom(b.Intervals, j)
		aDone := i >= len(a.Intervals) || a.Intervals[i].StartS >= to-1e-9
		bDone := j >= len(b.Intervals) || b.Intervals[j].StartS >= to-1e-9
		if aDone || bDone {
			return aDone && bDone
		}
		if a.Intervals[i] != b.Intervals[j] {
			return false
		}
		i++
		j++
	}
}

// ExecuteSlices runs a planned interval's slices (back-to-back from
// the interval start, clipped at the interval end) against the truth,
// accounting realized emissions at the truth's rates and predicted
// ones at the planning forecast's. It is the accounting primitive the
// MPC controllers and the server's re-planning endpoint share.
func ExecuteSlices(lt *frontier.LookupTable, truth, predicted *grid.Signal, scale, startS, endS float64, slices []grid.Slice) ExecutedInterval {
	ei := ExecutedInterval{StartS: startS, EndS: endS}
	at := startS
	for _, sl := range slices {
		sec := math.Min(sl.Seconds, endS-at)
		if sec <= 0 {
			break
		}
		power := scale * lt.AvgPower(sl.Point)
		_, carbon, cost := grid.Accrue(truth, at, at+sec, power)
		_, pCarbon, pCost := grid.Accrue(predicted, at, at+sec, power)
		ei.Slices = append(ei.Slices, grid.Slice{Point: sl.Point, Seconds: sec})
		ei.Iterations += sec / lt.PointTime(sl.Point)
		ei.EnergyJ += sec * power
		ei.CarbonG += carbon
		ei.CostUSD += cost
		ei.PredCarbonG += pCarbon
		ei.PredCostUSD += pCost
		at += sec
	}
	ei.IdleS = endS - at
	return ei
}
