// Package frontier implements Perseus's core contribution (paper §4): the
// iterative graph cut-based characterization of a training pipeline's
// time-energy Pareto frontier, and the energy-schedule lookup that removes
// intrinsic and extrinsic energy bloat.
//
// Starting from the schedule where every computation runs at its
// minimum-energy duration (the frontier's right end, T*), each iteration
// reduces the iteration time by one unit τ with the smallest possible
// energy increase (Algorithm 1). One reduction step (Algorithm 2 /
// GetNextSchedule) works on the Critical DAG: any s-t cut of it speeds the
// whole DAG by τ when the S→T cut computations speed up by τ — and T→S cut
// computations may simultaneously slow down by τ, recovering energy. The
// cheapest such cut is a minimum cut of the Capacity DAG whose edges carry
// the marginal energies of the continuous relaxation (Appendix E), found
// by maximum flow with lower bounds.
package frontier

import (
	"errors"
	"fmt"
	"math"

	"perseus/internal/dag"
	"perseus/internal/fit"
	"perseus/internal/gpu"
	"perseus/internal/maxflow"
	"perseus/internal/profile"
)

// Options configure frontier characterization.
type Options struct {
	// Unit is the unit time τ in seconds (paper §4.2); each iteration of
	// the optimizer reduces iteration time by exactly one unit. Smaller
	// units give a finer frontier at higher optimization cost. Default
	// 1 ms, the paper's setting (Appendix B.4).
	Unit float64

	// MaxSteps caps optimizer iterations as a safety net. Default
	// 500000.
	MaxSteps int

	// Stepper selects the per-iteration strategy. Default MinCutStepper
	// (the paper's algorithm). GreedyStepper is the ablation baseline
	// that speeds up the single cheapest critical computation and fails
	// to handle parallel critical paths.
	Stepper Stepper

	// PiecewiseFit replaces the exponential relaxation with
	// piecewise-linear interpolation of the measured Pareto points
	// (ablation, DESIGN.md §5).
	PiecewiseFit bool

	// Solver selects the max-flow algorithm inside the min-cut
	// subroutine. Default maxflow.EdmondsKarp, the paper's choice;
	// maxflow.Dinic computes identical cuts faster.
	Solver maxflow.Solver

	// keyframeEvery controls duration-snapshot spacing for plan
	// reconstruction; exposed for tests.
	keyframeEvery int
}

func (o Options) withDefaults() Options {
	if o.Unit <= 0 {
		o.Unit = 1e-3
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 500000
	}
	if o.Stepper == nil {
		o.Stepper = MinCutStepper{Solver: o.Solver}
	}
	if o.keyframeEvery <= 0 {
		o.keyframeEvery = 256
	}
	return o
}

// Stepper finds the next energy schedule one unit-time faster than the
// current one.
type Stepper interface {
	// Step mutates st.durs to reduce the makespan by (at least) one
	// unit with minimal energy increase, returning false when no
	// further reduction is possible.
	Step(st *state) (bool, error)
}

// compInfo is the per-computation planning state derived from its type
// profile.
type compInfo struct {
	tp         *profile.TypeProfile
	curve      fit.Curve
	minU, maxU int64
	fixed      bool // single-choice duration (constant op or τ too coarse)
}

// state is the optimizer's working state.
type state struct {
	g     *dag.Graph
	unit  float64
	info  []compInfo
	durs  []int64 // alias of g.Dur[:NumReal()]
	nReal int
}

// phi returns the relaxed adjusted energy of computation i at duration d.
func (st *state) phi(i int, d int64) float64 {
	ci := &st.info[i]
	if ci.fixed {
		return ci.tp.Points[0].Energy
	}
	return ci.curve.Eval(float64(d) * st.unit)
}

// marginals returns e+ (cost of speeding up by one unit) and e- (gain of
// slowing down by one unit) for computation i, clamped to be non-negative
// and consistent (e- <= e+), guarding against fit wiggle at the edges.
func (st *state) marginals(i int) (ePlus, eMinus float64) {
	d := st.durs[i]
	ci := &st.info[i]
	if d > ci.minU {
		ePlus = st.phi(i, d-1) - st.phi(i, d)
		if ePlus < 0 {
			ePlus = 0
		}
	}
	if d < ci.maxU {
		eMinus = st.phi(i, d) - st.phi(i, d+1)
		if eMinus < 0 {
			eMinus = 0
		}
	}
	if d > ci.minU && d < ci.maxU && eMinus > ePlus {
		eMinus = ePlus
	}
	return ePlus, eMinus
}

// Point is one energy schedule on the frontier.
type Point struct {
	// TimeUnits and Time give the planned iteration time.
	TimeUnits int64
	Time      float64

	// EnergyRelaxed is the relaxed objective Σ φ_i(t_i): adjusted energy
	// under the continuous fit.
	EnergyRelaxed float64

	// Energy is the discrete adjusted computation energy
	// Σ (e_i − P_blocking·t_i) after converting durations to real
	// frequencies.
	Energy float64

	// RawEnergy is the discrete unadjusted computation energy Σ e_i.
	RawEnergy float64

	index int
	f     *Frontier
}

// Durations returns the planned per-computation durations in τ units,
// indexed by DAG op id.
func (p Point) Durations() []int64 { return p.f.durationsAt(p.index) }

// Plan returns the realized frequency plan: for each computation, the
// slowest frequency not exceeding its planned duration (paper §4.3).
// Constant ops get frequency 0.
func (p Point) Plan() []gpu.Frequency {
	durs := p.Durations()
	plan := make([]gpu.Frequency, p.f.nReal)
	for i := 0; i < p.f.nReal; i++ {
		ci := &p.f.info[i]
		if ci.tp.Constant {
			continue
		}
		pt, _ := realize(ci, durs[i], p.f.Unit)
		plan[i] = pt.Freq
	}
	return plan
}

// realize converts a planned duration to the discrete Pareto choice. A
// duration at the computation's fastest bound means "as fast as possible"
// and always realizes the maximum frequency; otherwise quantization (ceil
// of MinTime to τ units) could admit one frequency step below maximum and
// silently slow the Tmin schedule.
func realize(ci *compInfo, dur int64, unit float64) (gpu.Point, float64) {
	if dur <= ci.minU {
		return ci.tp.Points[0], ci.tp.Raw[0]
	}
	return ci.tp.ForDuration(float64(dur) * unit)
}

// Frontier is the characterized time-energy tradeoff frontier: energy
// schedules from Tmin (all-max-frequency iteration time) to T* (minimum
// energy), one per unit time.
type Frontier struct {
	// Unit is τ in seconds.
	Unit float64

	// Graph is the computation DAG the frontier was characterized on.
	Graph *dag.Graph

	points []Point
	deltas [][]durDelta // per point, changes vs previous point
	keys   map[int][]int64
	keyStp int
	info   []compInfo
	nReal  int

	tminUnits, tstarUnits int64
}

type durDelta struct {
	comp  int32
	delta int8
}

// Tmin returns the shortest iteration time on the frontier in seconds.
func (f *Frontier) Tmin() float64 { return float64(f.tminUnits) * f.Unit }

// TStar returns the minimum-energy iteration time in seconds (paper §3.1).
func (f *Frontier) TStar() float64 { return float64(f.tstarUnits) * f.Unit }

// Points returns every frontier point ordered by increasing time.
func (f *Frontier) Points() []Point { return f.points }

// Lookup returns the energy schedule for a straggler iteration time
// tPrime, applying the universal prescription T_opt = min(T*, T')
// (paper Eq. 2): the schedule with the largest planned time not exceeding
// T_opt. A tPrime at or below Tmin returns the fastest schedule — only
// intrinsic bloat can be removed (Figure 3a).
func (f *Frontier) Lookup(tPrime float64) Point {
	topt := math.Min(tPrime, f.TStar())
	units := int64(math.Floor(topt/f.Unit + 1e-9))
	// Points are time-ascending; binary search the last one <= units.
	lo, hi := 0, len(f.points)-1
	if units <= f.points[0].TimeUnits {
		return f.points[0]
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.points[mid].TimeUnits <= units {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return f.points[lo]
}

// durationsAt reconstructs the duration vector of point idx from the
// nearest keyframe plus deltas.
func (f *Frontier) durationsAt(idx int) []int64 {
	base := idx - idx%f.keyStp
	durs := append([]int64(nil), f.keys[base]...)
	for i := base + 1; i <= idx; i++ {
		for _, d := range f.deltas[i] {
			durs[d.comp] += int64(d.delta)
		}
	}
	return durs
}

// Characterize computes the frontier of a pipeline's computation DAG given
// its profile (paper Algorithm 1).
func Characterize(g *dag.Graph, p *profile.Profile, opts Options) (*Frontier, error) {
	opts = opts.withDefaults()
	nReal := g.NumReal()
	if nReal == 0 {
		return nil, fmt.Errorf("frontier: empty DAG")
	}
	st := &state{g: g, unit: opts.Unit, nReal: nReal}
	st.info = make([]compInfo, nReal)
	for i, op := range g.Ops {
		tp, err := p.For(op)
		if err != nil {
			return nil, err
		}
		ci := compInfo{tp: tp}
		if opts.PiecewiseFit && !tp.Constant {
			var ts, es []float64
			for _, pt := range tp.Points {
				ts = append(ts, pt.Time)
				es = append(es, pt.Energy)
			}
			pw, err := fit.FitPiecewise(ts, es)
			if err != nil {
				return nil, fmt.Errorf("frontier: piecewise fit for op %d: %w", i, err)
			}
			ci.curve = pw
		} else {
			ci.curve = tp.Curve
		}
		// Round the fastest duration to the nearest unit: ceiling would
		// bias every critical-path computation ~τ/2 long, inflating Tmin
		// by τ/2 times the critical path length. Realization treats a
		// duration at minU as "maximum frequency" (see realize), so a
		// rounded-down plan still executes correctly.
		ci.minU = unitsRound(tp.MinTime(), opts.Unit)
		// Ceil so the slowest planned duration admits the true
		// minimum-energy frequency; longer plans are always realizable.
		ci.maxU = unitsCeil(tp.MaxTime(), opts.Unit)
		if ci.minU < 1 {
			ci.minU = 1
		}
		if ci.maxU < ci.minU {
			ci.maxU = ci.minU
		}
		if tp.Constant || ci.minU == ci.maxU {
			ci.fixed = true
			ci.maxU = ci.minU
		}
		st.info[i] = ci
	}

	// Tmin: makespan with every computation at its fastest duration
	// (paper §3.1: the iteration time of running everything at maximum
	// speed).
	for i := 0; i < nReal; i++ {
		g.Dur[i] = st.info[i].minU
	}
	tminUnits := g.Makespan()

	// Algorithm 1 line 1: begin with the minimum energy schedule.
	for i := 0; i < nReal; i++ {
		g.Dur[i] = st.info[i].maxU
	}
	st.durs = g.Dur[:nReal]

	f := &Frontier{
		Unit:      opts.Unit,
		Graph:     g,
		info:      st.info,
		nReal:     nReal,
		keyStp:    opts.keyframeEvery,
		keys:      map[int][]int64{},
		tminUnits: tminUnits,
	}

	// Incrementally maintained energy sums.
	var relaxed, adj, raw float64
	for i := 0; i < nReal; i++ {
		relaxed += st.phi(i, st.durs[i])
		pt, r := realize(&st.info[i], st.durs[i], opts.Unit)
		adj += pt.Energy
		raw += r
	}

	prevDurs := append([]int64(nil), st.durs...)
	record := func(mk int64) {
		idx := len(f.points)
		var deltas []durDelta
		for i := 0; i < nReal; i++ {
			if d := st.durs[i] - prevDurs[i]; d != 0 {
				deltas = append(deltas, durDelta{comp: int32(i), delta: int8(d)})
				// Update energy sums incrementally.
				relaxed += st.phi(i, st.durs[i]) - st.phi(i, prevDurs[i])
				newPt, newRaw := realize(&st.info[i], st.durs[i], opts.Unit)
				oldPt, oldRaw := realize(&st.info[i], prevDurs[i], opts.Unit)
				adj += newPt.Energy - oldPt.Energy
				raw += newRaw - oldRaw
				prevDurs[i] = st.durs[i]
			}
		}
		f.deltas = append(f.deltas, deltas)
		if idx%f.keyStp == 0 {
			f.keys[idx] = append([]int64(nil), st.durs...)
		}
		f.points = append(f.points, Point{
			TimeUnits:     mk,
			Time:          float64(mk) * opts.Unit,
			EnergyRelaxed: relaxed,
			Energy:        adj,
			RawEnergy:     raw,
			index:         idx,
			f:             f,
		})
	}

	mk := g.Makespan()
	f.tstarUnits = mk
	record(mk)
	for steps := 0; mk > tminUnits && steps < opts.MaxSteps; steps++ {
		ok, err := opts.Stepper.Step(st)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		newMk := g.Makespan()
		if newMk >= mk {
			return nil, fmt.Errorf("frontier: step did not reduce makespan (%d -> %d)", mk, newMk)
		}
		mk = newMk
		record(mk)
	}

	// Reverse to time-ascending order and fix indices.
	for i, j := 0, len(f.points)-1; i < j; i, j = i+1, j-1 {
		f.points[i], f.points[j] = f.points[j], f.points[i]
	}
	for i := range f.points {
		f.points[i].f = f
	}
	return f, nil
}

func unitsCeil(sec, unit float64) int64 {
	return int64(math.Ceil(sec/unit - 1e-9))
}

func unitsRound(sec, unit float64) int64 {
	return int64(math.Round(sec / unit))
}

func unitsFloor(sec, unit float64) int64 {
	return int64(math.Floor(sec/unit + 1e-9))
}

// MinCutStepper is the paper's GetNextSchedule (Algorithm 2): it removes
// non-critical computations, annotates the Critical DAG with marginal
// energy flow capacities (Eq. 8), and finds the minimum s-t cut via
// maximum flow with lower bounds. S→T cut computations speed up by one
// unit; T→S cut computations slow down by one unit, reclaiming energy
// (Appendix E.1).
type MinCutStepper struct {
	// Solver selects the max-flow algorithm (default Edmonds-Karp).
	Solver maxflow.Solver
}

// Step implements Stepper.
func (m MinCutStepper) Step(st *state) (bool, error) {
	g := st.g
	est := g.EarliestStarts()
	mk := est[g.Sink]
	lst := g.LatestStarts(mk)
	critical := make([]bool, len(g.Dur))
	for v := range critical {
		critical[v] = est[v] == lst[v]
	}
	critical[g.Source] = true
	critical[g.Sink] = true

	// Split each critical node into in/out; assign flow-network ids.
	nodeID := make([]int32, len(g.Dur))
	for i := range nodeID {
		nodeID[i] = -1
	}
	next := 0
	for v := range critical {
		if critical[v] {
			nodeID[v] = int32(next)
			next += 2 // in = id, out = id+1
		}
	}
	inf := math.Inf(1)
	var edges []maxflow.BoundedEdge
	for v := range critical {
		if !critical[v] {
			continue
		}
		in, out := int(nodeID[v]), int(nodeID[v])+1
		lo, up := 0.0, inf
		if v < st.nReal && !st.info[v].fixed {
			ePlus, eMinus := st.marginals(v)
			d := st.durs[v]
			ci := &st.info[v]
			switch {
			case d == ci.maxU: // slowest: can only speed up
				lo, up = 0, ePlus
			case d == ci.minU: // fastest: can only slow down
				lo, up = eMinus, inf
			default:
				lo, up = eMinus, ePlus
			}
		}
		edges = append(edges, maxflow.BoundedEdge{From: in, To: out, Lower: lo, Upper: up})
		for _, w := range g.Succ[v] {
			// Only tight edges belong to the Critical DAG: both
			// endpoints critical and the dependency binding
			// (est[w] == est[v] + dur[v]). A slack dependency between
			// two critical nodes lies on no critical path and must not
			// constrain the cut.
			if critical[w] && est[w] == est[v]+g.Dur[v] {
				edges = append(edges, maxflow.BoundedEdge{
					From: out, To: int(nodeID[w]), Lower: 0, Upper: inf,
				})
			}
		}
	}
	s := int(nodeID[g.Source])
	t := int(nodeID[g.Sink]) + 1
	res, err := maxflow.MinCutWithBoundsUsing(m.Solver, next, edges, s, t)
	if errors.Is(err, maxflow.ErrInfeasible) {
		// No circulation satisfies every slow-down credit (Hoffman
		// violation): some set of computations could be slowed for more
		// energy than their surroundings can absorb, meaning the relaxed
		// frontier has an improving rearrangement this step cannot
		// express. The paper's Algorithm 3 returns nil here without a
		// recovery; we fall back to the speed-up-only cut (all lower
		// bounds zero), which is always feasible and still reduces the
		// makespan by exactly one unit, at a slightly higher energy for
		// this step.
		zeroed := make([]maxflow.BoundedEdge, len(edges))
		for i, e := range edges {
			e.Lower = 0
			zeroed[i] = e
		}
		res, err = maxflow.MinCutWithBoundsUsing(m.Solver, next, zeroed, s, t)
	}
	if err != nil {
		return false, fmt.Errorf("frontier: min cut: %w", err)
	}
	if math.IsInf(res.Value, 1) {
		return false, nil
	}

	var spedUp, slowed []int
	for v := 0; v < st.nReal; v++ {
		if nodeID[v] < 0 || st.info[v].fixed {
			continue
		}
		inS := res.SSide[nodeID[v]]
		outS := res.SSide[nodeID[v]+1]
		switch {
		case inS && !outS: // S→T cut edge: speed up
			if st.durs[v] <= st.info[v].minU {
				return false, fmt.Errorf("frontier: cut crosses computation %d already at its fastest", v)
			}
			st.durs[v]--
			spedUp = append(spedUp, v)
		case !inS && outS: // T→S cut edge: slow down
			if st.durs[v] < st.info[v].maxU {
				st.durs[v]++
				slowed = append(slowed, v)
			}
		}
	}
	if len(spedUp) == 0 {
		return false, fmt.Errorf("frontier: finite cut with no computations to speed up")
	}

	// Safety check (DESIGN.md §3): slowing T→S computations is exact on
	// the Critical DAG but may lengthen a path through formerly
	// non-critical nodes. If the makespan did not drop by exactly one
	// unit, revert the slowdowns — speedups alone always reduce every
	// critical path and never lengthen any path.
	if len(slowed) > 0 && st.g.Makespan() != mk-1 {
		for _, v := range slowed {
			st.durs[v]--
		}
	}
	return true, nil
}

// GreedyStepper is the ablation baseline: speed up the single critical
// computation with the smallest marginal energy. It cannot reduce the
// makespan when two critical paths run in parallel (paper Figure 6's key
// observation), so it terminates early with a partial frontier.
type GreedyStepper struct{}

// Step implements Stepper.
func (GreedyStepper) Step(st *state) (bool, error) {
	g := st.g
	critical, mk := g.Critical()
	best, bestCost := -1, math.Inf(1)
	for v := 0; v < st.nReal; v++ {
		if !critical[v] || st.info[v].fixed || st.durs[v] <= st.info[v].minU {
			continue
		}
		ePlus, _ := st.marginals(v)
		if ePlus < bestCost {
			best, bestCost = v, ePlus
		}
	}
	if best < 0 {
		return false, nil
	}
	st.durs[best]--
	if g.Makespan() >= mk {
		// Parallel critical paths: a single speedup cannot help. Revert
		// and give up.
		st.durs[best]++
		return false, nil
	}
	return true, nil
}
