package server

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"perseus/internal/client"
	"perseus/internal/grid"
)

// TestPlanCacheHitMissInvalidation walks the cache through its
// lifecycle at the server layer: identical requests hit, parameter
// changes miss, and both a signal re-install and a forecast revision
// advance the epoch and drop every cached plan. The frontier-hash
// dimension is covered by two jobs with different tables sharing the
// same request parameters.
func TestPlanCacheHitMissInvalidation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	// Two jobs with different workloads → different frontier tables.
	a := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	b := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 6, GPU: "A100-PCIe", Unit: 5e-3,
	}, 2)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	fetch := func(id string, iters float64) grid.Plan {
		t.Helper()
		p, err := cl.FetchGridPlan(id, iters, 0, "")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	expect := func(hits, misses int64) {
		t.Helper()
		st := srv.CacheStats()
		if st.Hits != hits || st.Misses != misses {
			t.Fatalf("cache stats %+v, want hits %d misses %d", st, hits, misses)
		}
	}

	p1 := fetch(a, 50)
	expect(0, 1)
	p2 := fetch(a, 50) // identical request: hit
	expect(1, 1)
	if math.Abs(p1.CarbonG-p2.CarbonG) > 1e-12 || p1.Iterations != p2.Iterations {
		t.Fatalf("cached plan differs: %v vs %v", p1.CarbonG, p2.CarbonG)
	}
	fetch(a, 60) // different target: miss
	expect(1, 2)
	fetch(b, 50) // same params, different frontier hash: miss
	expect(1, 3)
	fetch(b, 50) // and hits thereafter
	expect(2, 3)

	// A forecast revision advances the epoch: everything re-solves.
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if st := srv.CacheStats(); st.Entries != 0 {
		t.Fatalf("forecast revision left %d cache entries", st.Entries)
	}
	fetch(a, 50)
	expect(2, 4)
	fetch(a, 50)
	expect(3, 4)

	// A signal re-install advances the epoch again.
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if st := srv.CacheStats(); st.Entries != 0 {
		t.Fatalf("signal re-install left %d cache entries", st.Entries)
	}
	fetch(a, 50)
	expect(3, 5)
}

// TestPlanCacheSingleFlight pins the de-duplication contract: any
// number of identical concurrent plan requests solve exactly once.
func TestPlanCacheSingleFlight(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	var carbon [workers]float64
	var failed atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := cl.FetchGridPlan(id, 80, 0, "")
			if err != nil {
				failed.Store(true)
				return
			}
			carbon[w] = p.CarbonG
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		t.Fatal("concurrent plan fetch failed")
	}
	st := srv.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("identical concurrent requests solved %d times, want 1", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits %d, want %d", st.Hits, workers-1)
	}
	for w := 1; w < workers; w++ {
		if carbon[w] != carbon[0] {
			t.Fatalf("worker %d saw a different plan: %v vs %v", w, carbon[w], carbon[0])
		}
	}
}

// TestPlanCacheErrorNotCached pins the retry rule: a failed solve is
// not memoized — the next identical request runs the solver again.
func TestPlanCacheErrorNotCached(t *testing.T) {
	c := newPlanCache(nil)
	ctx := context.Background()
	key := PlanKey{Epoch: 1, Table: 42, Target: 10}
	calls := 0
	solve := func(context.Context) (*grid.Plan, error) {
		calls++
		if calls == 1 {
			return nil, fmt.Errorf("transient")
		}
		return &grid.Plan{Target: 10}, nil
	}
	if _, err := c.do(ctx, key, solve); err == nil {
		t.Fatal("first solve should fail")
	}
	p, err := c.do(ctx, key, solve)
	if err != nil || p == nil || p.Target != 10 {
		t.Fatalf("retry after error: %v, %v", p, err)
	}
	if calls != 2 {
		t.Fatalf("solver ran %d times, want 2", calls)
	}
	if _, err := c.do(ctx, key, solve); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("success was not cached: %d calls", calls)
	}
}
