package region

import (
	"math"
	"testing"
)

// TestOptimizeDeterministicAcrossWorkers pins the planner's core
// parallelism contract: fanning candidate evaluations across a worker
// pool must be bit-identical to sequential evaluation — same objective
// totals, same placements, same migration bookkeeping — for any pool
// size. The reduction happens in a fixed candidate order regardless of
// completion order, so this holds exactly, not within a tolerance.
// Run under -race this also exercises the pool for data races.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	regions := PhaseShiftedPair(16)
	ltA := convexTable(0.01, 80, 110, 3000, 120)
	ltB := convexTable(0.012, 70, 100, 3200, 140)
	jobs := []Job{
		{ID: "a", Table: ltA, GPUs: 8, Target: math.Floor(0.5 * 86400 / ltA.TStar())},
		{ID: "b", Table: ltB, GPUs: 8, Target: math.Floor(0.4 * 86400 / ltB.TStar())},
	}
	base := Options{Migration: MigrationCost{DowntimeS: 600, EnergyJ: 5e6}}

	opts := base
	opts.Workers = 1
	seq, err := Optimize(regions, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 7} {
		opts := base
		opts.Workers = workers
		par, err := Optimize(regions, jobs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if par.CarbonG != seq.CarbonG || par.CostUSD != seq.CostUSD ||
			par.EnergyJ != seq.EnergyJ || par.Feasible != seq.Feasible {
			t.Fatalf("workers=%d totals diverge: %+v vs sequential %+v",
				workers, par.Account, seq.Account)
		}
		for i := range seq.Jobs {
			sj, pj := seq.Jobs[i], par.Jobs[i]
			if len(sj.Assignments) != len(pj.Assignments) {
				t.Fatalf("workers=%d job %s assignment count %d != %d",
					workers, sj.JobID, len(pj.Assignments), len(sj.Assignments))
			}
			for k := range sj.Assignments {
				if sj.Assignments[k] != pj.Assignments[k] {
					t.Fatalf("workers=%d job %s assignment %d diverges: %+v vs %+v",
						workers, sj.JobID, k, pj.Assignments[k], sj.Assignments[k])
				}
			}
			if sj.Temporal.Iterations != pj.Temporal.Iterations ||
				sj.Migrations != pj.Migrations ||
				sj.MigrationCarbonG != pj.MigrationCarbonG {
				t.Fatalf("workers=%d job %s plan diverges: %+v vs %+v",
					workers, sj.JobID, pj, sj)
			}
		}
	}
}
