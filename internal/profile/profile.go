// Package profile builds per-computation time/energy profiles: for every
// (virtual stage, forward/backward) computation type, the Pareto-optimal
// set of (frequency, time, energy) choices, and the exponential fit of
// adjusted energy used by the optimizer's continuous relaxation.
//
// Two construction paths mirror the paper:
//
//   - FromWorkload derives profiles analytically from a model's layer
//     costs and the GPU model — the emulation path of paper §6.3, which
//     "profiles the time and energy consumption of each layer" and runs
//     the optimizer offline.
//   - Assemble groups raw online measurements reported by the Perseus
//     client's in-vivo profiler (paper §5) and prunes/fits them; this is
//     the path exercised by the client/server integration.
//
// Energies in profiles are adjusted energies e − P_blocking·t (paper
// Eq. 4): a computation that finishes early leaves its GPU blocking on
// communication at P_blocking, so that power is sunk regardless and must
// be discounted when choosing speeds.
package profile

import (
	"fmt"
	"math"
	"sort"

	"perseus/internal/fit"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/sched"
)

// TypeKey identifies a computation type: every microbatch's forward (or
// backward) on one virtual stage shares a profile, because operator
// parallelism splits work equally across microbatches (paper §4.4).
type TypeKey struct {
	Virtual int
	Kind    sched.Kind
}

// TypeProfile is the profile of one computation type.
type TypeProfile struct {
	Key TypeKey

	// Points are Pareto-optimal choices sorted by increasing time:
	// Points[0] is the fastest (maximum frequency); the last point is
	// the adjusted-energy minimum. Point.Energy is adjusted energy.
	Points []gpu.Point

	// Raw holds the unadjusted energy (joules) parallel to Points.
	Raw []float64

	// Curve is the exponential fit of adjusted energy versus time in
	// seconds over the Pareto range (paper Appendix D). Unset when
	// Constant.
	Curve fit.Exp

	// Constant marks a single-speed operation (paper §4.4): Points has
	// exactly one entry and the optimizer must never change its
	// duration.
	Constant bool
}

// MinTime returns the fastest achievable time.
func (tp *TypeProfile) MinTime() float64 { return tp.Points[0].Time }

// MaxTime returns the slowest time Perseus will plan: the adjusted-energy
// minimum. Slowing past it wastes energy (paper §3.1).
func (tp *TypeProfile) MaxTime() float64 { return tp.Points[len(tp.Points)-1].Time }

// ForDuration returns the Pareto point realizing a planned duration: the
// slowest choice whose time does not exceed sec (paper §4.3 — a planned
// computation may finish early but must never run late). If sec is below
// the fastest time, the fastest point is returned.
func (tp *TypeProfile) ForDuration(sec float64) (gpu.Point, float64) {
	// Points are time-ascending; find the last with Time <= sec.
	idx := sort.Search(len(tp.Points), func(i int) bool { return tp.Points[i].Time > sec }) - 1
	if idx < 0 {
		idx = 0
	}
	return tp.Points[idx], tp.Raw[idx]
}

// AtOrAbove returns the slowest Pareto point whose frequency is at least f
// — the choice a frequency- or power-capped GPU settles at. Below the
// slowest Pareto frequency, the slowest point is returned (running slower
// would waste both time and energy, so the profile excludes it).
func (tp *TypeProfile) AtOrAbove(f gpu.Frequency) (gpu.Point, float64) {
	// Points are time-ascending, hence frequency-descending.
	for i := len(tp.Points) - 1; i >= 0; i-- {
		if tp.Points[i].Freq >= f {
			return tp.Points[i], tp.Raw[i]
		}
	}
	return tp.Points[0], tp.Raw[0]
}

// Profile is the complete profile of one pipeline's computation types on
// one GPU model.
type Profile struct {
	GPU *gpu.Model

	// PBlocking is the measured communication-blocking power in watts.
	PBlocking float64

	// Types maps each computation type to its profile.
	Types map[TypeKey]*TypeProfile
}

// For returns the profile for an op's type.
func (p *Profile) For(op sched.Op) (*TypeProfile, error) {
	key := TypeKey{Virtual: op.Virtual, Kind: op.Kind}
	if op.Kind == sched.Recompute {
		// Recomputation replays the forward of the same virtual stage.
		key.Kind = sched.Forward
	}
	tp, ok := p.Types[key]
	if !ok {
		return nil, fmt.Errorf("profile: no profile for %v", key)
	}
	return tp, nil
}

// MeasurePBlocking measures P_blocking the way paper §5 does: one device
// blocks on P2P communication while a peer sleeps, and the blocking
// device's power is read. One measurement per GPU model suffices.
func MeasurePBlocking(g *gpu.Model) float64 {
	const window = 1.0 // seconds
	blocker := gpu.NewDevice(g, "pblock-probe")
	blocker.Block(window)
	return blocker.EnergyCounter() / window
}

// Workload describes one pipeline whose computation types are profiled.
type Workload struct {
	Model *model.Model
	GPU   *gpu.Model

	// Stages is the number of physical pipeline stages (N).
	Stages int

	// Chunks is the number of model chunks per stage for interleaved
	// schedules; 1 otherwise. Layers are partitioned over
	// Stages·Chunks virtual stages.
	Chunks int

	// Partition holds virtual-stage boundaries over the model's layers
	// (Stages·Chunks+1 entries, paper Table 7 format).
	Partition []int

	// MicrobatchSize is the per-microbatch sample count; computation
	// cost scales linearly with it.
	MicrobatchSize int

	// TensorParallel is the tensor-parallel degree: each virtual stage's
	// work is split equally across this many GPUs, dividing per-GPU cost
	// (paper §4.4: operator parallelism splits operations in equal
	// sizes, so one GPU per stage is profiled and the schedule
	// replicated).
	TensorParallel int
}

func (w Workload) virtualStages() int {
	c := w.Chunks
	if c == 0 {
		c = 1
	}
	return w.Stages * c
}

// StageRefTimes returns each virtual stage's forward reference time in
// seconds at maximum frequency.
func (w Workload) StageRefTimes() ([]float64, error) {
	v := w.virtualStages()
	if len(w.Partition) != v+1 {
		return nil, fmt.Errorf("profile: partition has %d boundaries, want %d", len(w.Partition), v+1)
	}
	costs, err := w.Model.StageCosts(w.Partition)
	if err != nil {
		return nil, err
	}
	tp := w.TensorParallel
	if tp == 0 {
		tp = 1
	}
	mb := w.MicrobatchSize
	if mb <= 0 {
		return nil, fmt.Errorf("profile: non-positive microbatch size %d", mb)
	}
	refs := make([]float64, v)
	for i, c := range costs {
		refs[i] = c * float64(mb) / float64(tp) / w.GPU.EffFLOPS
	}
	return refs, nil
}

// FromWorkload builds the full profile analytically: for each virtual
// stage, forward and backward computations are swept over every supported
// frequency, strictly-suboptimal frequencies pruned, and the exponential
// relaxation fitted.
func FromWorkload(w Workload) (*Profile, error) {
	refs, err := w.StageRefTimes()
	if err != nil {
		return nil, err
	}
	return FromStageTimes(w.GPU, refs, w.Model.BwdFactor)
}

// FromStageTimes builds a profile from per-virtual-stage forward reference
// times (seconds at maximum frequency) and a backward/forward cost ratio.
// It is the entry point for emulation workloads whose stage times come
// from layer-level profiles rather than the model zoo (paper §6.3).
func FromStageTimes(g *gpu.Model, refFwd []float64, bwdFactor float64) (*Profile, error) {
	if len(refFwd) == 0 {
		return nil, fmt.Errorf("profile: no stages")
	}
	if bwdFactor <= 0 {
		return nil, fmt.Errorf("profile: non-positive backward factor %v", bwdFactor)
	}
	pb := MeasurePBlocking(g)
	p := &Profile{GPU: g, PBlocking: pb, Types: map[TypeKey]*TypeProfile{}}
	for v, ref := range refFwd {
		if ref <= 0 {
			return nil, fmt.Errorf("profile: stage %d has non-positive reference time %v", v, ref)
		}
		fwd, err := buildType(TypeKey{v, sched.Forward}, g, ref, g.MemBoundFwd, pb)
		if err != nil {
			return nil, err
		}
		bwd, err := buildType(TypeKey{v, sched.Backward}, g, ref*bwdFactor, g.MemBoundBwd, pb)
		if err != nil {
			return nil, err
		}
		p.Types[fwd.Key] = fwd
		p.Types[bwd.Key] = bwd
	}
	return p, nil
}

func buildType(key TypeKey, g *gpu.Model, ref, memBound, pb float64) (*TypeProfile, error) {
	pts := g.ParetoPoints(ref, memBound, pb)
	tp := &TypeProfile{Key: key, Points: pts, Raw: make([]float64, len(pts))}
	for i, pt := range pts {
		tp.Raw[i] = pt.Energy + pb*pt.Time
	}
	var ts, es []float64
	for _, pt := range pts {
		ts = append(ts, pt.Time)
		es = append(es, pt.Energy)
	}
	curve, err := fit.FitExp(ts, es)
	if err != nil {
		return nil, fmt.Errorf("profile: fitting %v: %w", key, err)
	}
	tp.Curve = curve
	return tp, nil
}

// AddConstant registers a constant-time operation such as data loading
// (paper §4.4): a single (time, energy) choice the optimizer treats as a
// node with one frequency option.
func (p *Profile) AddConstant(virtual int, sec, joules float64) {
	key := TypeKey{Virtual: virtual, Kind: sched.Constant}
	adj := joules - p.PBlocking*sec
	p.Types[key] = &TypeProfile{
		Key:      key,
		Points:   []gpu.Point{{Freq: 0, Time: sec, Energy: adj}},
		Raw:      []float64{joules},
		Constant: true,
	}
}

// Measurement is one raw observation from the client's online profiler:
// a computation of the given type ran at freq for sec seconds consuming
// joules (unadjusted).
type Measurement struct {
	Virtual int
	Kind    sched.Kind
	Freq    gpu.Frequency
	Time    float64
	Energy  float64
}

// Assemble builds a profile from raw online measurements (paper §5):
// repeated observations per (type, frequency) are averaged, the sweep is
// pruned to its Pareto-optimal front on adjusted energy, and the
// exponential relaxation is fitted. pBlocking is the separately measured
// blocking power.
func Assemble(g *gpu.Model, pBlocking float64, ms []Measurement) (*Profile, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("profile: no measurements")
	}
	type cell struct {
		t, e float64
		n    int
	}
	agg := map[TypeKey]map[gpu.Frequency]*cell{}
	for _, m := range ms {
		key := TypeKey{m.Virtual, m.Kind}
		if agg[key] == nil {
			agg[key] = map[gpu.Frequency]*cell{}
		}
		c := agg[key][m.Freq]
		if c == nil {
			c = &cell{}
			agg[key][m.Freq] = c
		}
		c.t += m.Time
		c.e += m.Energy
		c.n++
	}
	p := &Profile{GPU: g, PBlocking: pBlocking, Types: map[TypeKey]*TypeProfile{}}
	for key, freqs := range agg {
		var pts []gpu.Point
		raws := map[gpu.Frequency]float64{}
		for f, c := range freqs {
			t := c.t / float64(c.n)
			e := c.e / float64(c.n)
			pts = append(pts, gpu.Point{Freq: f, Time: t, Energy: e - pBlocking*t})
			raws[f] = e
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Time < pts[j].Time })
		// Pareto-prune on adjusted energy.
		pruned := pts[:0]
		minE := math.Inf(1)
		for _, pt := range pts {
			if pt.Energy < minE {
				pruned = append(pruned, pt)
				minE = pt.Energy
			}
		}
		if len(pruned) < 3 {
			return nil, fmt.Errorf("profile: type %v has only %d Pareto points; profile more frequencies", key, len(pruned))
		}
		tp := &TypeProfile{Key: key, Points: append([]gpu.Point(nil), pruned...)}
		var ts, es []float64
		for _, pt := range tp.Points {
			tp.Raw = append(tp.Raw, raws[pt.Freq])
			ts = append(ts, pt.Time)
			es = append(es, pt.Energy)
		}
		curve, err := fit.FitExp(ts, es)
		if err != nil {
			return nil, fmt.Errorf("profile: fitting %v: %w", key, err)
		}
		tp.Curve = curve
		p.Types[key] = tp
	}
	return p, nil
}
