// Package grid turns time-varying electricity-grid signals — carbon
// intensity, price, and facility power caps — into temporal schedules
// over a job's characterized time-energy frontier.
//
// Perseus characterizes each job's complete iteration time–energy
// Pareto frontier, and internal/fleet trades time across jobs under a
// *static* power envelope. Real grids are not static: carbon intensity
// and price swing by 2–5× over a day, and shifting flexible training
// load into low-carbon hours is the highest-leverage energy
// recommendation for ML systems. The frontier is exactly the control
// surface that makes the shift tractable: a job with deadline slack can
// run slow (low-power frontier points) or pause during dirty and
// expensive hours and sprint (T_min) during clean and cheap ones, at
// provably minimal total carbon, cost, or energy.
//
// The package has three parts: a step-function signal model with
// parsing, a bundled diurnal trace, and generators (this file); a
// temporal planner that picks one frontier operating point per signal
// interval to minimize a pluggable objective subject to an iteration
// deadline (plan.go); and accrual helpers that integrate a power draw
// against a signal for per-job emissions accounting (Accrue, below).
package grid

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// JoulesPerKWh converts the signal's per-kWh rates to per-joule ones.
const JoulesPerKWh = 3.6e6

// Interval is one step of a piecewise-constant grid signal.
type Interval struct {
	// StartS and EndS bound the interval in seconds from trace start.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	// CarbonGPerKWh is the grid carbon intensity in gCO₂ per kWh.
	CarbonGPerKWh float64 `json:"carbon_g_per_kwh"`

	// PriceUSDPerKWh is the electricity price in $ per kWh.
	PriceUSDPerKWh float64 `json:"price_usd_per_kwh"`

	// CapW is the facility power cap in force during the interval, in
	// watts; 0 means uncapped.
	CapW float64 `json:"cap_w,omitempty"`
}

// Duration returns the interval length in seconds.
func (iv Interval) Duration() float64 { return iv.EndS - iv.StartS }

// Signal is a piecewise-constant grid trace: contiguous intervals
// starting at time 0. The zero Signal is invalid; build one with
// literal intervals, ParseCSV/ParseJSON, Diurnal24h, or Generate, and
// check it with Validate.
type Signal struct {
	// Name labels the trace in tables and logs.
	Name string `json:"name,omitempty"`

	// Intervals are the steps, contiguous from time 0.
	Intervals []Interval `json:"intervals"`
}

// Horizon returns the trace end time in seconds (0 for an empty signal).
func (s *Signal) Horizon() float64 {
	if len(s.Intervals) == 0 {
		return 0
	}
	return s.Intervals[len(s.Intervals)-1].EndS
}

// MeanCarbonGPerKWh returns the duration-weighted mean carbon
// intensity of one signal cycle, in gCO₂/kWh (0 for a nil or empty
// signal). Accrue prices beyond the horizon cyclically, so this is
// also the long-run intensity a constant draw realizes — the best any
// signal-blind fixed operating point can achieve on carbon timing.
func (s *Signal) MeanCarbonGPerKWh() float64 {
	if s == nil || len(s.Intervals) == 0 {
		return 0
	}
	var weighted, horizon float64
	for _, iv := range s.Intervals {
		d := iv.Duration()
		weighted += iv.CarbonGPerKWh * d
		horizon += d
	}
	if horizon <= 0 {
		return 0
	}
	return weighted / horizon
}

// Validate checks the structural invariants: at least one interval,
// the first starting at 0, contiguous increasing bounds, and finite
// non-negative rates and caps.
func (s *Signal) Validate() error {
	if len(s.Intervals) == 0 {
		return fmt.Errorf("grid: signal has no intervals")
	}
	if s.Intervals[0].StartS != 0 {
		return fmt.Errorf("grid: signal must start at 0, got %v", s.Intervals[0].StartS)
	}
	for i, iv := range s.Intervals {
		if i > 0 && iv.StartS != s.Intervals[i-1].EndS {
			return fmt.Errorf("grid: interval %d starts at %v, want contiguous %v", i, iv.StartS, s.Intervals[i-1].EndS)
		}
		if !(iv.EndS > iv.StartS) {
			return fmt.Errorf("grid: interval %d has non-positive duration [%v, %v]", i, iv.StartS, iv.EndS)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{{"carbon", iv.CarbonGPerKWh}, {"price", iv.PriceUSDPerKWh}, {"cap", iv.CapW}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return fmt.Errorf("grid: interval %d has invalid %s %v", i, v.name, v.val)
			}
		}
	}
	return nil
}

// At returns the interval covering time t, or ok=false when t falls
// outside [0, Horizon).
func (s *Signal) At(t float64) (Interval, bool) {
	if t < 0 || len(s.Intervals) == 0 || t >= s.Horizon() {
		return Interval{}, false
	}
	// Linear scan: signals are tens of intervals, and callers walk them
	// in time order anyway.
	for _, iv := range s.Intervals {
		if t < iv.EndS {
			return iv, true
		}
	}
	return Interval{}, false
}

// AtCyclic returns the interval covering time t with the trace repeated
// periodically (a 24 h trace describes every day). Negative t — before
// the trace began — returns ok=false.
func (s *Signal) AtCyclic(t float64) (Interval, bool) {
	h := s.Horizon()
	if t < 0 || h <= 0 {
		return Interval{}, false
	}
	return s.At(math.Mod(t, h))
}

// Truncate returns a copy of the signal cut at time d (intervals beyond
// d dropped, the straddling interval shortened). d at or beyond the
// horizon returns the signal unchanged.
func (s *Signal) Truncate(d float64) *Signal {
	out := &Signal{Name: s.Name}
	for _, iv := range s.Intervals {
		if iv.StartS >= d {
			break
		}
		if iv.EndS > d {
			iv.EndS = d
		}
		out.Intervals = append(out.Intervals, iv)
	}
	return out
}

// Boundaries returns every interval start strictly inside (0, upTo),
// repeating the trace cyclically — the times at which a signal-driven
// fleet must re-allocate.
func (s *Signal) Boundaries(upTo float64) []float64 {
	h := s.Horizon()
	if h <= 0 || upTo <= 0 {
		return nil
	}
	var out []float64
	for base := 0.0; base < upTo; base += h {
		for _, iv := range s.Intervals {
			t := base + iv.StartS
			if t > 0 && t < upTo {
				out = append(out, t)
			}
		}
	}
	return out
}

// MergedBoundaries returns the sorted, deduplicated union of every
// signal's Boundaries(upTo) — the re-allocation grid a multi-signal
// (multi-region) consumer must respect. Nil signals are skipped.
func MergedBoundaries(sigs []*Signal, upTo float64) []float64 {
	set := map[float64]bool{}
	for _, s := range sigs {
		if s == nil {
			continue
		}
		for _, b := range s.Boundaries(upTo) {
			set[b] = true
		}
	}
	out := make([]float64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Float64s(out)
	return out
}

// Accrue integrates a constant power draw against the signal over the
// wall-clock span [t0, t1) (seconds in signal time, cyclic beyond the
// horizon) and returns the energy consumed plus its carbon and cost
// under the signal's rates. Time before the trace began (t < 0) accrues
// energy at zero carbon and cost; so does time with no signal at all
// (sig nil or empty).
func Accrue(sig *Signal, t0, t1, powerW float64) (energyJ, carbonG, costUSD float64) {
	if t1 <= t0 {
		return 0, 0, 0
	}
	energyJ = powerW * (t1 - t0)
	if sig == nil || sig.Horizon() <= 0 {
		return energyJ, 0, 0
	}
	for t := math.Max(t0, 0); t < t1; {
		iv, ok := sig.AtCyclic(t)
		if !ok {
			break
		}
		// End of this interval in absolute (uncycled) time.
		end := t + (iv.EndS - math.Mod(t, sig.Horizon()))
		if end > t1 {
			end = t1
		}
		if end <= t {
			// Float rounding pinned t on an interval edge (the distance
			// to the edge underflowed below one ulp of t); nudge past it
			// so the walk always progresses. The skipped sliver is below
			// float resolution, so nothing measurable is lost.
			t = math.Nextafter(t, math.Inf(1))
			continue
		}
		e := powerW * (end - t)
		carbonG += e / JoulesPerKWh * iv.CarbonGPerKWh
		costUSD += e / JoulesPerKWh * iv.PriceUSDPerKWh
		t = end
	}
	return energyJ, carbonG, costUSD
}

// ParseJSON reads a Signal written as JSON and validates it.
func ParseJSON(r io.Reader) (*Signal, error) {
	var s Signal
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("grid: decoding signal JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseCSV reads a Signal from CSV with header
//
//	start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh[,cap_w]
//
// (the cap column is optional) and validates it.
func ParseCSV(r io.Reader) (*Signal, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("grid: reading signal CSV header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, want := range []string{"start_s", "end_s", "carbon_g_per_kwh", "price_usd_per_kwh"} {
		if _, ok := col[want]; !ok {
			return nil, fmt.Errorf("grid: signal CSV missing column %q", want)
		}
	}
	field := func(rec []string, name string) (float64, error) {
		i, ok := col[name]
		if !ok || i >= len(rec) || rec[i] == "" {
			return 0, nil
		}
		return strconv.ParseFloat(rec[i], 64)
	}
	s := &Signal{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("grid: reading signal CSV: %w", err)
		}
		var iv Interval
		for _, f := range []struct {
			name string
			dst  *float64
		}{
			{"start_s", &iv.StartS}, {"end_s", &iv.EndS},
			{"carbon_g_per_kwh", &iv.CarbonGPerKWh},
			{"price_usd_per_kwh", &iv.PriceUSDPerKWh},
			{"cap_w", &iv.CapW},
		} {
			v, err := field(rec, f.name)
			if err != nil {
				return nil, fmt.Errorf("grid: signal CSV line %d, column %s: %w", line, f.name, err)
			}
			*f.dst = v
		}
		s.Intervals = append(s.Intervals, iv)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// diurnal24 holds the bundled trace's hourly (carbon gCO₂/kWh, price
// $/kWh) values: a high fossil-heavy overnight base, a deep midday
// solar valley, and a steep evening ramp peak — the canonical shape of
// a solar-rich grid (e.g. CAISO), against which temporal shifting has
// the most leverage.
var diurnal24 = [24][2]float64{
	{455, 0.062}, {460, 0.060}, {462, 0.059}, {458, 0.059}, // 00-03
	{450, 0.060}, {440, 0.064}, {424, 0.072}, {400, 0.085}, // 04-07
	{365, 0.090}, {320, 0.078}, {278, 0.062}, {248, 0.052}, // 08-11
	{232, 0.048}, {228, 0.047}, {236, 0.049}, {258, 0.056}, // 12-15
	{300, 0.074}, {368, 0.110}, {455, 0.185}, {520, 0.240}, // 16-19
	{540, 0.252}, {512, 0.205}, {486, 0.120}, {468, 0.080}, // 20-23
}

// Diurnal24h returns the bundled 24-hour synthetic diurnal trace:
// hourly intervals over one day, no facility caps.
func Diurnal24h() *Signal {
	s := &Signal{Name: "diurnal-24h"}
	for h, v := range diurnal24 {
		s.Intervals = append(s.Intervals, Interval{
			StartS:         float64(h) * 3600,
			EndS:           float64(h+1) * 3600,
			CarbonGPerKWh:  v[0],
			PriceUSDPerKWh: v[1],
		})
	}
	return s
}

// GenOptions parameterizes Generate for scenario sweeps.
type GenOptions struct {
	// Name labels the generated trace.
	Name string

	// Intervals is the number of steps; 0 means 24.
	Intervals int

	// IntervalS is each step's duration in seconds; 0 means 3600.
	IntervalS float64

	// CarbonBase and CarbonSwing shape the sinusoidal carbon curve
	// base − swing·sin(2π k/N + Phase); zeros mean 400 and 180 g/kWh.
	CarbonBase, CarbonSwing float64

	// PriceBase and PriceSwing shape the price curve the same way;
	// zeros mean 0.11 and 0.07 $/kWh.
	PriceBase, PriceSwing float64

	// Phase rotates both curves, in radians.
	Phase float64

	// Jitter adds deterministic per-interval variation of the given
	// relative magnitude (0 = smooth), derived from Seed.
	Jitter float64

	// Seed selects the jitter stream.
	Seed int64

	// CapW applies a constant facility cap to every interval; 0 = none.
	CapW float64
}

// Generate builds a deterministic sinusoidal signal for scenario
// sweeps: carbon and price move together (dirty hours are expensive
// hours), with optional seeded jitter.
func Generate(o GenOptions) *Signal {
	n := o.Intervals
	if n <= 0 {
		n = 24
	}
	dur := o.IntervalS
	if dur <= 0 {
		dur = 3600
	}
	cb, cs := o.CarbonBase, o.CarbonSwing
	if cb == 0 {
		cb = 400
	}
	if cs == 0 {
		cs = 180
	}
	pb, ps := o.PriceBase, o.PriceSwing
	if pb == 0 {
		pb = 0.11
	}
	if ps == 0 {
		ps = 0.07
	}
	// A tiny multiplicative congruential stream keeps the jitter
	// deterministic per (Seed, interval) without pulling in math/rand.
	state := uint64(o.Seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53) // [0, 1)
	}
	s := &Signal{Name: o.Name}
	for k := 0; k < n; k++ {
		wave := math.Sin(2*math.Pi*float64(k)/float64(n) + o.Phase)
		jc, jp := 1.0, 1.0
		if o.Jitter > 0 {
			jc = 1 + o.Jitter*(2*next()-1)
			jp = 1 + o.Jitter*(2*next()-1)
		}
		s.Intervals = append(s.Intervals, Interval{
			StartS:         float64(k) * dur,
			EndS:           float64(k+1) * dur,
			CarbonGPerKWh:  math.Max(10, (cb-cs*wave)*jc),
			PriceUSDPerKWh: math.Max(0.005, (pb-ps*wave)*jp),
			CapW:           o.CapW,
		})
	}
	return s
}
