package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// sloHarness is a registry + tracer + engine triple with a fake clock.
type sloHarness struct {
	reg    *Registry
	tracer *Tracer
	eng    *SLOEngine
	clk    *testClock
}

func newSLOHarness(t *testing.T, rules []SLO) *sloHarness {
	t.Helper()
	h := &sloHarness{reg: NewRegistry()}
	h.tracer = NewTracer(32)
	h.clk = &testClock{now: time.Unix(1_700_000_000, 0)}
	h.tracer.SetClock(h.clk.Now)
	h.eng = NewSLOEngine(h.reg, h.tracer, rules)
	return h
}

// TestSLORatioTransitions walks a ratio rule through its full life:
// no traffic is ok, a sustained failure burn breaches, recovery passes
// back through warn (long window still dirty) to ok, and every
// transition fires the hook exactly once with the right from/to.
func TestSLORatioTransitions(t *testing.T) {
	rule := SLO{
		Name: "fail-ratio", BadMetric: "bad_total", GoodMetric: "good_total",
		Max: 0.10, ShortWindow: time.Minute, LongWindow: 10 * time.Minute,
	}
	h := newSLOHarness(t, []SLO{rule})
	bad := h.reg.Counter("bad_total", "")
	good := h.reg.Counter("good_total", "")

	type hop struct{ from, to string }
	var hops []hop
	h.eng.OnTransition(func(r SLO, from, to string, st SLOStatus) {
		if r.Name != rule.Name {
			t.Errorf("transition for %q", r.Name)
		}
		hops = append(hops, hop{from, to})
	})

	// No observations: ok, zero value (no traffic cannot violate).
	st := h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK || st.Value != 0 || st.BurnRate != 0 {
		t.Fatalf("idle status %+v", st)
	}

	// A failure burn inside both windows: immediate breach, burn rate
	// value/threshold.
	bad.Inc()
	bad.Inc()
	good.Add(2)
	h.clk.Advance(30 * time.Second)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusBreach || st.Value != 0.5 || st.ShortValue != 0.5 {
		t.Fatalf("burn status %+v", st)
	}
	if st.BurnRate < 4.9 || st.BurnRate > 5.1 {
		t.Fatalf("burn rate %v, want ~5", st.BurnRate)
	}

	// A little healthy traffic pushes the short window clean while the
	// long window still remembers the burn: warn, not ok.
	h.clk.Advance(2 * time.Minute)
	good.Add(10)
	h.clk.Advance(30 * time.Second)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusWarn {
		t.Fatalf("recovering status %+v", st)
	}
	if st.ShortValue != 0 || st.Value <= rule.Max {
		t.Fatalf("recovering windows short=%v long=%v", st.ShortValue, st.Value)
	}

	// Once the burn ages out of the long window: ok again.
	h.clk.Advance(11 * time.Minute)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK {
		t.Fatalf("recovered status %+v", st)
	}

	want := []hop{{"ok", "breach"}, {"breach", "warn"}, {"warn", "ok"}}
	if len(hops) != len(want) {
		t.Fatalf("transitions %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition[%d] = %v, want %v", i, hops[i], want[i])
		}
	}
}

// TestSLOQuantileRule pins the histogram form: the p99 over the
// window's bucket deltas is compared against Max, and observations
// that age past the long window stop counting.
func TestSLOQuantileRule(t *testing.T) {
	rule := SLO{
		Name: "lat-p99", Metric: "lat_seconds", Quantile: 0.99, Max: 1.0,
		ShortWindow: time.Minute, LongWindow: 10 * time.Minute,
	}
	h := newSLOHarness(t, []SLO{rule})
	hist := h.reg.Histogram("lat_seconds", "", []float64{0.1, 1, 10})

	st := h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK || st.Value != 0 {
		t.Fatalf("idle status %+v", st)
	}

	// 99 fast, 1 slow: p99 lands in the fast bucket — ok.
	for i := 0; i < 99; i++ {
		hist.Observe(0.05)
	}
	hist.Observe(5)
	h.clk.Advance(30 * time.Second)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK || st.Value > rule.Max {
		t.Fatalf("fast traffic status %+v", st)
	}

	// A slow burst dominates both windows: breach.
	for i := 0; i < 50; i++ {
		hist.Observe(5)
	}
	h.clk.Advance(30 * time.Second)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusBreach || st.Value <= rule.Max {
		t.Fatalf("slow burst status %+v", st)
	}

	// After the burst ages out of both windows with no new traffic the
	// deltas are empty: ok (not NaN, not sticky-breach).
	h.clk.Advance(11 * time.Minute)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK || st.Value != 0 {
		t.Fatalf("aged-out status %+v", st)
	}
}

// TestSLOWorstTraceAttribution pins the breach → trace cross-link: a
// violated ratio rule names the most recent errored span's trace, and
// the link clears once the rule recovers.
func TestSLOWorstTraceAttribution(t *testing.T) {
	rule := SLO{
		Name: "fail-ratio", BadMetric: "bad_total", GoodMetric: "good_total",
		Max: 0.10, SpanName: "solve",
		ShortWindow: time.Minute, LongWindow: 10 * time.Minute,
	}
	h := newSLOHarness(t, []SLO{rule})
	bad := h.reg.Counter("bad_total", "")
	good := h.reg.Counter("good_total", "")

	_, sp := h.tracer.StartSpan(context.Background(), "solve")
	sp.Fail(fmt.Errorf("injected"))
	sp.End()
	bad.Inc()

	h.clk.Advance(time.Second)
	st := h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusBreach || st.WorstTraceID != sp.TraceID() {
		t.Fatalf("breach attribution %+v, want trace %s", st, sp.TraceID())
	}

	// Recovery clears the link.
	h.clk.Advance(2 * time.Minute)
	good.Add(100)
	h.clk.Advance(12 * time.Minute)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusOK || st.WorstTraceID != "" {
		t.Fatalf("recovered attribution %+v", st)
	}
}

// TestSLOValidation pins the misconfiguration panics: a rule that is
// neither form, a quantile out of range, and a duplicate name all
// refuse to build.
func TestSLOValidation(t *testing.T) {
	expectPanic := func(name string, rules []SLO) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		NewSLOEngine(NewRegistry(), nil, rules)
	}
	expectPanic("empty name", []SLO{{Max: 1}})
	expectPanic("no form", []SLO{{Name: "x", Max: 1}})
	expectPanic("both forms", []SLO{{Name: "x", Metric: "m", Quantile: 0.9, BadMetric: "b", GoodMetric: "g", Max: 1}})
	expectPanic("quantile out of range", []SLO{{Name: "x", Metric: "m", Quantile: 1.5, Max: 1}})
	expectPanic("ratio missing good", []SLO{{Name: "x", BadMetric: "b", Max: 1}})
	expectPanic("negative max", []SLO{{Name: "x", Metric: "m", Quantile: 0.9, Max: -1}})
	expectPanic("duplicate", []SLO{
		{Name: "x", Metric: "m", Quantile: 0.9, Max: 1},
		{Name: "x", Metric: "m", Quantile: 0.5, Max: 1},
	})
	// A valid pair builds and evaluates in rule order.
	eng := NewSLOEngine(NewRegistry(), nil, []SLO{
		{Name: "a", Metric: "m", Quantile: 0.9, Max: 1},
		{Name: "b", BadMetric: "bm", GoodMetric: "gm", Max: 0.5},
	})
	out := eng.Evaluate(time.Unix(1_700_000_000, 0))
	if len(out) != 2 || out[0].Name != "a" || out[1].Name != "b" {
		t.Fatalf("evaluate order %+v", out)
	}
}

// TestSLOSinceTracksLevelChanges pins SinceUnixS: it is stamped at the
// transition and held while the level is stable.
func TestSLOSinceTracksLevelChanges(t *testing.T) {
	rule := SLO{
		Name: "fail-ratio", BadMetric: "bad_total", GoodMetric: "good_total",
		Max: 0.10, ShortWindow: time.Minute, LongWindow: 10 * time.Minute,
	}
	h := newSLOHarness(t, []SLO{rule})
	bad := h.reg.Counter("bad_total", "")
	h.reg.Counter("good_total", "")

	h.eng.Evaluate(h.clk.Now())
	bad.Inc()
	h.clk.Advance(time.Minute)
	breachAt := h.clk.Now()
	st := h.eng.Evaluate(breachAt)[0]
	wantSince := float64(breachAt.UnixNano()) / 1e9
	if st.Status != StatusBreach || st.SinceUnixS != wantSince {
		t.Fatalf("breach since %v, want %v (%+v)", st.SinceUnixS, wantSince, st)
	}
	// Still breaching half a short-window later: since is unchanged.
	h.clk.Advance(30 * time.Second)
	st = h.eng.Evaluate(h.clk.Now())[0]
	if st.Status != StatusBreach || st.SinceUnixS != wantSince {
		t.Fatalf("held since %v, want %v", st.SinceUnixS, wantSince)
	}
}
