package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a hand-advanced clock for deterministic durations.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTracer(capacity int) (*Tracer, *testClock) {
	tr := NewTracer(capacity)
	clk := &testClock{now: time.Unix(1_700_000_000, 0)}
	tr.SetClock(clk.Now)
	return tr, clk
}

// TestSpanTreeAssembly pins the core lifecycle: a root with two
// children (one errored) assembles into one trace with correct
// parentage, durations from the tracer clock, ordering by start time,
// and the trace-level error flag set.
func TestSpanTreeAssembly(t *testing.T) {
	tr, clk := newTestTracer(16)

	ctx, root := tr.StartSpan(context.Background(), "op")
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatal("root span has empty IDs")
	}
	clk.Advance(10 * time.Millisecond)
	cctx, c1 := Child(ctx, "step1")
	if TraceIDFromContext(cctx) != root.TraceID() {
		t.Fatal("child context lost the trace ID")
	}
	clk.Advance(20 * time.Millisecond)
	c1.SetAttr("k", "v")
	c1.End()
	_, c2 := Child(ctx, "step2")
	c2.Fail(fmt.Errorf("boom"))
	clk.Advance(5 * time.Millisecond)
	c2.End()
	clk.Advance(5 * time.Millisecond)
	root.End()

	traces := tr.Traces(0, 0, "")
	if len(traces) != 1 {
		t.Fatalf("%d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.TraceID != root.TraceID() || got.Root != "op" || !got.Err {
		t.Fatalf("trace header %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("%d spans, want 3", len(got.Spans))
	}
	// Start order: op, step1, step2.
	for i, want := range []string{"op", "step1", "step2"} {
		if got.Spans[i].Name != want {
			t.Fatalf("span[%d] = %q, want %q", i, got.Spans[i].Name, want)
		}
	}
	op, s1, s2 := got.Spans[0], got.Spans[1], got.Spans[2]
	if s1.ParentID != op.SpanID || s2.ParentID != op.SpanID || op.ParentID != "" {
		t.Fatalf("parentage op=%s s1<-%s s2<-%s", op.SpanID, s1.ParentID, s2.ParentID)
	}
	if s1.Attrs["k"] != "v" {
		t.Fatalf("child attrs %v", s1.Attrs)
	}
	if s2.Error != "boom" || op.Error != "" || s1.Error != "" {
		t.Fatalf("error marks op=%q s1=%q s2=%q", op.Error, s1.Error, s2.Error)
	}
	const eps = 1e-9
	if d := s1.DurS; d < 0.02-eps || d > 0.02+eps {
		t.Fatalf("step1 duration %v, want 20ms", d)
	}
	if d := op.DurS; d < 0.04-eps || d > 0.04+eps {
		t.Fatalf("root duration %v, want 40ms", d)
	}
	if got.DurS != op.DurS || got.StartUnixS != op.StartUnixS {
		t.Fatalf("trace duration/start %v/%v, want the root's %v/%v",
			got.DurS, got.StartUnixS, op.DurS, op.StartUnixS)
	}
}

// TestChildWithoutActiveSpanIsNoop pins the hot-path contract: with no
// active span in the context, Child returns a nil span whose whole
// method set is safe, and nothing is recorded.
func TestChildWithoutActiveSpanIsNoop(t *testing.T) {
	tr, _ := newTestTracer(4)
	ctx, sp := Child(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("Child without a trace returned %+v", sp)
	}
	if ctx != context.Background() {
		t.Fatal("Child without a trace replaced the context")
	}
	// The nil span tolerates every call, including on a nil ctx chain.
	sp.SetAttr("k", "v")
	sp.Fail(fmt.Errorf("x"))
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span trace ID %q", got)
	}
	if n := len(tr.Traces(0, 0, "")); n != 0 {
		t.Fatalf("no-op spans recorded %d traces", n)
	}
}

// TestTracesFilters pins the query surface: newest-first ordering by
// last finished span, the limit cap, the min-duration floor, and the
// op (contains-span-name) filter.
func TestTracesFilters(t *testing.T) {
	tr, clk := newTestTracer(64)

	mk := func(name string, dur time.Duration) string {
		ctx, root := tr.StartSpan(context.Background(), name)
		_, c := Child(ctx, name+".inner")
		clk.Advance(dur)
		c.End()
		root.End()
		return root.TraceID()
	}
	a := mk("a", 10*time.Millisecond)
	b := mk("b", 50*time.Millisecond)
	c := mk("c", 30*time.Millisecond)

	all := tr.Traces(0, 0, "")
	if len(all) != 3 || all[0].TraceID != c || all[1].TraceID != b || all[2].TraceID != a {
		t.Fatalf("traces out of order: %+v", all)
	}
	if lim := tr.Traces(2, 0, ""); len(lim) != 2 || lim[0].TraceID != c {
		t.Fatalf("limit=2 returned %+v", lim)
	}
	if slow := tr.Traces(0, 40*time.Millisecond, ""); len(slow) != 1 || slow[0].TraceID != b {
		t.Fatalf("min_dur filter returned %+v", slow)
	}
	if byOp := tr.Traces(0, 0, "b.inner"); len(byOp) != 1 || byOp[0].TraceID != b {
		t.Fatalf("op filter returned %+v", byOp)
	}
	if none := tr.Traces(0, 0, "nope"); len(none) != 0 {
		t.Fatalf("op filter for unknown span returned %+v", none)
	}
}

// TestTracerRingEviction pins the bounded-memory contract: the ring
// keeps the newest spans, counts drops, and reports partial traces
// (evicted root → Root "" and max-span duration).
func TestTracerRingEviction(t *testing.T) {
	tr, clk := newTestTracer(4)
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 6; i++ {
		_, c := Child(ctx, fmt.Sprintf("c%d", i))
		clk.Advance(time.Millisecond)
		c.End()
	}
	root.End() // 7th push into a 4-slot ring
	if got := tr.Drops(); got != 3 {
		t.Fatalf("drops %d, want 3", got)
	}
	traces := tr.Traces(0, 0, "")
	if len(traces) != 1 || len(traces[0].Spans) != 4 {
		t.Fatalf("retained %+v", traces)
	}
	// The root survived (pushed last; it sorts first by start time) and
	// the oldest children were evicted.
	if traces[0].Root != "root" {
		t.Fatalf("root %q", traces[0].Root)
	}
	if traces[0].Spans[0].Name != "root" || traces[0].Spans[1].Name != "c3" {
		t.Fatalf("spans %+v", traces[0].Spans)
	}

	// A trace whose root is evicted reports Root "" and the longest
	// retained span's duration.
	tr2, clk2 := newTestTracer(2)
	ctx2, root2 := tr2.StartSpan(context.Background(), "gone")
	clk2.Advance(time.Millisecond)
	root2.End()
	for i := 0; i < 2; i++ {
		_, c := Child(ctx2, "kept")
		clk2.Advance(time.Duration(i+1) * time.Millisecond)
		c.End()
	}
	got := tr2.Traces(0, 0, "")
	if len(got) != 1 || got[0].Root != "" {
		t.Fatalf("evicted-root trace %+v", got)
	}
	if want := (2 * time.Millisecond).Seconds(); got[0].DurS != want {
		t.Fatalf("evicted-root duration %v, want %v (longest retained)", got[0].DurS, want)
	}
}

// TestOnPushHook pins the per-span mirror hook: every committed span
// fires the callback exactly once with its final state.
func TestOnPushHook(t *testing.T) {
	tr, _ := newTestTracer(8)
	var names []string
	tr.OnPush(func(sp Span) { names = append(names, sp.Name) })
	ctx, root := tr.StartSpan(context.Background(), "r")
	_, c := Child(ctx, "c")
	c.End()
	c.End() // idempotent: no second fire
	root.End()
	if len(names) != 2 || names[0] != "c" || names[1] != "r" {
		t.Fatalf("OnPush saw %v", names)
	}
}

// TestWorstSpan pins breach attribution: longest span for quantile
// rules, most recently finished errored span for ratio rules, and the
// since cutoff.
func TestWorstSpan(t *testing.T) {
	tr, clk := newTestTracer(16)
	start := clk.Now()

	mk := func(dur time.Duration, fail bool) string {
		_, sp := tr.StartSpan(context.Background(), "solve")
		clk.Advance(dur)
		if fail {
			sp.Fail(fmt.Errorf("bad"))
		}
		sp.End()
		return sp.TraceID()
	}
	mk(40*time.Millisecond, false) // old and slow
	clk.Advance(time.Hour)
	cutoff := clk.Now()
	okID := mk(30*time.Millisecond, false)
	errID := mk(10*time.Millisecond, true)
	mk(20*time.Millisecond, false)

	if got := tr.WorstSpan("solve", cutoff, false); got != okID {
		t.Fatalf("longest since cutoff %q, want %q", got, okID)
	}
	if got := tr.WorstSpan("solve", start, false); got == okID || got == errID {
		t.Fatalf("longest overall picked %q, want the old 40ms span", got)
	}
	if got := tr.WorstSpan("solve", cutoff, true); got != errID {
		t.Fatalf("errOnly %q, want %q", got, errID)
	}
	if got := tr.WorstSpan("other", cutoff, false); got != "" {
		t.Fatalf("unknown span name matched %q", got)
	}
}

// TestTraceparentRoundTrip pins the header codec: format → parse is
// the identity, remote continuation adopts the inbound trace, and the
// malformed-header catalog is rejected.
func TestTraceparentRoundTrip(t *testing.T) {
	h := NewTraceparent()
	traceID, spanID, ok := ParseTraceparent(h)
	if !ok || len(traceID) != 32 || len(spanID) != 16 {
		t.Fatalf("minted traceparent %q parsed to (%q, %q, %v)", h, traceID, spanID, ok)
	}
	if got := FormatTraceparent(traceID, spanID); got != h {
		t.Fatalf("round trip %q -> %q", h, got)
	}

	tr, _ := newTestTracer(4)
	ctx, sp := tr.StartRemote(context.Background(), "http /x", traceID, spanID)
	if sp.TraceID() != traceID {
		t.Fatalf("remote span trace %q, want %q", sp.TraceID(), traceID)
	}
	if got := Traceparent(ctx); !strings.HasPrefix(got, "00-"+traceID+"-") {
		t.Fatalf("outbound traceparent %q does not continue the trace", got)
	}
	// No inbound header: a fresh trace.
	_, fresh := tr.StartRemote(context.Background(), "http /x", "", "")
	if fresh.TraceID() == "" || fresh.TraceID() == traceID {
		t.Fatalf("fresh remote trace %q", fresh.TraceID())
	}

	for _, bad := range []string{
		"",
		"garbage",
		"00-" + traceID + "-" + spanID, // missing flags
		"00-" + traceID[:31] + "-" + spanID + "-01",             // short trace ID
		"00-" + traceID + "-" + spanID[:15] + "-01",             // short span ID
		"00-" + strings.Repeat("0", 32) + "-" + spanID + "-01",  // all-zero trace
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01", // all-zero span
		"00-" + strings.Repeat("G", 32) + "-" + spanID + "-01",  // non-hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Version-field lenient, whitespace tolerant.
	if _, _, ok := ParseTraceparent(" ff-" + traceID + "-" + spanID + "-00 "); !ok {
		t.Error("lenient version/whitespace header rejected")
	}
}

// TestTracerRace hammers one tracer from many goroutines — span
// creation, attrs, ends, and concurrent reads — relying on -race.
func TestTracerRace(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartSpan(context.Background(), "op")
				_, c := Child(ctx, "inner")
				c.SetAttr("g", fmt.Sprint(g))
				c.End()
				root.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tr.Traces(4, 0, "")
			tr.WorstSpan("op", time.Time{}, false)
			tr.Drops()
		}
	}()
	wg.Wait()
}
