// Package partition implements minimum-imbalance pipeline partitioning
// (paper §2.2 and Appendix B.1): splitting a model's layers into N
// contiguous stages so that the ratio of the longest stage's forward
// computation cost to the shortest's is minimized. Only forward cost is
// considered, as backward cost is proportional to it (Appendix B.1).
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Result describes a stage partition of a layered model.
type Result struct {
	// Boundaries holds N+1 layer indices [0, b1, ..., L]; stage s spans
	// layers [Boundaries[s], Boundaries[s+1]). This is the format of
	// paper Table 7.
	Boundaries []int

	// StageCosts is the summed forward cost of each stage.
	StageCosts []float64

	// Ratio is the imbalance ratio: max stage cost / min stage cost.
	// 1.00 means perfect balance.
	Ratio float64
}

// MinImbalance finds the contiguous partition of costs into n stages that
// minimizes the imbalance ratio max/min. It runs in O(L² · candidates)
// using a feasibility DP per candidate minimum stage cost; this is exact
// (proved against brute force in tests), matching the paper's exhaustive
// search.
func MinImbalance(costs []float64, n int) (Result, error) {
	l := len(costs)
	if n <= 0 {
		return Result{}, fmt.Errorf("partition: need at least one stage, got %d", n)
	}
	if l < n {
		return Result{}, fmt.Errorf("partition: %d layers cannot form %d stages", l, n)
	}
	for i, c := range costs {
		if c <= 0 {
			return Result{}, fmt.Errorf("partition: layer %d has non-positive cost %v", i, c)
		}
	}

	// Prefix sums for O(1) segment cost.
	prefix := make([]float64, l+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	seg := func(i, j int) float64 { return prefix[j] - prefix[i] }

	// Candidate minimum stage costs: every contiguous segment sum that
	// could be the smallest stage, i.e. at most total/n.
	total := prefix[l]
	candSet := map[float64]bool{}
	for i := 0; i < l; i++ {
		for j := i + 1; j <= l; j++ {
			if s := seg(i, j); s <= total/float64(n)+1e-9 {
				candSet[s] = true
			}
		}
	}
	cands := make([]float64, 0, len(candSet))
	for c := range candSet {
		cands = append(cands, c)
	}
	// Try larger minimums first: they bound the ratio from below more
	// tightly, enabling early exit once no candidate can improve.
	sort.Sort(sort.Reverse(sort.Float64Slice(cands)))

	best := Result{Ratio: math.Inf(1)}
	for _, minCost := range cands {
		if best.Ratio < math.Inf(1) && total/float64(n)/minCost >= best.Ratio {
			// Even a perfectly balanced partition at this minimum cannot
			// beat the best found, and smaller candidates are worse.
			break
		}
		maxCost, bounds, ok := minMaxWithFloor(prefix, n, minCost)
		if !ok {
			continue
		}
		// Recover the true min stage cost of this partition (it may
		// exceed the floor, improving the ratio).
		minSeen := math.Inf(1)
		for s := 0; s < n; s++ {
			if c := seg(bounds[s], bounds[s+1]); c < minSeen {
				minSeen = c
			}
		}
		ratio := maxCost / minSeen
		if ratio < best.Ratio {
			best = Result{Boundaries: bounds, Ratio: ratio}
		}
	}
	if math.IsInf(best.Ratio, 1) {
		return Result{}, fmt.Errorf("partition: no feasible partition of %d layers into %d stages", l, n)
	}
	best.StageCosts = make([]float64, n)
	for s := 0; s < n; s++ {
		best.StageCosts[s] = seg(best.Boundaries[s], best.Boundaries[s+1])
	}
	return best, nil
}

// minMaxWithFloor finds a partition into n stages where every stage cost is
// at least floor, minimizing the maximum stage cost. It returns the optimal
// maximum, the boundaries, and whether a feasible partition exists.
// Classic interval DP: dp[s][i] = min over j of max(dp[s-1][j], seg(j,i)).
func minMaxWithFloor(prefix []float64, n int, floor float64) (float64, []int, bool) {
	l := len(prefix) - 1
	const eps = 1e-9
	seg := func(i, j int) float64 { return prefix[j] - prefix[i] }

	dp := make([][]float64, n+1)
	arg := make([][]int, n+1)
	for s := range dp {
		dp[s] = make([]float64, l+1)
		arg[s] = make([]int, l+1)
		for i := range dp[s] {
			dp[s][i] = math.Inf(1)
			arg[s][i] = -1
		}
	}
	dp[0][0] = 0
	for s := 1; s <= n; s++ {
		for i := s; i <= l; i++ {
			// Stage s covers (j, i]; scan j from i-1 down. Segment cost
			// grows as j decreases, so stop once dp[s-1][j] can no
			// longer improve the max... dp[s-1][j] is not monotone in
			// j, so scan all (L is small: at most ~100 layers).
			for j := s - 1; j < i; j++ {
				c := seg(j, i)
				if c < floor-eps {
					continue
				}
				if math.IsInf(dp[s-1][j], 1) {
					continue
				}
				m := math.Max(dp[s-1][j], c)
				if m < dp[s][i] {
					dp[s][i] = m
					arg[s][i] = j
				}
			}
		}
	}
	if math.IsInf(dp[n][l], 1) {
		return 0, nil, false
	}
	bounds := make([]int, n+1)
	bounds[n] = l
	for s := n; s >= 1; s-- {
		bounds[s-1] = arg[s][bounds[s]]
	}
	return dp[n][l], bounds, true
}

// BruteForce enumerates every contiguous partition and returns the one with
// the minimum imbalance ratio. Exponential; used as a test oracle and for
// small models.
func BruteForce(costs []float64, n int) (Result, error) {
	l := len(costs)
	if l < n || n <= 0 {
		return Result{}, fmt.Errorf("partition: %d layers, %d stages infeasible", l, n)
	}
	prefix := make([]float64, l+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	seg := func(i, j int) float64 { return prefix[j] - prefix[i] }

	best := Result{Ratio: math.Inf(1)}
	bounds := make([]int, n+1)
	bounds[0], bounds[n] = 0, l
	var rec func(stage, start int)
	rec = func(stage, start int) {
		if stage == n-1 {
			// Last stage spans [start, l).
			mx, mn := 0.0, math.Inf(1)
			bounds[n-1] = start
			for s := 0; s < n; s++ {
				c := seg(bounds[s], bounds[s+1])
				mx = math.Max(mx, c)
				mn = math.Min(mn, c)
			}
			if r := mx / mn; r < best.Ratio {
				best = Result{Boundaries: append([]int(nil), bounds...), Ratio: r}
			}
			return
		}
		bounds[stage] = start
		for next := start + 1; next <= l-(n-stage-1); next++ {
			bounds[stage+1] = next
			rec(stage+1, next)
		}
	}
	if n == 1 {
		best = Result{Boundaries: []int{0, l}, Ratio: 1}
	} else {
		rec(0, 0)
	}
	if math.IsInf(best.Ratio, 1) {
		return Result{}, fmt.Errorf("partition: no feasible partition")
	}
	best.StageCosts = make([]float64, n)
	for s := 0; s < n; s++ {
		best.StageCosts[s] = seg(best.Boundaries[s], best.Boundaries[s+1])
	}
	return best, nil
}

// Balanced returns the partition minimizing the maximum stage cost without
// the ratio objective — the classic planner goal, used as a comparison
// point (and by the ZeusPerStage baseline to pick its stage split).
func Balanced(costs []float64, n int) (Result, error) {
	l := len(costs)
	if l < n || n <= 0 {
		return Result{}, fmt.Errorf("partition: %d layers, %d stages infeasible", l, n)
	}
	prefix := make([]float64, l+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	_, bounds, ok := minMaxWithFloor(prefix, n, 0)
	if !ok {
		return Result{}, fmt.Errorf("partition: infeasible")
	}
	r := Result{Boundaries: bounds, StageCosts: make([]float64, n)}
	mx, mn := 0.0, math.Inf(1)
	for s := 0; s < n; s++ {
		c := prefix[bounds[s+1]] - prefix[bounds[s]]
		r.StageCosts[s] = c
		mx = math.Max(mx, c)
		mn = math.Min(mn, c)
	}
	r.Ratio = mx / mn
	return r, nil
}
