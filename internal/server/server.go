// Package server implements the Perseus server (paper §3.2, Figure 4): a
// framework- and accelerator-agnostic, cluster-wide singleton that
// receives each job's computation DAG and online profiling results,
// asynchronously characterizes the time-energy frontier, caches energy
// schedules in a lookup table, and serves the schedule for
// T_opt = min(T*, T') — updating it when the training infrastructure
// reports a straggler via set_straggler (Table 2).
//
// On top of the per-job machinery, the server exposes the fleet layer
// (internal/fleet): a facility power cap set via POST /fleet/cap makes
// the marginal-cost allocator pick each characterized job's operating
// point on its own frontier, and the allocated iteration time becomes a
// floor under that job's deployed schedule — the fleet-level
// generalization of the extrinsic straggler slowdown.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"perseus/internal/dag"
	"perseus/internal/fleet"
	"perseus/internal/forecast"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/profile"
	"perseus/internal/region"
	"perseus/internal/sched"
)

// JobRequest registers a training job: its pipeline schedule (from which
// the server reconstructs the computation DAG) and accelerator type.
type JobRequest struct {
	Schedule     string  `json:"schedule"` // "1f1b", "gpipe", ...
	Stages       int     `json:"stages"`
	Microbatches int     `json:"microbatches"`
	Chunks       int     `json:"chunks,omitempty"`
	GPU          string  `json:"gpu"`            // gpu preset name
	Unit         float64 `json:"unit,omitempty"` // optimizer τ seconds

	// DataParallel is the number of pipeline replicas; the fleet
	// allocator scales the job's power draw by it. 0 means 1.
	DataParallel int `json:"data_parallel,omitempty"`

	// Weight scales the job's throughput loss in the fleet objective
	// (fleet.Job.Weight). 0 means 1.
	Weight float64 `json:"weight,omitempty"`
}

// JobResponse returns the job handle.
type JobResponse struct {
	JobID string `json:"job_id"`
}

// MeasurementJSON is one profiler observation (client → server).
type MeasurementJSON struct {
	Virtual int     `json:"virtual"`
	Kind    string  `json:"kind"` // "forward" | "backward"
	Freq    int     `json:"freq_mhz"`
	Time    float64 `json:"time_s"`
	Energy  float64 `json:"energy_j"`
}

// ProfileUpload carries a job's complete online profile.
type ProfileUpload struct {
	PBlocking    float64           `json:"p_blocking_w"`
	Measurements []MeasurementJSON `json:"measurements"`
}

// StragglerNotice is the set_straggler payload (paper Table 2): the
// infrastructure anticipates accelerator id becoming Degree times slower
// after Delay seconds. Degree 1 communicates a recovery.
type StragglerNotice struct {
	ID     string  `json:"id"`
	Delay  float64 `json:"delay_s"`
	Degree float64 `json:"degree"`
}

// ScheduleResponse is the energy schedule for the current T_opt.
type ScheduleResponse struct {
	Ready bool `json:"ready"`
	// Time is the planned iteration time of the deployed schedule.
	Time float64 `json:"time_s"`
	// Tmin and TStar bound the frontier.
	Tmin  float64 `json:"tmin_s"`
	TStar float64 `json:"tstar_s"`
	// Freqs is the per-op frequency plan, indexed by schedule op id.
	Freqs []int `json:"freqs_mhz"`
	// Version increments whenever the deployed schedule changes, so
	// clients can poll cheaply.
	Version int `json:"version"`
}

// FrontierResponse lists the characterized frontier.
type FrontierResponse struct {
	Ready  bool      `json:"ready"`
	Time   []float64 `json:"time_s"`
	Energy []float64 `json:"energy_j"`
}

type job struct {
	id    string
	req   JobRequest
	gpu   *gpu.Model
	sched *sched.Schedule

	mu             sync.Mutex
	characterizing bool
	charErr        error
	front          *frontier.Frontier
	table          *frontier.LookupTable // cached front.Table() for the fleet
	tPrime         float64               // anticipated straggler iteration time; 0 = none
	capTime        float64               // fleet-allocated iteration-time floor; 0 = none
	alloc          *fleet.JobAlloc       // latest fleet allocation, if any
	version        int
	pending        *time.Timer   // armed delayed straggler switch, if any
	done           chan struct{} // closed when characterization finishes

	// Emissions accounting: the deployed schedule's power draw is
	// integrated against the grid signal from characterization on.
	// When a forecast is installed, the same draw is also integrated
	// against the forecast's rates (while the job is unplaced), so
	// predicted and realized accrual reconcile.
	accSince    time.Time // accounting start (characterization time)
	accAt       time.Time // last accrual
	energyAccJ  float64
	carbonAccG  float64
	costAccUSD  float64
	predCarbonG float64
	predCostUSD float64
	// predRealCarbonG is the realized carbon over exactly the spans the
	// predicted account covers, so drift compares like with like even
	// when the forecast predicted zero.
	predRealCarbonG float64

	// Placement: the datacenter region the job currently runs in ("" =
	// unplaced; emissions then accrue against the global signal) and
	// the placement history.
	region     string
	placements []placementEvent
}

// placementEvent is one entry of a job's placement history.
type placementEvent struct {
	region string
	at     time.Time
}

// serverRegion is one registered datacenter region: its capacity, cap,
// and grid signal, with the signal's time 0 anchored at registration.
type serverRegion struct {
	name   string
	gpus   int
	capW   float64
	sig    *grid.Signal
	anchor time.Time
}

// Server is the Perseus server. Create with New and expose via Handler.
type Server struct {
	mu   sync.Mutex
	jobs map[string]*job
	ord  []string // registration order, for deterministic fleet output
	next int
	capW float64 // fleet power cap; 0 = uncapped

	// fleetMu serializes whole fleet recomputations (read cap →
	// allocate → deploy floors), so concurrent recomputes cannot
	// interleave their write-backs and deploy floors for a stale cap.
	fleetMu sync.Mutex

	// signal is the current grid trace (nil until uploaded); sigStart
	// anchors its time 0 to the wall clock, and objective is the
	// default temporal-planning objective.
	signal    *grid.Signal
	sigStart  time.Time
	objective grid.Objective

	// Forecast state: the installed model, the latest issued forecast
	// (signal time, anchored like the signal itself), and the default
	// robust planning quantile. replans holds per-job rolling-horizon
	// re-planning state; replanMu serializes re-planning (read state →
	// plan → write back).
	fmodel   forecast.Model
	flevel   float64
	fquant   float64
	fcast    *forecast.Forecast
	fcastAt  time.Time
	replans  map[string]*replanState
	replanMu sync.Mutex

	// regions are the registered datacenter regions, by name and in
	// registration order.
	regions map[string]*serverRegion
	regOrd  []string

	// clock supplies wall-clock time (replaceable in tests).
	clock func() time.Time
}

// New returns an empty server.
func New() *Server {
	return &Server{
		jobs:      map[string]*job{},
		regions:   map[string]*serverRegion{},
		replans:   map[string]*replanState{},
		objective: grid.ObjectiveCarbon,
		clock:     time.Now,
	}
}

// Handler returns the HTTP API:
//
//	POST /jobs                      register a job
//	POST /jobs/{id}/profile        upload profiling results
//	GET  /jobs/{id}/schedule       fetch the deployed energy schedule
//	POST /jobs/{id}/straggler      set_straggler notification
//	GET  /jobs/{id}/frontier       fetch the characterized frontier
//	GET  /jobs/{id}/table          fetch the full energy-schedule lookup table
//	GET  /jobs/{id}/allocation     fetch the job's fleet allocation
//	GET  /jobs/{id}/emissions      fetch the job's cumulative emissions
//	POST /fleet/cap                set the fleet power cap
//	GET  /fleet/status             fetch the fleet-wide allocation
//	POST /grid/signal              install a grid signal (carbon/price/cap trace)
//	GET  /grid/signal              fetch the installed grid signal
//	GET  /grid/plan/{id}           plan a job's temporal schedule over the signal
//	POST /grid/forecast            install a forecast model and issue a forecast
//	GET  /grid/forecast            fetch the latest issued forecast
//	GET  /grid/replan/{id}         roll a job's schedule forward: freeze the executed
//	                               prefix, re-plan the rest on the latest forecast
//	POST /regions                  register a datacenter region (capacity + signal)
//	GET  /regions                  list the registered regions
//	GET  /regions/plan             plan all jobs' spatio-temporal schedules across regions
//	POST /jobs/{id}/placement      place (or migrate) a job into a region
//	GET  /jobs/{id}/placement      fetch a job's placement and history
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/fleet/cap", s.handleFleetCap)
	mux.HandleFunc("/fleet/status", s.handleFleetStatus)
	mux.HandleFunc("/grid/signal", s.handleGridSignal)
	mux.HandleFunc("/grid/plan/", s.handleGridPlan)
	mux.HandleFunc("/grid/forecast", s.handleGridForecast)
	mux.HandleFunc("/grid/replan/", s.handleGridReplan)
	mux.HandleFunc("/regions", s.handleRegions)
	mux.HandleFunc("/regions/plan", s.handleRegionsPlan)
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.Register(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, JobResponse{JobID: j})
}

// Register creates a job and returns its id (the non-HTTP entry point).
func (s *Server) Register(req JobRequest) (string, error) {
	g, err := gpu.ByName(req.GPU)
	if err != nil {
		return "", err
	}
	if req.Chunks == 0 {
		req.Chunks = 1
	}
	sc, err := sched.ByName(req.Schedule, req.Stages, req.Microbatches, req.Chunks)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := fmt.Sprintf("job-%d", s.next)
	s.jobs[id] = &job{id: id, req: req, gpu: g, sched: sc, done: make(chan struct{})}
	s.ord = append(s.ord, id)
	return id, nil
}

func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	parts := strings.SplitN(rest, "/", 2)
	if len(parts) != 2 {
		http.NotFound(w, r)
		return
	}
	j, ok := s.job(parts[0])
	if !ok {
		http.NotFound(w, r)
		return
	}
	switch parts[1] {
	case "profile":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var up ProfileUpload
		if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.UploadProfile(j.id, up); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	case "schedule":
		resp, err := s.Schedule(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "straggler":
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var n StragglerNotice
		if err := json.NewDecoder(r.Body).Decode(&n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.SetStraggler(j.id, n); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	case "frontier":
		writeJSON(w, s.FrontierOf(j.id))
	case "table":
		lt, err := s.Table(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, lt)
	case "allocation":
		resp, err := s.AllocationOf(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "emissions":
		resp, err := s.Emissions(j.id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	case "placement":
		switch r.Method {
		case http.MethodPost:
			var req PlacementRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp, err := s.PlaceJob(j.id, req.Region)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeJSON(w, resp)
		case http.MethodGet:
			resp, err := s.PlacementOf(j.id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, resp)
		default:
			http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
		}
	default:
		http.NotFound(w, r)
	}
}

// UploadProfile stores a job's profiling results and kicks off
// asynchronous frontier characterization (paper §3.2 step 2): training
// continues while the server optimizes.
func (s *Server) UploadProfile(id string, up ProfileUpload) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	var ms []profile.Measurement
	for _, m := range up.Measurements {
		kind, err := parseKind(m.Kind)
		if err != nil {
			return err
		}
		ms = append(ms, profile.Measurement{
			Virtual: m.Virtual, Kind: kind,
			Freq: gpu.Frequency(m.Freq), Time: m.Time, Energy: m.Energy,
		})
	}
	prof, err := profile.Assemble(j.gpu, up.PBlocking, ms)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.characterizing || j.front != nil {
		j.mu.Unlock()
		return fmt.Errorf("server: job %s already profiled", id)
	}
	j.characterizing = true
	j.mu.Unlock()

	go func() {
		graph, err := dag.Build(j.sched, func(op sched.Op) int64 { return 1 })
		var front *frontier.Frontier
		if err == nil {
			front, err = frontier.Characterize(graph, prof, frontier.Options{Unit: j.req.Unit})
		}
		now := s.clock()
		j.mu.Lock()
		j.front, j.charErr = front, err
		if front != nil {
			j.table = front.Table()
			// The job now has a deployed schedule drawing power:
			// emissions accounting starts here.
			j.accSince, j.accAt = now, now
		}
		j.characterizing = false
		j.version++
		j.mu.Unlock()
		close(j.done)
		// The fleet gained a characterized member: under a cap, power
		// must be re-divided.
		s.recomputeFleet()
	}()
	return nil
}

// WaitCharacterized blocks until the job's frontier is ready (test hook
// and CLI convenience).
func (s *Server) WaitCharacterized(id string) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.charErr
}

// SetStraggler records a straggler notification and moves the deployed
// schedule to T_opt = min(T*, T') (paper §3.2 steps 4-5). Degree <= 1
// clears the straggler. A positive Delay defers the switch: the
// infrastructure anticipates the straggler Delay seconds ahead (Table 2),
// so the server arms a timer and flips the deployed schedule when it
// fires.
func (s *Server) SetStraggler(id string, n StragglerNotice) error {
	j, ok := s.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	if n.Degree <= 0 {
		return fmt.Errorf("server: straggler degree must be positive, got %v", n.Degree)
	}
	st := s.gridState()
	j.mu.Lock()
	if j.front == nil {
		j.mu.Unlock()
		return fmt.Errorf("server: job %s not characterized yet", id)
	}
	// The deployed operating point (and so the power draw) is about to
	// move: settle emissions at the old point first.
	apply := func(st gridState) {
		j.accrueLocked(st)
		if n.Degree <= 1 {
			j.tPrime = 0
		} else {
			j.tPrime = j.front.Tmin() * n.Degree
		}
		j.version++
	}
	if n.Delay <= 0 {
		apply(st)
		j.mu.Unlock()
		// A straggler moves the job's T_opt floor, freeing (or taking)
		// fleet power; re-divide it.
		s.recomputeFleet()
		return nil
	}
	if j.pending != nil {
		j.pending.Stop()
	}
	j.pending = time.AfterFunc(time.Duration(n.Delay*float64(time.Second)), func() {
		st := s.gridState()
		j.mu.Lock()
		apply(st)
		j.mu.Unlock()
		s.recomputeFleet()
	})
	j.mu.Unlock()
	return nil
}

// Schedule returns the currently deployed energy schedule: the Tmin
// schedule in normal operation, or the T_opt schedule under a straggler.
func (s *Server) Schedule(id string) (ScheduleResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return ScheduleResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.charErr != nil {
		return ScheduleResponse{}, j.charErr
	}
	if j.front == nil {
		return ScheduleResponse{Ready: false}, nil
	}
	pt := j.front.Lookup(j.deployedTimeLocked(j.front.Tmin()))
	plan := pt.Plan()
	freqs := make([]int, len(plan))
	for i, f := range plan {
		freqs[i] = int(f)
	}
	return ScheduleResponse{
		Ready:   true,
		Time:    pt.Time,
		Tmin:    j.front.Tmin(),
		TStar:   j.front.TStar(),
		Freqs:   freqs,
		Version: j.version,
	}, nil
}

// Table returns the job's serializable energy-schedule lookup table
// (paper §3.2), for persistence or external consumption.
func (s *Server) Table(id string) (*frontier.LookupTable, error) {
	j, ok := s.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	return j.table, nil
}

// FrontierOf returns the characterized frontier's (time, energy) points.
func (s *Server) FrontierOf(id string) FrontierResponse {
	j, ok := s.job(id)
	if !ok {
		return FrontierResponse{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.front == nil {
		return FrontierResponse{}
	}
	resp := FrontierResponse{Ready: true}
	for _, pt := range j.front.Points() {
		resp.Time = append(resp.Time, pt.Time)
		resp.Energy = append(resp.Energy, pt.Energy)
	}
	return resp
}

// FleetCapRequest sets the facility power cap (watts); 0 uncaps.
type FleetCapRequest struct {
	CapW float64 `json:"cap_w"`
}

// JobAllocationResponse is one job's fleet allocation.
type JobAllocationResponse struct {
	JobID string `json:"job_id"`

	// Ready is false until the job is characterized; an unready job
	// draws no planned power and takes no part in the allocation.
	Ready bool `json:"ready"`

	// Time is the allocated planned iteration time; the job's deployed
	// schedule never runs faster while a cap is in force.
	Time float64 `json:"time_s"`

	// PowerW is the job's allocated power draw (all pipelines).
	PowerW float64 `json:"power_w"`

	// FloorTime and Loss mirror fleet.JobAlloc.
	FloorTime float64 `json:"floor_s"`
	Loss      float64 `json:"loss"`
}

// FleetStatusResponse is the fleet-wide allocation.
type FleetStatusResponse struct {
	CapW     float64                 `json:"cap_w"`
	PowerW   float64                 `json:"power_w"`
	Loss     float64                 `json:"loss"`
	Feasible bool                    `json:"feasible"`
	Jobs     []JobAllocationResponse `json:"jobs"`
}

func (s *Server) handleFleetCap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req FleetCapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.SetFleetCap(req.CapW)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.FleetStatus())
}

// SetFleetCap sets the facility power cap and re-divides it across the
// characterized jobs; capW = 0 uncaps the fleet. NaN, infinite, or
// negative watts are rejected (HTTP 400 at the POST /fleet/cap layer) —
// a malformed cap must not silently lift the facility envelope.
func (s *Server) SetFleetCap(capW float64) (FleetStatusResponse, error) {
	if math.IsNaN(capW) || math.IsInf(capW, 0) || capW < 0 {
		return FleetStatusResponse{}, fmt.Errorf("server: fleet cap must be a finite non-negative number of watts, got %v", capW)
	}
	s.mu.Lock()
	s.capW = capW
	s.mu.Unlock()
	return s.recomputeFleet(), nil
}

// FleetStatus recomputes and returns the fleet-wide allocation under
// the current cap.
func (s *Server) FleetStatus() FleetStatusResponse {
	return s.recomputeFleet()
}

// AllocationOf returns a job's latest fleet allocation.
func (s *Server) AllocationOf(id string) (JobAllocationResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return JobAllocationResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.alloc == nil {
		return JobAllocationResponse{JobID: id}, nil
	}
	return JobAllocationResponse{
		JobID:     id,
		Ready:     true,
		Time:      j.alloc.Time,
		PowerW:    j.alloc.PowerW,
		FloorTime: j.alloc.FloorTime,
		Loss:      j.alloc.Loss,
	}, nil
}

// recomputeFleet runs the fleet allocator over every characterized job
// under the current cap, deploys each job's allocated iteration-time
// floor (bumping its schedule version when it changes), and returns the
// fleet-wide view. Jobs still characterizing appear with Ready false.
// The whole recomputation is serialized: the deployed floors always
// reflect one allocation of the cap current when it ran.
func (s *Server) recomputeFleet() FleetStatusResponse {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	gs := s.gridState()
	s.mu.Lock()
	capW := s.capW
	jobs := make([]*job, 0, len(s.ord))
	for _, id := range s.ord {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	var fjobs []fleet.Job
	var ready []int // indices into jobs, aligned with fjobs
	for i, j := range jobs {
		j.mu.Lock()
		if j.table != nil {
			fjobs = append(fjobs, fleet.Job{
				ID:        j.id,
				Table:     j.table,
				Pipelines: j.req.DataParallel,
				Weight:    j.req.Weight,
				TPrime:    j.tPrime,
			})
			ready = append(ready, i)
		}
		j.mu.Unlock()
	}
	alloc := fleet.Allocate(fjobs, capW)

	st := FleetStatusResponse{
		CapW:     alloc.CapW,
		PowerW:   alloc.PowerW,
		Loss:     alloc.Loss,
		Feasible: alloc.Feasible,
	}
	byID := map[string]JobAllocationResponse{}
	for k, ja := range alloc.Jobs {
		j := jobs[ready[k]]
		// Only an actual cap constrains deployment; uncapped allocations
		// sit at the job's own floor, which Schedule derives itself.
		var capTime float64
		if capW > 0 {
			capTime = ja.Time
		}
		j.mu.Lock()
		if j.capTime != capTime {
			// The fleet floor moves the deployed operating point: settle
			// emissions at the old point first.
			j.accrueLocked(gs)
			j.capTime = capTime
			j.version++
		}
		a := ja
		j.alloc = &a
		j.mu.Unlock()
		byID[j.id] = JobAllocationResponse{
			JobID:     j.id,
			Ready:     true,
			Time:      ja.Time,
			PowerW:    ja.PowerW,
			FloorTime: ja.FloorTime,
			Loss:      ja.Loss,
		}
	}
	for _, j := range jobs {
		if resp, ok := byID[j.id]; ok {
			st.Jobs = append(st.Jobs, resp)
		} else {
			st.Jobs = append(st.Jobs, JobAllocationResponse{JobID: j.id})
		}
	}
	return st
}

// gridState is a consistent snapshot of the grid signal, the region
// signals, and the clock, taken (under s.mu) before a job's j.mu so
// accrual never nests the two locks.
type gridState struct {
	sig     *grid.Signal
	fsig    *grid.Signal // latest issued point forecast (signal time, same anchor)
	start   time.Time
	now     time.Time
	regions map[string]*serverRegion
}

func (s *Server) gridState() gridState {
	now := s.clock()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Copy the map: the snapshot outlives s.mu, and concurrent region
	// registrations mutate s.regions (entries themselves are immutable).
	regions := make(map[string]*serverRegion, len(s.regions))
	for name, r := range s.regions {
		regions[name] = r
	}
	st := gridState{sig: s.signal, start: s.sigStart, now: now, regions: regions}
	if s.fcast != nil {
		st.fsig = s.fcast.Signal
	}
	return st
}

// deployedTimeLocked returns the anticipated iteration time the
// deployed schedule is selected for: T' under a straggler (Tmin
// otherwise), floored by the fleet-allocated capTime — a power-capped
// job may not run faster than its share of the facility envelope
// allows. Shared by Schedule and the emissions accrual so the two can
// never charge different operating points. Callers hold j.mu.
func (j *job) deployedTimeLocked(tmin float64) float64 {
	t := j.tPrime
	if t <= 0 {
		t = tmin
	}
	if j.capTime > t {
		t = j.capTime
	}
	return t
}

// deployedPowerLocked returns the power draw of the job's currently
// deployed schedule (all pipelines). Callers hold j.mu.
func (j *job) deployedPowerLocked() float64 {
	if j.table == nil || len(j.table.Points) == 0 {
		return 0
	}
	t := j.deployedTimeLocked(j.table.Tmin())
	pipes := j.req.DataParallel
	if pipes <= 0 {
		pipes = 1
	}
	return float64(pipes) * j.table.AvgPower(j.table.LookupIndex(t))
}

// accrueLocked integrates the deployed schedule's power draw since the
// last accrual into the job's emissions accumulators: at the placed
// region's rates when the job has a placement, at the global signal's
// otherwise (energy only before either exists). Callers hold j.mu and
// must call it before any change to the deployed operating point or
// placement, so each span is charged at the rates that actually
// applied.
func (j *job) accrueLocked(st gridState) {
	if j.accAt.IsZero() || !st.now.After(j.accAt) {
		return
	}
	power := j.deployedPowerLocked()
	sig, start := st.sig, st.start
	if j.region != "" {
		if r, ok := st.regions[j.region]; ok {
			sig, start = r.sig, r.anchor
		}
	}
	var t0, t1 float64
	if sig != nil {
		t0 = j.accAt.Sub(start).Seconds()
		t1 = st.now.Sub(start).Seconds()
	} else {
		t1 = st.now.Sub(j.accAt).Seconds()
	}
	e, c, usd := grid.Accrue(sig, t0, t1, power)
	j.energyAccJ += e
	j.carbonAccG += c
	j.costAccUSD += usd
	// Predicted accrual: the same draw priced at the latest issued
	// forecast's rates. Only meaningful against the global signal, so
	// placed jobs (accruing at a region's rates) are skipped.
	if st.fsig != nil && j.region == "" && st.sig != nil {
		_, pc, pusd := grid.Accrue(st.fsig, j.accAt.Sub(st.start).Seconds(), st.now.Sub(st.start).Seconds(), power)
		j.predCarbonG += pc
		j.predCostUSD += pusd
		j.predRealCarbonG += c
	}
	j.accAt = st.now
}

// GridSignalRequest installs a grid trace and (optionally) the default
// temporal-planning objective.
type GridSignalRequest struct {
	Signal    grid.Signal `json:"signal"`
	Objective string      `json:"objective,omitempty"`
}

// GridSignalResponse summarizes the installed signal.
type GridSignalResponse struct {
	Name      string  `json:"name"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
	Objective string  `json:"objective"`
}

// EmissionsResponse is a job's cumulative emissions accounting since
// characterization: deployed-schedule energy integrated against the
// grid signal (cyclically beyond its horizon).
type EmissionsResponse struct {
	JobID string `json:"job_id"`

	// Ready is false until the job is characterized and drawing power.
	Ready bool `json:"ready"`

	// SinceS is the accounted wall-clock span in seconds.
	SinceS float64 `json:"since_s"`

	// EnergyJ, CarbonG, and CostUSD are the cumulative totals. Carbon
	// and cost stay zero while no signal is installed.
	EnergyJ float64 `json:"energy_j"`
	CarbonG float64 `json:"carbon_g"`
	CostUSD float64 `json:"cost_usd"`

	// PredCarbonG and PredCostUSD accrue the same draw at the latest
	// issued forecast's rates (zero until POST /grid/forecast; global
	// signal only — a placed job accrues at its region's rates, which
	// the forecast does not cover). DriftCarbonG is realized minus
	// predicted over exactly the forecast-covered spans: positive means
	// the grid ran dirtier than forecast.
	PredCarbonG  float64 `json:"pred_carbon_g"`
	PredCostUSD  float64 `json:"pred_cost_usd"`
	DriftCarbonG float64 `json:"drift_carbon_g"`
}

func (s *Server) handleGridSignal(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req GridSignalRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.SetGridSignal(req.Signal, req.Objective)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	case http.MethodGet:
		s.mu.Lock()
		sig := s.signal
		s.mu.Unlock()
		if sig == nil {
			http.Error(w, "no grid signal installed", http.StatusNotFound)
			return
		}
		writeJSON(w, sig)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// SetGridSignal validates and installs a grid trace, anchoring its
// time 0 at the current wall clock, and sets the default planning
// objective ("" keeps carbon). Emissions accrued so far are settled
// against the previous signal first, and all forecast and
// rolling-horizon re-planning state is dropped: a forecast of the old
// trace priced on the new one — or a frozen schedule prefix measured
// against the old anchor — would silently corrupt every predicted
// account downstream. Operators re-POST /grid/forecast after a signal
// change.
func (s *Server) SetGridSignal(sig grid.Signal, objective string) (GridSignalResponse, error) {
	obj, err := grid.ParseObjective(objective)
	if err != nil {
		return GridSignalResponse{}, err
	}
	if err := sig.Validate(); err != nil {
		return GridSignalResponse{}, err
	}
	// Settle every job's accounting under the old signal before the
	// rates change.
	st := s.gridState()
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.ord))
	for _, id := range s.ord {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		j.accrueLocked(st)
		j.mu.Unlock()
	}
	s.mu.Lock()
	s.signal = &sig
	s.sigStart = st.now
	s.objective = obj
	s.fmodel = nil
	s.flevel = 0
	s.fquant = 0
	s.fcast = nil
	s.fcastAt = time.Time{}
	s.mu.Unlock()
	s.replanMu.Lock()
	s.replans = map[string]*replanState{}
	s.replanMu.Unlock()
	return GridSignalResponse{
		Name:      sig.Name,
		Intervals: len(sig.Intervals),
		HorizonS:  sig.Horizon(),
		Objective: string(obj),
	}, nil
}

func (s *Server) handleGridPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/grid/plan/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	target, err := parse("iterations")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad iterations: %v", err), http.StatusBadRequest)
		return
	}
	deadline, err := parse("deadline")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad deadline: %v", err), http.StatusBadRequest)
		return
	}
	plan, err := s.GridPlan(id, target, deadline, q.Get("objective"))
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.job(id); !ok {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, plan)
}

// GridPlan plans a job's temporal schedule over the installed signal:
// complete target iterations by the deadline (seconds in signal time;
// 0 means the signal horizon) minimizing the objective ("" uses the
// server default). The job must be characterized and a signal
// installed.
func (s *Server) GridPlan(id string, target, deadline float64, objective string) (*grid.Plan, error) {
	j, ok := s.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	s.mu.Lock()
	sig := s.signal
	obj := s.objective
	s.mu.Unlock()
	if sig == nil {
		return nil, fmt.Errorf("server: no grid signal installed")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			return nil, err
		}
	}
	j.mu.Lock()
	table := j.table
	pipes := j.req.DataParallel
	j.mu.Unlock()
	if table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	return grid.Optimize(table, sig, grid.Options{
		Target:     target,
		DeadlineS:  deadline,
		Objective:  obj,
		PowerScale: float64(pipes),
	})
}

// Emissions settles and returns a job's cumulative emissions
// accounting.
func (s *Server) Emissions(id string) (EmissionsResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return EmissionsResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	st := s.gridState()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.accrueLocked(st)
	resp := EmissionsResponse{JobID: id}
	if !j.accSince.IsZero() {
		resp.Ready = true
		resp.SinceS = j.accAt.Sub(j.accSince).Seconds()
		resp.EnergyJ = j.energyAccJ
		resp.CarbonG = j.carbonAccG
		resp.CostUSD = j.costAccUSD
		resp.PredCarbonG = j.predCarbonG
		resp.PredCostUSD = j.predCostUSD
		resp.DriftCarbonG = j.predRealCarbonG - j.predCarbonG
	}
	return resp, nil
}

// RegionRequest registers a datacenter region: its GPU capacity,
// facility power cap, and grid signal.
type RegionRequest struct {
	Name   string      `json:"name"`
	GPUs   int         `json:"gpus,omitempty"`
	CapW   float64     `json:"cap_w,omitempty"`
	Signal grid.Signal `json:"signal"`
}

// RegionInfo summarizes one registered region.
type RegionInfo struct {
	Name      string  `json:"name"`
	GPUs      int     `json:"gpus"`
	CapW      float64 `json:"cap_w"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
}

// PlacementRequest places a job into a region.
type PlacementRequest struct {
	Region string `json:"region"`
}

// PlacementEntry is one step of a job's placement history.
type PlacementEntry struct {
	Region  string  `json:"region"`
	AtUnixS float64 `json:"at_unix_s"`
}

// PlacementResponse reports a job's current placement.
type PlacementResponse struct {
	JobID string `json:"job_id"`

	// Region is the current placement ("" = unplaced).
	Region string `json:"region"`

	// Migrations counts region changes after the initial placement.
	Migrations int `json:"migrations"`

	// History lists every placement in time order.
	History []PlacementEntry `json:"history,omitempty"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req RegionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		info, err := s.RegisterRegion(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, info)
	case http.MethodGet:
		writeJSON(w, s.Regions())
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// RegisterRegion validates and registers a datacenter region, anchoring
// its signal's time 0 at the current wall clock.
func (s *Server) RegisterRegion(req RegionRequest) (RegionInfo, error) {
	if req.Name == "" {
		return RegionInfo{}, fmt.Errorf("server: region needs a name")
	}
	if req.GPUs < 0 {
		return RegionInfo{}, fmt.Errorf("server: region %s capacity must be non-negative, got %d", req.Name, req.GPUs)
	}
	if math.IsNaN(req.CapW) || math.IsInf(req.CapW, 0) || req.CapW < 0 {
		return RegionInfo{}, fmt.Errorf("server: region %s cap must be a finite non-negative number of watts, got %v", req.Name, req.CapW)
	}
	if err := req.Signal.Validate(); err != nil {
		return RegionInfo{}, err
	}
	now := s.clock()
	sig := req.Signal
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.regions[req.Name]; ok {
		return RegionInfo{}, fmt.Errorf("server: region %s already registered", req.Name)
	}
	s.regions[req.Name] = &serverRegion{
		name: req.Name, gpus: req.GPUs, capW: req.CapW, sig: &sig, anchor: now,
	}
	s.regOrd = append(s.regOrd, req.Name)
	return RegionInfo{
		Name: req.Name, GPUs: req.GPUs, CapW: req.CapW,
		Intervals: len(sig.Intervals), HorizonS: sig.Horizon(),
	}, nil
}

// Regions lists the registered regions in registration order.
func (s *Server) Regions() []RegionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RegionInfo, 0, len(s.regOrd))
	for _, name := range s.regOrd {
		r := s.regions[name]
		out = append(out, RegionInfo{
			Name: r.name, GPUs: r.gpus, CapW: r.capW,
			Intervals: len(r.sig.Intervals), HorizonS: r.sig.Horizon(),
		})
	}
	return out
}

// PlaceJob places (or migrates) a job into a registered region.
// Emissions accrued so far are settled at the old placement's rates
// first, so the migration boundary splits the account exactly.
func (s *Server) PlaceJob(id, regionName string) (PlacementResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	s.mu.Lock()
	_, ok = s.regions[regionName]
	s.mu.Unlock()
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown region %q", regionName)
	}
	st := s.gridState()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.region != regionName {
		j.accrueLocked(st)
		j.region = regionName
		j.placements = append(j.placements, placementEvent{region: regionName, at: st.now})
	}
	return placementLocked(j), nil
}

// PlacementOf returns a job's current placement and history.
func (s *Server) PlacementOf(id string) (PlacementResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return placementLocked(j), nil
}

// placementLocked renders the placement view. Callers hold j.mu.
func placementLocked(j *job) PlacementResponse {
	resp := PlacementResponse{JobID: j.id, Region: j.region}
	for _, p := range j.placements {
		resp.History = append(resp.History, PlacementEntry{
			Region:  p.region,
			AtUnixS: float64(p.at.UnixNano()) / 1e9,
		})
	}
	if n := len(j.placements); n > 1 {
		resp.Migrations = n - 1
	}
	return resp
}

func (s *Server) handleRegionsPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	var target, deadline, downtime, migEnergy float64
	var err error
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"iterations", &target}, {"deadline", &deadline},
		{"downtime", &downtime}, {"migration_j", &migEnergy},
	} {
		if *f.dst, err = parse(f.key); err != nil {
			http.Error(w, fmt.Sprintf("bad %s: %v", f.key, err), http.StatusBadRequest)
			return
		}
	}
	plan, err := s.RegionsPlan(target, deadline, q.Get("objective"), region.MigrationCost{
		DowntimeS: downtime, EnergyJ: migEnergy,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, plan)
}

// RegionsPlan plans every characterized job's spatio-temporal schedule
// across the registered regions (internal/region): complete target
// iterations per job by the deadline (seconds in signal time; 0 means
// the longest region trace), minimizing the objective ("" uses the
// server default), with migration modeled at the given pause-cost.
// Each job occupies Stages × DataParallel GPUs of a region's capacity.
func (s *Server) RegionsPlan(target, deadline float64, objective string, mig region.MigrationCost) (*region.Plan, error) {
	s.mu.Lock()
	obj := s.objective
	regs := make([]region.Region, 0, len(s.regOrd))
	for _, name := range s.regOrd {
		r := s.regions[name]
		regs = append(regs, region.Region{
			Name: r.name, GPUs: r.gpus, Signal: r.sig, CapW: r.capW,
		})
	}
	jobs := make([]*job, 0, len(s.ord))
	for _, id := range s.ord {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	if len(regs) == 0 {
		return nil, fmt.Errorf("server: no regions registered")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			return nil, err
		}
	}
	var rjobs []region.Job
	for _, j := range jobs {
		j.mu.Lock()
		if j.table != nil {
			pipes := j.req.DataParallel
			if pipes <= 0 {
				pipes = 1
			}
			rjobs = append(rjobs, region.Job{
				ID:         j.id,
				Table:      j.table,
				GPUs:       j.req.Stages * pipes,
				PowerScale: float64(pipes),
				Target:     target,
				DeadlineS:  deadline,
			})
		}
		j.mu.Unlock()
	}
	if len(rjobs) == 0 {
		return nil, fmt.Errorf("server: no characterized jobs to plan")
	}
	// The joint planner's descent cost grows with jobs × cells²; this
	// endpoint runs it synchronously in the request, so bound the
	// problem size rather than pin a CPU for minutes. Larger fleets
	// should plan offline with internal/region directly.
	if len(rjobs) > maxPlanJobs {
		return nil, fmt.Errorf("server: %d characterized jobs exceed the synchronous planning limit of %d; plan offline with internal/region", len(rjobs), maxPlanJobs)
	}
	return region.Optimize(regs, rjobs, region.Options{Objective: obj, Migration: mig})
}

// maxPlanJobs bounds the fleet size GET /regions/plan will plan
// synchronously.
const maxPlanJobs = 6

func parseKind(s string) (sched.Kind, error) {
	switch strings.ToLower(s) {
	case "forward", "f":
		return sched.Forward, nil
	case "backward", "b":
		return sched.Backward, nil
	}
	return 0, fmt.Errorf("server: unknown computation kind %q (want forward or backward)", s)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
