package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"perseus/internal/forecast"
	"perseus/internal/grid"
)

// ForecastRequest installs a forecast model over the installed grid
// signal and issues a forecast from the revealed history.
type ForecastRequest struct {
	// Model selects the forecaster: persistence, seasonal, or smoothed.
	Model string `json:"model"`

	// Level is the uncertainty-band quantile level; 0 means 0.9.
	Level float64 `json:"level,omitempty"`

	// Quantile is the default planning quantile GET /grid/replan uses:
	// 0 plans on the point forecast, higher values plan robustly
	// against the pessimistic band.
	Quantile float64 `json:"quantile,omitempty"`

	// HorizonS extends the forecast coverage in signal seconds; 0
	// means one full signal cycle beyond the current time.
	HorizonS float64 `json:"horizon_s,omitempty"`
}

// ForecastResponse is an issued forecast plus the installed model
// parameters.
type ForecastResponse struct {
	Model     string  `json:"model"`
	Level     float64 `json:"level"`
	Quantile  float64 `json:"quantile"`
	IssuedS   float64 `json:"issued_s"`
	HorizonS  float64 `json:"horizon_s"`
	Intervals int     `json:"intervals"`

	// Forecast is the issued forecast: point-forecast signal plus
	// carbon and price bands.
	Forecast *forecast.Forecast `json:"forecast"`
}

// ReplanInterval is one frozen (already executed) span of a job's
// rolling-horizon schedule, with realized and predicted accounting —
// exactly the controller's executed-interval record.
type ReplanInterval = forecast.ExecutedInterval

// ReplanResponse is a job's rolling-horizon schedule state: the frozen
// executed prefix (realized against the installed signal, predicted
// against the forecasts that planned it) and the freshly re-planned
// remainder.
type ReplanResponse struct {
	JobID     string  `json:"job_id"`
	Target    float64 `json:"target_iterations"`
	DeadlineS float64 `json:"deadline_s"`
	Objective string  `json:"objective"`
	Quantile  float64 `json:"quantile"`

	// Plans counts planner invocations for this schedule so far.
	Plans int `json:"plans"`

	// DoneIterations is the frozen prefix's progress;
	// RemainingIterations is what the fresh plan still has to cover.
	DoneIterations      float64 `json:"done_iterations"`
	RemainingIterations float64 `json:"remaining_iterations"`

	// Feasible reports whether the remaining target still fits before
	// the deadline under the latest forecast.
	Feasible bool `json:"feasible"`

	// Frozen lists the executed spans in time order (signal seconds).
	Frozen []ReplanInterval `json:"frozen,omitempty"`

	// EnergyJ, CarbonG, and CostUSD total the frozen prefix (realized);
	// PredCarbonG and PredCostUSD total what its planning forecasts
	// predicted for it.
	EnergyJ     float64 `json:"energy_j"`
	CarbonG     float64 `json:"carbon_g"`
	CostUSD     float64 `json:"cost_usd"`
	PredCarbonG float64 `json:"pred_carbon_g"`
	PredCostUSD float64 `json:"pred_cost_usd"`

	// Remaining is the fresh plan for [RemainingOffsetS, DeadlineS),
	// with interval times relative to RemainingOffsetS; nil once the
	// target is complete.
	Remaining        *grid.Plan `json:"remaining,omitempty"`
	RemainingOffsetS float64    `json:"remaining_offset_s"`
}

// replanState is a job's rolling-horizon state between GET
// /grid/replan calls. Guarded by Server.replanMu.
type replanState struct {
	target      float64
	reqDeadline float64 // the raw request parameter (0 = default)
	deadlineS   float64 // the effective deadline, pinned at creation
	objective   grid.Objective
	quantile    float64

	offsetS   float64 // signal time of remaining's t = 0
	doneIters float64
	frozen    []ReplanInterval
	remaining *grid.Plan
	predSig   *grid.Signal // point forecast the remaining plan was built on
	plans     int
}

func (s *Server) handleGridForecast(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req ForecastRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.SetForecast(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	case http.MethodGet:
		resp, err := s.Forecast()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, resp)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// SetForecast installs a forecast model over the installed signal and
// issues a fresh forecast from the history revealed so far — a
// forecast *revision*: every job's predicted accrual is settled
// against the previous forecast first, and subsequent re-plans run
// against the new one.
func (s *Server) SetForecast(req ForecastRequest) (ForecastResponse, error) {
	model, err := forecast.ModelByName(req.Model)
	if err != nil {
		return ForecastResponse{}, err
	}
	level := req.Level
	if level == 0 {
		level = 0.9
	}
	if !(level > 0.5) || level >= 1 {
		return ForecastResponse{}, fmt.Errorf("server: forecast band level must be in (0.5, 1), got %v", req.Level)
	}
	if math.IsNaN(req.Quantile) || req.Quantile < 0 || req.Quantile >= 1 {
		return ForecastResponse{}, fmt.Errorf("server: forecast planning quantile must be in [0, 1), got %v", req.Quantile)
	}
	if math.IsNaN(req.HorizonS) || req.HorizonS < 0 {
		return ForecastResponse{}, fmt.Errorf("server: forecast horizon must be non-negative, got %v", req.HorizonS)
	}

	// Settle every job's accounting under the previous forecast before
	// the predicted rates change.
	st := s.gridState()
	if st.sig == nil {
		return ForecastResponse{}, fmt.Errorf("server: no grid signal installed to forecast")
	}
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.ord))
	for _, id := range s.ord {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		j.accrueLocked(st)
		j.mu.Unlock()
	}

	t := st.now.Sub(st.start).Seconds()
	if t < 0 {
		t = 0
	}
	fc, err := s.issueForecast(st.sig, model, level, t, req.HorizonS)
	if err != nil {
		return ForecastResponse{}, err
	}

	s.mu.Lock()
	s.fmodel = model
	s.flevel = level
	s.fquant = req.Quantile
	s.fcast = fc
	s.fcastAt = st.now
	s.mu.Unlock()
	return ForecastResponse{
		Model:     model.Name(),
		Level:     level,
		Quantile:  req.Quantile,
		IssuedS:   fc.IssuedS,
		HorizonS:  fc.Signal.Horizon(),
		Intervals: len(fc.Signal.Intervals),
		Forecast:  fc,
	}, nil
}

// issueForecast runs the model over the signal's revealed history at
// signal time t. The coverage always extends at least one full signal
// cycle past t (rounded up to whole cycles), so a re-plan issued late
// in the trace still sees a day ahead.
func (s *Server) issueForecast(sig *grid.Signal, model forecast.Model, level, t, horizonS float64) (*forecast.Forecast, error) {
	h := sig.Horizon()
	horizon := math.Ceil((t+h)/h) * h
	if horizonS > horizon {
		horizon = horizonS
	}
	prov := &forecast.FromHistory{Truth: sig, Model: model, HorizonS: horizon, Level: level}
	return prov.At(t)
}

// Forecast returns the latest issued forecast.
func (s *Server) Forecast() (ForecastResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fcast == nil {
		return ForecastResponse{}, fmt.Errorf("server: no forecast installed")
	}
	return ForecastResponse{
		Model:     s.fmodel.Name(),
		Level:     s.flevel,
		Quantile:  s.fquant,
		IssuedS:   s.fcast.IssuedS,
		HorizonS:  s.fcast.Signal.Horizon(),
		Intervals: len(s.fcast.Signal.Intervals),
		Forecast:  s.fcast,
	}, nil
}

func (s *Server) handleGridReplan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/grid/replan/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	var target, deadline, quant float64
	var err error
	for _, f := range []struct {
		key string
		dst *float64
	}{{"iterations", &target}, {"deadline", &deadline}, {"quantile", &quant}} {
		if *f.dst, err = parse(f.key); err != nil {
			http.Error(w, fmt.Sprintf("bad %s: %v", f.key, err), http.StatusBadRequest)
			return
		}
	}
	resp, err := s.Replan(id, target, deadline, q.Get("objective"), quant)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.job(id); !ok {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, resp)
}

// Replan rolls a job's forecast-driven schedule forward to now: the
// span executed since the previous call is frozen — its slices accrued
// against the installed signal (realized) and against the forecast
// that planned them (predicted) — and the remainder is re-planned with
// grid.Optimize against a forecast freshly issued from the installed
// model, completing target iterations by the deadline (signal seconds;
// 0 means the forecast horizon). Changing any parameter restarts the
// schedule from now. quantile 0 uses the installed default; values
// above 0.5 plan against the pessimistic band (robust mode).
func (s *Server) Replan(id string, target, deadline float64, objective string, quantile float64) (*ReplanResponse, error) {
	j, ok := s.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	table := j.table
	pipes := j.req.DataParallel
	j.mu.Unlock()
	if table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	if !(target > 0) || math.IsInf(target, 0) {
		return nil, fmt.Errorf("server: replan target iterations must be positive and finite, got %v", target)
	}

	now := s.clock()
	s.mu.Lock()
	sig := s.signal
	start := s.sigStart
	model := s.fmodel
	level := s.flevel
	obj := s.objective
	if quantile == 0 {
		quantile = s.fquant
	}
	s.mu.Unlock()
	if sig == nil {
		return nil, fmt.Errorf("server: no grid signal installed")
	}
	if model == nil {
		return nil, fmt.Errorf("server: no forecast installed; POST /grid/forecast first")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			return nil, err
		}
	}
	if math.IsNaN(quantile) || quantile < 0 || quantile >= 1 {
		return nil, fmt.Errorf("server: replan quantile must be in [0, 1), got %v", quantile)
	}
	t := now.Sub(start).Seconds()
	if t < 0 {
		t = 0
	}

	if math.IsNaN(deadline) || deadline < 0 {
		return nil, fmt.Errorf("server: replan deadline must be non-negative, got %v", deadline)
	}

	// Issue the latest forecast: the model re-reads everything the
	// signal has revealed up to now.
	fc, err := s.issueForecast(sig, model, level, t, deadline)
	if err != nil {
		return nil, err
	}

	s.replanMu.Lock()
	defer s.replanMu.Unlock()
	st := s.replans[id]
	// The restart check compares the *requested* deadline: with the 0
	// default the effective deadline is pinned once at state creation
	// (the forecast horizon then), so the horizon growing with time on
	// later calls is not mistaken for a parameter change.
	if st == nil || st.target != target || st.reqDeadline != deadline ||
		st.objective != obj || st.quantile != quantile {
		eff := deadline
		if eff == 0 {
			eff = fc.Signal.Horizon()
		}
		if eff <= t {
			return nil, fmt.Errorf("server: replan deadline %v not after now (%v s into the signal)", eff, t)
		}
		if eff > fc.Signal.Horizon()+1e-9 {
			return nil, fmt.Errorf("server: replan deadline %v beyond forecast horizon %v", eff, fc.Signal.Horizon())
		}
		st = &replanState{
			target: target, reqDeadline: deadline, deadlineS: eff,
			objective: obj, quantile: quantile, offsetS: t,
		}
		s.replans[id] = st
	}

	// Freeze the span executed since the last plan: walk the previous
	// remaining plan's intervals up to now.
	if st.remaining != nil {
		for _, ip := range st.remaining.Intervals {
			absStart, absEnd := st.offsetS+ip.StartS, st.offsetS+ip.EndS
			if absStart >= t-1e-9 {
				break
			}
			if absEnd > t {
				absEnd = t
			}
			ei := forecast.ExecuteSlices(table, sig, st.predSig, float64(pipes), absStart, absEnd, ip.Slices)
			st.frozen = append(st.frozen, ei)
			st.doneIters += ei.Iterations
		}
	}

	// Re-plan the remainder against the fresh forecast.
	remaining := st.target - st.doneIters
	st.remaining = nil
	st.predSig = fc.Signal
	st.offsetS = t
	feasible := true
	if remaining > 1e-9*(1+st.target) && t >= st.deadlineS-1e-9 {
		// The deadline has passed with work left: nothing to plan.
		feasible = false
	} else if remaining > 1e-9*(1+st.target) {
		q := st.quantile
		if q == 0 {
			q = 0.5
		}
		suffix := forecast.Window(fc.At(q), t, st.deadlineS)
		plan, err := grid.Optimize(table, suffix, grid.Options{
			Target:     remaining,
			Objective:  st.objective,
			PowerScale: float64(pipes),
		})
		if err != nil {
			return nil, err
		}
		st.remaining = plan
		st.plans++
		feasible = plan.Feasible
	} else {
		remaining = 0
	}

	resp := &ReplanResponse{
		JobID:               id,
		Target:              st.target,
		DeadlineS:           st.deadlineS,
		Objective:           string(st.objective),
		Quantile:            st.quantile,
		Plans:               st.plans,
		DoneIterations:      st.doneIters,
		RemainingIterations: remaining,
		Feasible:            feasible,
		Frozen:              st.frozen,
		Remaining:           st.remaining,
		RemainingOffsetS:    st.offsetS,
	}
	for _, fi := range st.frozen {
		resp.EnergyJ += fi.EnergyJ
		resp.CarbonG += fi.CarbonG
		resp.CostUSD += fi.CostUSD
		resp.PredCarbonG += fi.PredCarbonG
		resp.PredCostUSD += fi.PredCostUSD
	}
	return resp, nil
}
