package fleet

import (
	"fmt"
	"sort"

	"perseus/internal/cluster"
	"perseus/internal/grid"
)

// SimJob couples a fleet job with the cluster description needed to
// simulate it: the allocator plans on the job's frontier table, and the
// simulator replays each allocated plan through cluster.Simulate to
// report realized time, energy, and power (including blocking energy
// the frontier model does not carry).
type SimJob struct {
	Job

	// Spec is the job's cluster description. Spec.Schedule must be the
	// schedule the Table was characterized on (table frequency plans
	// are indexed by schedule op id).
	Spec cluster.Spec
}

// EventKind enumerates scenario trace events.
type EventKind int

const (
	// EventArrive registers a new job (Event.Job).
	EventArrive EventKind = iota

	// EventDepart deregisters a job (Event.JobID).
	EventDepart

	// EventStraggler sets a job's straggler state: Factor > 1 is onset
	// (the job's pipeline 0 slows by Factor), Factor <= 1 is recovery.
	EventStraggler

	// EventSetCap changes the fleet power cap to Event.CapW.
	EventSetCap
)

// String renders the kind for traces and tables.
func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventDepart:
		return "depart"
	case EventStraggler:
		return "straggler"
	case EventSetCap:
		return "set-cap"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scenario trace entry.
type Event struct {
	// At is the event time in seconds from replay start.
	At float64

	// Kind selects the event.
	Kind EventKind

	// Job is the arriving job (EventArrive only).
	Job *SimJob

	// JobID targets an existing job (EventDepart, EventStraggler).
	JobID string

	// Factor is the straggler slowdown degree (EventStraggler): the
	// job's pipeline 0 runs Factor times slower; <= 1 is recovery.
	Factor float64

	// CapW is the new fleet power cap in watts (EventSetCap); 0 uncaps.
	CapW float64
}

// Scenario is a replayable multi-job trace.
type Scenario struct {
	// Horizon is the replay end time in seconds.
	Horizon float64

	// CapW is the initial fleet power cap (0 = uncapped).
	CapW float64

	// Events are the trace entries; Replay sorts them by time.
	Events []Event

	// Signal optionally drives the fleet from a grid trace
	// (internal/grid): Replay inserts a re-allocation boundary at every
	// signal interval edge, an interval's facility cap (CapW > 0)
	// overrides the event-set cap while it is in force, and every
	// segment's energy is accounted into carbon and cost at the
	// interval's rates. A trace shorter than the horizon repeats
	// cyclically (a 24 h trace describes every day).
	Signal *grid.Signal
}

// SegmentJob is one job's state during a segment.
type SegmentJob struct {
	// ID names the job.
	ID string

	// Point and PlannedTime are the allocator's operating point.
	Point       int
	PlannedTime float64

	// AllocPowerW is the model power at the point (frontier energy over
	// time, scaled by pipelines) — what the allocator budgeted.
	AllocPowerW float64

	// IterTime is the simulated end-to-end iteration time, including
	// the straggler's drag.
	IterTime float64

	// PowerW is the simulated average power over the job's GPUs,
	// including blocking energy.
	PowerW float64

	// Iterations and EnergyJ are the job's progress and energy over the
	// segment, extrapolated from the simulated steady-state iteration.
	Iterations float64
	EnergyJ    float64

	// CarbonG and CostUSD account the job's segment energy at the
	// scenario signal's rates (zero without a signal).
	CarbonG float64
	CostUSD float64

	// StragglerFactor is the active slowdown degree (1 = healthy).
	StragglerFactor float64
}

// Segment is one constant-state interval between scenario events.
type Segment struct {
	// Start and End bound the segment in seconds.
	Start, End float64

	// CapW is the cap in force (0 = uncapped); Feasible reports whether
	// the allocator met it.
	CapW     float64
	Feasible bool

	// AllocPowerW is the fleet's model power; PowerW the simulated one.
	AllocPowerW float64
	PowerW      float64

	// CarbonGPerKWh and PriceUSDPerKWh echo the signal interval in
	// force (zero without a signal); CarbonG and CostUSD account the
	// segment's simulated energy at those rates. A segment never spans
	// a signal interval edge.
	CarbonGPerKWh  float64
	PriceUSDPerKWh float64
	CarbonG        float64
	CostUSD        float64

	// Jobs holds the active jobs' states in arrival order.
	Jobs []SegmentJob
}

// JobTotal accumulates one job's whole-scenario outcome.
type JobTotal struct {
	ID         string
	ActiveS    float64
	Iterations float64
	EnergyJ    float64
	CarbonG    float64
	CostUSD    float64
}

// Series is the replayed scenario: per-segment fleet state plus
// per-job and fleet totals.
type Series struct {
	Segments []Segment

	// Totals lists per-job outcomes in first-arrival order.
	Totals []JobTotal

	// EnergyJ is the fleet's total simulated energy.
	EnergyJ float64

	// CarbonG and CostUSD are the fleet's total accounted emissions and
	// electricity cost under the scenario signal (zero without one).
	CarbonG float64
	CostUSD float64

	// PeakPowerW is the maximum simulated fleet power over segments.
	PeakPowerW float64
}

// Replay runs the event-driven multi-job simulation: it applies the
// scenario's events in time order — job arrival and departure,
// straggler onset and recovery, cap changes — re-running the
// power-budget allocator at every state change, and simulates each
// constant-state segment with cluster.Simulate at the allocated
// operating points. A scenario Signal adds signal-driven state changes
// on top: interval edges become segment boundaries, interval caps
// override the event-set cap, and each segment's energy is accounted
// into carbon and cost at the interval's rates.
func Replay(sc Scenario) (*Series, error) {
	if sc.Horizon <= 0 {
		return nil, fmt.Errorf("fleet: scenario horizon must be positive, got %v", sc.Horizon)
	}
	if sc.Signal != nil {
		if err := sc.Signal.Validate(); err != nil {
			return nil, err
		}
	}
	events := append([]Event(nil), sc.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		if e.At < 0 || e.At > sc.Horizon {
			return nil, fmt.Errorf("fleet: event %s at %v outside [0, %v]", e.Kind, e.At, sc.Horizon)
		}
	}

	f := New()
	if err := f.SetCap(sc.CapW); err != nil {
		return nil, err
	}
	evCap := sc.CapW // the event-set cap, under any signal override
	sims := map[string]*SimJob{}
	factors := map[string]float64{}
	totals := map[string]*JobTotal{}
	var order []string // first-arrival order, for stable totals

	apply := func(e Event) error {
		switch e.Kind {
		case EventArrive:
			if e.Job == nil {
				return fmt.Errorf("fleet: arrival event at %v has no job", e.At)
			}
			if err := f.Add(e.Job.Job); err != nil {
				return err
			}
			id := e.Job.ID
			sims[id] = e.Job
			factors[id] = 1
			if _, ok := totals[id]; !ok {
				totals[id] = &JobTotal{ID: id}
				order = append(order, id)
			}
		case EventDepart:
			if _, ok := sims[e.JobID]; !ok {
				return fmt.Errorf("fleet: departure of unknown job %s at %v", e.JobID, e.At)
			}
			f.Remove(e.JobID)
			delete(sims, e.JobID)
			delete(factors, e.JobID)
		case EventStraggler:
			sj, ok := sims[e.JobID]
			if !ok {
				return fmt.Errorf("fleet: straggler event for unknown job %s at %v", e.JobID, e.At)
			}
			if e.Factor <= 1 { // recovery
				factors[e.JobID] = 1
				return f.SetStraggler(e.JobID, 0)
			}
			factors[e.JobID] = e.Factor
			return f.SetStraggler(e.JobID, sj.Table.Tmin()*e.Factor)
		case EventSetCap:
			if err := f.SetCap(e.CapW); err != nil {
				return err
			}
			evCap = e.CapW
		default:
			return fmt.Errorf("fleet: unknown event kind %d at %v", int(e.Kind), e.At)
		}
		return nil
	}

	// Signal interval edges are re-allocation boundaries too, so every
	// segment lies within one interval and one set of rates.
	var bounds []float64
	bi := 0
	if sc.Signal != nil {
		bounds = sc.Signal.Boundaries(sc.Horizon)
	}

	series := &Series{}
	i := 0
	now := 0.0
	for {
		for i < len(events) && events[i].At <= now {
			if err := apply(events[i]); err != nil {
				return nil, err
			}
			i++
		}
		for bi < len(bounds) && bounds[bi] <= now {
			bi++
		}
		if now >= sc.Horizon {
			break
		}
		next := sc.Horizon
		if i < len(events) && events[i].At < next {
			next = events[i].At
		}
		if bi < len(bounds) && bounds[bi] < next {
			next = bounds[bi]
		}
		if next > now {
			// The signal's interval cap, while in force, overrides the
			// event-set cap.
			var carbonRate, priceRate float64 // per kWh
			if sc.Signal != nil {
				capW := evCap
				if iv, ok := sc.Signal.AtCyclic(now); ok {
					carbonRate, priceRate = iv.CarbonGPerKWh, iv.PriceUSDPerKWh
					if iv.CapW > 0 {
						capW = iv.CapW
					}
				}
				if err := f.SetCap(capW); err != nil {
					return nil, err
				}
			}
			seg, err := simulateSegment(f, sims, factors, now, next)
			if err != nil {
				return nil, err
			}
			seg.CarbonGPerKWh, seg.PriceUSDPerKWh = carbonRate, priceRate
			for k := range seg.Jobs {
				sjob := &seg.Jobs[k]
				sjob.CarbonG = sjob.EnergyJ / grid.JoulesPerKWh * carbonRate
				sjob.CostUSD = sjob.EnergyJ / grid.JoulesPerKWh * priceRate
				tot := totals[sjob.ID]
				tot.ActiveS += next - now
				tot.Iterations += sjob.Iterations
				tot.EnergyJ += sjob.EnergyJ
				tot.CarbonG += sjob.CarbonG
				tot.CostUSD += sjob.CostUSD
				seg.CarbonG += sjob.CarbonG
				seg.CostUSD += sjob.CostUSD
			}
			series.EnergyJ += seg.PowerW * (next - now)
			series.CarbonG += seg.CarbonG
			series.CostUSD += seg.CostUSD
			if seg.PowerW > series.PeakPowerW {
				series.PeakPowerW = seg.PowerW
			}
			series.Segments = append(series.Segments, seg)
		}
		now = next
	}
	for _, id := range order {
		series.Totals = append(series.Totals, *totals[id])
	}
	return series, nil
}

// simulateSegment allocates the fleet and simulates each active job's
// steady state over [start, end).
func simulateSegment(f *Fleet, sims map[string]*SimJob, factors map[string]float64, start, end float64) (Segment, error) {
	alloc := f.Allocate()
	seg := Segment{
		Start:       start,
		End:         end,
		CapW:        alloc.CapW,
		Feasible:    alloc.Feasible,
		AllocPowerW: alloc.PowerW,
	}
	dur := end - start
	for _, ja := range alloc.Jobs {
		sj := sims[ja.ID]
		plan := cluster.Plan(sj.Table.Points[ja.Point].Freqs)
		factor := factors[ja.ID]
		var res cluster.Result
		var err error
		if factor > 1 {
			// The straggler pipeline keeps the fastest plan — it is slow
			// because the hardware throttled it, not by schedule — while
			// the other replicas deploy the allocated T_opt plan (paper
			// §3.2 step 5).
			fastest := cluster.Plan(sj.Table.Points[0].Freqs)
			res, err = cluster.SimulateMulti(sj.Spec, func(p int) cluster.Plan {
				if p == 0 {
					return fastest
				}
				return plan
			}, []cluster.Straggler{{Pipeline: 0, Factor: factor}})
		} else {
			res, err = cluster.Simulate(sj.Spec, plan, nil)
		}
		if err != nil {
			return Segment{}, fmt.Errorf("fleet: simulating job %s: %w", ja.ID, err)
		}
		powerW := res.TotalPowerW()
		sjob := SegmentJob{
			ID:              ja.ID,
			Point:           ja.Point,
			PlannedTime:     ja.Time,
			AllocPowerW:     ja.PowerW,
			IterTime:        res.IterTime,
			PowerW:          powerW,
			Iterations:      dur / res.IterTime,
			EnergyJ:         powerW * dur,
			StragglerFactor: factor,
		}
		seg.PowerW += powerW
		seg.Jobs = append(seg.Jobs, sjob)
	}
	return seg, nil
}
