package experiments

import (
	"fmt"

	"perseus/internal/fleet"
	"perseus/internal/gpu"
)

// FleetWorkloads returns the multi-job workload mix of the bundled
// fleet scenario: three concurrent pipeline-parallel jobs of different
// shapes, one of them data-parallel, sharing a facility power envelope.
func FleetWorkloads() []WorkloadConfig {
	return []WorkloadConfig{
		{Display: "GPT-3 1.3B (DP2)", Model: "gpt3-1.3b", Stages: 4, MicrobatchSize: 4, Microbatches: 24, DataParallel: 2},
		{Display: "BERT 1.3B", Model: "bert-1.3b", Stages: 4, MicrobatchSize: 8, Microbatches: 16},
		{Display: "Bloom 3B", Model: "bloom-3b", Stages: 4, MicrobatchSize: 4, Microbatches: 16},
	}
}

// FleetScenario is a built, replayable multi-job trace plus the context
// needed to render it.
type FleetScenario struct {
	Scenario fleet.Scenario

	// CapW is the cap the trace's set-cap event imposes.
	CapW float64

	// UncappedW is the full fleet's uncapped model power, for scale.
	UncappedW float64
}

// BuildFleetScenario characterizes the fleet workloads on one GPU model
// and assembles the bundled scenario trace: staggered arrivals, a
// facility cap at capFrac of the full fleet's uncapped draw, a
// straggler onset and recovery on the data-parallel job, and one
// departure.
//
//	t=0    GPT-3 1.3B (DP2) arrives
//	t=120  BERT 1.3B arrives
//	t=240  Bloom 3B arrives; power cap set to capFrac × uncapped draw
//	t=360  straggler (1.3×) hits the GPT-3 job
//	t=480  the straggler recovers
//	t=600  BERT departs
//	t=720  horizon
func BuildFleetScenario(g *gpu.Model, sc Scale, capFrac float64) (*FleetScenario, error) {
	if capFrac <= 0 {
		capFrac = 0.9
	}
	cfgs := FleetWorkloads()
	jobs := make([]*fleet.SimJob, len(cfgs))
	for i, cfg := range cfgs {
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: building fleet job %s: %w", cfg.Display, err)
		}
		jobs[i] = &fleet.SimJob{
			Job: fleet.Job{
				ID:        cfg.Display,
				Table:     sys.Frontier.Table(),
				Pipelines: cfg.DataParallel,
			},
			Spec: sys.Spec,
		}
	}
	var all []fleet.Job
	for _, sj := range jobs {
		all = append(all, sj.Job)
	}
	uncapped := fleet.Allocate(all, 0).PowerW
	capW := capFrac * uncapped

	return &FleetScenario{
		CapW:      capW,
		UncappedW: uncapped,
		Scenario: fleet.Scenario{
			Horizon: 720,
			Events: []fleet.Event{
				{At: 0, Kind: fleet.EventArrive, Job: jobs[0]},
				{At: 120, Kind: fleet.EventArrive, Job: jobs[1]},
				{At: 240, Kind: fleet.EventArrive, Job: jobs[2]},
				{At: 240, Kind: fleet.EventSetCap, CapW: capW},
				{At: 360, Kind: fleet.EventStraggler, JobID: jobs[0].ID, Factor: 1.3},
				{At: 480, Kind: fleet.EventStraggler, JobID: jobs[0].ID, Factor: 1},
				{At: 600, Kind: fleet.EventDepart, JobID: jobs[1].ID},
			},
		},
	}, nil
}

// FleetTimelineTable renders one row per constant-state segment of a
// replayed scenario: the cap in force, the allocator's budgeted power,
// and the simulated draw.
func FleetTimelineTable(series *fleet.Series) *Table {
	t := &Table{
		Title:  "Fleet timeline (one row per constant-state segment)",
		Header: []string{"t (s)", "Jobs", "Cap (W)", "Alloc (W)", "Sim (W)", "Loss state"},
	}
	for _, seg := range series.Segments {
		capCell := "-"
		if seg.CapW > 0 {
			capCell = fmt.Sprintf("%.0f", seg.CapW)
		}
		state := "free"
		switch {
		case !seg.Feasible:
			state = "cap infeasible"
		case seg.CapW > 0:
			state = "capped"
		}
		for _, j := range seg.Jobs {
			if j.StragglerFactor > 1 {
				state += fmt.Sprintf(" +straggler(%s %.2fx)", j.ID, j.StragglerFactor)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", seg.Start, seg.End),
			fmt.Sprint(len(seg.Jobs)),
			capCell,
			fmt.Sprintf("%.0f", seg.AllocPowerW),
			fmt.Sprintf("%.0f", seg.PowerW),
			state,
		})
	}
	t.Notes = append(t.Notes,
		"Alloc is frontier-model computation power; Sim adds blocking energy (Eq. 3)")
	return t
}

// FleetJobsTable renders each job's operating point in every segment.
func FleetJobsTable(series *fleet.Series) *Table {
	t := &Table{
		Title:  "Per-job operating points",
		Header: []string{"t (s)", "Job", "Point", "Planned (s)", "Iter (s)", "Power (W)", "Iters"},
	}
	for _, seg := range series.Segments {
		for _, j := range seg.Jobs {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f-%.0f", seg.Start, seg.End),
				j.ID,
				fmt.Sprint(j.Point),
				fmt.Sprintf("%.3f", j.PlannedTime),
				fmt.Sprintf("%.3f", j.IterTime),
				fmt.Sprintf("%.0f", j.PowerW),
				fmt.Sprintf("%.1f", j.Iterations),
			})
		}
	}
	return t
}

// FleetSummaryTable renders per-job scenario totals and fleet-wide
// aggregates.
func FleetSummaryTable(series *fleet.Series) *Table {
	t := &Table{
		Title:  "Fleet summary",
		Header: []string{"Job", "Active (s)", "Iterations", "Energy (kJ)", "Avg power (W)"},
	}
	for _, tot := range series.Totals {
		avg := 0.0
		if tot.ActiveS > 0 {
			avg = tot.EnergyJ / tot.ActiveS
		}
		t.Rows = append(t.Rows, []string{
			tot.ID,
			fmt.Sprintf("%.0f", tot.ActiveS),
			fmt.Sprintf("%.1f", tot.Iterations),
			fmt.Sprintf("%.1f", tot.EnergyJ/1e3),
			fmt.Sprintf("%.0f", avg),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fleet energy %.1f kJ, peak power %.0f W", series.EnergyJ/1e3, series.PeakPowerW))
	return t
}
