package fleet

import (
	"math"
	"math/rand"
	"testing"

	"perseus/internal/frontier"
)

// convexTable hand-builds a lookup table whose energy curve is
// E(t) = a + b/t on a unit grid from tmin to tstar units: average power
// P(t) = a/t + b/t² is strictly decreasing and convex in t, so the
// per-step watts-saved-per-second slopes are non-increasing — the
// convexity premise of the allocator's optimality claim.
func convexTable(unit float64, tminU, tstarU int64, a, b float64) *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: unit, TminUnits: tminU, TStarUnits: tstarU}
	for u := tminU; u <= tstarU; u++ {
		t := float64(u) * unit
		lt.Points = append(lt.Points, frontier.TablePoint{
			TimeUnits: u,
			Energy:    a + b/t,
		})
	}
	return lt
}

// lossOf computes the weighted relative slowdown of job j at point idx.
func lossOf(j *Job, idx int) float64 {
	ft := j.Table.PointTime(j.floorIndex())
	return j.weight() * (j.Table.PointTime(idx) - ft) / ft
}

// powerOf computes job j's scaled power at point idx.
func powerOf(j *Job, idx int) float64 {
	return float64(j.pipelines()) * j.Table.AvgPower(idx)
}

// bruteForce enumerates every combination of operating points at or
// above each job's floor and returns the minimum total loss meeting the
// cap, or ok=false when no combination does.
func bruteForce(jobs []Job, capW float64) (bestLoss float64, ok bool) {
	bestLoss = math.Inf(1)
	idx := make([]int, len(jobs))
	for i := range jobs {
		idx[i] = jobs[i].floorIndex()
	}
	// The cap comparison carries a relative tolerance: summing powers in
	// a different order than the allocator's sequential descent differs
	// by a few ULPs, which must not exclude the boundary combination.
	slack := 1e-12 * (1 + math.Abs(capW))
	var walk func(i int, power, loss float64)
	walk = func(i int, power, loss float64) {
		if i == len(jobs) {
			if power <= capW+slack && loss < bestLoss {
				bestLoss, ok = loss, true
			}
			return
		}
		j := &jobs[i]
		for p := j.floorIndex(); p < len(j.Table.Points); p++ {
			walk(i+1, power+powerOf(j, p), loss+lossOf(j, p))
		}
	}
	walk(0, 0, 0)
	return bestLoss, ok
}

// mergeInputsOf mirrors Allocate's construction of the merged descent,
// so tests can inspect its breakpoints and step sizes.
func mergeInputsOf(jobs []Job) []frontier.MergeInput {
	inputs := make([]frontier.MergeInput, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		fi := j.floorIndex()
		inputs[i] = frontier.MergeInput{
			Table:      j.Table,
			PowerScale: float64(j.pipelines()),
			LossWeight: j.weight() / j.Table.PointTime(fi),
			Start:      fi,
		}
	}
	return inputs
}

// TestAllocateOptimalConvex is the proof-style optimality check of the
// acceptance criteria: for a 3-job fleet with convex frontiers, the
// greedy waterfilling allocation's total throughput loss matches
// brute-force enumeration over all frontier-point combinations at every
// breakpoint of the merged descent (every exactly-attainable cap), and
// for caps between breakpoints it exceeds the brute-force optimum by
// less than the single overshooting step's loss — the two guarantees
// Allocate documents.
func TestAllocateOptimalConvex(t *testing.T) {
	jobs := []Job{
		{ID: "a", Table: convexTable(0.01, 80, 95, 3000, 120), Pipelines: 1, Weight: 1},
		{ID: "b", Table: convexTable(0.01, 50, 67, 5000, 300), Pipelines: 2, Weight: 1},
		{ID: "c", Table: convexTable(0.01, 120, 139, 2000, 90), Pipelines: 1, Weight: 2},
	}
	checkAgainstBruteForce(t, jobs)
}

// TestAllocateOptimalConvexRandom repeats the brute-force comparison on
// seeded random convex fleets, so the optimality claim doesn't hinge on
// one lucky instance.
func TestAllocateOptimalConvexRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var jobs []Job
		for i := 0; i < 3; i++ {
			tmin := int64(40 + rng.Intn(100))
			span := int64(8 + rng.Intn(10))
			a := 1000 + 4000*rng.Float64()
			b := 50 + 400*rng.Float64()
			jobs = append(jobs, Job{
				ID:        string(rune('a' + i)),
				Table:     convexTable(0.01, tmin, tmin+span, a, b),
				Pipelines: 1 + rng.Intn(3),
				Weight:    1 + rng.Float64(),
			})
		}
		checkAgainstBruteForce(t, jobs)
	}
}

func checkAgainstBruteForce(t *testing.T, jobs []Job) {
	t.Helper()
	startPower, steps := frontier.Merge(mergeInputsOf(jobs))
	if len(steps) == 0 {
		t.Fatal("degenerate fleet: no merge steps")
	}

	// Exactly-attainable caps: every breakpoint of the merged descent.
	// The greedy allocation must match exhaustive enumeration exactly.
	for _, st := range steps {
		got := Allocate(jobs, st.Power)
		want, feasible := bruteForce(jobs, st.Power)
		if !feasible || !got.Feasible {
			t.Fatalf("breakpoint cap %.3fW: unexpectedly infeasible", st.Power)
		}
		if got.PowerW > st.Power+1e-9 {
			t.Fatalf("breakpoint cap %.3fW: allocation draws %v W over cap", st.Power, got.PowerW)
		}
		if math.Abs(got.Loss-want) > 1e-9*(1+want) {
			t.Fatalf("breakpoint cap %.3fW: greedy loss %.9f != brute-force optimum %.9f",
				st.Power, got.Loss, want)
		}
	}

	// Arbitrary caps between breakpoints: bounded by the granularity of
	// one merge step, and never below the constrained optimum.
	var maxStepLoss float64
	for _, st := range steps {
		if st.Loss > maxStepLoss {
			maxStepLoss = st.Loss
		}
	}
	lo, hi := steps[len(steps)-1].Power, startPower
	for i := 0; i <= 100; i++ {
		capW := lo*0.95 + (hi*1.02-lo*0.95)*float64(i)/100
		got := Allocate(jobs, capW)
		want, feasible := bruteForce(jobs, capW)
		if got.Feasible != feasible {
			t.Fatalf("cap %.3fW: feasible=%v, brute force %v", capW, got.Feasible, feasible)
		}
		if !feasible {
			// Infeasible: the allocator settles at fleet minimum power.
			if math.Abs(got.PowerW-lo) > 1e-9*lo {
				t.Fatalf("cap %.3fW infeasible: power %v, want fleet minimum %v", capW, got.PowerW, lo)
			}
			continue
		}
		if got.PowerW > capW+1e-9 {
			t.Fatalf("cap %.3fW: allocation draws %v W over cap", capW, got.PowerW)
		}
		if got.Loss < want-1e-9*(1+want) {
			t.Fatalf("cap %.3fW: greedy loss %.9f beats brute-force optimum %.9f — brute force is broken",
				capW, got.Loss, want)
		}
		if got.Loss-want >= maxStepLoss+1e-12 {
			t.Fatalf("cap %.3fW: greedy loss %.9f exceeds optimum %.9f by more than one step (%.9f)",
				capW, got.Loss, want, maxStepLoss)
		}
	}
}

// TestStragglerFloor checks the extrinsic-bloat generalization: a
// straggler-bound job starts its descent at T_opt = min(T*, T'), has
// zero loss there, and the power it frees spares the other jobs.
func TestStragglerFloor(t *testing.T) {
	mk := func(tp float64) []Job {
		return []Job{
			{ID: "straggling", Table: convexTable(0.01, 80, 95, 3000, 120), TPrime: tp},
			{ID: "healthy", Table: convexTable(0.01, 50, 67, 5000, 300)},
		}
	}
	// Without a straggler both jobs share the cap's pain.
	jobs := mk(0)
	capW := Allocate(jobs, 0).PowerW * 0.97
	before := Allocate(jobs, capW)
	if before.Jobs[0].Loss == 0 && before.Jobs[1].Loss == 0 {
		t.Fatal("cap at 97% should force some loss")
	}
	// A straggler at 1.1× Tmin raises job 0's floor for free.
	slow := mk(1.1 * 0.01 * 80)
	after := Allocate(slow, capW)
	if after.Jobs[0].FloorTime <= before.Jobs[0].FloorTime {
		t.Fatalf("straggler floor %v not above Tmin %v", after.Jobs[0].FloorTime, before.Jobs[0].FloorTime)
	}
	if after.Jobs[0].Time < after.Jobs[0].FloorTime {
		t.Fatalf("allocation %v plans faster than the straggler floor %v", after.Jobs[0].Time, after.Jobs[0].FloorTime)
	}
	if after.Loss > before.Loss+1e-12 {
		t.Fatalf("straggler freed power but fleet loss rose: %v -> %v", before.Loss, after.Loss)
	}
	// T' beyond T* clamps to T* (Eq. 2).
	far := mk(1e9)
	a := Allocate(far, 0)
	if a.Jobs[0].FloorTime != far[0].Table.TStar() {
		t.Fatalf("floor %v, want clamp at T* %v", a.Jobs[0].FloorTime, far[0].Table.TStar())
	}
}

func TestInfeasibleCap(t *testing.T) {
	jobs := []Job{
		{ID: "a", Table: convexTable(0.01, 80, 95, 3000, 120)},
		{ID: "b", Table: convexTable(0.01, 50, 67, 5000, 300)},
	}
	minP := AllocateMinEnergy(jobs).PowerW
	got := Allocate(jobs, minP*0.5)
	if got.Feasible {
		t.Fatal("cap at half the fleet minimum power cannot be feasible")
	}
	for i, ja := range got.Jobs {
		if ja.Point != len(jobs[i].Table.Points)-1 {
			t.Fatalf("infeasible cap: job %s not at T* (point %d)", ja.ID, ja.Point)
		}
	}
}

func TestUncappedRunsAtFloor(t *testing.T) {
	jobs := []Job{
		{ID: "a", Table: convexTable(0.01, 80, 95, 3000, 120)},
		{ID: "b", Table: convexTable(0.01, 50, 67, 5000, 300), TPrime: 0.55},
	}
	got := Allocate(jobs, 0)
	if !got.Feasible {
		t.Fatal("uncapped allocation must be feasible")
	}
	if got.Jobs[0].Time != jobs[0].Table.Tmin() {
		t.Fatalf("healthy job at %v, want Tmin %v", got.Jobs[0].Time, jobs[0].Table.Tmin())
	}
	if got.Jobs[1].Time < 0.55-0.01 {
		t.Fatalf("straggling job at %v, want its T_opt floor near 0.55", got.Jobs[1].Time)
	}
	if got.Loss != 0 {
		t.Fatalf("uncapped loss %v, want 0", got.Loss)
	}
}

func TestAllocateEmpty(t *testing.T) {
	got := Allocate(nil, 100)
	if !got.Feasible || got.PowerW != 0 || len(got.Jobs) != 0 {
		t.Fatalf("empty fleet allocation: %+v", got)
	}
}
