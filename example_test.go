package perseus_test

import (
	"fmt"
	"log"

	"perseus"
)

// ExampleCharacterize removes intrinsic energy bloat from a small GPT-3
// pipeline: the iteration time is unchanged while non-critical
// computations slow down.
func ExampleCharacterize() {
	sys, err := perseus.Characterize(perseus.Workload{
		Model: "gpt3-1.3b", GPU: "A100-PCIe",
		Stages: 2, MicrobatchSize: 4, Microbatches: 4,
		TargetSteps: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Simulate(sys.PlanFor(0), nil)
	if err != nil {
		log.Fatal(err)
	}
	saving, slowdown := sys.Savings(res)
	fmt.Printf("saving > 3%%: %v\n", saving > 0.03)
	fmt.Printf("slowdown < 1%%: %v\n", slowdown < 0.01)
	// Output:
	// saving > 3%: true
	// slowdown < 1%: true
}

// ExampleSystem_PlanFor shows the universal prescription T_opt = min(T*, T')
// (paper Eq. 2): straggler iteration times are clamped to the
// minimum-energy point T*.
func ExampleSystem_PlanFor() {
	sys, err := perseus.Characterize(perseus.Workload{
		Model: "bert-1.3b", GPU: "A40",
		Stages: 2, MicrobatchSize: 8, Microbatches: 4,
		TargetSteps: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	moderate := sys.LookupPoint(sys.Tmin() * 1.1)
	extreme := sys.LookupPoint(sys.Tmin() * 10)
	fmt.Printf("moderate straggler uses slack: %v\n", moderate.Time > sys.Tmin())
	fmt.Printf("extreme straggler clamps to T*: %v\n", extreme.Time == sys.TStar())
	// Output:
	// moderate straggler uses slack: true
	// extreme straggler clamps to T*: true
}
