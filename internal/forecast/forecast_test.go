package forecast

import (
	"math"
	"testing"

	"perseus/internal/frontier"
	"perseus/internal/grid"
)

// convexTable hand-builds a lookup table with E(t) = a + b/t on a unit
// grid — the same convex family internal/grid, internal/fleet, and
// internal/region verify their planners on.
func convexTable(unit float64, tminU, tstarU int64, a, b float64) *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: unit, TminUnits: tminU, TStarUnits: tstarU}
	for u := tminU; u <= tstarU; u++ {
		t := float64(u) * unit
		lt.Points = append(lt.Points, frontier.TablePoint{TimeUnits: u, Energy: a + b/t})
	}
	return lt
}

func TestExtendCyclic(t *testing.T) {
	sig := grid.Diurnal24h()
	ext := ExtendCyclic(sig, 36*3600)
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ext.Horizon(); got != 36*3600 {
		t.Fatalf("horizon %v, want 36 h", got)
	}
	if len(ext.Intervals) != 36 {
		t.Fatalf("%d intervals, want 36", len(ext.Intervals))
	}
	// Hour 25 repeats hour 1.
	if ext.Intervals[25].CarbonGPerKWh != sig.Intervals[1].CarbonGPerKWh {
		t.Fatalf("cyclic extension broken: %+v", ext.Intervals[25])
	}
}

func TestWindow(t *testing.T) {
	sig := grid.Diurnal24h()
	w := Window(sig, 2*3600+1800, 5*3600)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := w.Horizon(); math.Abs(got-2.5*3600) > 1e-9 {
		t.Fatalf("window horizon %v, want 2.5 h", got)
	}
	if w.Intervals[0].CarbonGPerKWh != sig.Intervals[2].CarbonGPerKWh {
		t.Fatalf("window first interval %+v", w.Intervals[0])
	}
}

func TestCoarsen(t *testing.T) {
	sig := grid.Diurnal24h()
	c := Coarsen(sig, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Intervals) != 8 || c.Horizon() != sig.Horizon() {
		t.Fatalf("coarsened %+v", c)
	}
	// Energy-weighted mean preserved: the duration-weighted average
	// carbon over the whole trace is unchanged.
	mean := func(s *grid.Signal) float64 {
		var sum, dur float64
		for _, iv := range s.Intervals {
			sum += iv.CarbonGPerKWh * iv.Duration()
			dur += iv.Duration()
		}
		return sum / dur
	}
	if math.Abs(mean(c)-mean(sig)) > 1e-9 {
		t.Fatalf("coarsen mean %v != %v", mean(c), mean(sig))
	}
}

func TestForecastQuantileSignal(t *testing.T) {
	f := &Forecast{
		IssuedS: 0, Level: 0.9,
		Signal: &grid.Signal{Intervals: []grid.Interval{
			{StartS: 0, EndS: 100, CarbonGPerKWh: 200, PriceUSDPerKWh: 0.1},
		}},
		Carbon: []Band{{Lo: 150, Hi: 300}},
		Price:  []Band{{Lo: 0.05, Hi: 0.2}},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.At(0.5).Intervals[0].CarbonGPerKWh; got != 200 {
		t.Fatalf("q=0.5 carbon %v, want point 200", got)
	}
	if got := f.At(0.9).Intervals[0].CarbonGPerKWh; got != 300 {
		t.Fatalf("q=0.9 carbon %v, want hi 300", got)
	}
	if got := f.At(0.1).Intervals[0].CarbonGPerKWh; got != 150 {
		t.Fatalf("q=0.1 carbon %v, want lo 150", got)
	}
	if got := f.At(0.7).Intervals[0].CarbonGPerKWh; math.Abs(got-250) > 1e-9 {
		t.Fatalf("q=0.7 carbon %v, want 250", got)
	}
	// Quantiles beyond the level clamp at the band edge.
	if got := f.At(0.99).Intervals[0].CarbonGPerKWh; got != 300 {
		t.Fatalf("q=0.99 carbon %v, want clamped 300", got)
	}
}

func TestSeasonalNaiveExactOnPeriodicSeries(t *testing.T) {
	// Two full periods of history: seasonal-naive predicts the third
	// exactly, with zero spread.
	var hist []float64
	for rep := 0; rep < 2; rep++ {
		for _, v := range []float64{400, 300, 200, 350} {
			hist = append(hist, v)
		}
	}
	point, spread := (&SeasonalNaive{}).Predict(hist, 4, 6, 0.9)
	want := []float64{400, 300, 200, 350, 400, 300}
	for i := range want {
		if point[i] != want[i] {
			t.Fatalf("point %v, want %v", point, want)
		}
		if spread[i] != 0 {
			t.Fatalf("spread %v on a perfectly periodic series, want 0", spread)
		}
	}
}

func TestPersistenceBandsWidenWithLead(t *testing.T) {
	hist := []float64{100, 110, 95, 105, 100}
	point, spread := (&Persistence{}).Predict(hist, 0, 5, 0.9)
	for i, p := range point {
		if p != 100 {
			t.Fatalf("persistence point %v, want last value", point)
		}
		if i > 0 && spread[i] <= spread[i-1] {
			t.Fatalf("persistence spread not widening: %v", spread)
		}
	}
}

func TestSmoothedTracksSeasonPlusDecayingAnomaly(t *testing.T) {
	// A periodic series plus a positive anomaly on the last observation:
	// the forecast starts above the seasonal mean and decays toward it.
	var hist []float64
	for rep := 0; rep < 3; rep++ {
		for _, v := range []float64{400, 300, 200, 350} {
			hist = append(hist, v)
		}
	}
	hist = append(hist, 500) // phase-0 value, +100 anomaly
	point, _ := (&Smoothed{Alpha: 1, Phi: 0.5}).Predict(hist, 4, 8, 0.9)
	// Phase of the first forecast step is 1 (seasonal ≈ 300): the
	// anomaly contributes +100·0.5 at lead 1, then halves each step.
	if point[0] <= 300 || point[0] > 400 {
		t.Fatalf("smoothed lead-1 point %v, want above seasonal 300 by a decayed anomaly", point[0])
	}
	d0 := point[0] - 300
	d4 := point[4] - 300 // same phase, one period later
	if d4 <= 0 || d4 >= d0/2 {
		t.Fatalf("anomaly not decaying: lead-1 excess %v, lead-5 excess %v", d0, d4)
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"persistence", "seasonal", "smoothed"} {
		m, err := ModelByName(name)
		if err != nil || m.Name() != name {
			t.Fatalf("ModelByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ModelByName("vibes"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestFromHistoryRevealsAndForecasts(t *testing.T) {
	truth := grid.Diurnal24h()
	prov := &FromHistory{Truth: truth, Model: &SeasonalNaive{}, HorizonS: 48 * 3600}
	fc, err := prov.At(30 * 3600) // six hours into day 2
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Validate(); err != nil {
		t.Fatal(err)
	}
	// Revealed prefix (31 intervals: hours 0..30) matches the truth
	// exactly with zero-width bands.
	for i := 0; i <= 30; i++ {
		want := truth.Intervals[i%24].CarbonGPerKWh
		if fc.Signal.Intervals[i].CarbonGPerKWh != want {
			t.Fatalf("revealed interval %d carbon %v, want %v", i, fc.Signal.Intervals[i].CarbonGPerKWh, want)
		}
		if fc.Carbon[i].Lo != want || fc.Carbon[i].Hi != want {
			t.Fatalf("revealed interval %d band %+v, want exact", i, fc.Carbon[i])
		}
	}
	// With a full revealed period, seasonal-naive predicts the diurnal
	// shape exactly (the truth is perfectly periodic).
	for i := 31; i < len(fc.Signal.Intervals); i++ {
		want := truth.Intervals[i%24].CarbonGPerKWh
		if math.Abs(fc.Signal.Intervals[i].CarbonGPerKWh-want) > 1e-9 {
			t.Fatalf("forecast interval %d carbon %v, want %v", i, fc.Signal.Intervals[i].CarbonGPerKWh, want)
		}
	}
}

func TestRevisionsDeterministicAndConverging(t *testing.T) {
	truth := grid.Diurnal24h()
	prov := &Revisions{Truth: truth, Seed: 3, Sigma: 0.15}
	a, err := prov.At(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Revisions{Truth: truth, Seed: 3, Sigma: 0.15}).At(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Signal.Intervals {
		if a.Signal.Intervals[i] != b.Signal.Intervals[i] {
			t.Fatalf("same seed, different forecast at interval %d", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// A different seed produces a different forecast.
	c, err := (&Revisions{Truth: truth, Seed: 4, Sigma: 0.15}).At(0)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Signal.Intervals {
		if a.Signal.Intervals[i].CarbonGPerKWh != c.Signal.Intervals[i].CarbonGPerKWh {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical forecasts")
	}

	// Revealed intervals are exact; future bands straddle the point.
	late, err := prov.At(10 * 3600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 10; i++ {
		if late.Signal.Intervals[i].CarbonGPerKWh != truth.Intervals[i].CarbonGPerKWh {
			t.Fatalf("revealed interval %d not exact", i)
		}
	}
	for i := 11; i < 24; i++ {
		p := late.Signal.Intervals[i].CarbonGPerKWh
		if !(late.Carbon[i].Lo < p && p < late.Carbon[i].Hi) {
			t.Fatalf("interval %d band %+v does not straddle point %v", i, late.Carbon[i], p)
		}
	}

	// Revisions converge: the mean absolute forecast error over the
	// remaining horizon shrinks as the decision time advances.
	meanErr := func(t0 float64) float64 {
		fc, err := prov.At(t0)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for i, iv := range fc.Signal.Intervals {
			if iv.StartS <= t0 {
				continue
			}
			sum += math.Abs(iv.CarbonGPerKWh-truth.Intervals[i].CarbonGPerKWh) / truth.Intervals[i].CarbonGPerKWh
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if e0, e18 := meanErr(0), meanErr(18*3600); e18 >= e0 {
		t.Fatalf("forecast error did not shrink with revisions: %v at t=0, %v at t=18h", e0, e18)
	}

	// Consistency across decision times: an innovation once drained
	// never returns — the forecast for interval 23 at t=20h differs
	// from t=0 only by the drained innovations, and the t=20h view is
	// closer to the truth on average (checked above); spot-check that
	// already-revealed innovations do not re-roll the shared suffix.
	f20, _ := prov.At(20 * 3600)
	f21, _ := prov.At(21 * 3600)
	if f20.Signal.Intervals[21].CarbonGPerKWh != truth.Intervals[21].CarbonGPerKWh &&
		f21.Signal.Intervals[21].CarbonGPerKWh != truth.Intervals[21].CarbonGPerKWh {
		// Interval 21 starts at 21h: revealed in the t=21h view.
		t.Fatalf("interval 21 not revealed at t=21h")
	}
}

// testOptions is the bundled single-job planning problem every MPC
// test uses: finish 55% of the day's T* capacity within the day.
func testOptions(lt *frontier.LookupTable, truth *grid.Signal) Options {
	return Options{
		Target:    0.55 * truth.Horizon() / lt.TStar(),
		DeadlineS: truth.Horizon(),
	}
}

func TestMPCWithPerfectForesightMatchesOracle(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	oracle, err := Oracle(lt, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	mpc, err := Replan(lt, &Perfect{Truth: truth}, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oracle.Feasible || !mpc.Feasible {
		t.Fatalf("oracle feasible=%v, mpc feasible=%v", oracle.Feasible, mpc.Feasible)
	}
	if math.Abs(mpc.CarbonG-oracle.CarbonG) > 1e-6*(1+oracle.CarbonG) {
		t.Fatalf("perfect-foresight MPC carbon %v != oracle %v", mpc.CarbonG, oracle.CarbonG)
	}
	// With a perfect provider, predicted and realized coincide.
	if math.Abs(mpc.PredCarbonG-mpc.CarbonG) > 1e-6*(1+mpc.CarbonG) {
		t.Fatalf("perfect-foresight predicted %v != realized %v", mpc.PredCarbonG, mpc.CarbonG)
	}
}

// TestMPCBeatsPlanOnceOnBundledScenarios is the PR's acceptance bar:
// on the bundled noisy-revision scenarios over Diurnal24h, rolling-
// horizon re-planning achieves strictly lower realized carbon than
// plan-once-on-the-first-forecast at equal iterations completed, and
// stays within a bounded regret of the perfect-foresight oracle.
func TestMPCBeatsPlanOnceOnBundledScenarios(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	oracle, err := Oracle(lt, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		prov := &Revisions{Truth: truth, Seed: seed, Sigma: 0.12}
		once, err := PlanOnce(lt, prov, truth, opts)
		if err != nil {
			t.Fatal(err)
		}
		mpc, err := Replan(lt, prov, truth, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !once.Feasible || !mpc.Feasible {
			t.Fatalf("seed %d: plan-once feasible=%v, mpc feasible=%v", seed, once.Feasible, mpc.Feasible)
		}
		// Equal iterations completed (both complete the target).
		if math.Abs(once.Iterations-mpc.Iterations) > 1e-6*(1+opts.Target) {
			t.Fatalf("seed %d: iterations differ: plan-once %v, mpc %v", seed, once.Iterations, mpc.Iterations)
		}
		if !(mpc.CarbonG < once.CarbonG) {
			t.Fatalf("seed %d: MPC carbon %v not strictly below plan-once %v", seed, mpc.CarbonG, once.CarbonG)
		}
		// Bounded regret vs the oracle: re-planning hourly against a
		// 12%-per-step revision stream stays within 15% of perfect
		// foresight on the bundled trace.
		if mpc.CarbonG < oracle.CarbonG-1e-6*(1+oracle.CarbonG) {
			t.Fatalf("seed %d: MPC carbon %v beats the oracle %v — oracle broken", seed, mpc.CarbonG, oracle.CarbonG)
		}
		if mpc.CarbonG > 1.15*oracle.CarbonG {
			t.Fatalf("seed %d: MPC regret too large: %v vs oracle %v", seed, mpc.CarbonG, oracle.CarbonG)
		}
		// Determinism: the same seed replays to the identical outcome.
		again, err := Replan(lt, prov, truth, opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.CarbonG != mpc.CarbonG || again.CostUSD != mpc.CostUSD || again.Plans != mpc.Plans {
			t.Fatalf("seed %d: replay differs: %v vs %v", seed, again.CarbonG, mpc.CarbonG)
		}
	}
}

func TestRobustMPCPlansAgainstPessimisticQuantile(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	prov := &Revisions{Truth: truth, Seed: 2, Sigma: 0.12}
	mpc, err := Replan(lt, prov, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Quantile = 0.9
	robust, err := Replan(lt, prov, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !robust.Feasible {
		t.Fatal("robust MPC infeasible")
	}
	if robust.Strategy == mpc.Strategy {
		t.Fatalf("robust strategy label %q should differ", robust.Strategy)
	}
	if math.Abs(robust.Iterations-mpc.Iterations) > 1e-6*(1+opts.Target) {
		t.Fatalf("robust iterations %v != mpc %v", robust.Iterations, mpc.Iterations)
	}
}

func TestMPCExecutedIntervalAccounting(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	mpc, err := Replan(lt, &Revisions{Truth: truth, Seed: 1, Sigma: 0.12}, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	var iter, energy, carbon float64
	for _, ei := range mpc.Intervals {
		var run float64
		for _, sl := range ei.Slices {
			run += sl.Seconds
		}
		if run > ei.EndS-ei.StartS+1e-6 {
			t.Fatalf("interval [%v, %v) runs %v s", ei.StartS, ei.EndS, run)
		}
		if math.Abs(ei.IdleS-(ei.EndS-ei.StartS-run)) > 1e-6 {
			t.Fatalf("interval idle %v, want %v", ei.IdleS, ei.EndS-ei.StartS-run)
		}
		// Realized carbon matches an independent accrual of the slices.
		var want float64
		at := ei.StartS
		for _, sl := range ei.Slices {
			_, c, _ := grid.Accrue(truth, at, at+sl.Seconds, lt.AvgPower(sl.Point))
			want += c
			at += sl.Seconds
		}
		if math.Abs(ei.CarbonG-want) > 1e-6*(1+want) {
			t.Fatalf("interval [%v, %v) carbon %v, want %v", ei.StartS, ei.EndS, ei.CarbonG, want)
		}
		iter += ei.Iterations
		energy += ei.EnergyJ
		carbon += ei.CarbonG
	}
	if math.Abs(iter-mpc.Iterations) > 1e-6*(1+mpc.Iterations) ||
		math.Abs(energy-mpc.EnergyJ) > 1e-6*(1+mpc.EnergyJ) ||
		math.Abs(carbon-mpc.CarbonG) > 1e-6*(1+mpc.CarbonG) {
		t.Fatalf("totals do not add up: %v/%v, %v/%v, %v/%v",
			iter, mpc.Iterations, energy, mpc.EnergyJ, carbon, mpc.CarbonG)
	}
	if mpc.FinishS < 0 || mpc.FinishS > opts.DeadlineS+1e-9 {
		t.Fatalf("finish %v outside [0, deadline]", mpc.FinishS)
	}
}

func TestMPCModelProvidersCompleteTarget(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	for _, name := range []string{"persistence", "seasonal", "smoothed"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Replan(lt, &FromHistory{Truth: truth, Model: m}, truth, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Feasible {
			t.Fatalf("%s: MPC run infeasible", name)
		}
	}
}

// tailRevised wraps a base provider and, from the first re-plan on,
// perturbs every forecast interval at or past ReviseFromS — a tail-only
// revision: the remaining planning window before that point is
// untouched.
type tailRevised struct {
	Base        Provider
	ReviseFromS float64
}

func (p *tailRevised) Name() string { return p.Base.Name() + "/tail-revised" }

func (p *tailRevised) At(t float64) (*Forecast, error) {
	f, err := p.Base.At(t)
	if err != nil {
		return nil, err
	}
	if t == 0 {
		return f, nil
	}
	factor := 1.5 + t/1e7 // a fresh revision at every tick
	for i := range f.Signal.Intervals {
		iv := &f.Signal.Intervals[i]
		if iv.StartS >= p.ReviseFromS {
			iv.CarbonGPerKWh *= factor
			f.Carbon[i].Lo *= factor
			f.Carbon[i].Hi *= factor
		}
	}
	return f, nil
}

// TestMPCWarmStartsOnUnchangedForecast pins the warm-start contract:
// with perfect foresight every re-plan tick sees the identical window,
// so the controller plans exactly once and reuses the running plan's
// suffix at every later tick — and the realized outcome still matches
// the oracle.
func TestMPCWarmStartsOnUnchangedForecast(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	oracle, err := Oracle(lt, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	mpc, err := Replan(lt, &Perfect{Truth: truth}, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mpc.Plans != 1 {
		t.Fatalf("perfect-foresight MPC planned %d times, want 1 (all warm)", mpc.Plans)
	}
	if mpc.WarmStarts == 0 {
		t.Fatal("perfect-foresight MPC took no warm starts")
	}
	if math.Abs(mpc.CarbonG-oracle.CarbonG) > 1e-6*(1+oracle.CarbonG) {
		t.Fatalf("warm-started MPC carbon %v != oracle %v", mpc.CarbonG, oracle.CarbonG)
	}
	if math.Abs(mpc.Iterations-opts.Target) > 1e-6*(1+opts.Target) {
		t.Fatalf("warm-started MPC iterations %v != target %v", mpc.Iterations, opts.Target)
	}
}

// TestMPCWarmStartTailOnlyRevision pins the sharper claim: a revision
// that only touches intervals past the planning deadline keeps the
// warm path, while the same revision inside the window forces a cold
// re-plan.
func TestMPCWarmStartTailOnlyRevision(t *testing.T) {
	lt := convexTable(0.01, 80, 120, 3000, 120)
	truth := grid.Diurnal24h()
	opts := testOptions(lt, truth)
	opts.Target *= 0.5
	opts.DeadlineS = 12 * 3600 // plan over half the trace

	// Forecast covers the full day but revisions only touch hours past
	// the deadline: every tick takes the warm path.
	warm, err := Replan(lt, &tailRevised{
		Base:        &Perfect{Truth: truth},
		ReviseFromS: opts.DeadlineS,
	}, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Plans != 1 || warm.WarmStarts == 0 {
		t.Fatalf("tail-only revision: plans %d, warm starts %d; want 1 plan, all ticks warm",
			warm.Plans, warm.WarmStarts)
	}

	// The same revision biting one hour inside the window: cold from
	// the first re-plan on.
	cold, err := Replan(lt, &tailRevised{
		Base:        &Perfect{Truth: truth},
		ReviseFromS: opts.DeadlineS - 3600,
	}, truth, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmStarts != 0 {
		t.Fatalf("in-window revision still took %d warm starts", cold.WarmStarts)
	}
	if cold.Plans < 2 {
		t.Fatalf("in-window revision planned %d times, want a re-plan per tick", cold.Plans)
	}
}
