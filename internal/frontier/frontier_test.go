package frontier

import (
	"math"
	"sort"
	"testing"

	"perseus/internal/dag"
	"perseus/internal/gpu"
	"perseus/internal/maxflow"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// buildCase assembles a DAG + profile for a model/GPU/pipeline combination.
func buildCase(t *testing.T, modelName string, g *gpu.Model, stages, micro, mbSize int, schedule string) (*dag.Graph, *profile.Profile, Options) {
	t.Helper()
	m, err := model.ByName(modelName)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ByName(schedule, stages, micro, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Unit: 5e-3}
	graph, err := dag.Build(s, func(op sched.Op) int64 {
		tp, err := p.For(op)
		if err != nil {
			t.Fatal(err)
		}
		return unitsFloor(tp.MaxTime(), opts.Unit)
	})
	if err != nil {
		t.Fatal(err)
	}
	return graph, p, opts
}

func characterize(t *testing.T, g *dag.Graph, p *profile.Profile, opts Options) *Frontier {
	t.Helper()
	f, err := Characterize(g, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFrontierReachesTmin(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f := characterize(t, g, p, opts)
	pts := f.Points()
	if len(pts) < 10 {
		t.Fatalf("frontier has only %d points", len(pts))
	}
	if pts[0].TimeUnits != f.tminUnits {
		t.Errorf("fastest frontier point %d units, want Tmin %d", pts[0].TimeUnits, f.tminUnits)
	}
	if pts[len(pts)-1].TimeUnits != f.tstarUnits {
		t.Errorf("slowest frontier point %d units, want T* %d", pts[len(pts)-1].TimeUnits, f.tstarUnits)
	}
	if f.TStar() <= f.Tmin() {
		t.Errorf("T* %v should exceed Tmin %v", f.TStar(), f.Tmin())
	}
}

func TestFrontierMonotone(t *testing.T) {
	g, p, opts := buildCase(t, "bloom-3b", gpu.A40, 4, 8, 4, "1f1b")
	f := characterize(t, g, p, opts)
	pts := f.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeUnits != pts[i-1].TimeUnits+1 {
			t.Fatalf("times not consecutive at %d: %d -> %d", i, pts[i-1].TimeUnits, pts[i].TimeUnits)
		}
		// Relaxed energy must be non-increasing in time: each step to
		// the left pays a non-negative min-cut cost.
		if pts[i].EnergyRelaxed > pts[i-1].EnergyRelaxed+1e-9 {
			t.Fatalf("relaxed energy increases with time at %d: %v -> %v",
				i, pts[i-1].EnergyRelaxed, pts[i].EnergyRelaxed)
		}
	}
	// Discrete energy tracks the relaxed objective loosely: endpoints
	// must agree in direction.
	if pts[0].Energy <= pts[len(pts)-1].Energy {
		t.Errorf("fastest schedule energy %v should exceed slowest %v",
			pts[0].Energy, pts[len(pts)-1].Energy)
	}
}

func TestPlanRealizesDurations(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f := characterize(t, g, p, opts)
	for _, pt := range []Point{f.Points()[0], f.Points()[len(f.Points())/2], f.Points()[len(f.Points())-1]} {
		durs := pt.Durations()
		plan := pt.Plan()
		for i, op := range g.Ops {
			tp, err := p.For(op)
			if err != nil {
				t.Fatal(err)
			}
			realized := 0.0
			for j, gp := range tp.Points {
				if gp.Freq == plan[i] {
					realized = tp.Points[j].Time
					break
				}
			}
			if realized == 0 {
				t.Fatalf("op %d: plan frequency %d not in profile", i, plan[i])
			}
			// Durations at the fastest bound may round below the true
			// minimum time by up to half a unit; everything else must
			// never run later than planned.
			if realized > float64(durs[i])*opts.Unit+opts.Unit/2+1e-9 {
				t.Fatalf("op %d: realized time %v exceeds planned %v", i, realized, float64(durs[i])*opts.Unit)
			}
		}
	}
}

func TestFastestPointIsAllMaxFrequency(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 2, 4, 4, "1f1b")
	f := characterize(t, g, p, opts)
	durs := f.Points()[0].Durations()
	// At Tmin, critical computations must be at their fastest durations;
	// non-critical ones may stay slow (that is the intrinsic saving).
	for i := range g.Ops {
		g.Dur[i] = durs[i]
	}
	if mk := g.Makespan(); mk != f.tminUnits {
		t.Errorf("fastest plan's makespan %d != Tmin %d", mk, f.tminUnits)
	}
}

func TestIntrinsicSavingsExist(t *testing.T) {
	// Paper Table 3: at Tmin, Perseus saves energy versus all-max
	// frequencies thanks to stage imbalance and pipeline bubbles.
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 8, 4, "1f1b")
	f := characterize(t, g, p, opts)
	fastest := f.Points()[0]
	// All-max-frequency raw energy.
	var maxRaw float64
	for _, op := range g.Ops {
		tp, err := p.For(op)
		if err != nil {
			t.Fatal(err)
		}
		maxRaw += tp.Raw[0]
	}
	if fastest.RawEnergy >= maxRaw {
		t.Errorf("Perseus Tmin raw energy %v >= all-max %v: no intrinsic savings", fastest.RawEnergy, maxRaw)
	}
	saving := 1 - fastest.RawEnergy/maxRaw
	if saving < 0.02 || saving > 0.5 {
		t.Errorf("computation-energy saving at Tmin = %.1f%%, implausible", 100*saving)
	}
}

func TestLookupPrescription(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f := characterize(t, g, p, opts)
	// Figure 3a: no straggler (T' <= Tmin) -> fastest schedule.
	if got := f.Lookup(f.Tmin() * 0.5); got.TimeUnits != f.tminUnits {
		t.Errorf("Lookup(below Tmin) = %d units, want Tmin", got.TimeUnits)
	}
	if got := f.Lookup(f.Tmin()); got.TimeUnits != f.tminUnits {
		t.Errorf("Lookup(Tmin) = %d units, want Tmin", got.TimeUnits)
	}
	// Figure 3b: moderate straggler -> largest schedule not exceeding T'.
	mid := (f.Tmin() + f.TStar()) / 2
	got := f.Lookup(mid)
	if got.Time > mid+1e-9 {
		t.Errorf("Lookup(%v) returned slower schedule %v", mid, got.Time)
	}
	if next := f.Lookup(mid + f.Unit); next.TimeUnits < got.TimeUnits {
		t.Errorf("Lookup not monotone")
	}
	// Figure 3c: straggler beyond T* -> clamp to T*.
	if got := f.Lookup(f.TStar() * 10); got.TimeUnits != f.tstarUnits {
		t.Errorf("Lookup(beyond T*) = %d units, want T* %d", got.TimeUnits, f.tstarUnits)
	}
}

func TestLookupEnergyOrdering(t *testing.T) {
	// Slower schedules (within [Tmin, T*]) must consume less adjusted
	// energy: that is what makes slack exploitation worthwhile.
	g, p, opts := buildCase(t, "bert-1.3b", gpu.A40, 4, 8, 8, "1f1b")
	f := characterize(t, g, p, opts)
	prev := math.Inf(1)
	for _, tp := range []float64{f.Tmin(), f.Tmin() * 1.05, f.Tmin() * 1.1, f.Tmin() * 1.2, f.TStar() * 2} {
		pt := f.Lookup(tp)
		if pt.EnergyRelaxed > prev+1e-9 {
			t.Errorf("Lookup(%v): relaxed energy %v not decreasing", tp, pt.EnergyRelaxed)
		}
		prev = pt.EnergyRelaxed
	}
}

// TestGoldBruteForce compares the characterized frontier against exhaustive
// enumeration of every frequency assignment on a tiny workload (the
// DESIGN.md gold test). With a coarse frequency ladder the discretized
// schedule can sit above the true optimum mid-frontier (the continuous
// relaxation cannot see ladder boundaries); the gap must shrink as the
// ladder refines, and the endpoints must match tightly at any granularity.
func TestGoldBruteForce(t *testing.T) {
	coarse := runGoldCase(t, 100)
	if coarse > 0.30 {
		t.Errorf("coarse ladder: worst frontier gap %.1f%% of range, want <= 30%%", 100*coarse)
	}
	fine := runGoldCase(t, 50)
	if fine > 0.15 {
		t.Errorf("fine ladder: worst frontier gap %.1f%% of range, want <= 15%%", 100*fine)
	}
	if fine > coarse+0.02 {
		t.Errorf("frontier gap did not shrink with ladder refinement: coarse %.3f, fine %.3f", coarse, fine)
	}
}

// runGoldCase returns the worst gap between the Perseus frontier and the
// brute-force optimum, as a fraction of the brute-force energy range.
func runGoldCase(t *testing.T, fstep gpu.Frequency) float64 {
	t.Helper()
	tiny := &gpu.Model{
		Name: "tiny", FMin: 800, FMax: 1400, FStep: fstep,
		TDP: 300, IdleW: 55, StaticW: 115, VFloorFrac: 0.78, VMinFrac: 0.84,
		BlockingW: 75, EffFLOPS: 30e12, MemBoundFwd: 0.28, MemBoundBwd: 0.30,
	}
	// Imbalanced 2-stage pipeline, 2 microbatches: 8 computations.
	refs := []float64{0.100, 0.130}
	p, err := profile.FromStageTimes(tiny, refs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.OneFOneB(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Unit: 1e-3}
	g, err := dag.Build(s, func(op sched.Op) int64 {
		tp, _ := p.For(op)
		return unitsFloor(tp.MaxTime(), opts.Unit)
	})
	if err != nil {
		t.Fatal(err)
	}

	// Brute force: every frequency assignment, exact (time, adjusted
	// energy). Frequencies per op restricted to the op's Pareto set.
	type choice struct {
		t, e float64
	}
	perOp := make([][]choice, len(g.Ops))
	for i, op := range g.Ops {
		tp, _ := p.For(op)
		for j := range tp.Points {
			perOp[i] = append(perOp[i], choice{tp.Points[j].Time, tp.Points[j].Energy})
		}
	}
	// Fast longest-path evaluator with preallocated state (called for
	// every enumerated assignment).
	topo := g.Topo()
	est := make([]int64, len(g.Dur))
	durs := make([]int64, len(g.Dur))
	eval := func(assign []int) (float64, float64) {
		var energy float64
		for i := range g.Ops {
			c := perOp[i][assign[i]]
			durs[i] = int64(math.Round(c.t * 1e6)) // μs grid for exactness
			energy += c.e
		}
		for i := range est {
			est[i] = 0
		}
		for _, v := range topo {
			for _, w := range g.Succ[v] {
				if t := est[v] + durs[v]; t > est[w] {
					est[w] = t
				}
			}
		}
		return float64(est[g.Sink]) / 1e6, energy
	}
	n := len(g.Ops)
	assign := make([]int, n)
	type pt struct{ t, e float64 }
	var all []pt
	for {
		tt, ee := eval(assign)
		all = append(all, pt{tt, ee})
		k := n - 1
		for k >= 0 {
			assign[k]++
			if assign[k] < len(perOp[k]) {
				break
			}
			assign[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	// Optimal energy at each time budget: sort by time, prefix-min energy,
	// binary search per query.
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })
	prefixMin := make([]float64, len(all))
	best := math.Inf(1)
	for i, q := range all {
		if q.e < best {
			best = q.e
		}
		prefixMin[i] = best
	}
	optimal := func(budget float64) float64 {
		idx := sort.Search(len(all), func(i int) bool { return all[i].t > budget+1e-9 }) - 1
		if idx < 0 {
			return math.Inf(1)
		}
		return prefixMin[idx]
	}

	f := characterize(t, g, p, opts)
	var eMin, eMax float64 = math.Inf(1), math.Inf(-1)
	for _, q := range all {
		eMin = math.Min(eMin, q.e)
		eMax = math.Max(eMax, q.e)
	}
	var worst float64
	for _, fp := range f.Points() {
		opt := optimal(fp.Time)
		if math.IsInf(opt, 1) {
			t.Fatalf("no feasible assignment within %v s; frontier too optimistic", fp.Time)
		}
		if gap := (fp.Energy - opt) / (eMax - eMin); gap > worst {
			worst = gap
		}
	}
	// Endpoints must essentially coincide with the true extremes.
	first, last := f.Points()[0], f.Points()[len(f.Points())-1]
	if last.Energy > eMin+0.02*(eMax-eMin) {
		t.Errorf("T* energy %v should approach brute-force min %v", last.Energy, eMin)
	}
	var tMinTrue float64 = math.Inf(1)
	for _, q := range all {
		tMinTrue = math.Min(tMinTrue, q.t)
	}
	if math.Abs(first.Time-tMinTrue) > 2*opts.Unit {
		t.Errorf("Tmin %v vs true fastest %v", first.Time, tMinTrue)
	}
	// The fastest point must also be near-optimal in energy: intrinsic
	// bloat removal at Tmin is the paper's headline claim.
	if optT := optimal(first.Time); first.Energy > optT+0.10*(eMax-eMin) {
		t.Errorf("Tmin energy %v vs optimal %v", first.Energy, optT)
	}
	return worst
}

func TestGreedyAblation(t *testing.T) {
	// The greedy stepper must terminate no later than min-cut and
	// deliver a frontier that never beats it.
	g1, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f := characterize(t, g1, p, opts)

	g2, _, _ := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	gopts := opts
	gopts.Stepper = GreedyStepper{}
	fg := characterize(t, g2, p, gopts)

	if fg.Points()[0].TimeUnits < f.Points()[0].TimeUnits {
		t.Errorf("greedy reached %d units, below min-cut's %d", fg.Points()[0].TimeUnits, f.Points()[0].TimeUnits)
	}
	// Greedy stops at the first parallel-critical-path situation; on a
	// pipeline DAG that happens well before Tmin.
	if fg.Points()[0].TimeUnits == f.Points()[0].TimeUnits && len(fg.Points()) >= len(f.Points()) {
		t.Logf("note: greedy matched min-cut on this workload (rare but possible)")
	}
}

func TestPiecewiseFitVariant(t *testing.T) {
	g1, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 2, 4, 4, "1f1b")
	f := characterize(t, g1, p, opts)
	g2, _, _ := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 2, 4, 4, "1f1b")
	popts := opts
	popts.PiecewiseFit = true
	fp := characterize(t, g2, p, popts)
	if fp.Points()[0].TimeUnits != f.Points()[0].TimeUnits {
		t.Errorf("piecewise Tmin %d != exponential Tmin %d", fp.Points()[0].TimeUnits, f.Points()[0].TimeUnits)
	}
	// Both should end at the same T*.
	a, b := f.Points(), fp.Points()
	if a[len(a)-1].TimeUnits != b[len(b)-1].TimeUnits {
		t.Errorf("piecewise T* %d != exponential T* %d", b[len(b)-1].TimeUnits, a[len(a)-1].TimeUnits)
	}
}

func TestConstantOpsSurviveOptimization(t *testing.T) {
	// Paper §4.4: constant-time operations are single-choice nodes the
	// optimizer must never modify. Model a data-loading op by marking
	// stage 0's forward profile constant via AddConstant and splicing a
	// Constant op into the schedule.
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: gpu.A100PCIe, Stages: 2, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.AddConstant(0, 0.04, 5)
	s, err := sched.OneFOneB(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Prepend a constant op to stage 0's stream.
	s.Ops = append(s.Ops, sched.Op{Stage: 0, Virtual: 0, Microbatch: 0, Kind: sched.Constant})
	cid := len(s.Ops) - 1
	s.PerStage[0] = append([]int{cid}, s.PerStage[0]...)

	opts := Options{Unit: 5e-3}
	g, err := dag.Build(s, func(op sched.Op) int64 {
		tp, err := p.For(op)
		if err != nil {
			t.Fatal(err)
		}
		if op.Kind == sched.Constant {
			return unitsCeil(tp.Points[0].Time, opts.Unit)
		}
		return unitsFloor(tp.MaxTime(), opts.Unit)
	})
	if err != nil {
		t.Fatal(err)
	}
	f := characterize(t, g, p, opts)
	for _, pt := range []Point{f.Points()[0], f.Points()[len(f.Points())-1]} {
		durs := pt.Durations()
		if durs[cid] != unitsCeil(0.04, opts.Unit) {
			t.Errorf("constant op duration changed to %d units", durs[cid])
		}
	}
}

func TestDurationReconstructionAcrossKeyframes(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	opts.keyframeEvery = 7 // force many keyframe boundaries
	f := characterize(t, g, p, opts)
	// Durations at each point must yield exactly that point's makespan.
	pts := f.Points()
	stride := len(pts)/17 + 1
	for i := 0; i < len(pts); i += stride {
		durs := pts[i].Durations()
		for j := range g.Ops {
			g.Dur[j] = durs[j]
		}
		if mk := g.Makespan(); mk != pts[i].TimeUnits {
			t.Fatalf("point %d: reconstructed makespan %d != recorded %d", i, mk, pts[i].TimeUnits)
		}
	}
}

func TestGPipeAndInterleavedOptimizable(t *testing.T) {
	// Paper §4.4: any schedule expressible as a DAG can be optimized
	// without modification.
	for _, tc := range []struct {
		name          string
		stages, micro int
		chunks        int
	}{
		{"gpipe", 4, 6, 1},
		{"interleaved-1f1b", 2, 4, 2},
		{"early-recompute-1f1b", 2, 4, 1},
	} {
		m, err := model.GPT3("1.3b")
		if err != nil {
			t.Fatal(err)
		}
		virtual := tc.stages * tc.chunks
		part, err := partition.MinImbalance(m.LayerCosts(), virtual)
		if err != nil {
			t.Fatal(err)
		}
		p, err := profile.FromWorkload(profile.Workload{
			Model: m, GPU: gpu.A40, Stages: tc.stages, Chunks: tc.chunks,
			Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ByName(tc.name, tc.stages, tc.micro, tc.chunks)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Unit: 5e-3}
		g, err := dag.Build(s, func(op sched.Op) int64 {
			tp, err := p.For(op)
			if err != nil {
				t.Fatal(err)
			}
			return unitsFloor(tp.MaxTime(), opts.Unit)
		})
		if err != nil {
			t.Fatal(err)
		}
		f := characterize(t, g, p, opts)
		if len(f.Points()) < 5 {
			t.Errorf("%s: frontier has only %d points", tc.name, len(f.Points()))
		}
		if f.Points()[0].TimeUnits != f.tminUnits {
			t.Errorf("%s: frontier did not reach Tmin", tc.name)
		}
	}
}

func TestEmptyDAGRejected(t *testing.T) {
	s := &sched.Schedule{Name: "empty", Stages: 1, Microbatches: 1, Chunks: 1, PerStage: make([][]int, 1)}
	g, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Characterize(g, &profile.Profile{}, Options{}); err == nil {
		t.Error("empty DAG should error")
	}
}

// TestSolverEquivalence checks the Dinic-backed optimizer produces the
// exact same frontier as the paper's Edmonds-Karp.
func TestSolverEquivalence(t *testing.T) {
	g1, p, opts := buildCase(t, "bloom-3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	f1 := characterize(t, g1, p, opts)
	g2, _, _ := buildCase(t, "bloom-3b", gpu.A100PCIe, 4, 6, 4, "1f1b")
	dopts := opts
	dopts.Solver = maxflow.Dinic
	f2 := characterize(t, g2, p, dopts)
	a, b := f1.Points(), f2.Points()
	if len(a) != len(b) {
		t.Fatalf("frontiers differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TimeUnits != b[i].TimeUnits {
			t.Fatalf("point %d: times differ", i)
		}
		// Min cuts may tie; energies must agree to high precision anyway
		// because tied cuts have equal cost.
		if diff := a[i].EnergyRelaxed - b[i].EnergyRelaxed; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("point %d: relaxed energies differ by %v", i, diff)
		}
	}
}

// TestDeterminism checks characterization is bit-for-bit reproducible.
func TestDeterminism(t *testing.T) {
	g1, p, opts := buildCase(t, "gpt3-1.3b", gpu.A40, 4, 6, 4, "1f1b")
	f1 := characterize(t, g1, p, opts)
	g2, _, _ := buildCase(t, "gpt3-1.3b", gpu.A40, 4, 6, 4, "1f1b")
	f2 := characterize(t, g2, p, opts)
	a, b := f1.Points(), f2.Points()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TimeUnits != b[i].TimeUnits || a[i].Energy != b[i].Energy {
			t.Fatalf("point %d differs between runs", i)
		}
	}
}
