// Command perseus-region replays the bundled two-region phase-shifted
// diurnal traces through the multi-region planner (internal/region):
// one training job with deadline slack is placed — and migrated —
// across two datacenters whose solar valleys are 12 hours out of
// phase, and the resulting carbon/cost table is compared against both
// baselines: pinning the job to its best single region (fixed
// placement) and choosing one region without ever migrating.
//
// Usage:
//
//	perseus-region                      # bundled phase-shifted pair, quick scale
//	perseus-region -util 0.7            # tighter deadline (70% of T* capacity)
//	perseus-region -objective cost      # minimize $ instead of gCO2
//	perseus-region -downtime 1800       # 30 min checkpoint transfer pause
//	perseus-region -migjoules 5e6       # checkpoint transfer energy
//	perseus-region -gpu A40 -scale full # paper-fidelity frontier
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"perseus/internal/experiments"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/region"
)

func main() {
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	scale := flag.String("scale", "quick", "quick | full (paper parameters; slow)")
	util := flag.Float64("util", 0.6, "target as a fraction of one region's daily T* capacity (deadline slack knob)")
	objective := flag.String("objective", "carbon", "objective for the featured plan: carbon | cost | energy")
	downtime := flag.Float64("downtime", 600, "migration checkpoint-transfer downtime in seconds")
	migJoules := flag.Float64("migjoules", 1e6, "migration checkpoint-transfer energy in joules")
	flag.Parse()

	g, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	obj, err := grid.ParseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}

	cfg := experiments.WorkloadConfig{
		Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 4,
		MicrobatchSize: 4, Microbatches: 16,
	}
	fmt.Printf("characterizing %s on %s...\n", cfg.Display, g.Name)
	sys, err := experiments.BuildSystem(cfg, g, sc)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()

	regions := region.PhaseShiftedPair(8)
	mig := region.MigrationCost{DowntimeS: *downtime, EnergyJ: *migJoules}
	target := *util * 86400 / lt.TStar()
	fmt.Printf("regions: %s and %s (solar valleys 12 h out of phase); target %.0f iterations (%.0f%% of one region's T* capacity)\n",
		regions[0].Name, regions[1].Name, target, 100**util)
	fmt.Printf("migration cost: %.0f s downtime + %.2f kWh transfer energy\n\n",
		mig.DowntimeS, mig.EnergyJ/grid.JoulesPerKWh)

	strategies, err := experiments.RegionComparison(lt, regions, target, 0, mig)
	if err != nil {
		log.Fatal(err)
	}
	featured, err := region.Optimize(regions, []region.Job{
		{ID: "train", Table: lt, Target: target},
	}, region.Options{Objective: obj, Migration: mig})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []*experiments.Table{
		experiments.RegionPlanTable(regions, featured, 0),
		experiments.RegionComparisonTable(strategies),
	} {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
