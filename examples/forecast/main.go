// Forecast: schedule against a predicted grid, not a known one.
//
// The grid example plans with perfect foresight of the day's carbon
// curve. Real operators only see forecasts that revise hourly. This
// walkthrough replays the same diurnal day through a seeded
// noisy-revision forecast stream three ways — commit to the first
// forecast (plan-once), re-plan at every hour as the forecast revises
// (MPC), and the perfect-foresight oracle — and shows that re-planning
// recovers most of what forecast error costs.
package main

import (
	"fmt"
	"log"
	"math"

	"perseus/internal/experiments"
	"perseus/internal/forecast"
	"perseus/internal/gpu"
	"perseus/internal/grid"
)

func main() {
	sys, err := experiments.BuildSystem(experiments.WorkloadConfig{
		Display: "gpt3-1.3b", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 8,
	}, gpu.A100PCIe, experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()
	truth := grid.Diurnal24h()
	target := math.Floor(0.55 * truth.Horizon() / lt.TStar())
	opts := forecast.Options{Target: target}
	prov := &forecast.Revisions{Truth: truth, Seed: 7, Sigma: 0.12}

	// What the operator sees at dawn vs what the day will really do.
	fc, err := prov.At(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hour  truth  forecast@t=0  band")
	for i, iv := range fc.Signal.Intervals {
		fmt.Printf("%4d  %5.0f  %12.0f  [%.0f, %.0f]\n",
			i, truth.Intervals[i].CarbonGPerKWh, iv.CarbonGPerKWh,
			fc.Carbon[i].Lo, fc.Carbon[i].Hi)
	}

	oracle, err := forecast.Oracle(lt, truth, opts)
	if err != nil {
		log.Fatal(err)
	}
	once, err := forecast.PlanOnce(lt, prov, truth, opts)
	if err != nil {
		log.Fatal(err)
	}
	mpc, err := forecast.Replan(lt, prov, truth, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntarget: %.0f iterations by hour 24\n\n", target)
	fmt.Printf("%-28s %10s %8s %10s\n", "strategy", "carbon(kg)", "plans", "vs oracle")
	for _, row := range []struct {
		name string
		o    *forecast.Outcome
	}{
		{"oracle (perfect foresight)", oracle},
		{"plan-once (first forecast)", once},
		{"MPC re-planning", mpc},
	} {
		fmt.Printf("%-28s %10.3f %8d %+9.1f%%\n", row.name, row.o.CarbonG/1e3, row.o.Plans,
			100*(row.o.CarbonG-oracle.CarbonG)/oracle.CarbonG)
	}
	fmt.Printf("\nre-planning recovered %.1f%% of the carbon plan-once left on the table\n",
		100*(once.CarbonG-mpc.CarbonG)/(once.CarbonG-oracle.CarbonG))
}
