package region

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"perseus/internal/grid"
)

// DefaultWorkers returns the planner's default evaluation parallelism:
// one worker per available CPU (Options.Workers = 0 resolves to this).
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelFor runs fn(worker, index) for every index in [0, n) across
// at most `workers` goroutines. Indices are handed out atomically and
// each worker id runs on exactly one goroutine, so per-worker scratch
// needs no locking. workers <= 1 (or n <= 1) runs inline.
func parallelFor(workers, n int, fn func(worker, index int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// evalScratch is one worker's private evaluation state — compile
// buffers plus a reusable grid solver — shared by every candidate that
// worker evaluates.
type evalScratch struct {
	compileScratch
	solver grid.Solver
}

// outcome is a light evaluation result: the fields candidate
// comparison reads, without the materialized plan the commit path
// needs.
type outcome struct {
	cost     float64 // objective incl. migration; only valid when feasible
	coverage float64
	feasible bool
}

// betterOutcome mirrors eval.better on light results; bOK is false
// when there is no incumbent yet.
func betterOutcome(a, b outcome, bOK bool) bool {
	if !bOK {
		return true
	}
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.feasible {
		return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
	}
	if math.Abs(a.coverage-b.coverage) > 1e-9*(1+b.coverage) {
		return a.coverage > b.coverage
	}
	return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
}

// jobMemo memoizes light evaluations by placement for one job's
// descent. Usage is fixed while a job is being planned, so an outcome
// is a pure function of the placement — a repeated candidate (steepest
// descent re-proposes most of the previous sweep's moves) is never
// re-solved. Keys are FNV-1a hashes verified against the stored
// placement, so a hash collision degrades to a duplicate solve, never
// a wrong result.
type jobMemo struct {
	keys    map[uint64]int32
	entries []memoEntry
	arena   []int // interned placements, back to back
}

type memoEntry struct {
	off, n int32 // placement = arena[off : off+n]
	out    outcome
	err    error
	solved bool
}

func (m *jobMemo) reset() {
	if m.keys == nil {
		m.keys = make(map[uint64]int32)
	} else {
		clear(m.keys)
	}
	m.entries = m.entries[:0]
	m.arena = m.arena[:0]
}

// placement returns entry e's interned placement (arena-backed: valid
// until the next intern).
func (m *jobMemo) placement(e int32) []int {
	ent := &m.entries[e]
	return m.arena[ent.off : ent.off+ent.n]
}

func hashPlacement(pl []int) uint64 {
	h := uint64(14695981039346656037)
	for _, r := range pl {
		h ^= uint64(uint32(r + 1))
		h *= 1099511628211
	}
	return h
}

func equalPlacement(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intern returns the entry index for the placement, copying it into
// the arena and adding an unsolved entry on first sight.
func (m *jobMemo) intern(pl []int) int32 {
	h := hashPlacement(pl)
	if e, ok := m.keys[h]; ok && equalPlacement(m.placement(e), pl) {
		return e
	}
	off := int32(len(m.arena))
	m.arena = append(m.arena, pl...)
	e := int32(len(m.entries))
	m.entries = append(m.entries, memoEntry{off: off, n: int32(len(pl))})
	if _, taken := m.keys[h]; !taken {
		m.keys[h] = e
	}
	return e
}
