package server

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"perseus/internal/grid"
	"perseus/internal/obs"
)

// PlanKey identifies one cacheable planning problem: the plan-input
// generation (Epoch — bumped on signal re-install and forecast
// revision), the content hash of the frontier the plan is solved over
// (re-characterization changes it), and the request parameters. Every
// field is value-typed, so keys compare and hash as map keys, and the
// whole key is location-independent: two server replicas that agree on
// the epoch and hold the same frontier solve the same problem, which
// is what makes a shared PlanCacheBackend sound.
type PlanKey struct {
	Epoch     int
	Table     uint64
	Target    float64
	Deadline  float64
	Objective grid.Objective
	Scale     int
}

// Canonical renders the key as a stable string — the form a
// cross-replica backend keys its store by and the input the plan ETag
// is hashed from. Not used on the replica-local hot path, which keys
// maps by the struct directly.
func (k PlanKey) Canonical() string {
	return fmt.Sprintf("e%d.t%016x.i%s.d%s.o%s.s%d",
		k.Epoch, k.Table,
		strconv.FormatFloat(k.Target, 'g', -1, 64),
		strconv.FormatFloat(k.Deadline, 'g', -1, 64),
		k.Objective, k.Scale)
}

// PlanCacheBackend stores solved plans by PlanKey. The server's
// single-flight de-duplication, hit/miss accounting, and size-cap
// flushing all live in front of the backend, so an implementation is
// just a concurrency-safe store: Get/Put/Clear/Len. The in-memory
// backend below is the default; a cross-replica deployment swaps in a
// shared store via Server.SetPlanCacheBackend (keys serialize via
// PlanKey.Canonical, values via the grid.Plan JSON encoding). Plans
// are treated as immutable once Put — backends may return the same
// pointer to every caller.
type PlanCacheBackend interface {
	Get(key PlanKey) (*grid.Plan, bool)
	Put(key PlanKey, p *grid.Plan)
	Clear()
	Len() int
}

// memoryPlanCache is the default replica-local backend: one map under
// one mutex.
type memoryPlanCache struct {
	mu sync.Mutex
	m  map[PlanKey]*grid.Plan
}

// NewMemoryPlanCache returns the default in-memory PlanCacheBackend.
func NewMemoryPlanCache() PlanCacheBackend {
	return &memoryPlanCache{m: map[PlanKey]*grid.Plan{}}
}

func (b *memoryPlanCache) Get(key PlanKey) (*grid.Plan, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.m[key]
	return p, ok
}

func (b *memoryPlanCache) Put(key PlanKey, p *grid.Plan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = p
}

func (b *memoryPlanCache) Clear() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = map[PlanKey]*grid.Plan{}
}

func (b *memoryPlanCache) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// cacheEntry is one in-flight solve. done closes when the plan (or
// error) is ready; followers wait on it instead of solving —
// single-flight de-duplication.
type cacheEntry struct {
	done chan struct{}
	plan *grid.Plan
	err  error
}

// maxPlanCacheEntries bounds the backend between epochs: a client
// sweeping distinct parameters would otherwise grow it without limit
// until the next signal or forecast install. At the cap the whole
// store is flushed (epoch-style) rather than tracking per-entry
// recency — the hot pattern the cache exists for is many identical
// requests, and a rare flush only costs those one re-solve each.
const maxPlanCacheEntries = 1024

// planCache memoizes plan solves: a replica-local single-flight layer
// (the inflight map) in front of a PlanCacheBackend holding completed
// plans. Entries never expire by time: a key embeds the epoch and
// frontier hash, so every input change makes a fresh key, clear()
// drops the dead generation wholesale, and the size cap flushes
// parameter sweeps.
type planCache struct {
	mu       sync.Mutex
	inflight map[PlanKey]*cacheEntry
	backend  PlanCacheBackend
	// gen counts clear() calls; a flight that started before a clear
	// must not Put its (now stale-generation) plan into the backend.
	gen       int64
	hits      int64
	misses    int64
	coalesced int64 // hits that waited on an in-flight solve
	evictions int64 // entries dropped by cap flushes and clear()
	obs       *serverObs
}

// newPlanCache returns an empty cache over the in-memory backend,
// mirroring its counters into o (nil skips the mirroring — direct
// unit tests construct bare caches).
func newPlanCache(o *serverObs) *planCache {
	return &planCache{
		inflight: map[PlanKey]*cacheEntry{},
		backend:  NewMemoryPlanCache(),
		obs:      o,
	}
}

// setBackend swaps the storage backend (Server.SetPlanCacheBackend).
func (c *planCache) setBackend(b PlanCacheBackend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = b
	c.syncObsLocked()
}

// entriesLocked counts resident entries: completed plans in the
// backend plus in-flight solves. Callers hold c.mu.
func (c *planCache) entriesLocked() int {
	return c.backend.Len() + len(c.inflight)
}

// syncObsLocked pushes the counter state into the metric registry.
// Callers hold c.mu.
func (c *planCache) syncObsLocked() {
	if c.obs == nil {
		return
	}
	c.obs.cacheEntries.Set(float64(c.entriesLocked()))
}

// do returns the cached plan for key, or runs solve exactly once per
// key no matter how many callers arrive concurrently. Errors are not
// cached: the failed flight leaves no entry, so a later identical
// request retries. When ctx carries an active trace span, the lookup
// records a "cache.lookup" child span with hit/coalesced attrs; a
// miss's solve runs under that span's context, so the planner's own
// span nests below the lookup. Untraced callers pay a nil check.
func (c *planCache) do(ctx context.Context, key PlanKey, solve func(context.Context) (*grid.Plan, error)) (*grid.Plan, error) {
	ctx, sp := obs.Child(ctx, spanCacheLookup)
	c.mu.Lock()
	if e, ok := c.inflight[key]; ok {
		// A coalesced follower: it parks on done instead of solving —
		// the single-flight half of the cache's value, counted
		// separately from plain hits.
		c.hits++
		c.coalesced++
		if c.obs != nil {
			c.obs.cacheHits.Inc()
			c.obs.cacheCoalesced.Inc()
		}
		c.mu.Unlock()
		sp.SetAttr("hit", "true")
		sp.SetAttr("coalesced", "true")
		<-e.done
		sp.Fail(e.err)
		sp.End()
		return e.plan, e.err
	}
	if p, ok := c.backend.Get(key); ok {
		c.hits++
		if c.obs != nil {
			c.obs.cacheHits.Inc()
		}
		c.mu.Unlock()
		sp.SetAttr("hit", "true")
		sp.SetAttr("coalesced", "false")
		sp.End()
		return p, nil
	}
	if n := c.backend.Len(); n >= maxPlanCacheEntries {
		c.evictions += int64(n)
		if c.obs != nil {
			c.obs.cacheEvictions.Add(float64(n))
		}
		c.backend.Clear()
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.inflight[key] = e
	gen := c.gen
	c.misses++
	if c.obs != nil {
		c.obs.cacheMisses.Inc()
	}
	c.syncObsLocked()
	c.mu.Unlock()
	sp.SetAttr("hit", "false")
	sp.SetAttr("coalesced", "false")
	defer sp.End()

	e.plan, e.err = solve(ctx)
	sp.Fail(e.err)
	c.mu.Lock()
	// Only this flight owns the key (clear() may have dropped the
	// whole inflight map already — leave a fresh flight's entry alone).
	if c.inflight[key] == e {
		delete(c.inflight, key)
	}
	// A plan solved against inputs that were cleared mid-flight stays
	// out of the backend: its followers still get it, but the store
	// only ever holds plans of a live generation.
	if e.err == nil && gen == c.gen {
		c.backend.Put(key, e.plan)
	}
	c.syncObsLocked()
	c.mu.Unlock()
	close(e.done)
	return e.plan, e.err
}

// clear drops every entry (the plan inputs changed). The drop counts
// as eviction: an epoch bump invalidates the whole resident
// generation. In-flight solves are orphaned — they resolve their
// followers but never reach the backend.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := c.entriesLocked()
	c.evictions += int64(dropped)
	if c.obs != nil {
		c.obs.cacheEvictions.Add(float64(dropped))
	}
	c.backend.Clear()
	c.inflight = map[PlanKey]*cacheEntry{}
	c.gen++
	c.syncObsLocked()
}

// CacheStats reports the plan cache's cumulative counters and current
// size. Coalesced counts the subset of hits that waited on an
// in-flight solve; evictions counts entries dropped by epoch
// invalidation and size-cap flushes; entries counts backend-resident
// plans plus in-flight solves.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// CacheStats returns the plan cache counters (test and ops hook; also
// reported by GET /controller).
func (s *Server) CacheStats() CacheStats {
	c := s.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Coalesced: c.coalesced, Evictions: c.evictions,
		Entries: c.entriesLocked(),
	}
}
