// Package model provides the large-model zoo used in the Perseus paper's
// evaluation (§6.1, Appendix B): GPT-3, Bloom, BERT, T5, and Wide-ResNet,
// in the same size variants.
//
// The paper profiles per-layer forward latency on real GPUs; this package
// substitutes an analytic per-layer forward-FLOPs model (2 FLOPs per
// multiply-accumulate). Relative layer costs are what drive pipeline stage
// imbalance and therefore intrinsic energy bloat, so the models are
// calibrated — via a per-family language-model-head efficiency factor — to
// reproduce the minimum imbalance ratios of paper Table 1 within a few
// percent. The head factor reflects that a single large vocabulary GEMM
// sustains much higher utilization than the memory-bound attention kernels
// inside a transformer layer, so its measured latency is smaller than its
// FLOP count suggests.
package model

import (
	"fmt"
	"sort"
)

// Layer is one partitionable unit of a model: a transformer layer, a
// Wide-ResNet bottleneck (three convolutions wrapped with a skip
// connection, paper Appendix B.1), the stem, or the language-model /
// classification head.
type Layer struct {
	// Name identifies the layer, e.g. "decoder17" or "lm-head".
	Name string

	// FwdCost is the relative forward computation cost for a single
	// sample (one sequence or one image). It is an effective-FLOPs
	// figure: raw FLOPs scaled by a kernel-efficiency factor, so that
	// cost ratios match measured latency ratios.
	FwdCost float64

	// Params is the number of parameters in the layer.
	Params int64
}

// Model is a partitionable large model.
type Model struct {
	// Name is the variant name as used in the paper, e.g. "gpt3-1.3b".
	Name string

	// Family is one of "gpt3", "bloom", "bert", "t5", "wide-resnet".
	Family string

	// Layers lists partitionable units in execution order. The head is
	// always the final layer, matching the paper's partition tables
	// (Appendix B Table 7), where e.g. GPT-3 1.3B has 25 units: 24
	// transformer layers plus the language-model head.
	Layers []Layer

	// SeqLen is the training sequence length (transformers only).
	SeqLen int

	// Hidden is the model dimension (transformers only).
	Hidden int

	// Vocab is the vocabulary size (transformers only).
	Vocab int

	// BwdFactor is the ratio of backward to forward computation cost.
	// Backward computes roughly twice the forward FLOPs; with activation
	// recomputation enabled (paper §5) the backward pass also replays
	// the forward, giving a factor near 3 for transformers.
	BwdFactor float64
}

// LayerCosts returns the per-layer forward costs in order.
func (m *Model) LayerCosts() []float64 {
	cs := make([]float64, len(m.Layers))
	for i, l := range m.Layers {
		cs[i] = l.FwdCost
	}
	return cs
}

// Params returns the total parameter count.
func (m *Model) Params() int64 {
	var p int64
	for _, l := range m.Layers {
		p += l.Params
	}
	return p
}

// StageCosts sums per-layer forward costs into per-stage costs for a
// partition expressed as boundary indices [0, b1, ..., len(Layers)]
// (the format of paper Table 7).
func (m *Model) StageCosts(partition []int) ([]float64, error) {
	if len(partition) < 2 || partition[0] != 0 || partition[len(partition)-1] != len(m.Layers) {
		return nil, fmt.Errorf("model: partition %v does not cover %d layers", partition, len(m.Layers))
	}
	costs := make([]float64, len(partition)-1)
	for s := 0; s < len(partition)-1; s++ {
		if partition[s+1] <= partition[s] {
			return nil, fmt.Errorf("model: empty stage %d in partition %v", s, partition)
		}
		for i := partition[s]; i < partition[s+1]; i++ {
			costs[s] += m.Layers[i].FwdCost
		}
	}
	return costs, nil
}

// Per-family efficiency of the language-model head GEMM relative to
// transformer-layer kernels, calibrated against paper Table 1 (see the
// package comment). Bloom's 251k-token vocabulary head runs a very large,
// highly efficient GEMM, hence the lower factor.
const (
	gptHeadEff   = 0.75
	bertHeadEff  = 0.75
	t5HeadEff    = 0.75
	bloomHeadEff = 0.42
)

// transformerLayerCost returns the forward FLOPs per token of one
// transformer layer: QKV/output projections (8·h·a), attention score and
// value products (4·s·a), and the feed-forward network (4·h·dff).
func transformerLayerCost(h, a, dff, s int) float64 {
	return float64(8*h*a) + float64(4*s*a) + float64(4*h*dff)
}

// crossAttentionCost returns the additional forward FLOPs per token of a
// decoder layer's cross-attention over an encoder output of length s.
func crossAttentionCost(h, a, s int) float64 {
	return float64(8*h*a) + float64(4*s*a)
}

// headCost returns the effective forward FLOPs per token of the
// language-model head projecting hidden size h onto vocabulary v.
func headCost(h, v int, eff float64) float64 {
	return float64(2*h*v) * eff
}

func decoderOnly(name, family string, h, layers, vocab, seq, dff int, headEff float64) *Model {
	a := h
	layerParams := int64(4*h*a + 2*h*dff) // QKVO + FFN weights
	m := &Model{
		Name:      name,
		Family:    family,
		SeqLen:    seq,
		Hidden:    h,
		Vocab:     vocab,
		BwdFactor: 2.0,
	}
	perTok := transformerLayerCost(h, a, dff, seq)
	for i := 0; i < layers; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:    fmt.Sprintf("layer%d", i),
			FwdCost: perTok * float64(seq),
			Params:  layerParams,
		})
	}
	m.Layers = append(m.Layers, Layer{
		Name:    "lm-head",
		FwdCost: headCost(h, vocab, headEff) * float64(seq),
		Params:  int64(h * vocab),
	})
	return m
}

// GPT3 returns a GPT-3 variant: "0.3b", "1.3b", "2.7b", "6.7b", "13b" or
// "175b" (configurations from Brown et al., as used in paper Tables 7-10;
// Table 1 labels 1.3b/2.7b/6.7b as 1B/3B/7B; 0.3b appears in Appendix D's
// fit-quality figure).
func GPT3(size string) (*Model, error) {
	type cfg struct{ h, l int }
	cfgs := map[string]cfg{
		"0.3b": {1024, 24},
		"1.3b": {2048, 24},
		"2.7b": {2560, 32},
		"6.7b": {4096, 32},
		"13b":  {5120, 40},
		"175b": {12288, 96},
	}
	c, ok := cfgs[size]
	if !ok {
		return nil, fmt.Errorf("model: unknown GPT-3 size %q", size)
	}
	return decoderOnly("gpt3-"+size, "gpt3", c.h, c.l, 50257, 2048, 4*c.h, gptHeadEff), nil
}

// Bloom returns a Bloom variant: "3b", "7b" or "176b" (BigScience
// Workshop configurations; 250,880-token vocabulary).
func Bloom(size string) (*Model, error) {
	type cfg struct{ h, l int }
	cfgs := map[string]cfg{
		"3b":   {2560, 30},
		"7b":   {4096, 30},
		"176b": {14336, 70},
	}
	c, ok := cfgs[size]
	if !ok {
		return nil, fmt.Errorf("model: unknown Bloom size %q", size)
	}
	return decoderOnly("bloom-"+size, "bloom", c.h, c.l, 250880, 2048, 4*c.h, bloomHeadEff), nil
}

// BERT returns a BERT variant: "0.1b" (base), "0.3b" (large) or "1.3b"
// (the paper's bert-huge-uncased with hidden dimension 2048, Appendix B.4).
func BERT(size string) (*Model, error) {
	type cfg struct{ h, l int }
	cfgs := map[string]cfg{
		"0.1b": {768, 12},
		"0.3b": {1024, 24},
		"1.3b": {2048, 24},
	}
	c, ok := cfgs[size]
	if !ok {
		return nil, fmt.Errorf("model: unknown BERT size %q", size)
	}
	return decoderOnly("bert-"+size, "bert", c.h, c.l, 30522, 512, 4*c.h, bertHeadEff), nil
}

// T5 returns a T5 variant: "0.2b" (t5-base), "0.7b" (t5-large) or "3b"
// (t5-3b, also labelled 2.9B in paper Table 1). T5 stacks encoder layers
// followed by computationally heavier decoder layers with cross-attention
// (paper Appendix B.1).
func T5(size string) (*Model, error) {
	type cfg struct{ h, a, dff, l int }
	cfgs := map[string]cfg{
		"0.2b": {768, 768, 3072, 12},
		"0.7b": {1024, 1024, 4096, 24},
		"3b":   {1024, 4096, 16384, 24},
	}
	c, ok := cfgs[size]
	if !ok {
		return nil, fmt.Errorf("model: unknown T5 size %q", size)
	}
	const seq, vocab = 512, 32128
	m := &Model{
		Name:      "t5-" + size,
		Family:    "t5",
		SeqLen:    seq,
		Hidden:    c.h,
		Vocab:     vocab,
		BwdFactor: 2.0,
	}
	encTok := transformerLayerCost(c.h, c.a, c.dff, seq)
	decTok := encTok + crossAttentionCost(c.h, c.a, seq)
	encParams := int64(4*c.h*c.a + 2*c.h*c.dff)
	decParams := encParams + int64(4*c.h*c.a)
	for i := 0; i < c.l; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:    fmt.Sprintf("encoder%d", i),
			FwdCost: encTok * float64(seq),
			Params:  encParams,
		})
	}
	for i := 0; i < c.l; i++ {
		m.Layers = append(m.Layers, Layer{
			Name:    fmt.Sprintf("decoder%d", i),
			FwdCost: decTok * float64(seq),
			Params:  decParams,
		})
	}
	m.Layers = append(m.Layers, Layer{
		Name:    "lm-head",
		FwdCost: headCost(c.h, vocab, t5HeadEff) * float64(seq),
		Params:  int64(c.h * vocab),
	})
	return m, nil
}

// WideResNet returns a Wide-ResNet variant with width factor 8 as used in
// the paper (Appendix B.4): "50" (0.8B parameters) or "101" (1.5B). Each
// partitionable unit is a Bottleneck layer; partitioning in the middle of
// a skip connection is not supported by training frameworks (Appendix B.1),
// so bottlenecks are atomic.
func WideResNet(depth string) (*Model, error) {
	var blocks []int
	switch depth {
	case "50":
		blocks = []int{3, 4, 6, 3}
	case "101":
		blocks = []int{3, 4, 23, 3}
	default:
		return nil, fmt.Errorf("model: unknown Wide-ResNet depth %q", depth)
	}
	const widthFactor = 8
	m := &Model{
		Name:      "wide-resnet" + depth,
		Family:    "wide-resnet",
		BwdFactor: 2.0,
	}
	// Stem: 7x7 conv, 3->64 channels, output 112x112, then maxpool.
	m.Layers = append(m.Layers, Layer{
		Name:    "stem",
		FwdCost: 2 * 112 * 112 * 3 * 64 * 49 / 0.5,
		Params:  3 * 64 * 49,
	})
	planes := []int{64, 128, 256, 512}
	spatial := []int{56, 28, 14, 7} // output spatial size per group
	// Kernel efficiency per group: raw conv FLOPs are nearly uniform
	// across groups (channels double while spatial halves), but measured
	// latency is not — early groups with large spatial extents and small
	// channel GEMMs sustain lower utilization. Calibrated against paper
	// Table 1's Wide-ResNet imbalance ratios.
	groupEff := []float64{0.55, 0.70, 0.85, 1.0}
	inplanes := 64
	for g, nb := range blocks {
		p := planes[g]
		width := p * widthFactor
		out := p * 4
		s := spatial[g]
		inSpatial := s
		if g > 0 {
			inSpatial = 2 * s // stride-2 downsample at the first block
		} else {
			inSpatial = 56
		}
		for b := 0; b < nb; b++ {
			conv1Spatial := s
			var ds float64
			var dsParams int64
			if b == 0 {
				conv1Spatial = inSpatial
				ds = 2 * float64(s*s) * float64(inplanes*out)
				dsParams = int64(inplanes * out)
			}
			cost := (2*float64(conv1Spatial*conv1Spatial)*float64(inplanes*width) + // 1x1 in->width
				2*float64(s*s)*float64(width*width)*9 + // 3x3 width->width
				2*float64(s*s)*float64(width*out) + // 1x1 width->out
				ds) / groupEff[g]
			params := int64(inplanes*width) + int64(width*width)*9 + int64(width*out) + dsParams
			m.Layers = append(m.Layers, Layer{
				Name:    fmt.Sprintf("g%db%d", g+1, b),
				FwdCost: cost,
				Params:  params,
			})
			inplanes = out
		}
	}
	// Classification head: global average pool + fully connected layer.
	m.Layers = append(m.Layers, Layer{
		Name:    "fc",
		FwdCost: 2 * 2048 * 1000,
		Params:  2048 * 1000,
	})
	return m, nil
}

// ByName returns the model with the given variant name (e.g. "gpt3-1.3b").
func ByName(name string) (*Model, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("model: unknown model %q", name)
}

// Catalog returns every model variant evaluated in the paper, in the order
// of Table 1.
func Catalog() []*Model {
	mustGPT := func(s string) *Model { m, _ := GPT3(s); return m }
	mustBloom := func(s string) *Model { m, _ := Bloom(s); return m }
	mustBERT := func(s string) *Model { m, _ := BERT(s); return m }
	mustT5 := func(s string) *Model { m, _ := T5(s); return m }
	mustWRN := func(s string) *Model { m, _ := WideResNet(s); return m }
	return []*Model{
		mustGPT("1.3b"), mustGPT("2.7b"), mustGPT("6.7b"), mustGPT("13b"), mustGPT("175b"),
		mustBloom("3b"), mustBloom("7b"), mustBloom("176b"),
		mustBERT("0.1b"), mustBERT("0.3b"), mustBERT("1.3b"),
		mustT5("0.2b"), mustT5("0.7b"), mustT5("3b"),
		mustWRN("50"), mustWRN("101"),
	}
}

// Names returns the catalog's variant names, sorted.
func Names() []string {
	var ns []string
	for _, m := range Catalog() {
		ns = append(ns, m.Name)
	}
	sort.Strings(ns)
	return ns
}
