package experiments

import (
	"fmt"
	"time"

	"perseus/internal/dag"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// BuildForAblation assembles the DAG and profile for a workload without
// characterizing, so ablations (and the solver benchmarks) can run
// multiple optimizer variants on the same inputs. It returns the DAG, the
// profile, and the auto-selected unit time.
func BuildForAblation(cfg WorkloadConfig, g *gpu.Model, sc Scale) (*dag.Graph, *profile.Profile, float64, error) {
	m, err := model.ByName(cfg.Model)
	if err != nil {
		return nil, nil, 0, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), cfg.Stages)
	if err != nil {
		return nil, nil, 0, err
	}
	prof, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: cfg.Stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: cfg.MicrobatchSize, TensorParallel: 1,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	s, err := sched.OneFOneB(cfg.Stages, sc.microbatches(cfg.Microbatches))
	if err != nil {
		return nil, nil, 0, err
	}
	graph, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		return nil, nil, 0, err
	}
	unit := autoUnit(s, prof, sc.targetSteps())
	return graph, prof, unit, nil
}

// AblationGreedy compares the paper's min-cut stepper against the greedy
// single-computation stepper (DESIGN.md §5): greedy cannot shorten
// parallel critical paths, so it covers less of the frontier.
func AblationGreedy(cfg WorkloadConfig, g *gpu.Model, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: min-cut vs greedy stepper (%s on %s)", cfg.Display, g.Name),
		Header: []string{"Stepper", "Frontier points", "Reached Tmin", "Fastest time (s)"},
	}
	for _, variant := range []struct {
		name    string
		stepper frontier.Stepper
	}{
		{"min-cut (Perseus)", frontier.MinCutStepper{}},
		{"greedy", frontier.GreedyStepper{}},
	} {
		graph, prof, unit, err := BuildForAblation(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		f, err := frontier.Characterize(graph, prof, frontier.Options{Unit: unit, Stepper: variant.stepper})
		if err != nil {
			return nil, err
		}
		pts := f.Points()
		reached := "no"
		if pts[0].Time <= f.Tmin()+1e-12 {
			reached = "yes"
		}
		t.Rows = append(t.Rows, []string{
			variant.name, fmt.Sprint(len(pts)), reached, fmt.Sprintf("%.3f", pts[0].Time),
		})
	}
	return t, nil
}

// AblationFit compares the exponential relaxation against piecewise-linear
// interpolation of the measured Pareto points.
func AblationFit(cfg WorkloadConfig, g *gpu.Model, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: exponential vs piecewise-linear relaxation (%s on %s)", cfg.Display, g.Name),
		Header: []string{"Relaxation", "Frontier points", "Energy at Tmin (J)", "Energy at T* (J)"},
	}
	for _, variant := range []struct {
		name      string
		piecewise bool
	}{
		{"exponential (Perseus)", false},
		{"piecewise-linear", true},
	} {
		graph, prof, unit, err := BuildForAblation(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		f, err := frontier.Characterize(graph, prof, frontier.Options{Unit: unit, PiecewiseFit: variant.piecewise})
		if err != nil {
			return nil, err
		}
		pts := f.Points()
		t.Rows = append(t.Rows, []string{
			variant.name, fmt.Sprint(len(pts)),
			fmt.Sprintf("%.0f", pts[0].Energy),
			fmt.Sprintf("%.0f", pts[len(pts)-1].Energy),
		})
	}
	return t, nil
}

// AblationTau sweeps the unit time τ, trading frontier granularity for
// optimizer runtime (paper footnote 7).
func AblationTau(cfg WorkloadConfig, g *gpu.Model, taus []float64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: unit time τ (%s on %s)", cfg.Display, g.Name),
		Header: []string{"τ (ms)", "Frontier points", "Runtime", "Energy at Tmin (J)"},
	}
	for _, tau := range taus {
		graph, prof, _, err := BuildForAblation(cfg, g, Scale{MaxMicrobatches: 12})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		f, err := frontier.Characterize(graph, prof, frontier.Options{Unit: tau})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		pts := f.Points()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", tau*1e3), fmt.Sprint(len(pts)),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", pts[0].Energy),
		})
	}
	return t, nil
}
