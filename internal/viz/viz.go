// Package viz renders pipeline execution timelines (paper Figures 1 and
// 10): per-stage rows of forward/backward computations drawn to scale,
// shaded by power draw, as ASCII art and CSV.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"perseus/internal/cluster"
	"perseus/internal/sched"
)

// shades order from low to high power draw.
var shades = []rune{'.', ':', '-', '=', '+', '*', '#', '@'}

// Timeline renders one pipeline iteration as an ASCII chart: one row per
// physical stage, computations drawn to scale over width columns, letters
// marking op kind boundaries and shade characters indicating power.
func Timeline(w io.Writer, spans []cluster.OpSpan, width int) error {
	if len(spans) == 0 {
		return fmt.Errorf("viz: no spans")
	}
	if width < 20 {
		width = 20
	}
	var end float64
	var maxPower float64
	stages := 0
	for _, sp := range spans {
		if e := sp.Start + sp.Dur; e > end {
			end = e
		}
		if sp.Power > maxPower {
			maxPower = sp.Power
		}
		if sp.Op.Stage+1 > stages {
			stages = sp.Op.Stage + 1
		}
	}
	perStage := make([][]cluster.OpSpan, stages)
	for _, sp := range spans {
		perStage[sp.Op.Stage] = append(perStage[sp.Op.Stage], sp)
	}
	for st := range perStage {
		sort.Slice(perStage[st], func(i, j int) bool {
			return perStage[st][i].Start < perStage[st][j].Start
		})
	}
	col := func(t float64) int {
		c := int(t / end * float64(width))
		if c >= width {
			c = width - 1
		}
		return c
	}
	for st := 0; st < stages; st++ {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		for _, sp := range perStage[st] {
			a, b := col(sp.Start), col(sp.Start+sp.Dur)
			shade := shades[min(len(shades)-1, int(sp.Power/maxPower*float64(len(shades))))]
			for c := a; c <= b && c < width; c++ {
				row[c] = shade
			}
			// Mark the op kind at its first column.
			row[a] = rune(sp.Op.Kind.String()[0])
		}
		if _, err := fmt.Fprintf(w, "S%-2d|%s|\n", st+1, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "    0.00%sTime (seconds)%s%.2f\n",
		strings.Repeat(" ", max(1, width/2-12)), strings.Repeat(" ", max(1, width/2-12)), end)
	return err
}

// CSV writes the spans as comma-separated rows: stage, kind, microbatch,
// start, duration, frequency, power.
func CSV(w io.Writer, spans []cluster.OpSpan) error {
	if _, err := fmt.Fprintln(w, "stage,kind,microbatch,start_s,dur_s,freq_mhz,power_w"); err != nil {
		return err
	}
	for _, sp := range spans {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%.6f,%.6f,%d,%.1f\n",
			sp.Op.Stage, sp.Op.Kind, sp.Op.Microbatch, sp.Start, sp.Dur, sp.Freq, sp.Power); err != nil {
			return err
		}
	}
	return nil
}

// Series writes (x, y) pairs as CSV with a header, for frontier plots
// (paper Figures 9, 12, 13).
func Series(w io.Writer, name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("viz: %d xs vs %d ys", len(xs), len(ys))
	}
	if _, err := fmt.Fprintf(w, "# %s\ntime_s,energy_j\n", name); err != nil {
		return err
	}
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%.6f,%.3f\n", xs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// KindCounts summarizes a span list for quick sanity checks.
func KindCounts(spans []cluster.OpSpan) map[sched.Kind]int {
	m := map[sched.Kind]int{}
	for _, sp := range spans {
		m[sp.Op.Kind]++
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
