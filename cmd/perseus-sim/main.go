// Command perseus-sim runs the full Perseus lifecycle end to end (paper
// Figure 4) inside one process: a training cluster simulation registers
// with an in-process server, profiles its computations in vivo, receives
// the characterized energy schedule, and reacts to an injected straggler.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http/httptest"

	"perseus/internal/client"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

func main() {
	modelName := flag.String("model", "gpt3-1.3b", "model variant")
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	stages := flag.Int("stages", 4, "pipeline stages")
	micro := flag.Int("microbatches", 8, "microbatches per iteration")
	mbSize := flag.Int("microbatch-size", 4, "microbatch size")
	degree := flag.Float64("straggler", 1.3, "straggler slowdown degree to inject")
	flag.Parse()

	m, err := model.ByName(*modelName)
	check(err)
	g, err := gpu.ByName(*gpuName)
	check(err)
	part, err := partition.MinImbalance(m.LayerCosts(), *stages)
	check(err)
	w := profile.Workload{
		Model: m, GPU: g, Stages: *stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: *mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	check(err)
	s, err := sched.OneFOneB(*stages, *micro)
	check(err)

	srv := server.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	sc := client.NewServerClient(ts.URL)

	tr, err := client.NewTrainer(s, g, refs, m.BwdFactor)
	check(err)
	defer tr.Close()

	jobID, err := sc.RegisterJob(client.JobRequest{
		Schedule: "1f1b", Stages: *stages, Microbatches: *micro, GPU: g.Name, Unit: 2e-3,
	})
	check(err)
	fmt.Printf("registered %s with the Perseus server\n", jobID)

	fmt.Println("profiling in vivo (frequency sweep, highest to lowest)...")
	ms, err := tr.ProfileSweep(5)
	check(err)
	fmt.Printf("collected %d measurements; uploading\n", len(ms))
	check(sc.UploadProfile(jobID, tr.PBlocking(), ms))
	check(srv.WaitCharacterized(jobID))

	schedResp, err := sc.FetchSchedule(jobID)
	check(err)
	fmt.Printf("frontier ready: Tmin=%.3fs T*=%.3fs\n", schedResp.Tmin, schedResp.TStar)

	tr.LockFrequency(g.FMax)
	reset(tr)
	baseTime, err := tr.RunIteration()
	check(err)
	baseEnergy := energy(tr)

	check(tr.Deploy(schedResp.Freqs))
	reset(tr)
	optTime, err := tr.RunIteration()
	check(err)
	optEnergy := energy(tr)
	fmt.Printf("no straggler:   %.3fs (%+.2f%%), computation energy %.0fJ (%.1f%% saving)\n",
		optTime, 100*(optTime/baseTime-1), optEnergy, 100*(1-optEnergy/baseEnergy))

	check(sc.SetStraggler(jobID, "pipeline-3", 0, *degree))
	slowResp, err := sc.FetchSchedule(jobID)
	check(err)
	check(tr.Deploy(slowResp.Freqs))
	reset(tr)
	slowTime, err := tr.RunIteration()
	check(err)
	slowEnergy := energy(tr)
	fmt.Printf("straggler %.2fx: %.3fs (within T'=%.3fs), computation energy %.0fJ (%.1f%% saving)\n",
		*degree, slowTime, baseTime**degree, slowEnergy, 100*(1-slowEnergy/baseEnergy))

	check(sc.SetStraggler(jobID, "pipeline-3", 0, 1))
	backResp, err := sc.FetchSchedule(jobID)
	check(err)
	fmt.Printf("straggler recovered: schedule back to %.3fs\n", backResp.Time)
}

func energy(tr *client.Trainer) float64 {
	var e float64
	for _, d := range tr.Devices {
		e += d.EnergyCounter()
	}
	return e
}

func reset(tr *client.Trainer) {
	for _, d := range tr.Devices {
		d.ResetEnergyCounter()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
