package viz

import (
	"bytes"
	"strings"
	"testing"

	"perseus/internal/cluster"
	"perseus/internal/sched"
)

func spans() []cluster.OpSpan {
	return []cluster.OpSpan{
		{Op: sched.Op{Stage: 0, Virtual: 0, Microbatch: 0, Kind: sched.Forward}, Start: 0, Dur: 1, Freq: 1410, Power: 300},
		{Op: sched.Op{Stage: 0, Virtual: 0, Microbatch: 0, Kind: sched.Backward}, Start: 2, Dur: 2, Freq: 1200, Power: 250},
		{Op: sched.Op{Stage: 1, Virtual: 1, Microbatch: 0, Kind: sched.Forward}, Start: 1, Dur: 1, Freq: 900, Power: 150},
		{Op: sched.Op{Stage: 1, Virtual: 1, Microbatch: 0, Kind: sched.Backward}, Start: 2, Dur: 2, Freq: 1410, Power: 290},
	}
}

func TestTimeline(t *testing.T) {
	var buf bytes.Buffer
	if err := Timeline(&buf, spans(), 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // 2 stages + time axis
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "S1 |") || !strings.HasPrefix(lines[1], "S2 |") {
		t.Errorf("missing stage rows:\n%s", out)
	}
	if !strings.Contains(lines[0], "F") || !strings.Contains(lines[0], "B") {
		t.Errorf("missing kind markers:\n%s", out)
	}
	if !strings.Contains(lines[2], "Time (seconds)") {
		t.Errorf("missing time axis:\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Timeline(&buf, nil, 60); err == nil {
		t.Error("empty spans should error")
	}
}

func TestTimelineNarrowWidthClamped(t *testing.T) {
	var buf bytes.Buffer
	if err := Timeline(&buf, spans(), 1); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) == 0 {
		t.Error("no output at clamped width")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, spans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d CSV lines, want header + 4", len(lines))
	}
	if lines[0] != "stage,kind,microbatch,start_s,dur_s,freq_mhz,power_w" {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,F,0,") {
		t.Errorf("bad first row %q", lines[1])
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	if err := Series(&buf, "perseus", []float64{1, 2}, []float64{30, 20}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# perseus") {
		t.Errorf("missing series name")
	}
	if err := Series(&buf, "bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestKindCounts(t *testing.T) {
	m := KindCounts(spans())
	if m[sched.Forward] != 2 || m[sched.Backward] != 2 {
		t.Errorf("counts %v", m)
	}
}
