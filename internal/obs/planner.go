package obs

import (
	"time"

	"perseus/internal/plan"
)

// InstrumentPlanner wraps a plan.Planner so every Plan call is timed
// into latency — labeled (planner, objective) — and failures counted
// into errors (labeled planner). All four planning layers (grid,
// region, forecast-MPC, fleet) report through this one decorator, so
// per-objective planning latency is comparable across them without any
// layer knowing about metrics. as overrides the reported planner label
// ("" uses p.Name()) — the server labels the rolling-horizon re-plan
// solve "forecast-mpc" even though the inner solver is the grid
// planner. Either metric may be nil to skip that side.
func InstrumentPlanner(p plan.Planner, as string, latency *HistogramVec, errors *CounterVec) plan.Planner {
	name := as
	if name == "" {
		name = p.Name()
	}
	return &instrumentedPlanner{inner: p, name: name, latency: latency, errors: errors}
}

type instrumentedPlanner struct {
	inner   plan.Planner
	name    string
	latency *HistogramVec
	errors  *CounterVec
}

// Name implements plan.Planner, reporting the instrumented label.
func (p *instrumentedPlanner) Name() string { return p.name }

// Plan implements plan.Planner.
func (p *instrumentedPlanner) Plan(req plan.Request) (plan.Result, error) {
	obj, objErr := plan.ParseObjective(string(req.Objective))
	if objErr != nil {
		obj = req.Objective // surfaced as-is; the inner planner rejects it
	}
	start := time.Now()
	res, err := p.inner.Plan(req)
	if p.latency != nil {
		p.latency.With(p.name, string(obj)).Observe(time.Since(start).Seconds())
	}
	if err != nil && p.errors != nil {
		p.errors.With(p.name).Inc()
	}
	return res, err
}
