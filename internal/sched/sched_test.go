package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneFOneBShape(t *testing.T) {
	s, err := OneFOneB(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 4*6*2 {
		t.Fatalf("op count %d, want 48", len(s.Ops))
	}
	// Stage 0 with N=4, M=6 (paper Figure 1a, row S1):
	// F1 F2 F3 F4 B1 F5 B2 F6 B3 B4 B5 B6.
	want := []string{"s0:F1", "s0:F2", "s0:F3", "s0:F4", "s0:B1", "s0:F5", "s0:B2", "s0:F6", "s0:B3", "s0:B4", "s0:B5", "s0:B6"}
	got := make([]string, 0, len(s.PerStage[0]))
	for _, id := range s.PerStage[0] {
		got = append(got, s.Ops[id].String())
	}
	if len(got) != len(want) {
		t.Fatalf("stage 0 has %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage 0 op %d = %s, want %s (stream %v)", i, got[i], want[i], got)
		}
	}
	// Last stage alternates strictly: F1 B1 F2 B2 ...
	for i, id := range s.PerStage[3] {
		op := s.Ops[id]
		wantKind := Forward
		if i%2 == 1 {
			wantKind = Backward
		}
		if op.Kind != wantKind || op.Microbatch != i/2 {
			t.Fatalf("stage 3 op %d = %v", i, op)
		}
	}
}

func TestOneFOneBFewMicrobatches(t *testing.T) {
	// M < N: warmup truncates to M.
	s, err := OneFOneB(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Ops) != 16 {
		t.Fatalf("op count %d, want 16", len(s.Ops))
	}
	checkComplete(t, s)
}

func TestGPipeShape(t *testing.T) {
	s, err := GPipe(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for st := 0; st < 3; st++ {
		ids := s.PerStage[st]
		if len(ids) != 8 {
			t.Fatalf("stage %d has %d ops", st, len(ids))
		}
		for i := 0; i < 4; i++ {
			if op := s.Ops[ids[i]]; op.Kind != Forward || op.Microbatch != i {
				t.Fatalf("stage %d op %d = %v", st, i, op)
			}
			if op := s.Ops[ids[4+i]]; op.Kind != Backward || op.Microbatch != 3-i {
				t.Fatalf("stage %d op %d = %v", st, 4+i, op)
			}
		}
	}
	checkComplete(t, s)
}

func TestInterleavedShape(t *testing.T) {
	s, err := Interleaved1F1B(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.VirtualStages() != 4 {
		t.Fatalf("virtual stages = %d, want 4", s.VirtualStages())
	}
	if len(s.Ops) != 2*4*2*2 {
		t.Fatalf("op count %d, want 32", len(s.Ops))
	}
	checkComplete(t, s)
	// Every virtual stage must appear on the right physical stage.
	for _, op := range s.Ops {
		if op.Virtual%s.Stages != op.Stage {
			t.Fatalf("op %+v: virtual stage on wrong GPU", op)
		}
	}
}

func TestInterleavedRequiresDivisibility(t *testing.T) {
	if _, err := Interleaved1F1B(4, 6, 2); err == nil {
		t.Fatal("want error: 6 microbatches not divisible by 4 stages")
	}
}

func TestInterleavedOneChunkIs1F1B(t *testing.T) {
	s, err := Interleaved1F1B(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "1f1b" {
		t.Fatalf("chunks=1 should degrade to 1f1b, got %s", s.Name)
	}
}

func TestEarlyRecompute(t *testing.T) {
	s, err := EarlyRecompute1F1B(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Each backward gains one recompute: 2*3 forwards + 2*3 backwards +
	// 2*3 recomputes.
	if len(s.Ops) != 18 {
		t.Fatalf("op count %d, want 18", len(s.Ops))
	}
	// On each stage, every Backward is immediately preceded by a
	// Recompute of the same microbatch.
	for st, ids := range s.PerStage {
		for i, id := range ids {
			op := s.Ops[id]
			if op.Kind != Backward {
				continue
			}
			if i == 0 {
				t.Fatalf("stage %d starts with backward", st)
			}
			prev := s.Ops[ids[i-1]]
			if prev.Kind != Recompute || prev.Microbatch != op.Microbatch {
				t.Fatalf("stage %d: %v not preceded by its recompute (got %v)", st, op, prev)
			}
		}
	}
	checkComplete(t, s)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"1f1b", "gpipe", "interleaved-1f1b", "early-recompute-1f1b"} {
		s, err := ByName(name, 2, 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s: nil schedule", name)
		}
	}
	if _, err := ByName("zero-bubble", 2, 4, 1); err == nil {
		t.Fatal("unknown schedule should error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := OneFOneB(0, 4); err == nil {
		t.Error("zero stages should error")
	}
	if _, err := GPipe(2, 0); err == nil {
		t.Error("zero microbatches should error")
	}
	if _, err := Interleaved1F1B(2, 4, 0); err == nil {
		t.Error("zero chunks should error")
	}
}

// checkComplete verifies the schedule contains exactly one forward and one
// backward per (virtual stage, microbatch) and that every cross dependency
// references existing ops.
func checkComplete(t *testing.T, s *Schedule) {
	t.Helper()
	type key struct {
		v, m int
		k    Kind
	}
	seen := map[key]int{}
	for _, op := range s.Ops {
		seen[key{op.Virtual, op.Microbatch, op.Kind}]++
	}
	for v := 0; v < s.VirtualStages(); v++ {
		for m := 0; m < s.Microbatches; m++ {
			if c := seen[key{v, m, Forward}]; c != 1 {
				t.Fatalf("virtual stage %d mb %d: %d forwards", v, m, c)
			}
			if c := seen[key{v, m, Backward}]; c != 1 {
				t.Fatalf("virtual stage %d mb %d: %d backwards", v, m, c)
			}
		}
	}
	// Program order covers every op exactly once.
	covered := make([]bool, len(s.Ops))
	for _, ids := range s.PerStage {
		for _, id := range ids {
			if covered[id] {
				t.Fatalf("op %d appears twice in program order", id)
			}
			covered[id] = true
		}
	}
	for id, c := range covered {
		if !c {
			t.Fatalf("op %d not in any stage's program order", id)
		}
	}
	for _, e := range s.Deps {
		if e[0] < 0 || e[0] >= len(s.Ops) || e[1] < 0 || e[1] >= len(s.Ops) {
			t.Fatalf("dependency %v out of range", e)
		}
	}
}

func TestKindString(t *testing.T) {
	if Forward.String() != "F" || Backward.String() != "B" || Recompute.String() != "R" || Constant.String() != "C" {
		t.Error("kind mnemonics wrong")
	}
	if Kind(99).String() != "?" {
		t.Error("unknown kind should be ?")
	}
}

// TestPropertyInterleavedValid checks random interleaved configurations
// produce complete, well-formed schedules.
func TestPropertyInterleavedValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := n * (1 + rng.Intn(4))
		chunks := 2 + rng.Intn(2)
		s, err := Interleaved1F1B(n, m, chunks)
		if err != nil {
			return false
		}
		type key struct {
			v, mb int
			k     Kind
		}
		seen := map[key]bool{}
		for _, op := range s.Ops {
			if op.Virtual%n != op.Stage {
				return false
			}
			k := key{op.Virtual, op.Microbatch, op.Kind}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return len(s.Ops) == 2*n*chunks*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
