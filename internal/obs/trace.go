package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one finished operation of a distributed trace: a node of a
// span tree identified by (TraceID, SpanID) with ParentID linking it to
// its parent ("" for the root). The control stack records spans around
// HTTP requests, store snapshots, plan-cache lookups, planner solves,
// controller tick stages, and long-poll parks; GET /debug/traces
// serves assembled trees.
type Span struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	StartUnixS float64           `json:"start_unix_s"`
	DurS       float64           `json:"dur_s"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// DefaultTracerCapacity bounds a Tracer constructed with capacity <= 0.
const DefaultTracerCapacity = 2048

// Tracer produces spans and retains the most recent finished ones in a
// bounded concurrency-safe ring — the storage GET /debug/traces
// assembles trees from. Safe for concurrent use. The zero capacity
// constructor retains DefaultTracerCapacity spans.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	head  int // next write position
	n     int // filled entries
	drops uint64
	clock func() time.Time

	// onPush, when set, observes every finished span as it commits —
	// the server's hook for mirroring span counts into the metric
	// registry. Called outside the ring lock.
	onPush func(Span)
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (DefaultTracerCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Span, capacity), clock: time.Now}
}

// SetClock replaces the tracer's wall clock (fake-clock tests). The
// clock stamps span start times and measures durations, so a frozen
// clock yields zero-duration spans with deterministic timestamps.
func (t *Tracer) SetClock(fn func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fn != nil {
		t.clock = fn
	}
}

func (t *Tracer) now() time.Time {
	t.mu.Lock()
	fn := t.clock
	t.mu.Unlock()
	return fn()
}

// Drops reports how many finished spans the ring has overwritten.
func (t *Tracer) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// OnPush registers a hook observing every finished span as it commits
// (replacing any prior). The hook runs outside the ring lock, on the
// goroutine that ended the span.
func (t *Tracer) OnPush(fn func(Span)) {
	t.mu.Lock()
	t.onPush = fn
	t.mu.Unlock()
}

// push appends one finished span, overwriting the oldest at capacity.
func (t *Tracer) push(s Span) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.drops++
	}
	t.buf[t.head] = s
	t.head = (t.head + 1) % len(t.buf)
	if t.n < len(t.buf) {
		t.n++
	}
	fn := t.onPush
	t.mu.Unlock()
	if fn != nil {
		fn(s)
	}
}

// newID returns n random bytes as lowercase hex. math/rand/v2's global
// generator is concurrency-safe and cheap; span IDs need uniqueness,
// not unpredictability.
func newID(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := rand.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return hex.EncodeToString(b)
}

// ActiveSpan is an in-flight span. A nil *ActiveSpan is a valid no-op:
// every method tolerates it, so instrumentation sites pay only a nil
// check when no trace is active (e.g. direct library calls that never
// passed through the HTTP middleware or the controller loop).
type ActiveSpan struct {
	t     *Tracer
	mu    sync.Mutex
	span  Span
	start time.Time
	ended bool
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying the span as the active one.
func ContextWithSpan(ctx context.Context, s *ActiveSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span (nil when none).
func SpanFromContext(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}

// TraceIDFromContext returns the active trace's ID ("" when none) —
// the cross-link event emitters label events with.
func TraceIDFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.span.TraceID
	}
	return ""
}

// StartSpan starts a span: a child of the context's active span when
// one exists, the root of a fresh trace otherwise. The returned context
// carries the new span as the active one.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	var traceID, parentID string
	if p := SpanFromContext(ctx); p != nil {
		traceID, parentID = p.span.TraceID, p.span.SpanID
	} else {
		traceID = newID(16)
	}
	return t.start(ctx, name, traceID, parentID)
}

// StartRemote starts a root-of-this-process span continuing a remote
// trace: traceID and parentID come from an incoming traceparent header.
// Empty traceID starts a fresh trace (the no-header case).
func (t *Tracer) StartRemote(ctx context.Context, name, traceID, parentID string) (context.Context, *ActiveSpan) {
	if traceID == "" {
		traceID = newID(16)
		parentID = ""
	}
	return t.start(ctx, name, traceID, parentID)
}

func (t *Tracer) start(ctx context.Context, name, traceID, parentID string) (context.Context, *ActiveSpan) {
	now := t.now()
	s := &ActiveSpan{
		t: t,
		span: Span{
			TraceID:    traceID,
			SpanID:     newID(8),
			ParentID:   parentID,
			Name:       name,
			StartUnixS: float64(now.UnixNano()) / 1e9,
		},
		start: now,
	}
	return ContextWithSpan(ctx, s), s
}

// Child starts a child of the context's active span through that span's
// own tracer. With no active span it returns (ctx, nil): the whole
// subtree below stays no-op, which keeps untraced hot paths (direct
// API calls, benchmarks) at a nil-check of overhead.
func Child(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	p := SpanFromContext(ctx)
	if p == nil {
		return ctx, nil
	}
	return p.t.StartSpan(ctx, name)
}

// TraceID returns the span's trace ID ("" on nil).
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.span.TraceID
}

// SpanID returns the span's ID ("" on nil).
func (s *ActiveSpan) SpanID() string {
	if s == nil {
		return ""
	}
	return s.span.SpanID
}

// SetAttr records one attribute (no-op on nil or after End).
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.span.Attrs == nil {
			s.span.Attrs = map[string]string{}
		}
		s.span.Attrs[key] = value
	}
	s.mu.Unlock()
}

// Fail marks the span errored (nil error and nil span are no-ops).
func (s *ActiveSpan) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.span.Error = err.Error()
	}
	s.mu.Unlock()
}

// End finishes the span and commits it to the tracer's ring.
// Idempotent; no-op on nil.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	now := s.t.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	if d := now.Sub(s.start); d > 0 {
		s.span.DurS = d.Seconds()
	}
	span := s.span
	s.mu.Unlock()
	s.t.push(span)
}

// Trace is one assembled span tree: every retained span sharing a
// trace ID, in start order, with the root identified when retained.
type Trace struct {
	TraceID string `json:"trace_id"`

	// Root names the root span ("" when the root was evicted or has
	// not finished yet).
	Root string `json:"root,omitempty"`

	// StartUnixS is the earliest retained span start; DurS is the root
	// span's duration (the longest retained span's when no root).
	StartUnixS float64 `json:"start_unix_s"`
	DurS       float64 `json:"dur_s"`

	// Err reports whether any span of the trace recorded an error.
	Err bool `json:"err,omitempty"`

	Spans []Span `json:"spans"`
}

// Traces assembles the retained spans into traces, newest first
// (ordered by each trace's most recently finished span). limit <= 0
// returns every retained trace; minDur keeps only traces whose
// duration is at least it; op keeps only traces containing a span with
// that exact name ("" keeps all).
func (t *Tracer) Traces(limit int, minDur time.Duration, op string) []Trace {
	t.mu.Lock()
	spans := make([]Span, 0, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		spans = append(spans, t.buf[(start+i)%len(t.buf)])
	}
	t.mu.Unlock()

	// Group by trace, keeping the finish order so traces can be ranked
	// newest-first by their last finished span.
	byID := map[string]*Trace{}
	last := map[string]int{}
	var order []string
	for i, sp := range spans {
		tr, ok := byID[sp.TraceID]
		if !ok {
			tr = &Trace{TraceID: sp.TraceID}
			byID[sp.TraceID] = tr
			order = append(order, sp.TraceID)
		}
		tr.Spans = append(tr.Spans, sp)
		last[sp.TraceID] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return last[order[a]] > last[order[b]] })

	out := make([]Trace, 0, len(order))
	for _, id := range order {
		tr := byID[id]
		sort.SliceStable(tr.Spans, func(a, b int) bool {
			return tr.Spans[a].StartUnixS < tr.Spans[b].StartUnixS
		})
		match := op == ""
		var maxDur float64
		for _, sp := range tr.Spans {
			if sp.Name == op {
				match = true
			}
			if sp.Error != "" {
				tr.Err = true
			}
			if sp.ParentID == "" {
				tr.Root = sp.Name
				tr.DurS = sp.DurS
			}
			if sp.DurS > maxDur {
				maxDur = sp.DurS
			}
		}
		tr.StartUnixS = tr.Spans[0].StartUnixS
		if tr.Root == "" {
			tr.DurS = maxDur
		}
		if !match || tr.DurS < minDur.Seconds() {
			continue
		}
		out = append(out, *tr)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// WorstSpan finds, among retained spans with the given name that
// started at or after since, the one that best explains an SLO breach:
// with errOnly the most recently finished errored span, otherwise the
// longest. It returns that span's trace ID ("" when none qualifies).
func (t *Tracer) WorstSpan(name string, since time.Time, errOnly bool) string {
	sinceS := float64(since.UnixNano()) / 1e9
	t.mu.Lock()
	defer t.mu.Unlock()
	var traceID string
	var bestDur float64 = -1
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		sp := t.buf[(start+i)%len(t.buf)]
		if sp.Name != name || sp.StartUnixS < sinceS {
			continue
		}
		if errOnly {
			if sp.Error != "" {
				traceID = sp.TraceID // ring order: keeps the newest
			}
			continue
		}
		if sp.DurS > bestDur {
			bestDur = sp.DurS
			traceID = sp.TraceID
		}
	}
	return traceID
}

// FormatTraceparent renders a W3C traceparent header (version 00,
// sampled flag set) for the given trace and span IDs.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// Traceparent renders the context's active span as a traceparent
// header ("" when no trace is active) — what an outbound call attaches
// so the callee's spans join this trace.
func Traceparent(ctx context.Context) string {
	s := SpanFromContext(ctx)
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.span.TraceID, s.span.SpanID)
}

// NewTraceparent mints a traceparent for a fresh trace — what a
// process without a tracer (e.g. a trainer-side client) attaches to
// correlate its calls under one trace ID.
func NewTraceparent() string {
	return FormatTraceparent(newID(16), newID(8))
}

// ParseTraceparent extracts the trace and parent-span IDs from a W3C
// traceparent header (version-field lenient, length-strict). ok is
// false for absent or malformed headers — the caller then starts a
// fresh trace.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", "", false
	}
	if !isHex(parts[1]) || !isHex(parts[2]) || parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// String renders a compact one-line view (debug helper).
func (s Span) String() string {
	return fmt.Sprintf("%s %s (%.3fms)", s.Name, s.SpanID, s.DurS*1e3)
}
