package region

import (
	"fmt"
	"math"

	"perseus/internal/grid"
	pln "perseus/internal/plan"
)

// Options parameterizes the multi-region planner.
type Options struct {
	// Objective selects what to minimize; "" means carbon.
	Objective grid.Objective

	// Migration is the fixed pause-cost of moving a job between
	// regions; the zero value makes moves free.
	Migration MigrationCost

	// Rounds is the number of Gauss-Seidel improvement rounds after the
	// first sequential pass: each round re-plans every job against the
	// others' committed placements. 0 means 2.
	Rounds int
}

func (o Options) rounds() int {
	if o.Rounds <= 0 {
		return 2
	}
	return o.Rounds
}

// Assignment is one cell of a job's placement sequence.
type Assignment struct {
	// Cell indexes Plan.Cells.
	Cell int `json:"cell"`

	// StartS and EndS bound the cell.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	// Region indexes Plan.Regions; -1 means the job is paused.
	Region int `json:"region"`

	// Migrate marks the cell at whose start the job arrives from a
	// different region (checkpoint transfer downtime and energy are
	// charged here).
	Migrate bool `json:"migrate,omitempty"`
}

// JobPlan is one job's spatio-temporal schedule.
type JobPlan struct {
	// JobID names the job.
	JobID string `json:"job_id"`

	// Assignments is the per-cell placement in time order.
	Assignments []Assignment `json:"assignments"`

	// Temporal is the job's inner temporal plan over the composite
	// signal its placement induces (grid.Optimize output; slices index
	// the job's lookup table).
	Temporal *grid.Plan `json:"temporal"`

	// Migrations counts region changes; the downtime and transfer
	// energy totals follow, with the energy priced at each arrival
	// cell's rates.
	Migrations         int     `json:"migrations"`
	MigrationDowntimeS float64 `json:"migration_downtime_s"`
	MigrationEnergyJ   float64 `json:"migration_energy_j"`
	MigrationCarbonG   float64 `json:"migration_carbon_g"`
	MigrationCostUSD   float64 `json:"migration_cost_usd"`

	// The embedded plan.Account totals the job including migration.
	pln.Account

	// Feasible reports whether the job completes its target by its
	// deadline under the placement.
	Feasible bool `json:"feasible"`
}

// Plan is a joint multi-region schedule for a set of jobs.
type Plan struct {
	// Objective is what the plan minimizes.
	Objective grid.Objective `json:"objective"`

	// HorizonS is the planning horizon in seconds.
	HorizonS float64 `json:"horizon_s"`

	// Regions lists the region names; Assignment.Region indexes it.
	Regions []string `json:"regions"`

	// Cells is the common planning grid (union of all regions' signal
	// boundaries).
	Cells []Cell `json:"cells"`

	// Jobs holds the per-job schedules in input order.
	Jobs []JobPlan `json:"jobs"`

	// The embedded plan.Account totals the plan including migration.
	pln.Account

	// Feasible reports whether every job meets its target and deadline.
	Feasible bool `json:"feasible"`
}

// Total reads the plan total matching its objective.
func (p *Plan) Total() float64 { return p.Account.Total(p.Objective) }

// Summarize implements plan.Result.
func (p *Plan) Summarize() pln.Summary {
	s := pln.Summary{Account: p.Account, Plans: 1, Feasible: p.Feasible}
	for i := range p.Jobs {
		if p.Jobs[i].Temporal != nil {
			s.Iterations += p.Jobs[i].Temporal.Iterations
		}
	}
	return s
}

// Planner adapts the joint spatio-temporal planner to the shared
// plan.Planner contract: a fixed fleet of regions and jobs, with the
// request supplying the objective and per-job target/deadline defaults
// (jobs carrying their own keep them).
type Planner struct {
	Regions   []Region
	Jobs      []Job
	Migration MigrationCost
	Rounds    int
}

// Name implements plan.Planner.
func (p *Planner) Name() string { return "region" }

// Plan implements plan.Planner.
func (p *Planner) Plan(req pln.Request) (pln.Result, error) {
	jobs := append([]Job(nil), p.Jobs...)
	for i := range jobs {
		if jobs[i].Target <= 0 {
			jobs[i].Target = req.Target
		}
		if jobs[i].DeadlineS <= 0 {
			jobs[i].DeadlineS = req.DeadlineS
		}
		if jobs[i].PowerScale <= 0 && req.PowerScale > 0 {
			jobs[i].PowerScale = req.PowerScale
		}
	}
	return Optimize(p.Regions, jobs, Options{
		Objective: req.Objective,
		Migration: p.Migration,
		Rounds:    p.Rounds,
	})
}

// eval is one evaluated placement candidate for one job.
type eval struct {
	placement []int
	plan      *grid.Plan
	mig       migSummary
	cellOf    []int
	cost      float64 // objective incl. migration; only valid when feasible
	coverage  float64
	feasible  bool
}

// better reports whether a strictly improves on b: feasibility first,
// then objective cost, then (both infeasible) coverage.
func (a *eval) better(b *eval) bool {
	if b == nil || b.placement == nil {
		return true
	}
	if a.feasible != b.feasible {
		return a.feasible
	}
	if a.feasible {
		return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
	}
	if math.Abs(a.coverage-b.coverage) > 1e-9*(1+b.coverage) {
		return a.coverage > b.coverage
	}
	return a.cost < b.cost-1e-9*(1+math.Abs(b.cost))
}

// usage tracks the capacity and power other jobs consume per
// (region, cell), so sequential planning respects shared limits.
type usage struct {
	gpus  [][]int     // [region][cell]
	peakW [][]float64 // [region][cell] peak planned power
}

func newUsage(nRegions, nCells int) *usage {
	u := &usage{gpus: make([][]int, nRegions), peakW: make([][]float64, nRegions)}
	for r := range u.gpus {
		u.gpus[r] = make([]int, nCells)
		u.peakW[r] = make([]float64, nCells)
	}
	return u
}

// apply commits (sign +1) or releases (sign -1) a job's evaluated
// placement.
func (u *usage) apply(j *Job, ev *eval, sign int) {
	if ev == nil || ev.placement == nil {
		return
	}
	for k, r := range ev.placement {
		if r >= 0 {
			u.gpus[r][k] += sign * j.gpus()
		}
	}
	if ev.plan == nil {
		return
	}
	// Peak slice power per cell, via the composite-interval → cell map.
	for i, ip := range ev.plan.Intervals {
		k := ev.cellOf[i]
		r := ev.placement[k]
		if r < 0 {
			continue
		}
		var peak float64
		for _, sl := range ip.Slices {
			if p := j.scale() * j.Table.AvgPower(sl.Point); p > peak {
				peak = p
			}
		}
		u.peakW[r][k] += float64(sign) * peak
	}
}

// planner bundles the immutable planning context.
type planner struct {
	regions []Region
	cells   []Cell
	horizon float64
	opts    Options
	usage   *usage
}

// allowed reports whether the job fits region r's GPU capacity in cell
// k given the other jobs' committed placements.
func (p *planner) allowed(j *Job, r, k int) bool {
	if p.regions[r].GPUs > 0 && p.usage.gpus[r][k]+j.gpus() > p.regions[r].GPUs {
		return false
	}
	return true
}

// capOverride returns the cap left for one more job in (r, k): the
// region's effective cap minus the power other jobs' plans already
// draw there (0 = uncapped).
func (p *planner) capOverride(r, k int) float64 {
	_, _, capW := p.regions[r].rates(p.cells[k])
	if capW <= 0 {
		return 0
	}
	rem := capW - p.usage.peakW[r][k]
	if rem < forceIdleCapW {
		rem = forceIdleCapW
	}
	return rem
}

// origin resolves the job's Origin region name to an index (Paused
// when unset; validate guarantees a set name resolves).
func (p *planner) origin(j *Job) int {
	if j.Origin == "" {
		return Paused
	}
	for i := range p.regions {
		if p.regions[i].Name == j.Origin {
			return i
		}
	}
	return Paused
}

// evaluate compiles a placement into a composite signal and solves the
// inner temporal subproblem exactly with grid.Optimize.
func (p *planner) evaluate(j *Job, placement []int) (*eval, error) {
	sig, mig, cellOf := compile(p.regions, p.cells, placement, p.origin(j), p.opts.Migration, p.capOverride)
	plan, err := grid.Optimize(j.Table, sig, grid.Options{
		Target:     j.Target,
		DeadlineS:  j.DeadlineS,
		Objective:  p.opts.Objective,
		PowerScale: j.scale(),
	})
	if err != nil {
		return nil, err
	}
	ev := &eval{
		placement: placement,
		plan:      plan,
		mig:       mig,
		cellOf:    cellOf,
		coverage:  plan.Iterations,
		feasible:  plan.Feasible,
		cost:      objectiveTotal(plan) + mig.objective(plan.Objective),
	}
	return ev, nil
}

// kEnd returns the first cell index at or beyond the job's deadline;
// cells from there on are forced to Paused (they cannot contribute).
func (p *planner) kEnd(j *Job) int {
	d := j.DeadlineS
	if d <= 0 {
		d = p.horizon
	}
	for k, c := range p.cells {
		if c.StartS >= d {
			return k
		}
	}
	return len(p.cells)
}

// starts builds the candidate starting placements: each single region
// (capacity permitting, Paused where blocked) and the per-cell
// rate-envelope placement (the allowed region with the lowest
// objective rate — optimal when migration is free).
func (p *planner) starts(j *Job) [][]int {
	kEnd := p.kEnd(j)
	K := len(p.cells)
	var out [][]int
	for r := range p.regions {
		pl := make([]int, K)
		for k := range pl {
			pl[k] = Paused
			if k < kEnd && p.allowed(j, r, k) {
				pl[k] = r
			}
		}
		out = append(out, pl)
	}
	env := make([]int, K)
	for k := range env {
		env[k] = Paused
		if k >= kEnd {
			continue
		}
		best, bestRate := Paused, math.Inf(1)
		for r := range p.regions {
			if !p.allowed(j, r, k) {
				continue
			}
			carbon, price, _ := p.regions[r].rates(p.cells[k])
			rate := carbon
			if p.opts.Objective == grid.ObjectiveCost {
				rate = price
			}
			if rate < bestRate {
				best, bestRate = r, rate
			}
		}
		env[k] = best
	}
	out = append(out, env)
	return out
}

// planJob finds one job's placement by steepest descent over
// contiguous segment moves, starting from the best candidate start:
// every move re-assigns one cell range [i, j] to one region (or to
// Paused) and is evaluated exactly via the inner temporal planner, so
// the descent only accepts moves whose full spatio-temporal cost —
// migration pause-costs included — strictly improves.
func (p *planner) planJob(j *Job) (*eval, error) {
	var cur *eval
	for _, pl := range p.starts(j) {
		ev, err := p.evaluate(j, pl)
		if err != nil {
			return nil, err
		}
		if ev.better(cur) {
			cur = ev
		}
	}
	kEnd := p.kEnd(j)
	// Each accepted move strictly improves, so this bound only cuts off
	// pathological slow convergence; observed descents take well under
	// a tenth of it.
	const maxMoves = 64
	for move := 0; move < maxMoves; move++ {
		var best *eval
		for i := 0; i < kEnd; i++ {
			for k := i; k < kEnd; k++ {
				for t := Paused; t < len(p.regions); t++ {
					ok, changed := true, false
					for c := i; c <= k; c++ {
						if t >= 0 && !p.allowed(j, t, c) {
							ok = false
							break
						}
						if cur.placement[c] != t {
							changed = true
						}
					}
					if !ok || !changed {
						continue
					}
					cand := append([]int(nil), cur.placement...)
					for c := i; c <= k; c++ {
						cand[c] = t
					}
					ev, err := p.evaluate(j, cand)
					if err != nil {
						return nil, err
					}
					if ev.better(cur) && ev.better(best) {
						best = ev
					}
				}
			}
		}
		if best == nil {
			break
		}
		cur = best
	}
	return cur, nil
}

// Optimize plans the joint spatio-temporal schedule: for every job a
// per-cell (region | pause) placement with migration pause-costs, and
// within it the exact optimal temporal frequency plan, minimizing the
// total objective subject to each job's target and deadline, each
// region's GPU capacity, and each region's facility and interval power
// caps (shared across the jobs placed there).
//
// Jobs are planned sequentially in input order against the committed
// usage of earlier jobs, then refined with opts.Rounds Gauss-Seidel
// rounds (each job re-planned against all others). Per job the search
// is steepest descent over contiguous segment moves from the best of
// the single-region and rate-envelope starts; every candidate is
// evaluated exactly by grid.Optimize on the placement's composite
// signal, so temporal shifting, pausing, and migration trade off in
// one objective. brute_test.go cross-checks the result against
// exhaustive placement enumeration on small instances.
func Optimize(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	return plan(regions, jobs, opts, nil, true)
}

// Fixed plans the single-datacenter baseline: every job runs in the
// named region for the whole horizon (pausing only via its temporal
// plan), with the same capacity and cap accounting as Optimize, so the
// two are directly comparable at equal iterations completed.
func Fixed(regions []Region, jobs []Job, name string, opts Options) (*Plan, error) {
	idx := -1
	for i := range regions {
		if regions[i].Name == name {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("region: unknown region %q", name)
	}
	return plan(regions, jobs, opts, func(p *planner, j *Job) ([][]int, error) {
		return [][]int{p.starts(j)[idx]}, nil
	}, false)
}

// BestFixed plans Fixed for every region and returns the best plan
// (feasible first, then lowest objective) — the strongest baseline
// that never moves a job after choosing one datacenter for the fleet.
func BestFixed(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	var best *Plan
	for i := range regions {
		p, err := Fixed(regions, jobs, regions[i].Name, opts)
		if err != nil {
			return nil, err
		}
		if best == nil || (p.Feasible && !best.Feasible) ||
			(p.Feasible == best.Feasible && p.Total() < best.Total()) {
			best = p
		}
	}
	return best, nil
}

// NoMigration plans the placement-without-moves baseline: each job
// independently picks its single best region (sequentially, capacity
// respected) and stays there — spatial choice without the temporal
// freedom to chase another region's clean hours.
func NoMigration(regions []Region, jobs []Job, opts Options) (*Plan, error) {
	return plan(regions, jobs, opts, func(p *planner, j *Job) ([][]int, error) {
		return p.starts(j)[:len(p.regions)], nil
	}, false)
}

// plan is the shared orchestration: sequential planning with committed
// usage, optional candidate restriction (baselines), and optional
// descent + improvement rounds (the full planner).
func plan(regions []Region, jobs []Job, opts Options, candidates func(*planner, *Job) ([][]int, error), descend bool) (*Plan, error) {
	if err := validate(regions, jobs, opts); err != nil {
		return nil, err
	}
	obj, err := grid.ParseObjective(string(opts.Objective))
	if err != nil {
		return nil, err
	}
	opts.Objective = obj

	horizon := 0.0
	maxSig := 0.0
	for i := range regions {
		if h := regions[i].Signal.Horizon(); h > maxSig {
			maxSig = h
		}
	}
	for i := range jobs {
		d := jobs[i].DeadlineS
		if d <= 0 {
			d = maxSig
		}
		if d > horizon {
			horizon = d
		}
	}
	cells := commonGrid(regions, horizon)
	p := &planner{regions: regions, cells: cells, horizon: horizon, opts: opts}

	solve := func(i int) (*eval, error) {
		j := &jobs[i]
		if descend {
			return p.planJob(j)
		}
		cands, err := candidates(p, j)
		if err != nil {
			return nil, err
		}
		var best *eval
		for _, pl := range cands {
			ev, err := p.evaluate(j, pl)
			if err != nil {
				return nil, err
			}
			if ev.better(best) {
				best = ev
			}
		}
		return best, nil
	}

	// run plans the jobs sequentially in the given order (with fresh
	// usage), then refines with Gauss-Seidel rounds.
	run := func(order []int) ([]*eval, error) {
		p.usage = newUsage(len(regions), len(cells))
		evals := make([]*eval, len(jobs))
		for _, i := range order {
			ev, err := solve(i)
			if err != nil {
				return nil, err
			}
			evals[i] = ev
			p.usage.apply(&jobs[i], ev, +1)
		}
		if !descend {
			return evals, nil
		}
		gaussSeidel := func() (bool, error) {
			improved := false
			for _, i := range order {
				p.usage.apply(&jobs[i], evals[i], -1)
				// Re-evaluate the incumbent against the others' current
				// placements: its stored cost may be stale.
				cur, err := p.evaluate(&jobs[i], evals[i].placement)
				if err != nil {
					return false, err
				}
				ev, err := solve(i)
				if err != nil {
					return false, err
				}
				if ev.better(cur) {
					cur = ev
					improved = true
				}
				evals[i] = cur
				p.usage.apply(&jobs[i], evals[i], +1)
			}
			return improved, nil
		}
		for round := 0; round < opts.rounds(); round++ {
			gs, err := gaussSeidel()
			if err != nil {
				return nil, err
			}
			sw, err := p.swapRefine(jobs, evals)
			if err != nil {
				return nil, err
			}
			if !gs && !sw {
				break
			}
		}
		return evals, nil
	}

	// Sequential planning is order-dependent under capacity contention:
	// the full planner tries every job order on small fleets (rotations
	// on larger ones) and keeps the best joint outcome; baselines keep
	// input order, matching their "first come, first placed" story.
	var best []*eval
	for _, order := range orders(len(jobs), descend) {
		evals, err := run(order)
		if err != nil {
			return nil, err
		}
		if best == nil || jointBetter(evals, best) {
			best = evals
		}
	}
	return assemble(p, jobs, best), nil
}

// placementFits reports whether a placement fits every cell's GPU
// capacity against the usage currently committed.
func (p *planner) placementFits(j *Job, placement []int) bool {
	for k, r := range placement {
		if r >= 0 && !p.allowed(j, r, k) {
			return false
		}
	}
	return true
}

// swapRefine runs pairwise segment-swap descent: for every job pair
// and every contiguous cell range, exchange the two jobs' placements
// over the range and keep the swap when the joint outcome improves.
// This is the move capacity contention demands — two jobs wanting the
// same region's clean hours must trade them, which no single-job
// re-plan can express — and it returns whether anything improved.
func (p *planner) swapRefine(jobs []Job, evals []*eval) (bool, error) {
	if len(jobs) < 2 {
		return false, nil
	}
	K := len(p.cells)
	improved := false
	for a := 0; a < len(jobs); a++ {
		for b := a + 1; b < len(jobs); b++ {
			for i := 0; i < K; i++ {
				for k := i; k < K; k++ {
					pa := append([]int(nil), evals[a].placement...)
					pb := append([]int(nil), evals[b].placement...)
					changed := false
					for c := i; c <= k; c++ {
						if pa[c] != pb[c] {
							changed = true
						}
						pa[c], pb[c] = pb[c], pa[c]
					}
					if !changed {
						continue
					}
					p.usage.apply(&jobs[a], evals[a], -1)
					p.usage.apply(&jobs[b], evals[b], -1)
					var evA, evB *eval
					var err error
					if p.placementFits(&jobs[b], pb) {
						evB, err = p.evaluate(&jobs[b], pb)
						if err == nil {
							p.usage.apply(&jobs[b], evB, +1)
							if p.placementFits(&jobs[a], pa) {
								evA, err = p.evaluate(&jobs[a], pa)
							}
							p.usage.apply(&jobs[b], evB, -1)
						}
					}
					p.usage.apply(&jobs[a], evals[a], +1)
					p.usage.apply(&jobs[b], evals[b], +1)
					if err != nil {
						return false, err
					}
					if evA == nil || evB == nil {
						continue
					}
					if jointBetter([]*eval{evA, evB}, []*eval{evals[a], evals[b]}) {
						p.usage.apply(&jobs[a], evals[a], -1)
						p.usage.apply(&jobs[b], evals[b], -1)
						evals[a], evals[b] = evA, evB
						p.usage.apply(&jobs[a], evals[a], +1)
						p.usage.apply(&jobs[b], evals[b], +1)
						improved = true
					}
				}
			}
		}
	}
	return improved, nil
}

// orders lists the job orders to try: input order for baselines, all
// permutations up to 3 jobs (rotations beyond, so the order count
// stays linear in fleet size) for the planner.
func orders(n int, descend bool) [][]int {
	id := make([]int, n)
	for i := range id {
		id[i] = i
	}
	if !descend || n == 1 {
		return [][]int{id}
	}
	if n <= 3 {
		var out [][]int
		var permute func(rest, acc []int)
		permute = func(rest, acc []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), acc...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
				permute(next, append(acc, rest[i]))
			}
		}
		permute(id, nil)
		return out
	}
	out := make([][]int, n)
	for s := 0; s < n; s++ {
		rot := make([]int, n)
		for i := range rot {
			rot[i] = id[(i+s)%n]
		}
		out[s] = rot
	}
	return out
}

// jointBetter compares two joint outcomes: fewer infeasible jobs wins,
// then the lower total objective (migration included).
func jointBetter(a, b []*eval) bool {
	infeas := func(evs []*eval) (n int, cost float64) {
		for _, ev := range evs {
			if !ev.feasible {
				n++
			}
			cost += ev.cost
		}
		return n, cost
	}
	an, ac := infeas(a)
	bn, bc := infeas(b)
	if an != bn {
		return an < bn
	}
	return ac < bc-1e-9*(1+math.Abs(bc))
}

// assemble turns the per-job evaluations into the public Plan.
func assemble(p *planner, jobs []Job, evals []*eval) *Plan {
	out := &Plan{
		Objective: p.opts.Objective,
		HorizonS:  p.horizon,
		Cells:     p.cells,
		Feasible:  true,
	}
	for i := range p.regions {
		out.Regions = append(out.Regions, p.regions[i].Name)
	}
	for i := range jobs {
		ev := evals[i]
		arrivals := map[int]bool{}
		for _, m := range migrations(p.origin(&jobs[i]), ev.placement) {
			arrivals[m] = true
		}
		jp := JobPlan{
			JobID:              jobs[i].ID,
			Temporal:           ev.plan,
			Migrations:         ev.mig.count,
			MigrationDowntimeS: ev.mig.downtimeS,
			MigrationEnergyJ:   ev.mig.energyJ,
			MigrationCarbonG:   ev.mig.carbonG,
			MigrationCostUSD:   ev.mig.costUSD,
			Account: pln.Account{
				EnergyJ: ev.plan.EnergyJ + ev.mig.energyJ,
				CarbonG: ev.plan.CarbonG + ev.mig.carbonG,
				CostUSD: ev.plan.CostUSD + ev.mig.costUSD,
			},
			Feasible: ev.feasible,
		}
		for k, c := range p.cells {
			jp.Assignments = append(jp.Assignments, Assignment{
				Cell: k, StartS: c.StartS, EndS: c.EndS,
				Region: ev.placement[k], Migrate: arrivals[k],
			})
		}
		if !ev.feasible {
			out.Feasible = false
		}
		out.EnergyJ += jp.EnergyJ
		out.CarbonG += jp.CarbonG
		out.CostUSD += jp.CostUSD
		out.Jobs = append(out.Jobs, jp)
	}
	return out
}
