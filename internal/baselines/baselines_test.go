package baselines

import (
	"math"
	"testing"

	"perseus/internal/cluster"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

func testSpec(t *testing.T, name string, g *gpu.Model, stages, micro int) cluster.Spec {
	t.Helper()
	m, err := model.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	p, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.OneFOneB(stages, micro)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.Spec{Schedule: s, Profile: p}
}

func TestEnvPipeSavesEnergy(t *testing.T) {
	spec := testSpec(t, "gpt3-1.3b", gpu.A100PCIe, 4, 8)
	plan, err := EnvPipe(spec)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cluster.Simulate(spec, cluster.PlanAllMax(spec.Schedule, gpu.A100PCIe), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Simulate(spec, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= base.Energy {
		t.Errorf("EnvPipe energy %v >= all-max %v", res.Energy, base.Energy)
	}
	// EnvPipe is a point solution that aims to preserve iteration time;
	// allow its documented slowdown (up to ~10%, paper Table 3).
	if res.IterTime > base.IterTime*1.12 {
		t.Errorf("EnvPipe slowdown %.1f%% beyond its documented regime",
			100*(res.IterTime/base.IterTime-1))
	}
}

func TestEnvPipeLastStagePinned(t *testing.T) {
	spec := testSpec(t, "bloom-3b", gpu.A40, 4, 6)
	plan, err := EnvPipe(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range spec.Schedule.Ops {
		if op.Stage == spec.Schedule.Stages-1 && plan[i] != gpu.A40.FMax {
			t.Errorf("last-stage op %v at %d MHz, want FMax", op, plan[i])
		}
	}
	// At least one non-last-stage op must actually be slowed.
	slowed := false
	for i, op := range spec.Schedule.Ops {
		if op.Stage != spec.Schedule.Stages-1 && plan[i] < gpu.A40.FMax {
			slowed = true
			break
		}
	}
	if !slowed {
		t.Error("EnvPipe slowed nothing outside the last stage")
	}
}

func TestZeusGlobalSweep(t *testing.T) {
	spec := testSpec(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6)
	pts, err := ZeusGlobal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("only %d sweep points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time <= pts[i-1].Time {
			t.Errorf("sweep times not increasing at %d", i)
		}
	}
	// The fastest point is all-max and must match the plain simulation.
	base, err := cluster.Simulate(spec, cluster.PlanAllMax(spec.Schedule, gpu.A100PCIe), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[0].Time-base.IterTime) > 1e-9 {
		t.Errorf("fastest Zeus point %v != all-max time %v", pts[0].Time, base.IterTime)
	}
	// A uniform global slowdown slows every stage including the
	// bottleneck, so time grows quickly; energy should dip below all-max
	// somewhere (single-GPU-style savings exist).
	minE := math.Inf(1)
	for _, p := range pts {
		minE = math.Min(minE, p.Energy)
	}
	if minE >= base.Energy {
		t.Errorf("ZeusGlobal never saves energy: min %v vs all-max %v", minE, base.Energy)
	}
}

func TestZeusPerStageBalances(t *testing.T) {
	spec := testSpec(t, "gpt3-1.3b", gpu.A100PCIe, 4, 6)
	pts, err := ZeusPerStage(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("only %d sweep points", len(pts))
	}
	// In each plan, stage forward times must be balanced to within the
	// target granularity: every stage's forward time <= target means the
	// max/min ratio across stages shrinks versus all-max for at least
	// one point.
	var worstBase, worstBalanced float64
	base := stageFwdRatio(t, spec, cluster.PlanAllMax(spec.Schedule, spec.Profile.GPU))
	worstBase = base
	worstBalanced = math.Inf(1)
	for _, p := range pts {
		worstBalanced = math.Min(worstBalanced, stageFwdRatio(t, spec, p.Plan))
	}
	if worstBalanced >= worstBase {
		t.Errorf("per-stage balancing never improved forward imbalance: %v vs %v", worstBalanced, worstBase)
	}
}

func stageFwdRatio(t *testing.T, spec cluster.Spec, plan cluster.Plan) float64 {
	t.Helper()
	times := map[int]float64{}
	for i, op := range spec.Schedule.Ops {
		if op.Kind != sched.Forward || op.Microbatch != 0 {
			continue
		}
		tp, err := spec.Profile.For(op)
		if err != nil {
			t.Fatal(err)
		}
		pt, _ := tp.AtOrAbove(plan[i])
		times[op.Virtual] = pt.Time
	}
	mx, mn := 0.0, math.Inf(1)
	for _, v := range times {
		mx = math.Max(mx, v)
		mn = math.Min(mn, v)
	}
	return mx / mn
}

func TestBaselinesDeterministic(t *testing.T) {
	spec := testSpec(t, "t5-3b", gpu.A40, 4, 6)
	p1, err := EnvPipe(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := EnvPipe(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("EnvPipe not deterministic at op %d", i)
		}
	}
}
