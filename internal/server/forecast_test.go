package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/grid"
)

// forecastTestSignal is a 4-hour trace with strong structure: dirty,
// clean, dirty, clean — so a forecast that misses the clean hours is
// visibly wrong.
func forecastTestSignal() grid.Signal {
	return grid.Signal{Name: "fc-test", Intervals: []grid.Interval{
		{StartS: 0, EndS: 3600, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
		{StartS: 3600, EndS: 7200, CarbonGPerKWh: 200, PriceUSDPerKWh: 0.05},
		{StartS: 7200, EndS: 10800, CarbonGPerKWh: 400, PriceUSDPerKWh: 0.15},
		{StartS: 10800, EndS: 14400, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.03},
	}}
}

func TestForecastEndpoint(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	// No forecast yet; installing one needs a signal first.
	if _, err := cl.FetchForecast(); err == nil {
		t.Fatal("fetching a missing forecast should 404")
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err == nil {
		t.Fatal("installing a forecast without a signal should fail")
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	// Unknown models and bad parameters are rejected.
	if _, err := cl.InstallForecast("vibes", 0, 0, 0); err == nil {
		t.Fatal("unknown model accepted")
	}
	for name, body := range map[string]string{
		"bad level":    `{"model":"persistence","level":0.2}`,
		"bad quantile": `{"model":"persistence","quantile":1.5}`,
	} {
		resp, err := http.Post(ts.URL+"/grid/forecast", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	ack, err := cl.InstallForecast("persistence", 0.9, 0.75, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Model != "persistence" || ack.Level != 0.9 || ack.Quantile != 0.75 {
		t.Fatalf("ack %+v", ack)
	}
	// Issued at t=0: one revealed interval, the rest forecast at the
	// last observed value (500), covering one full cycle.
	if ack.IssuedS != 0 || ack.HorizonS != 14400 || ack.Intervals != 4 {
		t.Fatalf("ack %+v", ack)
	}
	fc := ack.Forecast
	if fc.Signal.Intervals[0].CarbonGPerKWh != 500 {
		t.Fatalf("revealed interval %+v", fc.Signal.Intervals[0])
	}
	for i := 1; i < 4; i++ {
		if fc.Signal.Intervals[i].CarbonGPerKWh != 500 {
			t.Fatalf("persistence forecast interval %d = %v, want 500", i, fc.Signal.Intervals[i].CarbonGPerKWh)
		}
	}
	// GET round-trips the stored forecast.
	got, err := cl.FetchForecast()
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "persistence" || len(got.Forecast.Carbon) != 4 {
		t.Fatalf("fetched %+v", got)
	}

	// A forecast issued late in the trace still covers at least one
	// full cycle ahead, rounded up to whole cycles.
	clock.Advance(13000 * time.Second)
	late, err := cl.InstallForecast("persistence", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if late.HorizonS != 28800 {
		t.Fatalf("late-issue horizon %v, want 28800 (two cycles)", late.HorizonS)
	}
	if late.HorizonS-late.IssuedS < 14400 {
		t.Fatalf("late issue sees only %v s ahead", late.HorizonS-late.IssuedS)
	}
}

// TestReplanRollsForward is the rolling-horizon server check under a
// fake clock: a forecast revision mid-schedule triggers a re-plan, the
// frozen prefix is preserved, and predicted-vs-realized emissions
// reconcile at interval boundaries.
func TestReplanRollsForward(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}

	// Re-planning needs a forecast model.
	if _, err := cl.FetchReplan(id, 100, 14400, "", 0); err == nil {
		t.Fatal("replanning without a forecast should fail")
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	// The target needs ~80% of the horizon even sprinting flat out, so
	// work remains in flight at every boundary the test crosses.
	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	const deadline = 14400.0
	first, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plans != 1 || len(first.Frozen) != 0 || first.DoneIterations != 0 {
		t.Fatalf("first replan %+v", first)
	}
	if !first.Feasible || first.Remaining == nil || first.RemainingOffsetS != 0 {
		t.Fatalf("first replan remaining %+v", first)
	}
	// The persistence forecast is flat at 500 g: the first plan has no
	// reason to prefer any hour over another.
	if math.Abs(first.Remaining.Iterations-target) > 1e-6*target {
		t.Fatalf("first plan covers %v, want %v", first.Remaining.Iterations, target)
	}

	// Two hours pass; the revealed history now contains the clean hour
	// 1. Installing a fresh model is the forecast revision; the next
	// replan freezes hours 0-1 as executed and re-plans hours 2-3.
	clock.Advance(2 * time.Hour)
	if _, err := cl.InstallForecast("seasonal", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	second, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Plans != 2 {
		t.Fatalf("revision did not trigger a re-plan: %+v", second.Plans)
	}
	if second.RemainingOffsetS != 7200 {
		t.Fatalf("remaining offset %v, want 7200", second.RemainingOffsetS)
	}
	if len(second.Frozen) != 2 {
		t.Fatalf("frozen %d intervals, want the 2 executed hours", len(second.Frozen))
	}
	// The frozen prefix is exactly what the first plan scheduled there.
	for i, fi := range second.Frozen {
		ip := first.Remaining.Intervals[i]
		if math.Abs(fi.Iterations-ip.Iterations) > 1e-6*(1+ip.Iterations) ||
			fi.StartS != ip.StartS || fi.EndS != ip.EndS {
			t.Fatalf("frozen[%d] %+v does not match the first plan's interval %+v", i, fi, ip)
		}
	}
	if math.Abs(second.DoneIterations-(second.Frozen[0].Iterations+second.Frozen[1].Iterations)) > 1e-6 {
		t.Fatalf("done iterations %v do not add up", second.DoneIterations)
	}
	if math.Abs(second.DoneIterations+second.RemainingIterations-target) > 1e-6*(1+target) {
		t.Fatalf("done %v + remaining %v != target %v", second.DoneIterations, second.RemainingIterations, target)
	}

	// Predicted-vs-realized reconciliation at interval boundaries:
	// hour 0 was revealed when planned (forecast == truth), hour 1 was
	// planned at the persistence forecast's 500 g but realized at the
	// truth's 200 g.
	f0, f1 := second.Frozen[0], second.Frozen[1]
	if math.Abs(f0.PredCarbonG-f0.CarbonG) > 1e-9*(1+f0.CarbonG) {
		t.Fatalf("hour 0 was revealed at planning time: pred %v != realized %v", f0.PredCarbonG, f0.CarbonG)
	}
	if f1.EnergyJ > 0 {
		wantPred := f1.EnergyJ / grid.JoulesPerKWh * 500
		wantReal := f1.EnergyJ / grid.JoulesPerKWh * 200
		if math.Abs(f1.PredCarbonG-wantPred) > 1e-6*(1+wantPred) ||
			math.Abs(f1.CarbonG-wantReal) > 1e-6*(1+wantReal) {
			t.Fatalf("hour 1 reconciliation: pred %v (want %v), realized %v (want %v)",
				f1.PredCarbonG, wantPred, f1.CarbonG, wantReal)
		}
	}

	// Another hour passes: the frozen prefix from before is preserved
	// verbatim and hour 2 joins it.
	clock.Advance(time.Hour)
	third, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Frozen) != 3 {
		t.Fatalf("frozen %d intervals, want 3", len(third.Frozen))
	}
	for i := range second.Frozen {
		a, b := third.Frozen[i], second.Frozen[i]
		if a.StartS != b.StartS || a.EndS != b.EndS || a.Iterations != b.Iterations ||
			a.EnergyJ != b.EnergyJ || a.CarbonG != b.CarbonG || a.PredCarbonG != b.PredCarbonG {
			t.Fatalf("frozen prefix mutated: %+v vs %+v", a, b)
		}
	}
	// With a full revealed cycle the seasonal model is exact, so the
	// final re-plan must put the bulk of the remaining work into the
	// clean hour 3 (100 g) rather than what remains of dirty hour 2.
	if third.Remaining != nil && len(third.Remaining.Intervals) >= 2 {
		last := third.Remaining.Intervals[len(third.Remaining.Intervals)-1]
		if third.RemainingIterations > 1 && last.Iterations == 0 {
			t.Fatalf("re-plan ignores the clean final hour: %+v", third.Remaining.Intervals)
		}
	}

	// Changing a parameter restarts the schedule from now.
	reset, err := cl.FetchReplan(id, target*0.5, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if reset.Plans != 1 || len(reset.Frozen) != 0 {
		t.Fatalf("parameter change did not reset the schedule: %+v", reset)
	}

	// Forecast-aware emissions: the job has been drawing power at its
	// deployed schedule all along; predicted accrual (against the
	// forecasts in force) diverges from realized where the forecast
	// was wrong.
	em, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	if !em.Ready || em.PredCarbonG <= 0 {
		t.Fatalf("emissions missing predicted accrual: %+v", em)
	}
	if math.Abs(em.DriftCarbonG-(em.CarbonG-em.PredCarbonG)) > 1e-9*(1+em.CarbonG) {
		t.Fatalf("drift %v != realized %v - predicted %v", em.DriftCarbonG, em.CarbonG, em.PredCarbonG)
	}
	if em.DriftCarbonG == 0 {
		t.Fatal("persistence forecast over a structured trace should drift")
	}
}

// TestReplanConcurrency hammers the replan, forecast, and emissions
// endpoints concurrently (run under -race).
func TestReplanConcurrency(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("seasonal", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				switch w % 3 {
				case 0:
					if _, err := cl.FetchReplan(id, 1000, 14400, "", 0); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := cl.FetchEmissions(id); err != nil {
						t.Error(err)
						return
					}
				}
				clock.Advance(time.Minute)
			}
		}(w)
	}
	wg.Wait()
}

// TestDriftWithZeroPrediction pins the drift gate: a forecast that
// predicted zero carbon must still show positive drift when the grid
// ran dirty.
func TestDriftWithZeroPrediction(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	// Hour 0 is perfectly clean; persistence therefore predicts zero
	// carbon forever. Hour 1 runs dirty.
	sig := grid.Signal{Name: "clean-then-dirty", Intervals: []grid.Interval{
		{StartS: 0, EndS: 3600, CarbonGPerKWh: 0, PriceUSDPerKWh: 0.1},
		{StartS: 3600, EndS: 7200, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.1},
	}}
	if _, err := cl.UploadGridSignal(sig, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Hour)
	em, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	if em.PredCarbonG != 0 {
		t.Fatalf("persistence over a clean hour should predict 0, got %v", em.PredCarbonG)
	}
	if em.CarbonG <= 0 || em.DriftCarbonG <= 0 {
		t.Fatalf("dirty reality over a clean forecast must drift positive: realized %v, drift %v",
			em.CarbonG, em.DriftCarbonG)
	}
}

// TestReplanDefaultDeadlineStableAcrossCycles pins the deadline=0
// semantics: the effective deadline is fixed when the schedule starts,
// so the forecast horizon growing on later calls (it always covers a
// full cycle beyond *now*) must not read as a parameter change that
// resets the frozen prefix.
func TestReplanDefaultDeadlineStableAcrossCycles(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	first, err := cl.FetchReplan(id, target, 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.DeadlineS != 14400 {
		t.Fatalf("default deadline %v, want the issue-time horizon 14400", first.DeadlineS)
	}
	// Two hours later the freshly issued forecast horizon is 28800; the
	// schedule must roll forward, not restart.
	clock.Advance(2 * time.Hour)
	second, err := cl.FetchReplan(id, target, 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Plans != 2 || len(second.Frozen) == 0 || second.DoneIterations <= 0 {
		t.Fatalf("default-deadline schedule restarted instead of rolling forward: %+v", second)
	}
	if second.DeadlineS != 14400 {
		t.Fatalf("pinned deadline drifted to %v", second.DeadlineS)
	}
}

// TestSignalReinstallResetsForecastState pins the reset rule: a new
// grid signal drops the forecast and every rolling-horizon schedule —
// stale forecasts of the old trace must not price the new one.
func TestSignalReinstallResetsForecastState(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchReplan(id, 1000, 14400, "", 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)

	// New signal: forecast gone, schedules gone.
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchForecast(); err == nil {
		t.Fatal("stale forecast survived a signal reinstall")
	}
	if _, err := cl.FetchReplan(id, 1000, 14400, "", 0); err == nil {
		t.Fatal("replanning without a fresh forecast should fail after a signal reinstall")
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	fresh, err := cl.FetchReplan(id, 1000, 14400, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Plans != 1 || len(fresh.Frozen) != 0 || fresh.DoneIterations != 0 {
		t.Fatalf("stale replan state survived a signal reinstall: %+v", fresh)
	}
}

// TestReplanWarmStartOnTailRevision pins the warm-start path under a
// fake clock: a forecast revision that leaves the quantile view over
// the remaining window bit-identical (here, re-issuing the same model
// with a longer horizon — a tail-only revision past the deadline)
// reuses the running plan instead of re-solving. The executed prefix
// is untouched, the plan counter does not bump, and
// perseus_planner_warm_starts_total records the reuse. Advancing the
// clock afterwards still takes the cold path.
func TestReplanWarmStartOnTailRevision(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallForecast("persistence", 0, 0, 0); err != nil {
		t.Fatal(err)
	}

	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	const deadline = 14400.0
	first, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plans != 1 || len(first.Frozen) != 0 {
		t.Fatalf("first replan %+v", first)
	}

	// Tail-only revision: the same model re-issued with a longer
	// horizon bumps the forecast revision counter, but the view inside
	// [now, deadline] is identical, so the next roll-forward must keep
	// the running plan.
	if _, err := cl.InstallForecast("persistence", 0, 0, 28800); err != nil {
		t.Fatal(err)
	}
	warm, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Plans != 1 {
		t.Fatalf("tail-only revision re-planned: plans %d, want 1", warm.Plans)
	}
	if len(warm.Frozen) != 0 || warm.DoneIterations != 0 || warm.RemainingOffsetS != 0 {
		t.Fatalf("warm start touched the executed prefix: %+v", warm)
	}
	if warm.Remaining == nil || math.Abs(warm.Remaining.Iterations-first.Remaining.Iterations) > 1e-12 {
		t.Fatalf("warm start altered the plan: %+v vs %+v", warm.Remaining, first.Remaining)
	}
	text, err := cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "perseus_planner_warm_starts_total 1") {
		t.Fatalf("metrics missing warm-start count of 1:\n%s", text)
	}
	if !strings.Contains(text, "perseus_planner_workers ") {
		t.Fatal("metrics missing perseus_planner_workers gauge")
	}

	// Time advancing past the plan offset is never warm: the executed
	// hour must freeze and the remainder re-solve.
	clock.Advance(time.Hour)
	cold, err := cl.FetchReplan(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Plans != 2 || len(cold.Frozen) != 1 {
		t.Fatalf("time advance did not re-plan: %+v", cold)
	}
	text, err = cl.FetchMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "perseus_planner_warm_starts_total 1") {
		t.Fatal("cold roll-forward incremented the warm-start counter")
	}
}
