package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"perseus/internal/grid"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
	"perseus/internal/region"
)

// RegionRequest registers a datacenter region: its GPU capacity,
// facility power cap, and grid signal.
type RegionRequest struct {
	Name   string      `json:"name"`
	GPUs   int         `json:"gpus,omitempty"`
	CapW   float64     `json:"cap_w,omitempty"`
	Signal grid.Signal `json:"signal"`
}

// RegionInfo summarizes one registered region.
type RegionInfo struct {
	Name      string  `json:"name"`
	GPUs      int     `json:"gpus"`
	CapW      float64 `json:"cap_w"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
}

// PlacementRequest places a job into a region.
type PlacementRequest struct {
	Region string `json:"region"`

	// MigrationJ is the energy overhead of the move in joules
	// (checkpoint, transfer, restart). It is charged at the destination
	// region's instantaneous rates into the job's emissions account and
	// booked as a "migration" entry in the bloat ledger. 0 (and a
	// placement into the job's current region) charges nothing.
	MigrationJ float64 `json:"migration_j,omitempty"`
}

// PlacementEntry is one step of a job's placement history.
type PlacementEntry struct {
	Region  string  `json:"region"`
	AtUnixS float64 `json:"at_unix_s"`
}

// PlacementResponse reports a job's current placement.
type PlacementResponse struct {
	JobID string `json:"job_id"`

	// Region is the current placement ("" = unplaced).
	Region string `json:"region"`

	// Migrations counts region changes after the initial placement.
	Migrations int `json:"migrations"`

	// History lists every placement in time order.
	History []PlacementEntry `json:"history,omitempty"`
}

func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req RegionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		info, err := s.RegisterRegion(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, info)
	case http.MethodGet:
		writeJSON(w, s.Regions())
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// RegisterRegion validates and registers a datacenter region, anchoring
// its signal's time 0 at the current wall clock.
func (s *Server) RegisterRegion(req RegionRequest) (RegionInfo, error) {
	if req.Name == "" {
		return RegionInfo{}, fmt.Errorf("server: region needs a name")
	}
	if req.GPUs < 0 {
		return RegionInfo{}, fmt.Errorf("server: region %s capacity must be non-negative, got %d", req.Name, req.GPUs)
	}
	if math.IsNaN(req.CapW) || math.IsInf(req.CapW, 0) || req.CapW < 0 {
		return RegionInfo{}, fmt.Errorf("server: region %s cap must be a finite non-negative number of watts, got %v", req.Name, req.CapW)
	}
	if err := req.Signal.Validate(); err != nil {
		return RegionInfo{}, err
	}
	now := s.st.now()
	sig := req.Signal
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	if _, ok := s.st.regions[req.Name]; ok {
		return RegionInfo{}, fmt.Errorf("server: region %s already registered", req.Name)
	}
	s.st.regions[req.Name] = &serverRegion{
		name: req.Name, gpus: req.GPUs, capW: req.CapW, sig: &sig, anchor: now,
		meanG: sig.MeanCarbonGPerKWh() / grid.JoulesPerKWh,
	}
	s.st.regOrd = append(s.st.regOrd, req.Name)
	return RegionInfo{
		Name: req.Name, GPUs: req.GPUs, CapW: req.CapW,
		Intervals: len(sig.Intervals), HorizonS: sig.Horizon(),
	}, nil
}

// Regions lists the registered regions in registration order.
func (s *Server) Regions() []RegionInfo {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	out := make([]RegionInfo, 0, len(s.st.regOrd))
	for _, name := range s.st.regOrd {
		r := s.st.regions[name]
		out = append(out, RegionInfo{
			Name: r.name, GPUs: r.gpus, CapW: r.capW,
			Intervals: len(r.sig.Intervals), HorizonS: r.sig.Horizon(),
		})
	}
	return out
}

// PlaceJob places (or migrates) a job into a registered region.
// Emissions accrued so far are settled at the old placement's rates
// first, so the migration boundary splits the account exactly.
func (s *Server) PlaceJob(id, regionName string) (PlacementResponse, error) {
	return s.placeJob(context.Background(), id, PlacementRequest{Region: regionName})
}

// PlaceJobMigrating is PlaceJob with a migration energy overhead,
// charged at the destination's instantaneous rates and attributed as
// migration overhead in the bloat ledger.
func (s *Server) PlaceJobMigrating(id, regionName string, migrationJ float64) (PlacementResponse, error) {
	return s.placeJob(context.Background(), id, PlacementRequest{Region: regionName, MigrationJ: migrationJ})
}

func (s *Server) placeJob(ctx context.Context, id string, req PlacementRequest) (PlacementResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	if math.IsNaN(req.MigrationJ) || math.IsInf(req.MigrationJ, 0) || req.MigrationJ < 0 {
		return PlacementResponse{}, fmt.Errorf("server: migration_j must be a finite non-negative energy, got %v", req.MigrationJ)
	}
	s.st.mu.Lock()
	dest, ok := s.st.regions[req.Region]
	s.st.mu.Unlock()
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown region %q", req.Region)
	}
	gs := s.st.gridState()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.region != req.Region {
		from := j.region
		j.accrueLocked(gs)
		j.chargeMigrationLocked(gs, req.MigrationJ, dest)
		j.region = req.Region
		j.placements = append(j.placements, placementEvent{region: req.Region, at: gs.now})
		name := "job.place"
		if from != "" {
			name = "job.migrate"
		}
		s.obs.ring.Emit(gs.now, name, 0, traceKV(ctx, "job", j.id, "from", from, "to", req.Region)...)
	}
	return placementLocked(j), nil
}

// PlacementOf returns a job's current placement and history.
func (s *Server) PlacementOf(id string) (PlacementResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return PlacementResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return placementLocked(j), nil
}

// placementLocked renders the placement view. Callers hold j.mu.
func placementLocked(j *job) PlacementResponse {
	resp := PlacementResponse{JobID: j.id, Region: j.region}
	for _, p := range j.placements {
		resp.History = append(resp.History, PlacementEntry{
			Region:  p.region,
			AtUnixS: float64(p.at.UnixNano()) / 1e9,
		})
	}
	if n := len(j.placements); n > 1 {
		resp.Migrations = n - 1
	}
	return resp
}

func (s *Server) handleRegionsPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	var target, deadline, downtime, migEnergy float64
	var err error
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"iterations", &target}, {"deadline", &deadline},
		{"downtime", &downtime}, {"migration_j", &migEnergy},
	} {
		if *f.dst, err = parse(f.key); err != nil {
			http.Error(w, fmt.Sprintf("bad %s: %v", f.key, err), http.StatusBadRequest)
			return
		}
	}
	plan, err := s.regionsPlan(r.Context(), target, deadline, q.Get("objective"), region.MigrationCost{
		DowntimeS: downtime, EnergyJ: migEnergy,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, plan)
}

// RegionsPlan plans every characterized job's spatio-temporal schedule
// across the registered regions (internal/region): complete target
// iterations per job by the deadline (seconds in signal time; 0 means
// the longest region trace), minimizing the objective ("" uses the
// server default), with migration modeled at the given pause-cost.
// Each job occupies Stages × DataParallel GPUs of a region's capacity.
func (s *Server) RegionsPlan(target, deadline float64, objective string, mig region.MigrationCost) (*region.Plan, error) {
	return s.regionsPlan(context.Background(), target, deadline, objective, mig)
}

func (s *Server) regionsPlan(ctx context.Context, target, deadline float64, objective string, mig region.MigrationCost) (*region.Plan, error) {
	s.st.mu.Lock()
	obj := s.st.objective
	regs := make([]region.Region, 0, len(s.st.regOrd))
	for _, name := range s.st.regOrd {
		r := s.st.regions[name]
		regs = append(regs, region.Region{
			Name: r.name, GPUs: r.gpus, Signal: r.sig, CapW: r.capW,
		})
	}
	s.st.mu.Unlock()
	jobs := s.st.jobsInOrder()
	if len(regs) == 0 {
		return nil, fmt.Errorf("server: no regions registered")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			return nil, err
		}
	}
	var rjobs []region.Job
	for _, j := range jobs {
		j.mu.Lock()
		if j.table != nil {
			pipes := j.req.DataParallel
			if pipes <= 0 {
				pipes = 1
			}
			rjobs = append(rjobs, region.Job{
				ID:         j.id,
				Table:      j.table,
				GPUs:       j.req.Stages * pipes,
				PowerScale: float64(pipes),
				Target:     target,
				DeadlineS:  deadline,
			})
		}
		j.mu.Unlock()
	}
	if len(rjobs) == 0 {
		return nil, fmt.Errorf("server: no characterized jobs to plan")
	}
	// The joint planner's descent cost grows with jobs × cells²; this
	// endpoint runs it synchronously in the request, so bound the
	// problem size rather than pin a CPU for minutes. Larger fleets
	// should plan offline with internal/region directly.
	if len(rjobs) > maxPlanJobs {
		return nil, fmt.Errorf("server: %d characterized jobs exceed the synchronous planning limit of %d; plan offline with internal/region", len(rjobs), maxPlanJobs)
	}
	p := obs.InstrumentPlanner(ctx, s.wrapPlanner(&region.Planner{Regions: regs, Jobs: rjobs, Migration: mig}),
		"region", s.obs.planLatency, s.obs.planErrors)
	res, err := p.Plan(pln.Request{
		Target: target, DeadlineS: deadline, Objective: obj,
	})
	if err != nil {
		return nil, err
	}
	return res.(*region.Plan), nil
}

// maxPlanJobs bounds the fleet size GET /regions/plan will plan
// synchronously.
const maxPlanJobs = 6
