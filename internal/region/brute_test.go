package region

import (
	"math"
	"math/rand"
	"testing"

	"perseus/internal/grid"
)

// bruteInstance is one small randomized multi-region instance with
// aligned interval boundaries (so the common grid has exactly nCells
// cells and joint placement enumeration stays tractable). No power
// caps: the brute force verifies placement/migration optimality, and
// cap sharing is order-dependent by design (see Optimize docs).
type bruteInstance struct {
	regions []Region
	jobs    []Job
	opts    Options
}

func randomBruteInstance(rng *rand.Rand, nRegions, nJobs, nCells, capacity int) bruteInstance {
	const cellS = 600
	var inst bruteInstance
	for r := 0; r < nRegions; r++ {
		sig := &grid.Signal{Name: string(rune('a' + r))}
		for k := 0; k < nCells; k++ {
			sig.Intervals = append(sig.Intervals, grid.Interval{
				StartS:         float64(k) * cellS,
				EndS:           float64(k+1) * cellS,
				CarbonGPerKWh:  100 + 500*rng.Float64(),
				PriceUSDPerKWh: 0.03 + 0.2*rng.Float64(),
			})
		}
		inst.regions = append(inst.regions, Region{
			Name: sig.Name, GPUs: capacity, Signal: sig,
		})
	}
	for j := 0; j < nJobs; j++ {
		tmin := int64(40 + rng.Intn(60))
		lt := convexTable(0.01, tmin, tmin+int64(3+rng.Intn(3)),
			1000+4000*rng.Float64(), 50+400*rng.Float64())
		// Max coverage running flat out the whole horizon; ask for a
		// fraction so there is slack to place.
		maxCover := float64(nCells) * cellS / lt.Tmin()
		inst.jobs = append(inst.jobs, Job{
			ID:     string(rune('x' + j)),
			Table:  lt,
			Target: maxCover * (0.1 + 0.5*rng.Float64()),
		})
	}
	inst.opts = Options{
		Objective: []grid.Objective{grid.ObjectiveCarbon, grid.ObjectiveCost}[rng.Intn(2)],
		Migration: MigrationCost{
			DowntimeS: float64(rng.Intn(4)) * 50,
			EnergyJ:   float64(rng.Intn(3)) * 2e5,
		},
	}
	return inst
}

// enumerate lists every placement sequence over nCells cells drawing
// from {Paused, 0..nRegions-1}.
func enumerate(nRegions, nCells int) [][]int {
	var out [][]int
	cur := make([]int, nCells)
	var walk func(k int)
	walk = func(k int) {
		if k == nCells {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := Paused; v < nRegions; v++ {
			cur[k] = v
			walk(k + 1)
		}
	}
	walk(0)
	return out
}

// bruteForce exhaustively enumerates every joint placement/migration
// sequence — each job independently assigned (region | pause) per cell,
// all (R+1)^(J·K) combinations — prunes those violating GPU capacity,
// evaluates each job's sequence exactly with the same inner temporal
// planner the real planner uses, and returns the minimum total
// objective over combinations where every job is feasible.
func bruteForce(t *testing.T, inst bruteInstance) (best float64, ok bool) {
	t.Helper()
	horizon := inst.regions[0].Signal.Horizon()
	cells := commonGrid(inst.regions, horizon)
	p := &planner{regions: inst.regions, cells: cells, horizon: horizon,
		opts: inst.opts, usage: newUsage(len(inst.regions), len(cells))}

	placements := enumerate(len(inst.regions), len(cells))
	// Cache each job's per-placement evaluation (no caps, so the
	// evaluation is usage-independent).
	type cached struct {
		cost     float64
		feasible bool
	}
	cache := make([][]cached, len(inst.jobs))
	for j := range inst.jobs {
		cache[j] = make([]cached, len(placements))
		for i, pl := range placements {
			ev, err := p.evaluate(&inst.jobs[j], pl)
			if err != nil {
				t.Fatal(err)
			}
			cache[j][i] = cached{cost: ev.cost, feasible: ev.feasible}
		}
	}

	best = math.Inf(1)
	choice := make([]int, len(inst.jobs))
	var walk func(j int, total float64)
	walk = func(j int, total float64) {
		if total >= best {
			return
		}
		if j == len(inst.jobs) {
			best, ok = total, true
			return
		}
		for i, pl := range placements {
			c := cache[j][i]
			if !c.feasible {
				continue
			}
			// GPU capacity across the jobs chosen so far.
			fits := true
			for k := 0; fits && k < len(cells); k++ {
				if pl[k] < 0 {
					continue
				}
				used := inst.jobs[j].gpus()
				for jj := 0; jj < j; jj++ {
					if placements[choice[jj]][k] == pl[k] {
						used += inst.jobs[jj].gpus()
					}
				}
				if cap := inst.regions[pl[k]].GPUs; cap > 0 && used > cap {
					fits = false
				}
			}
			if !fits {
				continue
			}
			choice[j] = i
			walk(j+1, total+c.cost)
		}
	}
	walk(0, 0)
	return best, ok
}

// TestPlannerMatchesBruteForce is the cross-check the issue's
// acceptance criteria require: on every small instance — up to 3
// regions × 3 jobs × 4 intervals — the greedy segment-descent planner
// is compared against exhaustive enumeration of all placement and
// migration sequences.
//
// Claim verified: the planner never beats the enumerated optimum
// (both sides share the exact inner temporal solver, so a "win" would
// mean the brute force is broken), and on single-job instances it
// matches the optimum exactly — the segment-move neighborhood from
// multi-starts covers these tiny placement spaces. On multi-job
// instances with capacity contention the sequential Gauss-Seidel
// decomposition is a heuristic; its documented bound here is 10% above
// optimal, and in practice it matches exactly on most seeds.
func TestPlannerMatchesBruteForce(t *testing.T) {
	shapes := []struct {
		regions, jobs, cells, capacity int
		exact                          bool
	}{
		{2, 1, 3, 0, true},
		{2, 1, 4, 0, true},
		{3, 1, 4, 0, true},
		{2, 2, 3, 1, false}, // contended: capacity 1 per region
		{2, 3, 2, 1, false},
		{3, 2, 3, 1, false},
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 6; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(sh.regions*10+sh.cells)))
			inst := randomBruteInstance(rng, sh.regions, sh.jobs, sh.cells, sh.capacity)
			want, feasible := bruteForce(t, inst)

			got, err := Optimize(inst.regions, inst.jobs, inst.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Feasible != feasible {
				t.Fatalf("shape %+v seed %d: planner feasible=%v, brute force %v",
					sh, seed, got.Feasible, feasible)
			}
			if !feasible {
				continue
			}
			tol := 1e-9 * (1 + want)
			if got.Total() < want-tol {
				t.Fatalf("shape %+v seed %d: planner %.9f beats brute force %.9f — brute force broken",
					sh, seed, got.Total(), want)
			}
			if sh.exact {
				if got.Total() > want+tol {
					t.Fatalf("shape %+v seed %d: planner %.9f != optimal %.9f",
						sh, seed, got.Total(), want)
				}
			} else if got.Total() > want*1.10+tol {
				t.Fatalf("shape %+v seed %d: planner %.9f exceeds optimal %.9f by more than the documented 10%% bound",
					sh, seed, got.Total(), want)
			}
		}
	}
}

// TestPlannerNeverWorseThanBaselines pins the structural guarantee the
// descent construction provides: the planner starts from the baseline
// placements, so it can never end above them on any instance.
func TestPlannerNeverWorseThanBaselines(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomBruteInstance(rng, 2+rng.Intn(2), 1, 3+rng.Intn(2), 0)
		plan, err := Optimize(inst.regions, inst.jobs, inst.opts)
		if err != nil {
			t.Fatal(err)
		}
		bestFixed, err := BestFixed(inst.regions, inst.jobs, inst.opts)
		if err != nil {
			t.Fatal(err)
		}
		noMig, err := NoMigration(inst.regions, inst.jobs, inst.opts)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Feasible {
			continue
		}
		tol := 1e-9 * (1 + plan.Total())
		if bestFixed.Feasible && plan.Total() > bestFixed.Total()+tol {
			t.Fatalf("seed %d: planner %v above best fixed %v", seed, plan.Total(), bestFixed.Total())
		}
		if noMig.Feasible && plan.Total() > noMig.Total()+tol {
			t.Fatalf("seed %d: planner %v above no-migration %v", seed, plan.Total(), noMig.Total())
		}
	}
}

// TestEvaluatePlanInvariants checks per-evaluation bookkeeping on a
// random instance: slices stay inside their cells' regions, paused and
// downtime spans never run, and totals add up.
func TestEvaluatePlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randomBruteInstance(rng, 3, 1, 4, 0)
	horizon := inst.regions[0].Signal.Horizon()
	cells := commonGrid(inst.regions, horizon)
	p := &planner{regions: inst.regions, cells: cells, horizon: horizon,
		opts: inst.opts, usage: newUsage(len(inst.regions), len(cells))}
	j := &inst.jobs[0]
	for _, pl := range enumerate(3, 4) {
		ev, err := p.evaluate(j, pl)
		if err != nil {
			t.Fatal(err)
		}
		var carbon float64
		for i, ip := range ev.plan.Intervals {
			k := ev.cellOf[i]
			if pl[k] == Paused && ip.Iterations != 0 {
				t.Fatalf("placement %v: paused cell %d ran %v iterations", pl, k, ip.Iterations)
			}
			carbon += ip.CarbonG
		}
		if math.Abs(carbon-ev.plan.CarbonG) > 1e-9*(1+carbon) {
			t.Fatalf("placement %v: interval carbon %v != plan total %v", pl, carbon, ev.plan.CarbonG)
		}
	}
}
