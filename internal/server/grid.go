package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/grid"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// GridSignalRequest installs a grid trace and (optionally) the default
// temporal-planning objective.
type GridSignalRequest struct {
	Signal    grid.Signal `json:"signal"`
	Objective string      `json:"objective,omitempty"`
}

// GridSignalResponse summarizes the installed signal.
type GridSignalResponse struct {
	Name      string  `json:"name"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
	Objective string  `json:"objective"`
}

// EmissionsResponse is a job's cumulative emissions accounting since
// characterization: deployed-schedule energy integrated against the
// grid signal (cyclically beyond its horizon).
type EmissionsResponse struct {
	JobID string `json:"job_id"`

	// Ready is false until the job is characterized and drawing power.
	Ready bool `json:"ready"`

	// SinceS is the accounted wall-clock span in seconds.
	SinceS float64 `json:"since_s"`

	// EnergyJ, CarbonG, and CostUSD are the cumulative totals. Carbon
	// and cost stay zero while no signal is installed.
	EnergyJ float64 `json:"energy_j"`
	CarbonG float64 `json:"carbon_g"`
	CostUSD float64 `json:"cost_usd"`

	// PredCarbonG and PredCostUSD accrue the same draw at the latest
	// issued forecast's rates (zero until POST /grid/forecast; global
	// signal only — a placed job accrues at its region's rates, which
	// the forecast does not cover). DriftCarbonG is realized minus
	// predicted over exactly the forecast-covered spans: positive means
	// the grid ran dirtier than forecast.
	PredCarbonG  float64 `json:"pred_carbon_g"`
	PredCostUSD  float64 `json:"pred_cost_usd"`
	DriftCarbonG float64 `json:"drift_carbon_g"`
}

func (s *Server) handleGridSignal(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req GridSignalRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.setGridSignal(r.Context(), req.Signal, req.Objective)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	case http.MethodGet:
		s.st.mu.Lock()
		sig := s.st.signal
		s.st.mu.Unlock()
		if sig == nil {
			http.Error(w, "no grid signal installed", http.StatusNotFound)
			return
		}
		writeJSON(w, sig)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// SetGridSignal validates and installs a grid trace, anchoring its
// time 0 at the current wall clock, and sets the default planning
// objective ("" keeps carbon). Emissions accrued so far are settled
// against the previous signal first, and all forecast and
// rolling-horizon re-planning state is dropped: a forecast of the old
// trace priced on the new one — or a frozen schedule prefix measured
// against the old anchor — would silently corrupt every predicted
// account downstream. Operators re-POST /grid/forecast after a signal
// change. The plan-cache epoch advances, so every cached plan of the
// old signal is invalidated.
func (s *Server) SetGridSignal(sig grid.Signal, objective string) (GridSignalResponse, error) {
	return s.setGridSignal(context.Background(), sig, objective)
}

func (s *Server) setGridSignal(ctx context.Context, sig grid.Signal, objective string) (GridSignalResponse, error) {
	obj, err := grid.ParseObjective(objective)
	if err != nil {
		return GridSignalResponse{}, err
	}
	if err := sig.Validate(); err != nil {
		return GridSignalResponse{}, err
	}
	// Settle every job's accounting under the old signal before the
	// rates change.
	gs := s.st.gridState()
	s.st.settleAll(gs)
	st := s.st
	st.mu.Lock()
	st.signal = &sig
	st.sigStart = gs.now
	st.objective = obj
	st.fspec = nil
	st.fcast = nil
	st.fcastAt = time.Time{}
	st.epoch++
	st.mu.Unlock()
	s.cache.clear()
	s.replanMu.Lock()
	s.replans = map[string]*replanState{}
	s.replanMu.Unlock()
	s.ctrl.reset()
	s.obs.ring.Emit(gs.now, "signal.install", 0, traceKV(ctx,
		"name", sig.Name, "intervals", strconv.Itoa(len(sig.Intervals)),
		"objective", string(obj))...)
	return GridSignalResponse{
		Name:      sig.Name,
		Intervals: len(sig.Intervals),
		HorizonS:  sig.Horizon(),
		Objective: string(obj),
	}, nil
}

func (s *Server) handleGridPlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/grid/plan/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	target, err := parse("iterations")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad iterations: %v", err), http.StatusBadRequest)
		return
	}
	deadline, err := parse("deadline")
	if err != nil {
		http.Error(w, fmt.Sprintf("bad deadline: %v", err), http.StatusBadRequest)
		return
	}
	plan, err := s.gridPlan(r.Context(), id, target, deadline, q.Get("objective"))
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.st.job(id); !ok {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, plan)
}

// GridPlan plans a job's temporal schedule over the installed signal:
// complete target iterations by the deadline (seconds in signal time;
// 0 means the signal horizon) minimizing the objective ("" uses the
// server default). The job must be characterized and a signal
// installed.
//
// Results are cached by (plan epoch, frontier hash, request params)
// with single-flight de-duplication: identical concurrent requests
// solve once and share the plan; any signal re-install, forecast
// revision, or frontier re-characterization changes the key.
func (s *Server) GridPlan(id string, target, deadline float64, objective string) (*grid.Plan, error) {
	return s.gridPlan(context.Background(), id, target, deadline, objective)
}

// gridPlan is GridPlan with context: under a traced request it records
// store.snapshot (lock acquisition + state reads), cache.lookup, and
// planner.solve child spans; from an untraced context every span site
// is a nil-check no-op, which is what keeps the cached-plan hot path
// at its PR 6 cost.
func (s *Server) gridPlan(ctx context.Context, id string, target, deadline float64, objective string) (*grid.Plan, error) {
	_, snap := obs.Child(ctx, spanStoreSnapshot)
	snap.SetAttr("job", id)
	j, ok := s.st.job(id)
	if !ok {
		snap.End()
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	s.st.mu.Lock()
	sig := s.st.signal
	obj := s.st.objective
	epoch := s.st.epoch
	s.st.mu.Unlock()
	if sig == nil {
		snap.End()
		return nil, fmt.Errorf("server: no grid signal installed")
	}
	if objective != "" {
		var err error
		if obj, err = grid.ParseObjective(objective); err != nil {
			snap.End()
			return nil, err
		}
	}
	j.mu.Lock()
	table := j.table
	tableHash := j.tableHash
	pipes := j.req.DataParallel
	j.mu.Unlock()
	snap.End()
	if table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	key := planKey{
		epoch:     epoch,
		table:     tableHash,
		target:    target,
		deadline:  deadline,
		objective: obj,
		scale:     pipes,
	}
	return s.cache.do(ctx, key, func(ctx context.Context) (*grid.Plan, error) {
		p := obs.InstrumentPlanner(ctx, s.wrapPlanner(&grid.Planner{Table: table, Signal: sig}),
			"grid", s.obs.planLatency, s.obs.planErrors)
		res, err := p.Plan(pln.Request{
			Target:     target,
			DeadlineS:  deadline,
			Objective:  obj,
			PowerScale: float64(pipes),
		})
		if err != nil {
			return nil, err
		}
		return res.(*grid.Plan), nil
	})
}

// Emissions settles and returns a job's cumulative emissions
// accounting.
func (s *Server) Emissions(id string) (EmissionsResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return EmissionsResponse{}, fmt.Errorf("server: unknown job %s", id)
	}
	gs := s.st.gridState()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.accrueLocked(gs)
	resp := EmissionsResponse{JobID: id}
	if !j.accSince.IsZero() {
		resp.Ready = true
		resp.SinceS = j.accAt.Sub(j.accSince).Seconds()
		resp.EnergyJ = j.energyAccJ
		resp.CarbonG = j.carbonAccG
		resp.CostUSD = j.costAccUSD
		resp.PredCarbonG = j.predCarbonG
		resp.PredCostUSD = j.predCostUSD
		resp.DriftCarbonG = j.predRealCarbonG - j.predCarbonG
	}
	return resp, nil
}
