// Command perseus-grid replays the bundled 24-hour diurnal grid trace
// through the temporal planner (internal/grid): one training job with
// deadline slack is scheduled over the day's carbon-intensity and price
// curve, and the resulting carbon/cost/time table is compared against
// the two signal-blind baselines — always-T_min (sprint, then stop) and
// static min-energy (every iteration at T*).
//
// Usage:
//
//	perseus-grid                      # bundled trace, quick scale
//	perseus-grid -util 0.7            # tighter deadline (70% of T* capacity)
//	perseus-grid -objective cost      # minimize $ instead of gCO2
//	perseus-grid -signal trace.csv    # replay your own trace (CSV or JSON)
//	perseus-grid -gpu A40 -scale full # paper-fidelity frontier
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"perseus/internal/experiments"
	"perseus/internal/gpu"
	"perseus/internal/grid"
)

func main() {
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	scale := flag.String("scale", "quick", "quick | full (paper parameters; slow)")
	util := flag.Float64("util", 0.55, "target as a fraction of the deadline's T* capacity (deadline slack knob)")
	objective := flag.String("objective", "carbon", "objective for the featured plan: carbon | cost | energy")
	signalPath := flag.String("signal", "", "replay a custom trace (.csv or .json) instead of the bundled diurnal one")
	flag.Parse()

	g, err := gpu.ByName(*gpuName)
	if err != nil {
		log.Fatal(err)
	}
	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	obj, err := grid.ParseObjective(*objective)
	if err != nil {
		log.Fatal(err)
	}

	sig := grid.Diurnal24h()
	if *signalPath != "" {
		f, err := os.Open(*signalPath)
		if err != nil {
			log.Fatal(err)
		}
		if strings.HasSuffix(*signalPath, ".csv") {
			sig, err = grid.ParseCSV(f)
		} else {
			sig, err = grid.ParseJSON(f)
		}
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := experiments.WorkloadConfig{
		Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 4,
		MicrobatchSize: 4, Microbatches: 16,
	}
	fmt.Printf("characterizing %s on %s...\n", cfg.Display, g.Name)
	sys, err := experiments.BuildSystem(cfg, g, sc)
	if err != nil {
		log.Fatal(err)
	}
	lt := sys.Frontier.Table()
	target := *util * sig.Horizon() / lt.TStar()
	fmt.Printf("trace %s: %d intervals over %.0f h; target %.0f iterations (%.0f%% of T* capacity)\n\n",
		sig.Name, len(sig.Intervals), sig.Horizon()/3600, target, 100**util)

	strategies, err := experiments.GridComparison(lt, sig, target, 0)
	if err != nil {
		log.Fatal(err)
	}
	featured, err := grid.Optimize(lt, sig, grid.Options{Target: target, Objective: obj})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []*experiments.Table{
		experiments.GridPlanTable(lt, featured),
		experiments.GridComparisonTable(sig, strategies),
	} {
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
