package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/forecast"
	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/obs"
	pln "perseus/internal/plan"
)

// ForecastRequest installs a forecast issuer over the installed grid
// signal and issues a forecast from the revealed history.
type ForecastRequest struct {
	// Model selects the forecaster: persistence, seasonal, or smoothed
	// (history-driven models), or "revisions" — the seeded noisy-
	// revision feed that simulates an external forecast provider over
	// the installed signal, the issuer the background controller's MPC
	// experiments replay.
	Model string `json:"model"`

	// Level is the uncertainty-band quantile level; 0 means 0.9.
	Level float64 `json:"level,omitempty"`

	// Quantile is the default planning quantile GET /grid/replan uses:
	// 0 plans on the point forecast, higher values plan robustly
	// against the pessimistic band.
	Quantile float64 `json:"quantile,omitempty"`

	// HorizonS extends the forecast coverage in signal seconds; 0
	// means one full signal cycle beyond the current time.
	HorizonS float64 `json:"horizon_s,omitempty"`

	// Seed and Sigma parameterize the "revisions" issuer (ignored for
	// history-driven models): Seed selects the innovation stream and
	// Sigma the per-step relative innovation (0 = the provider default).
	Seed  int64   `json:"seed,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// ForecastResponse is an issued forecast plus the installed issuer
// parameters.
type ForecastResponse struct {
	Model     string  `json:"model"`
	Level     float64 `json:"level"`
	Quantile  float64 `json:"quantile"`
	IssuedS   float64 `json:"issued_s"`
	HorizonS  float64 `json:"horizon_s"`
	Intervals int     `json:"intervals"`

	// Forecast is the issued forecast: point-forecast signal plus
	// carbon and price bands.
	Forecast *forecast.Forecast `json:"forecast"`
}

// forecastSpec is the installed forecast issuer: either a history-
// driven model or the seeded revisions feed. It is immutable once
// installed; provider() materializes a forecast.Provider for one issue
// time's horizon.
type forecastSpec struct {
	name     string
	model    forecast.Model // nil for the revisions issuer
	seed     int64
	sigma    float64
	level    float64
	quantile float64
}

// provider returns the issuer as a forecast.Provider covering at least
// horizonS of the signal.
func (fs *forecastSpec) provider(sig *grid.Signal, horizonS float64) forecast.Provider {
	if fs.model != nil {
		return &forecast.FromHistory{Truth: sig, Model: fs.model, HorizonS: horizonS, Level: fs.level}
	}
	return &forecast.Revisions{Truth: sig, Seed: fs.seed, Sigma: fs.sigma, HorizonS: horizonS, Level: fs.level}
}

// ReplanInterval is one frozen (already executed) span of a job's
// rolling-horizon schedule, with realized and predicted accounting —
// exactly the controller's executed-interval record.
type ReplanInterval = forecast.ExecutedInterval

// ReplanResponse is a job's rolling-horizon schedule state: the frozen
// executed prefix (realized against the installed signal, predicted
// against the forecasts that planned it) and the freshly re-planned
// remainder.
type ReplanResponse struct {
	JobID     string  `json:"job_id"`
	Target    float64 `json:"target_iterations"`
	DeadlineS float64 `json:"deadline_s"`
	Objective string  `json:"objective"`
	Quantile  float64 `json:"quantile"`

	// Plans counts planner invocations for this schedule so far.
	Plans int `json:"plans"`

	// DoneIterations is the frozen prefix's progress;
	// RemainingIterations is what the fresh plan still has to cover.
	DoneIterations      float64 `json:"done_iterations"`
	RemainingIterations float64 `json:"remaining_iterations"`

	// Feasible reports whether the remaining target still fits before
	// the deadline under the latest forecast.
	Feasible bool `json:"feasible"`

	// Frozen lists the executed spans in time order (signal seconds).
	Frozen []ReplanInterval `json:"frozen,omitempty"`

	// EnergyJ, CarbonG, and CostUSD total the frozen prefix (realized);
	// PredCarbonG and PredCostUSD total what its planning forecasts
	// predicted for it.
	EnergyJ     float64 `json:"energy_j"`
	CarbonG     float64 `json:"carbon_g"`
	CostUSD     float64 `json:"cost_usd"`
	PredCarbonG float64 `json:"pred_carbon_g"`
	PredCostUSD float64 `json:"pred_cost_usd"`

	// Remaining is the fresh plan for [RemainingOffsetS, DeadlineS),
	// with interval times relative to RemainingOffsetS; nil once the
	// target is complete.
	Remaining        *grid.Plan `json:"remaining,omitempty"`
	RemainingOffsetS float64    `json:"remaining_offset_s"`
}

// replanState is a job's rolling-horizon state between roll-forwards
// (client GET /grid/replan calls and controller ticks share it).
// Guarded by Server.replanMu.
type replanState struct {
	target      float64
	reqDeadline float64 // the raw request parameter (0 = default)
	deadlineS   float64 // the effective deadline, pinned at creation
	objective   grid.Objective
	reqQuantile float64 // the raw request parameter (0 = installed default)
	quantile    float64 // the effective quantile, pinned at creation

	offsetS   float64 // signal time of remaining's t = 0
	doneIters float64
	frozen    []ReplanInterval
	remaining *grid.Plan
	predSig   *grid.Signal // point forecast the remaining plan was built on
	planView  *grid.Signal // quantile view the remaining plan was solved against
	plans     int
	frevSeen  int  // forecast revision the remaining plan was built on
	feasible  bool // latest feasibility verdict
	needPlan  bool // last re-plan failed; retry on the next roll-forward

	// lastPlanAt is the wall-clock time of the last successful re-plan
	// (zero before the first), surfaced per job in GET /controller.
	lastPlanAt time.Time
}

func (s *Server) handleGridForecast(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req ForecastRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.setForecast(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, resp)
	case http.MethodGet:
		resp, err := s.Forecast()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, resp)
	default:
		http.Error(w, "POST or GET only", http.StatusMethodNotAllowed)
	}
}

// SetForecast installs a forecast issuer over the installed signal and
// issues a fresh forecast from the history revealed so far — a
// forecast *revision*: every job's predicted accrual is settled
// against the previous forecast first, subsequent re-plans run against
// the new issuer, and the plan-cache epoch advances.
func (s *Server) SetForecast(req ForecastRequest) (ForecastResponse, error) {
	return s.setForecast(context.Background(), req)
}

func (s *Server) setForecast(ctx context.Context, req ForecastRequest) (ForecastResponse, error) {
	spec := &forecastSpec{name: req.Model, seed: req.Seed, sigma: req.Sigma}
	if req.Model != "revisions" {
		model, err := forecast.ModelByName(req.Model)
		if err != nil {
			return ForecastResponse{}, err
		}
		spec.model = model
		spec.name = model.Name()
	}
	level := req.Level
	if level == 0 {
		level = 0.9
	}
	if !(level > 0.5) || level >= 1 {
		return ForecastResponse{}, fmt.Errorf("server: forecast band level must be in (0.5, 1), got %v", req.Level)
	}
	if math.IsNaN(req.Quantile) || req.Quantile < 0 || req.Quantile >= 1 {
		return ForecastResponse{}, fmt.Errorf("server: forecast planning quantile must be in [0, 1), got %v", req.Quantile)
	}
	if math.IsNaN(req.HorizonS) || math.IsInf(req.HorizonS, 0) || req.HorizonS < 0 {
		return ForecastResponse{}, fmt.Errorf("server: forecast horizon must be finite and non-negative, got %v", req.HorizonS)
	}
	if math.IsNaN(req.Sigma) || req.Sigma < 0 || req.Sigma > 2 {
		return ForecastResponse{}, fmt.Errorf("server: forecast revision sigma must be in [0, 2], got %v", req.Sigma)
	}
	spec.level = level
	spec.quantile = req.Quantile

	// Settle every job's accounting under the previous forecast before
	// the predicted rates change.
	gs := s.st.gridState()
	if gs.sig == nil {
		return ForecastResponse{}, fmt.Errorf("server: no grid signal installed to forecast")
	}
	s.st.settleAll(gs)

	t := gs.now.Sub(gs.start).Seconds()
	if t < 0 {
		t = 0
	}
	fc, err := issueForecast(gs.sig, spec, t, req.HorizonS)
	if err != nil {
		return ForecastResponse{}, err
	}

	s.st.mu.Lock()
	s.st.fspec = spec
	s.st.fcast = fc
	s.st.fcastAt = gs.now
	s.st.frev++
	s.st.epoch++
	s.st.mu.Unlock()
	s.cache.clear()
	s.hub.bump(topicPlanEpoch)
	s.obs.ring.Emit(gs.now, "forecast.revise", 0, traceKV(ctx,
		"model", spec.name, "intervals", strconv.Itoa(len(fc.Signal.Intervals)))...)
	return ForecastResponse{
		Model:     spec.name,
		Level:     level,
		Quantile:  req.Quantile,
		IssuedS:   fc.IssuedS,
		HorizonS:  fc.Signal.Horizon(),
		Intervals: len(fc.Signal.Intervals),
		Forecast:  fc,
	}, nil
}

// maxForecastCycles bounds how many signal cycles a single issued
// forecast may materialize: issuing extends coverage to the requested
// horizon interval by interval, so an unbounded request (a deadline of
// years against a seconds-scale trace) would otherwise let one HTTP
// call allocate without limit while holding the roll-forward lock.
const maxForecastCycles = 1000

// issueForecast runs the issuer over the signal's revealed history at
// signal time t. The coverage always extends at least one full signal
// cycle past t (rounded up to whole cycles), so a re-plan issued late
// in the trace still sees a day ahead.
func issueForecast(sig *grid.Signal, spec *forecastSpec, t, horizonS float64) (*forecast.Forecast, error) {
	h := sig.Horizon()
	horizon := math.Ceil((t+h)/h) * h
	if horizonS > horizon {
		horizon = horizonS
	}
	if horizon > maxForecastCycles*h {
		return nil, fmt.Errorf("server: forecast horizon %v exceeds %d cycles of the %v s signal", horizon, maxForecastCycles, h)
	}
	return spec.provider(sig, horizon).At(t)
}

// Forecast returns the latest issued forecast.
func (s *Server) Forecast() (ForecastResponse, error) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	if s.st.fcast == nil {
		return ForecastResponse{}, fmt.Errorf("server: no forecast installed")
	}
	return ForecastResponse{
		Model:     s.st.fspec.name,
		Level:     s.st.fspec.level,
		Quantile:  s.st.fspec.quantile,
		IssuedS:   s.st.fcast.IssuedS,
		HorizonS:  s.st.fcast.Signal.Horizon(),
		Intervals: len(s.st.fcast.Signal.Intervals),
		Forecast:  s.st.fcast,
	}, nil
}

func (s *Server) handleGridReplan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/grid/replan/")
	if id == "" || strings.Contains(id, "/") {
		http.NotFound(w, r)
		return
	}
	q := r.URL.Query()
	parse := func(key string) (float64, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	var target, deadline, quant float64
	var err error
	for _, f := range []struct {
		key string
		dst *float64
	}{{"iterations", &target}, {"deadline", &deadline}, {"quantile", &quant}} {
		if *f.dst, err = parse(f.key); err != nil {
			http.Error(w, fmt.Sprintf("bad %s: %v", f.key, err), http.StatusBadRequest)
			return
		}
	}
	resp, err := s.replan(r.Context(), id, target, deadline, q.Get("objective"), quant)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.st.job(id); !ok {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, resp)
}

// Replan rolls a job's forecast-driven schedule forward to now: the
// span executed since the previous roll-forward is frozen — its slices
// accrued against the installed signal (realized) and against the
// forecast that planned them (predicted) — and the remainder is
// re-planned with grid.Optimize against a forecast freshly issued from
// the installed issuer, completing target iterations by the deadline
// (signal seconds; 0 means the forecast horizon). Changing any
// parameter restarts the schedule from now. quantile 0 uses the
// installed default; values above 0.5 plan against the pessimistic
// band (robust mode).
//
// Client calls and controller ticks share one serialized roll-forward,
// so the frozen prefix is identical no matter who observes it — and a
// call that finds time and forecast unchanged returns the current
// state without re-planning.
func (s *Server) Replan(id string, target, deadline float64, objective string, quantile float64) (*ReplanResponse, error) {
	return s.replan(context.Background(), id, target, deadline, objective, quantile)
}

// replan is Replan with context: under a traced request or controller
// tick, the roll-forward records its stage spans (replan.inputs,
// replan.freeze, replan.forecast, replan.solve, replan.bump) as
// children of the active span.
func (s *Server) replan(ctx context.Context, id string, target, deadline float64, objective string, quantile float64) (*ReplanResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	table := j.table
	pipes := j.req.DataParallel
	j.mu.Unlock()
	if table == nil {
		return nil, fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	if !(target > 0) || math.IsInf(target, 0) {
		return nil, fmt.Errorf("server: replan target iterations must be positive and finite, got %v", target)
	}
	if math.IsNaN(deadline) || math.IsInf(deadline, 0) || deadline < 0 {
		return nil, fmt.Errorf("server: replan deadline must be finite and non-negative, got %v", deadline)
	}

	_, insp := obs.Child(ctx, spanReplanInputs)
	insp.SetAttr("job", id)
	s.replanMu.Lock()
	defer s.replanMu.Unlock()
	// The signal/forecast snapshot AND the clock are read inside the
	// roll-forward lock. The clock: two racing callers (a controller
	// tick and a client replan) otherwise freeze at different instants
	// and the loser would rewind the schedule offset, double-counting
	// spans the winner already froze. The snapshot: POST /grid/signal
	// clears the rolling schedules under this same lock, so a replan
	// that snapshotted the old signal outside it could re-insert a
	// schedule of the replaced trace (anchored to the old clock) into
	// the freshly cleared map.
	// The raw quantile parameter identifies the schedule (like the raw
	// deadline): 0 resolves to the issuer's default once, at creation,
	// so a forecast re-install with a different default is a revision
	// of the forecast — never a silent restart of a rolling schedule
	// that asked for "the default".
	reqQuantile := quantile
	sig, start, spec, obj, frev, err := s.planInputsLocked()
	if err != nil {
		insp.Fail(err)
		insp.End()
		return nil, err
	}
	if quantile == 0 {
		quantile = spec.quantile
	}
	if objective != "" {
		if obj, err = grid.ParseObjective(objective); err != nil {
			insp.Fail(err)
			insp.End()
			return nil, err
		}
	}
	if math.IsNaN(quantile) || quantile < 0 || quantile >= 1 {
		insp.End()
		return nil, fmt.Errorf("server: replan quantile must be in [0, 1), got %v", quantile)
	}

	t := s.st.now().Sub(start).Seconds()
	if t < 0 {
		t = 0
	}
	insp.End()

	st := s.replans[id]
	// The restart check compares the *requested* deadline: with the 0
	// default the effective deadline is pinned once at state creation
	// (the forecast horizon then), so the horizon growing with time on
	// later calls is not mistaken for a parameter change.
	if st == nil || st.target != target || st.reqDeadline != deadline ||
		st.objective != obj || st.reqQuantile != reqQuantile {
		_, fsp := obs.Child(ctx, spanReplanFcast)
		fc, err := issueForecast(sig, spec, t, deadline)
		fsp.Fail(err)
		fsp.End()
		if err != nil {
			return nil, err
		}
		eff := deadline
		if eff == 0 {
			eff = fc.Signal.Horizon()
		}
		if eff <= t {
			return nil, fmt.Errorf("server: replan deadline %v not after now (%v s into the signal)", eff, t)
		}
		if eff > fc.Signal.Horizon()+1e-9 {
			return nil, fmt.Errorf("server: replan deadline %v beyond forecast horizon %v", eff, fc.Signal.Horizon())
		}
		st = &replanState{
			target: target, reqDeadline: deadline, deadlineS: eff,
			objective: obj, reqQuantile: reqQuantile, quantile: quantile,
			offsetS: t, frevSeen: frev,
		}
		s.replans[id] = st
		if err := s.rollForwardLocked(ctx, st, j, table, pipes, sig, spec, t, frev, fc); err != nil {
			delete(s.replans, id)
			return nil, err
		}
		return replanView(id, st), nil
	}

	// A roll-forward is warranted when time advanced past the last plan
	// offset or the forecast was revised; otherwise the current state
	// is already the answer. Time never rewinds: a racing caller that
	// read the clock before a faster one froze later spans clamps to
	// the schedule's own offset.
	if t < st.offsetS {
		t = st.offsetS
	}
	if t > st.offsetS+1e-9 || st.frevSeen != frev || st.needPlan {
		if err := s.rollForwardLocked(ctx, st, j, table, pipes, sig, spec, t, frev, nil); err != nil {
			return nil, err
		}
	}
	return replanView(id, st), nil
}

// planInputsLocked snapshots the planning inputs a roll-forward needs
// — installed signal, its anchor, the forecast issuer, the default
// objective, and the forecast revision. Callers hold replanMu, so the
// snapshot cannot interleave with POST /grid/signal's state reset.
func (s *Server) planInputsLocked() (*grid.Signal, time.Time, *forecastSpec, grid.Objective, int, error) {
	s.st.mu.Lock()
	sig := s.st.signal
	start := s.st.sigStart
	spec := s.st.fspec
	obj := s.st.objective
	frev := s.st.frev
	s.st.mu.Unlock()
	if sig == nil {
		return nil, time.Time{}, nil, "", 0, fmt.Errorf("server: no grid signal installed")
	}
	if spec == nil {
		return nil, time.Time{}, nil, "", 0, fmt.Errorf("server: no forecast installed; POST /grid/forecast first")
	}
	return sig, start, spec, obj, frev, nil
}

// advanceManaged rolls an EXISTING rolling schedule forward — the
// controller tick's path. Unlike Replan it never creates state: after
// POST /grid/signal drops every schedule, a straggler tick iteration
// must not resurrect one with stale parameters; the job has to be
// re-managed explicitly. Under the tick's trace, the roll-forward's
// stage spans land as children of the controller.tick root.
func (s *Server) advanceManaged(ctx context.Context, id string) error {
	j, ok := s.st.job(id)
	if !ok {
		return fmt.Errorf("server: unknown job %s", id)
	}
	j.mu.Lock()
	table := j.table
	pipes := j.req.DataParallel
	j.mu.Unlock()
	if table == nil {
		return fmt.Errorf("server: job %s not characterized yet", id)
	}
	if pipes <= 0 {
		pipes = 1
	}
	_, insp := obs.Child(ctx, spanReplanInputs)
	insp.SetAttr("job", id)
	s.replanMu.Lock()
	defer s.replanMu.Unlock()
	st := s.replans[id]
	if st == nil {
		err := fmt.Errorf("server: job %s has no rolling schedule (a signal change drops them; re-manage the job)", id)
		insp.Fail(err)
		insp.End()
		return err
	}
	sig, start, spec, _, frev, err := s.planInputsLocked()
	if err != nil {
		insp.Fail(err)
		insp.End()
		return err
	}
	t := s.st.now().Sub(start).Seconds()
	if t < st.offsetS {
		t = st.offsetS
	}
	insp.End()
	if t > st.offsetS+1e-9 || st.frevSeen != frev || st.needPlan {
		return s.rollForwardLocked(ctx, st, j, table, pipes, sig, spec, t, frev, nil)
	}
	return nil
}

// rollForwardLocked freezes the span executed since the last plan and
// re-plans the remainder against a freshly issued forecast (or the
// pre-issued one the creation path already holds for this t). Callers
// hold replanMu. On any re-plan the job's schedule version bumps, so
// long-polling clients observe the change. Each stage records a child
// span of ctx's active span (replan.freeze, replan.forecast,
// replan.solve, replan.bump) — under a controller tick these are the
// tick root's per-stage children.
func (s *Server) rollForwardLocked(ctx context.Context, st *replanState, j *job, table *frontier.LookupTable, pipes int, sig *grid.Signal, spec *forecastSpec, t float64, frev int, issued *forecast.Forecast) error {
	// Freeze the span executed since the last plan: walk the previous
	// remaining plan's intervals up to now.
	_, fz := obs.Child(ctx, spanReplanFreeze)
	fz.SetAttr("job", j.id)
	if st.remaining != nil {
		for _, ip := range st.remaining.Intervals {
			absStart, absEnd := st.offsetS+ip.StartS, st.offsetS+ip.EndS
			if absStart >= t-1e-9 {
				break
			}
			if absEnd > t {
				absEnd = t
			}
			ei := forecast.ExecuteSlices(table, sig, st.predSig, float64(pipes), absStart, absEnd, ip.Slices)
			st.frozen = append(st.frozen, ei)
			st.doneIters += ei.Iterations
		}
	}
	fz.SetAttr("frozen", strconv.Itoa(len(st.frozen)))
	fz.End()

	// Re-plan the remainder against the fresh forecast. The freeze
	// commit above is valid on its own (those spans did execute);
	// feasibility and the retry flag are settled per branch below so a
	// failed re-plan never leaves the state claiming a schedule it
	// does not have — and is retried on the next roll-forward even at
	// the same time and forecast revision.
	remaining := st.target - st.doneIters
	oldPlan, oldOffset, oldView := st.remaining, st.offsetS, st.planView
	st.remaining = nil
	st.planView = nil
	st.offsetS = t
	st.frevSeen = frev
	switch {
	case remaining <= 1e-9*(1+st.target):
		// Target complete.
		st.feasible = true
		st.needPlan = false
	case t >= st.deadlineS-1e-9:
		// The deadline has passed with work left: nothing to plan.
		st.feasible = false
		st.needPlan = false
	default:
		st.feasible = false
		st.needPlan = true
		fc := issued
		if fc == nil {
			_, fsp := obs.Child(ctx, spanReplanFcast)
			fsp.SetAttr("job", j.id)
			var err error
			if fc, err = issueForecast(sig, spec, t, st.reqDeadline); err != nil {
				fsp.Fail(err)
				fsp.End()
				s.obs.replanFails.Inc()
				return err
			}
			fsp.End()
		}
		q := st.quantile
		if q == 0 {
			q = 0.5
		}
		view := fc.At(q)
		// Warm start: if nothing has executed since the last plan
		// (same offset) and the revised forecast's quantile view is
		// identical over the remaining window, the old plan is still
		// optimal — keep it and skip the solve. The schedule did not
		// change, so long-pollers are not woken and plans does not bump.
		if oldPlan != nil && oldView != nil && t == oldOffset &&
			forecast.SignalEqualWithin(oldView, view, t, st.deadlineS) {
			st.remaining = oldPlan
			st.planView = oldView
			st.feasible = oldPlan.Feasible
			st.needPlan = false
			s.obs.warmStarts.Inc()
			s.obs.ring.Emit(s.st.now(), "controller.replan.warm", 0, traceKV(ctx,
				"job", j.id, "plan", strconv.Itoa(st.plans))...)
			return nil
		}
		// The re-plan runs through the instrumented grid planner over
		// the forecast window — the MPC counterpart of forecast.Planner,
		// reported as its own planning layer.
		suffix := forecast.Window(view, t, st.deadlineS)
		sctx, sv := obs.Child(ctx, spanReplanSolve)
		sv.SetAttr("job", j.id)
		p := obs.InstrumentPlanner(sctx, s.wrapPlanner(&grid.Planner{Table: table, Signal: suffix}),
			"forecast-mpc", s.obs.planLatency, s.obs.planErrors)
		res, err := p.Plan(pln.Request{
			Target:     remaining,
			Objective:  st.objective,
			PowerScale: float64(pipes),
		})
		if err != nil {
			sv.Fail(err)
			sv.End()
			s.obs.replanFails.Inc()
			return err
		}
		sv.End()
		plan := res.(*grid.Plan)
		now := s.st.now()
		st.remaining = plan
		st.predSig = fc.Signal
		st.planView = view
		st.plans++
		st.feasible = plan.Feasible
		st.needPlan = false
		st.lastPlanAt = now
		s.obs.replans.Inc()
		s.obs.ring.Emit(now, "controller.replan", 0, traceKV(ctx,
			"job", j.id, "plan", strconv.Itoa(st.plans),
			"feasible", strconv.FormatBool(plan.Feasible))...)
		// The rolling schedule changed: bump the job's version so
		// long-polling trainers fetch the new deployment.
		_, bsp := obs.Child(ctx, spanReplanBump)
		bsp.SetAttr("job", j.id)
		j.mu.Lock()
		j.bumpLocked()
		bsp.SetAttr("version", strconv.Itoa(j.version))
		j.mu.Unlock()
		bsp.End()
	}
	return nil
}

// replanView renders the current rolling-horizon state. Callers hold
// replanMu.
func replanView(id string, st *replanState) *ReplanResponse {
	remaining := st.target - st.doneIters
	if remaining < 1e-9*(1+st.target) {
		remaining = 0
	}
	resp := &ReplanResponse{
		JobID:               id,
		Target:              st.target,
		DeadlineS:           st.deadlineS,
		Objective:           string(st.objective),
		Quantile:            st.quantile,
		Plans:               st.plans,
		DoneIterations:      st.doneIters,
		RemainingIterations: remaining,
		Feasible:            st.feasible,
		Frozen:              st.frozen,
		Remaining:           st.remaining,
		RemainingOffsetS:    st.offsetS,
	}
	for _, fi := range st.frozen {
		resp.EnergyJ += fi.EnergyJ
		resp.CarbonG += fi.CarbonG
		resp.CostUSD += fi.CostUSD
		resp.PredCarbonG += fi.PredCarbonG
		resp.PredCostUSD += fi.PredCostUSD
	}
	return resp
}

// RolloutResponse is the read-only view of a job's rolling-horizon
// schedule: the same shape as a replan response plus the job's current
// schedule version and whether the controller manages the schedule.
type RolloutResponse struct {
	ReplanResponse
	Version int  `json:"version"`
	Managed bool `json:"managed"`
}

// Rollout returns a job's rolling-horizon schedule state WITHOUT
// rolling it forward — the observation endpoint clients use alongside
// long-poll schedule fetching, so observing never triggers planning.
func (s *Server) Rollout(id string) (*RolloutResponse, error) {
	j, ok := s.st.job(id)
	if !ok {
		return nil, fmt.Errorf("server: unknown job %s", id)
	}
	s.replanMu.Lock()
	st, ok := s.replans[id]
	var view *ReplanResponse
	if ok {
		view = replanView(id, st)
	}
	s.replanMu.Unlock()
	if view == nil {
		return nil, fmt.Errorf("server: job %s has no rolling schedule (POST /controller/jobs or GET /grid/replan first)", id)
	}
	j.mu.Lock()
	version := j.version
	j.mu.Unlock()
	return &RolloutResponse{
		ReplanResponse: *view,
		Version:        version,
		Managed:        s.ctrl.manages(id),
	}, nil
}
